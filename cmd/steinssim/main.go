// Command steinssim runs one workload through one secure-memory scheme and
// prints the controller metrics, optionally crashing and recovering at the
// end. Simulation or recovery failures exit 1 with a diagnostic; bad flags
// exit 2.
//
// Usage:
//
//	steinssim -workload cactusADM -scheme Steins-GC -ops 100000 -crash
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"steins/internal/metrics"
	"steins/internal/sim"
	"steins/internal/stats"
	"steins/internal/trace"
)

func schemes() map[string]sim.Scheme {
	out := map[string]sim.Scheme{}
	for _, s := range []sim.Scheme{
		sim.WBGC, sim.WBSC, sim.ASIT, sim.STAR,
		sim.SteinsGC, sim.SteinsSC, sim.SCUEGC, sim.SCUESC,
	} {
		out[strings.ToLower(s.Name)] = s
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a simulation/recovery
// failure, 2 on bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("steinssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload  = fs.String("workload", "cactusADM", "workload name (see -list)")
		scheme    = fs.String("scheme", "Steins-GC", "scheme name (see -list)")
		ops       = fs.Int("ops", 100000, "trace length in memory requests")
		seed      = fs.Uint64("seed", 1, "trace seed")
		cacheKB   = fs.Int("cache", 256, "metadata cache size in KiB")
		crash     = fs.Bool("crash", false, "crash and recover after the run")
		allDirty  = fs.Bool("alldirty", false, "force all cached metadata dirty before the crash")
		list      = fs.Bool("list", false, "list workloads and schemes")
		compare   = fs.Bool("compare", false, "run every scheme on the workload and tabulate")
		tablePath = fs.Bool("v", false, "verbose per-class NVM breakdown")
		metricsTo = fs.String("metrics", "", "export a metrics snapshot (phase attribution, latency histograms, occupancy time series) to this file; .csv selects CSV, anything else JSON")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "workloads:")
		for _, p := range trace.All() {
			fmt.Fprintf(stdout, "  %-14s footprint %-10s writes %.0f%%\n",
				p.Name, stats.Bytes(p.FootprintBytes), p.WriteFrac*100)
		}
		fmt.Fprintln(stdout, "schemes: WB-GC WB-SC ASIT STAR Steins-GC Steins-SC SCUE-GC SCUE-SC")
		return 0
	}

	prof, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(stderr, "unknown workload %q (use -list)\n", *workload)
		return 2
	}
	var mopt *metrics.Options
	if *metricsTo != "" {
		o := metrics.DefaultOptions()
		mopt = &o
	}
	if *compare {
		opt := sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10, Metrics: mopt}
		if err := compareSchemes(prof, opt, *metricsTo, stdout); err != nil {
			fmt.Fprintf(stderr, "compare failed: %v\n", err)
			return 1
		}
		return 0
	}
	s, ok := schemes()[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(stderr, "unknown scheme %q (use -list)\n", *scheme)
		return 2
	}
	opt := sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10, Metrics: mopt}

	sim1 := func() (sim.Result, error) {
		if *crash {
			res, rep, err := sim.RunWithCrash(prof, s, opt, *allDirty)
			if err != nil {
				return res, err
			}
			fmt.Fprintf(stdout, "recovery: %d nodes, %d NVM reads, %d writes, %d MAC ops -> %s\n",
				rep.NodesRecovered, rep.NVMReads, rep.NVMWrites, rep.MACOps,
				stats.Seconds(rep.TimeNS))
			return res, nil
		}
		return sim.Run(prof, s, opt)
	}
	res, err := sim1()
	if err != nil {
		fmt.Fprintf(stderr, "simulation failed: %v\n", err)
		return 1
	}
	if *metricsTo != "" {
		if err := metrics.WriteSnapshotsFile(*metricsTo, []*metrics.Snapshot{res.Snapshot}); err != nil {
			fmt.Fprintf(stderr, "metrics export failed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics snapshot written to %s\n", *metricsTo)
	}

	t := stats.NewTable(fmt.Sprintf("%s on %s (%d ops)", s.Name, prof.Name, *ops), "metric", "value")
	t.AddRow("execution time", fmt.Sprintf("%d cycles (%.2f ms simulated)",
		res.ExecCycles, float64(res.ExecCycles)/2e6))
	t.AddRow("avg read latency", fmt.Sprintf("%.1f cycles", res.AvgReadLat))
	t.AddRow("avg write latency", fmt.Sprintf("%.1f cycles", res.AvgWriteLat))
	t.AddRow("NVM write traffic", stats.Bytes(res.WriteBytes))
	t.AddRow("energy", fmt.Sprintf("%.2f uJ", res.EnergyPJ/1e6))
	t.AddRow("metadata cache hit rate", fmt.Sprintf("%.1f%%", res.MetaHitRate*100))
	t.AddRow("hash ops", fmt.Sprintf("%d", res.Ctrl.HashOps))
	t.AddRow("minor overflows", fmt.Sprintf("%d (re-encrypted %d blocks)",
		res.Ctrl.Overflows, res.Ctrl.Reencrypts))
	fmt.Fprint(stdout, t)

	if *tablePath {
		bt := stats.NewTable("NVM accesses by class", "class", "reads", "writes")
		for cls := 0; cls < len(res.NVM.Reads); cls++ {
			if res.NVM.Reads[cls] == 0 && res.NVM.Writes[cls] == 0 {
				continue
			}
			bt.AddRow(fmt.Sprint(clsName(cls)), fmt.Sprint(res.NVM.Reads[cls]), fmt.Sprint(res.NVM.Writes[cls]))
		}
		fmt.Fprint(stdout, bt)
	}
	return 0
}

// compareSchemes runs every scheme on one workload in parallel and prints
// a side-by-side table, normalised to WB-GC. When metricsTo is set, the
// per-scheme snapshots are exported to that file.
func compareSchemes(prof trace.Profile, opt sim.Options, metricsTo string, stdout io.Writer) error {
	schemes := []sim.Scheme{
		sim.WBGC, sim.ASIT, sim.STAR, sim.SteinsGC,
		sim.WBSC, sim.SteinsSC, sim.SCUEGC,
	}
	jobs := make([]sim.Job, len(schemes))
	for i, s := range schemes {
		jobs[i] = sim.Job{Prof: prof, Scheme: s, Opt: opt}
	}
	results, err := sim.RunParallel(jobs, 0)
	if err != nil {
		return err
	}
	if metricsTo != "" {
		snaps := make([]*metrics.Snapshot, len(results))
		for i := range results {
			snaps[i] = results[i].Snapshot
		}
		if err := metrics.WriteSnapshotsFile(metricsTo, snaps); err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		fmt.Fprintf(stdout, "metrics snapshots written to %s\n", metricsTo)
	}
	base := results[0]
	t := stats.NewTable(fmt.Sprintf("all schemes on %s (%d ops, vs WB-GC)", prof.Name, opt.Ops),
		"scheme", "exec", "wlat", "rlat", "traffic", "energy", "hit%")
	for _, r := range results {
		t.AddRow(r.Scheme,
			stats.F(float64(r.ExecCycles)/float64(base.ExecCycles)),
			stats.F(r.AvgWriteLat/base.AvgWriteLat),
			stats.F(r.AvgReadLat/base.AvgReadLat),
			stats.F(float64(r.WriteBytes)/float64(base.WriteBytes)),
			stats.F(r.EnergyPJ/base.EnergyPJ),
			fmt.Sprintf("%.1f", r.MetaHitRate*100))
	}
	fmt.Fprint(stdout, t)
	return nil
}

func clsName(i int) string {
	names := []string{"data", "hmac", "meta", "shadow", "record", "bitmap", "other"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprint(i)
}
