// Command steinssim runs one workload through one secure-memory scheme and
// prints the controller metrics, optionally crashing and recovering at the
// end. Simulation or recovery failures exit 1 with a diagnostic; bad flags
// exit 2.
//
// Usage:
//
//	steinssim -workload cactusADM -scheme Steins-GC -ops 100000 -crash
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sim"
	"steins/internal/snapshot"
	"steins/internal/stats"
	"steins/internal/trace"
)

func schemes() map[string]sim.Scheme {
	out := map[string]sim.Scheme{}
	for _, s := range []sim.Scheme{
		sim.WBGC, sim.WBSC, sim.ASIT, sim.STAR,
		sim.SteinsGC, sim.SteinsSC, sim.SCUEGC, sim.SCUESC,
		sim.PipeSITGC, sim.PipeSITSC, sim.TriadGC, sim.TriadSC,
	} {
		out[strings.ToLower(s.Name)] = s
	}
	return out
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a simulation/recovery
// failure, 2 on bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("steinssim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		workload   = fs.String("workload", "cactusADM", "workload name (see -list)")
		scheme     = fs.String("scheme", "Steins-GC", "scheme name (see -list)")
		ops        = fs.Int("ops", 100000, "trace length in memory requests")
		seed       = fs.Uint64("seed", 1, "trace seed")
		cacheKB    = fs.Int("cache", 256, "metadata cache size in KiB")
		crash      = fs.Bool("crash", false, "crash and recover after the run")
		allDirty   = fs.Bool("alldirty", false, "force all cached metadata dirty before the crash")
		list       = fs.Bool("list", false, "list workloads and schemes")
		compare    = fs.Bool("compare", false, "run every scheme on the workload and tabulate")
		tablePath  = fs.Bool("v", false, "verbose per-class NVM breakdown")
		metricsTo  = fs.String("metrics", "", "export a metrics snapshot (phase attribution, latency histograms, occupancy time series) to this file; .csv selects CSV, anything else JSON")
		channels   = fs.Int("channels", 1, "interleave the trace across this many independent controllers (sharded engine)")
		ivMode     = fs.String("interleave", "line", "address interleave granularity for -channels: line, page, or hash")
		faultSpec  = fs.String("faults", "", "media-fault model, e.g. transient=1e-4,double=0.25,stuck=1e-6,torn=0.5,seed=7 (empty or 'off': disabled)")
		ecc        = fs.Bool("ecc", true, "model the per-word SECDED ECC layer (with -ecc=false corrupted lines return silently and only the integrity layer can catch them)")
		degraded   = fs.Bool("degraded", false, "run recovery in degraded mode: heal media-explained damage, quarantine the rest (prints the quarantine table after -crash)")
		ckptEvery  = fs.Int("checkpoint", 0, "snapshot the complete run state every N ops to -checkpoint-file (0: never)")
		ckptFile   = fs.String("checkpoint-file", "steinssim.snap", "snapshot file for -checkpoint (and the file -resume keeps current)")
		resumeFrom = fs.String("resume", "", "resume a run from this snapshot file; workload/scheme/ops flags are taken from the snapshot")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	iv, err := trace.ParseInterleave(*ivMode)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if *channels < 1 {
		fmt.Fprintf(stderr, "-channels must be >= 1\n")
		return 2
	}
	faults, err := nvmem.ParseFaultSpec(*faultSpec)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	configure := func(cfg *memctrl.Config) {
		cfg.NVM.Faults = faults
		cfg.NVM.ECC.Disable = !*ecc
		cfg.DegradedRecovery = *degraded
	}

	if *list {
		fmt.Fprintln(stdout, "workloads:")
		for _, p := range trace.All() {
			fmt.Fprintf(stdout, "  %-14s footprint %-10s writes %.0f%%\n",
				p.Name, stats.Bytes(p.FootprintBytes), p.WriteFrac*100)
		}
		fmt.Fprintln(stdout, "schemes: WB-GC WB-SC ASIT STAR Steins-GC Steins-SC SCUE-GC SCUE-SC PipeSIT-GC PipeSIT-SC Triad-GC Triad-SC")
		return 0
	}

	if *resumeFrom != "" {
		if *compare {
			fmt.Fprintf(stderr, "-resume is incompatible with -compare\n")
			return 2
		}
		return runResume(*resumeFrom, *ckptEvery, *crash, *allDirty, *metricsTo, *tablePath, stdout, stderr)
	}

	prof, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(stderr, "unknown workload %q (use -list)\n", *workload)
		return 2
	}
	var mopt *metrics.Options
	if *metricsTo != "" {
		o := metrics.DefaultOptions()
		mopt = &o
	}
	so := sim.ShardOptions{Channels: *channels, Interleave: iv}
	if *compare {
		opt := sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10, Metrics: mopt, Configure: configure}
		if err := compareSchemes(prof, opt, so, *metricsTo, stdout); err != nil {
			fmt.Fprintf(stderr, "compare failed: %v\n", err)
			return 1
		}
		return 0
	}
	s, ok := schemes()[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(stderr, "unknown scheme %q (use -list)\n", *scheme)
		return 2
	}
	opt := sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10, Metrics: mopt, Configure: configure}

	reportRecovery := func(rep memctrl.RecoveryReport) { printRecovery(stdout, rep) }
	var res sim.Result
	var shards []sim.Result
	var err2 error
	switch {
	case *ckptEvery > 0:
		h := makeHeader(prof, s, opt, *channels, iv, faults, !*ecc)
		var r *snapshot.Resumed
		r, err2 = buildResumable(h)
		if err2 == nil {
			_, err2 = driveResumable(r, h, *ckptEvery, *ckptFile)
		}
		if err2 == nil && *crash {
			var rep memctrl.RecoveryReport
			rep, err2 = crashRecoverResumable(r, *allDirty)
			if err2 == nil {
				reportRecovery(rep)
			}
		}
		if err2 == nil {
			res, shards = resumableResults(r)
			fmt.Fprintf(stdout, "checkpoints written to %s every %d ops\n", *ckptFile, *ckptEvery)
		}
	case *channels > 1 && *crash:
		var sres sim.ShardedResult
		var rep memctrl.RecoveryReport
		sres, rep, err2 = sim.RunShardedWithCrash(prof, s, opt, so, *allDirty)
		if err2 == nil {
			reportRecovery(rep)
		}
		res, shards = sres.Merged, sres.Shards
	case *channels > 1:
		var sres sim.ShardedResult
		sres, err2 = sim.RunSharded(prof, s, opt, so)
		res, shards = sres.Merged, sres.Shards
	case *crash:
		var rep memctrl.RecoveryReport
		res, rep, err2 = sim.RunWithCrash(prof, s, opt, *allDirty)
		if err2 == nil {
			reportRecovery(rep)
		}
	default:
		res, err2 = sim.Run(prof, s, opt)
	}
	if err2 != nil {
		fmt.Fprintf(stderr, "simulation failed: %v\n", err2)
		return 1
	}
	if *metricsTo != "" {
		if err := metrics.WriteSnapshotsFile(*metricsTo, []*metrics.Snapshot{res.Snapshot}); err != nil {
			fmt.Fprintf(stderr, "metrics export failed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics snapshot written to %s\n", *metricsTo)
	}
	printRun(stdout, s.Name, prof.Name, *ops, *channels, iv, faults.Enabled(), *tablePath, res, shards)
	return 0
}

// printRecovery renders an aggregate recovery report.
func printRecovery(stdout io.Writer, rep memctrl.RecoveryReport) {
	fmt.Fprintf(stdout, "recovery: %d nodes, %d NVM reads, %d writes, %d MAC ops -> %s\n",
		rep.NodesRecovered, rep.NVMReads, rep.NVMWrites, rep.MACOps,
		stats.Seconds(rep.TimeNS))
	if d := &rep.Degradation; d.Degraded() {
		fmt.Fprintf(stdout, "degraded: %d healed, %d quarantined, %d unrecoverable, data-loss bound %s\n",
			len(d.Healed), len(d.Quarantined), len(d.Unrecoverable), stats.Bytes(d.DataLossBoundBytes))
		if len(d.Records) > 0 {
			qt := stats.NewTable("quarantined regions (local addresses)",
				"root", "data range", "cause", "evidence")
			for _, r := range d.Records {
				qt.AddRow(fmt.Sprintf("L%d/%d", r.Node.Level, r.Node.Index),
					fmt.Sprintf("%#x-%#x", r.DataLo, r.DataHi),
					r.Cause.String(), r.Evidence)
			}
			fmt.Fprint(stdout, qt)
		}
	}
}

// printRun renders the per-channel view and the summary tables for one
// finished run; resumed runs share it with fresh ones.
func printRun(stdout io.Writer, schemeName, workloadName string, ops, channels int, iv trace.Interleave, faultsEnabled, verbose bool, res sim.Result, shards []sim.Result) {
	if len(shards) > 1 {
		ct := stats.NewTable(fmt.Sprintf("per-channel view (%d channels, %s interleave)", channels, iv),
			"channel", "ops", "exec cycles", "traffic", "hit%")
		for k, sh := range shards {
			ct.AddRow(fmt.Sprint(k), fmt.Sprint(sh.Ops), fmt.Sprint(sh.ExecCycles),
				stats.Bytes(sh.WriteBytes), fmt.Sprintf("%.1f", sh.MetaHitRate*100))
		}
		fmt.Fprint(stdout, ct)
	}

	t := stats.NewTable(fmt.Sprintf("%s on %s (%d ops)", schemeName, workloadName, ops), "metric", "value")
	t.AddRow("execution time", fmt.Sprintf("%d cycles (%.2f ms simulated)",
		res.ExecCycles, float64(res.ExecCycles)/2e6))
	t.AddRow("avg read latency", fmt.Sprintf("%.1f cycles", res.AvgReadLat))
	t.AddRow("avg write latency", fmt.Sprintf("%.1f cycles", res.AvgWriteLat))
	t.AddRow("NVM write traffic", stats.Bytes(res.WriteBytes))
	t.AddRow("energy", fmt.Sprintf("%.2f uJ", res.EnergyPJ/1e6))
	t.AddRow("metadata cache hit rate", fmt.Sprintf("%.1f%%", res.MetaHitRate*100))
	t.AddRow("hash ops", fmt.Sprintf("%d", res.Ctrl.HashOps))
	t.AddRow("minor overflows", fmt.Sprintf("%d (re-encrypted %d blocks)",
		res.Ctrl.Overflows, res.Ctrl.Reencrypts))
	if faultsEnabled {
		t.AddRow("media read path", fmt.Sprintf("%d corrected, %d retried, %d escalated, %d unrecoverable",
			res.Ctrl.MediaCorrected, res.Ctrl.MediaRetried, res.Ctrl.MediaEscalated, res.Ctrl.MediaUnrecoverable))
		f := res.NVM.Faults
		t.AddRow("device fault events", fmt.Sprintf("%d transient flips, %d stuck bits, %d torn writes",
			f.TransientFlips, f.StuckBits, f.TornWrites))
	}
	fmt.Fprint(stdout, t)

	if verbose {
		bt := stats.NewTable("NVM accesses by class", "class", "reads", "writes")
		for cls := 0; cls < len(res.NVM.Reads); cls++ {
			if res.NVM.Reads[cls] == 0 && res.NVM.Writes[cls] == 0 {
				continue
			}
			bt.AddRow(fmt.Sprint(clsName(cls)), fmt.Sprint(res.NVM.Reads[cls]), fmt.Sprint(res.NVM.Writes[cls]))
		}
		fmt.Fprint(stdout, bt)
	}
}

// compareSchemes runs every scheme on one workload and prints a
// side-by-side table, normalised to WB-GC. With one channel the schemes
// run in parallel; with more, each scheme runs through the sharded engine
// (which parallelises internally) and the merged results are tabulated.
// When metricsTo is set, the per-scheme snapshots are exported to that
// file.
func compareSchemes(prof trace.Profile, opt sim.Options, so sim.ShardOptions, metricsTo string, stdout io.Writer) error {
	schemes := []sim.Scheme{
		sim.WBGC, sim.ASIT, sim.STAR, sim.SteinsGC,
		sim.WBSC, sim.SteinsSC, sim.SCUEGC,
		sim.PipeSITGC, sim.TriadGC,
	}
	var results []sim.Result
	if so.Channels > 1 {
		results = make([]sim.Result, len(schemes))
		for i, s := range schemes {
			sres, err := sim.RunSharded(prof, s, opt, so)
			if err != nil {
				return fmt.Errorf("%s: %w", s.Name, err)
			}
			results[i] = sres.Merged
		}
	} else {
		jobs := make([]sim.Job, len(schemes))
		for i, s := range schemes {
			jobs[i] = sim.Job{Prof: prof, Scheme: s, Opt: opt}
		}
		var err error
		results, err = sim.RunParallel(jobs, 0)
		if err != nil {
			return err
		}
	}
	if metricsTo != "" {
		snaps := make([]*metrics.Snapshot, len(results))
		for i := range results {
			snaps[i] = results[i].Snapshot
		}
		if err := metrics.WriteSnapshotsFile(metricsTo, snaps); err != nil {
			return fmt.Errorf("metrics export: %w", err)
		}
		fmt.Fprintf(stdout, "metrics snapshots written to %s\n", metricsTo)
	}
	base := results[0]
	t := stats.NewTable(fmt.Sprintf("all schemes on %s (%d ops, vs WB-GC)", prof.Name, opt.Ops),
		"scheme", "exec", "wlat", "rlat", "traffic", "energy", "hit%")
	for _, r := range results {
		t.AddRow(r.Scheme,
			stats.F(float64(r.ExecCycles)/float64(base.ExecCycles)),
			stats.F(r.AvgWriteLat/base.AvgWriteLat),
			stats.F(r.AvgReadLat/base.AvgReadLat),
			stats.F(float64(r.WriteBytes)/float64(base.WriteBytes)),
			stats.F(r.EnergyPJ/base.EnergyPJ),
			fmt.Sprintf("%.1f", r.MetaHitRate*100))
	}
	fmt.Fprint(stdout, t)
	return nil
}

func clsName(i int) string {
	names := []string{"data", "hmac", "meta", "shadow", "record", "bitmap", "other"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprint(i)
}
