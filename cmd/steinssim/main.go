// Command steinssim runs one workload through one secure-memory scheme and
// prints the controller metrics, optionally crashing and recovering at the
// end.
//
// Usage:
//
//	steinssim -workload cactusADM -scheme Steins-GC -ops 100000 -crash
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"steins/internal/sim"
	"steins/internal/stats"
	"steins/internal/trace"
)

func schemes() map[string]sim.Scheme {
	out := map[string]sim.Scheme{}
	for _, s := range []sim.Scheme{
		sim.WBGC, sim.WBSC, sim.ASIT, sim.STAR,
		sim.SteinsGC, sim.SteinsSC, sim.SCUEGC, sim.SCUESC,
	} {
		out[strings.ToLower(s.Name)] = s
	}
	return out
}

func main() {
	var (
		workload  = flag.String("workload", "cactusADM", "workload name (see -list)")
		scheme    = flag.String("scheme", "Steins-GC", "scheme name (see -list)")
		ops       = flag.Int("ops", 100000, "trace length in memory requests")
		seed      = flag.Uint64("seed", 1, "trace seed")
		cacheKB   = flag.Int("cache", 256, "metadata cache size in KiB")
		crash     = flag.Bool("crash", false, "crash and recover after the run")
		allDirty  = flag.Bool("alldirty", false, "force all cached metadata dirty before the crash")
		list      = flag.Bool("list", false, "list workloads and schemes")
		compare   = flag.Bool("compare", false, "run every scheme on the workload and tabulate")
		tablePath = flag.Bool("v", false, "verbose per-class NVM breakdown")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:")
		for _, p := range trace.All() {
			fmt.Printf("  %-14s footprint %-10s writes %.0f%%\n",
				p.Name, stats.Bytes(p.FootprintBytes), p.WriteFrac*100)
		}
		fmt.Println("schemes: WB-GC WB-SC ASIT STAR Steins-GC Steins-SC SCUE-GC SCUE-SC")
		return
	}

	prof, ok := trace.ByName(*workload)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *workload)
		os.Exit(2)
	}
	if *compare {
		compareSchemes(prof, sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10})
		return
	}
	s, ok := schemes()[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scheme %q (use -list)\n", *scheme)
		os.Exit(2)
	}
	opt := sim.Options{Ops: *ops, Seed: *seed, MetaCacheBytes: *cacheKB << 10}

	run := func() (sim.Result, error) {
		if *crash {
			res, rep, err := sim.RunWithCrash(prof, s, opt, *allDirty)
			if err != nil {
				return res, err
			}
			fmt.Printf("recovery: %d nodes, %d NVM reads, %d writes, %d MAC ops -> %s\n",
				rep.NodesRecovered, rep.NVMReads, rep.NVMWrites, rep.MACOps,
				stats.Seconds(rep.TimeNS))
			return res, nil
		}
		return sim.Run(prof, s, opt)
	}
	res, err := run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simulation failed: %v\n", err)
		os.Exit(1)
	}

	t := stats.NewTable(fmt.Sprintf("%s on %s (%d ops)", s.Name, prof.Name, *ops), "metric", "value")
	t.AddRow("execution time", fmt.Sprintf("%d cycles (%.2f ms simulated)",
		res.ExecCycles, float64(res.ExecCycles)/2e6))
	t.AddRow("avg read latency", fmt.Sprintf("%.1f cycles", res.AvgReadLat))
	t.AddRow("avg write latency", fmt.Sprintf("%.1f cycles", res.AvgWriteLat))
	t.AddRow("NVM write traffic", stats.Bytes(res.WriteBytes))
	t.AddRow("energy", fmt.Sprintf("%.2f uJ", res.EnergyPJ/1e6))
	t.AddRow("metadata cache hit rate", fmt.Sprintf("%.1f%%", res.MetaHitRate*100))
	t.AddRow("hash ops", fmt.Sprintf("%d", res.Ctrl.HashOps))
	t.AddRow("minor overflows", fmt.Sprintf("%d (re-encrypted %d blocks)",
		res.Ctrl.Overflows, res.Ctrl.Reencrypts))
	fmt.Print(t)

	if *tablePath {
		bt := stats.NewTable("NVM accesses by class", "class", "reads", "writes")
		for cls := 0; cls < len(res.NVM.Reads); cls++ {
			if res.NVM.Reads[cls] == 0 && res.NVM.Writes[cls] == 0 {
				continue
			}
			bt.AddRow(fmt.Sprint(clsName(cls)), fmt.Sprint(res.NVM.Reads[cls]), fmt.Sprint(res.NVM.Writes[cls]))
		}
		fmt.Print(bt)
	}
}

// compareSchemes runs every scheme on one workload in parallel and prints
// a side-by-side table, normalised to WB-GC.
func compareSchemes(prof trace.Profile, opt sim.Options) {
	schemes := []sim.Scheme{
		sim.WBGC, sim.ASIT, sim.STAR, sim.SteinsGC,
		sim.WBSC, sim.SteinsSC, sim.SCUEGC,
	}
	jobs := make([]sim.Job, len(schemes))
	for i, s := range schemes {
		jobs[i] = sim.Job{Prof: prof, Scheme: s, Opt: opt}
	}
	results, err := sim.RunParallel(jobs, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compare failed: %v\n", err)
		os.Exit(1)
	}
	base := results[0]
	t := stats.NewTable(fmt.Sprintf("all schemes on %s (%d ops, vs WB-GC)", prof.Name, opt.Ops),
		"scheme", "exec", "wlat", "rlat", "traffic", "energy", "hit%")
	for _, r := range results {
		t.AddRow(r.Scheme,
			stats.F(float64(r.ExecCycles)/float64(base.ExecCycles)),
			stats.F(r.AvgWriteLat/base.AvgWriteLat),
			stats.F(r.AvgReadLat/base.AvgReadLat),
			stats.F(float64(r.WriteBytes)/float64(base.WriteBytes)),
			stats.F(r.EnergyPJ/base.EnergyPJ),
			fmt.Sprintf("%.1f", r.MetaHitRate*100))
	}
	fmt.Print(t)
}

func clsName(i int) string {
	names := []string{"data", "hmac", "meta", "shadow", "record", "bitmap", "other"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprint(i)
}
