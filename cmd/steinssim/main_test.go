package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"steins/internal/metrics"
)

func TestRunCrashRecover(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-workload", "pers_queue", "-scheme", "steins-gc",
		"-ops", "2000", "-cache", "16", "-crash",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recovery:") {
		t.Fatalf("missing recovery report:\n%s", out.String())
	}
}

func TestRunDegradedQuarantineTable(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-workload", "kv_b_zipf", "-scheme", "steins-gc",
		"-ops", "30000", "-crash", "-degraded",
		"-faults", "transient=2e-4,double=0.2,torn=0.5,stuck=2e-4,seed=9",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "degraded:") {
		t.Fatalf("missing degraded summary:\n%s", s)
	}
	if strings.Contains(s, "quarantined regions") {
		// The table carries the arbitration: a root, a data range and a
		// cause column for every record.
		if !regexp.MustCompile(`L\d+/\d+\s+0x[0-9a-f]+-0x[0-9a-f]+\s+\S+`).MatchString(s) {
			t.Fatalf("quarantine table missing root/range/cause columns:\n%s", s)
		}
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "pers_queue") {
		t.Fatalf("missing workloads:\n%s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-workload", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown workload: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown workload") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-scheme", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scheme: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestRunMetricsExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	var out, errb strings.Builder
	code := run([]string{
		"-workload", "cactusADM", "-scheme", "steins-gc",
		"-ops", "3000", "-cache", "16", "-metrics", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "metrics snapshot written to") {
		t.Fatalf("missing export confirmation:\n%s", out.String())
	}
	m := regexp.MustCompile(`(\d+) cycles`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no execution time in output:\n%s", out.String())
	}
	printed, err := strconv.ParseUint(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Scheme != "Steins-GC" || snap.Workload != "cactusADM" {
		t.Fatalf("snapshot identity %q/%q", snap.Scheme, snap.Workload)
	}
	if snap.ExecCycles != printed {
		t.Fatalf("snapshot exec %d does not match printed %d cycles", snap.ExecCycles, printed)
	}
	if snap.Read.Ops+snap.Write.Ops != 3000 {
		t.Fatalf("snapshot ops %d, want 3000", snap.Read.Ops+snap.Write.Ops)
	}
	if got := snap.MakespanCycles(); got != snap.ExecCycles {
		t.Fatalf("phase buckets sum to %d, makespan %d", got, snap.ExecCycles)
	}
	if len(snap.Series) == 0 {
		t.Fatal("snapshot has no time series")
	}
}

func TestRunCompareMetricsExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snaps.json")
	var out, errb strings.Builder
	code := run([]string{
		"-workload", "pers_queue", "-compare",
		"-ops", "2000", "-cache", "16", "-metrics", path,
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snaps []metrics.Snapshot
	if err := json.Unmarshal(data, &snaps); err != nil {
		t.Fatalf("snapshot array is not valid JSON: %v", err)
	}
	if len(snaps) != 9 {
		t.Fatalf("%d snapshots, want one per compared scheme (9)", len(snaps))
	}
	seen := map[string]bool{}
	for i := range snaps {
		seen[snaps[i].Scheme] = true
		if got := snaps[i].MakespanCycles(); got != snaps[i].ExecCycles {
			t.Fatalf("%s: phase buckets sum to %d, makespan %d",
				snaps[i].Scheme, got, snaps[i].ExecCycles)
		}
	}
	if !seen["WB-GC"] || !seen["Steins-SC"] {
		t.Fatalf("schemes missing from export: %v", seen)
	}
}
