package main

import (
	"strings"
	"testing"
)

func TestRunCrashRecover(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-workload", "pers_queue", "-scheme", "steins-gc",
		"-ops", "2000", "-cache", "16", "-crash",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "recovery:") {
		t.Fatalf("missing recovery report:\n%s", out.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "pers_queue") {
		t.Fatalf("missing workloads:\n%s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-workload", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown workload: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown workload") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-scheme", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown scheme: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
