package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tableOf strips everything before the first table ("== title =="), so
// resumed output can be compared to straight output without the resume or
// checkpoint banners.
func tableOf(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "== ")
	if i < 0 {
		t.Fatalf("no table in output:\n%s", out)
	}
	return out[i:]
}

// TestCheckpointResumeMatchesStraight runs the same configuration three
// ways — straight, checkpointed, and checkpoint-then-resume — and
// requires identical summary tables: the resumed run's metrics must be
// bit-identical to the uninterrupted run's.
func TestCheckpointResumeMatchesStraight(t *testing.T) {
	for _, channels := range []string{"1", "2"} {
		channels := channels
		t.Run(channels+"ch", func(t *testing.T) {
			t.Parallel()
			snap := filepath.Join(t.TempDir(), "run.snap")
			base := []string{
				"-workload", "pers_queue", "-scheme", "steins-sc",
				"-ops", "2000", "-cache", "16", "-seed", "3",
				"-channels", channels,
				"-faults", "transient=1e-3,stuck=1e-4,seed=9",
			}

			var straight, errb strings.Builder
			if code := run(base, &straight, &errb); code != 0 {
				t.Fatalf("straight: exit %d, stderr: %s", code, errb.String())
			}

			// Checkpoint every 700 ops: the final snapshot on disk is from
			// the last boundary before exhaustion, so -resume has a real
			// remainder to drive.
			var ck strings.Builder
			errb.Reset()
			ckArgs := append(append([]string{}, base...), "-checkpoint", "700", "-checkpoint-file", snap)
			if code := run(ckArgs, &ck, &errb); code != 0 {
				t.Fatalf("checkpointed: exit %d, stderr: %s", code, errb.String())
			}
			if tableOf(t, ck.String()) != tableOf(t, straight.String()) {
				t.Fatalf("checkpointing changed the results\nstraight:\n%s\ncheckpointed:\n%s",
					straight.String(), ck.String())
			}
			if _, err := os.Stat(snap); err != nil {
				t.Fatalf("no snapshot written: %v", err)
			}

			var resumed strings.Builder
			errb.Reset()
			if code := run([]string{"-resume", snap}, &resumed, &errb); code != 0 {
				t.Fatalf("resume: exit %d, stderr: %s", code, errb.String())
			}
			if !strings.Contains(resumed.String(), "resumed pers_queue/Steins-SC at op") {
				t.Fatalf("missing resume banner:\n%s", resumed.String())
			}
			if tableOf(t, resumed.String()) != tableOf(t, straight.String()) {
				t.Fatalf("resumed run diverges from straight run\nstraight:\n%s\nresumed:\n%s",
					straight.String(), resumed.String())
			}
		})
	}
}

// TestResumeFailures is the negative CLI table: a missing, truncated or
// corrupted snapshot must exit 1 with a structured diagnostic on stderr,
// and -resume -compare is a flag error.
func TestResumeFailures(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "run.snap")
	var out, errb strings.Builder
	if code := run([]string{
		"-workload", "pers_queue", "-scheme", "steins-gc",
		"-ops", "800", "-cache", "16", "-checkpoint", "300", "-checkpoint-file", snap,
	}, &out, &errb); code != 0 {
		t.Fatalf("seed run: exit %d, stderr: %s", code, errb.String())
	}
	good, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}

	truncated := filepath.Join(dir, "trunc.snap")
	if err := os.WriteFile(truncated, good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := filepath.Join(dir, "flip.snap")
	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(flipped, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name, path, diag string
	}{
		{"missing file", filepath.Join(dir, "nope.snap"), "no such file"},
		{"truncated", truncated, "truncated"},
		{"bit flip", flipped, "checksum"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var out, errb strings.Builder
			if code := run([]string{"-resume", tc.path}, &out, &errb); code != 1 {
				t.Fatalf("exit %d, want 1 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.diag) {
				t.Fatalf("diagnostic %q missing from stderr: %s", tc.diag, errb.String())
			}
		})
	}

	errb.Reset()
	if code := run([]string{"-resume", snap, "-compare"}, &out, &errb); code != 2 {
		t.Fatalf("-resume -compare: exit %d, want 2 (stderr: %s)", code, errb.String())
	}
}
