// Checkpoint/resume wiring: -checkpoint N writes a snapshot of the whole
// run every N operations; -resume continues a snapshotted run to
// completion in a fresh process, producing byte-identical metrics to the
// uninterrupted run.

package main

import (
	"fmt"
	"io"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sim"
	"steins/internal/snapshot"
	"steins/internal/trace"
)

// makeHeader records the flag-derived run configuration in the snapshot
// header, so a fresh process can rebuild the identical run from the file
// alone.
func makeHeader(prof trace.Profile, s sim.Scheme, opt sim.Options, channels int, iv trace.Interleave, faults nvmem.FaultConfig, eccDisable bool) snapshot.RunHeader {
	h := snapshot.RunHeader{
		Workload:       prof.Name,
		Scheme:         s.Name,
		TotalOps:       opt.Ops,
		WarmupOps:      opt.WarmupOps,
		Seed:           opt.Seed,
		DataBytes:      opt.DataBytes,
		MetaCacheBytes: opt.MetaCacheBytes,
		Channels:       channels,
		Interleave:     iv,
		Faults:         faults,
		ECCDisable:     eccDisable,
	}
	if opt.Metrics != nil {
		h.HasMetrics = true
		h.Metrics = *opt.Metrics
	}
	return h
}

// buildResumable constructs the engines a checkpointable run uses: the
// generator positioned at the start and a Single (1 channel) or Sharded
// (N channels) engine.
func buildResumable(h snapshot.RunHeader) (*snapshot.Resumed, error) {
	prof, ok := trace.ByName(h.Workload)
	if !ok {
		return nil, fmt.Errorf("unknown workload %q", h.Workload)
	}
	s, ok := sim.SchemeByName(h.Scheme)
	if !ok {
		return nil, fmt.Errorf("unknown scheme %q", h.Scheme)
	}
	opt, so := h.Options()
	r := &snapshot.Resumed{Profile: prof, Scheme: s,
		Gen: trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)}
	if h.Channels > 1 {
		r.Sharded = sim.NewSharded(prof, s, opt, so)
	} else {
		r.Single = sim.NewSingle(prof, s, opt)
	}
	return r, nil
}

// driveResumable drives the run to trace exhaustion; with every > 0 it
// snapshots the complete system to path each time that many further ops
// retire. It returns how many snapshots were written.
func driveResumable(r *snapshot.Resumed, h snapshot.RunHeader, every int, path string) (int, error) {
	chunk := -1
	if every > 0 {
		chunk = every
	}
	saved := 0
	for {
		var n int
		var err error
		if r.Single != nil {
			n, err = r.Single.DriveN(r.Gen, chunk)
		} else {
			n, err = r.Sharded.DriveStreamN(r.Gen, chunk)
		}
		if err != nil {
			return saved, err
		}
		if every > 0 && n > 0 {
			var st *snapshot.RunState
			if r.Single != nil {
				st, err = snapshot.CaptureSingle(h, r.Gen, r.Single)
			} else {
				st, err = snapshot.CaptureSharded(h, r.Gen, r.Sharded)
			}
			if err != nil {
				return saved, err
			}
			if err := snapshot.SaveFile(path, st); err != nil {
				return saved, err
			}
			saved++
		}
		if chunk < 0 || n < chunk {
			return saved, nil
		}
	}
}

// resumableResults folds either engine into the (merged, per-shard) shape
// the printing code consumes.
func resumableResults(r *snapshot.Resumed) (sim.Result, []sim.Result) {
	if r.Single != nil {
		return r.Single.Result(), nil
	}
	sres := r.Sharded.Result()
	return sres.Merged, sres.Shards
}

// crashRecoverResumable crashes and recovers either engine, returning the
// aggregate recovery report.
func crashRecoverResumable(r *snapshot.Resumed, allDirty bool) (memctrl.RecoveryReport, error) {
	if r.Single != nil {
		c := r.Single.Controller()
		if allDirty {
			c.ForceAllDirty()
		}
		c.Crash()
		return c.Recover()
	}
	if allDirty {
		r.Sharded.ForceAllDirty()
	}
	r.Sharded.Crash()
	_, agg, err := r.Sharded.Recover()
	return agg, err
}

// runResume is the -resume entry point: load the snapshot, rebuild the
// run, drive it to completion (keeping the snapshot current when every >
// 0), optionally crash/recover, and print through the same tables as a
// fresh run. Exit codes match run(): 0 success, 1 failure.
func runResume(path string, every int, crash, allDirty bool, metricsTo string, verbose bool, stdout, stderr io.Writer) int {
	st, err := snapshot.LoadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "resume %s: %v\n", path, err)
		return 1
	}
	r, err := st.Resume()
	if err != nil {
		fmt.Fprintf(stderr, "resume %s: %v\n", path, err)
		return 1
	}
	h := st.Header
	fmt.Fprintf(stdout, "resumed %s/%s at op %d of %d (+%d warm-up)\n",
		h.Workload, h.Scheme, r.Driven(), h.TotalOps+h.WarmupOps, h.WarmupOps)
	if _, err := driveResumable(r, h, every, path); err != nil {
		fmt.Fprintf(stderr, "simulation failed: %v\n", err)
		return 1
	}
	if crash {
		rep, err := crashRecoverResumable(r, allDirty)
		if err != nil {
			fmt.Fprintf(stderr, "recovery failed: %v\n", err)
			return 1
		}
		printRecovery(stdout, rep)
	}
	res, shards := resumableResults(r)
	if metricsTo != "" {
		if res.Snapshot == nil {
			fmt.Fprintf(stderr, "metrics export failed: the snapshot was captured without metrics collection\n")
			return 1
		}
		if err := metrics.WriteSnapshotsFile(metricsTo, []*metrics.Snapshot{res.Snapshot}); err != nil {
			fmt.Fprintf(stderr, "metrics export failed: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "metrics snapshot written to %s\n", metricsTo)
	}
	printRun(stdout, h.Scheme, h.Workload, h.TotalOps, h.Channels, h.Interleave, h.Faults.Enabled(), verbose, res, shards)
	return 0
}
