package main

import (
	"strings"
	"testing"
)

func TestRunShortTorture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{
		"-scheme", "steins-sc", "-workload", "pers_queue",
		"-crashes", "5", "-seed", "1", "-ops", "250", "-footprint", "131072", "-q",
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "PASS torture") || !strings.Contains(out.String(), "PASS torn-write") {
		t.Fatalf("missing PASS lines:\n%s", out.String())
	}
}

func TestRunUnknownScheme(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scheme", "nope", "-crashes", "1"}, &out, &errb); code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "unknown scheme") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"extra"}, &out, &errb); code != 2 {
		t.Fatalf("positional args: exit %d, want 2", code)
	}
}
