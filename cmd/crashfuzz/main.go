// Command crashfuzz drives the crash-point fault-injection harness: it
// crashes a scheme at randomly drawn controller events, recovers, and
// differentially verifies every recovered line against a golden shadow
// model, then plants a deliberately torn line write and demands the
// integrity machinery catch it. Failures print a reproducing seed and
// event index and exit non-zero.
//
// Usage:
//
//	crashfuzz -scheme steins-sc -workload pers_queue -crashes 200 -seed 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"steins/internal/crashfuzz"
	"steins/internal/nvmem"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a harness failure, 2 on
// bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crashfuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		scheme    = fs.String("scheme", "steins-sc", "scheme under test: "+strings.Join(crashfuzz.SchemeNames(), ", "))
		workload  = fs.String("workload", "pers_queue", "trace profile driving the run")
		crashes   = fs.Int("crashes", 200, "crash rounds to attempt")
		seed      = fs.Uint64("seed", 1, "root seed; a failure report's seed replays it exactly")
		ops       = fs.Int("ops", 0, "requests per round (0: default)")
		footprint = fs.Uint64("footprint", 0, "workload footprint override in bytes (0: default)")
		recrash   = fs.Int("recrash-every", 4, "re-crash mid-recovery every k-th round (0: never)")
		sample    = fs.Int("sample", 0, "differential readback sample per round (0: full shadow)")
		torn      = fs.Bool("torn", true, "finish with a torn-write detection demonstration")
		quiet     = fs.Bool("q", false, "suppress progress lines")
		faultSpec = fs.String("faults", "", "run the differential media-fault mode with this fault model, e.g. transient=1e-3,double=0.25,stuck=1e-4,torn=0.5 (seed defaults to -seed)")
		ecc       = fs.Bool("ecc", true, "model the SECDED ECC layer in fault mode (-ecc=false leaves detection to the integrity layer alone)")
		corrupt   = fs.Int("corrupt", 0, "fault mode: bit-flip this many persisted interior SIT nodes at every crash (implies -degraded unless recovery should reject)")
		degraded  = fs.Bool("degraded", false, "fault mode: enable degraded recovery (heal from children or quarantine instead of rejecting)")
		snapPath  = fs.String("snapshot", "", "checkpoint the campaign to this file after every round, making a long run restartable with -resume")
		resume    = fs.String("resume", "", "resume a campaign from this snapshot file and keep it current (other campaign flags are ignored)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	faults, ferr := nvmem.ParseFaultSpec(*faultSpec)
	if ferr != nil {
		fmt.Fprintf(stderr, "%v\n", ferr)
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "crashfuzz: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	cfg := crashfuzz.Config{
		Scheme:         *scheme,
		Workload:       *workload,
		Seed:           *seed,
		Crashes:        *crashes,
		OpsPerRound:    *ops,
		FootprintBytes: *footprint,
		RecrashEvery:   *recrash,
		VerifySample:   *sample,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}

	if *resume != "" {
		rep, err := crashfuzz.ResumeCheckpointed(*resume, cfg.Logf)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL: resume %s: %v\n", *resume, err)
			return 1
		}
		fmt.Fprintf(stdout, "PASS resumed torture: %v\n", &rep)
		return 0
	}

	if *faultSpec != "" || *corrupt > 0 {
		fcfg := crashfuzz.FaultFuzzConfig{
			Config:       cfg,
			Faults:       faults,
			DisableECC:   !*ecc,
			CorruptNodes: *corrupt,
			Degraded:     *degraded,
		}
		frep, err := crashfuzz.RunFaults(fcfg)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "PASS fault mode: %s\n", frep.String())
		return 0
	}

	var rep crashfuzz.Report
	var err error
	if *snapPath != "" {
		rep, err = crashfuzz.RunCheckpointed(cfg, *snapPath)
	} else {
		rep, err = crashfuzz.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(stderr, "FAIL: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "PASS torture: %v\n", &rep)
	if rep.TotalCrashes() == 0 {
		fmt.Fprintf(stderr, "FAIL: no crash was committed in %d rounds\n", rep.Rounds)
		return 1
	}

	if *torn {
		trep, err := crashfuzz.TornWrite(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "PASS torn-write: %v\n", trep)
	}
	return 0
}
