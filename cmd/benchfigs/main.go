// Command benchfigs regenerates the paper's evaluation tables and figures
// (Figs. 9-17, Table I, the §IV-E storage table, and the §III-B overflow
// analysis) from fresh simulations.
//
// Usage:
//
//	benchfigs                 # everything at quick scale
//	benchfigs -scale full     # paper-scale runs (minutes)
//	benchfigs -fig 9,13,17    # a subset
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"steins/internal/figures"
	"steins/internal/stats"
)

func main() {
	var (
		figList = flag.String("fig", "all", "comma-separated figures: 9-17, config, storage, overflow, ablation, all")
		scale   = flag.String("scale", "quick", "simulation scale: quick or full")
		format  = flag.String("format", "text", "output format: text or json")
	)
	flag.Parse()
	emit := func(t *stats.Table) {
		if *format == "json" {
			data, err := json.MarshalIndent(t, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(data))
			return
		}
		fmt.Println(t)
	}

	var sc figures.Scale
	switch *scale {
	case "quick":
		sc = figures.Quick()
	case "full":
		sc = figures.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figList, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("config") {
		emit(figures.TableI())
	}

	needGC := sel("9") || sel("10") || sel("11") || sel("13") || sel("15")
	if needGC {
		fmt.Fprintln(os.Stderr, "running GC comparison sweep (WB-GC, ASIT, STAR, Steins-GC)...")
		sw, err := figures.GCSweep(sc)
		if err != nil {
			fatal(err)
		}
		if sel("9") {
			emit(figures.Fig9(sw))
		}
		if sel("10") {
			emit(figures.Fig10(sw))
		}
		if sel("11") {
			emit(figures.Fig11(sw))
		}
		if sel("13") {
			emit(figures.Fig13(sw))
		}
		if sel("15") {
			emit(figures.Fig15(sw))
		}
	}

	needSC := sel("12") || sel("14") || sel("16")
	if needSC {
		fmt.Fprintln(os.Stderr, "running SC comparison sweep (WB-SC, Steins-GC, Steins-SC)...")
		sw, err := figures.SCSweep(sc)
		if err != nil {
			fatal(err)
		}
		if sel("12") {
			emit(figures.Fig12(sw))
		}
		if sel("14") {
			emit(figures.Fig14(sw))
		}
		if sel("16") {
			emit(figures.Fig16(sw))
		}
	}

	if sel("17") {
		fmt.Fprintln(os.Stderr, "running recovery-time sweep (Fig. 17)...")
		tab, err := figures.Fig17(sc)
		if err != nil {
			fatal(err)
		}
		emit(tab)
	}

	if sel("ablation") {
		fmt.Fprintln(os.Stderr, "running NV-buffer ablation sweep...")
		tab, err := figures.AblationTable(sc)
		if err != nil {
			fatal(err)
		}
		emit(tab)
	}

	if sel("storage") {
		emit(figures.StorageTable())
	}
	if sel("overflow") {
		emit(figures.OverflowTable())
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchfigs: %v\n", err)
	os.Exit(1)
}
