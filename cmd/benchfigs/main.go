// Command benchfigs regenerates the paper's evaluation tables and figures
// (Figs. 9-17, Table I, the §IV-E storage table, and the §III-B overflow
// analysis) from fresh simulations. Sweep failures exit 1 with a
// diagnostic; bad flags exit 2.
//
// Usage:
//
//	benchfigs                 # everything at quick scale
//	benchfigs -scale full     # paper-scale runs (minutes)
//	benchfigs -fig 9,13,17    # a subset
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"steins/internal/figures"
	"steins/internal/metrics"
	"steins/internal/stats"
	"steins/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a sweep or encoding
// failure, 2 on bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchfigs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		figList   = fs.String("fig", "all", "comma-separated figures: 9-17, config, storage, overflow, ablation, all")
		scale     = fs.String("scale", "quick", "simulation scale: quick or full")
		format    = fs.String("format", "text", "output format: text or json")
		metricsTo = fs.String("metrics", "", "export per-run metrics snapshots of the comparison sweeps to this file; .csv selects CSV, anything else JSON")
		channels  = fs.Int("channels", 1, "run the sweeps through the sharded engine with this many channels")
		ivMode    = fs.String("interleave", "line", "address interleave granularity for -channels: line, page, or hash")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	iv, err := trace.ParseInterleave(*ivMode)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	if *channels < 1 {
		fmt.Fprintf(stderr, "-channels must be >= 1\n")
		return 2
	}
	emit := func(t *stats.Table) error {
		if *format == "json" {
			data, err := json.MarshalIndent(t, "", "  ")
			if err != nil {
				return err
			}
			fmt.Fprintln(stdout, string(data))
			return nil
		}
		fmt.Fprintln(stdout, t)
		return nil
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchfigs: %v\n", err)
		return 1
	}

	var sc figures.Scale
	switch *scale {
	case "quick":
		sc = figures.Quick()
	case "full":
		sc = figures.Full()
	default:
		fmt.Fprintf(stderr, "unknown scale %q\n", *scale)
		return 2
	}
	sc.Channels = *channels
	sc.Interleave = iv
	var snaps []*metrics.Snapshot
	if *metricsTo != "" {
		mo := metrics.DefaultOptions()
		sc.Metrics = &mo
	}

	// Validate every requested figure name up front: a typo like -fig 18
	// used to fall through every selector and silently emit nothing.
	known := []string{"9", "10", "11", "12", "13", "14", "15", "16", "17",
		"config", "storage", "overflow", "ablation", "all"}
	valid := map[string]bool{}
	for _, k := range known {
		valid[k] = true
	}
	want := map[string]bool{}
	for _, f := range strings.Split(*figList, ",") {
		name := strings.TrimSpace(f)
		if !valid[name] {
			fmt.Fprintf(stderr, "unknown figure %q (have %s)\n", name, strings.Join(known, ", "))
			return 2
		}
		want[name] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	if sel("config") {
		if err := emit(figures.TableI()); err != nil {
			return fail(err)
		}
	}

	needGC := sel("9") || sel("10") || sel("11") || sel("13") || sel("15")
	if needGC {
		fmt.Fprintln(stderr, "running GC comparison sweep (WB-GC, ASIT, STAR, Steins-GC)...")
		sw, err := figures.GCSweep(sc)
		if err != nil {
			return fail(err)
		}
		snaps = append(snaps, sw.Snapshots()...)
		for _, f := range []struct {
			name string
			tab  func(*figures.Sweep) *stats.Table
		}{
			{"9", figures.Fig9}, {"10", figures.Fig10}, {"11", figures.Fig11},
			{"13", figures.Fig13}, {"15", figures.Fig15},
		} {
			if sel(f.name) {
				if err := emit(f.tab(sw)); err != nil {
					return fail(err)
				}
			}
		}
	}

	needSC := sel("12") || sel("14") || sel("16")
	if needSC {
		fmt.Fprintln(stderr, "running SC comparison sweep (WB-SC, Steins-GC, Steins-SC)...")
		sw, err := figures.SCSweep(sc)
		if err != nil {
			return fail(err)
		}
		snaps = append(snaps, sw.Snapshots()...)
		for _, f := range []struct {
			name string
			tab  func(*figures.Sweep) *stats.Table
		}{
			{"12", figures.Fig12}, {"14", figures.Fig14}, {"16", figures.Fig16},
		} {
			if sel(f.name) {
				if err := emit(f.tab(sw)); err != nil {
					return fail(err)
				}
			}
		}
	}

	if sel("17") {
		fmt.Fprintln(stderr, "running recovery-time sweep (Fig. 17)...")
		tab, err := figures.Fig17(sc)
		if err != nil {
			return fail(err)
		}
		if err := emit(tab); err != nil {
			return fail(err)
		}
	}

	if sel("ablation") {
		fmt.Fprintln(stderr, "running NV-buffer ablation sweep...")
		tab, err := figures.AblationTable(sc)
		if err != nil {
			return fail(err)
		}
		if err := emit(tab); err != nil {
			return fail(err)
		}
	}

	if sel("storage") {
		if err := emit(figures.StorageTable()); err != nil {
			return fail(err)
		}
	}
	if sel("overflow") {
		if err := emit(figures.OverflowTable()); err != nil {
			return fail(err)
		}
	}
	if *metricsTo != "" {
		if len(snaps) == 0 {
			fmt.Fprintln(stderr, "benchfigs: -metrics set but no comparison sweep selected; nothing to export")
			return 2
		}
		if err := metrics.WriteSnapshotsFile(*metricsTo, snaps); err != nil {
			return fail(fmt.Errorf("metrics export: %w", err))
		}
		fmt.Fprintf(stderr, "metrics snapshots written to %s\n", *metricsTo)
	}
	return 0
}
