package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunConfigTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-fig", "config"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-fig", "storage,overflow", "-format", "json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "\"headers\"") {
		t.Fatalf("not JSON:\n%s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scale", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad scale: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown scale") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
	errb.Reset()
	if code := run([]string{"-fig", "18"}, &out, &errb); code != 2 {
		t.Fatalf("unknown figure: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), `unknown figure "18"`) {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
}

func TestRunMetricsExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.csv")
	var out, errb strings.Builder
	if code := run([]string{"-fig", "12", "-metrics", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if !strings.HasPrefix(lines[0], "type,scheme,workload,") {
		t.Fatalf("missing CSV header: %q", lines[0])
	}
	arity := strings.Count(lines[0], ",")
	body := strings.Join(lines[1:], "\n")
	for _, want := range []string{"WB-SC", "Steins-SC", "phase", "series"} {
		if !strings.Contains(body, want) {
			t.Fatalf("CSV missing %q", want)
		}
	}
	for i, l := range lines[1:] {
		if strings.Count(l, ",") != arity {
			t.Fatalf("row %d has wrong arity: %q", i+1, l)
		}
	}
}

func TestRunMetricsWithoutSweepRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "none.json")
	var out, errb strings.Builder
	if code := run([]string{"-fig", "config", "-metrics", path}, &out, &errb); code != 2 {
		t.Fatalf("exit %d, want 2 when no sweep is selected", code)
	}
	if !strings.Contains(errb.String(), "no comparison sweep") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
}
