package main

import (
	"strings"
	"testing"
)

func TestRunConfigTable(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-fig", "config"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "Table I") {
		t.Fatalf("missing Table I:\n%s", out.String())
	}
}

func TestRunJSONFormat(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-fig", "storage,overflow", "-format", "json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "\"headers\"") {
		t.Fatalf("not JSON:\n%s", out.String())
	}
}

func TestRunBadInputs(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-scale", "bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad scale: exit %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown scale") {
		t.Fatalf("missing diagnostic: %s", errb.String())
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}
