// Command campaign runs the deterministic adversarial campaign: long seeded
// sequences of randomized hostile events — crashes at arbitrary controller
// events, media faults, deliberate tamper, re-crashes mid-recovery —
// interleaved into realistic workloads across every scheme and several
// channel counts, each case verified against a golden shadow model under a
// zero-silent-corruption contract.
//
// Usage:
//
//	campaign -cases 5040 -seed 1 -verify          # full sweep, replayed twice
//	campaign -snapshot c.snap -save-every 500     # restartable long run
//	campaign -resume c.snap                       # continue after interruption
//	campaign -selfcheck sabotage.repro            # prove the oracle is live
//	campaign -repro sabotage.repro                # replay a failure artifact
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"steins/internal/campaign"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a campaign failure, 2 on
// bad flags.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cases     = fs.Int("cases", 5040, "campaign cases to run")
		seed      = fs.Uint64("seed", 1, "campaign seed; the same seed yields a byte-identical report")
		schemes   = fs.String("schemes", "", "comma-separated scheme subset (default: all "+strconv.Itoa(len(campaign.DefaultSchemes()))+")")
		channels  = fs.String("channels", "", "comma-separated channel counts (default: 1,2,4)")
		workloads = fs.String("workloads", "", "comma-separated workload pool (default: "+strings.Join(campaign.DefaultWorkloads(), ",")+")")
		footprint = fs.Uint64("footprint", 0, "per-case data footprint in bytes (0: default)")
		ops       = fs.Int("ops", 0, "mean workload requests per round (0: default)")
		rounds    = fs.Int("rounds", 0, "max adversarial rounds per case (0: default)")
		every     = fs.Int("selfcheck-every", 250, "make every Nth case a deliberate corruption that MUST fail (0: never)")
		minimize  = fs.Int("minimize", 0, "re-run budget for shrinking a failing case (0: default, <0: off)")
		degraded  = fs.Bool("degraded", false, "force degraded recovery for every case (the tamper-under-arbitration slice)")
		verify    = fs.Bool("verify", false, "run the campaign twice and demand byte-identical reports")
		outPath   = fs.String("out", "", "also write the report to this file")
		artDir    = fs.String("artifact-dir", "", "write each failure's minimized repro artifact into this directory")
		snapPath  = fs.String("snapshot", "", "checkpoint the campaign to this file (see -save-every)")
		saveEvery = fs.Int("save-every", 500, "checkpoint cadence in cases when -snapshot is set")
		resume    = fs.String("resume", "", "resume a campaign from this snapshot file (other campaign flags are ignored)")
		selfcheck = fs.String("selfcheck", "", "run one deliberate-corruption case, write its repro artifact to this path, and verify it replays")
		repro     = fs.String("repro", "", "replay the repro artifact at this path and compare the classification")
		quiet     = fs.Bool("q", false, "suppress progress lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "campaign: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	var logf func(string, ...any)
	if !*quiet {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}

	if *repro != "" {
		return runRepro(*repro, stdout, stderr)
	}

	chans, err := parseInts(*channels)
	if err != nil {
		fmt.Fprintf(stderr, "campaign: -channels: %v\n", err)
		return 2
	}
	cfg := campaign.Config{
		Cases:          *cases,
		Seed:           *seed,
		Schemes:        splitList(*schemes),
		Channels:       chans,
		Workloads:      splitList(*workloads),
		FootprintBytes: *footprint,
		OpsPerRound:    *ops,
		MaxRounds:      *rounds,
		SelfCheckEvery: *every,
		MinimizeBudget: *minimize,
		ForceDegraded:  *degraded,
		Logf:           logf,
	}

	if *selfcheck != "" {
		art, err := campaign.SelfCheck(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
		if err := campaign.SaveArtifact(*selfcheck, art); err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "PASS selfcheck: oracle caught the deliberate corruption; artifact written to %s\n", *selfcheck)
		return 0
	}

	var rep *campaign.Report
	if *resume != "" {
		rep, err = campaign.Resume(*resume, *saveEvery, logf)
	} else if *snapPath != "" {
		rep, err = campaign.RunFrom(cfg, nil, *snapPath, *saveEvery)
	} else {
		rep, err = campaign.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(stderr, "FAIL: %v\n", err)
		return 1
	}
	report := rep.String()
	fmt.Fprint(stdout, report)

	if *verify && *resume == "" {
		cfg2 := cfg
		cfg2.Logf = nil
		rep2, err := campaign.Run(cfg2)
		if err != nil {
			fmt.Fprintf(stderr, "FAIL: verify pass: %v\n", err)
			return 1
		}
		if rep2.String() != report {
			fmt.Fprintf(stderr, "FAIL: verify pass produced a different report — the campaign is not deterministic\n--- second pass ---\n%s", rep2)
			return 1
		}
		fmt.Fprintln(stdout, "verify: second pass byte-identical")
	}

	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(report), 0o644); err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
	}
	if *artDir != "" {
		if err := writeArtifacts(*artDir, rep, stdout); err != nil {
			fmt.Fprintf(stderr, "FAIL: %v\n", err)
			return 1
		}
	}
	if n := rep.SilentCorruptions(); n > 0 {
		fmt.Fprintf(stderr, "FAIL: %d silent corruptions\n", n)
		return 1
	}
	return 0
}

// runRepro replays one artifact and compares the classification.
func runRepro(path string, stdout, stderr io.Writer) int {
	art, err := campaign.LoadArtifact(path)
	if err != nil {
		fmt.Fprintf(stderr, "FAIL: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "repro: case %d %s/%s ch=%d seed=%#x, recorded %s: %s\n",
		art.Case.Index, art.Case.Scheme, art.Case.Workload, art.Case.Channels,
		art.Case.Seed, art.Verdict, art.Detail)
	res, ok := campaign.Replay(art)
	if !ok {
		fmt.Fprintf(stderr, "FAIL: replay classified %s (%s), artifact recorded %s\n",
			res.Verdict, res.Detail, art.Verdict)
		return 1
	}
	fmt.Fprintf(stdout, "PASS repro: replay reproduced %s\n", res.Verdict)
	return 0
}

// writeArtifacts dumps every unexpected failure's repro artifact.
func writeArtifacts(dir string, rep *campaign.Report, stdout io.Writer) error {
	for i := range rep.Failures {
		f := &rep.Failures[i]
		if f.Expected || len(f.Artifact) == 0 {
			continue
		}
		path := filepath.Join(dir, fmt.Sprintf("case-%06d.repro", f.Case.Index))
		if err := os.WriteFile(path, f.Artifact, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "artifact: %s\n", path)
	}
	return nil
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		v, err := strconv.Atoi(p)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad channel count %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
