package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-nosuchflag"},
		{"stray-positional"},
		{"-channels", "0"},
		{"-channels", "two"},
	} {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

func TestSmallCampaignDeterministic(t *testing.T) {
	args := []string{"-cases", "36", "-seed", "11", "-selfcheck-every", "12", "-verify", "-q"}
	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "silent corruptions: 0") {
		t.Fatalf("report missing zero-corruption line:\n%s", s)
	}
	if !strings.Contains(s, "verify: second pass byte-identical") {
		t.Fatalf("missing verify confirmation:\n%s", s)
	}
}

func TestSelfCheckReproRoundTrip(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "sabotage.repro")

	var out, errb bytes.Buffer
	if code := run([]string{"-seed", "3", "-selfcheck", art, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("selfcheck exit %d\nstderr:\n%s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-repro", art}, &out, &errb); code != 0 {
		t.Fatalf("repro exit %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "PASS repro: replay reproduced FAIL") {
		t.Fatalf("repro output:\n%s", out.String())
	}
}

func TestReproRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk.repro")
	if err := os.WriteFile(path, []byte("not an artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-repro", path}, &out, &errb); code != 1 {
		t.Fatalf("garbage repro exit %d, want 1", code)
	}
}

func TestSnapshotResume(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "c.snap")
	straightOut := filepath.Join(dir, "straight.txt")
	resumedOut := filepath.Join(dir, "resumed.txt")

	var out, errb bytes.Buffer
	if code := run([]string{"-cases", "48", "-seed", "11", "-selfcheck-every", "12",
		"-out", straightOut, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("straight exit %d\nstderr:\n%s", code, errb.String())
	}
	// Interrupted run: checkpoint every 12 cases but stop at 24 by running a
	// shorter campaign, then resume from the on-disk snapshot.
	out.Reset()
	if code := run([]string{"-cases", "48", "-seed", "11", "-selfcheck-every", "12",
		"-snapshot", snap, "-save-every", "24", "-out", resumedOut, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("snapshot run exit %d\nstderr:\n%s", code, errb.String())
	}
	out.Reset()
	if code := run([]string{"-resume", snap, "-q"}, &out, &errb); code != 0 {
		t.Fatalf("resume exit %d\nstderr:\n%s", code, errb.String())
	}
	straight, err := os.ReadFile(straightOut)
	if err != nil {
		t.Fatal(err)
	}
	if got := out.String(); got != string(straight) {
		t.Fatalf("resumed report differs from straight run:\n--- resumed ---\n%s--- straight ---\n%s", got, straight)
	}
}
