package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"steins/internal/server"
)

// TestParseTenantSpec pins the spec grammar, including the structured
// *server.ConfigError shape of every rejection.
func TestParseTenantSpec(t *testing.T) {
	t.Run("full", func(t *testing.T) {
		tc, err := parseTenantSpec(
			"name=alpha,scheme=Steins-SC,pool=1M,pgs=4,channels=2,interleave=page,inflight=8,queue=64,batch=16,cache=128K,seed=0x2a")
		if err != nil {
			t.Fatal(err)
		}
		want := server.TenantConfig{Name: "alpha", Scheme: "Steins-SC", PGs: 4, PoolBytes: 1 << 20,
			Channels: 2, Interleave: "page", MaxInFlight: 8, MaxQueuedOps: 64, BatchOps: 16,
			MetaCacheBytes: 128 << 10, KeySeed: 42}
		if tc != want {
			t.Fatalf("parsed %+v, want %+v", tc, want)
		}
	})
	cases := []struct {
		name  string
		spec  string
		field string
	}{
		{"no-equals", "name=a,poolbytes", "tenant"},
		{"empty-value", "name=a,pool=", "tenant"},
		{"bad-pool", "name=a,pool=lots", "pool"},
		{"bad-pgs", "name=a,pgs=two", "pgs"},
		{"bad-channels", "name=a,channels=x", "channels"},
		{"bad-inflight", "name=a,inflight=many", "inflight"},
		{"bad-queue", "name=a,queue=deep", "queue"},
		{"bad-batch", "name=a,batch=big", "batch"},
		{"bad-cache", "name=a,cache=huge", "cache"},
		{"bad-seed", "name=a,seed=zz", "seed"},
		{"unknown-key", "name=a,color=red", "color"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTenantSpec(tc.spec)
			var ce *server.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *server.ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.field, ce)
			}
			if ce.Tenant != "a" && tc.name != "no-equals" {
				t.Fatalf("ConfigError.Tenant = %q, want \"a\" (%v)", ce.Tenant, ce)
			}
		})
	}
}

// TestRunRejectsBadConfigs pins exit code 2 and a field-naming diagnostic
// for configurations the daemon must refuse to start from.
func TestRunRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of stderr
	}{
		{"no-tenants", nil, "Tenants"},
		{"bad-spec", []string{"-tenant", "name=a,pgs=two"}, "pgs"},
		{"unknown-scheme", []string{"-tenant", "name=a,scheme=Magic,pool=4096"}, "Scheme"},
		{"zero-pool", []string{"-tenant", "name=a,scheme=Steins-SC"}, "PoolBytes"},
		{"odd-pool", []string{"-tenant", "name=a,scheme=Steins-SC,pool=4096,pgs=3"}, "PoolBytes"},
		{"bad-interleave", []string{"-tenant", "name=a,scheme=Steins-SC,pool=4096,interleave=stripe"}, "Interleave"},
		{"bad-name", []string{"-tenant", "name=a/b,scheme=Steins-SC,pool=4096"}, "Name"},
		{"dup-name", []string{
			"-tenant", "name=a,scheme=Steins-SC,pool=4096",
			"-tenant", "name=a,scheme=Steins-SC,pool=4096"}, "duplicate"},
		{"neg-inflight", []string{"-tenant", "name=a,scheme=Steins-SC,pool=4096,inflight=-1"}, "MaxInFlight"},
		{"missing-config", []string{"-config", "/nonexistent/cfg.json"}, "cfg.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb, nil); code != 2 {
				t.Fatalf("exit = %d, want 2 (stderr: %s)", code, errb.String())
			}
			if !strings.Contains(errb.String(), tc.want) {
				t.Fatalf("stderr %q does not name %q", errb.String(), tc.want)
			}
		})
	}
}

// TestRunConfigFile pins the JSON config path: tenants from the file and
// the -tenant flag merge, and -print-config emits the normalized result.
func TestRunConfigFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cfg.json")
	cfg := server.Config{Tenants: []server.TenantConfig{
		{Name: "filed", Scheme: "SCUE-SC", PoolBytes: 4096, PGs: 2},
	}}
	data, _ := json.Marshal(cfg)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-config", path, "-tenant", "name=flagged,scheme=Steins-GC,pool=4096",
		"-print-config"}, &out, &errb, nil)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errb.String())
	}
	var back server.Config
	if err := json.Unmarshal(out.Bytes(), &back); err != nil {
		t.Fatalf("print-config is not JSON: %v\n%s", err, out.String())
	}
	if len(back.Tenants) != 2 || back.Tenants[0].Name != "filed" || back.Tenants[1].Name != "flagged" {
		t.Fatalf("merged tenants wrong: %+v", back.Tenants)
	}
	if back.Tenants[1].MaxInFlight != server.DefaultMaxInFlight {
		t.Fatalf("normalization did not fill defaults: %+v", back.Tenants[1])
	}
}

// syncBuf is an io.Writer safe to read while the daemon goroutine writes.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// daemon runs one securememd life in a goroutine and hands back its base
// URL once it is serving.
type daemon struct {
	out  *syncBuf
	sig  chan os.Signal
	code chan int
	base string
}

var listenRE = regexp.MustCompile(`serving \d+ tenants on (\S+)`)

func startDaemon(t *testing.T, args []string) *daemon {
	t.Helper()
	d := &daemon{out: &syncBuf{}, sig: make(chan os.Signal, 1), code: make(chan int, 1)}
	errb := &syncBuf{}
	go func() { d.code <- run(args, d.out, errb, d.sig) }()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := listenRE.FindStringSubmatch(d.out.String()); m != nil {
			d.base = "http://" + m[1]
			return d
		}
		select {
		case code := <-d.code:
			t.Fatalf("daemon exited %d before serving\nstdout: %s\nstderr: %s", code, d.out.String(), errb.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon did not start serving\nstdout: %s\nstderr: %s", d.out.String(), errb.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stop delivers SIGTERM and waits for the exit code.
func (d *daemon) stop(t *testing.T) int {
	t.Helper()
	d.sig <- syscall.SIGTERM
	select {
	case code := <-d.code:
		return code
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM\nstdout: %s", d.out.String())
		return -1
	}
}

// TestDaemonServeCheckpointRestart is the daemon's end-to-end life cycle:
// serve writes over real HTTP, drain and checkpoint on SIGTERM, then a
// second life restores the checkpoint, crash-recovers every placement
// group, reports per-tenant recovery, and serves back the exact bytes.
func TestDaemonServeCheckpointRestart(t *testing.T) {
	state := filepath.Join(t.TempDir(), "server.ckpt")
	args := []string{
		"-listen", "127.0.0.1:0",
		"-state", state,
		"-tenant", "name=alpha,scheme=Steins-SC,pool=8192,pgs=2,channels=2",
	}

	d := startDaemon(t, args)
	client := &http.Client{Timeout: 10 * time.Second}
	blockURL := func(addr uint64) string {
		return fmt.Sprintf("%s/v1/tenants/alpha/blocks/%d", d.base, addr)
	}
	want := map[uint64][]byte{}
	for i := 0; i < 32; i++ {
		addr := uint64(i*3%128) * 64
		body := bytes.Repeat([]byte{byte(i + 1)}, 64)
		req, _ := http.NewRequest(http.MethodPut, blockURL(addr), bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT %#x: status %d", addr, resp.StatusCode)
		}
		want[addr] = body
	}
	if resp, err := client.Get(d.base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp)
	} else {
		resp.Body.Close()
	}
	if code := d.stop(t); code != 0 {
		t.Fatalf("first life exited %d\nstdout: %s", code, d.out.String())
	}
	if !strings.Contains(d.out.String(), "checkpoint saved") {
		t.Fatalf("no checkpoint on SIGTERM:\n%s", d.out.String())
	}
	if _, err := os.Stat(state); err != nil {
		t.Fatalf("checkpoint file missing: %v", err)
	}

	// Second life: must report recovery before serving, then serve the
	// first life's bytes.
	d2 := startDaemon(t, args)
	outStr := d2.out.String()
	if !strings.Contains(outStr, "securememd: recovery") ||
		!strings.Contains(outStr, `"tenant":"alpha"`) ||
		!strings.Contains(outStr, `"recovered":true`) {
		t.Fatalf("second life did not report recovery:\n%s", outStr)
	}
	for addr, body := range want {
		resp, err := client.Get(fmt.Sprintf("%s/v1/tenants/alpha/blocks/%d", d2.base, addr))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %#x after restart: status %d (%s)", addr, resp.StatusCode, got)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("GET %#x after restart: got %x…, want %x…", addr, got[:4], body[:4])
		}
	}
	// The recovery endpoint must agree with the startup report.
	resp, err := client.Get(d2.base + "/v1/tenants/alpha/recovery")
	if err != nil {
		t.Fatal(err)
	}
	var rec server.TenantRecovery
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rec.Recovered || rec.PGs != 2 || rec.NodesRecovered == 0 {
		t.Fatalf("recovery endpoint: %+v", rec)
	}
	if code := d2.stop(t); code != 0 {
		t.Fatalf("second life exited %d\nstdout: %s", code, d2.out.String())
	}
}

// TestDaemonRejectsMismatchedCheckpoint pins exit 1 when the checkpoint
// on disk does not match the configured pool shape.
func TestDaemonRejectsMismatchedCheckpoint(t *testing.T) {
	state := filepath.Join(t.TempDir(), "server.ckpt")
	d := startDaemon(t, []string{"-listen", "127.0.0.1:0", "-state", state,
		"-tenant", "name=alpha,scheme=Steins-SC,pool=8192,pgs=2"})
	if code := d.stop(t); code != 0 {
		t.Fatalf("first life exited %d", code)
	}
	var out, errb bytes.Buffer
	code := run([]string{"-listen", "127.0.0.1:0", "-state", state,
		"-tenant", "name=alpha,scheme=Steins-SC,pool=8192,pgs=4"}, &out, &errb, nil)
	if code != 1 {
		t.Fatalf("mismatched restore: exit %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "PGs") && !strings.Contains(errb.String(), "restore") {
		t.Fatalf("stderr does not explain the mismatch: %s", errb.String())
	}
}
