// Command securememd serves multi-tenant secure-memory pools over HTTP:
// every tenant's address space spreads across a pool of placement groups,
// each an independent securemem engine (optionally channel-interleaved),
// with admission control, write coalescing, per-tenant metrics and
// checkpoint-based crash recovery (see internal/server).
//
// Tenants come from repeated -tenant specs, a JSON -config file, or both.
// With -state, an existing checkpoint is loaded on start — the daemon
// restores every controller, models the outage as a crash, recovers each
// placement group and prints one structured recovery report per tenant —
// and a new checkpoint is written on graceful shutdown (SIGTERM/SIGINT
// drain). Bad configurations exit 2 with a structured field-level error;
// serving or checkpoint failures exit 1.
//
// Usage:
//
//	securememd -tenant name=alpha,scheme=Steins-SC,pool=1M,pgs=4,channels=2 \
//	           -state /var/lib/securememd/alpha.ckpt -listen 127.0.0.1:8080
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"steins/internal/server"
	"steins/internal/snapshot"
	"steins/securemem"
)

func main() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, sig))
}

// parseBytes parses a byte count with an optional binary K/M/G suffix
// ("KiB"/"MiB"/"GiB" spellings included): "64K" is 65536.
func parseBytes(s string) (uint64, error) {
	mult := uint64(1)
	for _, suf := range []struct {
		s string
		m uint64
	}{{"GiB", 1 << 30}, {"MiB", 1 << 20}, {"KiB", 1 << 10},
		{"G", 1 << 30}, {"M", 1 << 20}, {"K", 1 << 10}} {
		if strings.HasSuffix(s, suf.s) {
			s, mult = strings.TrimSuffix(s, suf.s), suf.m
			break
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	return n * mult, nil
}

// parseTenantSpec parses one -tenant value: comma-separated key=value
// pairs. Malformed specs are rejected with the same structured
// *server.ConfigError shape pool validation uses, so callers can tell
// which key of which tenant was wrong.
func parseTenantSpec(s string) (server.TenantConfig, error) {
	var tc server.TenantConfig
	bad := func(field, value, reason string) error {
		return &server.ConfigError{Tenant: tc.Name, Field: field, Value: value, Reason: reason}
	}
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || v == "" {
			return tc, bad("tenant", kv, "want key=value")
		}
		var err error
		switch k {
		case "name":
			tc.Name = v
		case "scheme":
			tc.Scheme = securemem.Scheme(v)
		case "pool":
			if tc.PoolBytes, err = parseBytes(v); err != nil {
				return tc, bad("pool", v, "want a byte count (binary K/M/G suffixes ok)")
			}
		case "pgs":
			if tc.PGs, err = strconv.Atoi(v); err != nil {
				return tc, bad("pgs", v, "want a placement-group count")
			}
		case "channels":
			if tc.Channels, err = strconv.Atoi(v); err != nil {
				return tc, bad("channels", v, "want a channel count")
			}
		case "interleave":
			tc.Interleave = v
		case "inflight":
			if tc.MaxInFlight, err = strconv.Atoi(v); err != nil {
				return tc, bad("inflight", v, "want a request bound")
			}
		case "queue":
			if tc.MaxQueuedOps, err = strconv.Atoi(v); err != nil {
				return tc, bad("queue", v, "want an operation bound")
			}
		case "batch":
			if tc.BatchOps, err = strconv.Atoi(v); err != nil {
				return tc, bad("batch", v, "want an operations-per-epoch bound")
			}
		case "cache":
			var b uint64
			if b, err = parseBytes(v); err != nil {
				return tc, bad("cache", v, "want a byte count")
			}
			tc.MetaCacheBytes = int(b)
		case "seed":
			if tc.KeySeed, err = strconv.ParseUint(v, 0, 64); err != nil {
				return tc, bad("seed", v, "want a key seed")
			}
		default:
			return tc, bad(k, v, "unknown tenant spec key (have name, scheme, pool, pgs, channels, interleave, inflight, queue, batch, cache, seed)")
		}
	}
	return tc, nil
}

// loadConfigFile merges a JSON server.Config file into cfg (file tenants
// first, flag tenants appended by the caller).
func loadConfigFile(path string) (server.Config, error) {
	var cfg server.Config
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	if err := json.Unmarshal(data, &cfg); err != nil {
		return cfg, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}

// run is the testable body: 0 on a clean shutdown, 1 on a serving or
// checkpoint failure, 2 on a bad configuration.
func run(args []string, stdout, stderr io.Writer, sig <-chan os.Signal) int {
	fs := flag.NewFlagSet("securememd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen    = fs.String("listen", "127.0.0.1:8080", "listen address (host:port; port 0 picks one)")
		config    = fs.String("config", "", "JSON configuration file (server.Config shape)")
		statePath = fs.String("state", "", "checkpoint file: restored (then crash-recovered) on start when present, written on graceful shutdown")
		metricsOn = fs.Bool("metrics", false, "attach per-controller metrics collectors (richer /metrics)")
		printCfg  = fs.Bool("print-config", false, "validate, print the normalized configuration as JSON and exit")
	)
	var tenants []server.TenantConfig
	fs.Func("tenant", "tenant spec: key=value[,key=value...] with keys name, scheme, pool, pgs, channels, interleave, inflight, queue, batch, cache, seed (repeatable)", func(s string) error {
		tc, err := parseTenantSpec(s)
		if err != nil {
			return err
		}
		tenants = append(tenants, tc)
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var cfg server.Config
	if *config != "" {
		var err error
		if cfg, err = loadConfigFile(*config); err != nil {
			fmt.Fprintf(stderr, "securememd: %v\n", err)
			return 2
		}
	}
	cfg.Tenants = append(cfg.Tenants, tenants...)
	cfg.Metrics = cfg.Metrics || *metricsOn
	cfg, err := cfg.Validate()
	if err != nil {
		fmt.Fprintf(stderr, "securememd: %v\n", err)
		return 2
	}
	if *printCfg {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		enc.Encode(cfg)
		return 0
	}

	pool, err := server.NewPool(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "securememd: %v\n", err)
		return 2
	}

	if *statePath != "" {
		if _, err := os.Stat(*statePath); err == nil {
			st, err := snapshot.LoadServerFile(*statePath)
			if err != nil {
				fmt.Fprintf(stderr, "securememd: load checkpoint: %v\n", err)
				return 1
			}
			if err := pool.RestoreState(st); err != nil {
				fmt.Fprintf(stderr, "securememd: restore checkpoint: %v\n", err)
				return 1
			}
			for _, rep := range pool.CrashRecoverAll() {
				line, _ := json.Marshal(rep)
				fmt.Fprintf(stdout, "securememd: recovery %s\n", line)
			}
		}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "securememd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "securememd: serving %d tenants on %s\n", len(cfg.Tenants), ln.Addr())
	srv := &http.Server{Handler: pool.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(stderr, "securememd: %v\n", err)
		return 1
	case s := <-sig:
		fmt.Fprintf(stdout, "securememd: %v: draining\n", s)
	}

	// Graceful shutdown: stop the HTTP frontend first (no new
	// connections, in-flight handlers complete — the pool is still
	// serving, so they finish), then drain the pool to a quiesced batch
	// boundary, then checkpoint that final state.
	if err := srv.Shutdown(context.Background()); err != nil {
		fmt.Fprintf(stderr, "securememd: %v\n", err)
	}
	pool.Drain()
	if *statePath != "" {
		st, err := pool.State()
		if err != nil {
			fmt.Fprintf(stderr, "securememd: checkpoint: %v\n", err)
			return 1
		}
		if err := snapshot.SaveServerFile(*statePath, st); err != nil {
			fmt.Fprintf(stderr, "securememd: checkpoint: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "securememd: checkpoint saved to %s\n", *statePath)
	}
	return 0
}
