// Command benchjson converts `go test -bench` text output into a stable
// JSON document (BENCH_N.json) and verifies such documents.
//
// The convert mode reads benchmark output on stdin (or -in) and writes
// one JSON object per benchmark: iterations, ns/op, B/op, allocs/op,
// derived ops/sec, and any custom b.ReportMetric values. The -verify mode
// re-parses an existing document and fails unless it is well-formed and
// contains every benchmark of the canonical hot-path set, so a committed
// BENCH file cannot silently rot as benchmarks are renamed.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem . | benchjson -o BENCH_1.json
//	benchjson -verify BENCH_1.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name with the trailing -GOMAXPROCS suffix
	// stripped (recorded separately in Procs).
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// OpsPerSec is 1e9/NsPerOp — the figure the BENCH trajectory tracks.
	OpsPerSec   float64 `json:"ops_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Metrics carries custom b.ReportMetric values (unit -> value).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Document is the whole BENCH_N.json payload.
type Document struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// canonical is the benchmark set every committed BENCH document must
// contain: the hot-path, engine, splitter and snapshot series whose
// trajectory the repository tracks across PRs.
var canonical = []string{
	"BenchmarkHotWritePath",
	"BenchmarkHotReadPath",
	"BenchmarkMACBatchWindow/window1",
	"BenchmarkMACBatchWindow/window16",
	"BenchmarkRunUnsharded",
	"BenchmarkRunSchemes/PipeSIT-GC",
	"BenchmarkRunSchemes/PipeSIT-SC",
	"BenchmarkRunSchemes/Triad-GC",
	"BenchmarkRunSchemes/Triad-SC",
	"BenchmarkRunSharded/1ch",
	"BenchmarkRunSharded/2ch",
	"BenchmarkRunSharded/4ch",
	"BenchmarkSplitterEpoch",
	"BenchmarkSnapshotSave",
	"BenchmarkSnapshotLoad",
	"BenchmarkGCSweepBuild",
	"BenchmarkSCSweepBuild",
	"BenchmarkServePath",
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 on a parse/verify failure, 2
// on bad flags.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in     = fs.String("in", "", "read benchmark text from this file instead of stdin")
		out    = fs.String("o", "", "write the JSON document here instead of stdout")
		verify = fs.String("verify", "", "verify an existing JSON document instead of converting")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if *verify != "" {
		if err := verifyFile(*verify); err != nil {
			return fail(err)
		}
		fmt.Fprintf(stderr, "benchjson: %s ok\n", *verify)
		return 0
	}
	src := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		src = f
	}
	doc, err := Parse(src)
	if err != nil {
		return fail(err)
	}
	if len(doc.Benchmarks) == 0 {
		return fail(fmt.Errorf("no benchmark lines found in input"))
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fail(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return fail(err)
		}
		return 0
	}
	_, err = stdout.Write(data)
	if err != nil {
		return fail(err)
	}
	return 0
}

// Parse reads `go test -bench` text output into a Document. Non-benchmark
// lines (PASS, ok, test logs) are skipped; malformed benchmark lines are
// an error.
func Parse(r io.Reader) (*Document, error) {
	doc := &Document{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.SliceStable(doc.Benchmarks, func(i, j int) bool {
		return doc.Benchmarks[i].Name < doc.Benchmarks[j].Name
	})
	return doc, nil
}

// parseLine decodes one result line: a name, an iteration count, then
// value-unit pairs ("1234 ns/op", "0 allocs/op", "42.5 custom_metric").
func parseLine(line string) (Benchmark, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return Benchmark{}, fmt.Errorf("benchmark line %q too short", line)
	}
	b := Benchmark{Name: f[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchmark %s: iteration count %q: %v", b.Name, f[1], err)
	}
	b.Iterations = iters
	rest := f[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchmark %s: odd value/unit tail %q", b.Name, strings.Join(rest, " "))
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchmark %s: value %q: %v", b.Name, rest[i], err)
		}
		switch unit := rest[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
			if v > 0 {
				b.OpsPerSec = 1e9 / v
			}
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics["MB_per_s"] = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	if b.NsPerOp == 0 {
		return Benchmark{}, fmt.Errorf("benchmark %s: no ns/op figure", b.Name)
	}
	return b, nil
}

// verifyFile checks that path parses as a Document and contains every
// canonical benchmark with a positive timing figure.
func verifyFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	have := make(map[string]Benchmark, len(doc.Benchmarks))
	for _, b := range doc.Benchmarks {
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: benchmark %s has non-positive ns/op %v", path, b.Name, b.NsPerOp)
		}
		if b.Iterations <= 0 {
			return fmt.Errorf("%s: benchmark %s has non-positive iterations %d", path, b.Name, b.Iterations)
		}
		have[b.Name] = b
	}
	var missing []string
	for _, name := range canonical {
		if _, ok := have[name]; !ok {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("%s: missing canonical benchmarks: %s", path, strings.Join(missing, ", "))
	}
	return nil
}
