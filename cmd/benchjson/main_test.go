package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: steins
cpu: Example CPU @ 2.70GHz
BenchmarkHotWritePath-8          	  850000	      1207 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotReadPath-8           	  700000	      1640 ns/op	       0 B/op	       0 allocs/op
BenchmarkMACBatchWindow/window1-8 	 1000000	       823.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkMACBatchWindow/window16-8	 1200000	       715.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkRunUnsharded-8          	      79	  14919836 ns/op	         1340 ops_per_sec	 3597904 B/op	   13242 allocs/op
BenchmarkRunSchemes/PipeSIT-GC-8 	      80	  14500000 ns/op	         1379 ops_per_sec	 3500000 B/op	   13000 allocs/op
BenchmarkRunSchemes/PipeSIT-SC-8 	      78	  15100000 ns/op	         1324 ops_per_sec	 3600000 B/op	   13300 allocs/op
BenchmarkRunSchemes/Triad-GC-8   	      70	  16800000 ns/op	         1190 ops_per_sec	 3700000 B/op	   13500 allocs/op
BenchmarkRunSchemes/Triad-SC-8   	      68	  17200000 ns/op	         1163 ops_per_sec	 3800000 B/op	   13600 allocs/op
BenchmarkRunSharded/1ch-8        	      60	  19000000 ns/op	 4000000 B/op	   14000 allocs/op
BenchmarkRunSharded/2ch-8        	      62	  18600000 ns/op	 4100000 B/op	   14100 allocs/op
BenchmarkRunSharded/4ch-8        	      64	  18763867 ns/op	 4200000 B/op	   14200 allocs/op
BenchmarkSplitterEpoch-8         	   16000	     72500 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotSave-8          	     320	   3700000 ns/op	  250000 snapshot_bytes	     896 allocs_per_save	  900000 B/op	     896 allocs/op
BenchmarkSnapshotLoad-8          	     430	   2770000 ns/op	  90.25 MB/s	 1200000 B/op	    2000 allocs/op
BenchmarkGCSweepBuild-8          	       2	 900000000 ns/op
BenchmarkSCSweepBuild-8          	       3	 700000000 ns/op
BenchmarkServePath-8             	  250000	      4100 ns/op	        64.00 ops_per_batch	     700 B/op	      10 allocs/op
PASS
ok  	steins	42.000s
`

func TestParseSample(t *testing.T) {
	doc, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Pkg != "steins" || doc.CPU != "Example CPU @ 2.70GHz" {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 18 {
		t.Fatalf("parsed %d benchmarks, want 18", len(doc.Benchmarks))
	}
	byName := map[string]Benchmark{}
	for _, b := range doc.Benchmarks {
		byName[b.Name] = b
	}
	hw := byName["BenchmarkHotWritePath"]
	if hw.Procs != 8 || hw.Iterations != 850000 || hw.NsPerOp != 1207 {
		t.Fatalf("HotWritePath = %+v", hw)
	}
	if hw.OpsPerSec < 828000 || hw.OpsPerSec > 829000 {
		t.Fatalf("HotWritePath ops/sec = %v", hw.OpsPerSec)
	}
	ru := byName["BenchmarkRunUnsharded"]
	if ru.Metrics["ops_per_sec"] != 1340 || ru.AllocsPerOp != 13242 {
		t.Fatalf("RunUnsharded = %+v", ru)
	}
	sl := byName["BenchmarkSnapshotLoad"]
	if sl.Metrics["MB_per_s"] != 90.25 {
		t.Fatalf("SnapshotLoad = %+v", sl)
	}
	// Output ordering is name-sorted, so re-rendering is deterministic.
	for i := 1; i < len(doc.Benchmarks); i++ {
		if doc.Benchmarks[i-1].Name > doc.Benchmarks[i].Name {
			t.Fatalf("benchmarks not sorted: %q after %q",
				doc.Benchmarks[i].Name, doc.Benchmarks[i-1].Name)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                    // no iterations
		"BenchmarkX notanumber 5 ns/op", // bad count
		"BenchmarkX 10 5",               // odd tail
		"BenchmarkX 10 bad ns/op",       // bad value
		"BenchmarkX 10 7 B/op",          // no ns/op
	} {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("line %q parsed without error", line)
		}
	}
}

func TestConvertAndVerifyRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_test.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", out}, strings.NewReader(sample), &stdout, &stderr); code != 0 {
		t.Fatalf("convert exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	stderr.Reset()
	if code := run([]string{"-verify", out}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("verify exited %d: %s", code, stderr.String())
	}
}

func TestVerifyCatchesMissingCanonical(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_missing.json")
	doc := Document{Benchmarks: []Benchmark{
		{Name: "BenchmarkHotWritePath", Procs: 8, Iterations: 10, NsPerOp: 5, OpsPerSec: 2e8},
	}}
	data, _ := json.Marshal(doc)
	if err := os.WriteFile(out, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", out}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("verify of incomplete doc exited %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "missing canonical") {
		t.Fatalf("verify error %q does not name the missing set", stderr.String())
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_bad.json")
	if err := os.WriteFile(out, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-verify", out}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("verify of garbage exited %d, want 1", code)
	}
}
