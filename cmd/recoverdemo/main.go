// Command recoverdemo walks through a crash and recovery step by step for
// each recoverable scheme, narrating what survives the power failure, what
// is lost, and how the scheme rebuilds and verifies the SIT — the §III-G
// story in executable form.
package main

import (
	"fmt"

	"steins/internal/memctrl"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
	"steins/internal/sim"
	"steins/internal/stats"
)

func main() {
	for _, s := range []sim.Scheme{sim.SteinsGC, sim.SteinsSC, sim.ASIT, sim.STAR, sim.SCUEGC} {
		demo(s)
		fmt.Println()
	}
}

func demo(s sim.Scheme) {
	fmt.Printf("=== %s ===\n", s.Name)
	cfg := memctrl.DefaultConfig(4<<20, s.Split)
	cfg.MetaCacheBytes = 16 << 10
	c := memctrl.New(cfg, s.Factory)

	// Phase 1: a burst of writes leaves dirty metadata in the cache.
	r := rng.New(7)
	lines := cfg.DataBytes / 64
	payload := func(addr uint64) [64]byte {
		var b [64]byte
		copy(b[:], fmt.Sprintf("block %#x", addr))
		return b
	}
	written := map[uint64][64]byte{}
	for i := 0; i < 5000; i++ {
		addr := r.Uint64n(lines) * 64
		b := payload(addr)
		if err := c.WriteData(10, addr, b); err != nil {
			panic(err)
		}
		written[addr] = b
	}
	fmt.Printf("phase 1: %d blocks written; metadata cache holds %d nodes (%d dirty evictions so far)\n",
		len(written), c.Meta().Len(), c.Meta().Stats().DirtyEvictions)

	if p, ok := c.Policy().(*steins.Policy); ok {
		fmt.Printf("         LIncs = %v, NV buffer = %d entries\n", p.LIncs(), p.BufferedEntries())
	}

	// Phase 2: power failure.
	c.Crash()
	fmt.Println("phase 2: CRASH — metadata cache lost; ADR flushed tracking lines;",
		"on-chip NV state (root, LIncs/roots) survives")

	// Phase 3: recovery.
	rep, err := c.Recover()
	if err != nil {
		panic(err)
	}
	fmt.Printf("phase 3: recovered %d nodes with %d NVM reads, %d writes, %d MAC ops -> %s\n",
		rep.NodesRecovered, rep.NVMReads, rep.NVMWrites, rep.MACOps, stats.Seconds(rep.TimeNS))

	// Phase 4: verify every block decrypts and verifies.
	bad := 0
	for addr, want := range written {
		got, err := c.ReadData(1, addr)
		if err != nil || got != want {
			bad++
		}
	}
	fmt.Printf("phase 4: %d/%d blocks verified after recovery\n", len(written)-bad, len(written))
	if bad > 0 {
		panic("recovery lost data")
	}
}
