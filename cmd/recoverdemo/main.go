// Command recoverdemo walks through a crash and recovery step by step for
// each recoverable scheme, narrating what survives the power failure, what
// is lost, and how the scheme rebuilds and verifies the SIT — the §III-G
// story in executable form. Any write, recovery or verification failure
// exits non-zero with a diagnostic.
package main

import (
	"fmt"
	"io"
	"os"

	"steins/internal/memctrl"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
	"steins/internal/sim"
	"steins/internal/stats"
)

func main() {
	os.Exit(run(os.Stdout, os.Stderr))
}

// run is the testable body: 0 on success, 1 when any scheme's demo fails.
func run(stdout, stderr io.Writer) int {
	for _, s := range []sim.Scheme{sim.SteinsGC, sim.SteinsSC, sim.ASIT, sim.STAR, sim.SCUEGC} {
		if err := demo(s, stdout); err != nil {
			fmt.Fprintf(stderr, "recoverdemo: %s: %v\n", s.Name, err)
			return 1
		}
		fmt.Fprintln(stdout)
	}
	return 0
}

func demo(s sim.Scheme, w io.Writer) error {
	fmt.Fprintf(w, "=== %s ===\n", s.Name)
	cfg := memctrl.DefaultConfig(4<<20, s.Split)
	cfg.MetaCacheBytes = 16 << 10
	c := memctrl.New(cfg, s.Factory)

	// Phase 1: a burst of writes leaves dirty metadata in the cache.
	r := rng.New(7)
	lines := cfg.DataBytes / 64
	payload := func(addr uint64) [64]byte {
		var b [64]byte
		copy(b[:], fmt.Sprintf("block %#x", addr))
		return b
	}
	written := map[uint64][64]byte{}
	for i := 0; i < 5000; i++ {
		addr := r.Uint64n(lines) * 64
		b := payload(addr)
		if err := c.WriteData(10, addr, b); err != nil {
			return fmt.Errorf("phase 1 write %#x: %w", addr, err)
		}
		written[addr] = b
	}
	fmt.Fprintf(w, "phase 1: %d blocks written; metadata cache holds %d nodes (%d dirty evictions so far)\n",
		len(written), c.Meta().Len(), c.Meta().Stats().DirtyEvictions)

	if p, ok := c.Policy().(*steins.Policy); ok {
		fmt.Fprintf(w, "         LIncs = %v, NV buffer = %d entries\n", p.LIncs(), p.BufferedEntries())
	}

	// Phase 2: power failure.
	c.Crash()
	fmt.Fprintln(w, "phase 2: CRASH — metadata cache lost; ADR flushed tracking lines;",
		"on-chip NV state (root, LIncs/roots) survives")

	// Phase 3: recovery.
	rep, err := c.Recover()
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	fmt.Fprintf(w, "phase 3: recovered %d nodes with %d NVM reads, %d writes, %d MAC ops -> %s\n",
		rep.NodesRecovered, rep.NVMReads, rep.NVMWrites, rep.MACOps, stats.Seconds(rep.TimeNS))

	// Phase 4: verify every block decrypts and verifies.
	bad := 0
	for addr, want := range written {
		got, err := c.ReadData(1, addr)
		if err != nil || got != want {
			bad++
		}
	}
	fmt.Fprintf(w, "phase 4: %d/%d blocks verified after recovery\n", len(written)-bad, len(written))
	if bad > 0 {
		return fmt.Errorf("recovery lost data: %d/%d blocks failed verification", bad, len(written))
	}
	return nil
}
