package main

import (
	"strings"
	"testing"

	"steins/internal/sim"
)

func TestDemoAllSchemes(t *testing.T) {
	var out, errb strings.Builder
	if code := run(&out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"Steins-GC", "Steins-SC", "ASIT", "STAR", "SCUE-GC", "phase 4"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDemoSingleScheme(t *testing.T) {
	var out strings.Builder
	if err := demo(sim.SteinsSC, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "blocks verified after recovery") {
		t.Fatalf("missing verification line:\n%s", out.String())
	}
}
