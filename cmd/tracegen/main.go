// Command tracegen records workload traces to the repository's binary
// trace format and summarises existing trace files, so experiments can be
// replayed bit-identically across schemes and machines.
//
//	tracegen -workload lbm_r -ops 100000 -o lbm.trace
//	tracegen -summarize lbm.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"steins/internal/stats"
	"steins/internal/trace"
)

func main() {
	var (
		workload  = flag.String("workload", "", "workload profile to record")
		ops       = flag.Int("ops", 100000, "operations to record")
		seed      = flag.Uint64("seed", 1, "generator seed")
		out       = flag.String("o", "", "output trace file")
		summarize = flag.String("summarize", "", "trace file to summarise")
	)
	flag.Parse()

	switch {
	case *summarize != "":
		f, err := os.Open(*summarize)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		name, recorded, err := trace.ReadFile(f)
		if err != nil {
			fatal(err)
		}
		summary(name, recorded)
	case *workload != "":
		p, ok := trace.ByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		recorded := trace.Record(p, *seed, *ops)
		if *out == "" {
			summary(p.Name, recorded)
			return
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteFile(f, p.Name, recorded); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded %d ops of %s to %s\n", len(recorded), p.Name, *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summary(name string, ops []trace.Op) {
	writes, gaps := 0, uint64(0)
	distinct := map[uint64]bool{}
	var maxAddr uint64
	for _, op := range ops {
		if op.IsWrite {
			writes++
		}
		gaps += op.Gap
		distinct[op.Addr] = true
		if op.Addr > maxAddr {
			maxAddr = op.Addr
		}
	}
	t := stats.NewTable("trace "+name, "metric", "value")
	t.AddRow("operations", fmt.Sprint(len(ops)))
	t.AddRow("writes", fmt.Sprintf("%d (%.1f%%)", writes, 100*float64(writes)/float64(max(1, len(ops)))))
	t.AddRow("distinct lines", fmt.Sprint(len(distinct)))
	t.AddRow("touched span", stats.Bytes(maxAddr+64))
	if len(ops) > 0 {
		t.AddRow("mean gap", fmt.Sprintf("%.0f cycles", float64(gaps)/float64(len(ops))))
	}
	fmt.Print(t)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
