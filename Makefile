# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench bench-json figs figs-full fuzz crashfuzz faultfuzz campaign check serve-check cover clean metrics-demo

# The canonical benchmark set persisted to BENCH_$(BENCH_REV).json; keep in
# sync with the `canonical` list in cmd/benchjson.
BENCH_REV ?= 3
BENCH_PATTERN = HotWritePath|HotReadPath|MACBatchWindow|RunUnsharded|RunSchemes|RunSharded|SplitterEpoch|SnapshotSave|SnapshotLoad|GCSweepBuild|SCSweepBuild|ServePath

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

# Persist the canonical hot-path benchmark series as a machine-readable
# trajectory point, then verify the document is complete before it can be
# committed.
bench-json:
	go test -run NONE -bench '$(BENCH_PATTERN)' -benchmem . \
		| go run ./cmd/benchjson -o BENCH_$(BENCH_REV).json
	go run ./cmd/benchjson -verify BENCH_$(BENCH_REV).json

figs:
	go run ./cmd/benchfigs

figs-full:
	go run ./cmd/benchfigs -scale full | tee figs_full.txt

fuzz:
	go test -fuzz=FuzzSplitIncrementMonotone -fuzztime=20s ./internal/counter
	go test -fuzz=FuzzReadFile -fuzztime=20s ./internal/trace
	go test -fuzz=FuzzSplitterRoundTrip -fuzztime=20s ./internal/trace
	go test -fuzz=FuzzRecordReplay -fuzztime=20s ./internal/crashfuzz
	go test -fuzz=FuzzFaultRecovery -fuzztime=20s ./internal/crashfuzz
	go test -fuzz=FuzzSnapshotRoundTrip -fuzztime=20s ./internal/snapshot
	go test -fuzz=FuzzReadEnvelope -fuzztime=20s ./internal/snapshot
	go test -fuzz=FuzzCampaignSchedule -fuzztime=20s ./internal/campaign

# Short deterministic crash-point fault-injection sweep: every scheme,
# pinned seeds, torn-write detection demo included.
crashfuzz:
	go run ./cmd/crashfuzz -scheme steins-gc -workload pers_queue -crashes 100 -seed 1 -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_queue -crashes 100 -seed 1 -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_hash -crashes 60 -seed 2 -q
	go run ./cmd/crashfuzz -scheme asit -workload pers_queue -crashes 40 -seed 3 -q
	go run ./cmd/crashfuzz -scheme star -workload pers_queue -crashes 40 -seed 4 -q
	go run ./cmd/crashfuzz -scheme scue -workload pers_queue -crashes 25 -seed 5 -q
	go run ./cmd/crashfuzz -scheme bmt -workload pers_queue -crashes 40 -seed 6 -q
	go run ./cmd/crashfuzz -scheme pipesit -workload pers_queue -crashes 25 -seed 7 -q
	go run ./cmd/crashfuzz -scheme pipesit-sc -workload pers_hash -crashes 20 -seed 8 -q
	go run ./cmd/crashfuzz -scheme triad -workload pers_queue -crashes 40 -seed 9 -q
	go run ./cmd/crashfuzz -scheme triad-sc -workload pers_hash -crashes 30 -seed 10 -q

# Differential media-fault sweep: seeded fault model (transient flips,
# stuck cells, torn crash writes) + deliberate interior-node corruption,
# pinned seeds. Steins schemes heal in degraded mode; the rest must
# quarantine or reject with a classified error — never corrupt silently.
faultfuzz:
	go run ./cmd/crashfuzz -scheme steins-gc -workload pers_hash -crashes 5 -seed 3 \
		-faults 'transient=1e-3,double=0.25,stuck=1e-4,torn=0.25' -corrupt 2 -degraded -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_hash -crashes 5 -seed 4 -footprint 1048576 \
		-faults 'transient=1e-3,double=0.25,stuck=1e-4' -corrupt 3 -degraded -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_queue -crashes 6 -seed 5 \
		-faults 'transient=2e-3,double=0.5,torn=0.5' -q
	go run ./cmd/crashfuzz -scheme asit -workload pers_hash -crashes 4 -seed 6 \
		-faults 'transient=1e-3,double=0.25' -corrupt 1 -degraded -q
	go run ./cmd/crashfuzz -scheme star -workload pers_hash -crashes 4 -seed 7 \
		-faults 'transient=1e-3,double=0.25' -corrupt 1 -degraded -q
	go run ./cmd/crashfuzz -scheme scue -workload pers_queue -crashes 3 -seed 8 \
		-faults 'transient=1e-3,double=0.25' -corrupt 1 -degraded -q
	go run ./cmd/crashfuzz -scheme bmt -workload pers_queue -crashes 4 -seed 9 \
		-faults 'transient=1e-3,double=0.25,stuck=1e-4' -q
	go run ./cmd/crashfuzz -scheme steins-gc -workload pers_queue -crashes 6 -seed 10 \
		-faults 'transient=5e-3' -ecc=false -q
	go run ./cmd/crashfuzz -scheme pipesit -workload pers_queue -crashes 3 -seed 11 \
		-faults 'transient=1e-3,double=0.25' -corrupt 1 -degraded -q
	go run ./cmd/crashfuzz -scheme triad-sc -workload pers_queue -crashes 3 -seed 12 \
		-faults 'transient=1e-3,double=0.25' -corrupt 1 -degraded -q

# Deterministic adversarial campaign: 5040 randomized hostile cases across
# all 12 schemes × 1/2/4 channels, run twice (-verify demands byte-identical
# reports) under the zero-silent-corruption contract, then a byte-compared
# degraded-tamper slice (-degraded forces every case through the evidence-
# arbitration/quarantine path with the full tamper grammar), then a
# deliberate corruption whose repro artifact must replay (-repro) to the
# identical classification.
campaign:
	go run ./cmd/campaign -cases 5040 -seed 1 -selfcheck-every 250 -verify -q
	go run ./cmd/campaign -cases 1260 -seed 3 -degraded -selfcheck-every 0 -verify -q
	go run ./cmd/campaign -seed 2 -selfcheck campaign_selfcheck.repro -q
	go run ./cmd/campaign -repro campaign_selfcheck.repro
	rm -f campaign_selfcheck.repro

# Phase-attribution + occupancy snapshots for one run and one sweep.
metrics-demo:
	go run ./cmd/steinssim -workload cactusADM -scheme Steins-GC -ops 20000 -metrics metrics_demo.json
	go run ./cmd/benchfigs -fig 12 -metrics metrics_demo.csv

# CI gate: vet, the crash harness, the media-fault sweep, and the
# race-sensitive packages (figure sweeps and parallel recovery under both
# GOMAXPROCS settings). The sharded engine and conformance suite
# additionally run at -cpu 1,2,8 to pin bit-identical results across
# worker-pool widths. The checkpoint/resume suites run raced and twice
# (-count=2) to pin byte-determinism of the snapshot wire format. The
# quarantine/re-admission suites (evidence-arbitrated degraded recovery)
# run raced at -cpu 1,4 across the steins policy, the controller and the
# campaign's replay-boundary repro artifacts. Every go test runs
# -shuffle=on so order-dependent tests cannot hide. The committed BENCH
# document is re-verified so the persisted trajectory can never drift out
# of sync with the canonical benchmark set.
# Serving-layer gate: the linearization differential, crash-mid-serve
# checkpoint/restart, admission property and daemon suites, plus the HTTP
# conformance drive (all 12 schemes × 1/2/4 channels) and the concurrent
# engine hammer — raced, shuffled, across -cpu 1,4,8 so the linearization
# argument is exercised under every worker-pool width.
serve-check:
	go test -shuffle=on -race -cpu 1,4,8 ./internal/server ./cmd/securememd
	go test -shuffle=on -race -cpu 1,4,8 \
		-run 'HTTPConformance|ConcurrentHammer|ChannelsDataPlane|ChannelsValidation' ./securemem

check: crashfuzz faultfuzz serve-check
	go vet ./...
	go test -shuffle=on -race -cpu 1,4 ./internal/crashfuzz ./internal/figures \
		./internal/metrics ./internal/sim ./internal/multi \
		./internal/nvmem ./internal/memctrl ./internal/attack
	go test -shuffle=on -race -cpu 1,4 -run 'Quarantine|Readmission|Degraded|Heal|ReplayBoundary' \
		./internal/scheme/steins ./internal/memctrl ./internal/campaign
	go test -shuffle=on -race -cpu 1,2,8 -run 'Sharded|Conformance|Splitter|Interleave|NextEpoch|Replay|RecoverAll|DriveStream' \
		./internal/sim ./internal/trace ./internal/multi ./internal/scheme/schemetest ./securemem
	go test -shuffle=on -race -cpu 1,4 -run 'Resume|Snapshot|Campaign|Checkpoint|Artifact|SelfCheck' \
		./internal/snapshot ./internal/scheme/schemetest ./internal/crashfuzz \
		./internal/campaign ./cmd/campaign ./cmd/steinssim
	go test -shuffle=on -count=2 ./internal/snapshot ./internal/scheme/schemetest ./internal/campaign
	go test -shuffle=on ./cmd/benchjson
	go run ./cmd/benchjson -verify BENCH_$(BENCH_REV).json

cover:
	go test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt metrics_demo.json metrics_demo.csv
