# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench figs figs-full fuzz cover clean

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

figs:
	go run ./cmd/benchfigs

figs-full:
	go run ./cmd/benchfigs -scale full | tee figs_full.txt

fuzz:
	go test -fuzz=FuzzSplitIncrementMonotone -fuzztime=20s ./internal/counter
	go test -fuzz=FuzzReadFile -fuzztime=20s ./internal/trace

cover:
	go test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt
