# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench figs figs-full fuzz crashfuzz check cover clean metrics-demo

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem .

figs:
	go run ./cmd/benchfigs

figs-full:
	go run ./cmd/benchfigs -scale full | tee figs_full.txt

fuzz:
	go test -fuzz=FuzzSplitIncrementMonotone -fuzztime=20s ./internal/counter
	go test -fuzz=FuzzReadFile -fuzztime=20s ./internal/trace
	go test -fuzz=FuzzSplitterRoundTrip -fuzztime=20s ./internal/trace
	go test -fuzz=FuzzRecordReplay -fuzztime=20s ./internal/crashfuzz

# Short deterministic crash-point fault-injection sweep: every scheme,
# pinned seeds, torn-write detection demo included.
crashfuzz:
	go run ./cmd/crashfuzz -scheme steins-gc -workload pers_queue -crashes 100 -seed 1 -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_queue -crashes 100 -seed 1 -q
	go run ./cmd/crashfuzz -scheme steins-sc -workload pers_hash -crashes 60 -seed 2 -q
	go run ./cmd/crashfuzz -scheme asit -workload pers_queue -crashes 40 -seed 3 -q
	go run ./cmd/crashfuzz -scheme star -workload pers_queue -crashes 40 -seed 4 -q
	go run ./cmd/crashfuzz -scheme scue -workload pers_queue -crashes 25 -seed 5 -q
	go run ./cmd/crashfuzz -scheme bmt -workload pers_queue -crashes 40 -seed 6 -q

# Phase-attribution + occupancy snapshots for one run and one sweep.
metrics-demo:
	go run ./cmd/steinssim -workload cactusADM -scheme Steins-GC -ops 20000 -metrics metrics_demo.json
	go run ./cmd/benchfigs -fig 12 -metrics metrics_demo.csv

# CI gate: vet, the crash harness, and the race-sensitive packages
# (figure sweeps and parallel recovery under both GOMAXPROCS settings).
# The sharded engine and conformance suite additionally run at -cpu 1,2,8
# to pin bit-identical results across worker-pool widths.
check: crashfuzz
	go vet ./...
	go test -race -cpu 1,4 ./internal/crashfuzz ./internal/figures \
		./internal/metrics ./internal/sim ./internal/multi
	go test -race -cpu 1,2,8 -run 'Sharded|Conformance|Splitter|Interleave|NextEpoch|Replay|RecoverAll' \
		./internal/sim ./internal/trace ./internal/multi ./internal/scheme/schemetest

cover:
	go test -cover ./...

clean:
	rm -f test_output.txt bench_output.txt metrics_demo.json metrics_demo.csv
