module steins

go 1.22
