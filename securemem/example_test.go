package securemem_test

import (
	"errors"
	"fmt"

	"steins/securemem"
)

// The canonical flow: write, read, crash, recover, read again.
func Example() {
	m, err := securemem.New(securemem.Config{
		DataBytes: 1 << 20,
		Scheme:    securemem.SteinsSC,
	})
	if err != nil {
		panic(err)
	}

	var block securemem.Block
	copy(block[:], "attack at dawn")
	if err := m.Write(0x1000, block); err != nil {
		panic(err)
	}

	m.Crash() // power failure: the covering leaf counter was still dirty

	if _, err := m.Recover(); err != nil {
		panic(err)
	}
	got, err := m.Read(0x1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", got[:14])
	// Output: attack at dawn
}

// Tampering with NVM is detected and localised.
func Example_tamperDetection() {
	m, _ := securemem.New(securemem.Config{
		DataBytes: 1 << 20,
		Scheme:    securemem.SteinsGC,
	})
	var block securemem.Block
	block[0] = 7
	if err := m.Write(0x40, block); err != nil {
		panic(err)
	}

	// An attacker with physical access flips a ciphertext bit.
	dev := m.Controller().Device()
	line := dev.Peek(0x40)
	line[0] ^= 1
	dev.Poke(0x40, line)

	_, err := m.Read(0x40)
	fmt.Println(errors.Is(err, securemem.ErrTamper))

	var v *securemem.Violation
	if errors.As(err, &v) {
		fmt.Printf("attacked data block %#x\n", v.DataAddr)
	}
	// Output:
	// true
	// attacked data block 0x40
}

// Schemes differ in recovery cost; the report quantifies it.
func Example_recoveryReport() {
	for _, scheme := range []securemem.Scheme{securemem.ASIT, securemem.SteinsSC} {
		m, _ := securemem.New(securemem.Config{
			DataBytes: 1 << 20, Scheme: scheme, MetaCacheBytes: 8 << 10,
		})
		var b securemem.Block
		for i := uint64(0); i < 1000; i++ {
			if err := m.Write(i*64*5%(1<<20), b); err != nil {
				panic(err)
			}
		}
		m.Crash()
		rep, err := m.Recover()
		fmt.Printf("%s recovered everything: %v (reads > 0: %v)\n",
			scheme, err == nil, rep.NVMReads > 0)
	}
	// Output:
	// ASIT recovered everything: true (reads > 0: true)
	// Steins-SC recovered everything: true (reads > 0: true)
}
