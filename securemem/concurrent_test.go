package securemem_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"steins/securemem"
)

// The Memory's documented concurrency contract: every method serializes
// on an internal mutex, so hammering one instance from 8 goroutines must
// be race-free (pinned under -race in `make serve-check`) and every
// goroutine's per-address write order must be observed by its own reads.
// Each goroutine owns a disjoint address stripe, so its operations on a
// given address are totally ordered regardless of the cross-goroutine
// interleaving — the data plane must reflect exactly that order.
func TestMemoryConcurrentHammer(t *testing.T) {
	for _, channels := range []int{1, 2} {
		t.Run(fmt.Sprintf("%dch", channels), func(t *testing.T) {
			const (
				goroutines = 8
				opsPerG    = 300
				dataBytes  = 256 << 10
			)
			m, err := securemem.New(securemem.Config{
				DataBytes: dataBytes,
				Scheme:    securemem.SteinsSC,
				Channels:  channels,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Phase 1: 8 goroutines hammer one instance concurrently.
			finals := make([]map[uint64]securemem.Block, goroutines)
			var wg sync.WaitGroup
			errs := make([]error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					last := map[uint64]securemem.Block{}
					for i := 0; i < opsPerG; i++ {
						// Stripe addresses by goroutine so each address has a
						// single writer; wrap within the region.
						addr := uint64((g+goroutines*(i%17))*securemem.BlockSize) % dataBytes
						addr -= addr % securemem.BlockSize
						if i%3 == 2 {
							got, err := m.Read(addr)
							if err != nil {
								errs[g] = fmt.Errorf("read %#x: %w", addr, err)
								return
							}
							if want, ok := last[addr]; ok && got != want {
								errs[g] = fmt.Errorf("read %#x: lost own write", addr)
								return
							}
							continue
						}
						var b securemem.Block
						b[0], b[1], b[2] = byte(g), byte(i), byte(addr>>6)
						if err := m.Write(addr, b); err != nil {
							errs[g] = fmt.Errorf("write %#x: %w", addr, err)
							return
						}
						last[addr] = b
					}
					finals[g] = last
				}(g)
			}
			wg.Wait()
			for g, err := range errs {
				if err != nil {
					t.Fatalf("goroutine %d: %v", g, err)
				}
			}

			// Phase 2: quiesced — every goroutine's final values are visible.
			verify := func(stage string) {
				for g, last := range finals {
					for addr, want := range last {
						got, err := m.Read(addr)
						if err != nil {
							t.Fatalf("%s: goroutine %d addr %#x: %v", stage, g, addr, err)
						}
						if got != want {
							t.Fatalf("%s: goroutine %d addr %#x: silent corruption", stage, g, addr)
						}
					}
				}
			}
			verify("pre-crash")

			// Phase 3: crash + recover (per channel, in parallel), re-verify.
			m.Crash()
			if _, err := m.Recover(); err != nil {
				t.Fatalf("recover: %v", err)
			}
			verify("post-recovery")

			if st := m.Stats(); st.Writes == 0 || st.Reads == 0 {
				t.Fatalf("stats lost the concurrent traffic: %+v", st)
			}
		})
	}
}

// Concurrent callers and channels must not change the single-threaded
// data-plane contract: a Channels=2 instance driven sequentially returns
// byte-identical readback to a single-controller instance over the same
// operation sequence.
func TestChannelsDataPlaneEquivalence(t *testing.T) {
	const dataBytes = 128 << 10
	mk := func(channels int) *securemem.Memory {
		m, err := securemem.New(securemem.Config{
			DataBytes: dataBytes, Scheme: securemem.SteinsGC, Channels: channels,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	ref, two := mk(1), mk(2)
	for i := 0; i < 500; i++ {
		addr := uint64(i*7%2048) * securemem.BlockSize
		var b securemem.Block
		b[0], b[1] = byte(i), byte(i>>8)
		if err := ref.Write(addr, b); err != nil {
			t.Fatal(err)
		}
		if err := two.Write(addr, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2048; i++ {
		addr := uint64(i) * securemem.BlockSize
		a, err := ref.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		b, err := two.Read(addr)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("addr %#x: 1ch and 2ch readback differ", addr)
		}
	}
}

// Config validation: channel counts that cannot tile the region are
// rejected up front, and WB recovery still reports ErrNoRecovery through
// the multi-channel path.
func TestChannelsValidationAndWB(t *testing.T) {
	if _, err := securemem.New(securemem.Config{
		DataBytes: 64 * 3, Scheme: securemem.SteinsGC, Channels: 2,
	}); err == nil {
		t.Fatal("DataBytes not a multiple of Channels×64 accepted")
	}
	if _, err := securemem.New(securemem.Config{
		DataBytes: 1 << 20, Scheme: securemem.SteinsGC, Channels: -1,
	}); err == nil {
		t.Fatal("negative Channels accepted")
	}
	m, err := securemem.New(securemem.Config{
		DataBytes: 1 << 20, Scheme: securemem.WBSC, Channels: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write(0, securemem.Block{1}); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if _, err := m.Recover(); !errors.Is(err, securemem.ErrNoRecovery) {
		t.Fatalf("WB over channels: Recover() = %v, want ErrNoRecovery", err)
	}
}
