package securemem_test

import (
	"errors"
	"testing"

	"steins/securemem"
)

func TestAllSchemesRoundTrip(t *testing.T) {
	for _, s := range securemem.Schemes() {
		m, err := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: s, MetaCacheBytes: 8 << 10})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var b securemem.Block
		copy(b[:], "hello secure world")
		if err := m.Write(0x2000, b); err != nil {
			t.Fatalf("%s write: %v", s, err)
		}
		got, err := m.Read(0x2000)
		if err != nil || got != b {
			t.Fatalf("%s read: %v", s, err)
		}
		if m.Scheme() != s {
			t.Fatalf("Scheme() = %q", m.Scheme())
		}
	}
}

func TestCrashRecoverPublicAPI(t *testing.T) {
	m, err := securemem.New(securemem.Config{
		DataBytes: 1 << 20, Scheme: securemem.SteinsSC, MetaCacheBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	blocks := map[uint64]securemem.Block{}
	for i := uint64(0); i < 500; i++ {
		addr := i * 64 * 3 % (1 << 20)
		var b securemem.Block
		b[0], b[1] = byte(i), byte(i>>8)
		if err := m.Write(addr, b); err != nil {
			t.Fatal(err)
		}
		blocks[addr] = b
	}
	m.Crash()
	rep, err := m.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.SimulatedNS <= 0 {
		t.Fatalf("report %+v", rep)
	}
	for addr, want := range blocks {
		got, err := m.Read(addr)
		if err != nil || got != want {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
	}
}

func TestWBHasNoRecovery(t *testing.T) {
	m, _ := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: securemem.WBGC})
	m.Crash()
	if _, err := m.Recover(); !errors.Is(err, securemem.ErrNoRecovery) {
		t.Fatalf("WB recover = %v", err)
	}
}

func TestTamperSurfacesViolation(t *testing.T) {
	m, _ := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: securemem.SteinsGC})
	var b securemem.Block
	b[0] = 1
	if err := m.Write(0, b); err != nil {
		t.Fatal(err)
	}
	line := m.Controller().Device().Peek(0)
	line[5] ^= 1
	m.Controller().Device().Poke(0, line)
	_, err := m.Read(0)
	if !errors.Is(err, securemem.ErrTamper) {
		t.Fatalf("tampered read = %v", err)
	}
	var v *securemem.Violation
	if !errors.As(err, &v) || v.DataAddr != 0 {
		t.Fatalf("violation not localised: %v", err)
	}
}

func TestStatsPopulated(t *testing.T) {
	m, _ := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: securemem.SteinsSC})
	var b securemem.Block
	for i := uint64(0); i < 200; i++ {
		if err := m.Write(i*64, b); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Read(i * 64); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Reads != 200 || st.Writes != 200 {
		t.Fatalf("counts %+v", st)
	}
	if st.ExecCycles == 0 || st.AvgWriteCycles == 0 || st.P99ReadCycles == 0 ||
		st.NVMWriteBytes == 0 || st.EnergyPJ <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if w := m.NVMWear(); w.TotalWrites == 0 {
		t.Fatalf("wear not populated: %+v", w)
	}
	if m.Describe() == "" {
		t.Fatal("empty Describe")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := securemem.New(securemem.Config{DataBytes: 100, Scheme: securemem.SteinsGC}); err == nil {
		t.Fatal("unaligned DataBytes accepted")
	}
	if _, err := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: "bogus"}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if _, err := securemem.New(securemem.Config{Scheme: securemem.SteinsGC}); err == nil {
		t.Fatal("zero DataBytes accepted")
	}
}

func TestKeySeedSeparation(t *testing.T) {
	build := func(seed uint64) securemem.Block {
		m, _ := securemem.New(securemem.Config{DataBytes: 1 << 20, Scheme: securemem.WBGC, KeySeed: seed})
		var b securemem.Block
		b[0] = 42
		if err := m.Write(0, b); err != nil {
			t.Fatal(err)
		}
		return securemem.Block(m.Controller().Device().Peek(0))
	}
	if build(1) == build(2) {
		t.Fatal("different keys produced identical ciphertexts")
	}
}
