package securemem_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"steins/internal/server"
	"steins/internal/trace"
	"steins/securemem"
)

// httpTenant drives one tenant through the serving layer's HTTP handler
// in-process (httptest recorders, no network).
type httpTenant struct {
	t    *testing.T
	h    http.Handler
	name string
}

func (ht *httpTenant) batch(ops []server.BatchOp) []server.BatchResult {
	ht.t.Helper()
	body, err := json.Marshal(struct {
		Ops []server.BatchOp `json:"ops"`
	}{ops})
	if err != nil {
		ht.t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost,
		fmt.Sprintf("/v1/tenants/%s/batch", ht.name), bytes.NewReader(body))
	rr := httptest.NewRecorder()
	ht.h.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		ht.t.Fatalf("batch: status %d: %s", rr.Code, rr.Body.String())
	}
	var resp struct {
		Results []server.BatchResult `json:"results"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		ht.t.Fatal(err)
	}
	if len(resp.Results) != len(ops) {
		ht.t.Fatalf("batch returned %d results for %d ops", len(resp.Results), len(ops))
	}
	return resp.Results
}

func (ht *httpTenant) get(addr uint64) (securemem.Block, int) {
	ht.t.Helper()
	req := httptest.NewRequest(http.MethodGet,
		fmt.Sprintf("/v1/tenants/%s/blocks/%d", ht.name, addr), nil)
	rr := httptest.NewRecorder()
	ht.h.ServeHTTP(rr, req)
	var blk securemem.Block
	copy(blk[:], rr.Body.Bytes())
	return blk, rr.Code
}

// TestHTTPConformanceAllSchemes extends the public-API conformance drive
// through the serving layer: for every scheme × 1/2/4 channels, the same
// KV-mix trace is driven through the HTTP handler (two placement groups,
// batched JSON requests) and through the library directly, asserting
// byte-equal read results op by op, matching crash-recovery verdicts, and
// byte-equal full readback after recovery.
func TestHTTPConformanceAllSchemes(t *testing.T) {
	const (
		dataBytes = 32 << 10
		ops       = 600
		batchMax  = 8
	)
	prof, ok := trace.ByName("kv_a_zipf")
	if !ok {
		t.Fatal("kv_a_zipf not registered")
	}
	prof.FootprintBytes = dataBytes

	for _, s := range securemem.Schemes() {
		for _, channels := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/%dch", s, channels), func(t *testing.T) {
				direct, err := securemem.New(securemem.Config{
					DataBytes: dataBytes, Scheme: s, Channels: channels, MetaCacheBytes: 8 << 10,
				})
				if err != nil {
					t.Fatal(err)
				}
				pool, err := server.NewPool(server.Config{Tenants: []server.TenantConfig{{
					Name: "t", Scheme: s, PGs: 2, PoolBytes: dataBytes, Channels: channels,
					MetaCacheBytes: 8 << 10,
				}}})
				if err != nil {
					t.Fatal(err)
				}
				defer pool.Close()
				ht := &httpTenant{t: t, h: pool.Handler(), name: "t"}

				// Phase 1: identical trace through both paths, reads compared
				// byte-for-byte. The HTTP side goes through /batch in windows
				// so the coalescing path is what's under test.
				g := trace.New(prof, 11, ops)
				shadow := map[uint64]securemem.Block{}
				var window []server.BatchOp
				var directReads []securemem.Block
				seq := uint64(0)
				flush := func() {
					if len(window) == 0 {
						return
					}
					results := ht.batch(window)
					r := 0
					for i, op := range window {
						if !results[i].OK {
							t.Fatalf("op %d (%s %#x): %s", i, op.Op, op.Addr, results[i].Error)
						}
						if op.Op != "read" {
							continue
						}
						raw, err := base64.StdEncoding.DecodeString(results[i].Data)
						if err != nil || len(raw) != securemem.BlockSize {
							t.Fatalf("read %#x returned malformed data: %v", op.Addr, err)
						}
						if !bytes.Equal(raw, directReads[r][:]) {
							t.Fatalf("served read of %#x diverges from direct path", op.Addr)
						}
						r++
					}
					window = window[:0]
					directReads = directReads[:0]
				}
				for {
					op, ok := g.Next()
					if !ok {
						break
					}
					if op.IsWrite {
						var b securemem.Block
						b[0], b[1], b[2] = byte(seq), byte(seq>>8), byte(op.Addr>>6)
						if err := direct.Write(op.Addr, b); err != nil {
							t.Fatalf("direct write %#x: %v", op.Addr, err)
						}
						shadow[op.Addr] = b
						seq++
						window = append(window, server.BatchOp{Op: "write", Addr: op.Addr,
							Data: base64.StdEncoding.EncodeToString(b[:])})
					} else {
						got, err := direct.Read(op.Addr)
						if err != nil {
							t.Fatalf("direct read %#x: %v", op.Addr, err)
						}
						directReads = append(directReads, got)
						window = append(window, server.BatchOp{Op: "read", Addr: op.Addr})
					}
					if len(window) >= batchMax {
						flush()
					}
				}
				flush()

				// Phase 2: crash + recover both paths; the verdicts must
				// match (WB fails with ErrNoRecovery on both, everything
				// else succeeds on both).
				direct.Crash()
				_, directErr := direct.Recover()
				reps := pool.CrashRecoverAll()
				if len(reps) != 1 {
					t.Fatalf("got %d recovery reports", len(reps))
				}
				served := reps[0]
				if (directErr == nil) != served.Recovered {
					t.Fatalf("recovery verdicts diverge: direct err %v, served %+v", directErr, served)
				}
				if errors.Is(directErr, securemem.ErrNoRecovery) !=
					errors.Is(served.RecoverErr, securemem.ErrNoRecovery) {
					t.Fatalf("recovery error class diverges: direct %v, served %v",
						directErr, served.RecoverErr)
				}
				if directErr != nil {
					return // WB: nothing readable to compare
				}

				// Phase 3: full readback through both paths, byte-equal
				// against each other and the shadow.
				for addr, want := range shadow {
					dgot, err := direct.Read(addr)
					if err != nil {
						t.Fatalf("direct post-recovery read %#x: %v", addr, err)
					}
					sgot, code := ht.get(addr)
					if code != http.StatusOK {
						t.Fatalf("served post-recovery read %#x: status %d", addr, code)
					}
					if dgot != want || sgot != want {
						t.Fatalf("post-recovery divergence at %#x: direct %x…, served %x…, shadow %x…",
							addr, dgot[:4], sgot[:4], want[:4])
					}
				}
			})
		}
	}
}
