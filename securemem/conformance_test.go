package securemem_test

import (
	"errors"
	"testing"

	"steins/internal/trace"
	"steins/securemem"
)

// Public-API conformance: the same KV-mix workload is driven through every
// scheme purely through the securemem surface (New/Write/Read/Crash/
// Recover/Stats) and verified differentially against a shadow model —
// including full readback after crash+recover. Every scheme must agree on
// the data plane bit-for-bit; only the recovery behaviour may differ, and
// then only in the sanctioned way (WB returns ErrNoRecovery).
func TestPublicAPIConformanceAllSchemes(t *testing.T) {
	const (
		dataBytes = 512 << 10
		ops       = 3000
	)
	prof, ok := trace.ByName("kv_a_zipf")
	if !ok {
		t.Fatal("kv_a_zipf not registered")
	}
	prof.FootprintBytes = dataBytes

	if got := len(securemem.Schemes()); got != 12 {
		t.Fatalf("Schemes() lists %d schemes, want 12", got)
	}

	type outcome struct {
		shadow map[uint64]securemem.Block
		reads  uint64
		writes uint64
	}
	var ref *outcome
	var refScheme securemem.Scheme
	for _, s := range securemem.Schemes() {
		m, err := securemem.New(securemem.Config{
			DataBytes: dataBytes, Scheme: s, MetaCacheBytes: 8 << 10,
		})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}

		// Phase 1: drive the identical trace, shadowing every write.
		g := trace.New(prof, 7, ops)
		shadow := map[uint64]securemem.Block{}
		seq := uint64(0)
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			if op.IsWrite {
				var b securemem.Block
				b[0], b[1], b[2] = byte(seq), byte(seq>>8), byte(op.Addr>>6)
				if err := m.Write(op.Addr, b); err != nil {
					t.Fatalf("%s write %#x: %v", s, op.Addr, err)
				}
				shadow[op.Addr] = b
				seq++
			} else {
				got, err := m.Read(op.Addr)
				if err != nil {
					t.Fatalf("%s read %#x: %v", s, op.Addr, err)
				}
				if got != shadow[op.Addr] {
					t.Fatalf("%s: runtime divergence at %#x", s, op.Addr)
				}
			}
		}

		// Phase 2: crash, recover, and read the whole shadow back.
		m.Crash()
		rep, err := m.Recover()
		switch {
		case errors.Is(err, securemem.ErrNoRecovery):
			if s != securemem.WBGC && s != securemem.WBSC {
				t.Fatalf("%s: unexpected ErrNoRecovery", s)
			}
		case err != nil:
			t.Fatalf("%s recover: %v", s, err)
		default:
			if s == securemem.WBGC || s == securemem.WBSC {
				t.Fatalf("%s: recovery succeeded for a no-recovery baseline", s)
			}
			if rep.SimulatedNS <= 0 {
				t.Fatalf("%s: empty recovery report %+v", s, rep)
			}
			for addr, want := range shadow {
				got, err := m.Read(addr)
				if err != nil {
					t.Fatalf("%s post-recovery read %#x: %v", s, addr, err)
				}
				if got != want {
					t.Fatalf("%s: silent corruption after recovery at %#x", s, addr)
				}
			}
		}

		// Phase 3: differential — the data plane is scheme-invariant.
		st := m.Stats()
		cur := &outcome{shadow: shadow, reads: st.Reads, writes: st.Writes}
		if ref == nil {
			ref, refScheme = cur, s
			continue
		}
		if cur.writes != ref.writes {
			t.Fatalf("%s drove %d writes, %s drove %d — trace not scheme-invariant",
				s, cur.writes, refScheme, ref.writes)
		}
		if len(cur.shadow) != len(ref.shadow) {
			t.Fatalf("%s shadow has %d blocks, %s has %d",
				s, len(cur.shadow), refScheme, len(ref.shadow))
		}
		for addr, want := range ref.shadow {
			if cur.shadow[addr] != want {
				t.Fatalf("%s and %s disagree on final contents of %#x", s, refScheme, addr)
			}
		}
	}
}
