// Package securemem is the public API of the Steins reproduction: a secure
// non-volatile memory built from counter-mode encryption, an SGX-style
// integrity tree, and a pluggable crash-recovery scheme.
//
// A Memory protects a byte-addressable data region at 64-byte granularity.
// Writes are encrypted and authenticated; reads are verified against the
// integrity tree; Crash models a power failure and Recover restores the
// security metadata using the configured scheme:
//
//	m, err := securemem.New(securemem.Config{
//		DataBytes: 1 << 20,
//		Scheme:    securemem.SteinsSC,
//	})
//	...
//	err = m.Write(0x1000, block)
//	got, err := m.Read(0x1000)
//	m.Crash()
//	report, err := m.Recover()
//
// Integrity violations surface as errors matching ErrTamper or ErrReplay
// (via errors.Is); errors.As against *Violation yields the attacked level
// and node, the §III-H attack localization.
//
// The underlying simulator charges the paper's Table I cycle costs to
// every operation, so Stats also reports the performance metrics the
// paper's figures use (execution cycles, latencies, NVM traffic, energy).
//
// # Concurrency
//
// A Memory is safe for concurrent use: every method serializes on an
// internal mutex, so concurrent callers observe some linearization of
// their operations — each Write or Read takes effect atomically between
// its invocation and return. The simulated clock advances in that
// linearization order, so timing statistics depend on the interleaving,
// but data-plane results (the bytes a Read returns) depend only on the
// per-address order of linearized operations.
//
// The one exception is Controller/Controllers: they hand out the
// underlying simulator objects, which are NOT internally locked. Callers
// own the exclusion there — use them only while no other goroutine is
// calling into the Memory (a quiesced instance), exactly like advanced
// snapshot or attack-injection harnesses do.
package securemem

import (
	"fmt"
	"sync"

	"steins/internal/cache"
	"steins/internal/crypt"
	"steins/internal/memctrl"
	"steins/internal/multi"
	"steins/internal/nvmem"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/pipesit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/triad"
	"steins/internal/scheme/wb"
	"steins/internal/stats"
)

// BlockSize is the access granularity in bytes.
const BlockSize = 64

// Block is one data block.
type Block = [BlockSize]byte

// Scheme selects the crash-recovery scheme.
type Scheme string

// The available schemes. The -GC variants use general counter blocks in
// the tree leaves (8 data blocks per leaf), the -SC variants split
// counter blocks (64 data blocks per leaf, the paper's recommended mode).
const (
	WBGC     Scheme = "WB-GC"     // write-back baseline, no recovery
	WBSC     Scheme = "WB-SC"     // split-counter baseline, no recovery
	ASIT     Scheme = "ASIT"      // Anubis-style shadow table
	STAR     Scheme = "STAR"      // bitmap + per-set cache-tree
	SteinsGC Scheme = "Steins-GC" // the paper's scheme, general leaves
	SteinsSC Scheme = "Steins-SC" // the paper's scheme, split leaves
	SCUEGC   Scheme = "SCUE-GC"   // recovery-root, full-tree rebuild
	SCUESC   Scheme = "SCUE-SC"

	// The relaxed-persistence family: PipeSIT pipelines tree updates with
	// coalescing, Triad persists only the lower tree levels and rebuilds
	// the rest on recovery.
	PipeSITGC Scheme = "PipeSIT-GC"
	PipeSITSC Scheme = "PipeSIT-SC"
	TriadGC   Scheme = "Triad-GC"
	TriadSC   Scheme = "Triad-SC"
)

// Schemes lists every available scheme.
func Schemes() []Scheme {
	return []Scheme{
		WBGC, WBSC, ASIT, STAR, SteinsGC, SteinsSC, SCUEGC, SCUESC,
		PipeSITGC, PipeSITSC, TriadGC, TriadSC,
	}
}

// Integrity errors, re-exported from the controller.
var (
	ErrTamper     = memctrl.ErrTamper
	ErrReplay     = memctrl.ErrReplay
	ErrNoRecovery = memctrl.ErrNoRecovery
)

// Violation is the structured integrity error; use errors.As to obtain
// the attacked location.
type Violation = memctrl.Violation

// DegradationReport details a degraded-mode recovery: healed and
// quarantined subtrees, the arbitration verdict behind each quarantine,
// and the bound on fenced data.
type DegradationReport = memctrl.DegradationReport

// Config configures a Memory. The zero value of every optional field
// selects the paper's Table I parameter.
type Config struct {
	// DataBytes is the protected capacity; required, a multiple of 64.
	DataBytes uint64
	// Scheme selects the recovery scheme; required.
	Scheme Scheme
	// Channels interleaves the data region across this many independent
	// channel controllers at 64-byte line granularity — the §IV-F
	// multi-DIMM model, each channel a complete secure-memory system with
	// its own integrity tree recovering in parallel. 0 or 1 selects a
	// single controller (bit-identical to the pre-channel behaviour).
	// DataBytes must be a multiple of Channels×64.
	Channels int
	// MetaCacheBytes sizes the controller's metadata cache (default
	// 256 KiB); with channels, each channel controller gets this budget.
	MetaCacheBytes int
	// KeySeed derives the (deterministic) secret key; any value works.
	KeySeed uint64
	// Advanced exposes every low-level knob; applied last (with channels,
	// to every channel controller's configuration).
	Advanced func(*memctrl.Config)
}

// Memory is a secure NVM region with crash recovery.
type Memory struct {
	mu       sync.Mutex
	c        *memctrl.Controller // single-channel engine (nil when sys != nil)
	sys      *multi.System       // channel-interleaved engine (Channels > 1)
	scheme   Scheme
	channels int
}

// factoryFor maps a scheme name to its policy factory and counter mode.
func factoryFor(s Scheme) (memctrl.PolicyFactory, bool, error) {
	switch s {
	case WBGC:
		return wb.Factory, false, nil
	case WBSC:
		return wb.Factory, true, nil
	case ASIT:
		return asit.Factory, false, nil
	case STAR:
		return star.Factory, false, nil
	case SteinsGC:
		return steins.Factory, false, nil
	case SteinsSC:
		return steins.Factory, true, nil
	case SCUEGC:
		return scue.Factory, false, nil
	case SCUESC:
		return scue.Factory, true, nil
	case PipeSITGC:
		return pipesit.Factory, false, nil
	case PipeSITSC:
		return pipesit.Factory, true, nil
	case TriadGC:
		return triad.Factory, false, nil
	case TriadSC:
		return triad.Factory, true, nil
	}
	return nil, false, fmt.Errorf("securemem: unknown scheme %q", s)
}

// New builds a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.DataBytes == 0 || cfg.DataBytes%BlockSize != 0 {
		return nil, fmt.Errorf("securemem: DataBytes must be a positive multiple of %d", BlockSize)
	}
	if cfg.Channels < 0 {
		return nil, fmt.Errorf("securemem: Channels must be non-negative, got %d", cfg.Channels)
	}
	factory, split, err := factoryFor(cfg.Scheme)
	if err != nil {
		return nil, err
	}
	channels := cfg.Channels
	if channels == 0 {
		channels = 1
	}
	if cfg.DataBytes%(uint64(channels)*BlockSize) != 0 {
		return nil, fmt.Errorf("securemem: DataBytes %d must be a multiple of Channels×%d = %d",
			cfg.DataBytes, BlockSize, uint64(channels)*BlockSize)
	}
	mc := memctrl.DefaultConfig(cfg.DataBytes/uint64(channels), split)
	if cfg.MetaCacheBytes != 0 {
		mc.MetaCacheBytes = cfg.MetaCacheBytes
	}
	if cfg.KeySeed != 0 {
		mc.Key = crypt.NewKey(cfg.KeySeed)
	}
	if cfg.Advanced != nil {
		cfg.Advanced(&mc)
	}
	m := &Memory{scheme: cfg.Scheme, channels: channels}
	if channels > 1 {
		m.sys = multi.New(channels, mc, factory, BlockSize)
	} else {
		m.c = memctrl.New(mc, factory)
	}
	return m, nil
}

// Scheme returns the active recovery scheme.
func (m *Memory) Scheme() Scheme { return m.scheme }

// Channels returns the number of channel controllers (1 for a
// single-controller Memory).
func (m *Memory) Channels() int { return m.channels }

// Write encrypts, authenticates and persists one block. addr must be
// 64-byte aligned and inside the data region.
func (m *Memory) Write(addr uint64, data Block) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sys != nil {
		return m.sys.WriteData(1, addr, data)
	}
	return m.c.WriteData(1, addr, data)
}

// Read verifies and decrypts one block. Blocks never written read as
// zero. A verification failure returns an error matching ErrTamper.
func (m *Memory) Read(addr uint64) (Block, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sys != nil {
		return m.sys.ReadData(1, addr)
	}
	return m.c.ReadData(1, addr)
}

// Crash models a power failure: all volatile controller state (cached
// security metadata) is lost on every channel; NVM contents, ADR-flushed
// tracking state and on-chip non-volatile registers survive.
func (m *Memory) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sys != nil {
		m.sys.Crash()
		return
	}
	m.c.Crash()
}

// Recover restores the security metadata lost in the last Crash; with
// channels, every channel recovers concurrently and the report aggregates
// them (work summed, time the parallel maximum). The report quantifies
// the work; errors match ErrTamper/ErrReplay when the persisted state
// fails verification, or ErrNoRecovery for WB.
func (m *Memory) Recover() (RecoveryReport, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rep memctrl.RecoveryReport
	var err error
	if m.sys != nil {
		rep, err = m.sys.Recover()
	} else {
		rep, err = m.c.Recover()
	}
	return RecoveryReport{
		NodesRecovered: rep.NodesRecovered,
		NVMReads:       rep.NVMReads,
		NVMWrites:      rep.NVMWrites,
		MACOps:         rep.MACOps,
		SimulatedNS:    rep.TimeNS,
		Degradation:    rep.Degradation,
	}, err
}

// RecoveryReport quantifies one recovery pass under the paper's §IV-D
// cost model (100 ns per NVM fetch).
type RecoveryReport struct {
	NodesRecovered uint64
	NVMReads       uint64
	NVMWrites      uint64
	MACOps         uint64
	SimulatedNS    float64
	// Degradation details degraded-mode outcomes (healed or quarantined
	// subtrees); empty on a clean recovery.
	Degradation DegradationReport
}

// Stats reports the simulated performance counters of the run so far.
type Stats struct {
	Reads            uint64
	Writes           uint64
	ExecCycles       uint64  // controller makespan at 2 GHz
	AvgReadCycles    float64 // mean verified-read latency
	AvgWriteCycles   float64 // mean write latency
	P99ReadCycles    uint64
	P99WriteCycles   uint64
	NVMWriteBytes    uint64
	EnergyPJ         float64
	MetaCacheHitRate float64
}

// Stats returns the current counters; with channels, counters are summed,
// the makespan is the parallel maximum, and latencies are recomputed from
// the merged sums.
func (m *Memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	ctrls := m.controllers()
	var st memctrl.Stats
	var cs cache.Stats
	var nvm nvmem.Stats
	var energy float64
	var exec uint64
	for _, c := range ctrls {
		cst := c.Stats()
		st.Merge(&cst)
		cs.Merge(c.Meta().Stats())
		dst := c.Device().Stats()
		nvm.Merge(&dst)
		energy += c.EnergyPJ()
		exec = max(exec, c.ExecCycles())
	}
	return Stats{
		Reads:            st.DataReads,
		Writes:           st.DataWrites,
		ExecCycles:       exec,
		AvgReadCycles:    st.AvgReadLatency(),
		AvgWriteCycles:   st.AvgWriteLatency(),
		P99ReadCycles:    st.ReadHist.Percentile(0.99),
		P99WriteCycles:   st.WriteHist.Percentile(0.99),
		NVMWriteBytes:    nvm.WriteBytes(),
		EnergyPJ:         energy,
		MetaCacheHitRate: cs.HitRate(),
	}
}

// controllers returns the channel controllers without locking; internal
// callers hold m.mu.
func (m *Memory) controllers() []*memctrl.Controller {
	if m.sys != nil {
		return m.sys.Controllers()
	}
	return []*memctrl.Controller{m.c}
}

// Controller exposes the underlying simulator for advanced use (timing
// experiments, attack injection through the device, custom policies).
// With channels it returns channel 0; see Controllers. The returned
// controller is not internally locked — use it only on a quiesced Memory
// (no concurrent calls in flight).
func (m *Memory) Controller() *memctrl.Controller {
	if m.sys != nil {
		return m.sys.Controllers()[0]
	}
	return m.c
}

// Controllers returns every channel controller, in channel order (a
// single-element slice for a single-controller Memory). Like Controller,
// the result escapes the Memory's lock: callers own the exclusion and
// must only touch the controllers while the Memory is quiesced —
// snapshot capture/restore between batches, attack injection, recovery
// orchestration.
func (m *Memory) Controllers() []*memctrl.Controller {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.controllers()
}

// Describe returns a one-line summary of the configuration.
func (m *Memory) Describe() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.controllers()[0]
	cfg := c.Config()
	if m.channels > 1 {
		return fmt.Sprintf("%s over %d×%s data (%d channels), %s metadata cache/channel, tree height %d",
			m.scheme, m.channels, stats.Bytes(cfg.DataBytes), m.channels,
			stats.Bytes(uint64(cfg.MetaCacheBytes)),
			c.Layout().Geo.HeightIncludingRoot())
	}
	return fmt.Sprintf("%s over %s data, %s metadata cache, tree height %d",
		m.scheme, stats.Bytes(cfg.DataBytes),
		stats.Bytes(uint64(cfg.MetaCacheBytes)),
		c.Layout().Geo.HeightIncludingRoot())
}

// NVMWear summarises write-endurance consumption (§I's endurance
// concern). With channels the sums fold across devices; MaxPerLine and
// HotAddr describe the hottest line of any channel (HotAddr is that
// channel's local address).
func (m *Memory) NVMWear() nvmem.Wear {
	m.mu.Lock()
	defer m.mu.Unlock()
	var w nvmem.Wear
	for _, c := range m.controllers() {
		cw := c.Device().WearStats()
		w.LinesWritten += cw.LinesWritten
		w.TotalWrites += cw.TotalWrites
		if cw.MaxPerLine > w.MaxPerLine {
			w.MaxPerLine, w.HotAddr = cw.MaxPerLine, cw.HotAddr
		}
	}
	return w
}
