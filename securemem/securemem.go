// Package securemem is the public API of the Steins reproduction: a secure
// non-volatile memory built from counter-mode encryption, an SGX-style
// integrity tree, and a pluggable crash-recovery scheme.
//
// A Memory protects a byte-addressable data region at 64-byte granularity.
// Writes are encrypted and authenticated; reads are verified against the
// integrity tree; Crash models a power failure and Recover restores the
// security metadata using the configured scheme:
//
//	m, err := securemem.New(securemem.Config{
//		DataBytes: 1 << 20,
//		Scheme:    securemem.SteinsSC,
//	})
//	...
//	err = m.Write(0x1000, block)
//	got, err := m.Read(0x1000)
//	m.Crash()
//	report, err := m.Recover()
//
// Integrity violations surface as errors matching ErrTamper or ErrReplay
// (via errors.Is); errors.As against *Violation yields the attacked level
// and node, the §III-H attack localization.
//
// The underlying simulator charges the paper's Table I cycle costs to
// every operation, so Stats also reports the performance metrics the
// paper's figures use (execution cycles, latencies, NVM traffic, energy).
package securemem

import (
	"fmt"

	"steins/internal/crypt"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/pipesit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/triad"
	"steins/internal/scheme/wb"
	"steins/internal/stats"
)

// BlockSize is the access granularity in bytes.
const BlockSize = 64

// Block is one data block.
type Block = [BlockSize]byte

// Scheme selects the crash-recovery scheme.
type Scheme string

// The available schemes. The -GC variants use general counter blocks in
// the tree leaves (8 data blocks per leaf), the -SC variants split
// counter blocks (64 data blocks per leaf, the paper's recommended mode).
const (
	WBGC     Scheme = "WB-GC"     // write-back baseline, no recovery
	WBSC     Scheme = "WB-SC"     // split-counter baseline, no recovery
	ASIT     Scheme = "ASIT"      // Anubis-style shadow table
	STAR     Scheme = "STAR"      // bitmap + per-set cache-tree
	SteinsGC Scheme = "Steins-GC" // the paper's scheme, general leaves
	SteinsSC Scheme = "Steins-SC" // the paper's scheme, split leaves
	SCUEGC   Scheme = "SCUE-GC"   // recovery-root, full-tree rebuild
	SCUESC   Scheme = "SCUE-SC"

	// The relaxed-persistence family: PipeSIT pipelines tree updates with
	// coalescing, Triad persists only the lower tree levels and rebuilds
	// the rest on recovery.
	PipeSITGC Scheme = "PipeSIT-GC"
	PipeSITSC Scheme = "PipeSIT-SC"
	TriadGC   Scheme = "Triad-GC"
	TriadSC   Scheme = "Triad-SC"
)

// Schemes lists every available scheme.
func Schemes() []Scheme {
	return []Scheme{
		WBGC, WBSC, ASIT, STAR, SteinsGC, SteinsSC, SCUEGC, SCUESC,
		PipeSITGC, PipeSITSC, TriadGC, TriadSC,
	}
}

// Integrity errors, re-exported from the controller.
var (
	ErrTamper     = memctrl.ErrTamper
	ErrReplay     = memctrl.ErrReplay
	ErrNoRecovery = memctrl.ErrNoRecovery
)

// Violation is the structured integrity error; use errors.As to obtain
// the attacked location.
type Violation = memctrl.Violation

// Config configures a Memory. The zero value of every optional field
// selects the paper's Table I parameter.
type Config struct {
	// DataBytes is the protected capacity; required, a multiple of 64.
	DataBytes uint64
	// Scheme selects the recovery scheme; required.
	Scheme Scheme
	// MetaCacheBytes sizes the controller's metadata cache (default 256 KiB).
	MetaCacheBytes int
	// KeySeed derives the (deterministic) secret key; any value works.
	KeySeed uint64
	// Advanced exposes every low-level knob; applied last.
	Advanced func(*memctrl.Config)
}

// Memory is a secure NVM region with crash recovery.
type Memory struct {
	c      *memctrl.Controller
	scheme Scheme
}

// New builds a Memory.
func New(cfg Config) (*Memory, error) {
	if cfg.DataBytes == 0 || cfg.DataBytes%BlockSize != 0 {
		return nil, fmt.Errorf("securemem: DataBytes must be a positive multiple of %d", BlockSize)
	}
	var factory memctrl.PolicyFactory
	split := false
	switch cfg.Scheme {
	case WBGC:
		factory = wb.Factory
	case WBSC:
		factory, split = wb.Factory, true
	case ASIT:
		factory = asit.Factory
	case STAR:
		factory = star.Factory
	case SteinsGC:
		factory = steins.Factory
	case SteinsSC:
		factory, split = steins.Factory, true
	case SCUEGC:
		factory = scue.Factory
	case SCUESC:
		factory, split = scue.Factory, true
	case PipeSITGC:
		factory = pipesit.Factory
	case PipeSITSC:
		factory, split = pipesit.Factory, true
	case TriadGC:
		factory = triad.Factory
	case TriadSC:
		factory, split = triad.Factory, true
	default:
		return nil, fmt.Errorf("securemem: unknown scheme %q", cfg.Scheme)
	}
	mc := memctrl.DefaultConfig(cfg.DataBytes, split)
	if cfg.MetaCacheBytes != 0 {
		mc.MetaCacheBytes = cfg.MetaCacheBytes
	}
	if cfg.KeySeed != 0 {
		mc.Key = crypt.NewKey(cfg.KeySeed)
	}
	if cfg.Advanced != nil {
		cfg.Advanced(&mc)
	}
	return &Memory{c: memctrl.New(mc, factory), scheme: cfg.Scheme}, nil
}

// Scheme returns the active recovery scheme.
func (m *Memory) Scheme() Scheme { return m.scheme }

// Write encrypts, authenticates and persists one block. addr must be
// 64-byte aligned and inside the data region.
func (m *Memory) Write(addr uint64, data Block) error {
	return m.c.WriteData(1, addr, data)
}

// Read verifies and decrypts one block. Blocks never written read as
// zero. A verification failure returns an error matching ErrTamper.
func (m *Memory) Read(addr uint64) (Block, error) {
	return m.c.ReadData(1, addr)
}

// Crash models a power failure: all volatile controller state (cached
// security metadata) is lost; NVM contents, ADR-flushed tracking state
// and on-chip non-volatile registers survive.
func (m *Memory) Crash() { m.c.Crash() }

// Recover restores the security metadata lost in the last Crash. The
// report quantifies the work; errors match ErrTamper/ErrReplay when the
// persisted state fails verification, or ErrNoRecovery for WB.
func (m *Memory) Recover() (RecoveryReport, error) {
	rep, err := m.c.Recover()
	return RecoveryReport{
		NodesRecovered: rep.NodesRecovered,
		NVMReads:       rep.NVMReads,
		NVMWrites:      rep.NVMWrites,
		MACOps:         rep.MACOps,
		SimulatedNS:    rep.TimeNS,
	}, err
}

// RecoveryReport quantifies one recovery pass under the paper's §IV-D
// cost model (100 ns per NVM fetch).
type RecoveryReport struct {
	NodesRecovered uint64
	NVMReads       uint64
	NVMWrites      uint64
	MACOps         uint64
	SimulatedNS    float64
}

// Stats reports the simulated performance counters of the run so far.
type Stats struct {
	Reads            uint64
	Writes           uint64
	ExecCycles       uint64  // controller makespan at 2 GHz
	AvgReadCycles    float64 // mean verified-read latency
	AvgWriteCycles   float64 // mean write latency
	P99ReadCycles    uint64
	P99WriteCycles   uint64
	NVMWriteBytes    uint64
	EnergyPJ         float64
	MetaCacheHitRate float64
}

// Stats returns the current counters.
func (m *Memory) Stats() Stats {
	st := m.c.Stats()
	return Stats{
		Reads:            st.DataReads,
		Writes:           st.DataWrites,
		ExecCycles:       m.c.ExecCycles(),
		AvgReadCycles:    st.AvgReadLatency(),
		AvgWriteCycles:   st.AvgWriteLatency(),
		P99ReadCycles:    st.ReadHist.Percentile(0.99),
		P99WriteCycles:   st.WriteHist.Percentile(0.99),
		NVMWriteBytes:    m.c.Device().Stats().WriteBytes(),
		EnergyPJ:         m.c.EnergyPJ(),
		MetaCacheHitRate: m.c.Meta().Stats().HitRate(),
	}
}

// Controller exposes the underlying simulator for advanced use (timing
// experiments, attack injection through the device, custom policies).
func (m *Memory) Controller() *memctrl.Controller { return m.c }

// Describe returns a one-line summary of the configuration.
func (m *Memory) Describe() string {
	cfg := m.c.Config()
	return fmt.Sprintf("%s over %s data, %s metadata cache, tree height %d",
		m.scheme, stats.Bytes(cfg.DataBytes),
		stats.Bytes(uint64(cfg.MetaCacheBytes)),
		m.c.Layout().Geo.HeightIncludingRoot())
}

// NVMWear summarises write-endurance consumption (§I's endurance concern).
func (m *Memory) NVMWear() nvmem.Wear { return m.c.Device().WearStats() }
