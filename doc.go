// Package steins is a from-scratch reproduction of "A High-Performance
// and Fast-Recovery Scheme for Secure Non-Volatile Memory Systems"
// (Shi, Hua, Huang — IEEE CLUSTER 2024).
//
// The repository implements the complete system the paper evaluates: a
// PCM-like NVM device model, counter-mode encryption with split counters,
// the SGX-style integrity tree, the Steins recovery scheme (generated
// parent counters, offset record lines, LInc trust bases, a non-volatile
// parent-counter buffer, root-to-leaf recovery) and the comparison schemes
// WB, ASIT, STAR and SCUE, plus the workloads, attack harness and
// benchmark generators that regenerate every table and figure of §IV.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
// The benchmarks in bench_test.go regenerate each figure at reduced scale;
// cmd/benchfigs produces the full tables.
package steins
