package server

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"steins/internal/snapshot"
	"steins/securemem"
)

// replayLog drives the linearized request log through a single-threaded
// reference (a plain map of last-written blocks, zero for never-written
// addresses) and fails if any served read disagrees with it. It returns
// the reference's final image.
func replayLog(t *testing.T, log []LogRecord) map[uint64]securemem.Block {
	t.Helper()
	ref := map[uint64]securemem.Block{}
	for i, rec := range log {
		if rec.Seq != uint64(i) {
			t.Fatalf("log[%d] has seq %d: log is not the dense linearization", i, rec.Seq)
		}
		if rec.Err != "" {
			t.Fatalf("log[%d] (addr %#x) carries engine error %q", i, rec.Addr, rec.Err)
		}
		if rec.IsWrite {
			ref[rec.Addr] = rec.Data
			continue
		}
		if want := ref[rec.Addr]; rec.Data != want {
			t.Fatalf("seq %d: read of %#x served %x…, reference says %x…",
				rec.Seq, rec.Addr, rec.Data[:4], want[:4])
		}
	}
	return ref
}

// TestServedPathLinearizesConcurrentClients is the headline differential
// harness: N concurrent clients fire mixed read/write requests at a
// tenant; afterwards the recorded (linearized) log must replay cleanly on
// a single-threaded reference — every read served exactly the bytes the
// linearization implies — and the final readback must be byte-equal to
// the reference image. Run under -race and -cpu 1,4,8 (make serve-check).
func TestServedPathLinearizesConcurrentClients(t *testing.T) {
	cases := []struct {
		name string
		tc   TenantConfig
	}{
		{"line-3pg-2ch", TenantConfig{Name: "alpha", Scheme: securemem.SteinsSC, PGs: 3,
			PoolBytes: 3 * 64 * 64, Channels: 2, Interleave: "line", BatchOps: 16}},
		{"page-2pg", TenantConfig{Name: "alpha", Scheme: securemem.SCUEGC, PGs: 2,
			PoolBytes: 4 * 4096, Interleave: "page", BatchOps: 24}},
		{"hash-4pg", TenantConfig{Name: "alpha", Scheme: securemem.TriadSC, PGs: 4,
			PoolBytes: 128 * 64, Interleave: "hash", BatchOps: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := NewPool(Config{Tenants: []TenantConfig{tc.tc}, RecordLog: true})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			const clients = 8
			const requests = 40
			blocks := tc.tc.PoolBytes / securemem.BlockSize
			var wg sync.WaitGroup
			for g := 0; g < clients; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*g + 7)))
					for i := 0; i < requests; i++ {
						specs := make([]OpSpec, 1+rng.Intn(4))
						for j := range specs {
							addr := uint64(rng.Intn(int(blocks))) * securemem.BlockSize
							specs[j].Addr = addr
							if rng.Intn(3) > 0 { // write-heavy mix
								specs[j].IsWrite = true
								specs[j].Data[0] = byte(g)
								specs[j].Data[1] = byte(i)
								specs[j].Data[2] = byte(j)
								specs[j].Data[63] = byte(addr / securemem.BlockSize)
							}
						}
						for {
							ops, aerr := p.Do("alpha", specs)
							if aerr == nil {
								for k := range ops {
									if ops[k].Err != nil {
										t.Errorf("client %d op: %v", g, ops[k].Err)
									}
								}
								break
							}
							if aerr.Status != 429 {
								t.Errorf("client %d rejected: %v", g, aerr)
								break
							}
							// Admission pushback: retry, it is part of the model.
						}
					}
				}(g)
			}
			wg.Wait()

			tn := p.Tenant("alpha")
			tn.waitIdle()
			ref := replayLog(t, tn.Log())

			// Final readback must be byte-equal to the reference image at
			// every address the run touched (plus one never-written block).
			for addr, want := range ref {
				ops, aerr := p.Do("alpha", []OpSpec{{Addr: addr}})
				if aerr != nil {
					t.Fatalf("readback %#x: %v", addr, aerr)
				}
				if ops[0].Err != nil {
					t.Fatalf("readback %#x: %v", addr, ops[0].Err)
				}
				if ops[0].Data != want {
					t.Fatalf("readback %#x: served %x…, reference %x…", addr, ops[0].Data[:4], want[:4])
				}
			}
			adm := tn.Admission()
			if adm.Offered != adm.Accepted+adm.Rejected {
				t.Fatalf("admission ledger leaks: offered %d != accepted %d + rejected %d",
					adm.Offered, adm.Accepted, adm.Rejected)
			}
			if adm.Batches == 0 {
				t.Fatal("no batches applied — the coalescing path never ran")
			}
		})
	}
}

// TestCrashMidServeRecovery kills the pool between batches — concurrent
// clients quiesce, the drained checkpoint is saved, the process "dies" —
// then a fresh pool restores the checkpoint, crash-recovers every
// placement group, and must serve back the exact golden shadow the first
// life's linearized log implies. A WB tenant rides along to pin that an
// unrecoverable scheme reports ErrNoRecovery instead of pretending.
func TestCrashMidServeRecovery(t *testing.T) {
	cfg := Config{
		RecordLog: true,
		Tenants: []TenantConfig{
			{Name: "alpha", Scheme: securemem.SteinsSC, PGs: 2, PoolBytes: 2 * 64 * 64,
				Channels: 2, Interleave: "line", BatchOps: 8},
			{Name: "wb", Scheme: securemem.WBGC, PGs: 1, PoolBytes: 32 * 64},
		},
	}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 42)))
			for i := 0; i < 30; i++ {
				var spec OpSpec
				spec.Addr = uint64(rng.Intn(128)) * securemem.BlockSize
				spec.IsWrite = true
				spec.Data[0], spec.Data[1] = byte(g+1), byte(i)
				for {
					if _, aerr := p.Do("alpha", []OpSpec{spec}); aerr == nil || aerr.Status != 429 {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
	p.Tenant("alpha").waitIdle()

	golden := replayLog(t, p.Tenant("alpha").Log())
	img, err := p.StateBytes()
	if err != nil {
		t.Fatal(err)
	}
	p.Close() // the old process is gone

	// Restart: fresh pool, restore, model the outage, recover.
	p2, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	st, err := snapshot.DecodeServer(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.RestoreState(st); err != nil {
		t.Fatal(err)
	}
	reps := p2.CrashRecoverAll()
	if len(reps) != 2 {
		t.Fatalf("got %d recovery reports, want 2", len(reps))
	}
	if !reps[0].Recovered || reps[0].Tenant != "alpha" {
		t.Fatalf("alpha did not recover: %+v", reps[0])
	}
	if reps[0].NodesRecovered == 0 || reps[0].SimulatedNS == 0 {
		t.Fatalf("alpha recovery reports no work: %+v", reps[0])
	}
	if reps[1].Recovered || !errors.Is(reps[1].RecoverErr, securemem.ErrNoRecovery) {
		t.Fatalf("wb tenant must fail with ErrNoRecovery, got %+v", reps[1])
	}
	if rec := p2.Tenant("wb").Recovery(); rec == nil || rec.Recovered {
		t.Fatalf("wb recovery endpoint state wrong: %+v", rec)
	}

	// Re-verify the second life against the first life's golden shadow.
	for addr, want := range golden {
		ops, aerr := p2.Do("alpha", []OpSpec{{Addr: addr}})
		if aerr != nil || ops[0].Err != nil {
			t.Fatalf("post-recovery read %#x: %v / %v", addr, aerr, ops[0].Err)
		}
		if ops[0].Data != want {
			t.Fatalf("post-recovery read %#x: got %x…, golden %x…", addr, ops[0].Data[:4], want[:4])
		}
	}
}

// TestRestoreShapeMismatch pins the structured rejection of checkpoints
// that do not match the restarting server's configuration.
func TestRestoreShapeMismatch(t *testing.T) {
	mk := func(tc TenantConfig) *Pool {
		p, err := NewPool(Config{Tenants: []TenantConfig{tc}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p
	}
	src := mk(TenantConfig{Name: "a", Scheme: securemem.SteinsSC, PGs: 2, PoolBytes: 2 * 64 * 64})
	st, err := src.State()
	if err != nil {
		t.Fatal(err)
	}
	for name, dst := range map[string]*Pool{
		"wrong-name":   mk(TenantConfig{Name: "b", Scheme: securemem.SteinsSC, PGs: 2, PoolBytes: 2 * 64 * 64}),
		"wrong-scheme": mk(TenantConfig{Name: "a", Scheme: securemem.SCUESC, PGs: 2, PoolBytes: 2 * 64 * 64}),
		"wrong-pgs":    mk(TenantConfig{Name: "a", Scheme: securemem.SteinsSC, PGs: 4, PoolBytes: 4 * 64 * 64}),
		"wrong-channels": mk(TenantConfig{Name: "a", Scheme: securemem.SteinsSC, PGs: 2,
			PoolBytes: 2 * 64 * 64, Channels: 2}),
	} {
		if err := dst.RestoreState(st); err == nil {
			t.Errorf("%s: restore accepted a mismatched checkpoint", name)
		}
	}
}

// TestAdmissionControlProperty pins the admission-control contract:
// accepted + rejected == offered, the in-flight high-water mark never
// exceeds the configured bound, and a rejected request never mutates
// engine state (byte-compared checkpoints around a rejection storm with
// the batcher paused, so admission alone is observable).
func TestAdmissionControlProperty(t *testing.T) {
	const bound = 4
	cfg := Config{Tenants: []TenantConfig{{
		Name: "alpha", Scheme: securemem.SteinsGC, PGs: 2, PoolBytes: 2 * 64 * 64,
		MaxInFlight: bound, MaxQueuedOps: 8, BatchOps: 4,
	}}}
	p, err := NewPool(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tn := p.Tenant("alpha")

	// engineImage is the pool's engine state alone: the checkpoint with
	// the admission-side linearization cursor masked out (admitting a
	// request legitimately advances AppliedSeq without touching engines).
	engineImage := func() []byte {
		st, err := p.State()
		if err != nil {
			t.Fatal(err)
		}
		for i := range st.Tenants {
			st.Tenants[i].AppliedSeq = 0
		}
		img, err := snapshot.EncodeServer(st)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}

	// Phase 1: pause the batcher so nothing applies, then offer far more
	// than the bounds admit. Engine state before and after must be
	// byte-identical: neither rejection nor queueing touches an engine.
	before := engineImage()
	tn.setPaused(true)
	const storm = 64
	var mu sync.Mutex
	var admitted []*request
	var wg sync.WaitGroup
	for g := 0; g < storm; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			spec := OpSpec{IsWrite: true, Addr: uint64(g%64) * securemem.BlockSize}
			spec.Data[0] = byte(g)
			req, aerr := tn.submit([]OpSpec{spec}, false)
			if aerr != nil {
				if aerr.Status != 429 {
					t.Errorf("unexpected rejection: %+v", aerr)
				}
				return
			}
			mu.Lock()
			admitted = append(admitted, req)
			mu.Unlock()
		}(g)
	}
	wg.Wait()
	// A test failure past this point must not strand the admitted slots:
	// Drain (via the deferred Close) waits for in-flight to hit zero.
	released := false
	releaseAll := func() {
		if released {
			return
		}
		released = true
		tn.setPaused(false)
		for _, req := range admitted {
			<-req.done
			tn.release()
		}
	}
	defer releaseAll()
	after := engineImage()
	if !bytes.Equal(before, after) {
		t.Fatal("rejected/queued requests mutated engine state while the batcher was paused")
	}
	adm := tn.Admission()
	if adm.Offered != storm {
		t.Fatalf("offered = %d, want %d", adm.Offered, storm)
	}
	if adm.Offered != adm.Accepted+adm.Rejected {
		t.Fatalf("ledger: offered %d != accepted %d + rejected %d", adm.Offered, adm.Accepted, adm.Rejected)
	}
	if adm.Rejected == 0 || adm.RejectedInFlight == 0 {
		t.Fatalf("a %d-request storm against bound %d must reject: %+v", storm, bound, adm)
	}
	if int(adm.Accepted) != len(admitted) {
		t.Fatalf("accepted %d but %d requests got through", adm.Accepted, len(admitted))
	}

	// Let the queued work apply and return the slots.
	releaseAll()
	for _, req := range admitted {
		for i := range req.ops {
			if req.ops[i].err != nil {
				t.Fatalf("admitted op failed: %v", req.ops[i].err)
			}
		}
	}
	tn.waitIdle()

	// Phase 2: a live concurrent run through the public path; the ledger
	// and the bound must hold under real interleaving too.
	var accepted, rejected uint64
	var cmu sync.Mutex
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				spec := OpSpec{IsWrite: true, Addr: uint64((g*25+i)%128) * securemem.BlockSize}
				spec.Data[0] = byte(g)
				_, aerr := p.Do("alpha", []OpSpec{spec})
				cmu.Lock()
				if aerr == nil {
					accepted++
				} else if aerr.Status == 429 {
					rejected++
				} else {
					t.Errorf("unexpected error: %+v", aerr)
				}
				cmu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	tn.waitIdle()
	adm2 := tn.Admission()
	if adm2.InFlightHWM > bound {
		t.Fatalf("in-flight high-water mark %d exceeds bound %d", adm2.InFlightHWM, bound)
	}
	wantOffered := adm.Offered + accepted + rejected
	if adm2.Offered != wantOffered {
		t.Fatalf("offered = %d, want %d (client-side ledger)", adm2.Offered, wantOffered)
	}
	if adm2.Offered != adm2.Accepted+adm2.Rejected {
		t.Fatalf("ledger: offered %d != accepted %d + rejected %d",
			adm2.Offered, adm2.Accepted, adm2.Rejected)
	}
	if adm2.Accepted != adm.Accepted+accepted {
		t.Fatalf("accepted = %d, want %d", adm2.Accepted, adm.Accepted+accepted)
	}
}

// TestDrainRejectsAndQuiesces pins the SIGTERM path: during and after
// Drain new requests bounce with 503, while everything admitted before
// the drain completes and is checkpointable.
func TestDrainRejectsAndQuiesces(t *testing.T) {
	p, err := NewPool(Config{Tenants: []TenantConfig{{
		Name: "alpha", Scheme: securemem.ASIT, PoolBytes: 64 * 64,
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				spec := OpSpec{IsWrite: true, Addr: uint64((g*20+i)%64) * securemem.BlockSize}
				spec.Data[0] = byte(g + 1)
				p.Do("alpha", []OpSpec{spec}) // 503s after drain starts are expected
			}
		}(g)
	}
	wg.Wait()
	p.Drain()
	if _, aerr := p.Do("alpha", []OpSpec{{Addr: 0}}); aerr == nil || aerr.Status != 503 {
		t.Fatalf("post-drain request: got %+v, want 503", aerr)
	}
	if _, err := p.StateBytes(); err != nil {
		t.Fatalf("drained pool must checkpoint: %v", err)
	}
	adm := p.Tenant("alpha").Admission()
	if adm.QueueDepth != 0 || adm.InFlight != 0 {
		t.Fatalf("drained pool not quiesced: %+v", adm)
	}
	if adm.Offered != adm.Accepted+adm.Rejected {
		t.Fatalf("ledger: %+v", adm)
	}
}

// TestPoolConfigErrors pins the structured *ConfigError shape for the
// specs NewPool must reject.
func TestPoolConfigErrors(t *testing.T) {
	base := TenantConfig{Name: "a", Scheme: securemem.SteinsSC, PoolBytes: 64 * 64}
	cases := []struct {
		name   string
		mut    func(*Config)
		tenant string
		field  string
	}{
		{"no-tenants", func(c *Config) { c.Tenants = nil }, "", "Tenants"},
		{"bad-name", func(c *Config) { c.Tenants[0].Name = "a/b" }, "a/b", "Name"},
		{"dup-name", func(c *Config) { c.Tenants = append(c.Tenants, base) }, "a", "Name"},
		{"bad-scheme", func(c *Config) { c.Tenants[0].Scheme = "Nope" }, "a", "Scheme"},
		{"neg-pgs", func(c *Config) { c.Tenants[0].PGs = -1 }, "a", "PGs"},
		{"zero-pool", func(c *Config) { c.Tenants[0].PoolBytes = 0 }, "a", "PoolBytes"},
		{"odd-pool", func(c *Config) { c.Tenants[0].PGs = 3; c.Tenants[0].PoolBytes = 64 }, "a", "PoolBytes"},
		{"bad-interleave", func(c *Config) { c.Tenants[0].Interleave = "stripe" }, "a", "Interleave"},
		{"neg-inflight", func(c *Config) { c.Tenants[0].MaxInFlight = -2 }, "a", "MaxInFlight"},
		{"neg-queue", func(c *Config) { c.Tenants[0].MaxQueuedOps = -1 }, "a", "MaxQueuedOps"},
		{"neg-batch", func(c *Config) { c.Tenants[0].BatchOps = -1 }, "a", "BatchOps"},
		{"neg-retry", func(c *Config) { c.RetryAfterSeconds = -1 }, "", "RetryAfterSeconds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Tenants: []TenantConfig{base}}
			tc.mut(&cfg)
			_, err := NewPool(cfg)
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Tenant != tc.tenant || ce.Field != tc.field {
				t.Fatalf("ConfigError{Tenant:%q Field:%q}, want {%q %q}: %v",
					ce.Tenant, ce.Field, tc.tenant, tc.field, ce)
			}
		})
	}
}

// TestRouteDisjointAndTotal pins the routing function: every pool address
// maps to exactly one (PG, local) slot inside that PG's engine capacity,
// and no two pool addresses collide on the same slot.
func TestRouteDisjointAndTotal(t *testing.T) {
	for _, iv := range []string{"line", "page", "hash"} {
		t.Run(iv, func(t *testing.T) {
			pool := uint64(4 * 4096)
			p, err := NewPool(Config{Tenants: []TenantConfig{{
				Name: "a", Scheme: securemem.SteinsGC, PGs: 4, PoolBytes: pool, Interleave: iv,
			}}})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			tn := p.Tenant("a")
			per := pgBytes(&tn.cfg, tn.iv)
			seen := map[[2]uint64]uint64{}
			for addr := uint64(0); addr < pool; addr += securemem.BlockSize {
				k, local := tn.route(addr)
				if k < 0 || k >= len(tn.pgs) {
					t.Fatalf("addr %#x routed to pg %d of %d", addr, k, len(tn.pgs))
				}
				if local%securemem.BlockSize != 0 || local >= per {
					t.Fatalf("addr %#x local %#x outside pg capacity %#x", addr, local, per)
				}
				key := [2]uint64{uint64(k), local}
				if prev, dup := seen[key]; dup {
					t.Fatalf("addrs %#x and %#x collide on pg %d local %#x", prev, addr, k, local)
				}
				seen[key] = addr
			}
		})
	}
}

// TestHashRoutingSurvivesRestart pins the property the identity-local
// hash design exists for: routing is a pure address function, so a pool
// built twice routes identically (no first-touch order dependence).
func TestHashRoutingSurvivesRestart(t *testing.T) {
	mk := func() (*Pool, *Tenant) {
		p, err := NewPool(Config{Tenants: []TenantConfig{{
			Name: "a", Scheme: securemem.SteinsGC, PGs: 3, PoolBytes: 96 * 64, Interleave: "hash",
		}}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		return p, p.Tenant("a")
	}
	_, t1 := mk()
	_, t2 := mk()
	for addr := uint64(0); addr < 96*64; addr += securemem.BlockSize {
		k1, l1 := t1.route(addr)
		k2, l2 := t2.route(addr)
		if k1 != k2 || l1 != l2 {
			t.Fatalf("addr %#x routes differently across lives: (%d,%#x) vs (%d,%#x)",
				addr, k1, l1, k2, l2)
		}
	}
}

// TestMetricsExportPerTenant pins the tenant label threading through the
// metrics pipeline.
func TestMetricsExportPerTenant(t *testing.T) {
	p, err := NewPool(Config{Metrics: true, Tenants: []TenantConfig{
		{Name: "alice", Scheme: securemem.SteinsSC, PGs: 2, PoolBytes: 2 * 64 * 64},
		{Name: "bob", Scheme: securemem.SCUEGC, PoolBytes: 64 * 64},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 20; i++ {
		spec := OpSpec{IsWrite: true, Addr: uint64(i) * securemem.BlockSize}
		spec.Data[0] = byte(i)
		if _, aerr := p.Do("alice", []OpSpec{spec}); aerr != nil {
			t.Fatal(aerr)
		}
	}
	ex := p.MetricsExport()
	if len(ex) != 2 || ex[0].Tenant != "alice" || ex[1].Tenant != "bob" {
		t.Fatalf("export tenants wrong: %+v", ex)
	}
	if ex[0].System == nil || ex[0].System.Merged.Tenant != "alice" {
		t.Fatalf("merged snapshot lost the tenant label: %+v", ex[0].System)
	}
	if ex[0].System.Merged.Ops != 20 {
		t.Fatalf("alice merged ops = %d, want 20", ex[0].System.Merged.Ops)
	}
	if got := len(ex[0].System.PerDIMM); got != 2 {
		t.Fatalf("alice has %d per-controller snapshots, want 2 (2 PGs × 1 channel)", got)
	}
	for _, s := range ex[0].System.PerDIMM {
		if s.Tenant != "alice" {
			t.Fatalf("per-controller snapshot lost tenant label: %+v", s)
		}
	}
}
