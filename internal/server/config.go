package server

import (
	"fmt"
	"regexp"

	"steins/internal/trace"
	"steins/securemem"
)

// Defaults for the admission-control and batching knobs.
const (
	DefaultMaxInFlight  = 64
	DefaultMaxQueuedOps = 1024
	DefaultBatchOps     = 128
	DefaultRetryAfter   = 1 // seconds advertised on 429
)

// TenantConfig describes one tenant's placement-group pool.
type TenantConfig struct {
	// Name identifies the tenant in URLs, metrics labels and checkpoints;
	// required, limited to [A-Za-z0-9_-].
	Name string `json:"name"`
	// Scheme is the crash-recovery scheme of every placement group.
	Scheme securemem.Scheme `json:"scheme"`
	// PGs is the number of placement groups the pool spreads over;
	// default 1. Each PG is an independent securemem engine owning a
	// disjoint slice of the tenant's address space.
	PGs int `json:"pgs,omitempty"`
	// PoolBytes is the tenant's total protected capacity; required.
	PoolBytes uint64 `json:"pool_bytes"`
	// Channels interleaves each PG across this many channel controllers
	// (the securemem channel engine); default 1.
	Channels int `json:"channels,omitempty"`
	// Interleave routes tenant addresses across PGs: "line" (64 B
	// round-robin), "page" (4 KiB round-robin) or "hash" (scattered
	// lines); default "line". The line/page modes compact PG-local
	// addresses with the exact chunk arithmetic the sharded engine's
	// splitter uses; the hash mode keeps local addresses identical to
	// global ones (each PG is sized for the full pool) so routing stays a
	// pure address function that survives restarts.
	Interleave string `json:"interleave,omitempty"`
	// MaxInFlight bounds concurrently admitted requests; a request beyond
	// the bound is rejected with 429 and Retry-After. 0 selects the
	// default (64); negative is invalid.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// MaxQueuedOps bounds the write-coalescing queue depth, in
	// operations. 0 selects the default (1024); negative is invalid.
	MaxQueuedOps int `json:"max_queued_ops,omitempty"`
	// BatchOps caps how many queued operations are coalesced into one
	// engine epoch. 0 selects the default (128); negative is invalid.
	BatchOps int `json:"batch_ops,omitempty"`
	// MetaCacheBytes sizes each channel controller's metadata cache
	// (0: the engine default).
	MetaCacheBytes int `json:"meta_cache_bytes,omitempty"`
	// KeySeed derives the tenant's (deterministic) secret key.
	KeySeed uint64 `json:"key_seed,omitempty"`
}

// Config configures a Pool.
type Config struct {
	Tenants []TenantConfig `json:"tenants"`
	// Metrics attaches per-controller collectors so /metrics exports
	// per-phase distributions and occupancy series in addition to the
	// always-on accounting.
	Metrics bool `json:"metrics,omitempty"`
	// RetryAfterSeconds is advertised on 429 responses (0: default 1).
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// RecordLog retains every admitted operation (and the bytes each read
	// returned) as the tenant's linearized request log. Test harnesses
	// replay it against a single-threaded reference; production daemons
	// leave it off.
	RecordLog bool `json:"-"`
}

// ConfigError reports a tenant-pool configuration field the server cannot
// be built from, mirroring memctrl.ConfigError's structured shape so
// harnesses can tell WHICH knob of WHICH tenant was wrong.
type ConfigError struct {
	Tenant string // the tenant name, empty for top-level errors
	Field  string // the TenantConfig/Config field name
	Value  string // the rejected value, rendered
	Reason string
}

func (e *ConfigError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("server: invalid Config.%s = %s: %s", e.Field, e.Value, e.Reason)
	}
	return fmt.Sprintf("server: tenant %q: invalid %s = %s: %s", e.Tenant, e.Field, e.Value, e.Reason)
}

var tenantNameRE = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

// parseInterleave maps a TenantConfig.Interleave spelling to its mode.
func parseInterleave(s string) (trace.Interleave, error) {
	if s == "" {
		return trace.InterleaveLine, nil
	}
	return trace.ParseInterleave(s)
}

// pgBytes returns the per-PG engine capacity for a validated tenant:
// ShardBytes-compacted slices for the chunked modes, the full pool for
// the hash mode (identity local addresses).
func pgBytes(tc *TenantConfig, iv trace.Interleave) uint64 {
	if iv == trace.InterleaveHash {
		return tc.PoolBytes
	}
	return trace.ShardBytes(tc.PoolBytes, tc.PGs, iv)
}

// Validate checks a configuration and returns a normalized copy: zero
// knobs with defaults are filled in, while fields no pool can be built
// from are rejected with a structured *ConfigError.
func (cfg Config) Validate() (Config, error) {
	if cfg.RetryAfterSeconds < 0 {
		return cfg, &ConfigError{Field: "RetryAfterSeconds",
			Value: fmt.Sprint(cfg.RetryAfterSeconds), Reason: "must be non-negative"}
	}
	if cfg.RetryAfterSeconds == 0 {
		cfg.RetryAfterSeconds = DefaultRetryAfter
	}
	if len(cfg.Tenants) == 0 {
		return cfg, &ConfigError{Field: "Tenants", Value: "[]", Reason: "at least one tenant required"}
	}
	cfg.Tenants = append([]TenantConfig(nil), cfg.Tenants...)
	seen := map[string]bool{}
	for i := range cfg.Tenants {
		tc := &cfg.Tenants[i]
		if tc.Name == "" || !tenantNameRE.MatchString(tc.Name) {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Name",
				Value: fmt.Sprintf("%q", tc.Name), Reason: "required, limited to [A-Za-z0-9_-]"}
		}
		if seen[tc.Name] {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Name",
				Value: fmt.Sprintf("%q", tc.Name), Reason: "duplicate tenant name"}
		}
		seen[tc.Name] = true
		valid := false
		for _, s := range securemem.Schemes() {
			if tc.Scheme == s {
				valid = true
				break
			}
		}
		if !valid {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Scheme",
				Value: fmt.Sprintf("%q", tc.Scheme), Reason: "unknown scheme"}
		}
		if tc.PGs == 0 {
			tc.PGs = 1
		}
		if tc.PGs < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "PGs",
				Value: fmt.Sprint(tc.PGs), Reason: "placement-group count must be positive"}
		}
		if tc.Channels == 0 {
			tc.Channels = 1
		}
		if tc.Channels < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Channels",
				Value: fmt.Sprint(tc.Channels), Reason: "channel count must be positive"}
		}
		iv, err := parseInterleave(tc.Interleave)
		if err != nil {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Interleave",
				Value: fmt.Sprintf("%q", tc.Interleave), Reason: "must be line, page or hash"}
		}
		if tc.Interleave == "" {
			tc.Interleave = iv.String()
		}
		if tc.PoolBytes == 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "PoolBytes",
				Value: "0", Reason: "no protected capacity"}
		}
		chunk := iv.ChunkBytes()
		if iv == trace.InterleaveHash {
			chunk = 64
		}
		if tc.PoolBytes%(chunk*uint64(tc.PGs)) != 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "PoolBytes",
				Value: fmt.Sprint(tc.PoolBytes),
				Reason: fmt.Sprintf("must be a multiple of PGs×%d-byte interleave chunks = %d",
					chunk, chunk*uint64(tc.PGs))}
		}
		if per := pgBytes(tc, iv); per%(uint64(tc.Channels)*64) != 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "Channels",
				Value: fmt.Sprint(tc.Channels),
				Reason: fmt.Sprintf("per-PG capacity %d is not a multiple of Channels×64 = %d",
					per, uint64(tc.Channels)*64)}
		}
		if tc.MaxInFlight < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "MaxInFlight",
				Value: fmt.Sprint(tc.MaxInFlight), Reason: "must be non-negative"}
		}
		if tc.MaxInFlight == 0 {
			tc.MaxInFlight = DefaultMaxInFlight
		}
		if tc.MaxQueuedOps < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "MaxQueuedOps",
				Value: fmt.Sprint(tc.MaxQueuedOps), Reason: "must be non-negative"}
		}
		if tc.MaxQueuedOps == 0 {
			tc.MaxQueuedOps = DefaultMaxQueuedOps
		}
		if tc.BatchOps < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "BatchOps",
				Value: fmt.Sprint(tc.BatchOps), Reason: "must be non-negative"}
		}
		if tc.BatchOps == 0 {
			tc.BatchOps = DefaultBatchOps
		}
		if tc.MetaCacheBytes < 0 {
			return cfg, &ConfigError{Tenant: tc.Name, Field: "MetaCacheBytes",
				Value: fmt.Sprint(tc.MetaCacheBytes), Reason: "must be non-negative"}
		}
	}
	return cfg, nil
}
