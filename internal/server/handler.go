package server

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"steins/securemem"
)

// Handler returns the pool's HTTP surface:
//
//	PUT  /v1/tenants/{tenant}/blocks/{addr}   raw 64-byte body → write
//	GET  /v1/tenants/{tenant}/blocks/{addr}   read → raw 64-byte body
//	POST /v1/tenants/{tenant}/batch           JSON op list, applied as one request
//	GET  /v1/tenants/{tenant}/stats           admission counters + per-PG engine stats
//	GET  /v1/tenants/{tenant}/recovery        last restart-recovery report
//	GET  /metrics                             per-tenant labeled metrics snapshots
//	GET  /healthz                             200 serving / 503 draining
//
// Admission rejections map to 429 with a Retry-After header (in-flight or
// queue bound) or 503 (draining); integrity violations on the served path
// map to 409, other engine errors to 500.
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/tenants/{tenant}/blocks/{addr}", p.handleBlockPut)
	mux.HandleFunc("GET /v1/tenants/{tenant}/blocks/{addr}", p.handleBlockGet)
	mux.HandleFunc("POST /v1/tenants/{tenant}/batch", p.handleBatch)
	mux.HandleFunc("GET /v1/tenants/{tenant}/stats", p.handleStats)
	mux.HandleFunc("GET /v1/tenants/{tenant}/recovery", p.handleRecovery)
	mux.HandleFunc("GET /metrics", p.handleMetrics)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	return mux
}

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error string `json:"error"`
}

func (p *Pool) writeError(w http.ResponseWriter, status int, msg string) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(p.cfg.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorBody{Error: msg})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseAddr accepts decimal or 0x-prefixed block addresses.
func parseAddr(s string) (uint64, error) {
	return strconv.ParseUint(s, 0, 64)
}

// engineStatus maps a served-path engine error to its HTTP status:
// integrity violations (tamper, replay, quarantined subtrees) are the
// client-visible 409 class, everything else is a server fault.
func engineStatus(err error) int {
	if errors.Is(err, securemem.ErrTamper) || errors.Is(err, securemem.ErrReplay) {
		return http.StatusConflict
	}
	return http.StatusInternalServerError
}

func (p *Pool) handleBlockPut(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddr(r.PathValue("addr"))
	if err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad address: %v", err))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, securemem.BlockSize+1))
	if err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
		return
	}
	if len(body) != securemem.BlockSize {
		p.writeError(w, http.StatusBadRequest,
			fmt.Sprintf("body must be exactly %d bytes, got %d", securemem.BlockSize, len(body)))
		return
	}
	var blk securemem.Block
	copy(blk[:], body)
	ops, aerr := p.Do(r.PathValue("tenant"), []OpSpec{{IsWrite: true, Addr: addr, Data: blk}})
	if aerr != nil {
		p.writeError(w, aerr.Status, aerr.Reason)
		return
	}
	if ops[0].Err != nil {
		p.writeError(w, engineStatus(ops[0].Err), ops[0].Err.Error())
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (p *Pool) handleBlockGet(w http.ResponseWriter, r *http.Request) {
	addr, err := parseAddr(r.PathValue("addr"))
	if err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad address: %v", err))
		return
	}
	ops, aerr := p.Do(r.PathValue("tenant"), []OpSpec{{Addr: addr}})
	if aerr != nil {
		p.writeError(w, aerr.Status, aerr.Reason)
		return
	}
	if ops[0].Err != nil {
		p.writeError(w, engineStatus(ops[0].Err), ops[0].Err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(ops[0].Data[:])
}

// BatchOp is one operation in a POST /batch body; Data is base64 and
// required for writes, absent for reads.
type BatchOp struct {
	Op   string `json:"op"` // "write" or "read"
	Addr uint64 `json:"addr"`
	Data string `json:"data,omitempty"`
}

// BatchResult is one operation's outcome; reads carry the block base64.
type BatchResult struct {
	OK    bool   `json:"ok"`
	Data  string `json:"data,omitempty"`
	Error string `json:"error,omitempty"`
}

func (p *Pool) handleBatch(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Ops []BatchOp `json:"ops"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		p.writeError(w, http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err))
		return
	}
	specs := make([]OpSpec, len(body.Ops))
	for i, bo := range body.Ops {
		switch bo.Op {
		case "write":
			raw, err := base64.StdEncoding.DecodeString(bo.Data)
			if err != nil || len(raw) != securemem.BlockSize {
				p.writeError(w, http.StatusBadRequest,
					fmt.Sprintf("op %d: data must be base64 of exactly %d bytes", i, securemem.BlockSize))
				return
			}
			specs[i].IsWrite = true
			copy(specs[i].Data[:], raw)
		case "read":
			if bo.Data != "" {
				p.writeError(w, http.StatusBadRequest, fmt.Sprintf("op %d: read carries data", i))
				return
			}
		default:
			p.writeError(w, http.StatusBadRequest,
				fmt.Sprintf("op %d: unknown op %q (want write or read)", i, bo.Op))
			return
		}
		specs[i].Addr = bo.Addr
	}
	ops, aerr := p.Do(r.PathValue("tenant"), specs)
	if aerr != nil {
		p.writeError(w, aerr.Status, aerr.Reason)
		return
	}
	results := make([]BatchResult, len(ops))
	for i := range ops {
		if ops[i].Err != nil {
			results[i].Error = ops[i].Err.Error()
			continue
		}
		results[i].OK = true
		if !ops[i].IsWrite {
			results[i].Data = base64.StdEncoding.EncodeToString(ops[i].Data[:])
		}
	}
	writeJSON(w, struct {
		Results []BatchResult `json:"results"`
	}{results})
}

// TenantStatus is the GET /stats payload.
type TenantStatus struct {
	Tenant    string            `json:"tenant"`
	Scheme    string            `json:"scheme"`
	PGs       int               `json:"pgs"`
	Channels  int               `json:"channels"`
	Admission AdmissionStats    `json:"admission"`
	PGStats   []securemem.Stats `json:"pg_stats"`
}

func (p *Pool) handleStats(w http.ResponseWriter, r *http.Request) {
	t := p.tenants[r.PathValue("tenant")]
	if t == nil {
		p.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", r.PathValue("tenant")))
		return
	}
	writeJSON(w, TenantStatus{
		Tenant:    t.cfg.Name,
		Scheme:    string(t.cfg.Scheme),
		PGs:       t.cfg.PGs,
		Channels:  t.cfg.Channels,
		Admission: t.Admission(),
		PGStats:   t.PGStats(),
	})
}

func (p *Pool) handleRecovery(w http.ResponseWriter, r *http.Request) {
	t := p.tenants[r.PathValue("tenant")]
	if t == nil {
		p.writeError(w, http.StatusNotFound, fmt.Sprintf("unknown tenant %q", r.PathValue("tenant")))
		return
	}
	rec := t.Recovery()
	if rec == nil {
		p.writeError(w, http.StatusNotFound, "no recovery has run")
		return
	}
	writeJSON(w, rec)
}

func (p *Pool) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, p.MetricsExport())
}

func (p *Pool) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if p.draining.Load() {
		p.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}
