// Package server is the secure-KV serving layer: a concurrent multi-tenant
// server over the securemem engine. Each tenant owns a pool of placement
// groups (PGs); tenant addresses route onto PGs by the same line/page/hash
// interleave rules the sharded simulation engine uses, and every PG is an
// independent securemem instance, optionally channel-interleaved across
// several controllers (the §IV-F multi-DIMM model). On top of the engines
// the server adds admission control (bounded per-tenant in-flight plus
// queue-depth rejection), request batching (a tenant's queued operations
// coalesce into one engine epoch before dispatch), per-tenant metrics
// export, checkpoint/restore through the snapshot envelope, and
// crash-recovery on restart.
//
// # Linearization
//
// The served path is linearizable by construction, which is what the
// differential test harness proves end to end:
//
//   - Admission assigns every accepted operation a per-tenant sequence
//     number under the tenant's queue lock; the queue is FIFO.
//   - The tenant's single batcher goroutine drains the queue in FIFO
//     order, so a batch is a contiguous sequence-number window.
//   - Within a batch, operations are grouped by placement group in batch
//     (= sequence) order. Two operations on the same address always land
//     on the same PG — routing is a pure function of the address — so the
//     per-address apply order equals the sequence order even though
//     distinct PGs apply their sub-batches concurrently.
//
// Replaying the admitted log in sequence order on a single-threaded
// reference therefore reproduces every read's served bytes and the final
// state of every address, for any client interleaving: operations on
// different addresses commute in the data plane, and operations on the
// same address apply in exactly the logged order.
package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"steins/internal/metrics"
	"steins/internal/snapshot"
	"steins/internal/trace"
	"steins/securemem"
)

// OpSpec is one operation submitted to a tenant: a 64-byte write or a
// read, at a tenant-global block-aligned address.
type OpSpec struct {
	IsWrite bool
	Addr    uint64
	Data    securemem.Block
}

// op is one admitted operation. The batcher fills data (for reads) and
// err before completing the owning request, so handlers may read them
// after the request's done channel closes.
type op struct {
	isWrite bool
	addr    uint64 // tenant-global address
	local   uint64 // PG-local address, set at apply time
	data    securemem.Block
	err     error
	seq     uint64
	req     *request
}

// request is one admitted client request: its operations and a completion
// channel closed when the last one has applied.
type request struct {
	ops     []op
	pending atomic.Int32
	done    chan struct{}
}

func (o *op) finish() {
	if o.req.pending.Add(-1) == 0 {
		close(o.req.done)
	}
}

// AdmissionError is a rejected submission; Status is the HTTP status the
// handler maps it to (429 for admission-control rejections, 503 while
// draining, 404/400 for routing errors).
type AdmissionError struct {
	Status int
	Reason string
}

func (e *AdmissionError) Error() string { return fmt.Sprintf("server: %s", e.Reason) }

// LogRecord is one linearized operation: for writes the stored bytes, for
// reads the bytes the server returned. Valid once the owning request has
// completed.
type LogRecord struct {
	Seq     uint64
	IsWrite bool
	Addr    uint64
	Data    securemem.Block
	Err     string
}

// TenantRecovery is the structured per-tenant outcome of the restart
// recovery pass: work summed across placement groups, time the parallel
// maximum (PGs recover independently), degradation folded.
type TenantRecovery struct {
	Tenant         string `json:"tenant"`
	Recovered      bool   `json:"recovered"`
	Err            string `json:"error,omitempty"`
	PGs            int    `json:"pgs"`
	NodesRecovered uint64 `json:"nodes_recovered"`
	NVMReads       uint64 `json:"nvm_reads"`
	NVMWrites      uint64 `json:"nvm_writes"`
	MACOps         uint64 `json:"mac_ops"`
	// SimulatedNS is the recovery-time bound: PGs (and channels within a
	// PG) recover in parallel, so the slowest bounds the outage.
	SimulatedNS float64                     `json:"simulated_ns"`
	Degradation securemem.DegradationReport `json:"degradation"`
	// RecoverErr is the joined per-PG recovery error; errors.Is
	// classification (ErrNoRecovery, ErrTamper, ErrReplay) works on it.
	RecoverErr error `json:"-"`
}

// AdmissionStats are one tenant's admission-control counters. The
// invariant the property test pins: Offered == Accepted + Rejected, and
// InFlightHWM never exceeds the configured bound.
type AdmissionStats struct {
	Offered          uint64 `json:"offered"`
	Accepted         uint64 `json:"accepted"`
	Rejected         uint64 `json:"rejected"`
	RejectedInFlight uint64 `json:"rejected_in_flight"`
	RejectedQueue    uint64 `json:"rejected_queue"`
	RejectedDraining uint64 `json:"rejected_draining"`
	InFlight         int    `json:"in_flight"`
	InFlightHWM      int    `json:"in_flight_hwm"`
	QueueDepth       int    `json:"queue_depth"`
	Batches          uint64 `json:"batches"`
}

// Tenant is one tenant's placement-group pool plus its serving state.
type Tenant struct {
	cfg TenantConfig
	iv  trace.Interleave
	pgs []*securemem.Memory

	// engineMu serializes all engine access: the batcher holds it across
	// one batch (the "engine epoch"), and state capture, metrics export
	// and recovery hold it to observe a batch boundary.
	engineMu sync.Mutex

	// mu guards the admission state below; cond signals both the batcher
	// (work arrived) and drain waiters (queue emptied / in-flight
	// dropped).
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*op
	inflight int
	hwm      int
	adm      AdmissionStats
	nextSeq  uint64
	record   bool
	log      []*op
	paused   bool // test hook: batcher holds off while set
	closed   bool
	batches  uint64
	recovery *TenantRecovery
}

// Pool is the multi-tenant serving core; build with NewPool, serve over
// HTTP with Handler.
type Pool struct {
	cfg      Config
	names    []string // tenant names in config order
	tenants  map[string]*Tenant
	draining atomic.Bool
	wg       sync.WaitGroup
}

// NewPool validates cfg, builds every tenant's placement-group engines
// and starts one batcher goroutine per tenant. Close (or Drain) must be
// called to stop them.
func NewPool(cfg Config) (*Pool, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	p := &Pool{cfg: cfg, tenants: map[string]*Tenant{}}
	for i := range cfg.Tenants {
		tc := cfg.Tenants[i]
		iv, _ := parseInterleave(tc.Interleave)
		t := &Tenant{cfg: tc, iv: iv, record: cfg.RecordLog}
		t.cond = sync.NewCond(&t.mu)
		per := pgBytes(&tc, iv)
		for k := 0; k < tc.PGs; k++ {
			m, err := securemem.New(securemem.Config{
				DataBytes:      per,
				Scheme:         tc.Scheme,
				Channels:       tc.Channels,
				MetaCacheBytes: tc.MetaCacheBytes,
				KeySeed:        tc.KeySeed,
			})
			if err != nil {
				return nil, fmt.Errorf("server: tenant %q pg %d: %w", tc.Name, k, err)
			}
			if cfg.Metrics {
				for _, c := range m.Controllers() {
					c.SetMetrics(metrics.NewCollector(metrics.Options{}))
				}
			}
			t.pgs = append(t.pgs, m)
		}
		p.names = append(p.names, tc.Name)
		p.tenants[tc.Name] = t
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			t.runBatcher()
		}()
	}
	return p, nil
}

// Config returns the validated (normalized) configuration.
func (p *Pool) Config() Config { return p.cfg }

// Tenant returns a tenant by name, nil if unknown.
func (p *Pool) Tenant(name string) *Tenant { return p.tenants[name] }

// TenantNames returns the tenant names in configuration order.
func (p *Pool) TenantNames() []string { return p.names }

// route maps a tenant-global address to its (placement group, PG-local
// address) home: chunked round-robin with local compaction for line/page
// (the sharded engine's exact arithmetic), scattered lines with identity
// local addresses for hash.
func (t *Tenant) route(addr uint64) (int, uint64) {
	if t.iv == trace.InterleaveHash {
		return trace.HashShard(addr, len(t.pgs)), addr
	}
	chunk := t.iv.ChunkBytes()
	c := addr / chunk
	n := uint64(len(t.pgs))
	return int(c % n), (c/n)*chunk + addr%chunk
}

// CheckAddr validates a tenant-global address.
func (t *Tenant) CheckAddr(addr uint64) error {
	if addr%securemem.BlockSize != 0 {
		return fmt.Errorf("address %#x is not %d-byte aligned", addr, securemem.BlockSize)
	}
	if addr >= t.cfg.PoolBytes {
		return fmt.Errorf("address %#x beyond pool capacity %#x", addr, t.cfg.PoolBytes)
	}
	return nil
}

// Submit admits one request of ops (or rejects it without touching any
// engine state). On success the returned request completes — its done
// channel closes — once every operation has applied; the caller must then
// call release exactly once.
func (t *Tenant) submit(specs []OpSpec, draining bool) (*request, *AdmissionError) {
	if len(specs) == 0 {
		return nil, &AdmissionError{Status: 400, Reason: "empty request"}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.adm.Offered++
	if draining || t.closed {
		t.adm.Rejected++
		t.adm.RejectedDraining++
		return nil, &AdmissionError{Status: 503, Reason: "draining"}
	}
	if t.inflight >= t.cfg.MaxInFlight {
		t.adm.Rejected++
		t.adm.RejectedInFlight++
		return nil, &AdmissionError{Status: 429,
			Reason: fmt.Sprintf("tenant %q at its in-flight bound (%d)", t.cfg.Name, t.cfg.MaxInFlight)}
	}
	if len(t.queue)+len(specs) > t.cfg.MaxQueuedOps {
		t.adm.Rejected++
		t.adm.RejectedQueue++
		return nil, &AdmissionError{Status: 429,
			Reason: fmt.Sprintf("tenant %q queue full (%d ops)", t.cfg.Name, t.cfg.MaxQueuedOps)}
	}
	t.adm.Accepted++
	t.inflight++
	if t.inflight > t.hwm {
		t.hwm = t.inflight
	}
	req := &request{ops: make([]op, len(specs)), done: make(chan struct{})}
	req.pending.Store(int32(len(specs)))
	for i, s := range specs {
		o := &req.ops[i]
		*o = op{isWrite: s.IsWrite, addr: s.Addr, data: s.Data, seq: t.nextSeq, req: req}
		t.nextSeq++
		t.queue = append(t.queue, o)
		if t.record {
			t.log = append(t.log, o)
		}
	}
	t.cond.Broadcast()
	return req, nil
}

// release returns one completed request's admission slot.
func (t *Tenant) release() {
	t.mu.Lock()
	t.inflight--
	t.cond.Broadcast()
	t.mu.Unlock()
}

// OpResult is one completed operation: Data holds the served bytes for
// reads (the written bytes for writes), Err any per-op engine error.
type OpResult struct {
	IsWrite bool
	Addr    uint64
	Data    securemem.Block
	Err     error
}

// Do admits, applies and completes one request synchronously: the Go-level
// serving API the HTTP handlers (and in-process harnesses) sit on.
func (p *Pool) Do(tenant string, specs []OpSpec) ([]OpResult, *AdmissionError) {
	t := p.tenants[tenant]
	if t == nil {
		return nil, &AdmissionError{Status: 404, Reason: fmt.Sprintf("unknown tenant %q", tenant)}
	}
	for i := range specs {
		if err := t.CheckAddr(specs[i].Addr); err != nil {
			return nil, &AdmissionError{Status: 400, Reason: err.Error()}
		}
	}
	req, aerr := t.submit(specs, p.draining.Load())
	if aerr != nil {
		return nil, aerr
	}
	<-req.done
	t.release()
	out := make([]OpResult, len(req.ops))
	for i := range req.ops {
		o := &req.ops[i]
		out[i] = OpResult{IsWrite: o.isWrite, Addr: o.addr, Data: o.data, Err: o.err}
	}
	return out, nil
}

// runBatcher is the tenant's single apply loop: it drains the FIFO queue
// in windows of at most BatchOps operations and applies each window as
// one engine epoch.
func (t *Tenant) runBatcher() {
	for {
		t.mu.Lock()
		for (t.paused || len(t.queue) == 0) && !t.closed {
			t.cond.Wait()
		}
		if len(t.queue) == 0 && t.closed {
			t.mu.Unlock()
			return
		}
		n := len(t.queue)
		if n > t.cfg.BatchOps {
			n = t.cfg.BatchOps
		}
		batch := append([]*op(nil), t.queue[:n]...)
		rest := copy(t.queue, t.queue[n:])
		for i := rest; i < len(t.queue); i++ {
			t.queue[i] = nil
		}
		t.queue = t.queue[:rest]
		t.mu.Unlock()

		t.applyBatch(batch)

		t.mu.Lock()
		t.batches++
		t.adm.Batches = t.batches
		t.cond.Broadcast()
		t.mu.Unlock()
	}
}

// applyBatch applies one coalesced window: operations grouped by
// placement group in sequence order, distinct PGs driven concurrently
// (they are disjoint engines), same-PG operations strictly in sequence
// order. Holding engineMu for the whole window makes the batch one
// observable engine epoch.
func (t *Tenant) applyBatch(batch []*op) {
	t.engineMu.Lock()
	defer t.engineMu.Unlock()
	per := make([][]*op, len(t.pgs))
	for _, o := range batch {
		k, local := t.route(o.addr)
		o.local = local
		per[k] = append(per[k], o)
	}
	var wg sync.WaitGroup
	for k := range per {
		if len(per[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(m *securemem.Memory, ops []*op) {
			defer wg.Done()
			for _, o := range ops {
				if o.isWrite {
					o.err = m.Write(o.local, o.data)
				} else {
					o.data, o.err = m.Read(o.local)
				}
				o.finish()
			}
		}(t.pgs[k], per[k])
	}
	wg.Wait()
}

// Drain stops admission pool-wide (new requests get 503), waits for every
// tenant's queue and in-flight window to empty, then stops the batchers.
// The pool is afterwards quiesced: State and checkpointing see the final
// batch boundary.
func (p *Pool) Drain() {
	p.draining.Store(true)
	for _, name := range p.names {
		t := p.tenants[name]
		t.mu.Lock()
		t.paused = false
		t.cond.Broadcast()
		for len(t.queue) > 0 || t.inflight > 0 {
			t.cond.Wait()
		}
		t.closed = true
		t.cond.Broadcast()
		t.mu.Unlock()
	}
	p.wg.Wait()
}

// Close is Drain for callers that don't need the distinction.
func (p *Pool) Close() { p.Drain() }

// setPaused is the test hook behind the admission property test: a paused
// tenant admits and queues but applies nothing, so engine state is
// provably untouched by whatever admission decides.
func (t *Tenant) setPaused(paused bool) {
	t.mu.Lock()
	t.paused = paused
	t.cond.Broadcast()
	t.mu.Unlock()
}

// waitIdle blocks until the tenant's queue is empty and no request is in
// flight (a batch boundary with nothing pending).
func (t *Tenant) waitIdle() {
	t.mu.Lock()
	for len(t.queue) > 0 || t.inflight > 0 {
		t.cond.Wait()
	}
	t.mu.Unlock()
}

// Admission returns the tenant's admission counters.
func (t *Tenant) Admission() AdmissionStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.adm
	st.InFlight = t.inflight
	st.InFlightHWM = t.hwm
	st.QueueDepth = len(t.queue)
	st.Batches = t.batches
	return st
}

// Log materializes the tenant's linearized request log (RecordLog must
// have been set). Only records of completed requests carry read results;
// call on a quiesced tenant.
func (t *Tenant) Log() []LogRecord {
	t.mu.Lock()
	ops := append([]*op(nil), t.log...)
	t.mu.Unlock()
	recs := make([]LogRecord, len(ops))
	for i, o := range ops {
		recs[i] = LogRecord{Seq: o.seq, IsWrite: o.isWrite, Addr: o.addr, Data: o.data}
		if o.err != nil {
			recs[i].Err = o.err.Error()
		}
	}
	return recs
}

// Recovery returns the tenant's last restart-recovery outcome, nil if the
// pool never went through a restart.
func (t *Tenant) Recovery() *TenantRecovery {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recovery
}

// PGStats returns one securemem.Stats per placement group, taken at a
// batch boundary.
func (t *Tenant) PGStats() []securemem.Stats {
	t.engineMu.Lock()
	defer t.engineMu.Unlock()
	out := make([]securemem.Stats, len(t.pgs))
	for i, m := range t.pgs {
		out[i] = m.Stats()
	}
	return out
}

// state captures the tenant at a batch boundary.
func (t *Tenant) state() (snapshot.TenantState, error) {
	t.engineMu.Lock()
	defer t.engineMu.Unlock()
	t.mu.Lock()
	seq := t.nextSeq
	t.mu.Unlock()
	ts := snapshot.TenantState{Name: t.cfg.Name, Scheme: string(t.cfg.Scheme), AppliedSeq: seq}
	for k, m := range t.pgs {
		pg := snapshot.PGState{}
		for chk, c := range m.Controllers() {
			cs, err := c.State()
			if err != nil {
				return ts, fmt.Errorf("server: tenant %q pg %d channel %d: %w", t.cfg.Name, k, chk, err)
			}
			pg.Channels = append(pg.Channels, *cs)
		}
		ts.PGs = append(ts.PGs, pg)
	}
	return ts, nil
}

// State captures the whole pool at tenant batch boundaries (tenants in
// name-sorted configuration order, so identical pools produce identical
// bytes through snapshot.EncodeServer).
func (p *Pool) State() (*snapshot.ServerState, error) {
	st := &snapshot.ServerState{}
	for _, name := range p.names {
		ts, err := p.tenants[name].state()
		if err != nil {
			return nil, err
		}
		st.Tenants = append(st.Tenants, ts)
	}
	return st, nil
}

// StateBytes is State through the snapshot envelope: the byte-comparable
// checkpoint image.
func (p *Pool) StateBytes() ([]byte, error) {
	st, err := p.State()
	if err != nil {
		return nil, err
	}
	return snapshot.EncodeServer(st)
}

// RestoreState loads a checkpoint into a freshly built pool of the same
// configuration. Shape mismatches (tenants, placement groups, channels)
// are structured errors, not silent truncation.
func (p *Pool) RestoreState(st *snapshot.ServerState) error {
	if len(st.Tenants) != len(p.names) {
		return fmt.Errorf("server: checkpoint has %d tenants, config has %d", len(st.Tenants), len(p.names))
	}
	for i, ts := range st.Tenants {
		t := p.tenants[ts.Name]
		if t == nil {
			return fmt.Errorf("server: checkpoint tenant %q not in configuration", ts.Name)
		}
		if want := p.names[i]; ts.Name != want {
			return fmt.Errorf("server: checkpoint tenant %d is %q, config order says %q", i, ts.Name, want)
		}
		if ts.Scheme != string(t.cfg.Scheme) {
			return fmt.Errorf("server: tenant %q checkpointed under scheme %s, configured %s",
				ts.Name, ts.Scheme, t.cfg.Scheme)
		}
		if len(ts.PGs) != len(t.pgs) {
			return fmt.Errorf("server: tenant %q checkpoint has %d PGs, config has %d",
				ts.Name, len(ts.PGs), len(t.pgs))
		}
		t.engineMu.Lock()
		for k := range ts.PGs {
			ctrls := t.pgs[k].Controllers()
			if len(ts.PGs[k].Channels) != len(ctrls) {
				t.engineMu.Unlock()
				return fmt.Errorf("server: tenant %q pg %d checkpoint has %d channels, config has %d",
					ts.Name, k, len(ts.PGs[k].Channels), len(ctrls))
			}
			for chk := range ctrls {
				if err := ctrls[chk].Restore(&ts.PGs[k].Channels[chk]); err != nil {
					t.engineMu.Unlock()
					return fmt.Errorf("server: tenant %q pg %d channel %d: %w", ts.Name, k, chk, err)
				}
			}
		}
		t.engineMu.Unlock()
		t.mu.Lock()
		t.nextSeq = ts.AppliedSeq
		t.mu.Unlock()
	}
	return nil
}

// CrashRecoverAll models the restart after an outage: every tenant's
// placement groups crash (volatile controller state lost) and recover via
// their schemes, concurrently across PGs — multi-channel PGs additionally
// recover channel-parallel through multi.RecoverAll inside securemem. The
// per-tenant reports (work summed, time the parallel max, degradation
// folded) are retained for the /recovery endpoint and returned in tenant
// configuration order.
func (p *Pool) CrashRecoverAll() []TenantRecovery {
	out := make([]TenantRecovery, 0, len(p.names))
	for _, name := range p.names {
		t := p.tenants[name]
		t.engineMu.Lock()
		tr := TenantRecovery{Tenant: name, PGs: len(t.pgs)}
		reps := make([]securemem.RecoveryReport, len(t.pgs))
		errs := make([]error, len(t.pgs))
		var wg sync.WaitGroup
		for k, m := range t.pgs {
			wg.Add(1)
			go func(k int, m *securemem.Memory) {
				defer wg.Done()
				m.Crash()
				reps[k], errs[k] = m.Recover()
			}(k, m)
		}
		wg.Wait()
		for k := range reps {
			if errs[k] != nil {
				errs[k] = fmt.Errorf("pg %d: %w", k, errs[k])
				continue
			}
			tr.NodesRecovered += reps[k].NodesRecovered
			tr.NVMReads += reps[k].NVMReads
			tr.NVMWrites += reps[k].NVMWrites
			tr.MACOps += reps[k].MACOps
			if reps[k].SimulatedNS > tr.SimulatedNS {
				tr.SimulatedNS = reps[k].SimulatedNS
			}
			tr.Degradation.Fold(&reps[k].Degradation)
		}
		tr.RecoverErr = errors.Join(errs...)
		tr.Recovered = tr.RecoverErr == nil
		if tr.RecoverErr != nil {
			tr.Err = tr.RecoverErr.Error()
		}
		t.engineMu.Unlock()
		t.mu.Lock()
		t.recovery = &tr
		t.mu.Unlock()
		out = append(out, tr)
	}
	return out
}

// TenantMetrics is one tenant's /metrics entry: per-controller snapshots
// labeled pg<k>/ch<j>, merged into the system view, all carrying the
// tenant label.
type TenantMetrics struct {
	Tenant string                  `json:"tenant"`
	System *metrics.SystemSnapshot `json:"system"`
}

// MetricsExport assembles the per-tenant metrics at batch boundaries.
func (p *Pool) MetricsExport() []TenantMetrics {
	out := make([]TenantMetrics, 0, len(p.names))
	for _, name := range p.names {
		t := p.tenants[name]
		t.engineMu.Lock()
		var snaps []metrics.Snapshot
		for k, m := range t.pgs {
			for chk, c := range m.Controllers() {
				s := c.MetricsSnapshot(fmt.Sprintf("pg%d/ch%d", k, chk))
				s.Tenant = name
				snaps = append(snaps, *s)
			}
		}
		t.engineMu.Unlock()
		out = append(out, TenantMetrics{Tenant: name, System: metrics.MergeSnapshots(snaps)})
	}
	return out
}
