package sit

import (
	"testing"
	"testing/quick"

	"steins/internal/counter"
	"steins/internal/crypt"
)

func TestGeometryPaperHeights(t *testing.T) {
	// Table I: 16 GB NVM, height 9 including root with general leaves,
	// 8 with split leaves.
	gc := NewGeometry(16<<30, false, 16<<30)
	if got := gc.HeightIncludingRoot(); got != 9 {
		t.Fatalf("GC height = %d, want 9", got)
	}
	sc := NewGeometry(16<<30, true, 16<<30)
	if got := sc.HeightIncludingRoot(); got != 8 {
		t.Fatalf("SC height = %d, want 8", got)
	}
}

func TestGeometryLeafCounts(t *testing.T) {
	gc := NewGeometry(16<<30, false, 16<<30)
	if gc.LevelNodes[0] != (16<<30)/64/8 {
		t.Fatalf("GC leaves = %d", gc.LevelNodes[0])
	}
	sc := NewGeometry(16<<30, true, 16<<30)
	if sc.LevelNodes[0] != (16<<30)/64/64 {
		t.Fatalf("SC leaves = %d", sc.LevelNodes[0])
	}
}

func TestGeometryStorageOverheadPaper(t *testing.T) {
	// §IV-E: general leaves take 1/8 of data (2 GB for 16 GB); split leaves
	// take 1/64 (256 MB).
	gc := NewGeometry(16<<30, false, 16<<30)
	if got := gc.LevelNodes[0] * LineSize; got != 2<<30 {
		t.Fatalf("GC leaf storage = %d, want 2 GB", got)
	}
	sc := NewGeometry(16<<30, true, 16<<30)
	if got := sc.LevelNodes[0] * LineSize; got != 256<<20 {
		t.Fatalf("SC leaf storage = %d, want 256 MB", got)
	}
	if sc.MetaBytes >= gc.MetaBytes {
		t.Fatal("SC tree not smaller than GC tree")
	}
}

func TestGeometryLevelShrink(t *testing.T) {
	g := NewGeometry(1<<30, false, 1<<30)
	for k := 1; k < g.Levels; k++ {
		want := (g.LevelNodes[k-1] + counter.Arity - 1) / counter.Arity
		if g.LevelNodes[k] != want {
			t.Fatalf("level %d has %d nodes, want %d", k, g.LevelNodes[k], want)
		}
	}
	top := g.LevelNodes[g.Levels-1]
	if top > RootSlots {
		t.Fatalf("top level %d nodes > root fan-in %d", top, RootSlots)
	}
}

func TestGeometryLevelBasesContiguous(t *testing.T) {
	g := NewGeometry(1<<26, false, 1<<26)
	for k := 1; k < g.Levels; k++ {
		want := g.LevelBase[k-1] + g.LevelNodes[k-1]*LineSize
		if g.LevelBase[k] != want {
			t.Fatalf("level %d base %#x, want %#x", k, g.LevelBase[k], want)
		}
	}
	if g.MetaBytes != g.TotalNodes()*LineSize {
		t.Fatalf("MetaBytes %d != TotalNodes*64 %d", g.MetaBytes, g.TotalNodes()*LineSize)
	}
}

func TestLeafOfDataRoundTrip(t *testing.T) {
	for _, split := range []bool{false, true} {
		g := NewGeometry(1<<26, split, 1<<26)
		f := func(line uint64) bool {
			addr := (line % g.DataLines) * LineSize
			leaf, slot := g.LeafOfData(addr)
			return g.DataAddr(leaf, slot) == addr && leaf < g.LevelNodes[0]
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("split=%v: %v", split, err)
		}
	}
}

func TestNodeAddrRoundTrip(t *testing.T) {
	g := NewGeometry(1<<26, false, 1<<26)
	for level := 0; level < g.Levels; level++ {
		for _, idx := range []uint64{0, g.LevelNodes[level] / 2, g.LevelNodes[level] - 1} {
			addr := g.NodeAddr(level, idx)
			l2, i2, ok := g.NodeAt(addr)
			if !ok || l2 != level || i2 != idx {
				t.Fatalf("NodeAt(NodeAddr(%d,%d)) = (%d,%d,%v)", level, idx, l2, i2, ok)
			}
		}
	}
}

func TestNodeAtRejectsOutside(t *testing.T) {
	g := NewGeometry(1<<26, false, 1<<26)
	if _, _, ok := g.NodeAt(0); ok {
		t.Fatal("data address resolved as node")
	}
	if _, _, ok := g.NodeAt(g.MetaBase + g.MetaBytes); ok {
		t.Fatal("past-end address resolved as node")
	}
	if _, _, ok := g.NodeAt(g.MetaBase + 1); ok {
		t.Fatal("unaligned address resolved as node")
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	g := NewGeometry(1<<26, true, 1<<26)
	for level := 0; level < g.Levels; level++ {
		idx := g.LevelNodes[level] - 1
		off := g.Offset(level, idx)
		l2, i2, ok := g.NodeAtOffset(off)
		if !ok || l2 != level || i2 != idx {
			t.Fatalf("offset round trip (%d,%d) -> %d -> (%d,%d,%v)", level, idx, off, l2, i2, ok)
		}
	}
}

func TestParentChain(t *testing.T) {
	g := NewGeometry(1<<26, false, 1<<26)
	level, idx := 0, uint64(1234)
	for !g.IsTop(level) {
		pl, pi, slot := g.Parent(level, idx)
		if pl != level+1 {
			t.Fatalf("parent level %d, want %d", pl, level+1)
		}
		if pi != idx/counter.Arity || slot != int(idx%counter.Arity) {
			t.Fatalf("parent (%d,%d) slot %d for child %d", pl, pi, slot, idx)
		}
		level, idx = pl, pi
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Parent on top level did not panic")
		}
	}()
	g.Parent(level, idx)
}

func TestNodeEncodeDecodeGeneral(t *testing.T) {
	n := &Node{Level: 2, Index: 7}
	n.Gen.C[3] = 99
	n.SetHMAC(0xdead)
	got := DecodeNode(2, 7, false, n.Encode())
	if got.Counter(3) != 99 || got.HMAC() != 0xdead {
		t.Fatal("general node round trip failed")
	}
}

func TestNodeEncodeDecodeSplit(t *testing.T) {
	n := &Node{Level: 0, Index: 3, IsSplit: true}
	n.Split.Major = 5
	n.Split.Minor[10] = 31
	n.SetHMAC(0xbeef)
	got := DecodeNode(0, 3, true, n.Encode())
	if !got.IsSplit || got.Split.Major != 5 || got.Split.Minor[10] != 31 || got.HMAC() != 0xbeef {
		t.Fatal("split node round trip failed")
	}
}

func TestNodeFValue(t *testing.T) {
	g := &Node{}
	g.Gen.C[0], g.Gen.C[1] = 10, 20
	if g.FValue() != 30 {
		t.Fatalf("general FValue = %d", g.FValue())
	}
	s := &Node{IsSplit: true}
	s.Split.Major = 2
	s.Split.Minor[0] = 3
	if s.FValue() != 2*64+3 {
		t.Fatalf("split FValue = %d", s.FValue())
	}
}

func TestSplitAtUpperLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("split node above leaf level did not panic")
		}
	}()
	DecodeNode(1, 0, true, counter.Block{})
}

func TestNodeClone(t *testing.T) {
	n := &Node{Level: 1, Index: 2}
	n.Gen.C[0] = 5
	c := n.Clone()
	c.Gen.C[0] = 9
	if n.Gen.C[0] != 5 {
		t.Fatal("clone aliases original")
	}
}

func TestRootSlots(t *testing.T) {
	var r Root
	r.SetCounter(63, 7)
	if r.Counter(63) != 7 {
		t.Fatal("root counter lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("root slot 64 did not panic")
		}
	}()
	r.Counter(RootSlots)
}

func TestNodeMACSensitivity(t *testing.T) {
	mac, key := crypt.SipMAC{}, crypt.NewKey(1)
	var ctr [56]byte
	base := NodeMAC(mac, key, 0x1000, ctr, 5)
	ctr[0] = 1
	if NodeMAC(mac, key, 0x1000, ctr, 5) == base {
		t.Fatal("counter change did not change MAC")
	}
	ctr[0] = 0
	if NodeMAC(mac, key, 0x1040, ctr, 5) == base {
		t.Fatal("address change did not change MAC")
	}
	if NodeMAC(mac, key, 0x1000, ctr, 6) == base {
		t.Fatal("parent counter change did not change MAC")
	}
	if NodeMAC(mac, key, 0x1000, ctr, 5) != base {
		t.Fatal("identical inputs changed MAC")
	}
}

func TestDataMACSensitivity(t *testing.T) {
	mac, key := crypt.SipMAC{}, crypt.NewKey(2)
	var ct [64]byte
	base := DataMAC(mac, key, 64, &ct, 3)
	ct[13] = 1
	if DataMAC(mac, key, 64, &ct, 3) == base {
		t.Fatal("ciphertext change did not change MAC")
	}
	ct[13] = 0
	if DataMAC(mac, key, 128, &ct, 3) == base {
		t.Fatal("address change did not change MAC")
	}
	if DataMAC(mac, key, 64, &ct, 4) == base {
		t.Fatal("counter change did not change MAC")
	}
}

func TestGeometrySmallRegion(t *testing.T) {
	// A region smaller than one full leaf still yields a 1-node level.
	g := NewGeometry(64, false, 64)
	if g.Levels != 1 || g.LevelNodes[0] != 1 {
		t.Fatalf("tiny geometry: %d levels, %v nodes", g.Levels, g.LevelNodes)
	}
	if !g.IsTop(0) {
		t.Fatal("single level not top")
	}
}

func TestGeometryBadInputsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { NewGeometry(0, false, 0) },
		func() { NewGeometry(100, false, 0) },
		func() { NewGeometry(64, false, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry input did not panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkNodeMAC(b *testing.B) {
	mac, key := crypt.SipMAC{}, crypt.NewKey(1)
	var ctr [56]byte
	for i := 0; i < b.N; i++ {
		_ = NodeMAC(mac, key, uint64(i)*64, ctr, uint64(i))
	}
}

func BenchmarkGeometryLeafOfData(b *testing.B) {
	g := NewGeometry(16<<30, true, 16<<30)
	for i := 0; i < b.N; i++ {
		g.LeafOfData(uint64(i) % g.DataBytes / 64 * 64)
	}
}

func TestGeometryPropertyRandomSizes(t *testing.T) {
	// Structural invariants over arbitrary data sizes: contiguous levels,
	// shrink by arity, top fits the root, and address maps invert.
	f := func(kb uint16, split bool) bool {
		dataBytes := (uint64(kb)%4096 + 1) * 64 * 16
		g := NewGeometry(dataBytes, split, dataBytes)
		if g.LevelNodes[g.Levels-1] > RootSlots {
			return false
		}
		for k := 1; k < g.Levels; k++ {
			if g.LevelNodes[k] != (g.LevelNodes[k-1]+counter.Arity-1)/counter.Arity {
				return false
			}
		}
		// Spot-check round trips at the extremes of each level.
		for k := 0; k < g.Levels; k++ {
			for _, idx := range []uint64{0, g.LevelNodes[k] - 1} {
				l2, i2, ok := g.NodeAt(g.NodeAddr(k, idx))
				if !ok || l2 != k || i2 != idx {
					return false
				}
				l3, i3, ok := g.NodeAtOffset(g.Offset(k, idx))
				if !ok || l3 != k || i3 != idx {
					return false
				}
			}
		}
		last := dataBytes - 64
		leaf, slot := g.LeafOfData(last)
		return g.DataAddr(leaf, slot) == last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
