// Package sit models the SGX-style integrity tree of §II-C: an arity-8
// tree of 64-byte counter nodes whose HMACs bind each node to the counter
// its parent holds for it, rooted in an on-chip non-volatile register.
//
// The package owns the static structure — geometry (level sizes, NVM
// placement, parent/child maps), the decoded node representation, the
// on-chip root, and the HMAC input format. The dynamic behaviour (caching,
// lazy updates, flush, recovery) lives in the memory controller and the
// per-scheme policies built on top of it.
package sit

import (
	"encoding/binary"
	"fmt"

	"steins/internal/counter"
	"steins/internal/crypt"
)

// LineSize is the node size in bytes.
const LineSize = 64

// RootSlots is the fan-in of the on-chip root. The root is an on-chip
// register file rather than a 64-byte NVM line, so it covers up to 64
// top-level nodes; this yields the paper's level counts (9 levels
// including root with general leaves over 16 GB, 8 with split leaves).
const RootSlots = 64

// Geometry describes the tree laid over a data region: how many levels, how
// many nodes per level, and where each node lives in NVM.
type Geometry struct {
	DataBytes  uint64
	SplitLeaf  bool
	LeafCover  uint64   // data lines covered per leaf: 8 general, 64 split
	DataLines  uint64   // number of 64 B data lines
	Levels     int      // number of NVM-resident levels (root excluded)
	LevelNodes []uint64 // nodes at each level, leaf = level 0
	LevelBase  []uint64 // NVM base address of each level
	MetaBase   uint64   // start of the metadata region
	MetaBytes  uint64   // total bytes of NVM-resident tree nodes
}

// NewGeometry computes the tree over dataBytes of user data, placing the
// node levels contiguously from metaBase. Levels shrink by the tree arity
// until at most RootSlots nodes remain; that level is the top and its
// parent is the on-chip root.
func NewGeometry(dataBytes uint64, splitLeaf bool, metaBase uint64) Geometry {
	if dataBytes == 0 || dataBytes%LineSize != 0 {
		panic("sit: data size must be a positive multiple of 64 B")
	}
	if metaBase%LineSize != 0 {
		panic("sit: metadata base must be 64 B aligned")
	}
	g := Geometry{DataBytes: dataBytes, SplitLeaf: splitLeaf, MetaBase: metaBase}
	g.LeafCover = counter.Arity
	if splitLeaf {
		g.LeafCover = counter.SplitArity
	}
	g.DataLines = dataBytes / LineSize
	n := ceilDiv(g.DataLines, g.LeafCover)
	for {
		g.LevelNodes = append(g.LevelNodes, n)
		if n <= RootSlots {
			break
		}
		n = ceilDiv(n, counter.Arity)
	}
	g.Levels = len(g.LevelNodes)
	g.LevelBase = make([]uint64, g.Levels)
	addr := metaBase
	for k := 0; k < g.Levels; k++ {
		g.LevelBase[k] = addr
		addr += g.LevelNodes[k] * LineSize
	}
	g.MetaBytes = addr - metaBase
	return g
}

func ceilDiv(a, b uint64) uint64 { return (a + b - 1) / b }

// LeafOfData maps a data line address to its covering leaf node index and
// the counter slot within that leaf.
func (g *Geometry) LeafOfData(addr uint64) (leaf uint64, slot int) {
	if addr >= g.DataBytes {
		panic(fmt.Sprintf("sit: data address %#x outside data region", addr))
	}
	line := addr / LineSize
	return line / g.LeafCover, int(line % g.LeafCover)
}

// DataAddr is the inverse of LeafOfData: the address of the slot-th data
// line covered by the given leaf.
func (g *Geometry) DataAddr(leaf uint64, slot int) uint64 {
	return (leaf*g.LeafCover + uint64(slot)) * LineSize
}

// NodeAddr returns the NVM address of node (level, index).
func (g *Geometry) NodeAddr(level int, index uint64) uint64 {
	if level < 0 || level >= g.Levels {
		panic(fmt.Sprintf("sit: level %d out of range", level))
	}
	if index >= g.LevelNodes[level] {
		panic(fmt.Sprintf("sit: node %d beyond level %d size %d", index, level, g.LevelNodes[level]))
	}
	return g.LevelBase[level] + index*LineSize
}

// NodeAt is the inverse of NodeAddr. ok is false for addresses outside the
// tree region.
func (g *Geometry) NodeAt(addr uint64) (level int, index uint64, ok bool) {
	if addr < g.MetaBase || addr >= g.MetaBase+g.MetaBytes || addr%LineSize != 0 {
		return 0, 0, false
	}
	for k := g.Levels - 1; k >= 0; k-- {
		if addr >= g.LevelBase[k] {
			return k, (addr - g.LevelBase[k]) / LineSize, true
		}
	}
	return 0, 0, false
}

// Offset returns the node's position within the metadata region in line
// units; Steins' 4-byte record entries store these (§III-C).
func (g *Geometry) Offset(level int, index uint64) uint32 {
	return uint32((g.NodeAddr(level, index) - g.MetaBase) / LineSize)
}

// NodeAtOffset resolves a record offset back to (level, index).
func (g *Geometry) NodeAtOffset(off uint32) (level int, index uint64, ok bool) {
	return g.NodeAt(g.MetaBase + uint64(off)*LineSize)
}

// Parent returns the coordinates of the parent node and the counter slot
// the child occupies there. IsTop nodes have no NVM parent (the root holds
// their counters); calling Parent on them panics.
func (g *Geometry) Parent(level int, index uint64) (plevel int, pindex uint64, slot int) {
	if g.IsTop(level) {
		panic("sit: top-level nodes have no NVM parent")
	}
	return level + 1, index / counter.Arity, int(index % counter.Arity)
}

// IsTop reports whether level is the highest NVM-resident level (its
// parent is the on-chip root).
func (g *Geometry) IsTop(level int) bool { return level == g.Levels-1 }

// TotalNodes returns the number of NVM-resident nodes.
func (g *Geometry) TotalNodes() uint64 {
	var t uint64
	for _, n := range g.LevelNodes {
		t += n
	}
	return t
}

// HeightIncludingRoot is the paper's "height" figure: NVM levels plus the
// on-chip root.
func (g *Geometry) HeightIncludingRoot() int { return g.Levels + 1 }

// --- Node ----------------------------------------------------------------

// Node is a decoded SIT node. Exactly one of the two bodies is active:
// split leaves in SC mode use Split, everything else uses Gen.
type Node struct {
	Level   int
	Index   uint64
	IsSplit bool
	Gen     counter.General
	Split   counter.Split
	// WritesSinceFlush counts counter increments since the node last
	// reached NVM; the controller's write-through guard (§II-D) keeps it
	// below the recovery search window. Not part of the 64 B encoding.
	WritesSinceFlush uint64
}

// DecodeNode unpacks a 64-byte line into a node at the given coordinates;
// split selects the split-leaf layout (only valid at level 0).
func DecodeNode(level int, index uint64, split bool, b counter.Block) *Node {
	n := &Node{Level: level, Index: index, IsSplit: split}
	if split {
		if level != 0 {
			panic("sit: split layout only valid at leaf level")
		}
		n.Split = counter.DecodeSplit(b)
	} else {
		n.Gen = counter.DecodeGeneral(b)
	}
	return n
}

// Encode packs the node into its 64-byte NVM form.
func (n *Node) Encode() counter.Block {
	if n.IsSplit {
		return n.Split.Encode()
	}
	return n.Gen.Encode()
}

// FValue is the node's generated parent counter under Steins: Eq. 1 for
// general nodes, Eq. 2 for split leaves. It also serves as the "sum of
// counters" scalar that LIncs accumulate (footnote 1 of §III-E).
func (n *Node) FValue() uint64 {
	if n.IsSplit {
		return n.Split.Parent()
	}
	return n.Gen.Sum()
}

// HMAC returns the node's stored HMAC field.
func (n *Node) HMAC() uint64 {
	if n.IsSplit {
		return n.Split.HMAC
	}
	return n.Gen.HMAC
}

// SetHMAC stores the HMAC field.
func (n *Node) SetHMAC(h uint64) {
	if n.IsSplit {
		n.Split.HMAC = h
	} else {
		n.Gen.HMAC = h
	}
}

// CounterBytes returns the 56-byte counter region (the HMAC message body).
func (n *Node) CounterBytes() [56]byte {
	if n.IsSplit {
		return n.Split.CounterBytes()
	}
	return n.Gen.CounterBytes()
}

// Counter returns counter slot i of a general node.
func (n *Node) Counter(i int) uint64 {
	if n.IsSplit {
		panic("sit: Counter on split leaf; use Split accessors")
	}
	return n.Gen.C[i]
}

// SetCounter stores counter slot i of a general node.
func (n *Node) SetCounter(i int, v uint64) {
	if n.IsSplit {
		panic("sit: SetCounter on split leaf")
	}
	n.Gen.C[i] = v & counter.CounterMask
}

// Clone returns a deep copy; recovery verification compares recovered
// nodes against untouched stale copies.
func (n *Node) Clone() *Node {
	c := *n
	return &c
}

// --- Root ------------------------------------------------------------------

// Root is the on-chip non-volatile root register file: one counter per
// top-level node. It is inside the trusted processor domain and survives
// crashes; the threat model treats it as invulnerable.
type Root struct {
	C [RootSlots]uint64
}

// Counter returns the root counter covering top-level node idx.
func (r *Root) Counter(idx uint64) uint64 {
	if idx >= RootSlots {
		panic("sit: root slot out of range")
	}
	return r.C[idx]
}

// SetCounter stores the root counter covering top-level node idx.
func (r *Root) SetCounter(idx uint64, v uint64) {
	if idx >= RootSlots {
		panic("sit: root slot out of range")
	}
	r.C[idx] = v
}

// --- MAC construction --------------------------------------------------------

// NodeMAC computes a node's HMAC: keyed MAC over the counter region, the
// node's NVM address, and the counter its parent holds for it (Fig. 3).
func NodeMAC(mac crypt.MAC, key crypt.Key, nodeAddr uint64, counters [56]byte, parentCounter uint64) uint64 {
	var msg [72]byte
	return NodeMACInto(&msg, mac, key, nodeAddr, counters, parentCounter)
}

// NodeMACInto is NodeMAC with a caller-provided message buffer. Passing a
// stack buffer into the MAC interface forces it to the heap (the escape
// analysis cannot see through the interface call), so per-request hot
// paths hand in a reusable scratch buffer instead.
func NodeMACInto(msg *[72]byte, mac crypt.MAC, key crypt.Key, nodeAddr uint64, counters [56]byte, parentCounter uint64) uint64 {
	copy(msg[:56], counters[:])
	binary.LittleEndian.PutUint64(msg[56:64], nodeAddr)
	binary.LittleEndian.PutUint64(msg[64:72], parentCounter)
	return mac.Sum64(key, msg[:])
}

// DataMAC computes the per-data-block HMAC binding ciphertext, address and
// encryption counter (§II-C); recovery searches counter candidates against
// it (Osiris-style) to restore stale leaf counters.
func DataMAC(mac crypt.MAC, key crypt.Key, dataAddr uint64, ciphertext *[64]byte, encCounter uint64) uint64 {
	var msg [80]byte
	return DataMACInto(&msg, mac, key, dataAddr, ciphertext, encCounter)
}

// DataMACInto is DataMAC with a caller-provided message buffer; see
// NodeMACInto for why.
func DataMACInto(msg *[80]byte, mac crypt.MAC, key crypt.Key, dataAddr uint64, ciphertext *[64]byte, encCounter uint64) uint64 {
	PutDataMACMsg(msg, dataAddr, ciphertext, encCounter)
	return mac.Sum64(key, msg[:])
}

// DataMACMsgSize is the byte length of a DataMAC message: 64-byte
// ciphertext, 8-byte address, 8-byte encryption counter.
const DataMACMsgSize = 80

// PutDataMACMsg packs the DataMAC message into msg. Deferred-MAC callers
// (the CME tag window) pack messages with it and batch the MAC later;
// keeping the layout here means the synchronous and batched paths cannot
// drift apart.
func PutDataMACMsg(msg *[DataMACMsgSize]byte, dataAddr uint64, ciphertext *[64]byte, encCounter uint64) {
	copy(msg[:64], ciphertext[:])
	binary.LittleEndian.PutUint64(msg[64:72], dataAddr)
	binary.LittleEndian.PutUint64(msg[72:80], encCounter)
}

// AppendDataMACMsg appends the 80-byte DataMAC message for
// (dataAddr, ciphertext, encCounter) to dst and returns the extended
// slice, for callers accumulating a packed batch.
func AppendDataMACMsg(dst []byte, dataAddr uint64, ciphertext *[64]byte, encCounter uint64) []byte {
	var msg [DataMACMsgSize]byte
	PutDataMACMsg(&msg, dataAddr, ciphertext, encCounter)
	return append(dst, msg[:]...)
}
