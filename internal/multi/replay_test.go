package multi_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/multi"
	"steins/internal/scheme/steins"
	"steins/internal/trace"
)

func replayPayload(addr uint64, i int) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	binary.LittleEndian.PutUint64(b[8:16], uint64(i))
	return b
}

// TestReplayMatchesSplitterDrive pins the contract between the two
// interleaving implementations: routing a stream through multi.System
// sequentially (Replay) and splitting the same stream with trace.Splitter
// then driving standalone controllers must be indistinguishable — same
// per-controller stats, same makespans, same device traffic. The sharded
// engine's determinism rests on this equivalence.
func TestReplayMatchesSplitterDrive(t *testing.T) {
	const (
		n          = 4
		interleave = uint64(4096)
	)
	prof := trace.Profile{
		Name:           "replay-x",
		FootprintBytes: 512 << 10,
		WriteFrac:      0.5,
		GapMean:        9,
		Pattern:        trace.Uniform,
	}
	tmpl := template() // 1 MB per controller, 8 KB cache

	// Reference: the multi-DIMM system replays the stream sequentially.
	sys := multi.New(n, tmpl, steins.Factory, interleave)
	ops, err := sys.Replay(trace.New(prof, 77, 6000), replayPayload)
	if err != nil {
		t.Fatal(err)
	}
	if ops != 6000 {
		t.Fatalf("replayed %d ops, want 6000", ops)
	}

	// Candidate: split the same stream, drive isolated controllers.
	ctrls := make([]*memctrl.Controller, n)
	for i := range ctrls {
		ctrls[i] = memctrl.New(tmpl, steins.Factory)
	}
	sp := trace.NewSplitter(trace.New(prof, 77, 6000), n, trace.InterleavePage)
	for {
		batches, cnt, serr := sp.NextEpoch(512)
		if serr != nil {
			t.Fatal(serr)
		}
		if cnt == 0 {
			break
		}
		for k, batch := range batches {
			for _, op := range batch {
				if op.IsWrite {
					err = ctrls[k].WriteData(op.Gap, op.Addr, replayPayload(op.GlobalAddr, int(op.Index)))
				} else {
					_, err = ctrls[k].ReadData(op.Gap, op.Addr)
				}
				if err != nil {
					t.Fatalf("controller %d op %d: %v", k, op.Index, err)
				}
			}
		}
	}

	for k, c := range ctrls {
		ref := sys.Controllers()[k]
		refStats, gotStats := ref.Stats(), c.Stats()
		if !reflect.DeepEqual(refStats, gotStats) {
			t.Fatalf("controller %d stats diverge:\nreplay  %+v\nsplit   %+v", k, refStats, gotStats)
		}
		if ref.ExecCycles() != c.ExecCycles() {
			t.Fatalf("controller %d exec cycles: replay %d, split %d", k, ref.ExecCycles(), c.ExecCycles())
		}
		refDev, gotDev := ref.Device().Stats(), c.Device().Stats()
		if !reflect.DeepEqual(refDev, gotDev) {
			t.Fatalf("controller %d device stats diverge", k)
		}
	}
}

// TestRecoverAllFoldsReports checks the shared recovery entry point: the
// aggregate is the exact fold of the per-controller reports (work summed,
// time the parallel maximum), and System.Recover agrees with it.
func TestRecoverAllFoldsReports(t *testing.T) {
	sys := multi.New(3, template(), steins.Factory, 4096)
	if _, err := sys.Replay(trace.New(trace.Profile{
		Name:           "recover-x",
		FootprintBytes: 256 << 10,
		WriteFrac:      0.7,
		GapMean:        5,
		Pattern:        trace.Uniform,
	}, 3, 3000), replayPayload); err != nil {
		t.Fatal(err)
	}
	sys.Crash()
	reports, agg, err := multi.RecoverAll(sys.Controllers())
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	var nodes, reads uint64
	var maxNS float64
	for k, rep := range reports {
		if rep.NVMReads == 0 || rep.TimeNS <= 0 {
			t.Fatalf("controller %d: implausible report %+v", k, rep)
		}
		nodes += rep.NodesRecovered
		reads += rep.NVMReads
		if rep.TimeNS > maxNS {
			maxNS = rep.TimeNS
		}
	}
	if agg.NodesRecovered != nodes || agg.NVMReads != reads || agg.TimeNS != maxNS {
		t.Fatalf("aggregate %+v is not the fold of per-controller reports", agg)
	}
}
