package multi_test

import (
	"errors"
	"strings"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/multi"
	"steins/internal/nvmem"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
)

// fill drives n interleaved writes (and a few reads) through the system.
func fill(t *testing.T, s *multi.System, n int, seed uint64) {
	t.Helper()
	r := rng.New(seed)
	lines := s.DataBytes() / 64
	for i := 0; i < n; i++ {
		addr := r.Uint64n(lines) * 64
		if err := s.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if _, err := s.ReadData(2, addr); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRecoverAllFailuresJoined(t *testing.T) {
	// WB cannot recover: every controller must fail, and the joined error
	// must name each of them instead of masking all but the first.
	s := multi.New(3, template(), wb.Factory, 4096)
	fill(t, s, 1500, 3)
	s.Crash()
	rep, err := s.Recover()
	if err == nil {
		t.Fatal("WB system recovered")
	}
	if !errors.Is(err, memctrl.ErrNoRecovery) {
		t.Fatalf("error chain lost ErrNoRecovery: %v", err)
	}
	for _, want := range []string{"multi: controller 0", "multi: controller 1", "multi: controller 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
	if rep.NodesRecovered != 0 {
		t.Fatalf("aggregate claims %d nodes recovered on total failure", rep.NodesRecovered)
	}
}

func TestRecoverPartialFailure(t *testing.T) {
	// Corrupt one DIMM's tree region after the crash: its recovery must
	// fail verification while the other DIMMs still recover, and the
	// aggregate must cover the survivors.
	s := multi.New(3, template(), steins.Factory, 4096)
	fill(t, s, 3000, 7)
	s.Crash()
	victim := s.Controllers()[1]
	geo := victim.Layout().Geo
	var garbage nvmem.Line
	for i := range garbage {
		garbage[i] = 0xA5
	}
	for off := uint64(0); off < geo.MetaBytes; off += 64 {
		victim.Device().Poke(geo.MetaBase+off, garbage)
	}
	rep, err := s.Recover()
	if err == nil {
		t.Fatal("recovery succeeded with a corrupted DIMM")
	}
	if !strings.Contains(err.Error(), "multi: controller 1") {
		t.Fatalf("error does not name the corrupted controller: %v", err)
	}
	for _, unwanted := range []string{"controller 0", "controller 2"} {
		if strings.Contains(err.Error(), unwanted) {
			t.Fatalf("healthy %s reported as failed: %v", unwanted, err)
		}
	}
	if rep.NodesRecovered == 0 || rep.Scheme == "" {
		t.Fatalf("aggregate dropped the surviving DIMMs: %+v", rep)
	}
}

func TestSystemStatsAggregation(t *testing.T) {
	s := multi.New(4, template(), steins.Factory, 64)
	fill(t, s, 4000, 9)
	agg := s.Stats()
	var wantW, wantR, wantLat uint64
	var maxExec uint64
	for _, c := range s.Controllers() {
		st := c.Stats()
		wantW += st.DataWrites
		wantR += st.DataReads
		wantLat += st.WriteLatSum
		maxExec = max(maxExec, c.MeasuredExecCycles())
	}
	if agg.DataWrites != wantW || agg.DataReads != wantR || agg.WriteLatSum != wantLat {
		t.Fatalf("merged stats %d/%d/%d, want %d/%d/%d",
			agg.DataWrites, agg.DataReads, agg.WriteLatSum, wantW, wantR, wantLat)
	}
	if agg.WriteHist.Count() != wantW {
		t.Fatalf("merged write histogram count %d, want %d", agg.WriteHist.Count(), wantW)
	}
	if got := s.MeasuredExecCycles(); got != maxExec {
		t.Fatalf("system makespan %d, want parallel max %d", got, maxExec)
	}
	// The merged phase totals still partition the summed per-DIMM makespan.
	var wantSpan uint64
	for _, c := range s.Controllers() {
		wantSpan += c.MeasuredExecCycles()
	}
	if got := agg.MakespanPhaseCycles(); got != wantSpan {
		t.Fatalf("merged phase buckets sum to %d, want %d", got, wantSpan)
	}
}

func TestSystemMetricsSnapshot(t *testing.T) {
	s := multi.New(2, template(), steins.Factory, 64)
	s.SetMetrics(metrics.Options{SampleEvery: 64, RingCap: 256})
	fill(t, s, 2000, 11)
	sys := s.MetricsSnapshot()
	if len(sys.PerDIMM) != 2 {
		t.Fatalf("per-DIMM snapshots = %d, want 2", len(sys.PerDIMM))
	}
	var ops, span, maxExec uint64
	for i := range sys.PerDIMM {
		d := &sys.PerDIMM[i]
		if want := "dimm-" + string(rune('0'+i)); d.Workload != want {
			t.Fatalf("DIMM %d labelled %q", i, d.Workload)
		}
		if len(d.Series) == 0 {
			t.Fatalf("DIMM %d exported no time series", i)
		}
		ops += d.Ops
		span += d.MakespanCycles()
		maxExec = max(maxExec, d.ExecCycles)
	}
	m := &sys.Merged
	if m.Workload != "system" || m.Ops != ops {
		t.Fatalf("merged identity/ops wrong: %q %d (want system/%d)", m.Workload, m.Ops, ops)
	}
	if m.ExecCycles != maxExec {
		t.Fatalf("merged exec %d, want parallel max %d", m.ExecCycles, maxExec)
	}
	if got := m.MakespanCycles(); got != span {
		t.Fatalf("merged phase cycles %d, want per-DIMM sum %d", got, span)
	}
	if len(m.Series) != 0 {
		t.Fatal("merged snapshot interleaved per-DIMM time series")
	}
}
