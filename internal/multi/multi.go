// Package multi models the §IV-F deployment: several memory controllers,
// each owning one secure DIMM with its own metadata cache, integrity tree
// and recovery scheme. Client requests to different DIMMs execute in
// parallel; requests to the same DIMM serialise in its controller. Data is
// interleaved across controllers at a configurable granularity, and after
// a machine-wide power failure every DIMM recovers independently — in
// parallel — so recovery time is the maximum, not the sum.
package multi

import (
	"errors"
	"fmt"
	"sync"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/trace"
)

// System is a set of independent secure memory controllers behind an
// interleaved physical address space.
type System struct {
	ctrls      []*memctrl.Controller
	interleave uint64 // bytes per chunk
	// lastArrival tracks, per controller, the global time of its last
	// request, so each controller sees correct local inter-arrival gaps.
	lastArrival []uint64
	now         uint64
}

// New builds a system of n controllers, each configured from the template
// (DataBytes is the per-controller capacity), with the address space
// interleaved across them in chunks of interleave bytes.
func New(n int, template memctrl.Config, factory memctrl.PolicyFactory, interleave uint64) *System {
	if n <= 0 {
		panic("multi: need at least one controller")
	}
	if interleave == 0 || interleave%nvmem.LineSize != 0 {
		panic("multi: interleave must be a positive multiple of the line size")
	}
	s := &System{interleave: interleave, lastArrival: make([]uint64, n)}
	for i := 0; i < n; i++ {
		s.ctrls = append(s.ctrls, memctrl.New(template, factory))
	}
	return s
}

// Controllers returns the per-DIMM controllers.
func (s *System) Controllers() []*memctrl.Controller { return s.ctrls }

// DataBytes returns the system's total protected capacity.
func (s *System) DataBytes() uint64 {
	return uint64(len(s.ctrls)) * s.ctrls[0].Config().DataBytes
}

// route maps a global address to (controller, local address).
func (s *System) route(addr uint64) (int, uint64) {
	if addr >= s.DataBytes() {
		panic(fmt.Sprintf("multi: address %#x beyond capacity", addr))
	}
	chunk := addr / s.interleave
	ctrl := int(chunk % uint64(len(s.ctrls)))
	local := (chunk/uint64(len(s.ctrls)))*s.interleave + addr%s.interleave
	return ctrl, local
}

// advance moves global time and returns the local gap for controller i.
func (s *System) advance(gap uint64, i int) uint64 {
	s.now += gap
	local := s.now - s.lastArrival[i]
	s.lastArrival[i] = s.now
	return local
}

// WriteData routes a write to its DIMM.
func (s *System) WriteData(gap uint64, addr uint64, data [64]byte) error {
	i, local := s.route(addr)
	return s.ctrls[i].WriteData(s.advance(gap, i), local, data)
}

// ReadData routes a read to its DIMM.
func (s *System) ReadData(gap uint64, addr uint64) ([64]byte, error) {
	i, local := s.route(addr)
	return s.ctrls[i].ReadData(s.advance(gap, i), local)
}

// ExecCycles is the system makespan: the slowest controller bounds it.
func (s *System) ExecCycles() uint64 {
	var m uint64
	for _, c := range s.ctrls {
		m = max(m, c.ExecCycles())
	}
	return m
}

// Crash fails the whole machine: every controller loses its volatile
// state.
func (s *System) Crash() {
	for _, c := range s.ctrls {
		c.Crash()
	}
}

// Recover rebuilds every DIMM's metadata concurrently, one goroutine per
// controller (each owns disjoint state, so this is safe), and returns the
// aggregated report: work summed, time the parallel maximum.
//
// Every controller is attempted even when some fail; the aggregate covers
// the controllers that recovered, and the error joins every per-controller
// failure (wrapped with its index) so none is masked.
func (s *System) Recover() (memctrl.RecoveryReport, error) {
	_, agg, err := RecoverAll(s.ctrls)
	return agg, err
}

// RecoverAll rebuilds every controller's metadata concurrently, one
// goroutine per controller (each owns disjoint state, so this is safe).
// It returns the per-controller reports alongside the aggregate: work
// summed, time the parallel maximum. Both the multi-DIMM system and the
// sharded single-trace engine recover through it.
//
// Every controller is attempted even when some fail; the aggregate covers
// the controllers that recovered, and the error joins every per-controller
// failure (wrapped with its index) so none is masked.
func RecoverAll(ctrls []*memctrl.Controller) ([]memctrl.RecoveryReport, memctrl.RecoveryReport, error) {
	reports := make([]memctrl.RecoveryReport, len(ctrls))
	errs := make([]error, len(ctrls))
	var wg sync.WaitGroup
	for i, c := range ctrls {
		wg.Add(1)
		go func(i int, c *memctrl.Controller) {
			defer wg.Done()
			reports[i], errs[i] = c.Recover()
		}(i, c)
	}
	wg.Wait()
	var agg memctrl.RecoveryReport
	for i := range reports {
		if errs[i] != nil {
			errs[i] = fmt.Errorf("multi: controller %d: %w", i, errs[i])
			continue
		}
		if agg.Scheme == "" {
			agg.Scheme = reports[i].Scheme
		}
		agg.NodesRecovered += reports[i].NodesRecovered
		agg.NVMReads += reports[i].NVMReads
		agg.NVMWrites += reports[i].NVMWrites
		agg.MACOps += reports[i].MACOps
		agg.TimeNS = max(agg.TimeNS, reports[i].TimeNS)
		agg.Degradation.Fold(&reports[i].Degradation)
	}
	return reports, agg, errors.Join(errs...)
}

// Replay routes a global operation stream through the system sequentially,
// op i writing payload(addr, i). It is the single-clock reference the
// sharded engine's splitter is checked against: splitting the same stream
// with trace.NewSplitter at the system's interleave must hand every
// controller the exact local (address, gap) sequence Replay produces.
// Returns the number of operations replayed.
func (s *System) Replay(st trace.Stream, payload func(addr uint64, i int) [64]byte) (int, error) {
	i := 0
	for {
		op, ok := st.Next()
		if !ok {
			return i, nil
		}
		var err error
		if op.IsWrite {
			err = s.WriteData(op.Gap, op.Addr, payload(op.Addr, i))
		} else {
			_, err = s.ReadData(op.Gap, op.Addr)
		}
		if err != nil {
			return i, fmt.Errorf("multi: %s op %d (%v %#x): %w", st.Name(), i, op.IsWrite, op.Addr, err)
		}
		i++
	}
}

// Stats returns the system-wide controller statistics: per-DIMM stats
// merged (counters summed, histograms and phase totals folded together).
func (s *System) Stats() memctrl.Stats {
	var agg memctrl.Stats
	for _, c := range s.ctrls {
		st := c.Stats()
		agg.Merge(&st)
	}
	return agg
}

// NVMStats returns the merged device statistics of all DIMMs.
func (s *System) NVMStats() nvmem.Stats {
	var agg nvmem.Stats
	for _, c := range s.ctrls {
		st := c.Device().Stats()
		agg.Merge(&st)
	}
	return agg
}

// MeasuredExecCycles is the measured system makespan (parallel maximum).
func (s *System) MeasuredExecCycles() uint64 {
	var m uint64
	for _, c := range s.ctrls {
		m = max(m, c.MeasuredExecCycles())
	}
	return m
}

// SetMetrics attaches one collector per controller; each DIMM samples its
// own occupancy trajectory.
func (s *System) SetMetrics(opt metrics.Options) {
	for _, c := range s.ctrls {
		c.SetMetrics(metrics.NewCollector(opt))
	}
}

// MetricsSnapshot exports the system view: histograms and phase totals
// merged across DIMMs, time series kept per DIMM (occupancy trajectories
// of different DIMMs cannot be meaningfully interleaved).
func (s *System) MetricsSnapshot() *metrics.SystemSnapshot {
	per := make([]metrics.Snapshot, len(s.ctrls))
	for i, c := range s.ctrls {
		per[i] = *c.MetricsSnapshot(fmt.Sprintf("dimm-%d", i))
	}
	return metrics.MergeSnapshots(per)
}
