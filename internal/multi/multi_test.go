package multi_test

import (
	"testing"

	"steins/internal/memctrl"
	"steins/internal/multi"
	"steins/internal/rng"
	"steins/internal/scheme/steins"
)

func template() memctrl.Config {
	cfg := memctrl.DefaultConfig(1<<20, false)
	cfg.MetaCacheBytes = 8 << 10
	return cfg
}

func pattern(addr uint64, v byte) [64]byte {
	var b [64]byte
	b[0], b[1], b[2] = v, byte(addr>>6), byte(addr>>14)
	return b
}

func TestRoutingRoundTrip(t *testing.T) {
	s := multi.New(3, template(), steins.Factory, 4096)
	r := rng.New(5)
	expect := map[uint64][64]byte{}
	lines := s.DataBytes() / 64
	for i := 0; i < 5000; i++ {
		addr := r.Uint64n(lines) * 64
		v := pattern(addr, byte(i))
		if err := s.WriteData(5, addr, v); err != nil {
			t.Fatal(err)
		}
		expect[addr] = v
	}
	for addr, want := range expect {
		got, err := s.ReadData(1, addr)
		if err != nil {
			t.Fatalf("read %#x: %v", addr, err)
		}
		if got != want {
			t.Fatalf("read %#x: wrong data", addr)
		}
	}
}

func TestInterleavingSpreadsLoad(t *testing.T) {
	s := multi.New(4, template(), steins.Factory, 64)
	for i := uint64(0); i < 4000; i++ {
		if err := s.WriteData(5, i*64, pattern(i*64, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range s.Controllers() {
		w := c.Stats().DataWrites
		if w < 900 || w > 1100 {
			t.Fatalf("controller %d handled %d/4000 writes; interleaving skewed", i, w)
		}
	}
}

func TestParallelismImprovesMakespan(t *testing.T) {
	// The §IV-F claim: requests to different DIMMs execute in parallel, so
	// a multi-controller system finishes a memory-bound stream faster than
	// one controller handling everything.
	run := func(n int) uint64 {
		s := multi.New(n, template(), steins.Factory, 64)
		r := rng.New(9)
		lines := uint64(1<<20) / 64 * uint64(n) // scale footprint with n
		for i := 0; i < 8000; i++ {
			addr := r.Uint64n(lines) * 64
			if err := s.WriteData(3, addr, pattern(addr, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		return s.ExecCycles()
	}
	one, four := run(1), run(4)
	if four >= one {
		t.Fatalf("4 controllers (%d cycles) not faster than 1 (%d)", four, one)
	}
}

func TestMachineWideCrashRecover(t *testing.T) {
	s := multi.New(4, template(), steins.Factory, 4096)
	r := rng.New(11)
	expect := map[uint64][64]byte{}
	lines := s.DataBytes() / 64
	for i := 0; i < 6000; i++ {
		addr := r.Uint64n(lines) * 64
		v := pattern(addr, byte(i))
		if err := s.WriteData(5, addr, v); err != nil {
			t.Fatal(err)
		}
		expect[addr] = v
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.NodesRecovered == 0 {
		t.Fatal("nothing recovered across the machine")
	}
	for addr, want := range expect {
		got, err := s.ReadData(1, addr)
		if err != nil || got != want {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
	}
}

func TestParallelRecoveryTimeIsMax(t *testing.T) {
	s := multi.New(4, template(), steins.Factory, 4096)
	r := rng.New(13)
	lines := s.DataBytes() / 64
	for i := 0; i < 6000; i++ {
		addr := r.Uint64n(lines) * 64
		if err := s.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	s.Crash()
	rep, err := s.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Reads summed across 4 DIMMs; time is the slowest DIMM, so it must be
	// well below the serial read cost.
	serialNS := float64(rep.NVMReads) * 100
	if rep.TimeNS >= serialNS {
		t.Fatalf("parallel recovery %.0f ns not below serial bound %.0f ns", rep.TimeNS, serialNS)
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, f := range []func(){
		func() { multi.New(0, template(), steins.Factory, 64) },
		func() { multi.New(2, template(), steins.Factory, 0) },
		func() { multi.New(2, template(), steins.Factory, 100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad multi config did not panic")
				}
			}()
			f()
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := multi.New(2, template(), steins.Factory, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range address did not panic")
		}
	}()
	s.WriteData(1, s.DataBytes(), [64]byte{})
}
