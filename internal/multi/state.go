// Snapshot support: the system's routing clock plus every controller's
// image, captured at a retired-op boundary.

package multi

import (
	"fmt"

	"steins/internal/memctrl"
)

// SystemState is the serializable image of a System. The interleave
// granularity and controller count are construction parameters; the
// restoring side rebuilds the system via New from the same configuration.
type SystemState struct {
	Now         uint64
	LastArrival []uint64
	Ctrls       []*memctrl.ControllerState
}

// State captures the system at a retired-op boundary.
func (s *System) State() (*SystemState, error) {
	st := &SystemState{
		Now:         s.now,
		LastArrival: append([]uint64(nil), s.lastArrival...),
	}
	for i, c := range s.ctrls {
		cs, err := c.State()
		if err != nil {
			return nil, fmt.Errorf("multi: controller %d: %w", i, err)
		}
		st.Ctrls = append(st.Ctrls, cs)
	}
	return st, nil
}

// Restore rebuilds the system from a captured state. The system must have
// been built by New with the same controller count, template and factory.
func (s *System) Restore(st *SystemState) error {
	if len(st.Ctrls) != len(s.ctrls) || len(st.LastArrival) != len(s.lastArrival) {
		return fmt.Errorf("multi: state has %d controllers, system has %d", len(st.Ctrls), len(s.ctrls))
	}
	s.now = st.Now
	copy(s.lastArrival, st.LastArrival)
	for i, c := range s.ctrls {
		if err := c.Restore(st.Ctrls[i]); err != nil {
			return fmt.Errorf("multi: controller %d: %w", i, err)
		}
	}
	return nil
}
