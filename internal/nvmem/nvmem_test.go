package nvmem

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"
	"testing/quick"

	"steins/internal/rng"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.CapacityBytes = 1 << 20
	return c
}

func TestReadUnwrittenIsZero(t *testing.T) {
	d := New(smallConfig())
	line, lat, err := d.Read(0, 128, ClassData)
	if err != nil {
		t.Fatal(err)
	}
	if line != (Line{}) {
		t.Fatal("unwritten line not zero")
	}
	if want := d.Config().ReadCycles(); lat != want {
		t.Fatalf("read latency %d, want %d", lat, want)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(smallConfig())
	var l Line
	for i := range l {
		l[i] = byte(i)
	}
	if _, err := d.Write(0, 64, l, ClassData); err != nil {
		t.Fatal(err)
	}
	got, _, _ := d.Read(10, 64, ClassData)
	if got != l {
		t.Fatal("read did not return written contents")
	}
}

func TestWriteDurableImmediately(t *testing.T) {
	// ADR semantics: a write accepted into the queue survives a crash, so
	// Peek must observe it with no time advance.
	d := New(smallConfig())
	l := Line{1}
	d.Write(0, 0, l, ClassMeta)
	if d.Peek(0) != l {
		t.Fatal("write not durable on return")
	}
}

func TestTimingDerivation(t *testing.T) {
	c := DefaultConfig()
	if got := c.ReadCycles(); got != 126 { // (48+15) ns * 2 GHz
		t.Fatalf("ReadCycles = %d, want 126", got)
	}
	if got := c.WriteServiceCycles(); got != 626 { // (13+300) ns * 2 GHz
		t.Fatalf("WriteServiceCycles = %d, want 626", got)
	}
}

func TestWriteQueueNoStallWhenSlack(t *testing.T) {
	d := New(smallConfig())
	for i := 0; i < d.Config().WriteQueueEntries; i++ {
		if stall, _ := d.Write(0, uint64(i)*64, Line{byte(i + 1)}, ClassData); stall != 0 {
			t.Fatalf("write %d stalled %d cycles with queue not yet full", i, stall)
		}
	}
}

func TestWriteQueueStallsWhenFull(t *testing.T) {
	d := New(smallConfig())
	n := d.Config().WriteQueueEntries
	for i := 0; i < n; i++ {
		d.Write(0, uint64(i)*64, Line{1}, ClassData)
	}
	stall, _ := d.Write(0, uint64(n)*64, Line{1}, ClassData)
	if stall == 0 {
		t.Fatal("write into full queue did not stall")
	}
	// The first queued write completes after one service time.
	if want := d.Config().WriteServiceCycles(); stall != want {
		t.Fatalf("stall = %d, want %d (head completion)", stall, want)
	}
	if d.Stats().StallCycles != stall {
		t.Fatalf("StallCycles = %d, want %d", d.Stats().StallCycles, stall)
	}
}

func TestWriteQueueDrainsOverTime(t *testing.T) {
	d := New(smallConfig())
	n := d.Config().WriteQueueEntries
	for i := 0; i < n; i++ {
		d.Write(0, uint64(i)*64, Line{1}, ClassData)
	}
	if got := d.QueueDepth(0); got != n {
		t.Fatalf("depth at t=0: %d, want %d", got, n)
	}
	far := uint64(n) * d.Config().WriteServiceCycles()
	if got := d.QueueDepth(far); got != 0 {
		t.Fatalf("depth after full drain window: %d, want 0", got)
	}
	// A write after the drain must not stall.
	if stall, _ := d.Write(far, 0, Line{2}, ClassData); stall != 0 {
		t.Fatalf("post-drain write stalled %d cycles", stall)
	}
}

func TestQueueDepthPartialDrain(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteBanks = 1 // serial drain for exact FIFO timing
	d := New(cfg)
	svc := d.Config().WriteServiceCycles()
	for i := 0; i < 4; i++ {
		d.Write(0, uint64(i)*64, Line{1}, ClassData)
	}
	if got := d.QueueDepth(svc*2 + 1); got != 2 {
		t.Fatalf("depth after 2 service times: %d, want 2", got)
	}
}

func TestBankParallelDrain(t *testing.T) {
	d := New(smallConfig()) // 4 banks
	svc := d.Config().WriteServiceCycles()
	for i := 0; i < 8; i++ {
		d.Write(0, uint64(i)*64, Line{1}, ClassData)
	}
	// One service window drains one write per bank.
	if got := d.QueueDepth(svc + 1); got != 4 {
		t.Fatalf("depth after 1 service time: %d, want 4 (4 banks)", got)
	}
	if got := d.QueueDepth(2*svc + 1); got != 0 {
		t.Fatalf("depth after 2 service times: %d, want 0", got)
	}
}

func TestBadBanksPanics(t *testing.T) {
	cfg := smallConfig()
	cfg.WriteBanks = 0
	defer func() {
		if recover() == nil {
			t.Fatal("zero banks did not panic")
		}
	}()
	New(cfg)
}

func TestClassAccounting(t *testing.T) {
	d := New(smallConfig())
	d.Write(0, 0, Line{1}, ClassData)
	d.Write(0, 64, Line{1}, ClassMeta)
	d.Write(0, 128, Line{1}, ClassShadow)
	d.Read(0, 0, ClassData)
	d.Read(0, 64, ClassMeta)
	s := d.Stats()
	if s.Writes[ClassData] != 1 || s.Writes[ClassMeta] != 1 || s.Writes[ClassShadow] != 1 {
		t.Fatalf("per-class writes wrong: %+v", s.Writes)
	}
	if s.Reads[ClassData] != 1 || s.Reads[ClassMeta] != 1 {
		t.Fatalf("per-class reads wrong: %+v", s.Reads)
	}
	if s.TotalWrites() != 3 || s.TotalReads() != 2 {
		t.Fatalf("totals wrong: %d writes, %d reads", s.TotalWrites(), s.TotalReads())
	}
	if s.WriteBytes() != 3*LineSize {
		t.Fatalf("WriteBytes = %d", s.WriteBytes())
	}
}

func TestEnergyModel(t *testing.T) {
	d := New(smallConfig())
	d.Write(0, 0, Line{1}, ClassData)
	d.Read(0, 0, ClassData)
	e := d.Config().Energy
	if got, want := d.EnergyPJ(), e.ReadPJ+e.WritePJ; got != want {
		t.Fatalf("EnergyPJ = %v, want %v", got, want)
	}
}

func TestPokeBypassesStats(t *testing.T) {
	d := New(smallConfig())
	d.Poke(0, Line{9})
	if d.Stats().TotalWrites() != 0 {
		t.Fatal("Poke counted as a write")
	}
	if d.Peek(0) != (Line{9}) {
		t.Fatal("Poke contents not visible")
	}
}

func TestZeroLineStaysSparse(t *testing.T) {
	d := New(smallConfig())
	d.Write(0, 0, Line{5}, ClassData)
	if d.PopulatedLines() != 1 {
		t.Fatalf("populated = %d, want 1", d.PopulatedLines())
	}
	d.Write(0, 0, Line{}, ClassData)
	if d.PopulatedLines() != 0 {
		t.Fatalf("populated after zero write = %d, want 0", d.PopulatedLines())
	}
	if d.Peek(0) != (Line{}) {
		t.Fatal("zeroed line reads non-zero")
	}
}

func TestUnalignedAccessError(t *testing.T) {
	d := New(smallConfig())
	if _, _, err := d.Read(0, 3, ClassData); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned read error = %v, want ErrUnaligned", err)
	}
	if _, err := d.Write(0, 7, Line{}, ClassData); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned write error = %v, want ErrUnaligned", err)
	}
}

func TestOutOfRangeAccessError(t *testing.T) {
	// Regression: an address beyond CapacityBytes must come back as a
	// wrapped ErrOutOfRange, not a panic or a silent success.
	d := New(smallConfig())
	capb := d.Config().CapacityBytes
	if _, err := d.Write(0, capb, Line{}, ClassData); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range write error = %v, want ErrOutOfRange", err)
	}
	if _, _, err := d.Read(0, capb+64, ClassData); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out-of-range read error = %v, want ErrOutOfRange", err)
	}
	// The failed accesses must not have been counted or stored.
	if d.Stats().TotalWrites() != 0 || d.Stats().TotalReads() != 0 {
		t.Fatalf("rejected accesses were counted: %+v", d.Stats())
	}
	if d.PopulatedLines() != 0 {
		t.Fatal("rejected write stored a line")
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.CapacityBytes = 0 },
		func(c *Config) { c.CapacityBytes = 100 }, // not line-multiple
		func(c *Config) { c.WriteQueueEntries = 0 },
	} {
		c := smallConfig()
		mut(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestWriteReadPropertyRoundTrip(t *testing.T) {
	d := New(smallConfig())
	cap64 := d.Config().CapacityBytes / LineSize
	f := func(slot uint64, val Line) bool {
		addr := (slot % cap64) * LineSize
		if _, err := d.Write(0, addr, val, ClassData); err != nil {
			return false
		}
		got, _, err := d.Read(0, addr, ClassData)
		return err == nil && got == val && d.Peek(addr) == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClassString(t *testing.T) {
	if ClassData.String() != "data" || ClassBitmap.String() != "bitmap" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() == "" {
		t.Fatal("out-of-range class produced empty string")
	}
}

func BenchmarkWrite(b *testing.B) {
	d := New(DefaultConfig())
	now := uint64(0)
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) % (1 << 20)) * LineSize
		now += 1000 // arrive slower than service to avoid stall dominance
		d.Write(now, addr, Line{byte(i)}, ClassData)
	}
}

func BenchmarkRead(b *testing.B) {
	d := New(DefaultConfig())
	for i := 0; i < 1024; i++ {
		d.Poke(uint64(i)*LineSize, Line{byte(i)})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(uint64(i), (uint64(i)%1024)*LineSize, ClassData)
	}
}

func TestWearTracking(t *testing.T) {
	d := New(smallConfig())
	for i := 0; i < 10; i++ {
		d.Write(uint64(i)*1000, 0, Line{byte(i + 1)}, ClassData)
	}
	d.Write(0, 64, Line{1}, ClassMeta)
	w := d.WearStats()
	if w.LinesWritten != 2 || w.TotalWrites != 11 {
		t.Fatalf("wear = %+v", w)
	}
	if w.MaxPerLine != 10 || w.HotAddr != 0 {
		t.Fatalf("hottest = %+v", w)
	}
	if d.WearOf(64) != 1 {
		t.Fatalf("WearOf(64) = %d", d.WearOf(64))
	}
	// Poke (attack injection) does not consume endurance.
	d.Poke(128, Line{9})
	if d.WearOf(128) != 0 {
		t.Fatal("Poke consumed endurance")
	}
}

// TestWearStatsHotAddrDeterministic pins the tie-breaking rule the
// map-backed implementation left to iteration order: among lines sharing
// the maximum write count, HotAddr is the lowest address, regardless of
// the order the writes arrived in.
func TestWearStatsHotAddrDeterministic(t *testing.T) {
	d := New(smallConfig())
	// Touch the higher address first so insertion order disagrees with
	// address order.
	for i := 0; i < 3; i++ {
		d.Write(uint64(i*10), 256, Line{1}, ClassData)
	}
	for i := 0; i < 3; i++ {
		d.Write(uint64(100+i*10), 64, Line{2}, ClassData)
	}
	w := d.WearStats()
	if w.MaxPerLine != 3 || w.HotAddr != 64 {
		t.Fatalf("hottest = %+v, want MaxPerLine 3 at HotAddr 64 (lowest tied address)", w)
	}
	if got := d.WearStats(); got != w {
		t.Fatalf("WearStats not stable across calls: %+v then %+v", w, got)
	}
}

// TestStateDoubleRenderByteIdentical renders the device state twice and
// demands byte-identical gob encodings: every emitter must walk its
// backing store in a deterministic (ascending-address) order.
func TestStateDoubleRenderByteIdentical(t *testing.T) {
	d := New(smallConfig())
	// Populate lines and wear at scattered, non-monotonic addresses.
	for _, addr := range []uint64{4096, 64, 1 << 19, 128, 0, 640} {
		if _, err := d.Write(0, addr, Line{byte(addr)}, ClassData); err != nil {
			t.Fatal(err)
		}
	}
	// Sticky stuck-at overlays, again out of address order.
	d.frng = rng.New(7)
	d.addStuckBit(4096)
	d.addStuckBit(64)
	encode := func(st State) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(d.State()), encode(d.State())
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same device state differ byte-wise")
	}
}
