// Media-fault model: seeded transient read flips, sticky stuck-at cells,
// torn line writes at a crash boundary, and a modeled SECDED-style ECC
// layer that silently corrects single-bit words, flags multi-bit words as
// detected-uncorrectable, and charges a correction latency penalty.
//
// All randomness comes from one device-private xoshiro256** stream seeded
// by FaultConfig.Seed, so the same access sequence reproduces the same
// faults bit for bit. With the zero FaultConfig the model is off and every
// path short-circuits to the fault-free behaviour.

package nvmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"steins/internal/rng"
)

// Address and media errors returned by Read/Write.
var (
	// ErrUnaligned marks an access not aligned to the line size.
	ErrUnaligned = errors.New("nvmem: unaligned address")
	// ErrOutOfRange marks an access beyond CapacityBytes.
	ErrOutOfRange = errors.New("nvmem: address beyond capacity")
	// ErrUncorrectable marks a detected-uncorrectable ECC event: the line
	// had two or more flipped bits in one code word, so the ECC layer can
	// flag but not repair it.
	ErrUncorrectable = errors.New("nvmem: uncorrectable ECC error")
)

// FaultError is the structured detected-uncorrectable media error; it
// matches ErrUncorrectable via errors.Is.
type FaultError struct {
	Addr  uint64
	Class Class
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("nvmem: uncorrectable ECC error at %#x (%s)", e.Addr, e.Class)
}

// Unwrap lets errors.Is(err, ErrUncorrectable) classify the failure.
func (e *FaultError) Unwrap() error { return ErrUncorrectable }

// FaultConfig parameterises the media-fault model. The zero value disables
// it entirely.
type FaultConfig struct {
	// Seed drives the device-private fault stream.
	Seed uint64
	// TransientPerRead is the probability a timed Read suffers a transient
	// bit flip (redrawn per attempt, so retries help).
	TransientPerRead float64
	// DoubleBitFrac is the fraction of transient events that flip a second
	// bit in the same 64-bit code word, producing a detected-uncorrectable
	// error instead of a silently corrected one.
	DoubleBitFrac float64
	// StuckPerWrite is the probability a timed Write creates a new sticky
	// stuck-at cell (a random bit of the line freezes at a random value).
	StuckPerWrite float64
	// TornOnCrash is the probability CrashTear tears the in-flight line
	// write at a power failure (new first half, old second half).
	TornOnCrash float64
}

// Enabled reports whether any fault class can fire.
func (f FaultConfig) Enabled() bool {
	return f.TransientPerRead > 0 || f.StuckPerWrite > 0 || f.TornOnCrash > 0
}

// ECCConfig models the per-word SECDED code protecting every line.
type ECCConfig struct {
	// Disable turns correction and detection off: raw (possibly corrupted)
	// contents return silently and only the cryptographic integrity layer
	// can catch them.
	Disable bool
	// CorrectCycles is the extra read latency charged when the ECC logic
	// repairs a line.
	CorrectCycles uint64
}

// DefaultECC returns the default SECDED model.
func DefaultECC() ECCConfig { return ECCConfig{CorrectCycles: 4} }

// FaultCounters breaks down media-fault activity.
type FaultCounters struct {
	TransientFlips uint64 // transient bits flipped on timed reads
	StuckBits      uint64 // sticky stuck-at cells created
	TornWrites     uint64 // line writes torn at a crash boundary
	Corrected      uint64 // words silently repaired by ECC
	Uncorrectable  uint64 // detected-uncorrectable reads flagged
}

// Merge folds another device's fault counters into c.
func (c *FaultCounters) Merge(o *FaultCounters) {
	c.TransientFlips += o.TransientFlips
	c.StuckBits += o.StuckBits
	c.TornWrites += o.TornWrites
	c.Corrected += o.Corrected
	c.Uncorrectable += o.Uncorrectable
}

// ParseFaultSpec parses the CLI fault syntax, a comma-separated key=value
// list: "transient=1e-4,double=0.25,stuck=1e-6,torn=0.5,seed=7". The empty
// string and "off" yield the disabled zero value.
func ParseFaultSpec(spec string) (FaultConfig, error) {
	var f FaultConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return f, nil
	}
	for _, field := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return f, fmt.Errorf("nvmem: fault spec field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			f.Seed, err = strconv.ParseUint(v, 10, 64)
		case "transient":
			f.TransientPerRead, err = strconv.ParseFloat(v, 64)
		case "double":
			f.DoubleBitFrac, err = strconv.ParseFloat(v, 64)
		case "stuck":
			f.StuckPerWrite, err = strconv.ParseFloat(v, 64)
		case "torn":
			f.TornOnCrash, err = strconv.ParseFloat(v, 64)
		default:
			return f, fmt.Errorf("nvmem: unknown fault spec key %q (want seed, transient, double, stuck, torn)", k)
		}
		if err != nil {
			return f, fmt.Errorf("nvmem: fault spec %s=%q: %w", k, v, err)
		}
	}
	return f, nil
}

// stuckLine is the sticky-cell overlay of one line: where mask has a bit
// set, the cell reads as the corresponding bit of val regardless of what
// was stored.
type stuckLine struct {
	mask Line
	val  Line
}

// lastWrite remembers the most recent timed line write, the candidate for
// tearing at the next crash boundary.
type lastWrite struct {
	valid bool
	addr  uint64
	prev  Line
	next  Line
}

// corrupt applies the persistent stuck-cell overlay and, for timed reads,
// draws transient flips. The caller guarantees d.frng != nil.
func (d *Device) corrupt(addr uint64, intended Line, timed bool) Line {
	raw := intended
	if s := d.stuck.Probe(addr / LineSize); s != nil && s.mask != (Line{}) {
		for i := range raw {
			raw[i] = raw[i]&^s.mask[i] | s.val[i]&s.mask[i]
		}
	}
	if timed && d.frng.Bool(d.cfg.Faults.TransientPerRead) {
		bit := d.frng.Intn(LineSize * 8)
		raw[bit/8] ^= 1 << (bit % 8)
		d.stats.Faults.TransientFlips++
		if d.frng.Float64() < d.cfg.Faults.DoubleBitFrac {
			// Second flip lands in the same 64-bit code word: detected but
			// uncorrectable by the SECDED model.
			word := bit / 64
			off := (bit%64 + 1 + d.frng.Intn(63)) % 64
			j := word*64 + off
			raw[j/8] ^= 1 << (j % 8)
			d.stats.Faults.TransientFlips++
		}
	}
	return raw
}

// decode models per-word SECDED: each 8-byte word corrects one flipped bit
// and detects (but cannot repair) two or more. It returns the delivered
// contents, the extra correction latency, and the detected-uncorrectable
// error if any word is beyond repair. count selects whether the event is
// charged to the statistics (timed reads yes, Peek no).
func (d *Device) decode(addr uint64, cls Class, intended, raw Line, count bool) (Line, uint64, error) {
	if raw == intended {
		return intended, 0, nil
	}
	if d.cfg.ECC.Disable {
		return raw, 0, nil
	}
	var corrected uint64
	for w := 0; w < LineSize/8; w++ {
		a := binary.LittleEndian.Uint64(intended[w*8:])
		b := binary.LittleEndian.Uint64(raw[w*8:])
		switch n := bits.OnesCount64(a ^ b); {
		case n == 0:
		case n == 1:
			corrected++
		default:
			if count {
				d.stats.Faults.Uncorrectable++
			}
			d.noteECC(addr, corrected, 1)
			return raw, 0, &FaultError{Addr: addr, Class: cls}
		}
	}
	if count {
		d.stats.Faults.Corrected += corrected
	}
	d.noteECC(addr, corrected, 0)
	return intended, d.cfg.ECC.CorrectCycles, nil
}

// addStuckBit freezes one random cell of addr at a random value.
func (d *Device) addStuckBit(addr uint64) {
	s := d.stuck.Ptr(addr / LineSize)
	if s.mask == (Line{}) {
		d.stuckN++
	}
	bit := d.frng.Intn(LineSize * 8)
	s.mask[bit/8] |= 1 << (bit % 8)
	if d.frng.Bool(0.5) {
		s.val[bit/8] |= 1 << (bit % 8)
	} else {
		s.val[bit/8] &^= 1 << (bit % 8)
	}
	d.stats.Faults.StuckBits++
}

// CrashTear models the line write in flight at a power failure: with
// probability TornOnCrash the most recent timed write is torn — its first
// 32 bytes land, its last 32 bytes keep the pre-write contents. The
// controller calls it once per crash; it reports the torn address so
// harnesses can track the injection.
func (d *Device) CrashTear() (uint64, bool) {
	if d.frng == nil || !d.last.valid {
		return 0, false
	}
	lw := d.last
	d.last.valid = false
	if !d.frng.Bool(d.cfg.Faults.TornOnCrash) {
		return 0, false
	}
	var torn Line
	copy(torn[:LineSize/2], lw.next[:LineSize/2])
	copy(torn[LineSize/2:], lw.prev[LineSize/2:])
	d.store(lw.addr, torn)
	// Record the tear after the store: store clears the torn flag on
	// rewrite, and this write IS the tear.
	d.noteTorn(lw.addr)
	d.stats.Faults.TornWrites++
	return lw.addr, true
}

// StuckLines reports how many lines carry at least one stuck-at cell.
func (d *Device) StuckLines() int { return d.stuckN }

// faultRNG builds the per-device fault stream, or nil when the model is
// off.
func faultRNG(cfg Config) *rng.Source {
	if !cfg.Faults.Enabled() {
		return nil
	}
	return rng.New(cfg.Faults.Seed)
}
