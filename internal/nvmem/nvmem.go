// Package nvmem models a byte-addressable non-volatile main memory device
// at the granularity the memory controller sees: 64-byte lines, PCM read
// latency, a bounded write queue with tWR-scale service time, and per-class
// access/energy accounting.
//
// Timing follows the NVMain configuration of Table I
// (tRCD/tCL/tCWD/tFAW/tWTR/tWR = 48/15/13/50/7.5/300 ns at a 2 GHz
// controller clock). The write-pending queue sits inside the ADR
// persistence domain, so a write is durable the moment it is accepted:
// crashes lose nothing that reached the device, only state still inside
// the (non-ADR parts of the) memory controller.
package nvmem

import (
	"fmt"

	"steins/internal/arena"
	"steins/internal/rng"
)

// LineSize is the access granularity in bytes, matching the cache line.
const LineSize = 64

// Line is one 64-byte memory line.
type Line [LineSize]byte

// Class tags an access with the kind of state it touches so write traffic
// can be broken down the way the paper's figures discuss it.
type Class int

// Access classes.
const (
	ClassData   Class = iota // user data blocks
	ClassHMAC                // per-data-block HMACs
	ClassMeta                // SIT nodes / counter blocks
	ClassShadow              // ASIT shadow-table blocks
	ClassRecord              // Steins offset record lines
	ClassBitmap              // STAR dirty-tracking bitmap lines
	ClassOther
	numClasses
)

var classNames = [...]string{"data", "hmac", "meta", "shadow", "record", "bitmap", "other"}

// String returns the class name used in stats output.
func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Timing holds the PCM latency model in nanoseconds.
type Timing struct {
	TRCDNS float64 // row activate
	TCLNS  float64 // CAS (read) latency
	TCWDNS float64 // CAS write delay
	TFAWNS float64 // four-activation window
	TWTRNS float64 // write-to-read turnaround
	TWRNS  float64 // write recovery (the dominant PCM write cost)
}

// DefaultTiming is the Table I PCM latency model.
func DefaultTiming() Timing {
	return Timing{TRCDNS: 48, TCLNS: 15, TCWDNS: 13, TFAWNS: 50, TWTRNS: 7.5, TWRNS: 300}
}

// EnergyModel gives per-line access energy in picojoules. Defaults follow
// common PCM estimates (reads cheap, writes an order of magnitude dearer),
// which is all the energy figures need: they are reported normalised.
type EnergyModel struct {
	ReadPJ  float64 // energy per 64 B line read
	WritePJ float64 // energy per 64 B line write
}

// DefaultEnergy returns the default PCM energy model.
func DefaultEnergy() EnergyModel { return EnergyModel{ReadPJ: 1200, WritePJ: 16000} }

// Config configures a Device.
type Config struct {
	CapacityBytes     uint64
	ClockGHz          float64
	Timing            Timing
	Energy            EnergyModel
	WriteQueueEntries int
	// WriteBanks is the number of banks draining queued writes in
	// parallel; PCM write recovery (tWR) is per bank, so effective write
	// bandwidth is WriteBanks per tWR window.
	WriteBanks int
	// Faults enables the seeded media-fault model (fault.go); the zero
	// value keeps the device perfectly reliable.
	Faults FaultConfig
	// ECC models the SECDED layer repairing single-bit events.
	ECC ECCConfig
}

// DefaultConfig returns the Table I device: 16 GB PCM behind a 64-entry
// write queue at a 2 GHz controller clock.
func DefaultConfig() Config {
	return Config{
		CapacityBytes:     16 << 30,
		ClockGHz:          2,
		Timing:            DefaultTiming(),
		Energy:            DefaultEnergy(),
		WriteQueueEntries: 64,
		WriteBanks:        4,
		ECC:               DefaultECC(),
	}
}

// ReadCycles is the controller-clock latency of a line read
// (row activate + CAS).
func (c Config) ReadCycles() uint64 {
	return uint64((c.Timing.TRCDNS + c.Timing.TCLNS) * c.ClockGHz)
}

// WriteServiceCycles is the service time one queued write occupies the
// device (CAS write delay + write recovery).
func (c Config) WriteServiceCycles() uint64 {
	return uint64((c.Timing.TCWDNS + c.Timing.TWRNS) * c.ClockGHz)
}

// Stats aggregates device activity.
type Stats struct {
	Reads       [numClasses]uint64
	Writes      [numClasses]uint64
	StallCycles uint64 // cycles requests waited on a full write queue
	// Faults breaks down media-fault and ECC activity; all zero when the
	// fault model is off.
	Faults FaultCounters
}

// Merge folds another device's statistics into s; the multi-controller
// system builds its system-wide view this way.
func (s *Stats) Merge(o *Stats) {
	for i := range s.Reads {
		s.Reads[i] += o.Reads[i]
		s.Writes[i] += o.Writes[i]
	}
	s.StallCycles += o.StallCycles
	s.Faults.Merge(&o.Faults)
}

// TotalReads returns reads across all classes.
func (s Stats) TotalReads() uint64 { return total(&s.Reads) }

// TotalWrites returns writes across all classes.
func (s Stats) TotalWrites() uint64 { return total(&s.Writes) }

// WriteBytes returns total bytes written.
func (s Stats) WriteBytes() uint64 { return s.TotalWrites() * LineSize }

func total(a *[numClasses]uint64) uint64 {
	var t uint64
	for _, v := range a {
		t += v
	}
	return t
}

// Device is the NVM device. It is not safe for concurrent use; the memory
// controller serialises requests to one DIMM exactly as §IV-F describes.
type Device struct {
	cfg Config
	// lines holds contents indexed by line number (addr/LineSize) in a
	// chunked arena: device reads and writes are the innermost operations
	// of every simulated request, and a map lookup per access dominated
	// the profile. A zero slot equals an absent line (fresh memory reads
	// zero); populated counts the non-zero slots.
	lines     arena.T[Line]
	populated int
	// wear counts writes per line (same indexing); PCM's limited write
	// endurance (§I) is a first-class concern, and recovery schemes that
	// concentrate writes (shadow tables, record lines) show up here.
	wear arena.T[uint64]
	// queue holds completion times (in cycles) of pending writes, FIFO
	// by completion; banks tracks when each bank next frees up.
	queue []uint64
	banks []uint64
	stats Stats
	// observer, when set, sees every durable line write (fault-injection
	// harnesses count events through it). It runs after the store commits.
	observer func(addr uint64, cls Class)
	// frng is the media-fault stream; nil keeps every access fault-free.
	frng *rng.Source
	// stuck holds the sticky stuck-at overlays (same indexing); a zero
	// mask equals no overlay, stuckN counts lines with one.
	stuck  arena.T[stuckLine]
	stuckN int
	// last is the tear candidate for the next crash boundary.
	last lastWrite
	// evid is the per-line media-fault evidence ledger (evidence.go);
	// tornN counts lines whose torn flag is currently set, gating the
	// clear-on-rewrite probe out of the fault-free hot path.
	evid  arena.T[lineEvidence]
	tornN int
}

// New creates a Device. Lines read before any write return the zero line,
// matching freshly initialised (zeroed) memory.
func New(cfg Config) *Device {
	if cfg.CapacityBytes == 0 || cfg.CapacityBytes%LineSize != 0 {
		panic("nvmem: capacity must be a positive multiple of the line size")
	}
	if cfg.WriteQueueEntries <= 0 {
		panic("nvmem: write queue must have at least one entry")
	}
	if cfg.WriteBanks <= 0 {
		panic("nvmem: need at least one write bank")
	}
	return &Device{
		cfg:   cfg,
		banks: make([]uint64, cfg.WriteBanks),
		frng:  faultRNG(cfg),
	}
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Stats returns a snapshot of the accumulated statistics.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the statistics without touching contents.
func (d *Device) ResetStats() { d.stats = Stats{} }

// checkAddr validates alignment and range, returning a wrapped
// ErrUnaligned/ErrOutOfRange on violation.
func (d *Device) checkAddr(addr uint64) error {
	if addr%LineSize != 0 {
		return fmt.Errorf("%w: %#x", ErrUnaligned, addr)
	}
	if addr >= d.cfg.CapacityBytes {
		return fmt.Errorf("%w: %#x >= %#x", ErrOutOfRange, addr, d.cfg.CapacityBytes)
	}
	return nil
}

// mustAddr is checkAddr for the untimed inspection paths (Peek/Poke/
// WearOf), where a bad address is a harness programming error.
func (d *Device) mustAddr(addr uint64) {
	if err := d.checkAddr(addr); err != nil {
		panic(err)
	}
}

// Read fetches the line at addr. It returns the contents and the access
// latency in cycles. A misaligned or out-of-range address returns a
// wrapped ErrUnaligned/ErrOutOfRange; under the media-fault model a line
// whose damage exceeds the ECC correction capability returns the raw
// contents together with a *FaultError matching ErrUncorrectable.
func (d *Device) Read(now uint64, addr uint64, cls Class) (Line, uint64, error) {
	if err := d.checkAddr(addr); err != nil {
		return Line{}, 0, err
	}
	d.drain(now)
	d.stats.Reads[cls]++
	intended := d.peekIntended(addr)
	lat := d.cfg.ReadCycles()
	if d.frng == nil {
		return intended, lat, nil
	}
	raw := d.corrupt(addr, intended, true)
	out, extra, err := d.decode(addr, cls, intended, raw, true)
	return out, lat + extra, err
}

// Write stores the line at addr through the write queue. It returns the
// cycles the caller stalled waiting for a free queue entry (zero when the
// queue has room) and a wrapped ErrUnaligned/ErrOutOfRange for a bad
// address. The write is durable on return.
func (d *Device) Write(now uint64, addr uint64, line Line, cls Class) (uint64, error) {
	if err := d.checkAddr(addr); err != nil {
		return 0, err
	}
	d.drain(now)
	var stall uint64
	if len(d.queue) >= d.cfg.WriteQueueEntries {
		head := d.queue[0]
		if head > now {
			stall = head - now
			now = head
		}
		d.drain(now)
	}
	// Dispatch to the bank that frees up first.
	bank := 0
	for i := 1; i < len(d.banks); i++ {
		if d.banks[i] < d.banks[bank] {
			bank = i
		}
	}
	start := now
	if d.banks[bank] > start {
		start = d.banks[bank]
	}
	done := start + d.cfg.WriteServiceCycles()
	d.banks[bank] = done
	d.insertCompletion(done)
	d.stats.Writes[cls]++
	d.stats.StallCycles += stall
	*d.wear.Ptr(addr / LineSize)++
	if d.frng != nil {
		if d.frng.Bool(d.cfg.Faults.StuckPerWrite) {
			d.addStuckBit(addr)
		}
		d.last = lastWrite{valid: true, addr: addr, prev: d.peekIntended(addr), next: line}
	}
	d.store(addr, line)
	if d.observer != nil {
		d.observer(addr, cls)
	}
	return stall, nil
}

// MustWrite is Write for internal, layout-derived addresses that are
// correct by construction; an address error panics.
func (d *Device) MustWrite(now uint64, addr uint64, line Line, cls Class) uint64 {
	stall, err := d.Write(now, addr, line, cls)
	if err != nil {
		panic(err)
	}
	return stall
}

// SetWriteObserver registers a callback invoked after every timed Write
// commits (Poke is exempt: it models out-of-band access, not controller
// traffic). Pass nil to remove it.
func (d *Device) SetWriteObserver(fn func(addr uint64, cls Class)) { d.observer = fn }

// insertCompletion keeps the pending-write list sorted by completion time.
func (d *Device) insertCompletion(done uint64) {
	i := len(d.queue)
	d.queue = append(d.queue, done)
	for i > 0 && d.queue[i-1] > done {
		d.queue[i] = d.queue[i-1]
		i--
	}
	d.queue[i] = done
}

// drain removes queue entries whose service completed at or before now.
func (d *Device) drain(now uint64) {
	i := 0
	for i < len(d.queue) && d.queue[i] <= now {
		i++
	}
	if i > 0 {
		d.queue = d.queue[:copy(d.queue, d.queue[i:])]
	}
}

// QueueDepth returns the number of writes still pending at time now.
func (d *Device) QueueDepth(now uint64) int {
	d.drain(now)
	return len(d.queue)
}

func (d *Device) store(addr uint64, line Line) {
	if d.tornN > 0 {
		// A rewrite supersedes torn content: the old tear can no longer
		// explain damage to what is stored now.
		if ev := d.evid.Probe(addr / LineSize); ev != nil && ev.torn {
			ev.torn = false
			d.tornN--
		}
	}
	p := d.lines.Ptr(addr / LineSize)
	// A zero line equals absent; track the populated count across the
	// zero/non-zero transitions so PopulatedLines stays O(1).
	wasZero := *p == (Line{})
	isZero := line == (Line{})
	switch {
	case wasZero && !isZero:
		d.populated++
	case !wasZero && isZero:
		d.populated--
	}
	*p = line
}

// peekIntended returns the stored (pre-overlay) contents of addr.
func (d *Device) peekIntended(addr uint64) Line {
	if l := d.lines.Probe(addr / LineSize); l != nil {
		return *l
	}
	return Line{}
}

// Peek returns the current contents of addr without timing or stats;
// recovery code uses it together with its own read accounting, and tests
// use it to inspect durable state. Under the media-fault model Peek sees
// what a fresh read would deliver: the stuck-cell overlay applied and then
// silently best-effort ECC-decoded (corrected where possible, raw where
// not) — the cryptographic layer is what catches uncorrectable content.
func (d *Device) Peek(addr uint64) Line {
	d.mustAddr(addr)
	intended := d.peekIntended(addr)
	if d.frng == nil {
		return intended
	}
	raw := d.corrupt(addr, intended, false)
	out, _, _ := d.decode(addr, ClassOther, intended, raw, false)
	return out
}

// Poke overwrites addr without timing or stats. Attack injection uses it
// to model an adversary with physical access to the DIMM (who writes the
// line together with matching ECC bits, so Poked content is ECC-clean).
func (d *Device) Poke(addr uint64, line Line) {
	d.mustAddr(addr)
	d.store(addr, line)
}

// EnergyPJ returns the device energy consumed so far under the configured
// per-access model.
func (d *Device) EnergyPJ() float64 {
	return float64(d.stats.TotalReads())*d.cfg.Energy.ReadPJ +
		float64(d.stats.TotalWrites())*d.cfg.Energy.WritePJ
}

// PopulatedLines reports how many distinct non-zero lines the device holds;
// tests use it to bound simulator footprints.
func (d *Device) PopulatedLines() int { return d.populated }

// Wear summarises write endurance consumption.
type Wear struct {
	LinesWritten uint64 // distinct lines ever written
	TotalWrites  uint64
	MaxPerLine   uint64 // the hottest line's write count
	HotAddr      uint64 // its address
}

// WearStats scans the per-line write counts. With PCM endurance around
// 10^8 writes, MaxPerLine bounds device lifetime; schemes that hammer a
// fixed region (ASIT's shadow slots, Steins' record lines) surface here.
// The scan runs in ascending address order, so HotAddr is the lowest
// address among max-count ties — the map-backed version picked an
// arbitrary tie, silently breaking the deterministic-output contract of
// every emitter built on it.
func (d *Device) WearStats() Wear {
	var w Wear
	d.wear.ForEach(func(idx uint64, n *uint64) {
		if *n == 0 {
			return
		}
		w.LinesWritten++
		w.TotalWrites += *n
		if *n > w.MaxPerLine {
			w.MaxPerLine, w.HotAddr = *n, idx*LineSize
		}
	})
	return w
}

// WearOf returns one line's write count.
func (d *Device) WearOf(addr uint64) uint64 {
	d.mustAddr(addr)
	return d.wear.Get(addr / LineSize)
}
