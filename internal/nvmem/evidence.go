// Media-fault evidence: a per-line ledger of every fault event the device
// itself witnessed — ECC corrections, detected-uncorrectable words, torn
// crash writes, and sticky stuck-at overlays. Degraded recovery arbitrates
// damage against this ledger: a node whose contents regressed with no
// supporting media evidence cannot blame the media, so the damage is
// replay-shaped and must quarantine rather than heal.
//
// The ledger is deliberately one-sided. Timed reads, Peek, CrashTear and
// the explicit media-damage injector CorruptLine append to it; Poke and
// SetTag never do — an attacker with physical DIMM access writes ECC-clean
// content and therefore cannot manufacture the evidence that would excuse
// the damage they caused.

package nvmem

import (
	"fmt"
	"strings"
)

// lineEvidence is the per-line fault ledger entry. A zero value equals no
// recorded evidence (arena slots start zero).
type lineEvidence struct {
	corrected     uint64 // ECC single-bit corrections observed on this line
	uncorrectable uint64 // detected-uncorrectable decode events
	torn          bool   // line torn by CrashTear and not yet rewritten
}

// Evidence summarises the media-fault history of one line for recovery-time
// damage arbitration.
type Evidence struct {
	// Torn reports the line was torn at the last crash boundary and has not
	// been rewritten since.
	Torn bool
	// Stuck reports the line carries at least one sticky stuck-at cell.
	Stuck bool
	// Corrected counts ECC single-bit corrections observed on the line.
	Corrected uint64
	// Uncorrectable counts detected-uncorrectable decode events on the line.
	Uncorrectable uint64
}

// Any reports whether any media evidence at all was recorded for the line.
func (e Evidence) Any() bool {
	return e.Torn || e.Stuck || e.Corrected > 0 || e.Uncorrectable > 0
}

// Persistent reports whether the evidence can explain *persistent* damage:
// torn writes, stuck cells, and uncorrectable words change or mask stored
// content, while a corrected single-bit flip delivered intact data and
// excuses nothing.
func (e Evidence) Persistent() bool {
	return e.Torn || e.Stuck || e.Uncorrectable > 0
}

// String renders the evidence summary in the compact form quarantine
// reports and CLI tables use; the zero value renders as "none".
func (e Evidence) String() string {
	if !e.Any() {
		return "none"
	}
	var parts []string
	if e.Torn {
		parts = append(parts, "torn")
	}
	if e.Stuck {
		parts = append(parts, "stuck")
	}
	if e.Uncorrectable > 0 {
		parts = append(parts, fmt.Sprintf("uncorrectable×%d", e.Uncorrectable))
	}
	if e.Corrected > 0 {
		parts = append(parts, fmt.Sprintf("corrected×%d", e.Corrected))
	}
	return strings.Join(parts, "+")
}

// noteECC appends ECC decode events for addr to the ledger. It runs on
// every decode, timed or not: Peek-path damage comes only from persistent
// state (stuck overlays, torn lines), so recording it keeps the ledger a
// deterministic function of the access sequence.
func (d *Device) noteECC(addr uint64, corrected, uncorrectable uint64) {
	if corrected == 0 && uncorrectable == 0 {
		return
	}
	ev := d.evid.Ptr(addr / LineSize)
	ev.corrected += corrected
	ev.uncorrectable += uncorrectable
}

// noteTorn marks addr torn at a crash boundary. The flag clears on the next
// store to the line (the rewrite supersedes the torn content).
func (d *Device) noteTorn(addr uint64) {
	ev := d.evid.Ptr(addr / LineSize)
	if !ev.torn {
		ev.torn = true
		d.tornN++
	}
}

// CorruptLine damages the line at addr with damage attributed to the
// MEDIA: the stored content changes and the ledger records a
// detected-uncorrectable event, as a patrol scrub logs for cells decayed
// beyond ECC's reach. Contrast Poke, the tamper primitive, which alters
// content and records nothing — harnesses choose the one matching the
// failure they model, and recovery-time arbitration tells them apart.
func (d *Device) CorruptLine(addr uint64, line Line) {
	d.mustAddr(addr)
	d.store(addr, line)
	d.noteECC(addr, 0, 1)
}

// EvidenceFor returns the recorded media-fault evidence for the line at
// addr, combining the event ledger with the current stuck-cell overlay.
func (d *Device) EvidenceFor(addr uint64) Evidence {
	d.mustAddr(addr)
	var e Evidence
	if ev := d.evid.Probe(addr / LineSize); ev != nil {
		e.Torn = ev.torn
		e.Corrected = ev.corrected
		e.Uncorrectable = ev.uncorrectable
	}
	if s := d.stuck.Probe(addr / LineSize); s != nil && s.mask != (Line{}) {
		e.Stuck = true
	}
	return e
}

// TornLines reports how many lines currently carry the torn flag.
func (d *Device) TornLines() int { return d.tornN }
