package nvmem

import (
	"errors"
	"testing"
)

func faultyConfig(mut func(*Config)) Config {
	c := smallConfig()
	c.Faults.Seed = 7
	mut(&c)
	return c
}

func TestTransientSingleBitCorrected(t *testing.T) {
	d := New(faultyConfig(func(c *Config) { c.Faults.TransientPerRead = 1 }))
	want := Line{1, 2, 3, 4}
	if _, err := d.Write(0, 0, want, ClassData); err != nil {
		t.Fatal(err)
	}
	clean := d.Config().ReadCycles()
	for i := 0; i < 50; i++ {
		got, lat, err := d.Read(uint64(i)*1000, 0, ClassData)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("read %d: ECC did not deliver the intended contents", i)
		}
		if lat != clean+d.Config().ECC.CorrectCycles {
			t.Fatalf("read %d: latency %d missing the correction penalty", i, lat)
		}
	}
	f := d.Stats().Faults
	if f.TransientFlips != 50 || f.Corrected != 50 || f.Uncorrectable != 0 {
		t.Fatalf("fault counters = %+v", f)
	}
}

func TestDoubleBitUncorrectable(t *testing.T) {
	d := New(faultyConfig(func(c *Config) {
		c.Faults.TransientPerRead = 1
		c.Faults.DoubleBitFrac = 1
	}))
	if _, err := d.Write(0, 0, Line{9}, ClassData); err != nil {
		t.Fatal(err)
	}
	_, _, err := d.Read(0, 0, ClassData)
	if !errors.Is(err, ErrUncorrectable) {
		t.Fatalf("double-bit read error = %v, want ErrUncorrectable", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Addr != 0 || fe.Class != ClassData {
		t.Fatalf("structured fault error = %+v", fe)
	}
	if d.Stats().Faults.Uncorrectable != 1 {
		t.Fatalf("Uncorrectable = %d", d.Stats().Faults.Uncorrectable)
	}
}

func TestECCDisabledReturnsRawSilently(t *testing.T) {
	d := New(faultyConfig(func(c *Config) {
		c.Faults.TransientPerRead = 1
		c.ECC.Disable = true
	}))
	want := Line{1, 2, 3}
	if _, err := d.Write(0, 0, want, ClassData); err != nil {
		t.Fatal(err)
	}
	got, _, err := d.Read(0, 0, ClassData)
	if err != nil {
		t.Fatalf("disabled ECC must not flag: %v", err)
	}
	if got == want {
		t.Fatal("transient flip with ECC off still delivered clean data")
	}
	if f := d.Stats().Faults; f.Corrected != 0 || f.Uncorrectable != 0 {
		t.Fatalf("ECC counters moved with ECC off: %+v", f)
	}
}

func TestStuckBitsPersistAcrossWrites(t *testing.T) {
	d := New(faultyConfig(func(c *Config) { c.Faults.StuckPerWrite = 1 }))
	for i := 0; i < 5; i++ {
		if _, err := d.Write(uint64(i)*1000, 0, Line{byte(i + 1)}, ClassData); err != nil {
			t.Fatal(err)
		}
	}
	if d.StuckLines() != 1 {
		t.Fatalf("StuckLines = %d, want 1", d.StuckLines())
	}
	if got := d.Stats().Faults.StuckBits; got != 5 {
		t.Fatalf("StuckBits = %d, want 5", got)
	}
	// The stored value still reads back: single stuck bits per word are
	// corrected, multi-bit words come back flagged — never silently wrong.
	got, _, err := d.Read(10000, 0, ClassData)
	if err == nil && got != (Line{5}) {
		t.Fatal("stuck cells silently corrupted a read")
	}
}

func TestCrashTearMergesHalves(t *testing.T) {
	d := New(faultyConfig(func(c *Config) { c.Faults.TornOnCrash = 1 }))
	var old, next Line
	for i := range old {
		old[i], next[i] = 0xAA, 0xBB
	}
	if _, err := d.Write(0, 64, old, ClassData); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(1000, 64, next, ClassData); err != nil {
		t.Fatal(err)
	}
	addr, torn := d.CrashTear()
	if !torn || addr != 64 {
		t.Fatalf("CrashTear = (%#x, %v), want (0x40, true)", addr, torn)
	}
	got := d.Peek(64)
	for i := 0; i < LineSize/2; i++ {
		if got[i] != 0xBB {
			t.Fatalf("byte %d = %#x, want new half", i, got[i])
		}
	}
	for i := LineSize / 2; i < LineSize; i++ {
		if got[i] != 0xAA {
			t.Fatalf("byte %d = %#x, want old half", i, got[i])
		}
	}
	if d.Stats().Faults.TornWrites != 1 {
		t.Fatalf("TornWrites = %d", d.Stats().Faults.TornWrites)
	}
	// One-shot: a second crash without an intervening write tears nothing.
	if _, torn := d.CrashTear(); torn {
		t.Fatal("CrashTear fired twice for one write")
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Stats {
		d := New(faultyConfig(func(c *Config) {
			c.Faults.TransientPerRead = 0.3
			c.Faults.DoubleBitFrac = 0.25
			c.Faults.StuckPerWrite = 0.1
			c.Faults.TornOnCrash = 0.5
		}))
		for i := uint64(0); i < 500; i++ {
			addr := (i % 64) * LineSize
			if i%3 == 0 {
				d.Read(i*100, addr, ClassData)
			} else {
				d.Write(i*100, addr, Line{byte(i)}, ClassData)
			}
			if i%97 == 0 {
				d.CrashTear()
			}
		}
		return d.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Faults, b.Faults)
	}
}

func TestFaultCountersMerge(t *testing.T) {
	a := Stats{Faults: FaultCounters{TransientFlips: 1, StuckBits: 2, TornWrites: 3, Corrected: 4, Uncorrectable: 5}}
	b := Stats{Faults: FaultCounters{TransientFlips: 10, StuckBits: 20, TornWrites: 30, Corrected: 40, Uncorrectable: 50}}
	a.Merge(&b)
	want := FaultCounters{TransientFlips: 11, StuckBits: 22, TornWrites: 33, Corrected: 44, Uncorrectable: 55}
	if a.Faults != want {
		t.Fatalf("merged = %+v, want %+v", a.Faults, want)
	}
}

func TestParseFaultSpec(t *testing.T) {
	f, err := ParseFaultSpec("transient=1e-4,double=0.25,stuck=1e-6,torn=0.5,seed=7")
	if err != nil {
		t.Fatal(err)
	}
	want := FaultConfig{Seed: 7, TransientPerRead: 1e-4, DoubleBitFrac: 0.25, StuckPerWrite: 1e-6, TornOnCrash: 0.5}
	if f != want {
		t.Fatalf("parsed = %+v, want %+v", f, want)
	}
	if !f.Enabled() {
		t.Fatal("parsed spec not enabled")
	}
	for _, spec := range []string{"", "off"} {
		f, err := ParseFaultSpec(spec)
		if err != nil || f.Enabled() {
			t.Fatalf("spec %q: %+v, %v", spec, f, err)
		}
	}
	for _, bad := range []string{"transient", "bogus=1", "torn=x"} {
		if _, err := ParseFaultSpec(bad); err == nil {
			t.Fatalf("spec %q did not error", bad)
		}
	}
}
