// Snapshot support: the device's complete durable and model state as a
// serializable value. Maps are flattened to address-sorted slices so gob
// encoding is deterministic, and the media-fault RNG position rides along —
// the fault stream is entangled with the access sequence, so a resumed run
// must continue drawing from the exact point the original stopped.

package nvmem

import (
	"steins/internal/rng"
)

// LineState is one populated (non-zero) line.
type LineState struct {
	Addr uint64
	Data Line
}

// WearState is one line's write count.
type WearState struct {
	Addr  uint64
	Count uint64
}

// StuckState is one line's sticky stuck-at overlay.
type StuckState struct {
	Addr uint64
	Mask Line
	Val  Line
}

// LastWriteState is the tear candidate for the next crash boundary.
type LastWriteState struct {
	Valid bool
	Addr  uint64
	Prev  Line
	Next  Line
}

// EvidenceState is one line's media-fault evidence ledger entry.
type EvidenceState struct {
	Addr          uint64
	Corrected     uint64
	Uncorrectable uint64
	Torn          bool
}

// State is the full serializable device image. The configuration is not
// captured: the restoring side rebuilds the device from the same Config and
// the snapshot header's knobs.
type State struct {
	Lines []LineState // non-zero lines, sorted by address
	Wear  []WearState // per-line write counts, sorted by address
	Queue []uint64    // pending write completions, FIFO by completion
	Banks []uint64    // per-bank next-free times
	Stats Stats
	// FaultRNG is the media-fault stream position; FaultRNGValid
	// distinguishes "model off" from a zero state.
	FaultRNGValid bool
	FaultRNG      [4]uint64
	Stuck         []StuckState // stuck-cell overlays, sorted by address
	LastWrite     LastWriteState
	// Evidence is the per-line media-fault ledger, sorted by address.
	Evidence []EvidenceState
}

// State captures the device. The observer callback is not part of the
// state; harnesses re-register theirs after Restore.
func (d *Device) State() State {
	st := State{
		Queue: append([]uint64(nil), d.queue...),
		Banks: append([]uint64(nil), d.banks...),
		Stats: d.stats,
		LastWrite: LastWriteState{
			Valid: d.last.valid, Addr: d.last.addr, Prev: d.last.prev, Next: d.last.next,
		},
	}
	// Arena iteration ascends by address, matching the sorted order the
	// map-backed implementation produced; zero slots equal absent entries.
	d.lines.ForEach(func(idx uint64, l *Line) {
		if *l != (Line{}) {
			st.Lines = append(st.Lines, LineState{Addr: idx * LineSize, Data: *l})
		}
	})
	d.wear.ForEach(func(idx uint64, n *uint64) {
		if *n != 0 {
			st.Wear = append(st.Wear, WearState{Addr: idx * LineSize, Count: *n})
		}
	})
	d.stuck.ForEach(func(idx uint64, s *stuckLine) {
		if s.mask != (Line{}) {
			st.Stuck = append(st.Stuck, StuckState{Addr: idx * LineSize, Mask: s.mask, Val: s.val})
		}
	})
	d.evid.ForEach(func(idx uint64, ev *lineEvidence) {
		if *ev != (lineEvidence{}) {
			st.Evidence = append(st.Evidence, EvidenceState{Addr: idx * LineSize,
				Corrected: ev.corrected, Uncorrectable: ev.uncorrectable, Torn: ev.torn})
		}
	})
	if d.frng != nil {
		st.FaultRNGValid = true
		st.FaultRNG = d.frng.State()
	}
	return st
}

// Restore overwrites the device's contents, wear, queue, statistics and
// fault-model state from a captured State. The device must have been built
// from the same Config (bank count in particular); the observer callback is
// left as-is.
func (d *Device) Restore(st State) {
	d.lines.Reset()
	d.populated = 0
	for _, l := range st.Lines {
		if l.Data != (Line{}) {
			*d.lines.Ptr(l.Addr / LineSize) = l.Data
			d.populated++
		}
	}
	d.wear.Reset()
	for _, w := range st.Wear {
		*d.wear.Ptr(w.Addr / LineSize) = w.Count
	}
	d.queue = append(d.queue[:0], st.Queue...)
	d.banks = append(d.banks[:0], st.Banks...)
	d.stats = st.Stats
	d.stuck.Reset()
	d.stuckN = 0
	for _, s := range st.Stuck {
		if s.Mask != (Line{}) {
			*d.stuck.Ptr(s.Addr / LineSize) = stuckLine{mask: s.Mask, val: s.Val}
			d.stuckN++
		}
	}
	d.evid.Reset()
	d.tornN = 0
	for _, ev := range st.Evidence {
		*d.evid.Ptr(ev.Addr / LineSize) = lineEvidence{
			corrected: ev.Corrected, uncorrectable: ev.Uncorrectable, torn: ev.Torn}
		if ev.Torn {
			d.tornN++
		}
	}
	if st.FaultRNGValid {
		if d.frng == nil {
			d.frng = rng.New(d.cfg.Faults.Seed)
		}
		d.frng.Restore(st.FaultRNG)
	} else {
		d.frng = nil
	}
	d.last = lastWrite{valid: st.LastWrite.Valid, addr: st.LastWrite.Addr,
		prev: st.LastWrite.Prev, next: st.LastWrite.Next}
}
