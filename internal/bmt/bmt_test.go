package bmt

import (
	"testing"

	"steins/internal/counter"
	"steins/internal/crypt"
)

func newTree(n int) *Tree {
	return New(n, crypt.NewKey(1), crypt.SipMAC{}, 40)
}

func TestVerifyFresh(t *testing.T) {
	tr := newTree(100)
	for i := uint64(0); i < 100; i += 17 {
		if _, err := tr.Verify(i, tr.Block(i)); err != nil {
			t.Fatalf("fresh leaf %d: %v", i, err)
		}
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr := newTree(64)
	var blk counter.Block
	blk[0] = 42
	tr.Update(5, blk)
	if _, err := tr.Verify(5, blk); err != nil {
		t.Fatal(err)
	}
	// Unmodified neighbours still verify.
	if _, err := tr.Verify(6, tr.Block(6)); err != nil {
		t.Fatal(err)
	}
}

func TestTamperDetected(t *testing.T) {
	tr := newTree(64)
	var blk counter.Block
	blk[0] = 1
	tr.Update(9, blk)
	blk[0] = 2 // attacker's version
	if _, err := tr.Verify(9, blk); err == nil {
		t.Fatal("tampered block verified")
	}
}

func TestRootChangesOnUpdate(t *testing.T) {
	tr := newTree(64)
	before := tr.Root()
	var blk counter.Block
	blk[3] = 7
	tr.Update(0, blk)
	if tr.Root() == before {
		t.Fatal("root unchanged after update")
	}
}

func TestUpdateCostScalesWithHeight(t *testing.T) {
	// The motivating contrast (§II-C): BMT update cost is height x hash
	// latency, sequential. SIT's lazy update touches one node (+ parent).
	small, large := newTree(8), newTree(8*8*8*8)
	var blk counter.Block
	blk[0] = 1
	cs := small.Update(0, blk)
	cl := large.Update(0, blk)
	if cl <= cs {
		t.Fatalf("deep tree update (%d cycles) not costlier than shallow (%d)", cl, cs)
	}
	if want := uint64(large.Levels()) * 40; cl != want {
		t.Fatalf("update cost %d, want levels*hash = %d", cl, want)
	}
}

func TestRebuildFromLeaves(t *testing.T) {
	tr := newTree(128)
	var blk counter.Block
	for i := uint64(0); i < 128; i += 11 {
		blk[0] = byte(i)
		tr.Update(i, blk)
	}
	trusted := tr.Root()
	// Simulate loss of interior hashes: rebuild and compare.
	hashes, root := tr.Rebuild()
	if root != trusted {
		t.Fatal("rebuild changed the root")
	}
	if hashes < 128 {
		t.Fatalf("rebuild hashed %d nodes, want >= leaf count", hashes)
	}
}

func TestRebuildDetectsTamperedLeafViaRoot(t *testing.T) {
	tr := newTree(64)
	var blk counter.Block
	blk[0] = 9
	tr.Update(3, blk)
	trusted := tr.Root()
	// Attacker modifies the stored block, then the system rebuilds.
	blk[0] = 10
	tr.blocks[3] = blk
	if _, root := tr.Rebuild(); root == trusted {
		t.Fatal("tampered rebuild produced the trusted root")
	}
}

func TestNonPowerOfEightSizes(t *testing.T) {
	for _, n := range []int{1, 7, 9, 63, 65, 100} {
		tr := newTree(n)
		var blk counter.Block
		blk[1] = 5
		tr.Update(uint64(n-1), blk)
		if _, err := tr.Verify(uint64(n-1), blk); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	newTree(0)
}

func BenchmarkUpdate(b *testing.B) {
	tr := newTree(1 << 15)
	var blk counter.Block
	for i := 0; i < b.N; i++ {
		blk[0] = byte(i)
		tr.Update(uint64(i)&(1<<15-1), blk)
	}
}
