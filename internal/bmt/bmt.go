// Package bmt implements the Bonsai Merkle Tree of §II-C (Rogers et al.,
// MICRO'07): counter blocks are hashed into parent HMAC nodes, which are
// hashed recursively up to an on-chip root. Because each parent hash takes
// its children's hashes as input, an update must recompute the whole
// branch sequentially — the cost that motivates the paper's choice of SIT,
// whose per-level counters update in parallel (§II-C).
//
// The package is the substrate for the SIT-vs-BMT ablation bench: it is a
// functional tree (real hashes, real verification) with the same 40-cycle
// hash-latency accounting as the controller.
package bmt

import (
	"encoding/binary"
	"fmt"

	"steins/internal/counter"
	"steins/internal/crypt"
)

// Tree is a Bonsai Merkle Tree over counter blocks. Leaves are the CME
// counter blocks themselves (hashed), interior nodes are hashes of their
// children, arity 8.
type Tree struct {
	key        crypt.Key
	mac        crypt.MAC
	hashCycles uint64
	blocks     []counter.Block // the protected counter blocks
	levels     [][]uint64      // levels[0][i] = hash of block i; top is len-1
	root       uint64          // on-chip, trusted
}

// Arity is the tree fan-out.
const Arity = 8

// New builds a BMT over numBlocks zeroed counter blocks.
func New(numBlocks int, key crypt.Key, mac crypt.MAC, hashCycles uint64) *Tree {
	if numBlocks <= 0 {
		panic("bmt: need at least one block")
	}
	t := &Tree{key: key, mac: mac, hashCycles: hashCycles, blocks: make([]counter.Block, numBlocks)}
	n := numBlocks
	for {
		t.levels = append(t.levels, make([]uint64, n))
		if n == 1 {
			break
		}
		n = (n + Arity - 1) / Arity
	}
	for i := range t.blocks {
		t.levels[0][i] = t.leafHash(uint64(i))
	}
	for l := 1; l < len(t.levels); l++ {
		for i := range t.levels[l] {
			t.levels[l][i] = t.groupHash(l, uint64(i))
		}
	}
	t.root = t.levels[len(t.levels)-1][0]
	return t
}

// Levels returns the number of hash levels (leaf hashes included).
func (t *Tree) Levels() int { return len(t.levels) }

// Root returns the trusted root hash.
func (t *Tree) Root() uint64 { return t.root }

// Block returns a copy of leaf block i.
func (t *Tree) Block(i uint64) counter.Block { return t.blocks[i] }

func (t *Tree) leafHash(i uint64) uint64 {
	var msg [72]byte
	copy(msg[:64], t.blocks[i][:])
	binary.LittleEndian.PutUint64(msg[64:], i)
	return t.mac.Sum64(t.key, msg[:])
}

func (t *Tree) groupHash(level int, idx uint64) uint64 {
	lo := idx * Arity
	hi := min(lo+Arity, uint64(len(t.levels[level-1])))
	msg := make([]byte, 0, 8*(int(hi-lo)+1))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(level)<<32|idx)
	msg = append(msg, b[:]...)
	for _, h := range t.levels[level-1][lo:hi] {
		binary.LittleEndian.PutUint64(b[:], h)
		msg = append(msg, b[:]...)
	}
	return t.mac.Sum64(t.key, msg)
}

// Update replaces leaf block i and recomputes the branch to the root.
// The returned cycle count is sequential — each hash needs its child's
// result — which is BMT's structural penalty versus SIT.
func (t *Tree) Update(i uint64, block counter.Block) (cycles uint64) {
	t.blocks[i] = block
	t.levels[0][i] = t.leafHash(i)
	cycles = t.hashCycles
	idx := i
	for l := 1; l < len(t.levels); l++ {
		idx /= Arity
		t.levels[l][idx] = t.groupHash(l, idx)
		cycles += t.hashCycles // strictly sequential: child hash is an input
	}
	t.root = t.levels[len(t.levels)-1][0]
	return cycles
}

// Verify checks leaf block i against the stored branch and root. The
// returned cycles assume the branch hashes are computed in parallel once
// the data is available (verification, unlike update, parallelises in BMT
// too), so it costs one hash latency plus a compare per level.
func (t *Tree) Verify(i uint64, block counter.Block) (uint64, error) {
	saved := t.blocks[i]
	t.blocks[i] = block
	h := t.leafHash(i)
	t.blocks[i] = saved
	cycles := t.hashCycles
	if h != t.levels[0][i] {
		return cycles, fmt.Errorf("bmt: leaf %d hash mismatch", i)
	}
	idx := i
	for l := 1; l < len(t.levels); l++ {
		idx /= Arity
		if t.groupHash(l, idx) != t.levels[l][idx] {
			return cycles, fmt.Errorf("bmt: interior hash mismatch at level %d", l)
		}
		cycles++ // pipelined compare
	}
	if t.levels[len(t.levels)-1][0] != t.root {
		return cycles, fmt.Errorf("bmt: root mismatch")
	}
	return cycles, nil
}

// Rebuild reconstructs every hash from the leaf blocks (the BMT recovery
// path of §II-D: the tree can be rebuilt from leaves because parents are
// pure functions of children). It returns the hash count and the new root,
// which the caller compares with a trusted copy.
func (t *Tree) Rebuild() (hashes uint64, root uint64) {
	for i := range t.blocks {
		t.levels[0][i] = t.leafHash(uint64(i))
		hashes++
	}
	for l := 1; l < len(t.levels); l++ {
		for i := range t.levels[l] {
			t.levels[l][i] = t.groupHash(l, uint64(i))
			hashes++
		}
	}
	t.root = t.levels[len(t.levels)-1][0]
	return hashes, t.root
}
