// Package bmtctrl is a complete secure memory controller built on the
// Bonsai Merkle Tree instead of the SGX-style integrity tree — the §II-C
// baseline design the paper argues against, implemented at system level so
// the SIT-vs-BMT comparison can be made end to end rather than per
// operation.
//
// Design (Rogers et al., MICRO'07; consistency treatment after PLP/BMF):
//
//   - Leaves are classic CME split counter blocks (64-bit major + 64×7-bit
//     minors, Fig. 1), each covering 64 data blocks, cached in the
//     controller and persisted in NVM.
//   - A Merkle tree of hashes covers the counter blocks. Because every
//     interior node is a pure function of the leaves, the interior lives
//     only in controller SRAM and is never persisted: after a crash it is
//     rebuilt from the leaves (§II-D: "the tree can be reconstructed from
//     leaf nodes"). Only the root occupies an on-chip non-volatile
//     register.
//   - Every counter-block modification updates the branch to the root
//     sequentially — each parent hash needs its child's result — which is
//     the structural write cost that motivates SIT (§II-C).
//   - Recovery restores stale leaves from the covered data blocks' tags
//     (Osiris-style, as the SIT schemes do), rebuilds the interior, and
//     compares the computed root with the non-volatile register: because
//     updates are eager, the surviving root covers the *latest* counters,
//     so any tampering or replay of data or counter blocks mismatches.
package bmtctrl

import (
	"encoding/binary"
	"fmt"

	"steins/internal/cache"
	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/crypt"
	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
)

// Arity is the hash-tree fan-out.
const Arity = 8

// Config parameterises the BMT system; defaults mirror Table I.
type Config struct {
	DataBytes      uint64
	MetaCacheBytes int
	MetaCacheWays  int
	HashCycles     uint64
	AESCycles      uint64
	CacheHitCycles uint64
	RunAheadCycles uint64
	HashPJ         float64
	AESPJ          float64
	NVM            nvmem.Config
	Key            crypt.Key
	MAC            crypt.MAC
	OTP            crypt.OTPGen
	RecoveryReadNS float64
	RecoveryHashNS float64
}

// DefaultConfig returns the Table I parameters over dataBytes of data.
func DefaultConfig(dataBytes uint64) Config {
	base := memctrl.DefaultConfig(dataBytes, false)
	return Config{
		DataBytes:      dataBytes,
		MetaCacheBytes: base.MetaCacheBytes,
		MetaCacheWays:  base.MetaCacheWays,
		HashCycles:     base.HashCycles,
		AESCycles:      base.AESCycles,
		CacheHitCycles: base.CacheHitCycles,
		RunAheadCycles: base.RunAheadCycles,
		HashPJ:         base.HashPJ,
		AESPJ:          base.AESPJ,
		NVM:            base.NVM,
		Key:            base.Key,
		MAC:            base.MAC,
		OTP:            base.OTP,
		RecoveryReadNS: base.RecoveryReadNS,
		RecoveryHashNS: base.RecoveryHashNS,
	}
}

// Stats mirrors the SIT controller's metrics.
type Stats struct {
	DataReads   uint64
	DataWrites  uint64
	ReadLatSum  uint64
	WriteLatSum uint64
	HashOps     uint64
	AESOps      uint64
	ReadHist    metrics.Hist
	WriteHist   metrics.Hist
}

// AvgReadLatency returns the mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.DataReads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.DataReads)
}

// AvgWriteLatency returns the mean write latency in cycles.
func (s Stats) AvgWriteLatency() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.WriteLatSum) / float64(s.DataWrites)
}

// Controller is the BMT-based secure memory controller.
type Controller struct {
	cfg      Config
	dev      *nvmem.Device
	eng      cme.Engine
	meta     *cache.Cache[*counter.CME]
	tags     map[uint64]cme.Tag
	metaBase uint64
	leaves   uint64
	// levels[0][i] is the hash of counter block i; upper levels shrink by
	// Arity. Volatile SRAM; root is the on-chip NV register.
	levels [][]uint64
	root   uint64

	arrival   uint64
	reqStart  uint64
	busyUntil uint64
	warmupEnd uint64
	stats     Stats
	crashed   bool

	// hooks, when set, observes fault-injection events; the event
	// vocabulary is shared with the SIT controller (memctrl.Event).
	hooks memctrl.FaultHooks
}

// SetFaultHooks installs (or, with nil, removes) the fault-event sink.
// Device line writes are forwarded as memctrl.EvLineWrite.
func (c *Controller) SetFaultHooks(h memctrl.FaultHooks) {
	c.hooks = h
	if h == nil {
		c.dev.SetWriteObserver(nil)
		return
	}
	c.dev.SetWriteObserver(func(addr uint64, _ nvmem.Class) {
		h.OnEvent(memctrl.EvLineWrite, addr)
	})
}

// FaultEvent reports one event to the installed hooks, if any.
func (c *Controller) FaultEvent(ev memctrl.Event, addr uint64) {
	if c.hooks != nil {
		c.hooks.OnEvent(ev, addr)
	}
}

// New builds the controller. Data occupies [0, DataBytes); the counter
// block region follows it.
func New(cfg Config) *Controller {
	if cfg.DataBytes == 0 || cfg.DataBytes%nvmem.LineSize != 0 {
		panic("bmtctrl: bad data size")
	}
	leaves := (cfg.DataBytes/nvmem.LineSize + counter.SplitArity - 1) / counter.SplitArity
	cfg.NVM.CapacityBytes = cfg.DataBytes + leaves*nvmem.LineSize
	c := &Controller{
		cfg:      cfg,
		dev:      nvmem.New(cfg.NVM),
		eng:      cme.Engine{Key: cfg.Key, OTP: cfg.OTP, MAC: cfg.MAC},
		meta:     cache.New[*counter.CME](cfg.MetaCacheBytes, cfg.MetaCacheWays, nvmem.LineSize),
		tags:     make(map[uint64]cme.Tag),
		metaBase: cfg.DataBytes,
		leaves:   leaves,
	}
	n := leaves
	for {
		c.levels = append(c.levels, make([]uint64, n))
		if n == 1 {
			break
		}
		n = (n + Arity - 1) / Arity
	}
	// Leaf hashes cover the initial (zero) counter blocks: a fetched block
	// that was never written must verify against its genuine hash.
	for i := uint64(0); i < leaves; i++ {
		c.levels[0][i] = c.leafHash(i, counter.Block{})
	}
	c.rebuildInterior()
	c.root = c.levels[len(c.levels)-1][0]
	c.stats = Stats{} // construction hashes are not workload activity
	return c
}

// Device returns the NVM device.
func (c *Controller) Device() *nvmem.Device { return c.dev }

// Stats returns a metrics snapshot.
func (c *Controller) Stats() Stats { return c.stats }

// Levels returns the hash-tree height (leaf hashes included).
func (c *Controller) Levels() int { return len(c.levels) }

// ExecCycles returns the makespan.
func (c *Controller) ExecCycles() uint64 { return c.busyUntil - c.warmupEnd }

// EnergyPJ returns device plus crypto-engine energy.
func (c *Controller) EnergyPJ() float64 {
	return c.dev.EnergyPJ() +
		float64(c.stats.HashOps)*c.cfg.HashPJ +
		float64(c.stats.AESOps)*c.cfg.AESPJ
}

// Tag returns a data block's authentication tag (attack injection).
func (c *Controller) Tag(addr uint64) cme.Tag { return c.tags[addr] }

// SetTag overwrites a data block's tag (attack injection).
func (c *Controller) SetTag(addr uint64, t cme.Tag) { c.tags[addr] = t }

func (c *Controller) leafOf(addr uint64) (uint64, int) {
	line := addr / nvmem.LineSize
	return line / counter.SplitArity, int(line % counter.SplitArity)
}

func (c *Controller) leafAddr(leaf uint64) uint64 {
	return c.metaBase + leaf*nvmem.LineSize
}

// leafHash hashes a counter block bound to its index.
func (c *Controller) leafHash(i uint64, blk counter.Block) uint64 {
	var msg [72]byte
	copy(msg[:64], blk[:])
	binary.LittleEndian.PutUint64(msg[64:], i)
	c.stats.HashOps++
	return c.cfg.MAC.Sum64(c.cfg.Key, msg[:])
}

func (c *Controller) groupHash(level int, idx uint64) uint64 {
	lo := idx * Arity
	hi := min(lo+Arity, uint64(len(c.levels[level-1])))
	msg := make([]byte, 0, 8*(int(hi-lo)+1))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(level)<<32|idx)
	msg = append(msg, b[:]...)
	for _, h := range c.levels[level-1][lo:hi] {
		binary.LittleEndian.PutUint64(b[:], h)
		msg = append(msg, b[:]...)
	}
	c.stats.HashOps++
	return c.cfg.MAC.Sum64(c.cfg.Key, msg)
}

// updateBranch recomputes the branch from leaf i to the root; strictly
// sequential, the §II-C cost. Returns the charged cycles.
func (c *Controller) updateBranch(i uint64, blk counter.Block) uint64 {
	c.levels[0][i] = c.leafHash(i, blk)
	idx := i
	for l := 1; l < len(c.levels); l++ {
		idx /= Arity
		c.levels[l][idx] = c.groupHash(l, idx)
	}
	c.root = c.levels[len(c.levels)-1][0]
	return uint64(len(c.levels)) * c.cfg.HashCycles
}

// verifyLeaf checks a fetched counter block against the SRAM branch; the
// branch hashes recompute in parallel once the block arrives.
func (c *Controller) verifyLeaf(i uint64, blk counter.Block) (uint64, error) {
	if c.leafHash(i, blk) != c.levels[0][i] {
		return c.cfg.HashCycles, memctrl.TamperAt("BMT counter block", 0, i, "hash mismatch")
	}
	return c.cfg.HashCycles, nil
}

func (c *Controller) rebuildInterior() {
	for l := 1; l < len(c.levels); l++ {
		for idx := range c.levels[l] {
			c.levels[l][idx] = c.groupHash(l, uint64(idx))
		}
	}
}

// fetchLeaf returns the cached counter block for a leaf, loading and
// verifying it on a miss; dirty victims write back (their branch is
// already current — updates are eager).
func (c *Controller) fetchLeaf(leaf uint64) (*cache.Entry[*counter.CME], uint64, error) {
	addr := c.leafAddr(leaf)
	if e, ok := c.meta.Lookup(addr); ok {
		return e, c.cfg.CacheHitCycles, nil
	}
	line, rlat, err := c.dev.Read(c.reqStart, addr, nvmem.ClassMeta)
	if err != nil {
		return nil, rlat, err
	}
	blk := counter.Block(line)
	vcyc, err := c.verifyLeaf(leaf, blk)
	cycles := rlat + vcyc
	if err != nil {
		return nil, cycles, err
	}
	dec := counter.DecodeCME(blk)
	for {
		if live, ok := c.meta.Probe(addr); ok {
			return live, cycles, nil
		}
		e, victim, evicted := c.meta.Insert(addr, &dec, false)
		if !evicted || !victim.Dirty {
			return e, cycles, nil
		}
		blkOut := victim.Payload.Encode()
		cycles += c.dev.MustWrite(c.reqStart+cycles, victim.Addr, nvmem.Line(blkOut), nvmem.ClassMeta)
		c.FaultEvent(memctrl.EvEviction, victim.Addr)
	}
}

func (c *Controller) arrive(gap uint64) {
	c.arrival += gap
	if c.busyUntil > c.cfg.RunAheadCycles && c.arrival < c.busyUntil-c.cfg.RunAheadCycles {
		c.arrival = c.busyUntil - c.cfg.RunAheadCycles
	}
	c.reqStart = max(c.arrival, c.busyUntil)
}

// WriteData encrypts and persists one data block, updating the counter
// block and the full hash branch (eagerly, sequentially).
func (c *Controller) WriteData(gap uint64, addr uint64, data [64]byte) error {
	c.checkAddr(addr)
	if c.crashed {
		return fmt.Errorf("bmtctrl: crashed; recover first")
	}
	c.arrive(gap)
	leaf, slot := c.leafOf(addr)
	e, cycles, err := c.fetchLeaf(leaf)
	if err != nil {
		c.completeWrite(cycles)
		return err
	}
	blk := e.Payload
	if overflow := blk.Increment(slot); overflow {
		rc, rerr := c.reencrypt(leaf, blk, slot)
		cycles += rc
		if rerr != nil {
			c.completeWrite(cycles)
			return rerr
		}
	}
	e.Dirty = true
	cycles += c.updateBranch(leaf, blk.Encode())

	enc := blk.EncCounter(slot)
	ct := data
	c.eng.Apply(&ct, addr, enc)
	c.stats.AESOps++
	c.stats.HashOps++
	tag := c.eng.TagSC(&ct, addr, enc, blk.Major)
	cycles += c.cfg.AESCycles + c.cfg.HashCycles
	cycles += c.dev.MustWrite(c.reqStart+cycles, addr, nvmem.Line(ct), nvmem.ClassData)
	c.tags[addr] = tag
	c.completeWrite(cycles)
	return nil
}

// ReadData fetches, verifies and decrypts one data block.
func (c *Controller) ReadData(gap uint64, addr uint64) ([64]byte, error) {
	c.checkAddr(addr)
	if c.crashed {
		return [64]byte{}, fmt.Errorf("bmtctrl: crashed; recover first")
	}
	c.arrive(gap)
	leaf, slot := c.leafOf(addr)
	e, counterPath, err := c.fetchLeaf(leaf)
	if err != nil {
		c.completeRead(counterPath)
		return [64]byte{}, err
	}
	blk := e.Payload
	enc := blk.EncCounter(slot)
	line, dataLat, err := c.dev.Read(c.reqStart, addr, nvmem.ClassData)
	if err != nil {
		c.completeRead(max(dataLat, counterPath))
		return [64]byte{}, err
	}
	tag := c.tags[addr]
	if !tag.Written {
		cycles := max(dataLat, counterPath)
		c.completeRead(cycles)
		if blk.Minor[slot] != 0 {
			return [64]byte{}, memctrl.TamperData(addr, "live counter but no tag")
		}
		return [64]byte{}, nil
	}
	ct := [64]byte(line)
	c.stats.AESOps++
	c.stats.HashOps++
	cycles := max(dataLat, counterPath+c.cfg.AESCycles) + c.cfg.HashCycles
	if !c.eng.Verify(&ct, addr, enc, tag) {
		c.completeRead(cycles)
		return [64]byte{}, memctrl.TamperData(addr, "HMAC mismatch on read")
	}
	c.eng.Apply(&ct, addr, enc)
	c.completeRead(cycles)
	return ct, nil
}

// reencrypt handles a 7-bit minor overflow: all written covered blocks
// re-encrypt under the bumped major.
func (c *Controller) reencrypt(leaf uint64, blk *counter.CME, skipSlot int) (uint64, error) {
	var cycles uint64
	first := true
	const pipelineGap = 4
	for j := 0; j < counter.SplitArity; j++ {
		if j == skipSlot {
			continue
		}
		daddr := (leaf*counter.SplitArity + uint64(j)) * nvmem.LineSize
		tag := c.tags[daddr]
		if !tag.Written {
			continue
		}
		line, rlat, rerr := c.dev.Read(c.reqStart+cycles, daddr, nvmem.ClassData)
		if rerr != nil {
			return cycles + rlat, rerr
		}
		if first {
			cycles += rlat
			first = false
		} else {
			cycles += pipelineGap
		}
		ct := [64]byte(line)
		// Decrypt under the pre-overflow counter: the major just bumped by
		// one, so the old counter is (major-1)<<7 | old minor, found by
		// checking candidates against the stored tag.
		oldMajor := blk.Major - 1
		var matched bool
		for m := 0; m <= counter.CMEMinorMax; m++ {
			cand := oldMajor<<7 | uint64(m)
			c.stats.HashOps++
			if c.eng.Verify(&ct, daddr, cand, tag) {
				c.eng.Apply(&ct, daddr, cand)
				matched = true
				break
			}
		}
		if !matched {
			return cycles, memctrl.TamperData(daddr, "during BMT re-encryption")
		}
		newCtr := blk.EncCounter(j)
		c.eng.Apply(&ct, daddr, newCtr)
		c.stats.AESOps += 2
		c.stats.HashOps++
		c.tags[daddr] = c.eng.TagSC(&ct, daddr, newCtr, blk.Major)
		cycles += c.dev.MustWrite(c.reqStart+cycles, daddr, nvmem.Line(ct), nvmem.ClassData)
	}
	return cycles, nil
}

func (c *Controller) checkAddr(addr uint64) {
	if addr%nvmem.LineSize != 0 || addr >= c.cfg.DataBytes {
		panic(fmt.Sprintf("bmtctrl: bad data address %#x", addr))
	}
}

func (c *Controller) completeRead(cycles uint64) {
	c.busyUntil = c.reqStart + cycles
	c.stats.DataReads++
	lat := c.busyUntil - c.arrival
	c.stats.ReadLatSum += lat
	c.stats.ReadHist.Add(lat)
	c.FaultEvent(memctrl.EvOpRetired, 0)
}

func (c *Controller) completeWrite(cycles uint64) {
	c.busyUntil = c.reqStart + cycles
	c.stats.DataWrites++
	lat := c.busyUntil - c.arrival
	c.stats.WriteLatSum += lat
	c.stats.WriteHist.Add(lat)
	c.FaultEvent(memctrl.EvOpRetired, 0)
}

// Crash loses the metadata cache and the SRAM hash interior; the root
// register and NVM survive.
func (c *Controller) Crash() {
	c.meta.Clear()
	for l := range c.levels {
		for i := range c.levels[l] {
			c.levels[l][i] = 0
		}
	}
	c.crashed = true
}

// RecoveryReport mirrors the SIT schemes' accounting.
type RecoveryReport struct {
	LeavesRecovered uint64
	NVMReads        uint64
	MACOps          uint64
	TimeNS          float64
}

// Recover rebuilds every counter block from the covered data blocks' tags
// (there is no dirty tracking: like SCUE, the whole leaf level is
// restored), recomputes the interior, and verifies the computed root
// against the surviving register. Cost scales with memory capacity — the
// §II-D reason recovery-aware SIT schemes exist.
func (c *Controller) Recover() (RecoveryReport, error) {
	rep := RecoveryReport{}
	hashesBefore := c.stats.HashOps
	for leaf := uint64(0); leaf < c.leaves; leaf++ {
		rep.NVMReads++ // stale counter block
		stale := counter.DecodeCME(counter.Block(c.dev.Peek(c.leafAddr(leaf))))
		blk, reads, macs, err := c.recoverLeaf(leaf, stale)
		rep.NVMReads += reads
		rep.MACOps += macs
		if err != nil {
			return rep, err
		}
		enc := blk.Encode()
		c.levels[0][leaf] = c.leafHash(leaf, enc)
		c.dev.Poke(c.leafAddr(leaf), nvmem.Line(enc))
		rep.LeavesRecovered++
		c.FaultEvent(memctrl.EvRecoveryStep, c.leafAddr(leaf))
	}
	c.rebuildInterior()
	rep.MACOps += c.stats.HashOps - hashesBefore
	if c.levels[len(c.levels)-1][0] != c.root {
		return rep, memctrl.ReplayAt("BMT root", len(c.levels)-1, 0, "rebuilt root does not match the register")
	}
	c.crashed = false
	rep.TimeNS = float64(rep.NVMReads)*c.cfg.RecoveryReadNS + float64(rep.MACOps)*c.cfg.RecoveryHashNS
	return rep, nil
}

// recoverLeaf restores one counter block from its covered data tags.
func (c *Controller) recoverLeaf(leaf uint64, stale counter.CME) (counter.CME, uint64, uint64, error) {
	blk := counter.CME{Major: stale.Major}
	var reads, macs uint64
	have := false
	for j := 0; j < counter.SplitArity; j++ {
		daddr := (leaf*counter.SplitArity + uint64(j)) * nvmem.LineSize
		reads++
		tag := c.tags[daddr]
		if !tag.Written {
			continue
		}
		if h := tag.Hint >> 7; !have { // CME minors are 7 bits wide
			blk.Major, have = h, true
		} else if h != blk.Major {
			return blk, reads, macs, memctrl.ReplayAt("BMT leaf", 0, leaf, "inconsistent majors")
		}
		ct := [64]byte(c.dev.Peek(daddr))
		found := false
		for m := 0; m <= counter.CMEMinorMax; m++ {
			macs++
			if c.eng.Verify(&ct, daddr, blk.Major<<7|uint64(m), tag) {
				blk.Minor[j] = uint8(m)
				found = true
				break
			}
		}
		if !found {
			return blk, reads, macs, memctrl.TamperData(daddr, "during BMT recovery")
		}
	}
	return blk, reads, macs, nil
}
