package bmtctrl_test

import (
	"errors"
	"testing"

	"steins/internal/bmtctrl"
	"steins/internal/memctrl"
	"steins/internal/rng"
	"steins/internal/scheme/wb"
)

func newBMT(dataBytes uint64) *bmtctrl.Controller {
	cfg := bmtctrl.DefaultConfig(dataBytes)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	return bmtctrl.New(cfg)
}

func pattern(addr uint64, v byte) [64]byte {
	var b [64]byte
	b[0], b[1], b[2] = v, byte(addr>>6), byte(addr>>14)
	return b
}

func TestRoundTrip(t *testing.T) {
	c := newBMT(1 << 20)
	want := pattern(128, 7)
	if err := c.WriteData(10, 128, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadData(10, 128)
	if err != nil || got != want {
		t.Fatalf("round trip: %v", err)
	}
	if got, _ := c.ReadData(1, 4096); got != ([64]byte{}) {
		t.Fatal("unwritten block not zero")
	}
}

func TestChurnRoundTrip(t *testing.T) {
	c := newBMT(1 << 20)
	r := rng.New(3)
	expect := map[uint64][64]byte{}
	for i := 0; i < 5000; i++ {
		addr := r.Uint64n(1<<20/64) * 64
		v := pattern(addr, byte(i))
		if err := c.WriteData(5, addr, v); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		expect[addr] = v
	}
	for addr, want := range expect {
		got, err := c.ReadData(1, addr)
		if err != nil || got != want {
			t.Fatalf("read %#x: %v", addr, err)
		}
	}
}

func TestMinorOverflowReencrypts(t *testing.T) {
	c := newBMT(1 << 20)
	a := pattern(64, 1)
	if err := c.WriteData(0, 64, a); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 130; i++ { // cross the 7-bit minor overflow
		if err := c.WriteData(0, 0, pattern(0, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got, err := c.ReadData(0, 64); err != nil || got != a {
		t.Fatalf("neighbour after overflow: %v", err)
	}
}

func TestTamperDetected(t *testing.T) {
	c := newBMT(1 << 20)
	if err := c.WriteData(0, 256, pattern(256, 5)); err != nil {
		t.Fatal(err)
	}
	line := c.Device().Peek(256)
	line[0] ^= 1
	c.Device().Poke(256, line)
	if _, err := c.ReadData(0, 256); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("tampered read = %v, want ErrTamper", err)
	}
}

func TestTamperedCounterBlockDetected(t *testing.T) {
	c := newBMT(1 << 20)
	r := rng.New(5)
	for i := 0; i < 4000; i++ {
		if err := c.WriteData(5, r.Uint64n(1<<20/64)*64, pattern(0, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper a persisted counter block and force a refetch by churning.
	base := uint64(1 << 20) // metaBase
	var addr uint64
	for leaf := uint64(0); leaf < (1<<20)/64/64; leaf++ {
		a := base + leaf*64
		if c.Device().Peek(a) != ([64]byte{}) {
			addr = a
			break
		}
	}
	if addr == 0 {
		t.Skip("no persisted counter block")
	}
	line := c.Device().Peek(addr)
	line[5] ^= 8
	c.Device().Poke(addr, line)
	// Keep accessing until the tampered block is refetched.
	var sawErr bool
	for i := 0; i < 20000 && !sawErr; i++ {
		_, err := c.ReadData(5, r.Uint64n(1<<20/64)*64)
		if errors.Is(err, memctrl.ErrTamper) {
			sawErr = true
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if !sawErr {
		t.Fatal("tampered counter block never detected")
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	c := newBMT(1 << 20)
	r := rng.New(7)
	expect := map[uint64][64]byte{}
	for i := 0; i < 4000; i++ {
		addr := r.Uint64n(1<<20/64) * 64
		v := pattern(addr, byte(i))
		if err := c.WriteData(5, addr, v); err != nil {
			t.Fatal(err)
		}
		expect[addr] = v
	}
	c.Crash()
	if _, err := c.ReadData(0, 0); err == nil {
		t.Fatal("read allowed while crashed")
	}
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.LeavesRecovered == 0 || rep.TimeNS <= 0 {
		t.Fatalf("empty report %+v", rep)
	}
	for addr, want := range expect {
		got, err := c.ReadData(1, addr)
		if err != nil || got != want {
			t.Fatalf("post-recovery read %#x: %v", addr, err)
		}
	}
}

func TestRecoveryDetectsReplay(t *testing.T) {
	c := newBMT(1 << 20)
	if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	oldLine := c.Device().Peek(0)
	oldTag := c.Tag(0)
	if err := c.WriteData(0, 0, pattern(0, 2)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(0, oldLine)
	c.SetTag(0, oldTag)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) && !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after replay = %v, want integrity error", err)
	}
}

func TestRecoveryScalesWithMemorySize(t *testing.T) {
	// The §II-D motivation: BMT recovery (like SCUE) reads every covered
	// block, scaling with capacity rather than the dirty set.
	reads := map[uint64]uint64{}
	for _, size := range []uint64{1 << 19, 1 << 21} {
		c := newBMT(size)
		if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
			t.Fatal(err)
		}
		c.Crash()
		rep, err := c.Recover()
		if err != nil {
			t.Fatal(err)
		}
		reads[size] = rep.NVMReads
	}
	if reads[1<<21] < reads[1<<19]*3 {
		t.Fatalf("BMT recovery reads %v do not scale with capacity", reads)
	}
}

func TestWriteCostAboveSIT(t *testing.T) {
	// The §II-C claim this substrate exists to demonstrate: BMT's
	// sequential branch update makes writes slower than the SIT lazy
	// scheme under identical traffic.
	run := func(build func() interface {
		WriteData(uint64, uint64, [64]byte) error
		ReadData(uint64, uint64) ([64]byte, error)
	}) (float64, uint64) {
		c := build()
		r := rng.New(9)
		for i := 0; i < 6000; i++ {
			addr := r.Uint64n(1<<20/64) * 64
			if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
				panic(err)
			}
		}
		switch v := c.(type) {
		case *bmtctrl.Controller:
			return v.Stats().AvgWriteLatency(), v.ExecCycles()
		case *memctrl.Controller:
			return v.Stats().AvgWriteLatency(), v.ExecCycles()
		}
		panic("unknown controller")
	}
	bmtLat, _ := run(func() interface {
		WriteData(uint64, uint64, [64]byte) error
		ReadData(uint64, uint64) ([64]byte, error)
	} {
		return newBMT(1 << 20)
	})
	sitLat, _ := run(func() interface {
		WriteData(uint64, uint64, [64]byte) error
		ReadData(uint64, uint64) ([64]byte, error)
	} {
		cfg := memctrl.DefaultConfig(1<<20, true)
		cfg.MetaCacheBytes = 4 << 10
		cfg.MetaCacheWays = 4
		return memctrl.New(cfg, wb.Factory)
	})
	if bmtLat <= sitLat {
		t.Fatalf("BMT write latency %.1f not above SIT %.1f", bmtLat, sitLat)
	}
}
