package counter

import (
	"testing"
	"testing/quick"
)

// --- General node ---------------------------------------------------------

func TestGeneralRoundTrip(t *testing.T) {
	f := func(c [Arity]uint64, hmac uint64) bool {
		var g General
		for i := range c {
			g.C[i] = c[i] & CounterMask
		}
		g.HMAC = hmac
		return DecodeGeneral(g.Encode()) == g
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralSumEq1(t *testing.T) {
	var g General
	for i := 0; i < Arity; i++ {
		g.C[i] = uint64(i + 1)
	}
	if got := g.Sum(); got != 36 { // 1+2+...+8
		t.Fatalf("Sum = %d, want 36", got)
	}
}

func TestGeneralSumWraps56Bits(t *testing.T) {
	var g General
	g.C[0] = CounterMask
	g.C[1] = 1
	if got := g.Sum(); got != 0 {
		t.Fatalf("Sum wrap = %d, want 0", got)
	}
}

func TestGeneralIncrementDelta(t *testing.T) {
	var g General
	before := g.Sum()
	delta, overflow := g.Increment(3)
	if delta != 1 || overflow {
		t.Fatalf("delta=%d overflow=%v", delta, overflow)
	}
	if g.Sum() != before+1 {
		t.Fatal("Sum did not advance by delta")
	}
}

func TestGeneralIncrementOverflow(t *testing.T) {
	var g General
	g.C[0] = CounterMask
	_, overflow := g.Increment(0)
	if !overflow {
		t.Fatal("56-bit wrap not reported")
	}
	if g.C[0] != 0 {
		t.Fatalf("counter after wrap = %d", g.C[0])
	}
}

func TestGeneralMonotonicSum(t *testing.T) {
	// Property: any sequence of increments keeps Sum strictly increasing
	// (absent the 56-bit wrap, unreachable in simulation lifetimes).
	var g General
	prev := g.Sum()
	f := func(idx uint8) bool {
		g.Increment(int(idx) % Arity)
		s := g.Sum()
		ok := s == prev+1
		prev = s
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneralCounterBytesExcludesHMAC(t *testing.T) {
	var a, b General
	a.C[0], b.C[0] = 5, 5
	a.HMAC, b.HMAC = 1, 2
	if a.CounterBytes() != b.CounterBytes() {
		t.Fatal("HMAC leaked into CounterBytes")
	}
}

func TestPut56RejectsWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("encoding 57-bit value did not panic")
		}
	}()
	g := General{C: [Arity]uint64{1 << 56}}
	g.Encode()
}

// --- Split leaf -------------------------------------------------------------

func TestSplitRoundTrip(t *testing.T) {
	f := func(major uint64, minors [SplitArity]uint8, hmac uint64) bool {
		var s Split
		s.Major = major
		for i := range minors {
			s.Minor[i] = minors[i] & MinorMax
		}
		s.HMAC = hmac
		return DecodeSplit(s.Encode()) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitParentEq2(t *testing.T) {
	var s Split
	s.Major = 3
	s.Minor[0], s.Minor[5] = 2, 7
	if got := s.Parent(); got != 3*64+9 {
		t.Fatalf("Parent = %d, want %d", got, 3*64+9)
	}
}

func TestSplitIncrementNormal(t *testing.T) {
	var s Split
	delta, overflow := s.Increment(10)
	if delta != 1 || overflow {
		t.Fatalf("delta=%d overflow=%v, want 1,false", delta, overflow)
	}
	if s.Minor[10] != 1 {
		t.Fatalf("minor = %d", s.Minor[10])
	}
}

func TestSplitIncrementOverflowSkipUpdate(t *testing.T) {
	var s Split
	s.Major = 10
	s.Minor[0] = MinorMax // 63
	s.Minor[1] = 5
	// Overflow: S = 63+5+1 = 69, ceil(69/64) = 2, major 10 -> 12.
	old := s.Parent() // 10*64 + 68 = 708
	delta, overflow := s.Increment(0)
	if !overflow {
		t.Fatal("overflow not reported")
	}
	if s.Major != 12 {
		t.Fatalf("major = %d, want 12 (skip update)", s.Major)
	}
	for i, m := range s.Minor {
		if m != 0 {
			t.Fatalf("minor %d not reset: %d", i, m)
		}
	}
	if got := s.Parent(); got != 12*64 {
		t.Fatalf("parent = %d, want %d", got, 12*64)
	}
	if delta != s.Parent()-old {
		t.Fatalf("delta = %d, want %d", delta, s.Parent()-old)
	}
	if s.Parent() <= old {
		t.Fatal("parent not monotonic across overflow")
	}
}

func TestSplitOverflowAlignsToMinorRange(t *testing.T) {
	// §III-B1: after an overflow the parent counter is aligned upward in
	// multiples of 2^6.
	var s Split
	s.Minor[0] = MinorMax
	s.Increment(0)
	if s.Parent()%MinorRange != 0 {
		t.Fatalf("parent %d not aligned to %d", s.Parent(), MinorRange)
	}
}

func TestSplitCornerCaseMajorPlusTwo(t *testing.T) {
	// §III-B2 corner case: minor sum reaching 2^6+1 right as a minor
	// overflows bumps the major by two.
	var s Split
	s.Minor[0] = MinorMax // 63
	s.Minor[1] = 1
	s.Increment(0) // S = 65, ceil(65/64) = 2
	if s.Major != 2 {
		t.Fatalf("major = %d, want 2", s.Major)
	}
}

func TestSplitParentMonotonicProperty(t *testing.T) {
	var s Split
	prev := s.Parent()
	f := func(idx uint8) bool {
		delta, _ := s.Increment(int(idx) % SplitArity)
		p := s.Parent()
		ok := p > prev && p-prev == delta
		prev = p
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitNaiveParentMonotonicProperty(t *testing.T) {
	var s Split
	prev := s.ParentNaive()
	f := func(idx uint8) bool {
		delta, _ := s.IncrementNaive(int(idx) % SplitArity)
		p := s.ParentNaive()
		ok := p > prev && p-prev == delta
		prev = p
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestSkipUpdateBeatsNaiveHeadroom(t *testing.T) {
	// The design rationale of §III-B1: for the same write sequence the
	// skip-update parent counter stays far below the naive-weight one,
	// reducing overflow probability. Drive one hot minor.
	var skip, naive Split
	for i := 0; i < 64*10; i++ {
		skip.Increment(0)
		naive.IncrementNaive(0)
	}
	if skip.Parent() >= naive.ParentNaive() {
		t.Fatalf("skip parent %d >= naive parent %d", skip.Parent(), naive.ParentNaive())
	}
}

func TestSplitEncCounterUniquePerWrite(t *testing.T) {
	// Every write to block i must yield a fresh (major,minor) encryption
	// counter, including across overflows.
	var s Split
	seen := map[uint64]bool{}
	for w := 0; w < 500; w++ {
		s.Increment(7)
		ec := s.EncCounter(7)
		if seen[ec] {
			t.Fatalf("encryption counter %d reused at write %d", ec, w)
		}
		seen[ec] = true
	}
}

func TestSplitEncCounterAllBlocksDistinctHistory(t *testing.T) {
	// Writes interleaved over multiple blocks: each block's counter stream
	// must be strictly increasing.
	var s Split
	last := map[int]uint64{}
	for w := 0; w < 2000; w++ {
		i := w % 5
		s.Increment(i)
		ec := s.EncCounter(i)
		if prev, ok := last[i]; ok && ec <= prev {
			t.Fatalf("block %d counter not increasing: %d -> %d", i, prev, ec)
		}
		last[i] = ec
	}
}

func TestSplitCounterBytesExcludesHMAC(t *testing.T) {
	var a, b Split
	a.Major, b.Major = 4, 4
	a.HMAC, b.HMAC = 1, 2
	if a.CounterBytes() != b.CounterBytes() {
		t.Fatal("HMAC leaked into CounterBytes")
	}
}

// --- CME block ---------------------------------------------------------------

func TestCMERoundTrip(t *testing.T) {
	f := func(major uint64, minors [SplitArity]uint8) bool {
		var c CME
		c.Major = major
		for i := range minors {
			c.Minor[i] = minors[i] & CMEMinorMax
		}
		return DecodeCME(c.Encode()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCMEOverflow(t *testing.T) {
	var c CME
	c.Minor[0] = CMEMinorMax
	if overflow := c.Increment(0); !overflow {
		t.Fatal("overflow not reported")
	}
	if c.Major != 1 {
		t.Fatalf("major = %d, want 1", c.Major)
	}
	for i, m := range c.Minor {
		if m != 0 {
			t.Fatalf("minor %d not reset", i)
		}
	}
}

func TestCMEEncCounterUnique(t *testing.T) {
	var c CME
	seen := map[uint64]bool{}
	for w := 0; w < 1000; w++ {
		c.Increment(3)
		ec := c.EncCounter(3)
		if seen[ec] {
			t.Fatalf("CME counter reuse at write %d", w)
		}
		seen[ec] = true
	}
}

// --- packing ------------------------------------------------------------------

func TestPackedFieldIsolation(t *testing.T) {
	// Writing one 6-bit field must not disturb neighbours.
	var s Split
	for i := range s.Minor {
		s.Minor[i] = uint8(i % 64)
	}
	b := s.Encode()
	got := DecodeSplit(b)
	got.Minor[31] = 63
	putPacked(b[8:56], 31, MinorBits, 63)
	if DecodeSplit(b) != got {
		t.Fatal("putPacked disturbed neighbouring fields")
	}
}

func TestIndexPanics(t *testing.T) {
	var g General
	var s Split
	var c CME
	for _, f := range []func(){
		func() { g.Increment(Arity) },
		func() { g.Increment(-1) },
		func() { s.Increment(SplitArity) },
		func() { s.EncCounter(-1) },
		func() { c.Increment(SplitArity) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range index did not panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkGeneralEncode(b *testing.B) {
	var g General
	for i := range g.C {
		g.C[i] = uint64(i) * 1234567
	}
	for i := 0; i < b.N; i++ {
		_ = g.Encode()
	}
}

func BenchmarkSplitIncrement(b *testing.B) {
	var s Split
	for i := 0; i < b.N; i++ {
		s.Increment(i % SplitArity)
	}
}

func BenchmarkSplitEncode(b *testing.B) {
	var s Split
	for i := range s.Minor {
		s.Minor[i] = uint8(i % 64)
	}
	for i := 0; i < b.N; i++ {
		_ = s.Encode()
	}
}
