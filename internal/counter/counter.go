// Package counter implements the 64-byte security-metadata codecs of the
// paper: general SIT nodes (8×56-bit counters + 64-bit HMAC, Fig. 3),
// split-counter SIT leaves (64-bit major + 64×6-bit minors + 64-bit HMAC,
// §II-D), and CME split counter blocks (64-bit major + 64×7-bit minors,
// Fig. 1, used by the BMT substrate).
//
// It also implements Steins' parent-counter generation functions: Eq. 1
// (plain sum over a general node's counters) and Eq. 2 (weighted linear
// function over a split leaf) with the skip-update major-counter scheme of
// §III-B1, plus the naive maximum-weight variant the paper rejects, kept
// for the ablation bench.
package counter

import (
	"encoding/binary"
	"fmt"
)

// Geometry constants shared by the tree and controller.
const (
	Arity       = 8         // children per general SIT node
	SplitArity  = 64        // data blocks covered by one split leaf
	CounterBits = 56        // width of a general node counter
	CounterMask = 1<<56 - 1 // value mask of a general node counter
	MinorBits   = 6         // width of a split-leaf minor counter
	MinorMax    = 63        // largest split-leaf minor value
	MinorRange  = 64        // number of values a minor can take (2^6)
	CMEMinorMax = 127       // largest CME (7-bit) minor value
)

// Block is one 64-byte metadata line as stored in NVM.
type Block = [64]byte

// --- General node ------------------------------------------------------------

// General is a decoded general SIT node: eight 56-bit counters, one per
// child, and a 64-bit HMAC over the counters, the node address and the
// parent counter.
type General struct {
	C    [Arity]uint64
	HMAC uint64
}

// DecodeGeneral unpacks a 64-byte line into a General node.
func DecodeGeneral(b Block) General {
	var g General
	// Each counter spans 7 bytes; an 8-byte load at its offset reads one
	// byte of the next field, masked off. The last load (offset 49) still
	// fits inside the 64-byte block.
	for i := 0; i < Arity; i++ {
		g.C[i] = binary.LittleEndian.Uint64(b[i*7:]) & CounterMask
	}
	g.HMAC = binary.LittleEndian.Uint64(b[56:64])
	return g
}

// Encode packs the node into its 64-byte line form.
func (g *General) Encode() Block {
	var b Block
	var or uint64
	// Overlapping 8-byte stores: counter i writes bytes [7i, 7i+8); the
	// top byte is zero (values are 56-bit) and is overwritten by the next
	// counter's low byte, and byte 56 by the HMAC store below.
	for i := 0; i < Arity; i++ {
		or |= g.C[i]
		binary.LittleEndian.PutUint64(b[i*7:], g.C[i]&CounterMask)
	}
	if or > CounterMask {
		panic(fmt.Sprintf("counter: value %#x exceeds 56 bits", or))
	}
	binary.LittleEndian.PutUint64(b[56:64], g.HMAC)
	return b
}

// CounterBytes returns the 56-byte counter region, the message portion of
// the node's HMAC input.
func (g *General) CounterBytes() [56]byte {
	var out [56]byte
	b := g.Encode()
	copy(out[:], b[:56])
	return out
}

// Sum is Eq. 1: the generated parent counter is the plain sum of the
// node's eight counters, reduced to the 56-bit counter domain.
func (g *General) Sum() uint64 {
	var s uint64
	for _, c := range g.C {
		s += c
	}
	return s & CounterMask
}

// Increment bumps counter i by one and returns the change in the node's
// generated parent counter (always 1; a wrap of the 56-bit domain is
// reported by overflow, the 342-685-year corner case of §III-B2 that
// forces re-keying).
func (g *General) Increment(i int) (delta uint64, overflow bool) {
	checkIndex(i, Arity)
	g.C[i] = (g.C[i] + 1) & CounterMask
	return 1, g.C[i] == 0
}

// --- Split leaf ---------------------------------------------------------------

// Split is a decoded split-counter SIT leaf: one 64-bit major counter,
// 64 six-bit minor counters (one per covered data block), and the HMAC.
type Split struct {
	Major uint64
	Minor [SplitArity]uint8
	HMAC  uint64
}

// DecodeSplit unpacks a 64-byte line into a Split leaf.
func DecodeSplit(b Block) Split {
	var s Split
	s.Major = binary.LittleEndian.Uint64(b[0:8])
	unpack6(b[8:56], &s.Minor)
	s.HMAC = binary.LittleEndian.Uint64(b[56:64])
	return s
}

// Encode packs the leaf into its 64-byte line form.
func (s *Split) Encode() Block {
	var b Block
	binary.LittleEndian.PutUint64(b[0:8], s.Major)
	pack6(b[8:56], &s.Minor)
	binary.LittleEndian.PutUint64(b[56:64], s.HMAC)
	return b
}

// CounterBytes returns the 56-byte counter region (major + minors), the
// message portion of the leaf's HMAC input.
func (s *Split) CounterBytes() [56]byte {
	var out [56]byte
	b := s.Encode()
	copy(out[:], b[:56])
	return out
}

// minorSum returns the plain sum of all minor counters.
func (s *Split) minorSum() uint64 {
	var sum uint64
	for _, m := range s.Minor {
		sum += uint64(m)
	}
	return sum
}

// Parent is Eq. 2 with the skip-update weight of §III-B1: the generated
// parent counter is Major·2^6 + Σ minors, reduced to the counter domain.
func (s *Split) Parent() uint64 {
	return (s.Major*MinorRange + s.minorSum()) & CounterMask
}

// Increment bumps minor i, applying the skip-update overflow scheme: when
// the minor would exceed its maximum, the major counter advances by
// ceil(S/2^6) where S is the minor sum including the overflowed counter at
// 2^6, and all minors reset. It returns the parent-counter delta (for LInc
// maintenance) and whether an overflow (hence data re-encryption of all
// covered blocks) occurred.
func (s *Split) Increment(i int) (delta uint64, overflow bool) {
	checkIndex(i, SplitArity)
	if s.Minor[i] < MinorMax {
		// Parent = (Major·2^6 + Σminors) mod 2^56, so a minor bump moves
		// it by exactly 1 — no need to evaluate Eq. 2 twice per write.
		s.Minor[i]++
		return 1, false
	}
	old := s.Parent()
	// Overflow: sum with the overflowing minor counted at 2^6.
	sum := s.minorSum() + 1
	inc := (sum + MinorRange - 1) / MinorRange // ceil(sum / 2^6)
	s.Major += inc
	for j := range s.Minor {
		s.Minor[j] = 0
	}
	return (s.Parent() - old) & CounterMask, true
}

// ParentNaive is the intuitive Eq. 2 weighting the paper rejects: each
// minor weighs 1 and the major weighs the maximum minor sum 2^6·64.
func (s *Split) ParentNaive() uint64 {
	return (s.Major*(MinorRange*SplitArity) + s.minorSum()) & CounterMask
}

// IncrementNaive bumps minor i under the naive scheme: on overflow the
// major advances by exactly one and minors reset. Kept for the §III-B1
// ablation comparing parent-counter headroom.
func (s *Split) IncrementNaive(i int) (delta uint64, overflow bool) {
	checkIndex(i, SplitArity)
	if s.Minor[i] < MinorMax {
		// Minors weigh 1 in ParentNaive, so the delta is exactly 1.
		s.Minor[i]++
		return 1, false
	}
	old := s.ParentNaive()
	s.Major++
	for j := range s.Minor {
		s.Minor[j] = 0
	}
	return (s.ParentNaive() - old) & CounterMask, true
}

// EncCounter returns the encryption counter for covered data block i: the
// major and minor concatenated, unique per write of that block.
func (s *Split) EncCounter(i int) uint64 {
	checkIndex(i, SplitArity)
	return s.Major<<MinorBits | uint64(s.Minor[i])
}

// --- CME split counter block (BMT substrate) ----------------------------------

// CME is the classic split counter block of Fig. 1: a 64-bit major and 64
// seven-bit minors, no embedded HMAC (a BMT hash node protects it).
type CME struct {
	Major uint64
	Minor [SplitArity]uint8
}

// DecodeCME unpacks a 64-byte line into a CME block.
func DecodeCME(b Block) CME {
	var c CME
	c.Major = binary.LittleEndian.Uint64(b[0:8])
	unpack7(b[8:64], &c.Minor)
	return c
}

// Encode packs the block into its 64-byte line form.
func (c *CME) Encode() Block {
	var b Block
	binary.LittleEndian.PutUint64(b[0:8], c.Major)
	pack7(b[8:64], &c.Minor)
	return b
}

// Increment bumps minor i classically: on overflow the major advances by
// one and all minors reset, forcing re-encryption of covered blocks.
func (c *CME) Increment(i int) (overflow bool) {
	checkIndex(i, SplitArity)
	if c.Minor[i] < CMEMinorMax {
		c.Minor[i]++
		return false
	}
	c.Major++
	for j := range c.Minor {
		c.Minor[j] = 0
	}
	return true
}

// EncCounter returns the encryption counter for covered block i.
func (c *CME) EncCounter(i int) uint64 {
	checkIndex(i, SplitArity)
	return c.Major<<7 | uint64(c.Minor[i])
}

// --- packing helpers -----------------------------------------------------------

func checkIndex(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("counter: index %d out of range [0,%d)", i, n))
	}
}

// pack6 packs 64 six-bit minors into 48 bytes, 24 aligned bits (four
// fields, three bytes) at a time. The layout is the LSB-first bitstream
// of putPacked: field i occupies bits [6i, 6i+6), bit k living in byte
// k/8 at position k%8.
func pack6(dst []byte, m *[SplitArity]uint8) {
	_ = dst[47]
	var or uint8
	for g := 0; g < SplitArity/4; g++ {
		or |= m[4*g] | m[4*g+1] | m[4*g+2] | m[4*g+3]
		v := uint32(m[4*g]) | uint32(m[4*g+1])<<6 | uint32(m[4*g+2])<<12 | uint32(m[4*g+3])<<18
		dst[3*g] = byte(v)
		dst[3*g+1] = byte(v >> 8)
		dst[3*g+2] = byte(v >> 16)
	}
	if or > MinorMax {
		panic(fmt.Sprintf("counter: value %d exceeds %d bits", or, MinorBits))
	}
}

// unpack6 is the inverse of pack6.
func unpack6(src []byte, m *[SplitArity]uint8) {
	_ = src[47]
	for g := 0; g < SplitArity/4; g++ {
		v := uint32(src[3*g]) | uint32(src[3*g+1])<<8 | uint32(src[3*g+2])<<16
		m[4*g] = uint8(v & MinorMax)
		m[4*g+1] = uint8(v >> 6 & MinorMax)
		m[4*g+2] = uint8(v >> 12 & MinorMax)
		m[4*g+3] = uint8(v >> 18 & MinorMax)
	}
}

// pack7 packs 64 seven-bit minors into 56 bytes, 56 aligned bits (eight
// fields, seven bytes) at a time, same bitstream layout as putPacked.
func pack7(dst []byte, m *[SplitArity]uint8) {
	_ = dst[55]
	var or uint8
	for g := 0; g < SplitArity/8; g++ {
		var v uint64
		for j := 0; j < 8; j++ {
			or |= m[8*g+j]
			v |= uint64(m[8*g+j]) << uint(7*j)
		}
		off := 7 * g
		dst[off] = byte(v)
		dst[off+1] = byte(v >> 8)
		dst[off+2] = byte(v >> 16)
		dst[off+3] = byte(v >> 24)
		dst[off+4] = byte(v >> 32)
		dst[off+5] = byte(v >> 40)
		dst[off+6] = byte(v >> 48)
	}
	if or > CMEMinorMax {
		panic(fmt.Sprintf("counter: value %d exceeds 7 bits", or))
	}
}

// unpack7 is the inverse of pack7.
func unpack7(src []byte, m *[SplitArity]uint8) {
	_ = src[55]
	for g := 0; g < SplitArity/8; g++ {
		off := 7 * g
		v := uint64(src[off]) | uint64(src[off+1])<<8 | uint64(src[off+2])<<16 |
			uint64(src[off+3])<<24 | uint64(src[off+4])<<32 | uint64(src[off+5])<<40 |
			uint64(src[off+6])<<48
		for j := 0; j < 8; j++ {
			m[8*g+j] = uint8(v >> uint(7*j) & CMEMinorMax)
		}
	}
}

// get56 reads the i-th 56-bit little-endian counter from the block head.
func get56(b []byte, i int) uint64 {
	off := i * 7
	var v uint64
	for j := 6; j >= 0; j-- {
		v = v<<8 | uint64(b[off+j])
	}
	return v
}

// put56 writes the i-th 56-bit little-endian counter into the block head.
func put56(b []byte, i int, v uint64) {
	if v > CounterMask {
		panic(fmt.Sprintf("counter: value %#x exceeds 56 bits", v))
	}
	off := i * 7
	for j := 0; j < 7; j++ {
		b[off+j] = byte(v >> (8 * uint(j)))
	}
}

// getPacked reads the i-th width-bit field from a packed bit array.
func getPacked(b []byte, i, width int) uint8 {
	bit := i * width
	var v uint16
	for j := 0; j < width; j++ {
		byteIdx, bitIdx := (bit+j)/8, uint(bit+j)%8
		v |= uint16(b[byteIdx]>>bitIdx&1) << uint(j)
	}
	return uint8(v)
}

// putPacked writes the i-th width-bit field into a packed bit array.
func putPacked(b []byte, i, width int, v uint8) {
	if int(v) >= 1<<uint(width) {
		panic(fmt.Sprintf("counter: value %d exceeds %d bits", v, width))
	}
	bit := i * width
	for j := 0; j < width; j++ {
		byteIdx, bitIdx := (bit+j)/8, uint(bit+j)%8
		if v>>uint(j)&1 == 1 {
			b[byteIdx] |= 1 << bitIdx
		} else {
			b[byteIdx] &^= 1 << bitIdx
		}
	}
}
