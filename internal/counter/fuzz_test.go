package counter

import (
	"bytes"
	"testing"
)

// FuzzGeneralRoundTrip checks that decode(encode(x)) is the identity for
// arbitrary 64-byte lines interpreted as general nodes.
func FuzzGeneralRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	seed := make([]byte, 64)
	for i := range seed {
		seed[i] = byte(i * 7)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 64 {
			return
		}
		var b Block
		copy(b[:], raw)
		g := DecodeGeneral(b)
		if got := g.Encode(); got != b {
			t.Fatalf("general round trip changed bytes:\n%x\n%x", b, got)
		}
	})
}

// FuzzSplitRoundTrip checks the split-leaf codec the same way.
func FuzzSplitRoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 64 {
			return
		}
		var b Block
		copy(b[:], raw)
		s := DecodeSplit(b)
		if got := s.Encode(); got != b {
			t.Fatalf("split round trip changed bytes:\n%x\n%x", b, got)
		}
	})
}

// FuzzSplitIncrementMonotone drives random increment sequences and checks
// the Eq. 2 parent value never regresses and always matches the reported
// delta.
func FuzzSplitIncrementMonotone(f *testing.F) {
	f.Add([]byte{0, 1, 2, 63})
	f.Fuzz(func(t *testing.T, idxs []byte) {
		var s Split
		prev := s.Parent()
		for _, raw := range idxs {
			delta, _ := s.Increment(int(raw) % SplitArity)
			p := s.Parent()
			if p <= prev || p-prev != delta {
				t.Fatalf("parent %d -> %d (delta %d) not monotone-consistent", prev, p, delta)
			}
			prev = p
		}
	})
}

func FuzzCMERoundTrip(f *testing.F) {
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 64 {
			return
		}
		var b Block
		copy(b[:], raw)
		c := DecodeCME(b)
		if got := c.Encode(); !bytes.Equal(got[:], b[:]) {
			t.Fatalf("CME round trip changed bytes")
		}
	})
}
