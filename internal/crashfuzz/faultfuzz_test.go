package crashfuzz

import (
	"testing"

	"steins/internal/nvmem"
)

// faultCfg is the shared small-footprint base for the fault sweeps.
func faultCfg(scheme string, seed uint64, faults nvmem.FaultConfig) FaultFuzzConfig {
	return FaultFuzzConfig{
		Config: Config{
			Scheme:         scheme,
			Workload:       "pers_queue",
			Seed:           seed,
			Crashes:        4,
			OpsPerRound:    150,
			FootprintBytes: 256 << 10,
		},
		Faults: faults,
	}
}

// TestFaultFuzzAllSchemes runs every scheme under the full media-fault
// model — transient flips (some uncorrectable), sticky stuck-at cells and
// torn crash writes — and demands zero silent corruptions: each datum
// reads back correct or fails with a structured media/integrity verdict.
func TestFaultFuzzAllSchemes(t *testing.T) {
	faults := nvmem.FaultConfig{
		TransientPerRead: 0.002,
		DoubleBitFrac:    0.25,
		StuckPerWrite:    1e-4,
		TornOnCrash:      0.25,
	}
	var flips uint64
	for i, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			rep, err := RunFaults(faultCfg(scheme, 100+uint64(i), faults))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Ops == 0 {
				t.Fatal("no operations driven")
			}
			// A torn metadata write may legitimately end the run early with
			// a rejection; the fault model still must have fired somewhere.
			if rep.Media == (nvmem.FaultCounters{}) {
				t.Fatalf("fault model never fired: %+v", rep.Media)
			}
			flips += rep.Media.TransientFlips
			t.Log(rep.String())
		})
	}
	if flips == 0 {
		t.Fatal("no scheme ever drew a transient flip")
	}
}

// TestFaultFuzzEccDisabled removes the SECDED layer so corrupted lines
// return silently from the device; the cryptographic integrity machinery
// must then be the backstop against silent corruption.
func TestFaultFuzzEccDisabled(t *testing.T) {
	faults := nvmem.FaultConfig{TransientPerRead: 0.001, DoubleBitFrac: 0.25}
	for i, scheme := range []string{"steins-gc", "steins-sc", "bmt"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := faultCfg(scheme, 200+uint64(i), faults)
			cfg.DisableECC = true
			rep, err := RunFaults(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep.String())
		})
	}
}

// TestFaultFuzzDegradedSteinsHeals bit-flips persisted interior nodes at
// every crash with the fault model otherwise off. Steins' degraded
// recovery must absorb the damage — healing from verified children or
// quarantining — with zero silent corruptions; across the run at least
// one node must actually have been healed in place.
func TestFaultFuzzDegradedSteinsHeals(t *testing.T) {
	for i, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := faultCfg(scheme, 300+uint64(i), nvmem.FaultConfig{})
			// pers_hash scatters accesses so dirty interior nodes actually
			// evict to NVM — pers_queue persists too few to corrupt — and
			// the 1 MB footprint keeps an interior level even under the
			// shallower split-leaf geometry.
			cfg.Workload = "pers_hash"
			cfg.FootprintBytes = 1 << 20
			cfg.Crashes = 6
			cfg.OpsPerRound = 300
			cfg.CorruptNodes = 3
			cfg.Degraded = true
			rep, err := RunFaults(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if rep.NodesCorrupted == 0 {
				t.Fatal("no interior nodes were corrupted")
			}
			if rep.Healed == 0 {
				t.Fatalf("no corrupted node was healed: %s", rep.String())
			}
			t.Log(rep.String())
		})
	}
}

// TestFaultFuzzDegradedOtherSchemes drives the quarantine-only degraded
// paths: the non-Steins schemes cannot heal interior damage, so they must
// fence it off (or reject the state outright) without silent corruption.
func TestFaultFuzzDegradedOtherSchemes(t *testing.T) {
	for i, scheme := range []string{"asit", "star", "scue"} {
		t.Run(scheme, func(t *testing.T) {
			cfg := faultCfg(scheme, 400+uint64(i), nvmem.FaultConfig{})
			cfg.Workload = "pers_hash"
			cfg.CorruptNodes = 1
			cfg.Degraded = true
			rep, err := RunFaults(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Log(rep.String())
		})
	}
}

// TestFaultFuzzDeterministic pins the report (counters included) to the
// seed: two identical runs must agree field for field.
func TestFaultFuzzDeterministic(t *testing.T) {
	faults := nvmem.FaultConfig{TransientPerRead: 0.002, DoubleBitFrac: 0.3, StuckPerWrite: 1e-4, TornOnCrash: 1}
	a, err := RunFaults(faultCfg("steins-gc", 7, faults))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFaults(faultCfg("steins-gc", 7, faults))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
