package crashfuzz

import (
	"errors"
	"strings"
	"testing"

	"steins/internal/memctrl"
)

// sweepCfg keeps sweep iterations fast: a 512 KB footprint behind the
// 4 KB metadata cache, a short op window, full differential readback.
// pers_queue exercises the paper's persistent-queue pattern; pers_hash's
// scattered accesses generate the eviction churn the queue lacks.
func sweepCfg(scheme, workload string, seed uint64) Config {
	return Config{
		Scheme:         scheme,
		Workload:       workload,
		Seed:           seed,
		OpsPerRound:    250,
		FootprintBytes: 512 << 10,
	}
}

// sweep crashes at event ordinals 1..max of one class, requiring at least
// minReached of them to exist inside the op window so the sweep is not
// vacuous.
func sweep(t *testing.T, scheme, workload string, ev memctrl.Event, max, minReached int) {
	t.Helper()
	reached := 0
	for n := 1; n <= max; n++ {
		ok, err := CrashAt(sweepCfg(scheme, workload, uint64(n)), ev, uint64(n))
		if err != nil {
			t.Fatalf("%s: crash at %v #%d: %v", scheme, ev, n, err)
		}
		if ok {
			reached++
		}
	}
	if reached < minReached {
		t.Fatalf("%s: only %d/%d crash points at %v were reachable", scheme, reached, max, ev)
	}
}

// TestSweepEveryNthWrite crashes the Steins variants at every Nth durable
// NVM line write over a short pers_queue trace.
func TestSweepEveryNthWrite(t *testing.T) {
	for _, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) { sweep(t, scheme, "pers_queue", memctrl.EvLineWrite, 40, 35) })
	}
}

// TestSweepEveryNthEviction crashes at every Nth completed dirty
// metadata-cache eviction.
func TestSweepEveryNthEviction(t *testing.T) {
	for _, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) { sweep(t, scheme, "pers_hash", memctrl.EvEviction, 12, 8) })
	}
}

// TestSweepEveryNthRecordAppend crashes at every Nth committed offset
// record entry (Steins' dirty tracking).
func TestSweepEveryNthRecordAppend(t *testing.T) {
	for _, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) { sweep(t, scheme, "pers_hash", memctrl.EvRecordAppend, 25, 20) })
	}
}

// TestSweepMidRecoveryRecrash aborts the recovery pass at each of its
// first steps and requires the restarted recovery to succeed from that
// prefix.
func TestSweepMidRecoveryRecrash(t *testing.T) {
	for _, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) { sweep(t, scheme, "pers_hash", memctrl.EvRecoveryStep, 20, 15) })
	}
}

// TestTortureAllSchemes runs a short randomized torture round set over
// every scheme, including mid-recovery re-crashes.
func TestTortureAllSchemes(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{
				Scheme:         scheme,
				Workload:       "pers_queue",
				Seed:           3,
				Crashes:        15,
				OpsPerRound:    250,
				FootprintBytes: 128 << 10,
				RecrashEvery:   3,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.TotalCrashes() == 0 {
				t.Fatalf("no crash committed: %v", &rep)
			}
		})
	}
}

// TestTortureHashWorkload exercises the eviction-heavy pers_hash pattern
// on the Steins variants, where metadata locality is poor.
func TestTortureHashWorkload(t *testing.T) {
	for _, scheme := range []string{"steins-gc", "steins-sc"} {
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Config{
				Scheme:         scheme,
				Workload:       "pers_hash",
				Seed:           11,
				Crashes:        25,
				OpsPerRound:    250,
				FootprintBytes: 512 << 10,
				RecrashEvery:   4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashes[memctrl.EvEviction] == 0 {
				t.Fatalf("pers_hash never crashed at an eviction: %v", &rep)
			}
		})
	}
}

// TestTornWriteDetected is the per-scheme torn-window regression: under a
// pinned seed, a line corrupted at the crash point must be caught by
// recovery or read-back, never silently accepted.
func TestTornWriteDetected(t *testing.T) {
	for _, scheme := range SchemeNames() {
		t.Run(scheme, func(t *testing.T) {
			t.Parallel()
			rep, err := TornWrite(Config{
				Scheme:         scheme,
				Workload:       "pers_queue",
				Seed:           5,
				OpsPerRound:    250,
				FootprintBytes: 128 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.DetectedBy == "" || rep.Err == nil {
				t.Fatalf("torn write not detected: %v", rep)
			}
		})
	}
}

// TestRunDeterministic re-runs the same seed and requires an identical
// report, so a printed failure seed really does replay the failure.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		Scheme:         "steins-sc",
		Workload:       "pers_queue",
		Seed:           9,
		Crashes:        8,
		OpsPerRound:    250,
		FootprintBytes: 128 << 10,
		RecrashEvery:   3,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n  %v\n  %v", &a, &b)
	}
}

// TestVerifySampleBounds checks the sampled readback path.
func TestVerifySampleBounds(t *testing.T) {
	rep, err := Run(Config{
		Scheme:         "steins-gc",
		Workload:       "pers_queue",
		Seed:           4,
		Crashes:        6,
		OpsPerRound:    250,
		FootprintBytes: 128 << 10,
		VerifySample:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinesVerified == 0 {
		t.Fatalf("sampled run verified nothing: %v", &rep)
	}
}

// TestUnknownInputs checks the error paths callers hit first.
func TestUnknownInputs(t *testing.T) {
	if _, err := Run(Config{Scheme: "nope", Workload: "pers_queue", Crashes: 1}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := Run(Config{Scheme: "steins-gc", Workload: "nope", Crashes: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := NewSystem("nope", 1<<20); err == nil {
		t.Fatal("NewSystem accepted unknown scheme")
	}
}

// TestFailureError checks the reproduction line a failure prints.
func TestFailureError(t *testing.T) {
	f := &Failure{Scheme: "steins-sc", Workload: "pers_queue", Seed: 1, Round: 3,
		Point: CrashPoint{Event: memctrl.EvEviction, Index: 7}, Detail: "boom"}
	var err error = f
	var asFailure *Failure
	if !errors.As(err, &asFailure) {
		t.Fatal("Failure does not unwrap")
	}
	for _, want := range []string{"-seed 1", "eviction #7", "round 3", "boom"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("failure message %q missing %q", err.Error(), want)
		}
	}
}
