package crashfuzz

import (
	"errors"
	"fmt"
	"sort"

	"steins/internal/attack"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
	"steins/internal/trace"
)

// FaultFuzzConfig parameterises one differential media-fault run: the base
// crash-fuzz knobs plus the device fault model and the recovery-hardening
// switches under test.
type FaultFuzzConfig struct {
	Config
	// Faults is the device media-fault model (transient flips, stuck cells,
	// torn crash writes). A zero Seed inherits the run seed.
	Faults nvmem.FaultConfig
	// DisableECC removes the SECDED layer: corrupted lines return silently
	// and only the cryptographic integrity machinery may catch them.
	DisableECC bool
	// CorruptNodes flips one bit in that many populated interior SIT node
	// lines after every crash, modelling metadata media damage discovered at
	// recovery time. Pair it with Degraded so recovery can heal or
	// quarantine instead of rejecting outright.
	CorruptNodes int
	// ReplayLeaves restores that many authentic-stale (ciphertext, tag)
	// pairs after every crash — the §II-A replay attacker striking while
	// media damage heals around it. Strict recovery detects the regression
	// through the exact trust-base equalities; degraded recovery must
	// arbitrate it to a replay-shaped quarantine, never forgive it.
	ReplayLeaves int
	// Degraded enables the controllers' degraded-recovery mode (heal from
	// children where the scheme supports it, quarantine otherwise).
	Degraded bool
}

// FaultReport summarises a differential media-fault run. The invariant the
// run enforces is printed nowhere because it never varies: zero silent
// corruptions — every datum either reads back to its last-persisted value
// or fails with a structured media/integrity error.
type FaultReport struct {
	Scheme, Workload string
	Seed             uint64
	Rounds           int
	Ops              uint64

	WriteFaults uint64 // runtime writes rejected with a structured error
	ReadFaults  uint64 // runtime reads rejected with a structured error

	LinesVerified uint64 // post-recovery readback checks that returned data
	MediaLost     uint64 // readbacks failing with a structured media fault
	IntegrityLost uint64 // readbacks failing with a tamper/replay violation

	NodesCorrupted     int    // interior node lines bit-flipped at crashes
	LeavesReplayed     int    // authentic-stale data lines restored at crashes
	Healed             int    // nodes degraded recovery healed in place
	Quarantined        int    // subtree roots degraded recovery fenced off
	DataLossBoundBytes uint64 // summed quarantine coverage

	// RecoveryRejected is set when a recovery refused the (genuinely
	// damaged) state instead of degrading; the run ends there. Detection is
	// a correct outcome, not a failure — but it bounds the rounds covered.
	RecoveryRejected string

	Media nvmem.FaultCounters // device-side fault activity
}

func (r *FaultReport) String() string {
	s := fmt.Sprintf("%s/%s seed=%d: %d rounds, %d ops, faults r/w %d/%d, verified %d (media lost %d, integrity lost %d)",
		r.Scheme, r.Workload, r.Seed, r.Rounds, r.Ops,
		r.ReadFaults, r.WriteFaults, r.LinesVerified, r.MediaLost, r.IntegrityLost)
	if r.NodesCorrupted > 0 || r.LeavesReplayed > 0 || r.Healed > 0 || r.Quarantined > 0 {
		s += fmt.Sprintf("; corrupted %d nodes, replayed %d lines → healed %d, quarantined %d (loss bound %d B)",
			r.NodesCorrupted, r.LeavesReplayed, r.Healed, r.Quarantined, r.DataLossBoundBytes)
	}
	if r.RecoveryRejected != "" {
		s += "; recovery rejected damaged state: " + r.RecoveryRejected
	}
	return s
}

// structuredMedia reports whether err is a classified media failure: a
// controller media fault (retry budget exhausted or quarantined) or a raw
// detected-uncorrectable device error.
func structuredMedia(err error) bool {
	return errors.Is(err, memctrl.ErrMediaFault) || errors.Is(err, nvmem.ErrUncorrectable)
}

// structuredIntegrity reports whether err is a cryptographic integrity
// verdict (tamper or replay violation).
func structuredIntegrity(err error) bool {
	return errors.Is(err, memctrl.ErrTamper) || errors.Is(err, memctrl.ErrReplay)
}

// faultFuzzer carries the per-run state of one differential media-fault
// torture loop.
type faultFuzzer struct {
	cfg    FaultFuzzConfig
	sys    System
	r      *rng.Source
	gen    *trace.Generator
	shadow map[uint64][64]byte // last successfully persisted plaintext
	seq    uint64
	rep    FaultReport
}

// RunFaults drives the differential media-fault mode: the workload runs
// over a device with the configured fault model, crashes are taken at
// round boundaries (tearing the in-flight write per the model and
// optionally bit-flipping persisted interior nodes), recovery runs in the
// configured mode, and every line the shadow model holds is read back.
//
// The verdict is binary and the only way to fail: a read that returns
// WRONG data without an error, or an error that is neither a structured
// media fault nor an integrity violation, comes back as a *Failure with
// the reproducing seed. Detected losses (quarantined or escalated lines)
// and outright recovery rejections are legitimate outcomes and are only
// counted in the report.
func RunFaults(cfg FaultFuzzConfig) (FaultReport, error) {
	cfg.setDefaults()
	if cfg.Faults.Seed == 0 {
		cfg.Faults.Seed = cfg.Seed
	}
	prof, ok := trace.ByName(cfg.Workload)
	if !ok {
		return FaultReport{}, fmt.Errorf("crashfuzz: unknown workload %q", cfg.Workload)
	}
	prof.FootprintBytes = cfg.FootprintBytes
	sys, err := NewSystemWith(cfg.Scheme, cfg.FootprintBytes, SysOptions{
		Faults:     cfg.Faults,
		DisableECC: cfg.DisableECC,
		Degraded:   cfg.Degraded,
	})
	if err != nil {
		return FaultReport{}, err
	}
	f := &faultFuzzer{
		cfg:    cfg,
		sys:    sys,
		r:      rng.New(cfg.Seed),
		gen:    trace.New(prof, cfg.Seed, (cfg.Crashes+1)*cfg.OpsPerRound),
		shadow: make(map[uint64][64]byte),
		rep:    FaultReport{Scheme: sys.Name(), Workload: cfg.Workload, Seed: cfg.Seed},
	}
	for round := 0; round < cfg.Crashes; round++ {
		f.rep.Rounds++
		done, err := f.round(round)
		if err != nil {
			f.rep.Media = f.sys.Device().Stats().Faults
			return f.rep, err
		}
		if done {
			break
		}
		if round%10 == 9 {
			cfg.Logf("fault round %d/%d: %s", round+1, cfg.Crashes, f.rep.String())
		}
	}
	f.rep.Media = f.sys.Device().Stats().Faults
	return f.rep, nil
}

// round drives one op window, crashes, corrupts, recovers and verifies.
// done=true ends the run early (recovery rejected the damaged state).
func (f *faultFuzzer) round(round int) (bool, error) {
	for ops := 0; ops < f.cfg.OpsPerRound; ops++ {
		op, more := f.gen.Next()
		if !more {
			break
		}
		if err := f.drive(round, op); err != nil {
			return false, err
		}
		f.rep.Ops++
	}

	replays, err := f.armReplays(round)
	if err != nil {
		return false, err
	}

	f.sys.Crash()
	if f.cfg.CorruptNodes > 0 {
		if c, ok := f.sys.(interface {
			corruptInteriorNodes(*rng.Source, int) int
		}); ok {
			f.rep.NodesCorrupted += c.corruptInteriorNodes(f.r, f.cfg.CorruptNodes)
		}
	}
	if len(replays) > 0 {
		ctl := f.sys.(interface{ controller() *memctrl.Controller }).controller()
		for _, p := range replays {
			attack.Inject(ctl, attack.ReplayData, p.addr, p.mat)
			f.rep.LeavesReplayed++
		}
	}

	var rerr error
	if dr, ok := f.sys.(interface {
		recoverFull() (memctrl.RecoveryReport, error)
	}); ok {
		var rrep memctrl.RecoveryReport
		rrep, rerr = dr.recoverFull()
		if rerr == nil {
			f.rep.Healed += len(rrep.Degradation.Healed)
			f.rep.Quarantined += len(rrep.Degradation.Quarantined)
			f.rep.DataLossBoundBytes += rrep.Degradation.DataLossBoundBytes
		}
	} else {
		rerr = f.sys.Recover()
	}
	if rerr != nil {
		// Refusing genuinely damaged state is detection, not failure — but
		// the error must still be a classified verdict, and the run cannot
		// continue past an unrecovered controller.
		if !structuredMedia(rerr) && !structuredIntegrity(rerr) {
			return true, f.failAt(round, fmt.Sprintf("recovery failed with an unclassified error: %v", rerr))
		}
		f.rep.RecoveryRejected = rerr.Error()
		return true, nil
	}
	return false, f.verify(round)
}

// replayPlan is one armed replay: material captured from the device before
// a staling write, ready to restore after the crash.
type replayPlan struct {
	addr uint64
	mat  attack.Material
}

// armReplays captures authentic-stale replay material for ReplayLeaves
// shadowed lines and advances each target past the captured state with one
// extra write, so by crash time the material is genuinely stale — exactly
// what the §II-A replay attacker holds. Runs before the crash; the plans
// are injected after it.
func (f *faultFuzzer) armReplays(round int) ([]replayPlan, error) {
	if f.cfg.ReplayLeaves <= 0 || len(f.shadow) == 0 {
		return nil, nil
	}
	ctl, ok := f.sys.(interface{ controller() *memctrl.Controller })
	if !ok {
		return nil, nil // BMT reference system: no tag plane to capture
	}
	addrs := make([]uint64, 0, len(f.shadow))
	for addr := range f.shadow {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	var plans []replayPlan
	for i := 0; i < f.cfg.ReplayLeaves; i++ {
		addr := addrs[f.r.Intn(len(addrs))]
		mat := attack.Capture(ctl.controller(), addr)
		if err := f.drive(round, trace.Op{Addr: addr, IsWrite: true, Gap: 1}); err != nil {
			return nil, err
		}
		if _, held := f.shadow[addr]; !held {
			continue // staling write was rejected; nothing stale to replay
		}
		plans = append(plans, replayPlan{addr: addr, mat: mat})
	}
	return plans, nil
}

// drive executes one request. Structured media rejections are tolerated
// (the shadow is only updated on success); anything else fails the run.
func (f *faultFuzzer) drive(round int, op trace.Op) error {
	f.seq++
	if op.IsWrite {
		data := payload(op.Addr, f.seq)
		err := f.sys.WriteData(op.Gap, op.Addr, data)
		if err == nil {
			f.shadow[op.Addr] = data
			return nil
		}
		if structuredMedia(err) || structuredIntegrity(err) {
			// A failed write may have landed partially; its line can no
			// longer be trusted to hold either value, so drop it from the
			// differential set rather than assert a value we cannot know.
			delete(f.shadow, op.Addr)
			f.rep.WriteFaults++
			return nil
		}
		return f.failAt(round, fmt.Sprintf("write %#x rejected with an unclassified error: %v", op.Addr, err))
	}
	got, err := f.sys.ReadData(op.Gap, op.Addr)
	if err != nil {
		if structuredMedia(err) || structuredIntegrity(err) {
			f.rep.ReadFaults++
			return nil
		}
		return f.failAt(round, fmt.Sprintf("read %#x rejected with an unclassified error: %v", op.Addr, err))
	}
	if want, written := f.shadow[op.Addr]; written && got != want {
		return f.failAt(round, fmt.Sprintf("SILENT CORRUPTION: runtime read %#x returned wrong data", op.Addr))
	}
	return nil
}

// verify reads back every shadowed line after a recovery: each must return
// its last-persisted value or fail with a structured verdict.
func (f *faultFuzzer) verify(round int) error {
	addrs := make([]uint64, 0, len(f.shadow))
	for addr := range f.shadow {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	if n := f.cfg.VerifySample; n > 0 && len(addrs) > n {
		// Deterministic sample; the fault stream advances per read, so the
		// subset must come from the run RNG, not map order.
		for i := len(addrs) - 1; i > 0; i-- {
			j := f.r.Intn(i + 1)
			addrs[i], addrs[j] = addrs[j], addrs[i]
		}
		addrs = addrs[:n]
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	}
	for _, addr := range addrs {
		got, err := f.sys.ReadData(1, addr)
		if err != nil {
			switch {
			case structuredMedia(err):
				f.rep.MediaLost++
			case structuredIntegrity(err):
				f.rep.IntegrityLost++
			default:
				return f.failAt(round, fmt.Sprintf("post-recovery read %#x rejected with an unclassified error: %v", addr, err))
			}
			continue
		}
		f.rep.LinesVerified++
		if got != f.shadow[addr] {
			return f.failAt(round, fmt.Sprintf("SILENT CORRUPTION: post-recovery read %#x returned wrong data", addr))
		}
	}
	return nil
}

func (f *faultFuzzer) failAt(round int, detail string) error {
	return &Failure{
		Scheme:   f.cfg.Scheme,
		Workload: f.cfg.Workload,
		Seed:     f.cfg.Seed,
		Round:    round,
		Detail:   detail,
	}
}
