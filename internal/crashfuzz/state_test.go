package crashfuzz

import (
	"errors"
	"testing"

	"steins/internal/snapshot"
)

// TestCampaignResumeMatchesStraight interrupts a checkpointed campaign
// after two crash rounds, resumes it from the snapshot in a rebuilt
// fuzzer, and requires the final report to be identical to the same
// campaign run straight through — RNG stream, trace position, shadow
// model, event-rate calibration and controller state all round-tripped.
func TestCampaignResumeMatchesStraight(t *testing.T) {
	t.Parallel()
	base := Config{
		Scheme:       "steins-gc",
		Workload:     "pers_queue",
		Seed:         5,
		Crashes:      6,
		OpsPerRound:  150,
		RecrashEvery: 3,
	}
	straight, err := Run(base)
	if err != nil {
		t.Fatalf("straight campaign: %v", err)
	}

	path := t.TempDir() + "/campaign.snap"
	short := base
	short.Crashes = 2
	if _, err := RunCheckpointed(short, path); err != nil {
		t.Fatalf("checkpointed prefix: %v", err)
	}
	// Extend the interrupted campaign to the full length and resume.
	st, err := ReadCampaign(path)
	if err != nil {
		t.Fatalf("read campaign: %v", err)
	}
	if st.RoundsDone != 2 {
		t.Fatalf("snapshot records %d rounds done, want 2", st.RoundsDone)
	}
	st.Crashes = base.Crashes
	if err := WriteCampaign(path, st); err != nil {
		t.Fatalf("rewrite campaign: %v", err)
	}
	resumed, err := ResumeCheckpointed(path, nil)
	if err != nil {
		t.Fatalf("resume campaign: %v", err)
	}
	if resumed != straight {
		t.Fatalf("resumed campaign diverges from straight run\nstraight %+v\nresumed  %+v", straight, resumed)
	}
}

// TestCampaignSnapshotRejectsBMT documents the support boundary: the BMT
// baseline controller has no state capture, so checkpointing fails loudly
// instead of writing a partial snapshot.
func TestCampaignSnapshotRejectsBMT(t *testing.T) {
	t.Parallel()
	cfg := Config{Scheme: "bmt", Workload: "pers_queue", Seed: 1, Crashes: 1, OpsPerRound: 50}
	if _, err := RunCheckpointed(cfg, t.TempDir()+"/bmt.snap"); err == nil {
		t.Fatalf("RunCheckpointed accepted the BMT baseline")
	}
}

// TestReadCampaignRejectsRunSnapshot checks the envelope kind gate: a
// simulation-run snapshot must not load as a campaign.
func TestReadCampaignRejectsRunSnapshot(t *testing.T) {
	t.Parallel()
	path := t.TempDir() + "/run.snap"
	if err := snapshot.SaveFile(path, &snapshot.RunState{}); err != nil {
		t.Fatalf("save run snapshot: %v", err)
	}
	if _, err := ReadCampaign(path); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("ReadCampaign = %v, want ErrCorrupt (kind mismatch)", err)
	}
}
