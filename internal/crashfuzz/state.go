// Campaign snapshots: a long torture run can be checkpointed after any
// round — fuzzer RNG, trace position, golden shadow model, event-rate
// calibration, the report so far, and the controller's full state — and
// restarted in a fresh process from exactly that round. Snapshots reuse
// the internal/snapshot envelope (magic, version, CRC) with its own
// payload kind, so a campaign file cannot be misread as a simulation run.

package crashfuzz

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"

	"steins/internal/memctrl"
	"steins/internal/snapshot"
	"steins/internal/trace"
)

// shadowEntry is one golden-model line, address-sorted for deterministic
// encoding.
type shadowEntry struct {
	Addr uint64
	Data [64]byte
}

// CampaignState is the serializable image of a paused torture campaign.
// Only the SIT-based systems support it: the BMT baseline controller has
// no state capture, and its volatile tree would have to be rebuilt.
type CampaignState struct {
	// Config scalars; the Logf hook is process-local and not captured.
	Scheme, Workload string
	Seed             uint64
	Crashes          int
	OpsPerRound      int
	FootprintBytes   uint64
	RecrashEvery     int
	VerifySample     int

	// RoundsDone is how many crash rounds (plus the calibration round)
	// already ran; resume continues at this round index.
	RoundsDone int

	RNG         [4]uint64
	Gen         trace.GeneratorState
	Shadow      []shadowEntry
	Recent      []uint64
	Seq         uint64
	TotalEvents [memctrl.NumEvents]uint64
	TotalOps    uint64
	RecSteps    uint64
	Report      Report

	Ctrl *memctrl.ControllerState
}

// state captures the fuzzer between rounds (the system is quiescent: the
// last round's recovery and verification completed).
func (f *fuzzer) state(roundsDone int) (*CampaignState, error) {
	sit, ok := f.sys.(*sitSystem)
	if !ok {
		return nil, fmt.Errorf("crashfuzz: scheme %q does not support campaign snapshots", f.cfg.Scheme)
	}
	cs, err := sit.c.State()
	if err != nil {
		return nil, fmt.Errorf("crashfuzz: capture controller: %w", err)
	}
	st := &CampaignState{
		Scheme:         f.cfg.Scheme,
		Workload:       f.cfg.Workload,
		Seed:           f.cfg.Seed,
		Crashes:        f.cfg.Crashes,
		OpsPerRound:    f.cfg.OpsPerRound,
		FootprintBytes: f.cfg.FootprintBytes,
		RecrashEvery:   f.cfg.RecrashEvery,
		VerifySample:   f.cfg.VerifySample,
		RoundsDone:     roundsDone,
		RNG:            f.r.State(),
		Gen:            f.gen.State(),
		Recent:         append([]uint64(nil), f.recent...),
		Seq:            f.seq,
		TotalEvents:    f.totalEvents,
		TotalOps:       f.totalOps,
		RecSteps:       f.recSteps,
		Report:         f.rep,
		Ctrl:           cs,
	}
	for addr, data := range f.shadow {
		st.Shadow = append(st.Shadow, shadowEntry{Addr: addr, Data: data})
	}
	sort.Slice(st.Shadow, func(i, j int) bool { return st.Shadow[i].Addr < st.Shadow[j].Addr })
	return st, nil
}

// config rebuilds the Config the state was captured under.
func (st *CampaignState) config() Config {
	return Config{
		Scheme:         st.Scheme,
		Workload:       st.Workload,
		Seed:           st.Seed,
		Crashes:        st.Crashes,
		OpsPerRound:    st.OpsPerRound,
		FootprintBytes: st.FootprintBytes,
		RecrashEvery:   st.RecrashEvery,
		VerifySample:   st.VerifySample,
	}
}

// restore rebuilds a fuzzer from the state: a fresh system and generator
// via the normal constructor, then every layer overwritten in place.
func (st *CampaignState) restore(logf func(string, ...any)) (*fuzzer, error) {
	cfg := st.config()
	cfg.Logf = logf
	cfg.setDefaults()
	f, err := newFuzzer(cfg)
	if err != nil {
		return nil, err
	}
	sit, ok := f.sys.(*sitSystem)
	if !ok {
		return nil, fmt.Errorf("crashfuzz: scheme %q does not support campaign snapshots", cfg.Scheme)
	}
	if st.Ctrl == nil {
		return nil, fmt.Errorf("%w: campaign has no controller state", snapshot.ErrCorrupt)
	}
	if err := sit.c.Restore(st.Ctrl); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	f.r.Restore(st.RNG)
	f.gen.Restore(st.Gen)
	f.shadow = make(map[uint64][64]byte, len(st.Shadow))
	for _, e := range st.Shadow {
		f.shadow[e.Addr] = e.Data
	}
	f.recent = append([]uint64(nil), st.Recent...)
	f.seq = st.Seq
	f.totalEvents = st.TotalEvents
	f.totalOps = st.TotalOps
	f.recSteps = st.RecSteps
	f.rep = st.Report
	return f, nil
}

// WriteCampaign serializes the state into the shared snapshot envelope.
func WriteCampaign(path string, st *CampaignState) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		return fmt.Errorf("crashfuzz: encode campaign: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("crashfuzz: %w", err)
	}
	if err := snapshot.WriteEnvelope(f, snapshot.KindCampaign, payload.Bytes()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("crashfuzz: %w", err)
	}
	return nil
}

// ReadCampaign deserializes a campaign snapshot; failures wrap the
// snapshot.Err* sentinels.
func ReadCampaign(path string) (*CampaignState, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("crashfuzz: %w", err)
	}
	defer f.Close()
	payload, err := snapshot.ReadEnvelope(f, snapshot.KindCampaign)
	if err != nil {
		return nil, err
	}
	st := new(CampaignState)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(st); err != nil {
		return nil, fmt.Errorf("%w: gob decode: %v", snapshot.ErrCorrupt, err)
	}
	return st, nil
}

// RunCheckpointed is Run with a campaign snapshot written to path after
// the calibration round and after every crash round, so a long campaign
// survives interruption. The final snapshot on disk reflects the completed
// campaign.
func RunCheckpointed(cfg Config, path string) (Report, error) {
	cfg.setDefaults()
	f, err := newFuzzer(cfg)
	if err != nil {
		return Report{}, err
	}
	defer f.sys.SetFaultHooks(nil)
	if err := f.round(-1); err != nil {
		return f.rep, err
	}
	return f.loopCheckpointed(0, path)
}

// ResumeCheckpointed continues a checkpointed campaign from its snapshot,
// driving the remaining rounds and keeping the snapshot current.
func ResumeCheckpointed(path string, logf func(string, ...any)) (Report, error) {
	st, err := ReadCampaign(path)
	if err != nil {
		return Report{}, err
	}
	f, err := st.restore(logf)
	if err != nil {
		return Report{}, err
	}
	defer f.sys.SetFaultHooks(nil)
	return f.loopCheckpointed(st.RoundsDone, path)
}

// loopCheckpointed drives rounds start..Crashes, snapshotting after each.
func (f *fuzzer) loopCheckpointed(start int, path string) (Report, error) {
	save := func(done int) error {
		st, err := f.state(done)
		if err != nil {
			return err
		}
		return WriteCampaign(path, st)
	}
	if start == 0 {
		if err := save(0); err != nil {
			return f.rep, err
		}
	}
	for round := start; round < f.cfg.Crashes; round++ {
		f.rep.Rounds++
		if err := f.round(round); err != nil {
			return f.rep, err
		}
		if err := save(round + 1); err != nil {
			return f.rep, err
		}
		if round%50 == 49 {
			f.cfg.Logf("round %d/%d: %d crashes, %d re-crashes, %d lines verified",
				round+1, f.cfg.Crashes, f.rep.TotalCrashes(), f.rep.Recrashes, f.rep.LinesVerified)
		}
	}
	return f.rep, nil
}
