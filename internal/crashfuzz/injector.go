package crashfuzz

import (
	"fmt"

	"steins/internal/memctrl"
)

// crashSignal aborts a recovery pass mid-flight. It is private so a
// deferred recover() in the harness can tell an injected re-crash from a
// genuine panic in the code under test (which must propagate).
type crashSignal struct {
	ev    memctrl.Event
	index uint64 // 1-based ordinal of the event within its class
	addr  uint64
}

// Injector implements memctrl.FaultHooks: it counts controller events per
// class and fires on the Nth occurrence of a chosen class.
//
// Runtime event classes (line writes, evictions, record appends, retired
// requests) arm the injector; the harness commits the crash at the
// boundary of the request that retired the event, matching the ADR/WPQ
// model. EvRecoveryStep has no ADR cover, so firing on it panics with a
// crashSignal immediately, aborting the recovery pass at that exact step.
type Injector struct {
	target    memctrl.Event
	remaining uint64 // fire when the countdown for target reaches zero
	counts    [memctrl.NumEvents]uint64
	armed     bool
	fired     bool
	firedAt   uint64 // 1-based index of the firing event within its class
	firedAddr uint64
}

// NewInjector returns an injector that fires on the n-th (1-based) event
// of class target. n == 0 never fires (pure event counter).
func NewInjector(target memctrl.Event, n uint64) *Injector {
	return &Injector{target: target, remaining: n}
}

// OnEvent implements memctrl.FaultHooks.
func (in *Injector) OnEvent(ev memctrl.Event, addr uint64) {
	in.counts[ev]++
	if in.fired || ev != in.target || in.remaining == 0 {
		return
	}
	in.remaining--
	if in.remaining > 0 {
		return
	}
	in.fired = true
	in.firedAt = in.counts[ev]
	in.firedAddr = addr
	if ev == memctrl.EvRecoveryStep {
		panic(crashSignal{ev: ev, index: in.firedAt, addr: addr})
	}
	in.armed = true
}

// Armed reports whether a runtime crash point has been reached; the
// harness checks it at request boundaries.
func (in *Injector) Armed() bool { return in.armed }

// Fired reports whether the crash point was reached at all.
func (in *Injector) Fired() bool { return in.fired }

// FiredAt returns the 1-based ordinal and address of the firing event.
func (in *Injector) FiredAt() (uint64, uint64) { return in.firedAt, in.firedAddr }

// Count returns how many events of a class have been observed.
func (in *Injector) Count(ev memctrl.Event) uint64 { return in.counts[ev] }

// RecoveryCrash describes an injected mid-recovery abort: the 1-based
// recovery step the pass was halted at and the address it was touching.
type RecoveryCrash struct {
	Index uint64
	Addr  uint64
}

// CatchRecoveryCrash runs a recovery pass (typically a closure over
// Controller.Recover with an EvRecoveryStep injector installed) and
// converts the injected abort into a return value: rc is non-nil when the
// injector halted the pass, err is the pass's own verdict otherwise.
// Genuine panics in the code under test propagate untouched. The campaign
// engine composes mid-recovery re-crashes through this entry point.
func CatchRecoveryCrash(fn func() error) (rc *RecoveryCrash, err error) {
	defer func() {
		if p := recover(); p != nil {
			cs, ok := p.(crashSignal)
			if !ok {
				panic(p)
			}
			rc = &RecoveryCrash{Index: cs.index, Addr: cs.addr}
		}
	}()
	err = fn()
	return
}

// CrashPoint identifies one reproducible crash: the event class and the
// 1-based ordinal of the event within that class since the hooks were
// installed.
type CrashPoint struct {
	Event memctrl.Event
	Index uint64
}

func (cp CrashPoint) String() string {
	return fmt.Sprintf("%v #%d", cp.Event, cp.Index)
}
