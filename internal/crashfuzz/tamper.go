package crashfuzz

import (
	"fmt"
	"sort"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
	"steins/internal/trace"
)

// TornWriteReport describes one detected torn-write injection.
type TornWriteReport struct {
	Scheme, Workload string
	Seed             uint64
	Point            CrashPoint // crash point at which the torn line was planted
	Addr             uint64     // the corrupted data line
	DetectedBy       string     // "recovery" or "read-back"
	Err              error      // the integrity error that caught it
}

func (r TornWriteReport) String() string {
	return fmt.Sprintf("%s/%s seed=%d: torn write at %#x (crash at %v) caught by %s: %v",
		r.Scheme, r.Workload, r.Seed, r.Addr, r.Point, r.DetectedBy, r.Err)
}

// TornWrite plants a deliberately corrupted data line at a crash point —
// modelling a line write torn by the power failure — and demands the
// scheme catch it: recovery or the differential read-back must raise an
// integrity error, and no read may silently return wrong data. A false
// accept comes back as a *Failure with the reproducing seed and event
// index.
func TornWrite(cfg Config) (TornWriteReport, error) {
	cfg.setDefaults()
	prof, ok := trace.ByName(cfg.Workload)
	if !ok {
		return TornWriteReport{}, fmt.Errorf("crashfuzz: unknown workload %q", cfg.Workload)
	}
	prof.FootprintBytes = cfg.FootprintBytes
	sys, err := NewSystem(cfg.Scheme, cfg.FootprintBytes)
	if err != nil {
		return TornWriteReport{}, err
	}
	defer sys.SetFaultHooks(nil)
	r := rng.New(cfg.Seed)
	gen := trace.New(prof, cfg.Seed, 2*cfg.OpsPerRound)
	shadow := make(map[uint64][64]byte)

	// Warm phase fills the shadow, then the injector arms on a drawn
	// retired request inside the second half of the window.
	inj := NewInjector(memctrl.EvOpRetired, uint64(cfg.OpsPerRound)+1+r.Uint64n(uint64(cfg.OpsPerRound)/2))
	sys.SetFaultHooks(inj)
	var seq uint64
	for !inj.Armed() {
		op, more := gen.Next()
		if !more {
			break
		}
		seq++
		if op.IsWrite {
			data := payload(op.Addr, seq)
			if err := sys.WriteData(op.Gap, op.Addr, data); err != nil {
				return TornWriteReport{}, fmt.Errorf("crashfuzz: torn-write warmup write %#x: %w", op.Addr, err)
			}
			shadow[op.Addr] = data
		} else if _, err := sys.ReadData(op.Gap, op.Addr); err != nil {
			return TornWriteReport{}, fmt.Errorf("crashfuzz: torn-write warmup read %#x: %w", op.Addr, err)
		}
	}
	sys.SetFaultHooks(nil)
	if len(shadow) == 0 {
		return TornWriteReport{}, fmt.Errorf("crashfuzz: torn-write warmup produced no writes")
	}
	idx, _ := inj.FiredAt()
	point := CrashPoint{Event: memctrl.EvOpRetired, Index: idx}
	rep := TornWriteReport{Scheme: sys.Name(), Workload: cfg.Workload, Seed: cfg.Seed, Point: point}

	addrs := make([]uint64, 0, len(shadow))
	for addr := range shadow {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	rep.Addr = addrs[r.Intn(len(addrs))]

	// Crash, then tear the victim line: flip one ciphertext bit, as a
	// write interrupted mid-burst would.
	sys.Crash()
	torn := sys.Device().Peek(rep.Addr)
	torn[0] ^= 0x01
	sys.Device().Poke(rep.Addr, nvmem.Line(torn))

	if err := sys.Recover(); err != nil {
		rep.DetectedBy, rep.Err = "recovery", err
		return rep, nil
	}
	for _, addr := range addrs {
		got, err := sys.ReadData(1, addr)
		if err != nil {
			if addr != rep.Addr {
				return rep, &Failure{Scheme: cfg.Scheme, Workload: cfg.Workload, Seed: cfg.Seed,
					Point: point, Detail: fmt.Sprintf("untampered line %#x rejected after torn write at %#x: %v",
						addr, rep.Addr, err)}
			}
			rep.DetectedBy, rep.Err = "read-back", err
			return rep, nil
		}
		if got != shadow[addr] {
			return rep, &Failure{Scheme: cfg.Scheme, Workload: cfg.Workload, Seed: cfg.Seed,
				Point: point, Detail: fmt.Sprintf("false accept: torn write at %#x read back wrong data without an error", addr)}
		}
	}
	return rep, &Failure{Scheme: cfg.Scheme, Workload: cfg.Workload, Seed: cfg.Seed,
		Point: point, Detail: fmt.Sprintf("false accept: torn write at %#x was silently absorbed", rep.Addr)}
}
