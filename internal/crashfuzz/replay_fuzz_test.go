package crashfuzz

import (
	"testing"

	"steins/internal/memctrl"
)

// FuzzRecordReplay fuzzes the record-line offset replay path: crashes
// pinned to the n-th record append (the commit point of Steins' dirty
// tracking, where a stale or torn record line would replay old offsets
// into recovery) and to the n-th recovery step (the mid-recovery re-crash,
// which restarts the offset scan over a partially restored tree). Both
// leaf layouts run; any lost update, stale restore, or false integrity
// violation fails the differential readback inside CrashAt.
func FuzzRecordReplay(f *testing.F) {
	f.Add(uint64(1), uint8(1), false, false)
	f.Add(uint64(2), uint8(3), true, false)
	f.Add(uint64(3), uint8(7), false, true)
	f.Add(uint64(4), uint8(40), true, true)
	f.Add(uint64(99), uint8(0), false, false)

	f.Fuzz(func(t *testing.T, seed uint64, nth uint8, split, midRecovery bool) {
		scheme := "steins-gc"
		if split {
			scheme = "steins-sc"
		}
		ev := memctrl.EvRecordAppend
		if midRecovery {
			ev = memctrl.EvRecoveryStep
		}
		cfg := Config{
			Scheme:         scheme,
			Workload:       "pers_queue",
			Seed:           seed,
			OpsPerRound:    150,
			FootprintBytes: 128 << 10,
		}
		// 1-based event ordinal; n beyond the window simply reports
		// "not reached", which is still a valid (cheap) execution.
		if _, err := CrashAt(cfg, ev, uint64(nth%72)+1); err != nil {
			t.Fatalf("seed %d %s n=%d: %v", seed, scheme, nth, err)
		}
	})
}
