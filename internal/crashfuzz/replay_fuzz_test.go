package crashfuzz

import (
	"testing"

	"steins/internal/memctrl"
)

// FuzzRecordReplay fuzzes the dirty-tracking commit/replay path across the
// recoverable scheme families: crashes pinned to the n-th record append
// (the commit point of Steins' dirty tracking, where a stale or torn
// record line would replay old offsets into recovery) and to the n-th
// recovery step (the mid-recovery re-crash, which restarts reconstruction
// over a partially restored tree). The relaxed-persistence family has no
// record lines, so its record-append countdown is never reached and runs
// as a full round, while its recovery-step crashes exercise the restart-
// ability of the shared bottom-up rebuild. Both leaf layouts run; any
// lost update, stale restore, or false integrity violation fails the
// differential readback inside CrashAt.
func FuzzRecordReplay(f *testing.F) {
	f.Add(uint64(1), uint8(1), false, false, uint8(0))
	f.Add(uint64(2), uint8(3), true, false, uint8(0))
	f.Add(uint64(3), uint8(7), false, true, uint8(0))
	f.Add(uint64(4), uint8(40), true, true, uint8(0))
	f.Add(uint64(99), uint8(0), false, false, uint8(0))
	f.Add(uint64(5), uint8(9), false, true, uint8(1))
	f.Add(uint64(6), uint8(25), true, true, uint8(1))
	f.Add(uint64(7), uint8(4), false, true, uint8(2))
	f.Add(uint64(8), uint8(33), true, true, uint8(2))
	f.Add(uint64(9), uint8(12), false, true, uint8(3))

	f.Fuzz(func(t *testing.T, seed uint64, nth uint8, split, midRecovery bool, family uint8) {
		families := [...][2]string{
			{"steins-gc", "steins-sc"},
			{"pipesit", "pipesit-sc"},
			{"triad", "triad-sc"},
			{"scue", "scue-sc"},
		}
		pair := families[family%uint8(len(families))]
		scheme := pair[0]
		if split {
			scheme = pair[1]
		}
		ev := memctrl.EvRecordAppend
		if midRecovery {
			ev = memctrl.EvRecoveryStep
		}
		cfg := Config{
			Scheme:         scheme,
			Workload:       "pers_queue",
			Seed:           seed,
			OpsPerRound:    150,
			FootprintBytes: 128 << 10,
		}
		// 1-based event ordinal; n beyond the window simply reports
		// "not reached", which is still a valid (cheap) execution.
		if _, err := CrashAt(cfg, ev, uint64(nth%72)+1); err != nil {
			t.Fatalf("seed %d %s n=%d: %v", seed, scheme, nth, err)
		}
	})
}
