package crashfuzz

import (
	"testing"

	"steins/internal/nvmem"
)

// FuzzFaultRecovery fuzzes the differential media-fault mode over the
// scheme choice, the fault-model intensities and the recovery-hardening
// switches. Every execution enforces the harness invariant — zero silent
// corruptions: each datum reads back to its last-persisted value or fails
// with a structured media/integrity verdict, and recovery either absorbs
// damage (degraded mode) or rejects it with a classified error.
func FuzzFaultRecovery(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint16(20), uint8(25), true, false, uint8(0), uint8(0))
	f.Add(uint64(2), uint8(1), uint16(0), uint8(0), false, true, uint8(3), uint8(0))
	f.Add(uint64(3), uint8(3), uint16(45), uint8(100), true, true, uint8(1), uint8(0))
	f.Add(uint64(4), uint8(6), uint16(10), uint8(50), false, false, uint8(0), uint8(0))
	f.Add(uint64(5), uint8(4), uint16(5), uint8(0), true, true, uint8(2), uint8(0))
	// Replay-under-torn-write: the boundary the campaign found. An
	// authentic-stale replay lands while torn-line damage heals around it;
	// degraded recovery must arbitrate the regression to a replay-shaped
	// quarantine, not forgive it as media loss.
	f.Add(uint64(6), uint8(0), uint16(3), uint8(20), true, true, uint8(1), uint8(2))

	f.Fuzz(func(t *testing.T, seed uint64, schemeIdx uint8, tmilli uint16, doublePct uint8,
		torn, degraded bool, corrupt, replay uint8) {
		names := SchemeNames()
		scheme := names[int(schemeIdx)%len(names)]
		cfg := FaultFuzzConfig{
			Config: Config{
				Scheme:         scheme,
				Workload:       "pers_queue",
				Seed:           seed,
				Crashes:        2,
				OpsPerRound:    120,
				FootprintBytes: 128 << 10,
			},
			Faults: nvmem.FaultConfig{
				TransientPerRead: float64(tmilli%50) / 1e4, // up to 0.49% per read
				DoubleBitFrac:    float64(doublePct%101) / 100,
				StuckPerWrite:    float64(tmilli%50) / 1e5,
			},
			CorruptNodes: int(corrupt % 4),
			ReplayLeaves: int(replay % 4),
			Degraded:     degraded,
		}
		if torn {
			cfg.Faults.TornOnCrash = 0.5
		}
		if _, err := RunFaults(cfg); err != nil {
			t.Fatalf("seed %d %s transient=%d double=%d torn=%v degraded=%v corrupt=%d replay=%d: %v",
				seed, scheme, tmilli, doublePct, torn, degraded, corrupt, replay, err)
		}
	})
}
