package crashfuzz

import (
	"encoding/binary"
	"fmt"
	"sort"

	"steins/internal/memctrl"
	"steins/internal/rng"
	"steins/internal/trace"
)

// runtimeEvents are the crashable event classes during normal operation;
// EvRecoveryStep is only reachable from a mid-recovery re-crash.
var runtimeEvents = []memctrl.Event{
	memctrl.EvLineWrite, memctrl.EvEviction, memctrl.EvRecordAppend, memctrl.EvOpRetired,
}

// Config parameterises one torture run.
type Config struct {
	Scheme   string // a SchemeNames() entry
	Workload string // a trace profile name, e.g. "pers_queue"
	Seed     uint64
	Crashes  int // crash rounds to attempt

	// OpsPerRound bounds how many requests are driven per round before a
	// crash (0: 400). The crash point is drawn inside this window.
	OpsPerRound int
	// FootprintBytes overrides the workload footprint so recovery and the
	// differential readback stay fast (0: 512 KB).
	FootprintBytes uint64
	// RecrashEvery injects a second crash mid-recovery on every k-th round
	// (0 disables; tests and the CLI default to 4).
	RecrashEvery int
	// VerifySample bounds the per-round differential readback to a random
	// sample of that many lines plus everything written since the previous
	// crash (0: read back the full shadow every round).
	VerifySample int
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() {
	if c.OpsPerRound == 0 {
		c.OpsPerRound = 400
	}
	if c.FootprintBytes == 0 {
		c.FootprintBytes = 512 << 10
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// Report summarises a completed torture run.
type Report struct {
	Scheme, Workload string
	Seed             uint64
	Rounds           int                       // rounds attempted
	Crashes          [memctrl.NumEvents]uint64 // crashes committed, per event class
	Recrashes        int                       // recoveries additionally crashed mid-flight
	SkippedRounds    int                       // rounds whose chosen event never fired
	Ops              uint64                    // requests driven
	LinesVerified    uint64                    // differential readback checks performed
}

// TotalCrashes sums the committed crashes across event classes.
func (r *Report) TotalCrashes() uint64 {
	var t uint64
	for _, n := range r.Crashes {
		t += n
	}
	return t
}

func (r *Report) String() string {
	s := fmt.Sprintf("%s/%s seed=%d: %d rounds, %d crashes (", r.Scheme, r.Workload, r.Seed,
		r.Rounds, r.TotalCrashes())
	for ev := memctrl.Event(0); ev < memctrl.NumEvents; ev++ {
		if ev > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v %d", ev, r.Crashes[ev])
	}
	return s + fmt.Sprintf("), %d mid-recovery re-crashes, %d ops, %d lines verified",
		r.Recrashes, r.Ops, r.LinesVerified)
}

// Failure is a reproducible harness verdict: the seed, round and crash
// point pin down the exact execution that exposed it.
type Failure struct {
	Scheme, Workload string
	Seed             uint64
	Round            int
	Point            CrashPoint
	Detail           string
}

func (f *Failure) Error() string {
	return fmt.Sprintf("crashfuzz: %s: %s (reproduce: -scheme %s -workload %s -seed %d -crashes %d; round %d, crash at %v)",
		f.Scheme, f.Detail, f.Scheme, f.Workload, f.Seed, f.Round+1, f.Round, f.Point)
}

// fuzzer carries the per-run state.
type fuzzer struct {
	cfg    Config
	sys    System
	r      *rng.Source
	gen    *trace.Generator
	shadow map[uint64][64]byte // last-persisted plaintext per data line
	recent []uint64            // addresses written since the last crash
	seq    uint64              // global op ordinal (payload uniqueness)

	// Event-rate bookkeeping: totals across rounds feed the crash-point
	// draw for the next round so countdowns land inside the op window.
	totalEvents [memctrl.NumEvents]uint64
	totalOps    uint64
	recSteps    uint64 // recovery steps observed in the last recovery

	rep Report
}

// newFuzzer builds the system, trace generator and shadow model for one
// run. cfg must already have defaults applied.
func newFuzzer(cfg Config) (*fuzzer, error) {
	prof, ok := trace.ByName(cfg.Workload)
	if !ok {
		return nil, fmt.Errorf("crashfuzz: unknown workload %q", cfg.Workload)
	}
	prof.FootprintBytes = cfg.FootprintBytes
	sys, err := NewSystem(cfg.Scheme, cfg.FootprintBytes)
	if err != nil {
		return nil, err
	}
	return &fuzzer{
		cfg:    cfg,
		sys:    sys,
		r:      rng.New(cfg.Seed),
		gen:    trace.New(prof, cfg.Seed, (cfg.Crashes+1)*cfg.OpsPerRound),
		shadow: make(map[uint64][64]byte),
		rep:    Report{Scheme: sys.Name(), Workload: cfg.Workload, Seed: cfg.Seed},
	}, nil
}

// Run drives the torture loop: repeatedly crash the scheme at a randomly
// drawn controller event, recover, and differentially verify every
// readable line against the golden shadow model. The first error is a
// *Failure carrying the reproduction seed and crash point.
func Run(cfg Config) (Report, error) {
	cfg.setDefaults()
	f, err := newFuzzer(cfg)
	if err != nil {
		return Report{}, err
	}
	defer f.sys.SetFaultHooks(nil)

	// Round 0 calibrates event rates without crashing.
	if err := f.round(-1); err != nil {
		return f.rep, err
	}
	for round := 0; round < cfg.Crashes; round++ {
		f.rep.Rounds++
		if err := f.round(round); err != nil {
			return f.rep, err
		}
		if round%50 == 49 {
			cfg.Logf("round %d/%d: %d crashes, %d re-crashes, %d lines verified",
				round+1, cfg.Crashes, f.rep.TotalCrashes(), f.rep.Recrashes, f.rep.LinesVerified)
		}
	}
	return f.rep, nil
}

// expected estimates how many events of a class one round produces.
func (f *fuzzer) expected(ev memctrl.Event) uint64 {
	if f.totalOps == 0 {
		return 0
	}
	return f.totalEvents[ev] * uint64(f.cfg.OpsPerRound) / f.totalOps
}

// pickPoint draws the event class and countdown for one round.
func (f *fuzzer) pickPoint() (memctrl.Event, uint64) {
	candidates := make([]memctrl.Event, 0, len(runtimeEvents))
	for _, ev := range runtimeEvents {
		if f.expected(ev) > 0 {
			candidates = append(candidates, ev)
		}
	}
	if len(candidates) == 0 {
		return memctrl.EvOpRetired, 1
	}
	ev := candidates[f.r.Intn(len(candidates))]
	return ev, 1 + f.r.Uint64n(f.expected(ev))
}

// round drives one op window; round >= 0 crashes at a drawn event,
// recovers (re-crashing mid-recovery on RecrashEvery rounds) and
// differentially verifies. round == -1 only calibrates event rates.
func (f *fuzzer) round(round int) error {
	var inj *Injector
	if round < 0 {
		inj = NewInjector(memctrl.EvOpRetired, 0) // pure counter
	} else {
		ev, n := f.pickPoint()
		inj = NewInjector(ev, n)
	}
	f.sys.SetFaultHooks(inj)

	ops := 0
	for ; ops < f.cfg.OpsPerRound && !inj.Armed(); ops++ {
		op, more := f.gen.Next()
		if !more {
			break
		}
		if err := f.drive(round, inj, op); err != nil {
			return err
		}
	}
	f.totalOps += uint64(ops)
	f.rep.Ops += uint64(ops)
	for ev := memctrl.Event(0); ev < memctrl.NumEvents; ev++ {
		f.totalEvents[ev] += inj.Count(ev)
	}
	f.sys.SetFaultHooks(nil)
	if round < 0 || !inj.Armed() {
		if round >= 0 {
			f.rep.SkippedRounds++
		}
		return nil
	}

	idx, _ := inj.FiredAt()
	point := CrashPoint{Event: inj.target, Index: idx}
	f.rep.Crashes[inj.target]++
	f.sys.Crash()
	if err := f.recover(round, point); err != nil {
		return err
	}
	return f.verify(round, point)
}

// drive executes one trace request against the system and the shadow
// model, checking reads as it goes.
func (f *fuzzer) drive(round int, inj *Injector, op trace.Op) error {
	f.seq++
	point := CrashPoint{Event: inj.target, Index: inj.Count(inj.target) + 1}
	if op.IsWrite {
		data := payload(op.Addr, f.seq)
		if err := f.sys.WriteData(op.Gap, op.Addr, data); err != nil {
			return f.fail(round, point, fmt.Sprintf("runtime write %#x rejected: %v", op.Addr, err))
		}
		// The crash commits at this request's boundary, so the write is
		// durable before any crash the harness takes.
		f.shadow[op.Addr] = data
		f.recent = append(f.recent, op.Addr)
		return nil
	}
	got, err := f.sys.ReadData(op.Gap, op.Addr)
	if err != nil {
		return f.fail(round, point, fmt.Sprintf("runtime read %#x rejected: %v", op.Addr, err))
	}
	if want, written := f.shadow[op.Addr]; written && got != want {
		return f.fail(round, point, fmt.Sprintf("runtime read %#x returned wrong data", op.Addr))
	}
	return nil
}

// recover runs the scheme's recovery, optionally aborting it at a drawn
// recovery step and restarting it from that prefix.
func (f *fuzzer) recover(round int, point CrashPoint) error {
	recrash := f.cfg.RecrashEvery > 0 && round >= 0 && round%f.cfg.RecrashEvery == f.cfg.RecrashEvery-1
	var n uint64
	if recrash && f.recSteps > 0 {
		n = 1 + f.r.Uint64n(f.recSteps)
	}
	inj := NewInjector(memctrl.EvRecoveryStep, n)
	f.sys.SetFaultHooks(inj)
	sig, err := runRecover(f.sys)
	if sig != nil {
		// The re-crash aborted recovery at step sig.Index; recovery must
		// succeed from this arbitrary prefix.
		f.rep.Recrashes++
		point = CrashPoint{Event: memctrl.EvRecoveryStep, Index: sig.Index}
		f.sys.Crash()
		inj = NewInjector(memctrl.EvRecoveryStep, 0)
		f.sys.SetFaultHooks(inj)
		sig, err = runRecover(f.sys)
		if sig != nil {
			panic("crashfuzz: counting injector fired")
		}
	}
	f.recSteps = inj.Count(memctrl.EvRecoveryStep)
	f.sys.SetFaultHooks(nil)
	if err != nil {
		return f.fail(round, point, fmt.Sprintf("recovery rejected legitimate state: %v", err))
	}
	return nil
}

// runRecover converts an injected crashSignal panic into a return value;
// genuine panics propagate.
func runRecover(sys System) (*RecoveryCrash, error) {
	return CatchRecoveryCrash(sys.Recover)
}

// verify differentially checks recovered state: every sampled line must
// read back to its last-persisted value, and the persisted metadata must
// pass the controller's deep oracle.
func (f *fuzzer) verify(round int, point CrashPoint) error {
	if err := f.sys.VerifyPersisted(); err != nil {
		return f.fail(round, point, fmt.Sprintf("persisted metadata inconsistent after recovery: %v", err))
	}
	addrs := f.verifySet()
	for _, addr := range addrs {
		want := f.shadow[addr]
		got, err := f.sys.ReadData(1, addr)
		if err != nil {
			return f.fail(round, point, fmt.Sprintf("post-recovery read %#x rejected: %v", addr, err))
		}
		if got != want {
			return f.fail(round, point, fmt.Sprintf("undetected corruption: %#x read back wrong data", addr))
		}
	}
	f.rep.LinesVerified += uint64(len(addrs))
	f.recent = f.recent[:0]
	return nil
}

// verifySet returns the sorted addresses to read back this round: the
// whole shadow, or (when sampling) everything written since the last
// crash plus a random sample of older lines.
func (f *fuzzer) verifySet() []uint64 {
	all := make([]uint64, 0, len(f.shadow))
	for addr := range f.shadow {
		all = append(all, addr)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if f.cfg.VerifySample == 0 || len(all) <= f.cfg.VerifySample {
		return all
	}
	pick := make(map[uint64]bool, f.cfg.VerifySample+len(f.recent))
	for _, addr := range f.recent {
		pick[addr] = true
	}
	for i := 0; i < f.cfg.VerifySample; i++ {
		pick[all[f.r.Intn(len(all))]] = true
	}
	set := make([]uint64, 0, len(pick))
	for addr := range pick {
		set = append(set, addr)
	}
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

func (f *fuzzer) fail(round int, point CrashPoint, detail string) error {
	return &Failure{
		Scheme:   f.cfg.Scheme,
		Workload: f.cfg.Workload,
		Seed:     f.cfg.Seed,
		Round:    round,
		Point:    point,
		Detail:   detail,
	}
}

// CrashAt runs one deterministic crash at exactly the n-th (1-based)
// event of class ev, recovers, and differentially verifies. It reports
// whether the event was reached inside the op window at all (a sweep
// stops when its event class is exhausted). For EvRecoveryStep the run
// first crashes at the window midpoint, then aborts the recovery at its
// n-th step and restarts it — the mid-recovery re-crash case.
func CrashAt(cfg Config, ev memctrl.Event, n uint64) (bool, error) {
	cfg.setDefaults()
	f, err := newFuzzer(cfg)
	if err != nil {
		return false, err
	}
	defer f.sys.SetFaultHooks(nil)

	target, runtimeN := ev, n
	if ev == memctrl.EvRecoveryStep {
		target, runtimeN = memctrl.EvOpRetired, uint64(cfg.OpsPerRound/2)
	}
	inj := NewInjector(target, runtimeN)
	f.sys.SetFaultHooks(inj)
	for ops := 0; ops < f.cfg.OpsPerRound && !inj.Armed(); ops++ {
		op, more := f.gen.Next()
		if !more {
			break
		}
		if err := f.drive(0, inj, op); err != nil {
			return true, err
		}
	}
	f.sys.SetFaultHooks(nil)
	if !inj.Armed() {
		return false, nil
	}
	idx, _ := inj.FiredAt()
	point := CrashPoint{Event: target, Index: idx}
	f.sys.Crash()

	reached := true
	if ev == memctrl.EvRecoveryStep {
		rinj := NewInjector(memctrl.EvRecoveryStep, n)
		f.sys.SetFaultHooks(rinj)
		sig, rerr := runRecover(f.sys)
		f.sys.SetFaultHooks(nil)
		if sig == nil {
			// Recovery finished in fewer than n steps; nothing was aborted.
			reached = false
			if rerr != nil {
				return reached, f.fail(0, point, fmt.Sprintf("recovery rejected legitimate state: %v", rerr))
			}
			return reached, f.verify(0, point)
		}
		point = CrashPoint{Event: memctrl.EvRecoveryStep, Index: sig.Index}
		f.sys.Crash()
	}
	rinj := NewInjector(memctrl.EvRecoveryStep, 0)
	f.sys.SetFaultHooks(rinj)
	sig, rerr := runRecover(f.sys)
	f.sys.SetFaultHooks(nil)
	if sig != nil {
		panic("crashfuzz: counting injector fired")
	}
	if rerr != nil {
		return reached, f.fail(0, point, fmt.Sprintf("recovery rejected legitimate state: %v", rerr))
	}
	return reached, f.verify(0, point)
}

// payload builds a unique, self-describing 64-byte block for one write.
func payload(addr, seq uint64) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	binary.LittleEndian.PutUint64(b[8:16], seq)
	for i := 16; i < 64; i++ {
		b[i] = byte(seq >> (uint(i) % 8 * 8))
	}
	return b
}
