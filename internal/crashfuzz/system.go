// Package crashfuzz is a deterministic crash-point fault-injection
// harness for the recoverable secure-NVM schemes. It halts a scheme at an
// arbitrary controller event — the Nth durable line write, the Nth dirty
// metadata-cache eviction, the Nth dirty-tracking record append, the Nth
// retired request, or the Nth step of an in-progress recovery (a
// mid-recovery re-crash) — then runs the scheme's recovery path and
// differentially verifies the result: every data line a program persisted
// must decrypt and verify back to its last-persisted value against a
// golden shadow model, and the integrity machinery (HMAC + LInc) must
// never accept deliberately corrupted state.
//
// Crash model. Runtime crash points are selected by event countdown, but
// the crash COMMITS at the boundary of the request that retired the
// chosen event: the ADR/WPQ flush domain completes the in-flight request
// (the standard Anubis/STAR assumption — see internal/memctrl/fault.go).
// Recovery has no such cover: it is plain software, so a re-crash aborts
// it at exactly the chosen step and the subsequent Recover must succeed
// from that arbitrary prefix.
//
// All randomness flows from an internal/rng seed; a failure report
// carries the seed, round, event class and event index needed to replay
// it exactly.
package crashfuzz

import (
	"fmt"
	"sort"

	"steins/internal/bmtctrl"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/rng"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/pipesit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/triad"
)

// System abstracts the two controller families (the SIT-based memctrl
// schemes and the BMT baseline) behind the handful of operations the
// fuzzer needs.
type System interface {
	Name() string
	WriteData(gap, addr uint64, data [64]byte) error
	ReadData(gap, addr uint64) ([64]byte, error)
	// Crash drops all volatile controller state (ADR-domain state persists).
	Crash()
	// Recover rebuilds and verifies metadata after a Crash.
	Recover() error
	SetFaultHooks(h memctrl.FaultHooks)
	Device() *nvmem.Device
	// VerifyPersisted deep-checks the persisted metadata for
	// self-consistency, when the controller exposes such an oracle.
	VerifyPersisted() error
}

// SchemeNames lists the accepted -scheme spellings.
func SchemeNames() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SysOptions tunes a built system beyond scheme and footprint: the media-
// fault model on its NVM device and the controller's degraded-recovery
// switch. The zero value reproduces the historical fault-free systems.
type SysOptions struct {
	Faults     nvmem.FaultConfig
	DisableECC bool
	Degraded   bool
}

var builders = map[string]func(dataBytes uint64, o SysOptions) System{
	"steins-gc": func(db uint64, o SysOptions) System { return newSITSystem(db, false, steins.Factory, o) },
	"steins-sc": func(db uint64, o SysOptions) System { return newSITSystem(db, true, steins.Factory, o) },
	"asit":      func(db uint64, o SysOptions) System { return newSITSystem(db, false, asit.Factory, o) },
	"star":      func(db uint64, o SysOptions) System { return newSITSystem(db, false, star.Factory, o) },
	"scue":      func(db uint64, o SysOptions) System { return newSITSystem(db, false, scue.Factory, o) },
	"scue-sc":   func(db uint64, o SysOptions) System { return newSITSystem(db, true, scue.Factory, o) },
	"pipesit":   func(db uint64, o SysOptions) System { return newSITSystem(db, false, pipesit.Factory, o) },
	"pipesit-sc": func(db uint64, o SysOptions) System {
		return newSITSystem(db, true, pipesit.Factory, o)
	},
	"triad":    func(db uint64, o SysOptions) System { return newSITSystem(db, false, triad.Factory, o) },
	"triad-sc": func(db uint64, o SysOptions) System { return newSITSystem(db, true, triad.Factory, o) },
	"bmt":      func(db uint64, o SysOptions) System { return newBMTSystem(db, o) },
}

// NewSystem builds a named scheme over dataBytes of protected data with a
// small metadata cache (4 KB, 4-way) so eviction churn — the interesting
// crash surface — is constant even on tiny footprints.
func NewSystem(scheme string, dataBytes uint64) (System, error) {
	return NewSystemWith(scheme, dataBytes, SysOptions{})
}

// NewSystemWith is NewSystem with the media-fault and recovery options
// applied; the fault fuzzer builds its systems through it.
func NewSystemWith(scheme string, dataBytes uint64, o SysOptions) (System, error) {
	b, ok := builders[scheme]
	if !ok {
		return nil, fmt.Errorf("crashfuzz: unknown scheme %q (have %v)", scheme, SchemeNames())
	}
	return b(dataBytes, o), nil
}

type sitSystem struct{ c *memctrl.Controller }

func newSITSystem(dataBytes uint64, split bool, factory memctrl.PolicyFactory, o SysOptions) System {
	cfg := memctrl.DefaultConfig(dataBytes, split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	cfg.NVM.Faults = o.Faults
	cfg.NVM.ECC.Disable = o.DisableECC
	cfg.DegradedRecovery = o.Degraded
	return &sitSystem{c: memctrl.New(cfg, factory)}
}

func (s *sitSystem) Name() string { return s.c.Policy().Name() }
func (s *sitSystem) WriteData(gap, addr uint64, data [64]byte) error {
	return s.c.WriteData(gap, addr, data)
}
func (s *sitSystem) ReadData(gap, addr uint64) ([64]byte, error) { return s.c.ReadData(gap, addr) }
func (s *sitSystem) Crash()                                      { s.c.Crash() }
func (s *sitSystem) Recover() error                              { _, err := s.c.Recover(); return err }
func (s *sitSystem) SetFaultHooks(h memctrl.FaultHooks)          { s.c.SetFaultHooks(h) }
func (s *sitSystem) Device() *nvmem.Device                       { return s.c.Device() }
func (s *sitSystem) VerifyPersisted() error                      { return s.c.VerifyNVM() }

// recoverFull exposes the structured recovery report (degradation
// breakdown) to the fault fuzzer.
func (s *sitSystem) recoverFull() (memctrl.RecoveryReport, error) { return s.c.Recover() }

// controller exposes the raw controller to harnesses that inject attack
// scenarios (replay material capture needs tag access, not just the device).
func (s *sitSystem) controller() *memctrl.Controller { return s.c }

// corruptInteriorNodes flips one bit in up to n distinct populated
// interior SIT node lines, chosen deterministically from r, modelling
// media damage to persisted metadata discovered at recovery time. It
// returns how many lines were actually hit.
func (s *sitSystem) corruptInteriorNodes(r *rng.Source, n int) int {
	geo := &s.c.Layout().Geo
	dev := s.c.Device()
	var addrs []uint64
	for k := 1; k < geo.Levels; k++ {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			addr := geo.NodeAddr(k, idx)
			if dev.Peek(addr) != (nvmem.Line{}) {
				addrs = append(addrs, addr)
			}
		}
	}
	hit := 0
	for ; hit < n && len(addrs) > 0; hit++ {
		i := r.Intn(len(addrs))
		addr := addrs[i]
		addrs = append(addrs[:i], addrs[i+1:]...)
		line := dev.Peek(addr)
		bit := r.Intn(nvmem.LineSize * 8)
		line[bit/8] ^= 1 << (bit % 8)
		// CorruptLine, not Poke: this harness models media decay, so the
		// damage must leave the evidence trail degraded recovery arbitrates
		// against (an evidence-free flip is tamper-shaped and quarantines
		// instead of healing).
		dev.CorruptLine(addr, line)
	}
	return hit
}

type bmtSystem struct{ c *bmtctrl.Controller }

func newBMTSystem(dataBytes uint64, o SysOptions) System {
	cfg := bmtctrl.DefaultConfig(dataBytes)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	cfg.NVM.Faults = o.Faults
	cfg.NVM.ECC.Disable = o.DisableECC
	return &bmtSystem{c: bmtctrl.New(cfg)}
}

func (s *bmtSystem) Name() string { return "BMT" }
func (s *bmtSystem) WriteData(gap, addr uint64, data [64]byte) error {
	return s.c.WriteData(gap, addr, data)
}
func (s *bmtSystem) ReadData(gap, addr uint64) ([64]byte, error) { return s.c.ReadData(gap, addr) }
func (s *bmtSystem) Crash()                                      { s.c.Crash() }
func (s *bmtSystem) Recover() error                              { _, err := s.c.Recover(); return err }
func (s *bmtSystem) SetFaultHooks(h memctrl.FaultHooks)          { s.c.SetFaultHooks(h) }
func (s *bmtSystem) Device() *nvmem.Device                       { return s.c.Device() }

// VerifyPersisted: the BMT controller keeps no NVM-side tree copy to
// cross-check (interior levels are volatile), so the differential data
// readback is the whole oracle.
func (s *bmtSystem) VerifyPersisted() error { return nil }
