package metrics

import "testing"

func TestCollectorDefaults(t *testing.T) {
	c := NewCollector(Options{})
	if o := c.Options(); o.SampleEvery != 256 || o.RingCap != 4096 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestCollectorRecordCadence(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 4, RingCap: 8})
	bd := Breakdown{}
	bd[PhaseCrypto] = 10
	due := 0
	for i := 1; i <= 12; i++ {
		if c.Record(i%2 == 0, &bd) {
			due++
			if i%4 != 0 {
				t.Fatalf("probe due at op %d, want multiples of 4", i)
			}
		}
	}
	if due != 3 {
		t.Fatalf("probes due = %d, want 3", due)
	}
	// 6 reads and 6 writes each touched PhaseCrypto; zero-cycle phases
	// are not recorded.
	if got := c.PhaseHist(false, PhaseCrypto).Count(); got != 6 {
		t.Fatalf("read crypto count = %d, want 6", got)
	}
	if got := c.PhaseHist(true, PhaseCrypto).Count(); got != 6 {
		t.Fatalf("write crypto count = %d, want 6", got)
	}
	if got := c.PhaseHist(false, PhaseNVMRead).Count(); got != 0 {
		t.Fatalf("untouched phase count = %d, want 0", got)
	}
}

func TestCollectorRingOverwrite(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 1, RingCap: 3})
	for i := uint64(1); i <= 5; i++ {
		c.AddSample(Sample{Op: i})
	}
	if c.SamplesTaken() != 5 {
		t.Fatalf("taken = %d", c.SamplesTaken())
	}
	got := c.Samples()
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].Op != want {
			t.Fatalf("sample %d = op %d, want %d (chronological order)", i, got[i].Op, want)
		}
	}
}

func TestCollectorReset(t *testing.T) {
	c := NewCollector(Options{SampleEvery: 1, RingCap: 4})
	bd := Breakdown{}
	bd[PhaseVerify] = 3
	c.Record(false, &bd)
	c.AddSample(Sample{Op: 1})
	c.Reset()
	if c.SamplesTaken() != 0 || len(c.Samples()) != 0 {
		t.Fatal("samples survived reset")
	}
	if c.PhaseHist(false, PhaseVerify).Count() != 0 {
		t.Fatal("histograms survived reset")
	}
	// The cadence counter restarts too.
	if c.Record(false, &bd) != true {
		t.Fatal("cadence counter not reset")
	}
}
