package metrics

import (
	"testing"
	"testing/quick"
)

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for ph := Phase(0); ph < NumPhases; ph++ {
		n := ph.String()
		if n == "" || n == "phase(?)" {
			t.Fatalf("phase %d has no name", ph)
		}
		if seen[n] {
			t.Fatalf("duplicate phase name %q", n)
		}
		seen[n] = true
	}
	if Phase(-1).String() != "phase(?)" || NumPhases.String() != "phase(?)" {
		t.Fatal("out-of-range phases must render as phase(?)")
	}
}

func TestNormalizeServiceExact(t *testing.T) {
	bd := Breakdown{}
	bd[PhaseMetaFetch] = 30
	bd[PhaseCrypto] = 70
	NormalizeService(&bd, 100)
	if bd[PhaseMetaFetch] != 30 || bd[PhaseCrypto] != 70 || bd[PhaseOther] != 0 {
		t.Fatalf("exact attribution changed: %v", bd)
	}
}

func TestNormalizeServiceUnder(t *testing.T) {
	bd := Breakdown{}
	bd[PhaseMetaFetch] = 30
	NormalizeService(&bd, 100)
	if bd[PhaseOther] != 70 {
		t.Fatalf("residual = %d, want 70", bd[PhaseOther])
	}
}

func TestNormalizeServiceOver(t *testing.T) {
	// Overlapped latencies: 150 attributed for 100 cycles of service.
	bd := Breakdown{}
	bd[PhaseNVMRead] = 100
	bd[PhaseCrypto] = 50
	NormalizeService(&bd, 100)
	var total uint64
	for ph := serviceFirst; ph <= serviceLast; ph++ {
		total += bd[ph]
	}
	if total != 100 {
		t.Fatalf("normalized total = %d, want 100", total)
	}
	// Pro-rata: the big bucket must stay dominant.
	if bd[PhaseNVMRead] <= bd[PhaseCrypto] {
		t.Fatalf("pro-rata scaling lost ordering: %v", bd)
	}
}

func TestNormalizeServiceProperty(t *testing.T) {
	// For any attribution and service time, the service buckets must sum
	// to exactly the service time afterwards.
	f := func(meta, verify, crypto, nvm, drain uint16, service uint32) bool {
		bd := Breakdown{}
		bd[PhaseMetaFetch] = uint64(meta)
		bd[PhaseVerify] = uint64(verify)
		bd[PhaseCrypto] = uint64(crypto)
		bd[PhaseNVMRead] = uint64(nvm)
		bd[PhaseWriteDrain] = uint64(drain)
		NormalizeService(&bd, uint64(service))
		var total uint64
		for ph := serviceFirst; ph <= serviceLast; ph++ {
			total += bd[ph]
		}
		return total == uint64(service)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakespanCycles(t *testing.T) {
	bd := Breakdown{}
	bd[PhaseQueueWait] = 1000 // excluded
	bd[PhaseMetaFetch] = 10
	bd[PhaseIdle] = 5
	bd[PhaseOther] = 2
	if got := MakespanCycles(&bd); got != 17 {
		t.Fatalf("MakespanCycles = %d, want 17", got)
	}
}
