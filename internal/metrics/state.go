package metrics

import "encoding/binary"

// Hist has no exported fields, so gob would silently encode it as empty and
// every embedded histogram (memctrl.Stats.ReadHist/WriteHist, collector
// phase histograms) would be lost on restore. GobEncode/GobDecode give it an
// explicit fixed-width little-endian wire form instead.

const histWireLen = (48 + 3) * 8

// GobEncode serializes the histogram: 48 buckets, count, sum, max, each as
// a little-endian uint64.
func (h Hist) GobEncode() ([]byte, error) {
	buf := make([]byte, histWireLen)
	for i, b := range h.buckets {
		binary.LittleEndian.PutUint64(buf[i*8:], b)
	}
	binary.LittleEndian.PutUint64(buf[48*8:], h.count)
	binary.LittleEndian.PutUint64(buf[49*8:], h.sum)
	binary.LittleEndian.PutUint64(buf[50*8:], h.max)
	return buf, nil
}

// GobDecode restores a histogram serialized by GobEncode.
func (h *Hist) GobDecode(buf []byte) error {
	if len(buf) != histWireLen {
		return errHistWire
	}
	for i := range h.buckets {
		h.buckets[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	h.count = binary.LittleEndian.Uint64(buf[48*8:])
	h.sum = binary.LittleEndian.Uint64(buf[49*8:])
	h.max = binary.LittleEndian.Uint64(buf[50*8:])
	return nil
}

type histWireError struct{}

func (histWireError) Error() string { return "metrics: malformed Hist wire data" }

var errHistWire = histWireError{}

// CollectorState is the serializable image of a Collector. The ring is
// captured verbatim (contents, write cursor and lifetime probe count) so a
// restored collector keeps rotating and dropping samples exactly where the
// original would.
type CollectorState struct {
	Opt       Options
	Retired   uint64
	PhaseHist [2][NumPhases]Hist
	Ring      []Sample
	Next      int
	Taken     uint64
}

// State captures the collector for a snapshot. Samples are copied.
func (c *Collector) State() CollectorState {
	st := CollectorState{
		Opt:       c.opt,
		Retired:   c.retired,
		PhaseHist: c.phaseHist,
		Next:      c.next,
		Taken:     c.taken,
	}
	st.Ring = append([]Sample(nil), c.ring...)
	for i, s := range st.Ring {
		st.Ring[i].LIncs = append([]uint64(nil), s.LIncs...)
	}
	return st
}

// Restore rebuilds the collector from a captured state, preserving the ring
// capacity semantics of the original options.
func (c *Collector) Restore(st CollectorState) {
	c.opt = st.Opt.withDefaults()
	c.retired = st.Retired
	c.phaseHist = st.PhaseHist
	c.ring = make([]Sample, len(st.Ring), c.opt.RingCap)
	copy(c.ring, st.Ring)
	for i, s := range c.ring {
		c.ring[i].LIncs = append([]uint64(nil), s.LIncs...)
	}
	c.next = st.Next
	c.taken = st.Taken
}
