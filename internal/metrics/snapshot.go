package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// PhaseSnapshot is one attribution bucket in a snapshot: the accumulated
// cycles and, when a Collector was attached, the per-request distribution.
type PhaseSnapshot struct {
	Phase  string        `json:"phase"`
	Cycles uint64        `json:"cycles"`
	PerOp  *HistSnapshot `json:"per_op,omitempty"`
}

// PathSnapshot is one request path (read or write) in a snapshot.
type PathSnapshot struct {
	Ops          uint64          `json:"ops"`
	LatSumCycles uint64          `json:"lat_sum_cycles"`
	Latency      HistSnapshot    `json:"latency"`
	Phases       []PhaseSnapshot `json:"phases"`
}

// PhaseCycles returns the accumulated cycles of one bucket by name, 0 if
// absent.
func (p *PathSnapshot) PhaseCycles(name string) uint64 {
	for i := range p.Phases {
		if p.Phases[i].Phase == name {
			return p.Phases[i].Cycles
		}
	}
	return 0
}

// Snapshot is the exportable metrics of one controller run: identity,
// totals, per-path latency histograms and phase attribution, and (when
// sampling was enabled) the occupancy time series.
type Snapshot struct {
	Scheme   string `json:"scheme"`
	Workload string `json:"workload,omitempty"`
	// Tenant labels the snapshot with the serving-layer tenant the
	// controller belongs to; empty outside the multi-tenant server.
	Tenant string `json:"tenant,omitempty"`
	// Ops is the number of requests retired in the measured phase;
	// ExecCycles the measured makespan they produced.
	Ops        uint64       `json:"ops"`
	ExecCycles uint64       `json:"exec_cycles"`
	Read       PathSnapshot `json:"read"`
	Write      PathSnapshot `json:"write"`
	// Sampler state; zero/absent when no collector was attached.
	SampleEvery    uint64   `json:"sample_every,omitempty"`
	SamplesDropped uint64   `json:"samples_dropped,omitempty"`
	Series         []Sample `json:"series,omitempty"`
}

// BuildPath assembles one path's snapshot from the controller's always-on
// accounting plus (optionally) a collector's per-phase histograms.
func BuildPath(ops, latSum uint64, lat *Hist, phases *Breakdown, perOp *[NumPhases]Hist) PathSnapshot {
	p := PathSnapshot{Ops: ops, LatSumCycles: latSum, Latency: lat.Snapshot()}
	for ph := Phase(0); ph < NumPhases; ph++ {
		ps := PhaseSnapshot{Phase: ph.String(), Cycles: phases[ph]}
		if perOp != nil && perOp[ph].Count() > 0 {
			h := perOp[ph].Snapshot()
			ps.PerOp = &h
		}
		p.Phases = append(p.Phases, ps)
	}
	return p
}

// MakespanCycles sums the makespan-partition buckets (everything except
// queue_wait) across both paths; by construction it equals ExecCycles.
func (s *Snapshot) MakespanCycles() uint64 {
	var sum uint64
	for _, p := range []*PathSnapshot{&s.Read, &s.Write} {
		for i := range p.Phases {
			if p.Phases[i].Phase == PhaseQueueWait.String() {
				continue
			}
			sum += p.Phases[i].Cycles
		}
	}
	return sum
}

// EncodeJSON writes the snapshot as indented JSON. Field order is fixed by
// the struct definitions, so identical runs produce identical bytes.
func (s *Snapshot) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// EncodeJSONAll writes several snapshots as one JSON array.
func EncodeJSONAll(w io.Writer, snaps []*Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snaps)
}

// csvHeader is the flat column set shared by every CSV row kind.
const csvHeader = "type,scheme,workload,path,phase,cycles,ops,op,cycle,meta_dirty_frac,track_fill,write_queue_depth,lincs,tenant"

// WriteCSV writes the snapshot in a flat CSV form: one "summary" row per
// path (ops + latency sum), one "phase" row per (path, bucket), and one
// "series" row per retained sample. Columns not applicable to a row kind
// are left empty; LIncs are joined with '|'.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	return s.writeCSVRows(w)
}

// WriteCSVAll writes several snapshots under a single header.
func WriteCSVAll(w io.Writer, snaps []*Snapshot) error {
	if _, err := fmt.Fprintln(w, csvHeader); err != nil {
		return err
	}
	for _, s := range snaps {
		if err := s.writeCSVRows(w); err != nil {
			return err
		}
	}
	return nil
}

func (s *Snapshot) writeCSVRows(w io.Writer) error {
	ff := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	row := func(cells ...string) error {
		_, err := fmt.Fprintln(w, strings.Join(cells, ","))
		return err
	}
	if err := row("summary", s.Scheme, s.Workload, "", "exec",
		fmt.Sprint(s.ExecCycles), fmt.Sprint(s.Ops), "", "", "", "", "", "", s.Tenant); err != nil {
		return err
	}
	for _, p := range []struct {
		name string
		path *PathSnapshot
	}{{"read", &s.Read}, {"write", &s.Write}} {
		if err := row("summary", s.Scheme, s.Workload, p.name, "latency_sum",
			fmt.Sprint(p.path.LatSumCycles), fmt.Sprint(p.path.Ops), "", "", "", "", "", "", s.Tenant); err != nil {
			return err
		}
		for _, ph := range p.path.Phases {
			if err := row("phase", s.Scheme, s.Workload, p.name, ph.Phase,
				fmt.Sprint(ph.Cycles), "", "", "", "", "", "", "", s.Tenant); err != nil {
				return err
			}
		}
	}
	for _, sm := range s.Series {
		lincs := make([]string, len(sm.LIncs))
		for i, v := range sm.LIncs {
			lincs[i] = fmt.Sprint(v)
		}
		if err := row("series", s.Scheme, s.Workload, "", "", "", "",
			fmt.Sprint(sm.Op), fmt.Sprint(sm.Cycle), ff(sm.MetaDirtyFrac),
			ff(sm.TrackFill), fmt.Sprint(sm.WriteQueueDepth),
			strings.Join(lincs, "|"), s.Tenant); err != nil {
			return err
		}
	}
	return nil
}

// WriteSnapshotsFile writes snapshots to path, the format chosen by
// extension: ".csv" selects the flat CSV form, anything else indented
// JSON — a single object for one snapshot, an array otherwise.
func WriteSnapshotsFile(path string, snaps []*Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if filepath.Ext(path) == ".csv" {
		err = WriteCSVAll(f, snaps)
	} else if len(snaps) == 1 {
		err = snaps[0].EncodeJSON(f)
	} else {
		err = EncodeJSONAll(f, snaps)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// SystemSnapshot aggregates a multi-controller system: one merged view
// (histograms and phase totals folded together) plus the per-DIMM
// snapshots, whose time series are deliberately kept separate — occupancy
// trajectories of different DIMMs cannot be meaningfully interleaved.
type SystemSnapshot struct {
	Merged  Snapshot   `json:"merged"`
	PerDIMM []Snapshot `json:"per_dimm"`
}

// MergeSnapshots builds the system view of per-DIMM snapshots: counters
// summed, histograms merged bucket-wise, ExecCycles the parallel maximum,
// per-op phase histograms dropped (they stay per DIMM), series kept per
// DIMM.
func MergeSnapshots(per []Snapshot) *SystemSnapshot {
	sys := &SystemSnapshot{PerDIMM: per}
	if len(per) == 0 {
		return sys
	}
	m := &sys.Merged
	m.Scheme = per[0].Scheme
	m.Workload = "system"
	m.Tenant = per[0].Tenant
	for i := range per {
		s := &per[i]
		m.Ops += s.Ops
		if s.ExecCycles > m.ExecCycles {
			m.ExecCycles = s.ExecCycles
		}
		mergePath(&m.Read, &s.Read)
		mergePath(&m.Write, &s.Write)
	}
	return sys
}

func mergePath(dst, src *PathSnapshot) {
	dst.Ops += src.Ops
	dst.LatSumCycles += src.LatSumCycles
	mergeHistSnapshots(&dst.Latency, &src.Latency)
	if dst.Phases == nil {
		for _, ph := range src.Phases {
			dst.Phases = append(dst.Phases, PhaseSnapshot{Phase: ph.Phase, Cycles: ph.Cycles})
		}
		return
	}
	for i, ph := range src.Phases {
		if i < len(dst.Phases) && dst.Phases[i].Phase == ph.Phase {
			dst.Phases[i].Cycles += ph.Cycles
		}
	}
}

// EncodeJSON writes the system snapshot as indented JSON.
func (s *SystemSnapshot) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
