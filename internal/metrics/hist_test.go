package metrics

import (
	"testing"
	"testing/quick"
)

func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.99) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "hist: empty" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestHistBasics(t *testing.T) {
	var h Hist
	for _, v := range []uint64{1, 2, 3, 100, 1000} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	if h.Sum() != 1106 {
		t.Fatalf("Sum = %d", h.Sum())
	}
	if got, want := h.Mean(), float64(1106)/5; got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
}

func TestHistPercentileBounds(t *testing.T) {
	// Property: the reported quantile bound is >= the true quantile and
	// at most 2x (power-of-two buckets).
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Hist
		maxV := uint64(0)
		for _, v := range raw {
			h.Add(uint64(v))
			if uint64(v) > maxV {
				maxV = uint64(v)
			}
		}
		p100 := h.Percentile(1.0)
		return p100 >= maxV
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistPercentileMonotone(t *testing.T) {
	var h Hist
	for i := uint64(1); i <= 10000; i++ {
		h.Add(i)
	}
	p50, p95, p99 := h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("percentiles not monotone: %d %d %d", p50, p95, p99)
	}
	// p50 of uniform 1..10000 is ~5000; bucket bound gives <= 8191.
	if p50 < 4096 || p50 > 8191 {
		t.Fatalf("p50 bound = %d, want within [4096, 8191]", p50)
	}
}

func TestHistMerge(t *testing.T) {
	var a, b Hist
	for i := 0; i < 100; i++ {
		a.Add(10)
		b.Add(1000)
	}
	a.Merge(&b)
	if a.Count() != 200 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Max() != 1000 {
		t.Fatalf("merged max = %d", a.Max())
	}
	if a.Mean() != 505 {
		t.Fatalf("merged mean = %v", a.Mean())
	}
}

func TestHistHugeValue(t *testing.T) {
	var h Hist
	h.Add(1 << 62)
	if h.Percentile(1.0) == 0 {
		t.Fatal("huge value lost")
	}
}

func TestHistSnapshotRoundTrip(t *testing.T) {
	var h Hist
	for _, v := range []uint64{0, 1, 5, 100, 100, 3000} {
		h.Add(v)
	}
	s := h.Snapshot()
	if s.Count != h.Count() || s.Sum != h.Sum() || s.Max != h.Max() {
		t.Fatalf("snapshot totals mismatch: %+v", s)
	}
	if s.P50 != h.Percentile(0.5) || s.P99 != h.Percentile(0.99) {
		t.Fatalf("snapshot percentiles mismatch: %+v", s)
	}
	// Trailing zeros are trimmed; the retained prefix must preserve mass.
	var mass uint64
	for _, c := range s.Buckets {
		mass += c
	}
	if mass != s.Count {
		t.Fatalf("bucket mass %d != count %d", mass, s.Count)
	}
}

func TestHistSnapshotEmpty(t *testing.T) {
	var h Hist
	s := h.Snapshot()
	if s.Count != 0 || s.Buckets != nil {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestMergeHistSnapshots(t *testing.T) {
	var a, b Hist
	for i := 0; i < 50; i++ {
		a.Add(8)
	}
	for i := 0; i < 50; i++ {
		b.Add(1 << 20)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	mergeHistSnapshots(&sa, &sb)

	// The merged snapshot must agree with merging the live histograms.
	a.Merge(&b)
	want := a.Snapshot()
	if sa.Count != want.Count || sa.Sum != want.Sum || sa.Max != want.Max ||
		sa.P50 != want.P50 || sa.P95 != want.P95 || sa.P99 != want.P99 {
		t.Fatalf("merged snapshot %+v, want %+v", sa, want)
	}

	// Merging into an empty snapshot (controller with no ops) must also work.
	var empty HistSnapshot
	mergeHistSnapshots(&empty, &want)
	if empty.Count != want.Count || empty.P99 != want.P99 {
		t.Fatalf("merge into empty = %+v, want %+v", empty, want)
	}
}
