package metrics

// Options configures a Collector.
type Options struct {
	// SampleEvery is the number of retired requests between time-series
	// probes; 0 selects the default (256).
	SampleEvery uint64
	// RingCap bounds the number of samples kept (a ring: once full, the
	// oldest samples are overwritten); 0 selects the default (4096).
	RingCap int
}

// DefaultOptions returns the default sampling cadence and ring bound.
func DefaultOptions() Options { return Options{SampleEvery: 256, RingCap: 4096} }

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.SampleEvery == 0 {
		o.SampleEvery = d.SampleEvery
	}
	if o.RingCap == 0 {
		o.RingCap = d.RingCap
	}
	return o
}

// Sample is one time-series probe of controller occupancy state, captured
// every Options.SampleEvery retired requests.
type Sample struct {
	// Op is the number of requests retired in the measured phase when the
	// probe fired; Cycle the measured makespan at that point.
	Op    uint64 `json:"op"`
	Cycle uint64 `json:"cycle"`
	// MetaDirtyFrac is the dirty fraction of the metadata cache (dirty
	// lines / capacity).
	MetaDirtyFrac float64 `json:"meta_dirty_frac"`
	// TrackFill is the fill fraction of the scheme's dirty-tracking
	// structure (Steins record-line cache); 0 for schemes without one.
	TrackFill float64 `json:"track_fill"`
	// WriteQueueDepth is the NVM write-pending-queue occupancy.
	WriteQueueDepth int `json:"write_queue_depth"`
	// LIncs are the per-level trust-base magnitudes (Steins); nil for
	// schemes without them.
	LIncs []uint64 `json:"lincs,omitempty"`
}

// Collector accumulates the optional, heavier metrics a controller only
// gathers when one is attached: per-phase per-request histograms and the
// occupancy time series. The always-on phase totals live in the
// controller's own Stats; a nil *Collector disables everything here at the
// cost of one pointer check per request.
type Collector struct {
	opt     Options
	retired uint64
	// phaseHist[0] is the read path, [1] the write path; per phase, the
	// distribution of per-request cycles in that bucket (zero-cycle
	// requests are not recorded, so Count is "requests touching the
	// phase").
	phaseHist [2][NumPhases]Hist
	ring      []Sample
	next      int
	taken     uint64
}

// NewCollector builds a collector; zero option fields select defaults.
func NewCollector(opt Options) *Collector {
	o := opt.withDefaults()
	return &Collector{opt: o, ring: make([]Sample, 0, o.RingCap)}
}

// Options returns the effective (defaulted) options.
func (c *Collector) Options() Options { return c.opt }

// Reset drops everything accumulated so far; the controller calls it from
// ResetStats at the end of the warm-up phase.
func (c *Collector) Reset() {
	c.retired = 0
	c.phaseHist = [2][NumPhases]Hist{}
	c.ring = c.ring[:0]
	c.next = 0
	c.taken = 0
}

// Record folds one retired request's normalized breakdown into the
// per-phase histograms and reports whether a time-series probe is due.
func (c *Collector) Record(isWrite bool, bd *Breakdown) bool {
	k := 0
	if isWrite {
		k = 1
	}
	for ph, v := range bd {
		if v != 0 {
			c.phaseHist[k][ph].Add(v)
		}
	}
	c.retired++
	return c.retired%c.opt.SampleEvery == 0
}

// AddSample appends a probe to the ring, overwriting the oldest once full.
func (c *Collector) AddSample(s Sample) {
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, s)
	} else {
		c.ring[c.next] = s
		c.next = (c.next + 1) % cap(c.ring)
	}
	c.taken++
}

// Samples returns the retained probes in chronological order.
func (c *Collector) Samples() []Sample {
	out := make([]Sample, 0, len(c.ring))
	out = append(out, c.ring[c.next:]...)
	out = append(out, c.ring[:c.next]...)
	return out
}

// SamplesTaken returns the number of probes ever taken (retained plus
// overwritten).
func (c *Collector) SamplesTaken() uint64 { return c.taken }

// PhaseHist returns the per-request cycle histogram of one (path, phase).
func (c *Collector) PhaseHist(isWrite bool, ph Phase) *Hist {
	return &c.PathHists(isWrite)[ph]
}

// PathHists returns one path's full per-phase histogram array; snapshot
// building iterates it.
func (c *Collector) PathHists(isWrite bool) *[NumPhases]Hist {
	k := 0
	if isWrite {
		k = 1
	}
	return &c.phaseHist[k]
}
