// Package metrics is the controller observability layer: per-phase
// latency attribution (where a request's cycles actually go), log-2-bucket
// latency histograms, a periodic time-series sampler of controller
// occupancy state, and JSON/CSV snapshot export.
//
// The package is deliberately free of simulator dependencies so the memory
// controller (and the BMT baseline controller) can import it; the
// controller pushes data in, nothing here reaches back out.
package metrics

// Phase is one bucket of the per-request cycle attribution. The controller
// splits every retired request's cycles across these buckets; summed over a
// run, all buckets except PhaseQueueWait partition the measured makespan
// exactly (see DESIGN.md "Per-phase latency attribution").
type Phase int

// Attribution buckets.
const (
	// PhaseQueueWait is the time a request waited for the controller to
	// finish earlier requests (reqStart - arrival). It is a latency-view
	// bucket: waits of queued requests overlap the service of the request
	// ahead of them, so this bucket is NOT part of the makespan partition.
	PhaseQueueWait Phase = iota
	// PhaseMetaFetch is metadata-chain fetch work: metadata-cache hit
	// latency plus NVM reads of SIT node lines on the verification chain.
	PhaseMetaFetch
	// PhaseVerify is hash-unit work on tree nodes: verifying fetched nodes
	// against their parent counters and sealing victims at eviction.
	PhaseVerify
	// PhaseCrypto is data-path crypto: OTP generation (AES) and the data
	// block's HMAC on reads and writes.
	PhaseCrypto
	// PhaseNVMRead is NVM data-line read latency (including re-encryption
	// reads after a minor overflow).
	PhaseNVMRead
	// PhaseWriteDrain is time stalled on the NVM write-pending queue.
	PhaseWriteDrain
	// PhaseOther is residual service time not claimed by a named bucket:
	// scheme bookkeeping (record-line maintenance, LInc register updates,
	// shadow/bitmap persists, buffer drains' non-fetch work).
	PhaseOther
	// PhaseIdle is controller idle time between requests (the gap when a
	// request arrives after the previous one retired). It completes the
	// makespan partition.
	PhaseIdle
	// NumPhases bounds the bucket space.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"queue_wait", "meta_fetch", "verify_chain", "crypto",
	"nvm_read", "write_drain", "other", "idle",
}

// String returns the snake_case bucket name used in exports.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "phase(?)"
	}
	return phaseNames[p]
}

// Breakdown is one request's per-phase cycle split.
type Breakdown [NumPhases]uint64

// servicePhases iterates the buckets that partition a request's service
// time: every bucket except PhaseQueueWait and PhaseIdle.
const serviceFirst, serviceLast = PhaseMetaFetch, PhaseOther

// NormalizeService adjusts the service buckets of bd (PhaseMetaFetch
// through PhaseOther) so they sum to exactly service cycles.
//
// Under-attribution (uninstrumented scheme bookkeeping) lands in
// PhaseOther. Over-attribution happens when the controller overlaps
// latencies — e.g. OTP generation hiding under the data fetch — in which
// case the hidden cycles are reclaimed pro-rata across all buckets, with
// the integer rounding remainder going to PhaseOther. The result is
// deterministic and the buckets always sum to service exactly.
func NormalizeService(bd *Breakdown, service uint64) {
	var total uint64
	for ph := serviceFirst; ph <= serviceLast; ph++ {
		total += bd[ph]
	}
	switch {
	case total == service:
	case total < service:
		bd[PhaseOther] += service - total
	default:
		var sum uint64
		for ph := serviceFirst; ph <= serviceLast; ph++ {
			bd[ph] = bd[ph] * service / total
			sum += bd[ph]
		}
		bd[PhaseOther] += service - sum
	}
}

// MakespanCycles sums the makespan-partition buckets (everything except
// PhaseQueueWait) of an accumulated per-phase total.
func MakespanCycles(phases *Breakdown) uint64 {
	var sum uint64
	for ph := Phase(0); ph < NumPhases; ph++ {
		if ph == PhaseQueueWait {
			continue
		}
		sum += phases[ph]
	}
	return sum
}
