package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot builds a fully-populated snapshot with fixed values, the
// fixture behind the golden-file encoding tests.
func goldenSnapshot() *Snapshot {
	var rl, wl Hist
	for _, v := range []uint64{120, 130, 700} {
		rl.Add(v)
	}
	for _, v := range []uint64{300, 2000} {
		wl.Add(v)
	}
	rp := Breakdown{}
	rp[PhaseQueueWait] = 40
	rp[PhaseMetaFetch] = 300
	rp[PhaseVerify] = 60
	rp[PhaseCrypto] = 90
	rp[PhaseNVMRead] = 400
	rp[PhaseIdle] = 60
	wp := Breakdown{}
	wp[PhaseMetaFetch] = 500
	wp[PhaseCrypto] = 120
	wp[PhaseWriteDrain] = 1600
	wp[PhaseOther] = 80
	wp[PhaseIdle] = 0

	var perOp [NumPhases]Hist
	perOp[PhaseCrypto].Add(30)
	perOp[PhaseCrypto].Add(60)

	s := &Snapshot{
		Scheme:      "Steins-GC",
		Workload:    "cactusADM",
		Ops:         5,
		ExecCycles:  3210,
		SampleEvery: 2,
		Series: []Sample{
			{Op: 2, Cycle: 1200, MetaDirtyFrac: 0.25, TrackFill: 0.5, WriteQueueDepth: 3, LIncs: []uint64{4, 2, 1}},
			{Op: 4, Cycle: 2900, MetaDirtyFrac: 0.375, TrackFill: 0.75, WriteQueueDepth: 1, LIncs: []uint64{6, 3, 1}},
		},
	}
	s.Read = BuildPath(3, 950, &rl, &rp, &perOp)
	s.Write = BuildPath(2, 2300, &wl, &wp, nil)
	return s
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestSnapshotJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", buf.Bytes())

	// The golden bytes must decode back to an equivalent snapshot.
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("golden JSON does not round-trip: %v", err)
	}
	if back.Ops != 5 || back.ExecCycles != 3210 || len(back.Series) != 2 {
		t.Fatalf("round-trip lost data: %+v", back)
	}
	if got := back.Read.PhaseCycles(PhaseNVMRead.String()); got != 400 {
		t.Fatalf("round-trip nvm_read = %d, want 400", got)
	}
}

func TestSnapshotCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.csv", buf.Bytes())

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	// 1 exec summary + 2 path summaries + 2*NumPhases phase rows + 2 series rows.
	want := 1 + 2 + 2*int(NumPhases) + 2
	if len(lines)-1 != want {
		t.Fatalf("rows = %d, want %d", len(lines)-1, want)
	}
	cols := strings.Count(csvHeader, ",") + 1
	for i, l := range lines {
		if strings.Count(l, ",")+1 != cols {
			t.Fatalf("row %d has wrong arity: %q", i, l)
		}
	}
}

func TestWriteCSVAllSharesHeader(t *testing.T) {
	a, b := goldenSnapshot(), goldenSnapshot()
	b.Scheme = "WB-GC"
	var buf bytes.Buffer
	if err := WriteCSVAll(&buf, []*Snapshot{a, b}); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), csvHeader); got != 1 {
		t.Fatalf("header appears %d times, want 1", got)
	}
	if !strings.Contains(buf.String(), "WB-GC") {
		t.Fatal("second snapshot missing")
	}
}

func TestMakespanCyclesSnapshot(t *testing.T) {
	s := goldenSnapshot()
	// Golden fixture: read 850 service + 60 idle, write 2300 service + 0
	// idle; queue_wait excluded. Equals the fixture's ExecCycles.
	if got := s.MakespanCycles(); got != s.ExecCycles {
		t.Fatalf("MakespanCycles = %d, want %d", got, s.ExecCycles)
	}
}

func TestMergeSnapshots(t *testing.T) {
	a, b := goldenSnapshot(), goldenSnapshot()
	b.Workload = "dimm-1"
	b.ExecCycles = 4000
	sys := MergeSnapshots([]Snapshot{*a, *b})
	m := &sys.Merged
	if m.Workload != "system" || m.Scheme != "Steins-GC" {
		t.Fatalf("merged identity = %q/%q", m.Scheme, m.Workload)
	}
	if m.Ops != 10 {
		t.Fatalf("merged ops = %d", m.Ops)
	}
	if m.ExecCycles != 4000 {
		t.Fatalf("merged exec = %d, want parallel max 4000", m.ExecCycles)
	}
	if got := m.Read.PhaseCycles(PhaseNVMRead.String()); got != 800 {
		t.Fatalf("merged nvm_read = %d, want 800", got)
	}
	if m.Read.Latency.Count != 6 || m.Write.Latency.Count != 4 {
		t.Fatalf("merged hist counts = %d/%d", m.Read.Latency.Count, m.Write.Latency.Count)
	}
	if len(m.Series) != 0 {
		t.Fatal("merged view must not interleave per-DIMM series")
	}
	if len(sys.PerDIMM) != 2 || len(sys.PerDIMM[1].Series) != 2 {
		t.Fatal("per-DIMM snapshots lost")
	}
}

func TestMergeSnapshotsEmpty(t *testing.T) {
	sys := MergeSnapshots(nil)
	if sys.Merged.Ops != 0 || len(sys.PerDIMM) != 0 {
		t.Fatalf("empty merge = %+v", sys)
	}
}

func TestWriteSnapshotsFile(t *testing.T) {
	dir := t.TempDir()
	one := []*Snapshot{goldenSnapshot()}
	two := []*Snapshot{goldenSnapshot(), goldenSnapshot()}

	jpath := filepath.Join(dir, "one.json")
	if err := WriteSnapshotsFile(jpath, one); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(jpath)
	var single Snapshot
	if err := json.Unmarshal(data, &single); err != nil {
		t.Fatalf("single snapshot must encode as an object: %v", err)
	}

	jpath2 := filepath.Join(dir, "two.json")
	if err := WriteSnapshotsFile(jpath2, two); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(jpath2)
	var arr []Snapshot
	if err := json.Unmarshal(data, &arr); err != nil || len(arr) != 2 {
		t.Fatalf("two snapshots must encode as an array: %v", err)
	}

	cpath := filepath.Join(dir, "out.csv")
	if err := WriteSnapshotsFile(cpath, two); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(cpath)
	if !strings.HasPrefix(string(data), csvHeader) {
		t.Fatal(".csv extension must select CSV")
	}
}
