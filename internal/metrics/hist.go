package metrics

import (
	"fmt"
	"math/bits"
	"strings"
)

// Hist is a power-of-two latency histogram: bucket i counts samples in
// [2^(i-1), 2^i) (bucket 0 holds zeros). It gives tail-latency visibility
// (p50/p95/p99) without storing samples; the zero value is ready to use.
type Hist struct {
	buckets [48]uint64
	count   uint64
	sum     uint64
	max     uint64
}

// Add records one sample.
func (h *Hist) Add(v uint64) {
	i := bits.Len64(v)
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Hist) Count() uint64 { return h.count }

// Sum returns the total of all samples.
func (h *Hist) Sum() uint64 { return h.sum }

// Mean returns the arithmetic mean of the samples.
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Hist) Max() uint64 { return h.max }

// Percentile returns an upper bound of the p-quantile (0 < p <= 1): the
// top of the bucket containing it.
func (h *Hist) Percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	return percentileFromBuckets(h.buckets[:], h.count, h.max, p)
}

// percentileFromBuckets is the bucket-walk shared by live histograms and
// decoded snapshots.
func percentileFromBuckets(buckets []uint64, count, max uint64, p float64) uint64 {
	target := uint64(p * float64(count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, c := range buckets {
		seen += c
		if seen >= target {
			if i == 0 {
				return 0
			}
			return 1<<uint(i) - 1
		}
	}
	return max
}

// String renders a compact summary.
func (h *Hist) String() string {
	if h.count == 0 {
		return "hist: empty"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.0f p50<=%d p95<=%d p99<=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99), h.max)
	return b.String()
}

// Merge folds another histogram into h; the multi-controller system
// aggregates per-controller histograms this way.
func (h *Hist) Merge(o *Hist) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// HistSnapshot is the exportable form of a Hist: summary stats plus the
// raw bucket counts (trailing zero buckets trimmed) so consumers can
// recompute any quantile.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Max     uint64   `json:"max"`
	P50     uint64   `json:"p50"`
	P95     uint64   `json:"p95"`
	P99     uint64   `json:"p99"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot exports the histogram.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count, Sum: h.sum, Mean: h.Mean(), Max: h.max,
		P50: h.Percentile(0.5), P95: h.Percentile(0.95), P99: h.Percentile(0.99),
	}
	last := -1
	for i, c := range h.buckets {
		if c != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]uint64(nil), h.buckets[:last+1]...)
	}
	return s
}

// mergeHistSnapshots folds o into s bucket-wise and recomputes the
// quantile bounds from the merged buckets.
func mergeHistSnapshots(s, o *HistSnapshot) {
	if len(o.Buckets) > len(s.Buckets) {
		s.Buckets = append(s.Buckets, make([]uint64, len(o.Buckets)-len(s.Buckets))...)
	}
	for i, c := range o.Buckets {
		s.Buckets[i] += c
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
		s.P50 = percentileFromBuckets(s.Buckets, s.Count, s.Max, 0.5)
		s.P95 = percentileFromBuckets(s.Buckets, s.Count, s.Max, 0.95)
		s.P99 = percentileFromBuckets(s.Buckets, s.Count, s.Max, 0.99)
	}
}
