// Package rng provides deterministic pseudo-random number generation for
// reproducible simulations.
//
// The simulator must produce bit-identical traces across runs and hosts, so
// it cannot depend on math/rand's global state or on seeding from time. RNG
// here is a from-scratch xoshiro256** generator plus the samplers the trace
// generators need (uniform, Zipf, geometric).
package rng

import "math"

// Source is a deterministic xoshiro256** pseudo-random generator.
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from the given seed using splitmix64, which
// guarantees a well-mixed non-zero internal state for any seed value.
func New(seed uint64) *Source {
	r := &Source{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless bounded sampling with rejection to
	// remove modulo bias.
	hi, lo := mul64(r.Uint64(), n)
	if lo < n {
		thresh := (-n) % n
		for lo < thresh {
			hi, lo = mul64(r.Uint64(), n)
		}
	}
	return hi
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool {
	return r.Float64() < p
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s, matching the skewed reuse behaviour of pointer-heavy
// benchmarks. It precomputes the CDF once, so sampling is O(log n).
type Zipf struct {
	src *Source
	cdf []float64
}

// NewZipf builds a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{src: src, cdf: cdf}
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Geometric returns a sample from a geometric distribution with success
// probability p in (0, 1]: the number of failures before the first success.
func (r *Source) Geometric(p float64) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with p <= 0")
	}
	u := r.Float64()
	if u == 0 {
		return 0
	}
	return int(math.Log(1-u) / math.Log(1-p))
}
