package rng

// State returns the generator's internal xoshiro256** state so a snapshot
// can capture the exact position of the stream. Restoring it with Restore
// resumes the sequence bit-exactly — required both for trace generators and
// for the device's media-fault stream, whose draws are entangled with the
// access sequence.
func (r *Source) State() [4]uint64 { return r.s }

// Restore overwrites the generator state with a previously captured State.
func (r *Source) Restore(s [4]uint64) { r.s = s }
