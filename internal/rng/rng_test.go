package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d, same-seed sources diverged", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	var or uint64
	for i := 0; i < 64; i++ {
		or |= r.Uint64()
	}
	if or == 0 {
		t.Fatal("seed 0 produced all-zero output")
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(-1) did not panic")
		}
	}()
	New(1).Intn(-1)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: got %d, want ~%.0f (±10%%)", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(5)
	hits := 0
	const draws = 100000
	for i := 0; i < draws; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) hit rate %v, want ~0.3", got)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(11)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) not hotter than rank 50 (%d)", counts[0], counts[50])
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d) not hotter than rank 10 (%d)", counts[0], counts[10])
	}
}

func TestZipfRange(t *testing.T) {
	r := New(13)
	z := NewZipf(r, 7, 0.8)
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 7 {
			t.Fatalf("Zipf out of range: %d", v)
		}
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewZipf(0) did not panic")
		}
	}()
	NewZipf(New(1), 0, 1)
}

func TestGeometricMean(t *testing.T) {
	r := New(17)
	const p, draws = 0.25, 200000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	mean := float64(sum) / draws
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > want*0.05 {
		t.Fatalf("geometric mean %v, want ~%v", mean, want)
	}
}

func TestGeometricEdge(t *testing.T) {
	r := New(19)
	if g := r.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestMul64(t *testing.T) {
	cases := []struct {
		x, y, hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<16, 0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Next()
	}
}
