package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format: traces can be recorded once and replayed across
// schemes/configurations or shared between machines, with the header
// carrying the generating profile's name.
//
//	magic "STTR" | version u16 | name len u16 | name | op count u64 |
//	ops: addr u64 | gap u32 | flags u8   (flag bit 0: write)
const (
	fileMagic   = "STTR"
	fileVersion = 1
)

// WriteFile serialises a trace.
func WriteFile(w io.Writer, name string, ops []Op) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(fileMagic); err != nil {
		return err
	}
	if len(name) > 1<<16-1 {
		return fmt.Errorf("trace: name too long")
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint16(hdr[0:2], fileVersion)
	binary.LittleEndian.PutUint16(hdr[2:4], uint16(len(name)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	var cnt [8]byte
	binary.LittleEndian.PutUint64(cnt[:], uint64(len(ops)))
	if _, err := bw.Write(cnt[:]); err != nil {
		return err
	}
	var rec [13]byte
	for _, op := range ops {
		binary.LittleEndian.PutUint64(rec[0:8], op.Addr)
		if op.Gap > 1<<32-1 {
			return fmt.Errorf("trace: gap %d exceeds 32 bits", op.Gap)
		}
		binary.LittleEndian.PutUint32(rec[8:12], uint32(op.Gap))
		rec[12] = 0
		if op.IsWrite {
			rec[12] = 1
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFile deserialises a trace written by WriteFile.
func ReadFile(r io.Reader) (name string, ops []Op, err error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic[:]) != fileMagic {
		return "", nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:2]); v != fileVersion {
		return "", nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	nameBuf := make([]byte, binary.LittleEndian.Uint16(hdr[2:4]))
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return "", nil, fmt.Errorf("trace: reading name: %w", err)
	}
	var cnt [8]byte
	if _, err := io.ReadFull(br, cnt[:]); err != nil {
		return "", nil, fmt.Errorf("trace: reading count: %w", err)
	}
	n := binary.LittleEndian.Uint64(cnt[:])
	const maxOps = 1 << 30
	if n > maxOps {
		return "", nil, fmt.Errorf("trace: implausible op count %d", n)
	}
	// Never trust the declared count for allocation (a forged header must
	// not reserve gigabytes); grow with the records actually present.
	ops = make([]Op, 0, min(n, 1<<16))
	var rec [13]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return "", nil, fmt.Errorf("trace: reading op %d: %w", i, err)
		}
		ops = append(ops, Op{
			Addr:    binary.LittleEndian.Uint64(rec[0:8]),
			Gap:     uint64(binary.LittleEndian.Uint32(rec[8:12])),
			IsWrite: rec[12]&1 == 1,
		})
	}
	return string(nameBuf), ops, nil
}

// Record materialises n operations of a profile.
func Record(p Profile, seed uint64, n int) []Op {
	g := New(p, seed, n)
	ops := make([]Op, 0, n)
	for {
		op, ok := g.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}

// Replay wraps a recorded op slice in the Generator interface shape.
type Replay struct {
	name string
	ops  []Op
	pos  int
}

// NewReplay builds a replayer over recorded operations.
func NewReplay(name string, ops []Op) *Replay {
	return &Replay{name: name, ops: ops}
}

// Name returns the recorded trace's name.
func (r *Replay) Name() string { return r.name }

// Remaining returns how many operations are left.
func (r *Replay) Remaining() int { return len(r.ops) - r.pos }

// Reset rewinds the replayer to the first operation.
func (r *Replay) Reset() { r.pos = 0 }

// Next returns the next recorded operation.
func (r *Replay) Next() (Op, bool) {
	if r.pos >= len(r.ops) {
		return Op{}, false
	}
	op := r.ops[r.pos]
	r.pos++
	return op, true
}
