package trace

import "fmt"

// Interleave selects the granularity at which a global physical address
// space is distributed across channels (shards). Real secure-NVM systems
// interleave consecutive chunks round-robin across channels so independent
// controllers serve disjoint slices of the address space; the hash mode
// models address-scrambled interleaving (used to defeat pathological
// strides) at cache-line granularity.
type Interleave int

// Interleave modes.
const (
	InterleaveLine Interleave = iota // 64 B cache-line round-robin
	InterleavePage                   // 4 KiB page round-robin
	InterleaveHash                   // hashed cache-line scatter
)

var interleaveNames = [...]string{"line", "page", "hash"}

// String returns the flag spelling of the mode.
func (iv Interleave) String() string {
	if iv < 0 || int(iv) >= len(interleaveNames) {
		return fmt.Sprintf("interleave(%d)", int(iv))
	}
	return interleaveNames[iv]
}

// ParseInterleave maps a flag spelling to its mode.
func ParseInterleave(s string) (Interleave, error) {
	for i, n := range interleaveNames {
		if s == n {
			return Interleave(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown interleave %q (have line, page, hash)", s)
}

// ChunkBytes is the contiguous run of addresses a mode keeps on one shard.
func (iv Interleave) ChunkBytes() uint64 {
	if iv == InterleavePage {
		return 4096
	}
	return 64
}

// mix64 is a splitmix-style finalizer; the hash mode scatters cache lines
// with it so that any fixed stride still spreads across shards.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashShard maps a data address to its shard under the hash interleave:
// the owning shard of addr's 64 B line, for any consumer that routes by
// the scattered mapping without the splitter's first-touch local
// compaction (the serving layer's pool → placement-group routing keeps
// hash-mode local addresses identical to global ones, so routing must be
// a pure function of the address).
func HashShard(addr uint64, shards int) int {
	return int(mix64(addr/64) % uint64(shards))
}

// ShardedOp is one operation routed to a shard: the embedded Op carries the
// shard-local address and shard-local inter-arrival gap, while GlobalAddr
// and Index preserve the operation's identity in the source stream (payload
// derivation and split→merge round-trip checks key off them).
type ShardedOp struct {
	Op
	GlobalAddr uint64
	Index      uint64 // global op ordinal, 0-based
}

// Splitter partitions one operation stream across n shards by address
// interleaving. It owns the virtual clock: global trace time advances with
// every source operation, and each shard observes the correct local
// inter-arrival gap (the time since the previous request routed to it), so
// per-shard replay is bit-identical to routing the stream through an
// interleaved multi-controller system sequentially.
//
// Local addresses are compacted so each shard's controller models only its
// slice of the space: line/page modes use chunk arithmetic (the scheme
// internal/multi routes with), the hash mode assigns local lines
// first-touch in stream order. Both are deterministic functions of the
// stream alone, independent of how the shards are later driven.
//
// Not safe for concurrent use; the split is inherently sequential (it
// defines the global time base) and is cheap relative to simulating the
// operations it routes.
type Splitter struct {
	src   Stream
	n     uint64
	iv    Interleave
	chunk uint64

	// LimitLocalBytes, when non-zero, bounds each shard's local address
	// space: the hash mode's first-touch allocator reports an error instead
	// of handing out a local line beyond it. Line/page modes never exceed
	// ceil(globalChunks/n)*chunk by construction.
	LimitLocalBytes uint64

	now     uint64   // global trace time (sum of source gaps)
	last    []uint64 // per-shard global time of the last routed op
	emitted uint64   // source ops consumed so far

	// Hash-mode first-touch compaction state.
	localLine []map[uint64]uint64 // per shard: global line -> local line
	nextLine  []uint64

	bufs [][]ShardedOp // reusable per-shard epoch batches
}

// NewSplitter builds a splitter routing src across shards.
func NewSplitter(src Stream, shards int, iv Interleave) *Splitter {
	if shards <= 0 {
		panic("trace: splitter needs at least one shard")
	}
	sp := &Splitter{
		src:   src,
		n:     uint64(shards),
		iv:    iv,
		chunk: iv.ChunkBytes(),
		last:  make([]uint64, shards),
		bufs:  make([][]ShardedOp, shards),
	}
	if iv == InterleaveHash {
		sp.localLine = make([]map[uint64]uint64, shards)
		for i := range sp.localLine {
			sp.localLine[i] = make(map[uint64]uint64)
		}
		sp.nextLine = make([]uint64, shards)
	}
	return sp
}

// Name returns the source stream's name.
func (sp *Splitter) Name() string {
	if sp.src == nil {
		return "unbound"
	}
	return sp.src.Name()
}

// Rebind points the splitter at a new source stream. Routing state — the
// virtual clock, per-shard arrival times, first-touch assignments — is
// preserved, so successive sources behave like one concatenated stream.
func (sp *Splitter) Rebind(src Stream) { sp.src = src }

// Shards returns the shard count.
func (sp *Splitter) Shards() int { return len(sp.last) }

// Emitted returns how many source operations have been routed so far.
func (sp *Splitter) Emitted() uint64 { return sp.emitted }

// ShardBytes returns the local address-space size one shard needs to cover
// every global address below dataBytes under this splitter's mode.
func (sp *Splitter) ShardBytes(dataBytes uint64) uint64 {
	return ShardBytes(dataBytes, len(sp.last), sp.iv)
}

// ShardBytes sizes one shard's slice of a dataBytes global space: the
// chunks are dealt round-robin, so a shard holds at most ceil(chunks/n) of
// them. The hash mode compacts first-touch and is bounded by the same
// figure only in expectation; callers give it the same capacity and the
// splitter reports an error if scatter imbalance ever exceeds it.
func ShardBytes(dataBytes uint64, shards int, iv Interleave) uint64 {
	chunk := iv.ChunkBytes()
	chunks := (dataBytes + chunk - 1) / chunk
	perShard := (chunks + uint64(shards) - 1) / uint64(shards)
	return perShard * chunk
}

// Route maps a global data address to (shard, local address). For the hash
// mode, addresses not yet seen in the stream are assigned a fresh local
// line (first-touch), exactly as the split itself would.
func (sp *Splitter) Route(addr uint64) (int, uint64) {
	if sp.iv == InterleaveHash {
		line := addr / 64
		shard := int(mix64(line) % sp.n)
		loc, ok := sp.localLine[shard][line]
		if !ok {
			loc = sp.nextLine[shard]
			sp.nextLine[shard]++
			sp.localLine[shard][line] = loc
		}
		return shard, loc*64 + addr%64
	}
	chunk := addr / sp.chunk
	shard := int(chunk % sp.n)
	local := (chunk/sp.n)*sp.chunk + addr%sp.chunk
	return shard, local
}

// NextEpoch routes up to budget further source operations into per-shard
// batches. The returned slices are valid until the next call (buffers are
// reused). n is the number of source ops consumed; n == 0 means the source
// is exhausted. A non-nil error reports hash-mode local-address overflow
// (LimitLocalBytes exceeded); the epoch is unusable then.
func (sp *Splitter) NextEpoch(budget int) (batches [][]ShardedOp, n int, err error) {
	return sp.NextEpochInto(budget, sp.bufs)
}

// NextEpochInto is NextEpoch routing into caller-provided per-shard
// buffers (len(bufs) must equal Shards(); each is resliced to empty and
// grown as needed). A pipelined driver alternates two buffer sets so the
// split of epoch e+1 can overlap the drive of epoch e without aliasing
// the batches the workers are still reading.
func (sp *Splitter) NextEpochInto(budget int, bufs [][]ShardedOp) (batches [][]ShardedOp, n int, err error) {
	if len(bufs) != len(sp.last) {
		panic(fmt.Sprintf("trace: NextEpochInto with %d buffers for %d shards", len(bufs), len(sp.last)))
	}
	for i := range bufs {
		bufs[i] = bufs[i][:0]
	}
	for sp.src != nil && n < budget {
		op, ok := sp.src.Next()
		if !ok {
			break
		}
		shard, local := sp.Route(op.Addr)
		if sp.LimitLocalBytes != 0 && local >= sp.LimitLocalBytes {
			return bufs, n, fmt.Errorf(
				"trace: shard %d local address %#x beyond capacity %#x (hash scatter imbalance; raise DataBytes)",
				shard, local, sp.LimitLocalBytes)
		}
		sp.now += op.Gap
		bufs[shard] = append(bufs[shard], ShardedOp{
			Op:         Op{Addr: local, IsWrite: op.IsWrite, Gap: sp.now - sp.last[shard]},
			GlobalAddr: op.Addr,
			Index:      sp.emitted,
		})
		sp.last[shard] = sp.now
		sp.emitted++
		n++
	}
	return bufs, n, nil
}
