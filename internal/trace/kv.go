package trace

// KVMixes returns YCSB-like key-value service mixes. They complement the
// SPEC and STAR persistent profiles with the read/write ratios and reuse
// skews of the standard cloud-serving workloads: an update-heavy zipfian
// mix (YCSB-A-like), a read-mostly zipfian mix (YCSB-B-like), a
// read-latest mix (YCSB-D-like) and an update-heavy uniform mix. The
// campaign engine draws these as workloads and overrides the footprint
// per case, so the defaults here only matter for standalone use.
func KVMixes() []Profile {
	return []Profile{
		{Name: "kv_a_zipf", FootprintBytes: 64 << 20, WriteFrac: 0.50, GapMean: 300, Pattern: Zipf, ZipfS: 0.99},
		{Name: "kv_b_zipf", FootprintBytes: 64 << 20, WriteFrac: 0.05, GapMean: 300, Pattern: Zipf, ZipfS: 0.99},
		{Name: "kv_d_latest", FootprintBytes: 64 << 20, WriteFrac: 0.05, GapMean: 300, Pattern: Latest, ZipfS: 0.99},
		{Name: "kv_uniform", FootprintBytes: 64 << 20, WriteFrac: 0.50, GapMean: 300, Pattern: Uniform},
	}
}

func init() {
	for _, p := range KVMixes() {
		Register(p)
	}
}
