package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	p, _ := ByName("cactusADM")
	ops := Record(p, 7, 5000)
	var buf bytes.Buffer
	if err := WriteFile(&buf, p.Name, ops); err != nil {
		t.Fatal(err)
	}
	name, got, err := ReadFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != p.Name {
		t.Fatalf("name %q", name)
	}
	if len(got) != len(ops) {
		t.Fatalf("len %d != %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, got[i], ops[i])
		}
	}
}

func TestFileEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, "empty", nil); err != nil {
		t.Fatal(err)
	}
	name, ops, err := ReadFile(&buf)
	if err != nil || name != "empty" || len(ops) != 0 {
		t.Fatalf("empty round trip: %q %d %v", name, len(ops), err)
	}
}

func TestFileBadMagic(t *testing.T) {
	if _, _, err := ReadFile(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestFileTruncated(t *testing.T) {
	p, _ := ByName("lbm_r")
	ops := Record(p, 1, 100)
	var buf bytes.Buffer
	if err := WriteFile(&buf, p.Name, ops); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 5, 10, len(data) - 1} {
		if _, _, err := ReadFile(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestFileZeroLength(t *testing.T) {
	if _, _, err := ReadFile(bytes.NewReader(nil)); err == nil {
		t.Fatal("zero-length input accepted")
	}
}

func TestFileTruncatedName(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, "a_rather_long_profile_name", nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cut inside the name bytes (header is 8 bytes, name follows).
	if _, _, err := ReadFile(bytes.NewReader(data[:8+5])); err == nil {
		t.Fatal("truncated name accepted")
	}
}

func TestFileLyingOpCount(t *testing.T) {
	p, _ := ByName("lbm_r")
	ops := Record(p, 1, 10)
	var buf bytes.Buffer
	if err := WriteFile(&buf, p.Name, ops); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	countOff := 8 + len(p.Name)
	// Header claims more ops than the file holds: must error, not hang or
	// return a short slice.
	data[countOff] = 200
	if _, _, err := ReadFile(bytes.NewReader(data)); err == nil {
		t.Fatal("lying op count accepted")
	}
	// An implausibly huge count must be rejected before any allocation.
	for i := 0; i < 8; i++ {
		data[countOff+i] = 0xFF
	}
	if _, _, err := ReadFile(bytes.NewReader(data)); err == nil {
		t.Fatal("huge op count accepted")
	}
}

func TestFileBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFile(&buf, "x", nil); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, _, err := ReadFile(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestReplayMatchesGenerator(t *testing.T) {
	p, _ := ByName("gcc_r")
	ops := Record(p, 3, 1000)
	r := NewReplay(p.Name, ops)
	g := New(p, 3, 1000)
	if r.Name() != p.Name {
		t.Fatalf("name %q", r.Name())
	}
	for {
		a, oka := r.Next()
		b, okb := g.Next()
		if oka != okb || a != b {
			t.Fatal("replay diverged from generator")
		}
		if !oka {
			break
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}
