// Snapshot support for the generator and the splitter. Neither captures its
// construction parameters: the restoring side rebuilds with New/NewSplitter
// from the snapshot header (profile name, seed, op count, shard count,
// interleave mode) — which deterministically reconstructs the Zipf CDF — and
// then applies the captured cursor state on top.

package trace

import "sort"

// GeneratorState is the serializable position of a Generator within its
// stream. The RNG state covers the Zipf sampler too: it draws through the
// same source.
type GeneratorState struct {
	RNG     [4]uint64
	Emit    int
	Cursor  uint64
	Head    uint64
	Phase   int
	Random  bool
	RunLeft int
	RunBase uint64
}

// State captures the generator's position.
func (g *Generator) State() GeneratorState {
	return GeneratorState{
		RNG:     g.r.State(),
		Emit:    g.emit,
		Cursor:  g.cursor,
		Head:    g.head,
		Phase:   g.phase,
		Random:  g.random,
		RunLeft: g.runLeft,
		RunBase: g.runBase,
	}
}

// Restore repositions the generator. It must have been built by New with
// the same profile, seed and op count as the captured one.
func (g *Generator) Restore(st GeneratorState) {
	g.r.Restore(st.RNG)
	g.emit = st.Emit
	g.cursor = st.Cursor
	g.head = st.Head
	g.phase = st.Phase
	g.random = st.Random
	g.runLeft = st.RunLeft
	g.runBase = st.RunBase
}

// LocalLineState is one hash-mode first-touch assignment: global line ->
// shard-local line.
type LocalLineState struct {
	Global uint64
	Local  uint64
}

// SplitterState is the serializable routing state of a Splitter: the
// virtual clock, per-shard arrival times, the emitted-op counter (the
// global op ordinal of the next routed op) and the hash-mode first-touch
// tables, flattened to sorted slices for deterministic encoding.
type SplitterState struct {
	Now       uint64
	Last      []uint64
	Emitted   uint64
	LocalLine [][]LocalLineState // per shard, sorted by global line; nil unless hash mode
	NextLine  []uint64
}

// State captures the splitter's routing state.
func (sp *Splitter) State() SplitterState {
	st := SplitterState{
		Now:     sp.now,
		Last:    append([]uint64(nil), sp.last...),
		Emitted: sp.emitted,
	}
	if sp.localLine != nil {
		st.LocalLine = make([][]LocalLineState, len(sp.localLine))
		for i, m := range sp.localLine {
			for g, l := range m {
				st.LocalLine[i] = append(st.LocalLine[i], LocalLineState{Global: g, Local: l})
			}
			sort.Slice(st.LocalLine[i], func(a, b int) bool {
				return st.LocalLine[i][a].Global < st.LocalLine[i][b].Global
			})
		}
		st.NextLine = append([]uint64(nil), sp.nextLine...)
	}
	return st
}

// Restore rebuilds the splitter's routing state. The splitter must have
// been built by NewSplitter with the same shard count and interleave mode.
func (sp *Splitter) Restore(st SplitterState) {
	sp.now = st.Now
	copy(sp.last, st.Last)
	sp.emitted = st.Emitted
	if sp.localLine != nil {
		for i := range sp.localLine {
			sp.localLine[i] = make(map[uint64]uint64)
			for _, p := range st.LocalLine[i] {
				sp.localLine[i][p.Global] = p.Local
			}
		}
		copy(sp.nextLine, st.NextLine)
	}
}
