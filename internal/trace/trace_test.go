package trace

import (
	"math"
	"testing"
)

func TestAllProfilesProduceBoundedOps(t *testing.T) {
	for _, p := range All() {
		g := New(p, 1, 1000)
		n := 0
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			n++
			if op.Addr%64 != 0 {
				t.Fatalf("%s: unaligned address %#x", p.Name, op.Addr)
			}
			if op.Addr >= p.FootprintBytes {
				t.Fatalf("%s: address %#x outside footprint %#x", p.Name, op.Addr, p.FootprintBytes)
			}
			if op.Gap == 0 {
				t.Fatalf("%s: zero gap", p.Name)
			}
		}
		if n != 1000 {
			t.Fatalf("%s: emitted %d ops, want 1000", p.Name, n)
		}
		if g.Remaining() != 0 {
			t.Fatalf("%s: Remaining = %d", p.Name, g.Remaining())
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	for _, p := range All() {
		a, b := New(p, 7, 500), New(p, 7, 500)
		for {
			oa, oka := a.Next()
			ob, okb := b.Next()
			if oka != okb || oa != ob {
				t.Fatalf("%s: same seed diverged", p.Name)
			}
			if !oka {
				break
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	p, _ := ByName("cactusADM")
	a, b := New(p, 1, 200), New(p, 2, 200)
	same := 0
	for i := 0; i < 200; i++ {
		oa, _ := a.Next()
		ob, _ := b.Next()
		if oa.Addr == ob.Addr {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("different seeds produced %d/200 identical addresses", same)
	}
}

func TestWriteFractionRespected(t *testing.T) {
	for _, p := range All() {
		g := New(p, 3, 20000)
		writes := 0
		for {
			op, ok := g.Next()
			if !ok {
				break
			}
			if op.IsWrite {
				writes++
			}
		}
		got := float64(writes) / 20000
		if math.Abs(got-p.WriteFrac) > 0.03 {
			t.Errorf("%s: write fraction %.3f, want %.2f", p.Name, got, p.WriteFrac)
		}
	}
}

func TestGapMeanRespected(t *testing.T) {
	p, _ := ByName("lbm_r")
	g := New(p, 5, 50000)
	var sum uint64
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		sum += op.Gap
	}
	mean := float64(sum) / 50000
	if math.Abs(mean-float64(p.GapMean)) > float64(p.GapMean)/5 {
		t.Fatalf("gap mean %.1f, want ~%d", mean, p.GapMean)
	}
}

func TestSequentialIsSequential(t *testing.T) {
	p, _ := ByName("lbm_r")
	g := New(p, 1, 5000)
	prev, _ := g.Next()
	seq := 0
	for i := 1; i < 5000; i++ {
		op, _ := g.Next()
		if op.Addr == prev.Addr+64 {
			seq++
		}
		prev = op
	}
	if seq < 4500 {
		t.Fatalf("only %d/5000 steps sequential in lbm_r", seq)
	}
}

func TestUniformSpreads(t *testing.T) {
	p, _ := ByName("cactusADM")
	g := New(p, 1, 20000)
	distinct := map[uint64]bool{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		distinct[op.Addr] = true
	}
	if len(distinct) < 15000 {
		t.Fatalf("uniform workload touched only %d distinct lines", len(distinct))
	}
}

func TestZipfSkewed(t *testing.T) {
	p, _ := ByName("gcc_r")
	g := New(p, 1, 50000)
	counts := map[uint64]int{}
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		counts[op.Addr]++
	}
	hottest := 0
	for _, c := range counts {
		if c > hottest {
			hottest = c
		}
	}
	// The hottest line in a Zipf(0.99) stream gets far more than its
	// uniform share.
	if hottest < 50000/len(counts)*20 {
		t.Fatalf("hottest line hit %d times over %d lines; no skew", hottest, len(counts))
	}
}

func TestQueueHammersHeader(t *testing.T) {
	p, _ := ByName("pers_queue")
	g := New(p, 1, 20000)
	header := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if op.Addr == 0 {
			header++
		}
	}
	if header < 1500 {
		t.Fatalf("queue header touched %d/20000 times, want ~1/8", header)
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("lbm_r"); !ok {
		t.Fatal("lbm_r missing")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("bogus name resolved")
	}
	if len(All()) != 10 {
		t.Fatalf("expected 10 workloads, got %d", len(All()))
	}
}

func TestBadFootprintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad footprint did not panic")
		}
	}()
	New(Profile{Name: "x", FootprintBytes: 100}, 1, 1)
}

func BenchmarkGenerate(b *testing.B) {
	p, _ := ByName("cactusADM")
	g := New(p, 1, b.N)
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
