package trace

import "testing"

func TestKVMixesRegistered(t *testing.T) {
	for _, want := range KVMixes() {
		got, ok := ByName(want.Name)
		if !ok {
			t.Fatalf("%s not registered", want.Name)
		}
		if got != want {
			t.Fatalf("%s: registry returned %+v, want %+v", want.Name, got, want)
		}
	}
}

func TestKVMixStateRoundTrip(t *testing.T) {
	// Property: capturing State() after k ops and Restoring it into a fresh
	// generator yields exactly the stream the original generator continues
	// with, for every KV mix and several split points. This is what lets
	// the campaign engine checkpoint mid-workload.
	const n = 4000
	for _, p := range KVMixes() {
		p.FootprintBytes = 1 << 20 // keep the tests small
		for _, k := range []int{0, 1, 37, 1000, n - 1} {
			g := New(p, 42, n)
			for i := 0; i < k; i++ {
				if _, ok := g.Next(); !ok {
					t.Fatalf("%s: stream ended at %d", p.Name, i)
				}
			}
			st := g.State()
			h := New(p, 42, n)
			h.Restore(st)
			for i := k; ; i++ {
				a, oka := g.Next()
				b, okb := h.Next()
				if oka != okb || a != b {
					t.Fatalf("%s: restored stream diverged at op %d (split %d): %+v/%v vs %+v/%v",
						p.Name, i, k, a, oka, b, okb)
				}
				if !oka {
					break
				}
			}
		}
	}
}

func TestLatestPattern(t *testing.T) {
	p := Profile{Name: "latest_t", FootprintBytes: 1 << 16, WriteFrac: 0.2, GapMean: 10, Pattern: Latest, ZipfS: 0.99}
	lines := p.FootprintBytes / 64
	g := New(p, 9, 20000)
	var frontier uint64 // mirror of the expected insert position
	recent := 0
	reads := 0
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		line := op.Addr / 64
		if line >= lines {
			t.Fatalf("address %#x outside footprint", op.Addr)
		}
		if op.IsWrite || frontier == 0 {
			if line != frontier%lines {
				t.Fatalf("insert at line %d, want frontier %d", line, frontier%lines)
			}
			frontier++
			continue
		}
		reads++
		// Reads must target already-inserted lines, skewed toward the
		// newest: count how many land within the last 1/16 of the window.
		window := frontier
		if window > lines {
			window = lines
		}
		dist := (frontier - 1 - line) % lines
		if frontier <= lines && line >= frontier {
			t.Fatalf("read of uninserted line %d (frontier %d)", line, frontier)
		}
		if dist < window/16+1 {
			recent++
		}
	}
	if reads == 0 {
		t.Fatal("no reads generated")
	}
	// A uniform distribution would put ~6% in the newest 1/16; the zipfian
	// skew concentrates far more there.
	if frac := float64(recent) / float64(reads); frac < 0.3 {
		t.Fatalf("reads not skewed to recent inserts: %.2f in newest 1/16", frac)
	}
}
