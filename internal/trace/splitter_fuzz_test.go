package trace

import (
	"encoding/binary"
	"testing"
)

// opsFromFuzz decodes an arbitrary byte string into a bounded operation
// stream: 5 bytes per op (4 address/flag bytes, 1 gap byte), addresses
// line-aligned within a 1 MiB space.
func opsFromFuzz(data []byte) []Op {
	const maxOps = 2048
	var ops []Op
	for len(data) >= 5 && len(ops) < maxOps {
		word := binary.LittleEndian.Uint32(data[:4])
		ops = append(ops, Op{
			Addr:    uint64(word%(1<<20/64)) * 64,
			IsWrite: word&(1<<31) != 0,
			Gap:     uint64(data[4]),
		})
		data = data[5:]
	}
	return ops
}

// FuzzSplitterRoundTrip feeds arbitrary access streams through the
// splitter at several (shards, interleave) shapes and checks the
// split→merge round trip: no operation lost, none duplicated, identity
// fields preserved, routing consistent with Route, no two global lines
// aliased onto one local line, and local gaps telescoping back to the
// global arrival times.
func FuzzSplitterRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0x40, 0, 0, 0x80, 5, 0x80, 0, 0, 0, 9, 0x40, 0, 0, 0x80, 0})
	seed := make([]byte, 0, 5*64)
	for i := 0; i < 64; i++ {
		seed = append(seed, byte(i*7), byte(i), 0, byte(i%3)<<6, byte(i%11))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		ops := opsFromFuzz(data)
		for _, tc := range []struct {
			shards int
			iv     Interleave
			epoch  int
		}{
			{1, InterleaveLine, 64},
			{4, InterleaveLine, 7},
			{3, InterleavePage, 1024},
			{5, InterleaveHash, 13},
		} {
			sp := NewSplitter(NewReplay("fuzz", ops), tc.shards, tc.iv)
			merged := make([]ShardedOp, len(ops))
			shardOf := make([]int, len(ops))
			seen := make([]bool, len(ops))
			var consumed int
			for {
				batches, n, err := sp.NextEpoch(tc.epoch)
				if err != nil {
					t.Fatalf("%d/%s: NextEpoch: %v", tc.shards, tc.iv, err)
				}
				if n == 0 {
					break
				}
				consumed += n
				for shard, batch := range batches {
					for _, sop := range batch {
						if sop.Index >= uint64(len(ops)) {
							t.Fatalf("%d/%s: index %d out of range", tc.shards, tc.iv, sop.Index)
						}
						if seen[sop.Index] {
							t.Fatalf("%d/%s: op %d duplicated", tc.shards, tc.iv, sop.Index)
						}
						seen[sop.Index] = true
						merged[sop.Index] = sop
						shardOf[sop.Index] = shard
					}
				}
			}
			if consumed != len(ops) {
				t.Fatalf("%d/%s: consumed %d of %d ops", tc.shards, tc.iv, consumed, len(ops))
			}
			// Replay the source in stream order against an independent
			// Route oracle (hash first-touch is order-sensitive, so the
			// oracle must see addresses exactly as the splitter did) and
			// reconstruct the virtual clock.
			oracle := NewSplitter(nil, tc.shards, tc.iv)
			type lineHome struct {
				shard int
				local uint64
			}
			globalOf := make(map[lineHome]uint64)
			var now uint64
			lastArrival := make([]uint64, tc.shards)
			for i, op := range ops {
				if !seen[i] {
					t.Fatalf("%d/%s: op %d lost", tc.shards, tc.iv, i)
				}
				got := merged[i]
				if got.GlobalAddr != op.Addr || got.IsWrite != op.IsWrite {
					t.Fatalf("%d/%s: op %d identity mangled: %+v vs %+v", tc.shards, tc.iv, i, got, op)
				}
				shard, local := oracle.Route(op.Addr)
				if shardOf[i] != shard || got.Addr != local {
					t.Fatalf("%d/%s: op %d routed to (%d,%#x), Route says (%d,%#x)",
						tc.shards, tc.iv, i, shardOf[i], got.Addr, shard, local)
				}
				home := lineHome{shard, local / 64}
				if g, ok := globalOf[home]; ok && g != op.Addr/64 {
					t.Fatalf("%d/%s: global lines %#x and %#x alias shard %d local line %#x",
						tc.shards, tc.iv, g*64, op.Addr, shard, local)
				}
				globalOf[home] = op.Addr / 64
				now += op.Gap
				if wantGap := now - lastArrival[shard]; got.Gap != wantGap {
					t.Fatalf("%d/%s: op %d local gap %d, want %d", tc.shards, tc.iv, i, got.Gap, wantGap)
				}
				lastArrival[shard] = now
			}
		}
	})
}
