package trace

// Stream is any source of memory operations: synthetic generators,
// recorded replays, or CPU-filtered raw streams.
type Stream interface {
	Name() string
	Next() (Op, bool)
}

// Compile-time checks that the provided sources are Streams.
var (
	_ Stream = (*Generator)(nil)
	_ Stream = (*Replay)(nil)
)
