// Package trace generates the memory-request streams the evaluation runs
// on. Each generator models the LLC-miss stream (reads plus dirty
// write-backs) of one benchmark from §IV: eight SPEC CPU2006/2017-like
// profiles reproducing each benchmark's published memory character
// (footprint, read/write mix, sequentiality, reuse skew) and the two
// write-ordered persistent workloads from STAR.
//
// Traces are synthesised rather than replayed (DESIGN.md, substitutions):
// every metric in the paper's figures is a function of the metadata-cache
// hit rate and dirty-eviction frequency, which these statistics determine.
package trace

import "steins/internal/rng"

// Op is one memory request reaching the controller.
type Op struct {
	Addr    uint64 // 64 B-aligned data address
	IsWrite bool
	Gap     uint64 // controller cycles since the previous request
}

// Pattern selects the address-generation behaviour.
type Pattern int

// Address patterns.
const (
	Sequential   Pattern = iota // streaming walk (lbm-like)
	Strided                     // fixed-stride sweep (milc-like)
	Uniform                     // uniform random (cactusADM-like)
	Zipf                        // skewed reuse (gcc-like)
	PointerChase                // dependent random walk (mcf-like)
	MixedPhase                  // alternating scan/random phases (xalancbmk-like)
	Queue                       // persistent FIFO: append at tail, pop at head
	HashTable                   // persistent hash table: random slot updates
	Latest                      // YCSB-D-style: writes insert at a frontier, reads skew to recent inserts
)

// Profile describes one workload.
type Profile struct {
	Name           string
	FootprintBytes uint64  // touched data region
	WriteFrac      float64 // fraction of requests that are writes
	GapMean        uint64  // mean compute gap between requests, cycles
	Pattern        Pattern
	ZipfS          float64 // skew for Zipf/PointerChase
	StrideLines    uint64  // for Strided
}

// SPEC returns the eight SPEC-like profiles of §IV (four from CPU2017,
// four from CPU2006, the mix ASIT evaluates).
func SPEC() []Profile {
	return []Profile{
		{Name: "lbm_r", FootprintBytes: 384 << 20, WriteFrac: 0.55, GapMean: 230, Pattern: Sequential},
		{Name: "mcf_r", FootprintBytes: 320 << 20, WriteFrac: 0.25, GapMean: 430, Pattern: PointerChase, ZipfS: 0.8},
		{Name: "gcc_r", FootprintBytes: 128 << 20, WriteFrac: 0.35, GapMean: 560, Pattern: Zipf, ZipfS: 0.99},
		{Name: "xalancbmk_r", FootprintBytes: 192 << 20, WriteFrac: 0.30, GapMean: 640, Pattern: MixedPhase},
		{Name: "cactusADM", FootprintBytes: 384 << 20, WriteFrac: 0.45, GapMean: 310, Pattern: Uniform},
		{Name: "milc", FootprintBytes: 256 << 20, WriteFrac: 0.40, GapMean: 420, Pattern: Strided, StrideLines: 4},
		{Name: "libquantum", FootprintBytes: 192 << 20, WriteFrac: 0.25, GapMean: 270, Pattern: Sequential},
		{Name: "soplex", FootprintBytes: 192 << 20, WriteFrac: 0.30, GapMean: 500, Pattern: Zipf, ZipfS: 0.8},
	}
}

// Persistent returns the two STAR-style persistent workloads.
func Persistent() []Profile {
	return []Profile{
		{Name: "pers_queue", FootprintBytes: 64 << 20, WriteFrac: 0.75, GapMean: 360, Pattern: Queue},
		{Name: "pers_hash", FootprintBytes: 128 << 20, WriteFrac: 0.70, GapMean: 460, Pattern: HashTable},
	}
}

// All returns every evaluation workload in figure order.
func All() []Profile { return append(SPEC(), Persistent()...) }

// ByName returns the named profile, consulting the canonical evaluation
// set first and then the Register'd extras.
func ByName(name string) (Profile, bool) {
	if p, ok := byCanonicalName(name); ok {
		return p, true
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Generator streams the requests of one profile. Deterministic per seed.
type Generator struct {
	p     Profile
	r     *rng.Source
	zipf  *rng.Zipf
	n     int
	emit  int
	lines uint64

	cursor uint64 // Sequential/Strided position, Queue tail
	head   uint64 // Queue head
	phase  int    // MixedPhase countdown
	random bool   // MixedPhase mode

	// Short spatial runs: LLC-miss streams retain line-neighbour locality
	// (prefetchers, large-object accesses), so random patterns emit a few
	// sequential lines after each jump.
	runLeft int
	runBase uint64
}

// zipfRanks bounds the Zipf CDF table; ranks map onto the footprint by
// scaling, preserving the skew without a giant table.
const zipfRanks = 1 << 16

// New creates a generator producing n operations.
func New(p Profile, seed uint64, n int) *Generator {
	if p.FootprintBytes == 0 || p.FootprintBytes%64 != 0 {
		panic("trace: footprint must be a positive multiple of 64")
	}
	g := &Generator{p: p, r: rng.New(seed ^ 0x9e3779b97f4a7c15), n: n, lines: p.FootprintBytes / 64}
	if p.Pattern == Zipf || p.Pattern == PointerChase || p.Pattern == Latest {
		s := p.ZipfS
		if s == 0 {
			s = 0.99
		}
		g.zipf = rng.NewZipf(g.r, zipfRanks, s)
	}
	return g
}

// Name returns the profile name.
func (g *Generator) Name() string { return g.p.Name }

// Remaining returns how many operations are left.
func (g *Generator) Remaining() int { return g.n - g.emit }

// Next returns the next operation; ok is false when the trace is done.
func (g *Generator) Next() (Op, bool) {
	if g.emit >= g.n {
		return Op{}, false
	}
	g.emit++
	op := Op{
		Gap:     1 + g.r.Uint64n(2*g.p.GapMean),
		IsWrite: g.r.Bool(g.p.WriteFrac),
	}
	op.Addr = g.nextLine(op.IsWrite) * 64
	return op, true
}

func (g *Generator) nextLine(isWrite bool) uint64 {
	if g.p.Pattern == Latest {
		return g.latestLine(isWrite)
	}
	switch g.p.Pattern {
	case Uniform, Zipf, PointerChase, HashTable:
		if g.runLeft > 0 {
			g.runLeft--
			g.runBase = (g.runBase + 1) % g.lines
			return g.runBase
		}
		g.runBase = g.jumpLine()
		g.runLeft = g.r.Geometric(0.3) // mean ~2.3 follow-on lines
		if g.runLeft > 7 {
			g.runLeft = 7
		}
		return g.runBase
	}
	return g.jumpLine()
}

// jumpLine draws a fresh position per the profile's pattern.
func (g *Generator) jumpLine() uint64 {
	switch g.p.Pattern {
	case Sequential:
		// Streaming with occasional restarts at a random offset.
		if g.r.Bool(0.001) {
			g.cursor = g.r.Uint64n(g.lines)
		}
		l := g.cursor
		g.cursor = (g.cursor + 1) % g.lines
		return l
	case Strided:
		stride := g.p.StrideLines
		if stride == 0 {
			stride = 4
		}
		l := g.cursor
		g.cursor = (g.cursor + stride) % g.lines
		return l
	case Uniform:
		return g.r.Uint64n(g.lines)
	case Zipf:
		return g.scaleRank(g.zipf.Next())
	case PointerChase:
		// Dependent walk through a skewed set: the next node depends on
		// the current one, modelled as a fresh skewed draw mixed with the
		// cursor so runs are reproducible but non-repeating.
		g.cursor = (g.cursor*6364136223846793005 + uint64(g.zipf.Next())) % g.lines
		return g.cursor
	case MixedPhase:
		if g.phase == 0 {
			g.phase = 512 + g.r.Intn(1024)
			g.random = !g.random
		}
		g.phase--
		if g.random {
			return g.r.Uint64n(g.lines)
		}
		l := g.cursor
		g.cursor = (g.cursor + 1) % g.lines
		return l
	case Queue:
		// Producer/consumer ring: most operations append at the tail
		// (write) or pop at the head (read-modify), both with strong
		// spatial locality; the metadata header line is hammered.
		switch g.r.Intn(8) {
		case 0:
			return 0 // queue header: hot line
		case 1, 2:
			l := g.head
			g.head = (g.head + 1) % g.lines
			return l
		default:
			l := g.cursor
			g.cursor = (g.cursor + 1) % g.lines
			return l
		}
	case HashTable:
		// Random slot updates plus a hot directory region at the front.
		if g.r.Bool(0.1) {
			return g.r.Uint64n(64) // directory lines
		}
		return g.r.Uint64n(g.lines)
	default:
		panic("trace: unknown pattern")
	}
}

// latestLine implements the YCSB-D access distribution: every write
// inserts at a monotonically advancing frontier (wrapping once the
// footprint fills), and reads draw a Zipf-skewed distance back from the
// frontier, so the most recently inserted lines are the hottest. The
// frontier lives in cursor, so the generic State/Restore covers it.
func (g *Generator) latestLine(isWrite bool) uint64 {
	if isWrite || g.cursor == 0 {
		l := g.cursor % g.lines
		g.cursor++
		return l
	}
	window := g.cursor
	if window > g.lines {
		window = g.lines
	}
	off := uint64(g.zipf.Next()) * window / zipfRanks
	return (g.cursor - 1 - off) % g.lines
}

// scaleRank spreads Zipf ranks over the footprint: rank r maps to a fixed
// pseudo-random line, preserving rank popularity.
func (g *Generator) scaleRank(rank int) uint64 {
	x := uint64(rank)
	x ^= x >> 12
	x *= 0xff51afd7ed558ccd
	x ^= x >> 25
	return x % g.lines
}
