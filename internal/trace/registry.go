package trace

import (
	"fmt"
	"sync"
)

// Extra profiles beyond the canonical evaluation set, registered by name.
// Snapshot resume resolves workloads through ByName, so any profile that
// can be checkpointed must be resolvable in a fresh process; tests and
// tools register their synthetic profiles here (typically from init).
var (
	registryMu sync.RWMutex
	registry   = map[string]Profile{}
)

// Register makes a profile resolvable through ByName. Registering a name
// already in use (canonical or registered) with a different profile
// panics — a silently shadowed workload would desynchronize snapshot
// resume. Re-registering an identical profile is a no-op.
func Register(p Profile) {
	if _, ok := byCanonicalName(p.Name); ok {
		panic(fmt.Sprintf("trace: %q is a canonical workload", p.Name))
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if old, ok := registry[p.Name]; ok {
		if old != p {
			panic(fmt.Sprintf("trace: %q already registered with a different profile", p.Name))
		}
		return
	}
	registry[p.Name] = p
}

func byCanonicalName(name string) (Profile, bool) {
	for _, p := range All() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
