package trace

import (
	"testing"
)

func TestParseInterleaveRoundTrip(t *testing.T) {
	for _, iv := range []Interleave{InterleaveLine, InterleavePage, InterleaveHash} {
		got, err := ParseInterleave(iv.String())
		if err != nil || got != iv {
			t.Fatalf("ParseInterleave(%q) = %v, %v", iv.String(), got, err)
		}
	}
	if _, err := ParseInterleave("bogus"); err == nil {
		t.Fatal("ParseInterleave accepted junk")
	}
}

func TestShardBytesCoversEveryAddress(t *testing.T) {
	for _, iv := range []Interleave{InterleaveLine, InterleavePage} {
		for _, shards := range []int{1, 2, 3, 4, 7} {
			const dataBytes = 1 << 20
			sp := NewSplitter(nil, shards, iv)
			limit := ShardBytes(dataBytes, shards, iv)
			seen := make([]map[uint64]bool, shards)
			for i := range seen {
				seen[i] = make(map[uint64]bool)
			}
			for addr := uint64(0); addr < dataBytes; addr += 64 {
				shard, local := sp.Route(addr)
				if local >= limit {
					t.Fatalf("iv %s shards %d: local %#x beyond ShardBytes %#x", iv, shards, local, limit)
				}
				if local%64 != 0 {
					t.Fatalf("iv %s: line-aligned address routed to unaligned local %#x", iv, local)
				}
				if seen[shard][local] {
					t.Fatalf("iv %s shards %d: two global lines share shard %d local %#x", iv, shards, shard, local)
				}
				seen[shard][local] = true
			}
		}
	}
}

func TestRouteKeepsChunksTogether(t *testing.T) {
	// Every address inside one interleave chunk must land on the same
	// shard, contiguously: metadata derived from a line (counters, tree
	// branch) must live with the line.
	sp := NewSplitter(nil, 4, InterleavePage)
	baseShard, baseLocal := sp.Route(3 * 4096)
	for off := uint64(0); off < 4096; off += 64 {
		shard, local := sp.Route(3*4096 + off)
		if shard != baseShard || local != baseLocal+off {
			t.Fatalf("offset %#x left its chunk: shard %d local %#x", off, shard, local)
		}
	}
}

func TestHashRouteFirstTouchStable(t *testing.T) {
	sp := NewSplitter(nil, 3, InterleaveHash)
	type home struct {
		shard int
		local uint64
	}
	homes := make(map[uint64]home)
	addrs := []uint64{0, 64, 128, 4096, 64, 0, 9999 * 64, 128}
	for _, a := range addrs {
		shard, local := sp.Route(a)
		if h, ok := homes[a]; ok && (h.shard != shard || h.local != local) {
			t.Fatalf("address %#x moved: (%d,%#x) then (%d,%#x)", a, h.shard, h.local, shard, local)
		}
		homes[a] = home{shard, local}
	}
}

// TestNextEpochLocalClock pins the virtual-clock contract: per-shard local
// gaps telescope back to the global arrival times, matching what
// multi.System's advance() would hand each controller.
func TestNextEpochLocalClock(t *testing.T) {
	ops := []Op{
		{Addr: 0 * 64, IsWrite: true, Gap: 5},   // shard 0, t=5
		{Addr: 1 * 64, IsWrite: false, Gap: 3},  // shard 1, t=8
		{Addr: 2 * 64, IsWrite: true, Gap: 10},  // shard 0, t=18
		{Addr: 3 * 64, IsWrite: false, Gap: 1},  // shard 1, t=19
		{Addr: 0 * 64, IsWrite: false, Gap: 11}, // shard 0, t=30
	}
	sp := NewSplitter(NewReplay("clock", ops), 2, InterleaveLine)
	batches, n, err := sp.NextEpoch(len(ops))
	if err != nil || n != len(ops) {
		t.Fatalf("NextEpoch = %d, %v", n, err)
	}
	wantGaps := map[int][]uint64{0: {5, 13, 12}, 1: {8, 11}}
	for shard, gaps := range wantGaps {
		if len(batches[shard]) != len(gaps) {
			t.Fatalf("shard %d: %d ops, want %d", shard, len(batches[shard]), len(gaps))
		}
		for i, g := range gaps {
			if batches[shard][i].Gap != g {
				t.Fatalf("shard %d op %d: gap %d, want %d", shard, i, batches[shard][i].Gap, g)
			}
		}
	}
	if batches[0][1].GlobalAddr != 2*64 || batches[0][1].Index != 2 {
		t.Fatalf("shard 0 op 1 identity wrong: %+v", batches[0][1])
	}
}

func TestNextEpochBudgetAndExhaustion(t *testing.T) {
	ops := make([]Op, 10)
	for i := range ops {
		ops[i] = Op{Addr: uint64(i) * 64, IsWrite: true, Gap: 1}
	}
	sp := NewSplitter(NewReplay("budget", ops), 2, InterleaveLine)
	if _, n, _ := sp.NextEpoch(7); n != 7 {
		t.Fatalf("first epoch consumed %d, want 7", n)
	}
	if _, n, _ := sp.NextEpoch(7); n != 3 {
		t.Fatalf("second epoch consumed %d, want 3", n)
	}
	if _, n, _ := sp.NextEpoch(7); n != 0 {
		t.Fatalf("exhausted source yielded %d ops", n)
	}
	if sp.Emitted() != 10 {
		t.Fatalf("Emitted = %d, want 10", sp.Emitted())
	}
}

// TestNextEpochSteadyStateAllocs is the allocation ceiling for the sharded
// hot path: once the epoch buffers have grown, line/page splitting must
// stay off the heap entirely.
func TestNextEpochSteadyStateAllocs(t *testing.T) {
	ops := make([]Op, 4096)
	for i := range ops {
		ops[i] = Op{Addr: uint64(i%512) * 64, IsWrite: i%2 == 0, Gap: 3}
	}
	sp := NewSplitter(nil, 4, InterleaveLine)
	rep := NewReplay("alloc", ops)
	sp.Rebind(rep)
	if _, _, err := sp.NextEpoch(len(ops)); err != nil { // warm the buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		rep.Reset()
		if _, n, err := sp.NextEpoch(len(ops)); n != len(ops) || err != nil {
			t.Fatalf("epoch: %d, %v", n, err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state NextEpoch allocates %.1f objects per epoch, want 0", avg)
	}
}
