package trace

import (
	"bytes"
	"testing"
)

// FuzzReadFile feeds arbitrary bytes to the trace parser: it must reject
// or parse, never panic or over-allocate.
func FuzzReadFile(f *testing.F) {
	var buf bytes.Buffer
	p, _ := ByName("lbm_r")
	if err := WriteFile(&buf, p.Name, Record(p, 1, 50)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("STTR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		name, ops, err := ReadFile(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed successfully: re-serialising must reproduce semantics.
		var out bytes.Buffer
		if werr := WriteFile(&out, name, ops); werr != nil {
			t.Fatalf("re-serialise of parsed trace failed: %v", werr)
		}
		name2, ops2, rerr := ReadFile(&out)
		if rerr != nil || name2 != name || len(ops2) != len(ops) {
			t.Fatalf("parse/serialise not idempotent")
		}
	})
}
