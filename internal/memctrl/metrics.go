package memctrl

import "steins/internal/metrics"

// MetricsProber is implemented by policies that expose occupancy state to
// the time-series sampler: the fill fraction of the scheme's dirty-tracking
// structure and the per-level trust-base (LInc) magnitudes. Schemes without
// such state simply don't implement it.
type MetricsProber interface {
	MetricsProbe() (trackFill float64, lincs []uint64)
}

// SetMetrics attaches a collector gathering per-phase per-request
// histograms and the occupancy time series. The always-on phase totals in
// Stats don't need one; pass the result of metrics.NewCollector, or nil to
// detach.
func (c *Controller) SetMetrics(mx *metrics.Collector) { c.mx = mx }

// Metrics returns the attached collector, nil when none.
func (c *Controller) Metrics() *metrics.Collector { return c.mx }

// Attribute adds cycles of the request in flight to one attribution
// bucket. Attribution sites record raw (possibly overlapped) latencies;
// finishOp normalizes the split against the request's actual service time,
// so over-attribution from latency hiding is reclaimed pro-rata and
// unattributed bookkeeping lands in PhaseOther. Policies may call it for
// their own device accesses.
func (c *Controller) Attribute(ph metrics.Phase, cycles uint64) {
	c.bd[ph] += cycles
}

// sample takes one time-series probe; finishOp calls it every
// Options.SampleEvery retired requests when a collector is attached.
func (c *Controller) sample() {
	s := metrics.Sample{
		Op:              c.stats.DataReads + c.stats.DataWrites,
		Cycle:           c.MeasuredExecCycles(),
		WriteQueueDepth: c.dev.QueueDepth(c.busyUntil),
	}
	if capacity := c.meta.Capacity(); capacity > 0 {
		s.MetaDirtyFrac = float64(c.meta.DirtyLen()) / float64(capacity)
	}
	if p, ok := c.policy.(MetricsProber); ok {
		s.TrackFill, s.LIncs = p.MetricsProbe()
	}
	c.mx.AddSample(s)
}

// MetricsSnapshot exports the controller's observability state: identity,
// the always-on latency and phase accounting, and — when a collector is
// attached — the per-phase distributions and the retained time series.
func (c *Controller) MetricsSnapshot(workload string) *metrics.Snapshot {
	st := &c.stats
	s := &metrics.Snapshot{
		Scheme:     c.policy.Name(),
		Workload:   workload,
		Ops:        st.DataReads + st.DataWrites,
		ExecCycles: c.MeasuredExecCycles(),
	}
	var readPer, writePer *[metrics.NumPhases]metrics.Hist
	if c.mx != nil {
		readPer = c.mx.PathHists(false)
		writePer = c.mx.PathHists(true)
		s.SampleEvery = c.mx.Options().SampleEvery
		s.Series = c.mx.Samples()
		s.SamplesDropped = c.mx.SamplesTaken() - uint64(len(s.Series))
	}
	s.Read = metrics.BuildPath(st.DataReads, st.ReadLatSum, &st.ReadHist, &st.ReadPhases, readPer)
	s.Write = metrics.BuildPath(st.DataWrites, st.WriteLatSum, &st.WriteHist, &st.WritePhases, writePer)
	return s
}
