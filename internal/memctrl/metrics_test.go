package memctrl_test

import (
	"testing"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
)

// churn drives n alternating writes and reads over a footprint wide enough
// to provoke metadata-cache evictions.
func churn(t *testing.T, c *memctrl.Controller, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		addr := uint64(i%512) * 64 * 17 % (1 << 20)
		addr -= addr % 64
		if i%3 != 0 {
			if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		} else {
			if _, err := c.ReadData(5, addr); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
	}
}

func TestStatsMerge(t *testing.T) {
	c1 := memctrl.New(testConfig(false), wb.Factory)
	churn(t, c1, 400)
	c2 := memctrl.New(testConfig(true), wb.Factory)
	churn(t, c2, 200)

	s1, s2 := c1.Stats(), c2.Stats()
	agg := s1
	agg.Merge(&s2)

	if agg.DataReads != s1.DataReads+s2.DataReads ||
		agg.DataWrites != s1.DataWrites+s2.DataWrites {
		t.Fatalf("merged op counts wrong: %+v", agg)
	}
	if agg.ReadLatSum != s1.ReadLatSum+s2.ReadLatSum {
		t.Fatal("merged latency sums wrong")
	}
	if agg.ReadHist.Count() != s1.ReadHist.Count()+s2.ReadHist.Count() {
		t.Fatal("merged read histogram count wrong")
	}
	if agg.ReadHist.Max() < s1.ReadHist.Max() || agg.ReadHist.Max() < s2.ReadHist.Max() {
		t.Fatal("merged histogram lost max")
	}
	for ph := metrics.Phase(0); ph < metrics.NumPhases; ph++ {
		if agg.ReadPhases[ph] != s1.ReadPhases[ph]+s2.ReadPhases[ph] ||
			agg.WritePhases[ph] != s1.WritePhases[ph]+s2.WritePhases[ph] {
			t.Fatalf("phase %v not summed", ph)
		}
	}
}

func TestStatsMergeEmpty(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	churn(t, c, 100)
	populated := c.Stats()

	// empty.Merge(populated) must equal populated; populated.Merge(empty)
	// must be a no-op.
	var fromEmpty memctrl.Stats
	fromEmpty.Merge(&populated)
	if fromEmpty != populated {
		t.Fatal("merge into empty stats diverged")
	}
	var empty memctrl.Stats
	both := populated
	both.Merge(&empty)
	if both != populated {
		t.Fatal("merging empty stats changed totals")
	}
}

// TestPhasePartitionExact is the attribution invariant at controller
// grain: the makespan-partition buckets (service + idle, queue_wait
// excluded) must sum to MeasuredExecCycles exactly — both over a whole run
// and over a measured phase that starts at a warm-up reset.
func TestPhasePartitionExact(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory memctrl.PolicyFactory
		split   bool
	}{
		{"wb-gc", wb.Factory, false},
		{"wb-sc", wb.Factory, true},
		{"steins-gc", steins.Factory, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c := memctrl.New(testConfig(tc.split), tc.factory)
			churn(t, c, 300)
			c.ResetStats()
			churn(t, c, 700)
			st := c.Stats()
			if got, want := st.MakespanPhaseCycles(), c.MeasuredExecCycles(); got != want {
				t.Fatalf("phase sum %d != measured makespan %d", got, want)
			}
			if st.ReadPhases[metrics.PhaseMetaFetch] == 0 {
				t.Fatal("no cycles attributed to meta_fetch")
			}
			if st.WritePhases[metrics.PhaseCrypto] == 0 {
				t.Fatal("no cycles attributed to crypto on writes")
			}
		})
	}
}

func TestMetricsSnapshotMatchesStats(t *testing.T) {
	c := memctrl.New(testConfig(false), steins.Factory)
	c.SetMetrics(metrics.NewCollector(metrics.Options{SampleEvery: 64, RingCap: 128}))
	churn(t, c, 200)
	c.ResetStats()
	churn(t, c, 600)

	st := c.Stats()
	snap := c.MetricsSnapshot("unit")
	if snap.Ops != st.DataReads+st.DataWrites {
		t.Fatalf("snapshot ops %d != stats %d", snap.Ops, st.DataReads+st.DataWrites)
	}
	if snap.ExecCycles != c.MeasuredExecCycles() {
		t.Fatal("snapshot exec cycles diverge")
	}
	if snap.Read.LatSumCycles != st.ReadLatSum || snap.Write.LatSumCycles != st.WriteLatSum {
		t.Fatal("snapshot latency sums diverge")
	}
	if got := snap.MakespanCycles(); got != snap.ExecCycles {
		t.Fatalf("snapshot phase sum %d != exec %d", got, snap.ExecCycles)
	}
	if len(snap.Series) == 0 {
		t.Fatal("no time-series samples despite collector")
	}
	for i := 1; i < len(snap.Series); i++ {
		if snap.Series[i].Op <= snap.Series[i-1].Op {
			t.Fatal("series not chronological")
		}
	}
	last := snap.Series[len(snap.Series)-1]
	if len(last.LIncs) == 0 {
		t.Fatal("Steins run must expose LInc magnitudes")
	}
	// Per-op distributions ride along only where the phase saw cycles.
	if snap.Write.Phases[metrics.PhaseCrypto].PerOp == nil {
		t.Fatal("write crypto per-op histogram missing")
	}
}

// TestNilMetricsAllocFree pins the hot-path contract: with no collector
// attached, retiring requests must not allocate.
func TestNilMetricsAllocFree(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	churn(t, c, 2000) // warm caches, device maps and queue capacity
	addr := uint64(64 * 1024)
	data := pattern(addr, 9)
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.WriteData(5, addr, data); err != nil {
			t.Fatal(err)
		}
		if _, err := c.ReadData(5, addr); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("nil-metrics hot path allocates %.1f per op pair", allocs)
	}
}

// BenchmarkHotPathNilMetrics is the benchmark-shaped version of the alloc
// guard; run with -benchmem to observe 0 allocs/op.
func BenchmarkHotPathNilMetrics(b *testing.B) {
	cfg := testConfig(false)
	c := memctrl.New(cfg, wb.Factory)
	addr := uint64(64 * 1024)
	var data [64]byte
	for i := 0; i < 2000; i++ {
		if err := c.WriteData(5, addr, data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteData(5, addr, data); err != nil {
			b.Fatal(err)
		}
	}
}
