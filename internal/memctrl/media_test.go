package memctrl_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/wb"
)

func faultyTestConfig(mut func(*nvmem.FaultConfig)) memctrl.Config {
	cfg := testConfig(false)
	cfg.NVM.Faults.Seed = 17
	mut(&cfg.NVM.Faults)
	return cfg
}

func TestReadRetryRecoversTransientDoubleBits(t *testing.T) {
	// Every read suffers a flip, 30% of them double-bit (uncorrectable).
	// With transients redrawn per attempt, the 3-retry budget turns almost
	// every uncorrectable event into a success — and never into silently
	// wrong data.
	cfg := faultyTestConfig(func(f *nvmem.FaultConfig) {
		f.TransientPerRead = 1
		f.DoubleBitFrac = 0.3
	})
	c := memctrl.New(cfg, wb.Factory)
	want := pattern(0, 5)
	if err := c.WriteData(0, 0, want); err != nil {
		t.Fatal(err)
	}
	okReads := 0
	for i := 0; i < 200; i++ {
		got, err := c.ReadData(5, 0)
		if err != nil {
			if !errors.Is(err, memctrl.ErrMediaFault) || !errors.Is(err, nvmem.ErrUncorrectable) {
				t.Fatalf("read %d: unstructured media failure: %v", i, err)
			}
			continue
		}
		okReads++
		if got != want {
			t.Fatalf("read %d: silently corrupted data", i)
		}
	}
	st := c.Stats()
	if okReads < 150 {
		t.Fatalf("only %d/200 reads survived the retry budget", okReads)
	}
	if st.MediaRetried == 0 {
		t.Fatal("no retries counted despite forced double-bit events")
	}
	if st.MediaCorrected == 0 {
		t.Fatal("single-bit corrections not mirrored into controller stats")
	}
	if st.MediaUnrecoverable != uint64(200-okReads) {
		t.Fatalf("MediaUnrecoverable = %d, want %d", st.MediaUnrecoverable, 200-okReads)
	}
}

func TestReadEscalatesAfterRetryBudget(t *testing.T) {
	cfg := faultyTestConfig(func(f *nvmem.FaultConfig) {
		f.TransientPerRead = 1
		f.DoubleBitFrac = 1 // every attempt uncorrectable: retries cannot help
	})
	c := memctrl.New(cfg, wb.Factory)
	c.Device().Poke(0, nvmem.Line{1, 2, 3})
	_, _, err := c.ReadLineRetried(0, 0, nvmem.ClassData)
	if !errors.Is(err, memctrl.ErrMediaFault) || !errors.Is(err, nvmem.ErrUncorrectable) {
		t.Fatalf("read error = %v, want MediaFault wrapping ErrUncorrectable", err)
	}
	var mf *memctrl.MediaFault
	if !errors.As(err, &mf) || mf.Quarantined || mf.Addr != 0 {
		t.Fatalf("structured fault = %+v", mf)
	}
	st := c.Stats()
	if st.MediaEscalated != 1 {
		t.Fatalf("MediaEscalated = %d, want 1", st.MediaEscalated)
	}
	if st.MediaRetried != uint64(cfg.ReadRetries) {
		t.Fatalf("MediaRetried = %d, want the full budget %d", st.MediaRetried, cfg.ReadRetries)
	}
}

func TestQuarantinedLeafFailsFast(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(0, 0, pattern(0, 3)); err != nil {
		t.Fatal(err)
	}
	c.QuarantineLeaf(0)
	var qe *memctrl.QuarantineError
	if _, err := c.ReadData(1, 0); !errors.Is(err, memctrl.ErrMediaFault) {
		t.Fatalf("read of quarantined leaf = %v, want ErrMediaFault", err)
	} else if !errors.As(err, &qe) {
		t.Fatalf("read of quarantined leaf = %v, want *QuarantineError", err)
	} else if qe.Addr != 0 || qe.Leaf != 0 {
		t.Fatalf("quarantine error names wrong target: %+v", qe)
	}
	// A fresh write is the re-admission path: it succeeds and lifts the
	// fence for exactly the written slot; the rest of the leaf stays fenced.
	if werr := c.WriteData(1, 0, pattern(0, 4)); werr != nil {
		t.Fatalf("re-admitting write = %v", werr)
	}
	if got, err := c.ReadData(1, 0); err != nil {
		t.Fatalf("read of re-admitted slot: %v", err)
	} else if got != pattern(0, 4) {
		t.Fatal("re-admitted slot read back wrong data")
	}
	geo := &c.Layout().Geo
	if _, err := c.ReadData(1, geo.DataAddr(0, 1)); !errors.Is(err, memctrl.ErrMediaFault) {
		t.Fatalf("read beside re-admitted slot = %v, want ErrMediaFault", err)
	}
	if st := c.Stats(); st.MediaUnrecoverable != 2 {
		t.Fatalf("MediaUnrecoverable = %d, want 2", st.MediaUnrecoverable)
	}
	// Uncovered addresses are unaffected.
	other := geo.DataAddr(1, 0)
	if err := c.WriteData(1, other, pattern(other, 5)); err != nil {
		t.Fatalf("write outside quarantine: %v", err)
	}
	// Rewriting every covered slot lifts the leaf's quarantine entirely.
	for i := 0; i < int(geo.LeafCover); i++ {
		a := geo.DataAddr(0, i)
		if err := c.WriteData(1, a, pattern(a, 6)); err != nil {
			t.Fatalf("rewrite slot %d: %v", i, err)
		}
	}
	if c.LeafQuarantined(0) {
		t.Fatal("quarantine not lifted after full rewrite")
	}
	if _, err := c.ReadData(1, geo.DataAddr(0, 1)); err != nil {
		t.Fatalf("read after lift: %v", err)
	}
	// The fence is durable on-chip state: a verdict must outlive the
	// crash that follows it, or a fence derived purely from the trust-base
	// shortfall would vanish with the volatile state and the condemned
	// data would read back as authentic.
	c.QuarantineLeaf(1)
	c.Crash()
	if !c.LeafQuarantined(1) {
		t.Fatal("quarantine did not survive the crash")
	}
}

func TestMediaStatsMergeAcrossControllers(t *testing.T) {
	a := memctrl.Stats{MediaCorrected: 1, MediaRetried: 2, MediaEscalated: 3, MediaUnrecoverable: 4}
	b := memctrl.Stats{MediaCorrected: 10, MediaRetried: 20, MediaEscalated: 30, MediaUnrecoverable: 40}
	a.Merge(&b)
	if a.MediaCorrected != 11 || a.MediaRetried != 22 || a.MediaEscalated != 33 || a.MediaUnrecoverable != 44 {
		t.Fatalf("merged media stats wrong: %+v", a)
	}
}

func TestArbitrateFailureSeesDataAddressZero(t *testing.T) {
	// A data-block violation at address 0 must still have its data-line
	// evidence consulted: 0 is a legitimate data address, not a "no data
	// address" sentinel. A torn or uncorrectable line 0 used to arbitrate
	// as ambiguous/replay-shaped, mass-fencing the whole level.
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(0, 0, pattern(0, 3)); err != nil {
		t.Fatal(err)
	}
	c.Device().CorruptLine(0, nvmem.Line{})
	cause, evidence := c.ArbitrateFailure(0, 0, memctrl.TamperData(0, "test"))
	if cause != memctrl.CauseMediaECC {
		t.Fatalf("ArbitrateFailure(data addr 0) cause = %v, want media-ecc", cause)
	}
	if evidence == "none" || evidence == "" {
		t.Fatalf("ArbitrateFailure(data addr 0) evidence = %q, want recorded evidence", evidence)
	}
}
