// Evidence-arbitrated quarantine: the typed verdict layer degraded
// recovery uses when it fences off a subtree instead of healing it. Every
// quarantine carries a cause — which class of recorded media evidence (if
// any) explains the damage — and an evidence summary, so callers can tell
// a genuine media loss (torn line, stuck cells, escalated ECC) from
// replay-shaped damage that no recorded fault explains. Reads under a
// quarantined leaf fail fast with a *QuarantineError; a fresh write
// re-admits the written slot, resealing the branch bottom-up through the
// scheme's normal write-back machinery.

package memctrl

import (
	"errors"
	"fmt"

	"steins/internal/cache"
	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// QuarantineCause classifies what the recorded media evidence says about a
// quarantined subtree's damage.
type QuarantineCause uint8

// Quarantine causes, ordered roughly by how directly the evidence explains
// persistent damage.
const (
	// CauseUnknown is the zero value: the quarantining site recorded no
	// arbitration (legacy paths, hand-built states).
	CauseUnknown QuarantineCause = iota
	// CauseMediaTorn: the damage sits on a line torn at the crash boundary.
	CauseMediaTorn
	// CauseMediaStuck: the damaged line carries sticky stuck-at cells.
	CauseMediaStuck
	// CauseMediaECC: the line logged detected-uncorrectable ECC events.
	CauseMediaECC
	// CauseMediaEscalated: reads of the line exhausted the retry budget.
	CauseMediaEscalated
	// CauseReplayShaped: the damage regressed state with NO supporting
	// media evidence — the signature of an authentic-stale replay.
	CauseReplayShaped
	// CauseAmbiguous: damage that cannot be attributed to recorded media
	// evidence but is not a clean regression either; ambiguity quarantines.
	CauseAmbiguous
	numCauses
)

var causeNames = [...]string{
	"unknown", "media-torn", "media-stuck", "media-ecc", "media-escalated",
	"replay-shaped", "ambiguous",
}

// String returns the cause name used in reports and CLI tables.
func (c QuarantineCause) String() string {
	if int(c) >= len(causeNames) {
		return fmt.Sprintf("cause(%d)", int(c))
	}
	return causeNames[c]
}

// MediaExplained reports whether recorded media evidence explains the
// damage; such quarantines are degraded data loss, not attack detection.
func (c QuarantineCause) MediaExplained() bool {
	switch c {
	case CauseMediaTorn, CauseMediaStuck, CauseMediaECC, CauseMediaEscalated:
		return true
	}
	return false
}

// EvidenceSummary combines the device's per-line fault ledger with the
// controller-side retry-escalation record for one line.
type EvidenceSummary struct {
	nvmem.Evidence
	// Escalated counts reads of this line that exhausted the retry budget
	// (the controller's persistent RAS log; survives crashes like the
	// machine-check logs it models).
	Escalated uint64
}

// Persistent reports whether the evidence can explain persistent damage.
func (e EvidenceSummary) Persistent() bool {
	return e.Evidence.Persistent() || e.Escalated > 0
}

// String renders the combined summary; the zero value renders as "none".
func (e EvidenceSummary) String() string {
	s := e.Evidence.String()
	if e.Escalated == 0 {
		return s
	}
	esc := fmt.Sprintf("escalated×%d", e.Escalated)
	if s == "none" {
		return esc
	}
	return s + "+" + esc
}

// MediaCause maps an evidence summary to the quarantine cause it supports,
// strongest class first; ok is false when nothing persistent was recorded.
func MediaCause(e EvidenceSummary) (QuarantineCause, bool) {
	switch {
	case e.Torn:
		return CauseMediaTorn, true
	case e.Stuck:
		return CauseMediaStuck, true
	case e.Uncorrectable > 0:
		return CauseMediaECC, true
	case e.Escalated > 0:
		return CauseMediaEscalated, true
	}
	return CauseUnknown, false
}

// EvidenceAt returns the recorded media evidence for the NVM line at addr.
func (c *Controller) EvidenceAt(addr uint64) EvidenceSummary {
	return EvidenceSummary{
		Evidence:  c.dev.EvidenceFor(addr),
		Escalated: c.escalated[addr],
	}
}

// ArbitrateFailure attributes a recovery failure at a tree node against
// recorded media evidence: first the node's own line, then — when the
// failure names a specific data block — that data line. Damage some
// persistent media fault explains is degraded loss; damage nothing explains
// is replay-shaped (for replay-kind failures) or ambiguous (everything
// else), and quarantines as attack-shaped either way. Shared by every
// scheme's degraded recovery so cross-scheme verdicts stay comparable.
func (c *Controller) ArbitrateFailure(level int, index uint64, err error) (QuarantineCause, string) {
	ev := c.EvidenceAt(c.lay.Geo.NodeAddr(level, index))
	if cause, ok := MediaCause(ev); ok {
		return cause, ev.String()
	}
	var v *Violation
	// Data-block violations are recognised by their site, not by a nonzero
	// DataAddr: address 0 is a legitimate data line.
	if errors.As(err, &v) && v.Where == "data block" {
		dev := c.EvidenceAt(v.DataAddr)
		if cause, ok := MediaCause(dev); ok {
			return cause, dev.String()
		}
	}
	if errors.Is(err, ErrMediaFault) {
		return CauseMediaEscalated, ev.String()
	}
	if errors.Is(err, ErrReplay) {
		return CauseReplayShaped, ev.String()
	}
	return CauseAmbiguous, ev.String()
}

// QuarantineError is the typed fail-fast error every access under a
// quarantined (and not re-admitted) address returns, across all schemes.
// It matches ErrMediaFault via errors.Is, so legacy structured-error
// classification keeps working, and errors.As exposes the arbitration:
// address, quarantine root, cause, and the evidence summary recorded when
// the verdict was made.
type QuarantineError struct {
	// Addr is the data address the request targeted.
	Addr uint64
	// Leaf is the quarantined leaf index covering Addr.
	Leaf uint64
	// Root is the subtree root the quarantine was applied at.
	Root NodeRef
	// Cause is the arbitration verdict.
	Cause QuarantineCause
	// Evidence is the evidence summary recorded at quarantine time.
	Evidence string
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("media fault: address %#x is quarantined by degraded recovery (cause %s, evidence %s)",
		e.Addr, e.Cause, e.Evidence)
}

// Unwrap lets errors.Is(err, ErrMediaFault) classify the failure.
func (e *QuarantineError) Unwrap() error { return ErrMediaFault }

// quarInfo is the per-leaf arbitration record kept beside the quarantine
// bitset.
type quarInfo struct {
	root     NodeRef
	cause    QuarantineCause
	evidence string
}

// QuarantineSubtree fences off the data coverage of the subtree rooted at
// (level, index): every covered leaf is quarantined under the given cause
// and evidence summary, and the degradation report records the root, the
// arbitration, and the resulting data-loss bound. Schemes call it when
// degraded recovery gives up on a region.
func (c *Controller) QuarantineSubtree(level int, index uint64, cause QuarantineCause, evidence string, d *DegradationReport) {
	geo := &c.lay.Geo
	span := uint64(1)
	for k := 0; k < level; k++ {
		span *= counter.Arity
	}
	lo := index * span
	hi := min(lo+span, geo.LevelNodes[0])
	root := NodeRef{Level: level, Index: index}
	if c.quarInfo == nil {
		c.quarInfo = make(map[uint64]quarInfo)
	}
	for leaf := lo; leaf < hi; leaf++ {
		c.QuarantineLeaf(leaf)
		c.quarInfo[leaf] = quarInfo{root: root, cause: cause, evidence: evidence}
		delete(c.readmit, leaf)
	}
	d.Quarantined = append(d.Quarantined, root)
	d.Records = append(d.Records, QuarantineRecord{
		Node: root, Cause: cause, Evidence: evidence,
		DataLo: lo * geo.LeafCover * nvmem.LineSize,
		DataHi: min(hi*geo.LeafCover*nvmem.LineSize, geo.DataBytes),
	})
	d.DataLossBoundBytes += (hi - lo) * geo.LeafCover * nvmem.LineSize
}

// QuarantineAll fences off the entire data coverage: one quarantine per
// top-level subtree. Degraded recovery fails closed with it when an exact
// conservation check (register residual, cache-tree root) says stale state
// was replayed somewhere but cannot localise the replay — nothing recovered
// can then be trusted individually, so everything is condemned and only
// fresh writes re-admit.
func (c *Controller) QuarantineAll(cause QuarantineCause, evidence string, d *DegradationReport) {
	top := c.lay.Geo.Levels - 1
	for idx := uint64(0); idx < c.lay.Geo.LevelNodes[top]; idx++ {
		c.QuarantineSubtree(top, idx, cause, evidence, d)
	}
}

// quarantineError builds the typed fail-fast error for a data access under
// a quarantined leaf.
func (c *Controller) quarantineError(addr, leaf uint64) *QuarantineError {
	qe := &QuarantineError{Addr: addr, Leaf: leaf, Root: NodeRef{Level: 0, Index: leaf}}
	if info, ok := c.quarInfo[leaf]; ok {
		qe.Root, qe.Cause, qe.Evidence = info.root, info.cause, info.evidence
	} else {
		qe.Evidence = EvidenceSummary{}.String()
	}
	return qe
}

// LeafQuarantineRecord exposes one leaf's arbitration record (CLI tables,
// tests); ok is false when the leaf is not quarantined.
func (c *Controller) LeafQuarantineRecord(leaf uint64) (QuarantineRecord, bool) {
	if !c.LeafQuarantined(leaf) {
		return QuarantineRecord{}, false
	}
	rec := QuarantineRecord{Node: NodeRef{Level: 0, Index: leaf}}
	if info, ok := c.quarInfo[leaf]; ok {
		rec.Node, rec.Cause, rec.Evidence = info.root, info.cause, info.evidence
	}
	return rec, true
}

// --- re-admission ------------------------------------------------------------

// readmitCounterSkip is how far a re-admission write advances the adopted
// counter base beyond its persisted value before sealing fresh data. The
// condemned lineage may have sealed tags at counters the adopted (stale)
// leaf image never recorded — bounded by WriteThroughEvery unflushed
// writes — and an attacker who captured such a (ct, tag) pair could
// replay it over any reseal that reuses its counter, invisibly to every
// conservation check because the reused counter is exactly the one the
// accounting expects. Skipping by more than the unflushed-advance bound
// (and flushing the skip in the same crash-atomic request) guarantees
// every re-admitted seal uses a counter no lost lineage ever touched.
// GCHintMask+1 also keeps GC hint congruence trivially intact.
const readmitCounterSkip = cme.GCHintMask + 1

// slotReadmitted reports whether the data slot under a quarantined leaf
// has been freshly rewritten since the quarantine verdict.
func (c *Controller) slotReadmitted(leaf uint64, slot int) bool {
	return c.readmit[leaf]&(1<<uint(slot)) != 0
}

// readmitSlot records a fresh write to a quarantined leaf's data slot.
// When every covered slot has been rewritten the leaf's quarantine is
// fully lifted: the subtree was resealed bottom-up by the writes' normal
// write-back path, and nothing condemned remains reachable.
func (c *Controller) readmitSlot(leaf uint64, slot int) {
	if c.readmit == nil {
		c.readmit = make(map[uint64]uint64)
	}
	c.readmit[leaf] |= 1 << uint(slot)
	full := uint64(1)<<c.lay.Geo.LeafCover - 1
	if c.lay.Geo.LeafCover >= 64 {
		full = ^uint64(0)
	}
	if c.readmit[leaf] == full {
		c.liftQuarantine(leaf)
	}
}

// liftQuarantine removes one leaf from the quarantine set entirely.
func (c *Controller) liftQuarantine(leaf uint64) {
	w, b := leaf/64, leaf%64
	if c.quarBits != nil && c.quarBits[w]&(1<<b) != 0 {
		c.quarBits[w] &^= 1 << b
		c.quarN--
	}
	delete(c.quarInfo, leaf)
	delete(c.readmit, leaf)
}

// ReadmittedSlots returns the readmit mask of a quarantined leaf (bit i =
// data slot i freshly rewritten); zero when nothing was re-admitted.
func (c *Controller) ReadmittedSlots(leaf uint64) uint64 { return c.readmit[leaf] }

// AdoptReconciler is an optional policy interface. When re-admission
// adopts a condemned leaf image that does NOT verify, the adopted FValue
// differs from whatever the parent side vouches for the leaf — a gap the
// scheme's increment accounting can never close on its own, because the
// increments of the fresh writes count from the adopted base while the
// parent-side chain still counts from the lost one. A scheme that keeps
// such accounting implements ReconcileAdopted to move the parent side onto
// the adopted FValue through its normal parent-update machinery, so the
// reseal is exact and the next recovery's conservation law balances.
type AdoptReconciler interface {
	ReconcileAdopted(e *cache.Entry[*sit.Node]) uint64
}

// readmitFetchLeaf makes a condemned leaf writable again: it fetches the
// leaf normally when the branch still verifies (an authentic-stale replay
// is self-consistent, so this is the common replay-shaped case), and
// otherwise adopts the leaf's stale NVM image without verification — the
// copy is condemned either way, and the fresh write's normal write-back
// reseals the branch bottom-up with honest increment deltas from the
// adopted base.
func (c *Controller) readmitFetchLeaf(leaf uint64) (*cache.Entry[*sit.Node], uint64, error) {
	e, cyc, err := c.FetchNode(0, leaf)
	if err == nil {
		return e, cyc, nil
	}
	// The condemned image does not verify (media-shaped damage): adopt it
	// as the counter base and mark it dirty through the policy funnel so
	// the scheme re-establishes its tracking state (like the re-adopt path
	// of EvictDirtyNode, the policy sees a clean->dirty transition).
	node := c.StaleNode(0, leaf)
	e, icyc, ierr := c.insertNode(c.lay.Geo.NodeAddr(0, leaf), node, true)
	cyc += icyc
	if ierr != nil {
		return nil, cyc, ierr
	}
	e.Dirty = true
	cyc += c.policy.OnModify(e, true, 0)
	if ar, ok := c.policy.(AdoptReconciler); ok {
		cyc += ar.ReconcileAdopted(e)
	}
	return e, cyc, nil
}

// NodeCondemned reports whether every leaf that tree node (level, index)
// authenticates is quarantined. Such a node guards nothing readable: its
// image may be arbitrarily damaged without any read depending on it, so a
// scheme that must install a pending counter update into it (e.g. a
// deferred parent-buffer drain) may adopt the stale image instead of
// failing the fetch.
func (c *Controller) NodeCondemned(level int, index uint64) bool {
	if c.quarN == 0 {
		return false
	}
	span := uint64(1)
	for k := 0; k < level; k++ {
		span *= counter.Arity
	}
	first := index * span
	last := first + span
	if last > c.lay.Geo.LevelNodes[0] {
		last = c.lay.Geo.LevelNodes[0]
	}
	for leaf := first; leaf < last; leaf++ {
		if !c.LeafQuarantined(leaf) {
			return false
		}
	}
	return true
}

// FetchNodeAdoptingCondemned fetches a metadata node like FetchNode, but
// when verification fails AND the node's entire leaf coverage is
// quarantined, it adopts the stale NVM image as the counter base instead
// of surfacing the error (the interior-node analogue of readmitFetchLeaf).
// Re-admission forces condemned leaves to flush, which hands their parent
// a counter update even though that parent — the quarantined subtree's own
// damaged spine — may not verify; the adoption lets the update land, the
// entry goes dirty through the policy funnel, and the eventual write-back
// reseals the spine with honest deltas from the adopted base. Nothing is
// hidden from detection: every leaf under the node stays fenced until a
// fresh write re-admits it, and a crash re-arbitrates the branch against
// the exact conservation proofs.
func (c *Controller) FetchNodeAdoptingCondemned(level int, index uint64) (*cache.Entry[*sit.Node], uint64, error) {
	e, cyc, err := c.FetchNode(level, index)
	if err == nil || !c.NodeCondemned(level, index) {
		return e, cyc, err
	}
	node := c.StaleNode(level, index)
	e, icyc, ierr := c.insertNode(c.lay.Geo.NodeAddr(level, index), node, true)
	cyc += icyc
	if ierr != nil {
		return nil, cyc, ierr
	}
	e.Dirty = true
	cyc += c.policy.OnModify(e, true, 0)
	if ar, ok := c.policy.(AdoptReconciler); ok {
		cyc += ar.ReconcileAdopted(e)
	}
	return e, cyc, nil
}
