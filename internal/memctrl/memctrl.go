// Package memctrl implements the secure memory controller: the request
// pipeline that encrypts/decrypts user data with counter-mode encryption,
// verifies it against the SGX-style integrity tree, caches security
// metadata (Table I: 256 KB, 8-way), and delegates crash-consistency
// behaviour to a pluggable recovery scheme (Policy).
//
// The controller is a trace-driven timing-and-function simulator: every
// operation both performs the real work (actual ciphertext, actual MACs,
// actual tree state in the NVM device) and accounts its cycle cost, so one
// run yields both the paper's performance metrics and a state on which
// crash recovery and attack detection can be exercised functionally.
package memctrl

import (
	"errors"
	"fmt"

	"steins/internal/crypt"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Config assembles the Table I system parameters.
type Config struct {
	// DataBytes is the protected user-data capacity. The paper evaluates
	// 16 GB; simulations typically model a smaller region, which scales
	// every structure proportionally.
	DataBytes uint64
	// SplitLeaf selects split-counter leaves (the -SC variants).
	SplitLeaf bool

	MetaCacheBytes int // metadata cache capacity (Table I: 256 KB)
	MetaCacheWays  int // metadata cache associativity (Table I: 8)

	HashCycles     uint64 // HMAC engine latency (Table I: 40 cycles)
	AESCycles      uint64 // AES/OTP engine latency (40 cycles)
	CacheHitCycles uint64 // metadata cache hit latency
	// RunAheadCycles bounds how far request arrivals may run ahead of the
	// controller (closed-loop core model: finite MSHRs stall the core when
	// the memory system backs up).
	RunAheadCycles uint64

	HashPJ float64 // energy per HMAC computation
	AESPJ  float64 // energy per OTP generation

	NVM nvmem.Config // CapacityBytes is derived from the layout

	Key crypt.Key
	MAC crypt.MAC
	OTP crypt.OTPGen

	// EagerUpdate switches the SIT to the eager update scheme of §II-C
	// (every ancestor updated on each write); default is lazy.
	EagerUpdate bool

	// Recovery cost model (§IV-D): reading and verifying one line from
	// NVM during recovery costs RecoveryReadNS; a restore write costs
	// RecoveryWriteNS; a MAC evaluation costs RecoveryHashNS.
	RecoveryReadNS  float64
	RecoveryWriteNS float64
	RecoveryHashNS  float64

	// WriteThroughEvery bounds how far a cached leaf counter may run ahead
	// of its NVM copy before the node is persisted in place (the §II-D
	// write-through escape hatch). It must stay below the GC tag hint
	// window (2^16) or leaf recovery could not find the counter.
	WriteThroughEvery uint64

	// Scheme knobs.
	RecordCacheLines int // Steins: record lines cached in the MC (16)
	NVBufferBytes    int // Steins: non-volatile parent-counter buffer (128 B)
	AuxCacheWays     int // associativity of record/bitmap line caches
	CacheTreeLevels  int // ASIT/STAR cache-tree height above its leaves (4)

	// ReadRetries bounds how often a detected-uncorrectable NVM read is
	// reissued (transient flips are redrawn per attempt) before the error
	// escalates to the caller.
	ReadRetries int
	// RetryBackoffCycles is the linear per-attempt backoff added to the
	// access latency of each retry.
	RetryBackoffCycles uint64
	// DegradedRecovery lets recovery continue past corrupted metadata:
	// Steins heals corrupted interior nodes from their self-verifying
	// children, other schemes quarantine the affected subtree, and the
	// RecoveryReport carries a DegradationReport. Off (the default), any
	// corruption aborts recovery with the integrity error, the pre-fault
	// behaviour.
	DegradedRecovery bool

	// MACBatchWindow bounds the deferred data-tag MAC queue: the host
	// defers up to this many write-path tag MACs and computes them in one
	// batch (see cme.Engine.BatchWindow). Purely a host-side optimization:
	// simulated latency, energy and every result are bit-identical at any
	// window. <= 1 disables batching.
	MACBatchWindow int
}

// DefaultConfig returns the Table I configuration over the given data
// capacity and leaf kind.
func DefaultConfig(dataBytes uint64, splitLeaf bool) Config {
	return Config{
		DataBytes:          dataBytes,
		SplitLeaf:          splitLeaf,
		MetaCacheBytes:     256 << 10,
		MetaCacheWays:      8,
		HashCycles:         40,
		AESCycles:          40,
		CacheHitCycles:     2,
		RunAheadCycles:     500,
		HashPJ:             220,
		AESPJ:              180,
		NVM:                nvmem.DefaultConfig(),
		Key:                crypt.NewKey(0x57e1_4ab5),
		MAC:                crypt.SipMAC{},
		OTP:                crypt.FastPad{},
		RecoveryReadNS:     100,
		RecoveryWriteNS:    300,
		RecoveryHashNS:     20,
		WriteThroughEvery:  60000,
		RecordCacheLines:   16,
		NVBufferBytes:      128,
		AuxCacheWays:       4,
		CacheTreeLevels:    4,
		ReadRetries:        3,
		RetryBackoffCycles: 32,
		MACBatchWindow:     16,
	}
}

// ConfigError reports a Config field New cannot build a controller from.
// It is structured so harnesses can tell WHICH knob a hand-built (non-
// DefaultConfig) configuration got wrong.
type ConfigError struct {
	Field  string // the Config field name
	Value  int64  // the rejected value
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("memctrl: invalid Config.%s = %d: %s", e.Field, e.Value, e.Reason)
}

// Validate checks a configuration and returns a normalized copy: fields
// with a well-defined degenerate meaning are clamped (MACBatchWindow <= 0
// behaves exactly like 1, i.e. batching disabled — any window is
// bit-identical by contract, so silent divergence is impossible;
// NVBufferBytes < 0 is an absent buffer), while fields no controller can
// be built from (zero/negative cache or data sizes, associativity below
// the 2 ways eviction needs) are rejected with a *ConfigError. Both
// construction paths funnel through it: DefaultConfig output passes
// unchanged, and New applies it to every hand-built Config.
func (cfg Config) Validate() (Config, error) {
	if cfg.DataBytes == 0 {
		return cfg, &ConfigError{Field: "DataBytes", Value: 0, Reason: "no protected data region"}
	}
	if cfg.MetaCacheBytes <= 0 {
		return cfg, &ConfigError{Field: "MetaCacheBytes", Value: int64(cfg.MetaCacheBytes),
			Reason: "metadata cache needs a positive capacity"}
	}
	if cfg.MetaCacheWays < 2 {
		return cfg, &ConfigError{Field: "MetaCacheWays", Value: int64(cfg.MetaCacheWays),
			Reason: "metadata cache needs at least 2 ways"}
	}
	if cfg.MetaCacheBytes < cfg.MetaCacheWays*nvmem.LineSize {
		return cfg, &ConfigError{Field: "MetaCacheBytes", Value: int64(cfg.MetaCacheBytes),
			Reason: fmt.Sprintf("smaller than one %d-way set of 64 B lines", cfg.MetaCacheWays)}
	}
	if cfg.MACBatchWindow < 1 {
		cfg.MACBatchWindow = 1
	}
	if cfg.NVBufferBytes < 0 {
		cfg.NVBufferBytes = 0
	}
	if cfg.RecordCacheLines < 0 {
		cfg.RecordCacheLines = 0
	}
	return cfg, nil
}

// Layout places every region in the NVM address space: user data at zero,
// the SIT levels above it, then the per-scheme regions (sized for every
// scheme so one device layout serves all of them; unused regions are free
// in the sparse device).
type Layout struct {
	Geo sit.Geometry
	// ASIT shadow table: one 64 B slot per metadata cache line.
	ShadowBase, ShadowBytes uint64
	// Steins offset records: one 4 B entry per metadata cache line.
	RecordBase, RecordBytes uint64
	// STAR dirty bitmap: one bit per tree node (first layer) followed at
	// L1BitmapOffset by the second layer (one bit per first-layer line).
	BitmapBase, BitmapBytes uint64
	L1BitmapOffset          uint64
	Capacity                uint64
}

// RecordEntriesPerLine is how many 4-byte offsets fit one record line.
const RecordEntriesPerLine = 16

// NewLayout computes the layout for a configuration.
func NewLayout(cfg Config) Layout {
	var l Layout
	l.Geo = sit.NewGeometry(cfg.DataBytes, cfg.SplitLeaf, cfg.DataBytes)
	cacheLines := uint64(cfg.MetaCacheBytes / nvmem.LineSize)

	l.ShadowBase = l.Geo.MetaBase + l.Geo.MetaBytes
	l.ShadowBytes = cacheLines * nvmem.LineSize

	l.RecordBase = l.ShadowBase + l.ShadowBytes
	l.RecordBytes = roundLine(cacheLines * 4)

	l.BitmapBase = l.RecordBase + l.RecordBytes
	l0 := roundLine((l.Geo.TotalNodes() + 7) / 8)
	l.L1BitmapOffset = l0
	l1 := roundLine((l0/nvmem.LineSize + 7) / 8)
	l.BitmapBytes = l0 + l1

	l.Capacity = l.BitmapBase + l.BitmapBytes
	return l
}

func roundLine(b uint64) uint64 {
	const m = nvmem.LineSize
	return (b + m - 1) / m * m
}

// RecordLines returns the number of 64 B record lines.
func (l *Layout) RecordLines() uint64 { return l.RecordBytes / nvmem.LineSize }

// BitmapLines returns the number of 64 B bitmap lines.
func (l *Layout) BitmapLines() uint64 { return l.BitmapBytes / nvmem.LineSize }

// Integrity violations surfaced by verification, runtime or recovery.
var (
	// ErrTamper marks an HMAC mismatch: data or metadata was modified.
	ErrTamper = errors.New("integrity violation: HMAC mismatch (tampering)")
	// ErrReplay marks a trust-base mismatch: stale-but-authentic state was
	// replayed (LInc shortfall, cache-tree root mismatch, ...).
	ErrReplay = errors.New("integrity violation: trust base mismatch (replay)")
	// ErrNoRecovery is returned by schemes without recovery support (WB).
	ErrNoRecovery = errors.New("scheme does not support recovery")
	// ErrUnrecoverable marks metadata that could not be restored (e.g. a
	// counter outside the recovery search window).
	ErrUnrecoverable = errors.New("metadata unrecoverable")
	// ErrMediaFault marks an access that failed on the NVM media itself:
	// a detected-uncorrectable ECC event that survived the retry budget,
	// or an access to a leaf quarantined by degraded recovery.
	ErrMediaFault = errors.New("media fault: uncorrectable NVM error")
)

// MediaFault is the structured media error; it matches ErrMediaFault via
// errors.Is and errors.As yields the failing address.
type MediaFault struct {
	// Addr is the NVM line address that failed (for a quarantined access,
	// the data address the request targeted).
	Addr uint64
	// Quarantined is set when the address belongs to a subtree degraded
	// recovery gave up on, rather than a live ECC escalation.
	Quarantined bool
	// Err is the underlying device error, if any.
	Err error
}

func (e *MediaFault) Error() string {
	if e.Quarantined {
		return fmt.Sprintf("media fault: address %#x is quarantined by degraded recovery", e.Addr)
	}
	return fmt.Sprintf("media fault: uncorrectable NVM error at %#x after retries: %v", e.Addr, e.Err)
}

// Unwrap lets errors.Is classify the failure.
func (e *MediaFault) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrMediaFault}
	}
	return []error{ErrMediaFault, e.Err}
}
