package memctrl

import "steins/internal/sit"

// DataCounter returns the current encryption counter of the leaf slot
// covering data address addr, without timing, statistics, or LRU effects.
// It resolves the newest copy the way a fetch would — resident cache entry
// first, then an in-flight eviction, then the persisted NVM image — so
// differential tests can compare final counter state between runs (and
// between sharded and unsharded engines) after any drive.
func (c *Controller) DataCounter(addr uint64) uint64 {
	c.checkDataAddr(addr)
	leaf, slot := c.lay.Geo.LeafOfData(addr)
	naddr := c.lay.Geo.NodeAddr(0, leaf)
	var node *sit.Node
	if e, ok := c.meta.Probe(naddr); ok {
		node = e.Payload
	} else if n, ok := c.evictingNode(naddr); ok {
		node = n
	} else {
		node = c.StaleNode(0, leaf)
	}
	if node.IsSplit {
		return node.Split.EncCounter(slot)
	}
	return node.Gen.C[slot]
}
