package memctrl

import (
	"fmt"

	"steins/internal/metrics"
)

// Stats aggregates controller-side activity for one run. NVM-side counters
// (per-class reads/writes, stall cycles) live in the device's own stats.
type Stats struct {
	DataReads   uint64
	DataWrites  uint64
	ReadLatSum  uint64 // cycles, includes controller queueing
	WriteLatSum uint64
	HashOps     uint64 // MAC engine invocations
	AESOps      uint64 // OTP generations
	Overflows   uint64 // split-leaf minor overflows (re-encryption events)
	Reencrypts  uint64 // data blocks re-encrypted by overflows

	// Media-fault read-path counters (the device's own Stats.Faults hold
	// the raw event counts; these count the controller's responses).
	MediaCorrected     uint64 // reads the device ECC silently repaired
	MediaRetried       uint64 // read retries issued after uncorrectable events
	MediaEscalated     uint64 // reads that exhausted the retry budget
	MediaUnrecoverable uint64 // user-visible requests failed by media faults

	// Latency distributions (cycles), for tail analysis beyond the means
	// the paper reports.
	ReadHist  metrics.Hist
	WriteHist metrics.Hist

	// Per-phase cycle attribution, accumulated per path. For each retired
	// request the controller splits its cycles across the metrics.Phase
	// buckets; summed over a run, every bucket except PhaseQueueWait
	// partitions MeasuredExecCycles exactly (idle gaps are attributed to
	// the request that ended them). PhaseQueueWait is the latency view:
	// it overlaps the service of preceding requests.
	ReadPhases  metrics.Breakdown
	WritePhases metrics.Breakdown
}

// Merge folds another controller's statistics into s; the multi-controller
// system builds its system-wide view this way. Histograms merge
// bucket-wise, counters and phase totals add.
func (s *Stats) Merge(o *Stats) {
	s.DataReads += o.DataReads
	s.DataWrites += o.DataWrites
	s.ReadLatSum += o.ReadLatSum
	s.WriteLatSum += o.WriteLatSum
	s.HashOps += o.HashOps
	s.AESOps += o.AESOps
	s.Overflows += o.Overflows
	s.Reencrypts += o.Reencrypts
	s.MediaCorrected += o.MediaCorrected
	s.MediaRetried += o.MediaRetried
	s.MediaEscalated += o.MediaEscalated
	s.MediaUnrecoverable += o.MediaUnrecoverable
	s.ReadHist.Merge(&o.ReadHist)
	s.WriteHist.Merge(&o.WriteHist)
	for ph := range s.ReadPhases {
		s.ReadPhases[ph] += o.ReadPhases[ph]
		s.WritePhases[ph] += o.WritePhases[ph]
	}
}

// PhaseCycles returns the combined read+write cycles attributed to one
// bucket.
func (s *Stats) PhaseCycles(ph metrics.Phase) uint64 {
	return s.ReadPhases[ph] + s.WritePhases[ph]
}

// MakespanPhaseCycles sums the makespan-partition buckets of both paths;
// it equals MeasuredExecCycles by construction.
func (s *Stats) MakespanPhaseCycles() uint64 {
	return metrics.MakespanCycles(&s.ReadPhases) + metrics.MakespanCycles(&s.WritePhases)
}

// AvgReadLatency returns mean read latency in cycles.
func (s Stats) AvgReadLatency() float64 {
	if s.DataReads == 0 {
		return 0
	}
	return float64(s.ReadLatSum) / float64(s.DataReads)
}

// AvgWriteLatency returns mean write latency in cycles.
func (s Stats) AvgWriteLatency() float64 {
	if s.DataWrites == 0 {
		return 0
	}
	return float64(s.WriteLatSum) / float64(s.DataWrites)
}

// RecoveryReport quantifies one recovery pass (§IV-D cost model: time is
// dominated by NVM fetches at RecoveryReadNS each, plus restore writes and
// MAC computations).
type RecoveryReport struct {
	Scheme         string
	NodesRecovered uint64
	NVMReads       uint64
	NVMWrites      uint64
	MACOps         uint64
	TimeNS         float64
	// Degradation describes what degraded recovery healed, quarantined or
	// lost; empty on a clean recovery or with DegradedRecovery off.
	Degradation DegradationReport
}

// NodeRef names one tree node in a DegradationReport. Level -1 refers to a
// data-leaf region identified by Index (the leaf index).
type NodeRef struct {
	Level int
	Index uint64
}

// DegradationReport is the structured outcome of a degraded recovery:
// which nodes were healed in place, which subtrees were quarantined (their
// data remains stored but every access returns a MediaFault), and which
// were entirely unrecoverable, plus the resulting worst-case data-loss
// bound in bytes.
type DegradationReport struct {
	Healed        []NodeRef
	Quarantined   []NodeRef
	Unrecoverable []NodeRef
	// Records carries the arbitration verdict of each Quarantined entry
	// (same order): the cause class and the media-evidence summary the
	// verdict was made against.
	Records            []QuarantineRecord
	DataLossBoundBytes uint64
}

// QuarantineRecord is one quarantine root together with its arbitration.
type QuarantineRecord struct {
	Node     NodeRef
	Cause    QuarantineCause
	Evidence string
	// DataLo/DataHi bound the fenced data coverage as a half-open byte
	// range of controller-local addresses (channel-local under sharding).
	DataLo, DataHi uint64
}

// ReplayShaped reports whether any quarantine verdict was replay-shaped or
// ambiguous — damage no recorded media evidence explains.
func (d *DegradationReport) ReplayShaped() bool {
	for _, r := range d.Records {
		if !r.Cause.MediaExplained() {
			return true
		}
	}
	return false
}

// Degraded reports whether anything deviated from a clean recovery.
func (d *DegradationReport) Degraded() bool {
	return len(d.Healed) > 0 || len(d.Quarantined) > 0 || len(d.Unrecoverable) > 0
}

// Fold accumulates another report (another channel's, under RecoverAll).
func (d *DegradationReport) Fold(o *DegradationReport) {
	d.Healed = append(d.Healed, o.Healed...)
	d.Quarantined = append(d.Quarantined, o.Quarantined...)
	d.Unrecoverable = append(d.Unrecoverable, o.Unrecoverable...)
	d.Records = append(d.Records, o.Records...)
	d.DataLossBoundBytes += o.DataLossBoundBytes
}

// StorageOverhead itemises a scheme's §IV-E storage costs.
type StorageOverhead struct {
	TreeBytes      uint64 // SIT nodes in NVM
	NVMExtraBytes  uint64 // shadow table / records / bitmap in NVM
	CacheTaxBytes  uint64 // metadata cache capacity consumed by the scheme
	OnChipNVBytes  uint64 // non-volatile registers/buffers on chip
	OnChipSRBytes  uint64 // volatile on-chip structures (cache-tree interior)
	LeafCoverBytes uint64 // data bytes covered per leaf node
}

// Violation is the structured integrity error every verification failure
// carries: §III-H notes that top-down verification localises the attack,
// so the error names the level and node (or data address) that failed.
// errors.Is(err, ErrTamper/ErrReplay) matches through Unwrap.
type Violation struct {
	Kind     error  // ErrTamper or ErrReplay
	Where    string // human-readable site ("SIT node", "data block", ...)
	Level    int    // tree level, -1 for data blocks and region-wide checks
	Index    uint64 // node index within the level
	DataAddr uint64 // data address for data-block violations
	Detail   string // extra context
}

// Error implements error.
func (v *Violation) Error() string {
	msg := v.Kind.Error() + ": " + v.Where
	if v.Level >= 0 {
		msg += fmt.Sprintf(" level %d index %d", v.Level, v.Index)
	}
	if v.Where == "data block" {
		msg += fmt.Sprintf(" %#x", v.DataAddr)
	}
	if v.Detail != "" {
		msg += " (" + v.Detail + ")"
	}
	return msg
}

// Unwrap lets errors.Is match ErrTamper/ErrReplay.
func (v *Violation) Unwrap() error { return v.Kind }

// TamperAt builds a tampering violation for a tree node.
func TamperAt(where string, level int, index uint64, detail string) error {
	return &Violation{Kind: ErrTamper, Where: where, Level: level, Index: index, Detail: detail}
}

// ReplayAt builds a replay violation for a tree level or node.
func ReplayAt(where string, level int, index uint64, detail string) error {
	return &Violation{Kind: ErrReplay, Where: where, Level: level, Index: index, Detail: detail}
}

// TamperData builds a tampering violation for a data block.
func TamperData(addr uint64, detail string) error {
	return &Violation{Kind: ErrTamper, Where: "data block", Level: -1, DataAddr: addr, Detail: detail}
}

// ReplayData builds a replay violation for a data block.
func ReplayData(addr uint64, detail string) error {
	return &Violation{Kind: ErrReplay, Where: "data block", Level: -1, DataAddr: addr, Detail: detail}
}
