package memctrl

import (
	"fmt"

	"steins/internal/cache"
	"steins/internal/counter"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// checkDataAddr validates a user-data address, returning a wrapped
// nvmem.ErrUnaligned/ErrOutOfRange on violation.
func (c *Controller) checkDataAddr(addr uint64) error {
	if addr%nvmem.LineSize != 0 {
		return fmt.Errorf("memctrl: %w: data address %#x", nvmem.ErrUnaligned, addr)
	}
	if addr >= c.cfg.DataBytes {
		return fmt.Errorf("memctrl: %w: data address %#x outside %#x data bytes",
			nvmem.ErrOutOfRange, addr, c.cfg.DataBytes)
	}
	return nil
}

// checkReadAddr is checkDataAddr plus the quarantine fence: a read under a
// quarantined leaf fails fast with a typed *QuarantineError carrying the
// arbitration verdict, unless a fresh write already re-admitted this slot.
// Writes are deliberately not fenced — a fresh write is the re-admission
// path.
func (c *Controller) checkReadAddr(addr uint64) error {
	if err := c.checkDataAddr(addr); err != nil {
		return err
	}
	if c.quarN > 0 {
		if leaf, slot := c.lay.Geo.LeafOfData(addr); c.LeafQuarantined(leaf) && !c.slotReadmitted(leaf, slot) {
			c.stats.MediaUnrecoverable++
			return c.quarantineError(addr, leaf)
		}
	}
	return nil
}

// WriteData processes a dirty LLC eviction (§III-F): the covering leaf
// counter advances, the block is encrypted and tagged, and the scheme's
// tracking state is updated. gap is the trace time since the previous
// request.
func (c *Controller) WriteData(gap uint64, addr uint64, data [64]byte) error {
	if err := c.checkDataAddr(addr); err != nil {
		return err
	}
	c.arrive(gap)
	var cycles uint64
	leaf, slot := c.lay.Geo.LeafOfData(addr)
	readmitting := c.quarN > 0 && c.LeafQuarantined(leaf)
	var le *cache.Entry[*sit.Node]
	var fc uint64
	var err error
	if readmitting {
		// Re-admission: a fresh write to a quarantined address adopts the
		// condemned leaf as its counter base and reseals the branch
		// bottom-up through the normal write-back machinery.
		le, fc, err = c.readmitFetchLeaf(leaf)
	} else {
		le, fc, err = c.FetchNode(0, leaf)
	}
	cycles += fc
	if err != nil {
		c.completeWrite(cycles)
		return err
	}
	wasClean := !le.Dirty
	node := le.Payload
	var encCtr, delta, major uint64
	var skipped bool
	if node.IsSplit {
		// The first re-admitted slot of a quarantine epoch skips the
		// shared major past every encryption counter the condemned
		// lineage could have sealed (its unflushed advance is bounded by
		// WriteThroughEvery writes of at most 64 counter steps each,
		// well under readmitCounterSkip·2^6): an adopted stale base must
		// never reuse a counter an attacker may hold a captured (ct, tag)
		// pair for. Later slots of the same epoch are covered by the
		// same skip — the major never regresses.
		skipped = readmitting && c.ReadmittedSlots(leaf) == 0
		willOverflow := node.Split.Minor[slot] == counter.MinorMax
		var pre counter.Split
		if willOverflow || skipped {
			pre = node.Split
		}
		if skipped {
			node.Split.Major += readmitCounterSkip
			delta += readmitCounterSkip * counter.MinorRange
		}
		d, _ := node.Split.Increment(slot)
		delta += d
		if willOverflow || skipped {
			if willOverflow {
				c.stats.Overflows++
			}
			rc, rerr := c.reencrypt(le, &pre, slot)
			cycles += rc
			if rerr != nil {
				c.completeWrite(cycles)
				return rerr
			}
		}
		encCtr, major = node.Split.EncCounter(slot), node.Split.Major
	} else {
		// Per-slot counters: every slot's first fresh write of a
		// quarantine epoch takes its own skip (its neighbours' counters
		// did not move with it).
		if readmitting && !c.slotReadmitted(leaf, slot) {
			node.Gen.C[slot] = (node.Gen.C[slot] + readmitCounterSkip) & counter.CounterMask
			delta += readmitCounterSkip
			skipped = true
		}
		d, wrapped := node.Gen.Increment(slot)
		delta += d
		if wrapped {
			// The 342–685-year corner case of §III-B2: the system would
			// re-key and rebuild the tree; the simulator surfaces it.
			c.completeWrite(cycles)
			return fmt.Errorf("%w: 56-bit leaf counter wrapped, re-keying required", ErrUnrecoverable)
		}
		encCtr = node.Gen.C[slot]
	}
	le.Dirty = true
	node.WritesSinceFlush++
	// A counter skip is flushed within the same (crash-atomic) request:
	// the persisted leaf base then always bounds the unflushed counter
	// advance by WriteThroughEvery < readmitCounterSkip, which is what
	// makes both hint pinning and the next skip's freshness guarantee
	// exact.
	writeThrough := skipped ||
		c.cfg.WriteThroughEvery > 0 && node.WritesSinceFlush >= c.cfg.WriteThroughEvery
	cycles += c.policy.OnModify(le, wasClean, delta)
	if c.cfg.EagerUpdate {
		ec, eerr := c.eagerPropagate(leaf)
		cycles += ec
		if eerr != nil {
			c.completeWrite(cycles)
			return eerr
		}
	}

	ct := data
	c.eng.Apply(&ct, addr, encCtr)
	c.stats.AESOps++
	// The tag's host-side MAC is deferred into the engine's batch window
	// (the simulated machine computes and stores it now — latency and
	// HashOps are charged here); the queue copies the message, so ct can
	// keep moving.
	dst := c.tags.Ptr(addr / nvmem.LineSize)
	if node.IsSplit {
		c.eng.QueueTagSC(dst, &ct, addr, encCtr, major)
	} else {
		c.eng.QueueTagGC(dst, &ct, addr, encCtr)
	}
	c.stats.HashOps++
	c.Attribute(metrics.PhaseCrypto, c.cfg.AESCycles+c.cfg.HashCycles)
	cycles += c.cfg.AESCycles + c.cfg.HashCycles
	stall := c.dev.MustWrite(c.reqStart+cycles, addr, nvmem.Line(ct), nvmem.ClassData)
	c.Attribute(metrics.PhaseWriteDrain, stall)
	cycles += stall
	if readmitting {
		// The slot now holds fresh data under a fresh counter and tag;
		// lift its fence (and the whole leaf's once every slot is fresh).
		c.readmitSlot(leaf, slot)
	}
	if writeThrough {
		// §II-D write-through: persist the leaf (through the scheme's
		// normal write-back) before its counters run beyond the recovery
		// search window. The flush goes last so the captured encryption
		// counter stays valid for this request. A counter-skip flush
		// keeps the trusted copy resident: on a quarantined branch the
		// parent chain may not have resealed yet, and re-fetching
		// through it would fail reads the re-admission just earned.
		var wc uint64
		var werr error
		if e, ok := c.meta.Probe(c.lay.Geo.NodeAddr(0, leaf)); skipped && ok && e.Payload == node {
			wc, werr = c.WriteThroughNode(e)
		} else if !skipped {
			wc, werr = c.FlushNode(0, leaf)
		}
		// A skipped leaf that already left the cache mid-request was
		// persisted by that eviction; nothing more to flush.
		cycles += wc
		if werr != nil {
			c.completeWrite(cycles)
			return werr
		}
	}
	c.completeWrite(cycles)
	return nil
}

// ReadData fetches, verifies and decrypts a data block (§III-F). The OTP
// is generated in parallel with the NVM data fetch, hiding the decryption
// latency when the counter hits in the metadata cache (§II-B).
func (c *Controller) ReadData(gap uint64, addr uint64) ([64]byte, error) {
	if err := c.checkReadAddr(addr); err != nil {
		return [64]byte{}, err
	}
	c.arrive(gap)
	var cycles uint64
	bc, err := c.policy.BeforeRead()
	cycles += bc
	if err != nil {
		c.completeRead(cycles)
		return [64]byte{}, err
	}
	leaf, slot := c.lay.Geo.LeafOfData(addr)
	le, counterPath, err := c.FetchNode(0, leaf)
	if err != nil {
		c.completeRead(cycles + counterPath)
		return [64]byte{}, err
	}
	node := le.Payload
	var encCtr uint64
	if node.IsSplit {
		encCtr = node.Split.EncCounter(slot)
	} else {
		encCtr = node.Gen.C[slot]
	}
	line, dataLat, err := c.ReadLineRetried(c.reqStart+cycles, addr, nvmem.ClassData)
	c.Attribute(metrics.PhaseNVMRead, dataLat)
	if err != nil {
		c.stats.MediaUnrecoverable++
		c.completeRead(cycles + dataLat)
		return [64]byte{}, err
	}
	tag := c.tagFor(addr)
	if !tag.Written {
		// A block is legitimately unwritten iff its own counter never
		// advanced: a zero minor under a split leaf (majors advance for
		// the whole leaf on any neighbour's overflow) or a zero counter
		// under a general leaf. Anything else means the tag was erased.
		virgin := encCtr == 0
		if node.IsSplit {
			virgin = node.Split.Minor[slot] == 0
		}
		cycles += max(dataLat, counterPath)
		c.completeRead(cycles)
		if !virgin {
			return [64]byte{}, TamperData(addr, "live counter but no tag")
		}
		// Never written: initial zero contents, nothing to decrypt.
		return [64]byte{}, nil
	}
	ct := [64]byte(line)
	c.stats.AESOps++
	otpReady := counterPath + c.cfg.AESCycles
	// OTP generation overlaps the data fetch; both sides are attributed
	// raw and finishOp's normalization reclaims the hidden cycles.
	c.Attribute(metrics.PhaseCrypto, c.cfg.AESCycles+c.cfg.HashCycles)
	cycles += max(dataLat, otpReady) + c.cfg.HashCycles
	c.stats.HashOps++
	if !c.eng.Verify(&ct, addr, encCtr, tag) {
		c.completeRead(cycles)
		return [64]byte{}, TamperData(addr, "HMAC mismatch on read")
	}
	c.eng.Apply(&ct, addr, encCtr)
	c.completeRead(cycles)
	return ct, nil
}

// reencrypt handles a split-leaf minor overflow (§II-B): every covered
// block written so far is read, decrypted under its pre-overflow counter
// (pre), and re-encrypted under the post-overflow counter. skipSlot (the
// block whose write triggered the overflow) is excluded — its fresh data
// is about to be written under the new counter, and re-encrypting its old
// contents under that same counter would reuse the pad.
func (c *Controller) reencrypt(le *cache.Entry[*sit.Node], pre *counter.Split, skipSlot int) (uint64, error) {
	node := le.Payload
	var cycles uint64
	first := true
	// NVM reads pipeline across banks: the first pays full latency,
	// the rest a per-line issue gap.
	const pipelineGap = 4
	for j := 0; j < counter.SplitArity; j++ {
		if j == skipSlot {
			continue
		}
		daddr := c.lay.Geo.DataAddr(node.Index, j)
		tag := c.tagFor(daddr)
		if !tag.Written {
			continue
		}
		if c.quarN > 0 && c.LeafQuarantined(node.Index) && !c.slotReadmitted(node.Index, j) {
			// Condemned coverage: the slot is fenced until freshly
			// rewritten, so there is no plaintext to preserve (its old
			// tag may not even verify). Reseal the raw bytes under the
			// post-bump counter so the leaf's tags stay major-consistent
			// for recovery; the fence still blocks every read.
			ct := [64]byte(c.dev.Peek(daddr))
			c.stats.HashOps++
			c.eng.QueueTagSC(c.tags.Ptr(daddr/nvmem.LineSize), &ct, daddr,
				node.Split.EncCounter(j), node.Split.Major)
			continue
		}
		line, rlat, rerr := c.ReadLineRetried(c.reqStart+cycles, daddr, nvmem.ClassData)
		if rerr != nil {
			return cycles + rlat, rerr
		}
		if first {
			c.Attribute(metrics.PhaseNVMRead, rlat)
			cycles += rlat
			first = false
		} else {
			c.Attribute(metrics.PhaseNVMRead, pipelineGap)
			cycles += pipelineGap
		}
		ct := [64]byte(line)
		oldCtr := pre.Major<<counter.MinorBits | uint64(pre.Minor[j])
		c.stats.HashOps++
		if !c.eng.Verify(&ct, daddr, oldCtr, tag) {
			return cycles, TamperData(daddr, "during re-encryption")
		}
		c.eng.Apply(&ct, daddr, oldCtr) // decrypt
		newCtr := node.Split.EncCounter(j)
		c.eng.Apply(&ct, daddr, newCtr) // re-encrypt
		c.stats.AESOps += 2
		c.stats.HashOps++
		c.eng.QueueTagSC(c.tags.Ptr(daddr/nvmem.LineSize), &ct, daddr, newCtr, node.Split.Major)
		wstall := c.dev.MustWrite(c.reqStart+cycles, daddr, nvmem.Line(ct), nvmem.ClassData)
		c.Attribute(metrics.PhaseWriteDrain, wstall)
		cycles += wstall
		c.stats.Reencrypts++
	}
	return cycles, nil
}

// eagerPropagate implements the eager update scheme of §II-C: after a leaf
// modification, every ancestor on the branch is fetched and its counter
// advanced, keeping the whole branch current at the cost of extra fetches.
func (c *Controller) eagerPropagate(leaf uint64) (uint64, error) {
	var cycles uint64
	level, index := 0, leaf
	for !c.lay.Geo.IsTop(level) {
		pl, pi, slot := c.lay.Geo.Parent(level, index)
		pe, pc, err := c.FetchNode(pl, pi)
		cycles += pc
		if err != nil {
			return cycles, err
		}
		cycles += c.SetParentCounter(pe, slot, pe.Payload.Counter(slot)+1, 1)
		level, index = pl, pi
	}
	c.root.SetCounter(index, c.root.Counter(index)+1)
	return cycles, nil
}
