package memctrl

import "steins/internal/nvmem"

// Event classifies the controller happenings a fault-injection harness can
// observe and crash at. The crash model follows the ADR contract the paper
// (and Anubis/STAR before it) assumes: the write-pending queue and the
// request in flight complete under residual power, so a runtime crash
// commits at the boundary of the request that retired the chosen event.
// Recovery, by contrast, is plain software with no such protection — a
// re-crash aborts it at the chosen step, so every scheme's Recover must be
// restartable from any prefix.
type Event int

// Observable event classes.
const (
	// EvLineWrite is one durable NVM line write of any class, observed at
	// the device.
	EvLineWrite Event = iota
	// EvEviction is one completed dirty metadata-cache eviction, including
	// all of its policy bookkeeping (LInc moves, parent updates, buffer
	// appends).
	EvEviction
	// EvRecordAppend is one committed update of a scheme's dirty-tracking
	// structure (a Steins record-line entry, a STAR bitmap bit).
	EvRecordAppend
	// EvOpRetired is the retirement of one data read or write request.
	EvOpRetired
	// EvRecoveryStep is one step of a recovery pass (a node regenerated,
	// verified or reinstated). Unlike the runtime events it may be crashed
	// at immediately: recovery runs without ADR cover.
	EvRecoveryStep
	// NumEvents bounds the event space for per-class counters.
	NumEvents
)

var eventNames = [...]string{"line-write", "eviction", "record-append", "op-retired", "recovery-step"}

// String returns the event-class name used in fuzzer reports.
func (e Event) String() string {
	if e < 0 || int(e) >= len(eventNames) {
		return "event(?)"
	}
	return eventNames[e]
}

// FaultHooks receives controller events. Implementations must not mutate
// controller state from the callback; they may panic to abort a recovery
// pass (the crashfuzz harness does exactly that for mid-recovery crashes).
type FaultHooks interface {
	OnEvent(ev Event, addr uint64)
}

// SetFaultHooks installs (or, with nil, removes) the event sink. Device
// line writes are forwarded as EvLineWrite; the remaining events are
// emitted by the controller and its policy at their commit points.
func (c *Controller) SetFaultHooks(h FaultHooks) {
	c.hooks = h
	if h == nil {
		c.dev.SetWriteObserver(nil)
		return
	}
	c.dev.SetWriteObserver(func(addr uint64, _ nvmem.Class) {
		h.OnEvent(EvLineWrite, addr)
	})
}

// FaultEvent reports one event to the installed hooks, if any. Policies
// call it for the events only they can see (record appends, recovery
// steps).
func (c *Controller) FaultEvent(ev Event, addr uint64) {
	if c.hooks != nil {
		c.hooks.OnEvent(ev, addr)
	}
}
