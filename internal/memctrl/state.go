// Snapshot support: the controller's complete state as a serializable
// value, captured at a retired-op boundary (no request or eviction in
// flight). Everything a resumed run needs to be bit-identical rides along:
// data tags, quarantine set, clocks, statistics, the metadata cache with
// its exact LRU stamps, the root register file, the full device image, the
// scheme's own state, and the optional metrics collector.

package memctrl

import (
	"fmt"
	"math/bits"
	"sort"

	"steins/internal/cache"
	"steins/internal/cme"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// PolicyState is implemented by schemes that carry state beyond the shared
// controller structures (LInc registers, record/bitmap caches, volatile
// cache trees, recovery roots). A scheme without any such state (WB)
// simply doesn't implement it.
type PolicyState interface {
	// SaveState serializes the scheme's complete state.
	SaveState() ([]byte, error)
	// LoadState restores state saved by SaveState on a freshly built
	// policy of the same scheme and configuration.
	LoadState(data []byte) error
}

// TagState is one data line's co-located authentication tag.
type TagState struct {
	Addr uint64
	Tag  cme.Tag
}

// ControllerState is the full serializable controller image. The
// configuration and the crypto engine are not captured: the restoring side
// rebuilds the controller via New from the same Config.
// QuarantineState is one quarantined leaf's arbitration record.
type QuarantineState struct {
	Leaf     uint64
	Root     NodeRef
	Cause    QuarantineCause
	Evidence string
	// Readmit is the leaf's re-admission mask (bit i = data slot i freshly
	// rewritten since the quarantine verdict).
	Readmit uint64
}

// EscalationState is one line's retry-escalation count (the RAS log).
type EscalationState struct {
	Addr  uint64
	Count uint64
}

type ControllerState struct {
	Tags        []TagState // sorted by address
	Quarantined []uint64   // sorted leaf indices
	// QuarInfo carries the arbitration record and re-admission mask of each
	// quarantined leaf that has one, sorted by leaf index.
	QuarInfo []QuarantineState
	// Escalated is the retry-escalation log, sorted by address.
	Escalated []EscalationState

	Crashed      bool
	Recovered    bool
	LastRecovery RecoveryReport

	Arrival   uint64
	ReqStart  uint64
	BusyUntil uint64
	WarmupEnd uint64
	Stats     Stats

	Meta   cache.State[*sit.Node]
	Root   sit.Root
	Device nvmem.State

	// Policy is the scheme's SaveState blob; PolicyStateful records whether
	// the scheme implements PolicyState at all (so a mismatch on restore is
	// an error rather than silent loss).
	PolicyStateful bool
	Policy         []byte

	HasCollector bool
	Collector    metrics.CollectorState
}

// State captures the controller at a retired-op boundary. It fails if an
// eviction is in flight (the caller checkpointed mid-request) or the
// scheme's state cannot be serialized. Cached nodes are deep-copied, so
// the state stays valid if the controller keeps running.
func (c *Controller) State() (*ControllerState, error) {
	if len(c.evicting) != 0 {
		return nil, fmt.Errorf("memctrl: snapshot with %d evictions in flight (not a retired-op boundary)", len(c.evicting))
	}
	// Land any deferred tag MACs so the captured tag image is complete
	// (the snapshot does not serialize the engine's batch window).
	c.eng.FlushTags()
	st := &ControllerState{
		Crashed:      c.crashed,
		Recovered:    c.recovered,
		LastRecovery: c.lastRecovery,
		Arrival:      c.arrival,
		ReqStart:     c.reqStart,
		BusyUntil:    c.busyUntil,
		WarmupEnd:    c.warmupEnd,
		Stats:        c.stats,
		Root:         c.root,
		Device:       c.dev.State(),
	}
	// Arena iteration is ascending by construction, matching the sorted
	// order the map-backed implementation produced. Zero tags (never
	// written, or an arena slot allocated but untouched) are omitted, as
	// map misses were; Tag() returns the zero value either way.
	c.tags.ForEach(func(line uint64, t *cme.Tag) {
		if *t != (cme.Tag{}) {
			st.Tags = append(st.Tags, TagState{Addr: line * nvmem.LineSize, Tag: *t})
		}
	})
	for w, set := range c.quarBits {
		for set != 0 {
			leaf := uint64(w)*64 + uint64(bits.TrailingZeros64(set))
			st.Quarantined = append(st.Quarantined, leaf)
			info, hasInfo := c.quarInfo[leaf]
			mask := c.readmit[leaf]
			if hasInfo || mask != 0 {
				st.QuarInfo = append(st.QuarInfo, QuarantineState{
					Leaf: leaf, Root: info.root, Cause: info.cause,
					Evidence: info.evidence, Readmit: mask,
				})
			}
			set &= set - 1
		}
	}
	for addr := range c.escalated {
		st.Escalated = append(st.Escalated, EscalationState{Addr: addr, Count: c.escalated[addr]})
	}
	sort.Slice(st.Escalated, func(i, j int) bool { return st.Escalated[i].Addr < st.Escalated[j].Addr })
	st.Meta = c.meta.State()
	for i, e := range st.Meta.Entries {
		st.Meta.Entries[i].Payload = e.Payload.Clone()
	}
	if ps, ok := c.policy.(PolicyState); ok {
		blob, err := ps.SaveState()
		if err != nil {
			return nil, fmt.Errorf("memctrl: scheme %s state: %w", c.policy.Name(), err)
		}
		st.PolicyStateful = true
		st.Policy = blob
	}
	if c.mx != nil {
		st.HasCollector = true
		st.Collector = c.mx.State()
	}
	return st, nil
}

// Restore rebuilds the controller from a captured state. The controller
// must have been built by New from the same Config and scheme factory as
// the captured one; mismatches surface as scheme-state errors or later
// divergence. The metrics collector is re-created when the state carries
// one; fault hooks are left for the harness to re-register.
func (c *Controller) Restore(st *ControllerState) error {
	c.dev.Restore(st.Device)
	// Drop any deferred tag MACs of the pre-restore run; they belong to
	// tag slots the restore is about to overwrite.
	c.eng.DropPendingTags()
	c.tags.Reset()
	for _, t := range st.Tags {
		*c.tags.Ptr(t.Addr / nvmem.LineSize) = t.Tag
	}
	c.quarBits = nil
	c.quarN = 0
	c.quarInfo = nil
	c.readmit = nil
	for _, idx := range st.Quarantined {
		c.QuarantineLeaf(idx)
	}
	for _, q := range st.QuarInfo {
		if c.quarInfo == nil {
			c.quarInfo = make(map[uint64]quarInfo)
		}
		c.quarInfo[q.Leaf] = quarInfo{root: q.Root, cause: q.Cause, evidence: q.Evidence}
		if q.Readmit != 0 {
			if c.readmit == nil {
				c.readmit = make(map[uint64]uint64)
			}
			c.readmit[q.Leaf] = q.Readmit
		}
	}
	c.escalated = nil
	for _, e := range st.Escalated {
		if c.escalated == nil {
			c.escalated = make(map[uint64]uint64)
		}
		c.escalated[e.Addr] = e.Count
	}
	c.crashed = st.Crashed
	c.recovered = st.Recovered
	c.lastRecovery = st.LastRecovery
	c.arrival = st.Arrival
	c.reqStart = st.ReqStart
	c.busyUntil = st.BusyUntil
	c.warmupEnd = st.WarmupEnd
	c.stats = st.Stats
	c.root = st.Root
	meta := st.Meta
	meta.Entries = append([]cache.EntryState[*sit.Node](nil), st.Meta.Entries...)
	for i, e := range meta.Entries {
		meta.Entries[i].Payload = e.Payload.Clone()
	}
	c.meta.SetState(meta)
	c.evicting = c.evicting[:0]
	ps, ok := c.policy.(PolicyState)
	if ok != st.PolicyStateful {
		return fmt.Errorf("memctrl: scheme %s state mismatch (snapshot stateful=%v, scheme stateful=%v)",
			c.policy.Name(), st.PolicyStateful, ok)
	}
	if ok {
		if err := ps.LoadState(st.Policy); err != nil {
			return fmt.Errorf("memctrl: scheme %s state: %w", c.policy.Name(), err)
		}
	}
	if st.HasCollector {
		mx := metrics.NewCollector(st.Collector.Opt)
		mx.Restore(st.Collector)
		c.mx = mx
	} else {
		c.mx = nil
	}
	return nil
}
