package memctrl

import (
	"errors"

	"steins/internal/arena"
	"steins/internal/cache"
	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Controller is the secure memory controller. It serialises requests to
// one DIMM (§IV-F): each request occupies the controller for its critical
// path, and a request arriving while the controller is busy queues behind
// it, which is how heavyweight schemes (shadow writes, cache-tree updates)
// degrade execution time.
//
// Not safe for concurrent use.
type Controller struct {
	cfg    Config
	lay    Layout
	dev    *nvmem.Device
	meta   *cache.Cache[*sit.Node]
	root   sit.Root
	eng    cme.Engine
	policy Policy

	// tags holds the per-data-line authentication tags, indexed by line
	// number (addr/64). An arena instead of a map: the tag store sits on
	// every data read and write. A zero Tag means "never written", exactly
	// as a map miss did. Beware that the CME engine may hold a deferred
	// (batched) MAC for a line — read tags through tagFor/Tag, which flush
	// the pending window first.
	tags arena.T[cme.Tag]

	// evicting tracks nodes whose dirty eviction is in flight: removed
	// from the cache but (for classic schemes) not yet persisted. A fetch
	// that lands on one must take the in-flight copy — the NVM image is
	// stale until the eviction finishes. At most a handful are ever in
	// flight (eviction cascades), so a linear slice beats a map.
	evicting []evictingNode

	// quarBits is a bitset over leaf indices degraded recovery gave up
	// on (quarN set bits); any data access under them returns a
	// *MediaFault. Cleared at the next crash (the following recovery
	// re-evaluates the damage). Allocated on first quarantine — the
	// common fault-free run never touches it.
	quarBits []uint64
	quarN    int
	// quarInfo carries each quarantined leaf's arbitration record (root,
	// cause, evidence); readmit tracks data slots freshly rewritten under a
	// quarantined leaf (bit i = slot i re-admitted). Both nil until used.
	quarInfo map[uint64]quarInfo
	readmit  map[uint64]uint64
	// escalated is the controller's persistent RAS log: per-line counts of
	// reads that exhausted the retry budget. Unlike the quarantine verdict
	// it survives crashes — it is media evidence, not a recovery decision.
	escalated map[uint64]uint64

	// crashed/recovered/lastRecovery make Recover idempotent: a repeated
	// call after a completed recovery replays the cached report instead of
	// re-running side effects.
	crashed      bool
	recovered    bool
	lastRecovery RecoveryReport

	arrival   uint64 // trace-time arrival of the current request
	reqStart  uint64 // cycle the current request began service
	busyUntil uint64
	warmupEnd uint64 // makespan at the last ResetStats
	stats     Stats

	// bd is the in-flight request's per-phase cycle split; attribution
	// sites add raw (possibly overlapped) latencies, finishOp normalizes
	// it against the request's actual service time.
	bd metrics.Breakdown
	// mx, when set, gathers the optional per-phase histograms and the
	// occupancy time series; nil keeps the hot path alloc-free.
	mx *metrics.Collector

	// hooks, when set, observes fault-injection events (see fault.go).
	hooks FaultHooks

	// macMsg is the node-MAC scratch buffer (see sit.NodeMACInto): node
	// seals and verifications run per eviction and per fetch, and a stack
	// buffer would escape into the MAC interface on every call.
	macMsg [72]byte
}

// New builds a controller with the given configuration and recovery
// scheme. The NVM capacity is derived from the layout.
func New(cfg Config, factory PolicyFactory) *Controller {
	cfg, err := cfg.Validate()
	if err != nil {
		panic(err)
	}
	lay := NewLayout(cfg)
	cfg.NVM.CapacityBytes = lay.Capacity
	c := &Controller{
		cfg:  cfg,
		lay:  lay,
		dev:  nvmem.New(cfg.NVM),
		meta: cache.New[*sit.Node](cfg.MetaCacheBytes, cfg.MetaCacheWays, nvmem.LineSize),
		eng:  cme.Engine{Key: cfg.Key, OTP: cfg.OTP, MAC: cfg.MAC, BatchWindow: cfg.MACBatchWindow},
	}
	c.policy = factory(c)
	if cfg.EagerUpdate && c.policy.CounterGen() {
		panic("memctrl: eager update is only supported with classic self-increment schemes")
	}
	return c
}

// Accessors used by policies, recovery and the harness.

// Config returns the controller configuration.
func (c *Controller) Config() *Config { return &c.cfg }

// Layout returns the NVM region layout.
func (c *Controller) Layout() *Layout { return &c.lay }

// Device returns the NVM device.
func (c *Controller) Device() *nvmem.Device { return c.dev }

// Meta returns the metadata cache.
func (c *Controller) Meta() *cache.Cache[*sit.Node] { return c.meta }

// Root returns the on-chip root register file.
func (c *Controller) Root() *sit.Root { return &c.root }

// Engine returns the CME engine.
func (c *Controller) Engine() *cme.Engine { return &c.eng }

// Policy returns the active recovery scheme.
func (c *Controller) Policy() Policy { return c.policy }

// Stats returns a snapshot of controller statistics. MediaCorrected
// mirrors the device's ECC correction count at snapshot time.
func (c *Controller) Stats() Stats {
	st := c.stats
	st.MediaCorrected = c.dev.Stats().Faults.Corrected
	return st
}

// ResetStats zeroes controller and device statistics without touching any
// state; the simulator calls it at the end of the warm-up phase. The
// makespan clock keeps running (it orders requests), so execution time for
// a measured phase is the makespan delta.
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	c.dev.ResetStats()
	c.meta.ResetStats()
	if c.mx != nil {
		c.mx.Reset()
	}
	c.warmupEnd = c.busyUntil
}

// MeasuredExecCycles returns the makespan excluding the warm-up phase.
func (c *Controller) MeasuredExecCycles() uint64 { return c.busyUntil - c.warmupEnd }

// ExecCycles returns the makespan so far: the cycle the controller last
// went idle. This is the execution-time metric of Fig. 9/12.
func (c *Controller) ExecCycles() uint64 { return c.busyUntil }

// EnergyPJ returns total energy: NVM accesses plus crypto engine work.
func (c *Controller) EnergyPJ() float64 {
	return c.dev.EnergyPJ() +
		float64(c.stats.HashOps)*c.cfg.HashPJ +
		float64(c.stats.AESOps)*c.cfg.AESPJ
}

// Now returns the service-start cycle of the request in flight; device
// accesses within a request are stamped with it.
func (c *Controller) Now() uint64 { return c.reqStart }

// Tag returns the co-located authentication tag of a data line.
func (c *Controller) Tag(addr uint64) cme.Tag { return c.tagFor(addr) }

// tagFor reads a line's tag, flushing the deferred-MAC window first if it
// holds a pending tag for this address (the simulated machine computed
// and stored that tag at write time; only the host-side MAC was deferred).
func (c *Controller) tagFor(addr uint64) cme.Tag {
	if c.eng.PendingTagFor(addr) {
		c.eng.FlushTags()
	}
	if p := c.tags.Probe(addr / nvmem.LineSize); p != nil {
		return *p
	}
	return cme.Tag{}
}

// SetTag overwrites a data line's tag; attack injection uses it to model
// an adversary rewriting ECC bits.
func (c *Controller) SetTag(addr uint64, t cme.Tag) {
	// A pending deferred MAC for this line must land first, or its flush
	// would overwrite the explicit tag.
	if c.eng.PendingTagFor(addr) {
		c.eng.FlushTags()
	}
	*c.tags.Ptr(addr / nvmem.LineSize) = t
}

// ChargeHash accounts n MAC-engine operations and returns their latency.
func (c *Controller) ChargeHash(n uint64) uint64 {
	c.stats.HashOps += n
	return n * c.cfg.HashCycles
}

// CountHash accounts MAC-engine work that runs on a dedicated pipelined
// engine off the critical path (cache-tree updates); it contributes to
// energy but the caller decides the latency charge.
func (c *Controller) CountHash(n uint64) {
	c.stats.HashOps += n
}

// ReadLineRetried issues a timed device line read, reissuing it after a
// detected-uncorrectable ECC event up to ReadRetries times with a linear
// per-attempt backoff added to the latency (transient faults are redrawn
// per attempt, so retries genuinely help). A read that exhausts the budget
// escalates as a *MediaFault wrapping the device error; address errors
// pass through unretried.
func (c *Controller) ReadLineRetried(at uint64, addr uint64, cls nvmem.Class) (nvmem.Line, uint64, error) {
	line, lat, err := c.dev.Read(at, addr, cls)
	if err == nil || !errors.Is(err, nvmem.ErrUncorrectable) {
		return line, lat, err
	}
	for try := 1; try <= c.cfg.ReadRetries; try++ {
		c.stats.MediaRetried++
		backoff := uint64(try) * c.cfg.RetryBackoffCycles
		var rlat uint64
		line, rlat, err = c.dev.Read(at+lat+backoff, addr, cls)
		lat += backoff + rlat
		if err == nil || !errors.Is(err, nvmem.ErrUncorrectable) {
			return line, lat, err
		}
	}
	c.stats.MediaEscalated++
	if c.escalated == nil {
		c.escalated = make(map[uint64]uint64)
	}
	c.escalated[addr]++
	return line, lat, &MediaFault{Addr: addr, Err: err}
}

// --- in-flight evictions ------------------------------------------------------

// evictingNode is one dirty eviction in flight, keyed by NVM node address.
type evictingNode struct {
	addr uint64
	node *sit.Node
}

// evictingNode returns the in-flight copy of the node at addr, if any.
// The slice holds at most an eviction cascade's worth of entries, so a
// linear scan wins over any keyed structure.
func (c *Controller) evictingNode(addr uint64) (*sit.Node, bool) {
	for i := range c.evicting {
		if c.evicting[i].addr == addr {
			return c.evicting[i].node, true
		}
	}
	return nil, false
}

// dropEvicting removes the newest in-flight entry for addr (evictions
// nest LIFO: a cascade finishes inner entries first).
func (c *Controller) dropEvicting(addr uint64) {
	for i := len(c.evicting) - 1; i >= 0; i-- {
		if c.evicting[i].addr == addr {
			c.evicting = append(c.evicting[:i], c.evicting[i+1:]...)
			return
		}
	}
}

// --- quarantine --------------------------------------------------------------

// QuarantineLeaf marks a level-0 leaf's covered data as lost to degraded
// recovery; subsequent accesses under it fail with a *MediaFault.
func (c *Controller) QuarantineLeaf(index uint64) {
	if c.quarBits == nil {
		c.quarBits = make([]uint64, (c.lay.Geo.LevelNodes[0]+63)/64)
	}
	w, b := index/64, index%64
	if c.quarBits[w]&(1<<b) == 0 {
		c.quarBits[w] |= 1 << b
		c.quarN++
	}
}

// LeafQuarantined reports whether a leaf is quarantined.
func (c *Controller) LeafQuarantined(index uint64) bool {
	if c.quarN == 0 {
		return false
	}
	return c.quarBits[index/64]&(1<<(index%64)) != 0
}

// QuarantinedLeaves returns the number of quarantined leaves.
func (c *Controller) QuarantinedLeaves() int { return c.quarN }

// --- metadata fetch ----------------------------------------------------------

// FetchNode returns the cached entry for tree node (level, index), loading
// and verifying it (and, on misses, its ancestors) from NVM. The returned
// cycles are the critical-path cost; the entry pointer is valid until the
// next cache mutation.
func (c *Controller) FetchNode(level int, index uint64) (*cache.Entry[*sit.Node], uint64, error) {
	addr := c.lay.Geo.NodeAddr(level, index)
	if e, ok := c.meta.Lookup(addr); ok {
		c.Attribute(metrics.PhaseMetaFetch, c.cfg.CacheHitCycles)
		return e, c.cfg.CacheHitCycles, nil
	}
	if n, ok := c.evictingNode(addr); ok {
		// The node's dirty eviction is in flight; its NVM image may be
		// stale, so re-adopt the in-flight copy (still the newest
		// version) instead of reading the device.
		c.Attribute(metrics.PhaseMetaFetch, c.cfg.CacheHitCycles)
		e, icyc, err := c.insertNode(addr, n, true)
		return e, icyc + c.cfg.CacheHitCycles, err
	}
	var cycles uint64
	var pc uint64
	if ov, ok := c.policy.ParentCounterOverride(level, index); ok {
		pc = ov
	} else if c.lay.Geo.IsTop(level) {
		pc = c.root.Counter(index)
	} else {
		pl, pi, slot := c.lay.Geo.Parent(level, index)
		pe, pcyc, err := c.FetchNode(pl, pi)
		cycles += pcyc
		if err != nil {
			return nil, cycles, err
		}
		pc = pe.Payload.Counter(slot)
	}
	line, rlat, err := c.ReadLineRetried(c.reqStart+cycles, addr, nvmem.ClassMeta)
	c.Attribute(metrics.PhaseMetaFetch, rlat)
	cycles += rlat
	if err != nil {
		return nil, cycles, err
	}
	node, vcyc, err := c.VerifyNodeLine(level, index, counter.Block(line), pc)
	cycles += vcyc
	if err != nil {
		return nil, cycles, err
	}
	e, icyc, err := c.insertNode(addr, node, false)
	return e, cycles + icyc, err
}

// insertNode places a node in the metadata cache, writing back displaced
// dirty victims through the policy.
func (c *Controller) insertNode(addr uint64, node *sit.Node, dirty bool) (*cache.Entry[*sit.Node], uint64, error) {
	var cycles uint64
	for {
		// Nested work triggered on this path (drains, eviction cascades)
		// can itself have loaded — and possibly updated — this node; the
		// resident copy is then authoritative.
		if live, ok := c.meta.Probe(addr); ok {
			if dirty {
				live.Dirty = true
			}
			return live, cycles, nil
		}
		e, victim, evicted := c.meta.Insert(addr, node, dirty)
		if !evicted || !victim.Dirty {
			return e, cycles, nil
		}
		evc, err := c.EvictDirtyNode(victim.Payload)
		cycles += evc
		if err != nil {
			return nil, cycles, err
		}
	}
}

// EvictDirtyNode writes a dirty node back through the active policy,
// tracking it as in flight so a concurrent refetch adopts the live copy,
// and re-registers it with the policy if the eviction cascade pulled it
// back into the cache.
func (c *Controller) EvictDirtyNode(node *sit.Node) (uint64, error) {
	addr := c.lay.Geo.NodeAddr(node.Level, node.Index)
	c.evicting = append(c.evicting, evictingNode{addr: addr, node: node})
	cycles, err := c.policy.EvictDirty(node)
	c.dropEvicting(addr)
	if err != nil {
		return cycles, err
	}
	if e, ok := c.meta.Probe(addr); ok && e.Dirty && e.Payload == node {
		// Re-adopted mid-eviction: the policy believes the node left the
		// cache, so re-establish its dirty tracking (records, bitmap,
		// shadow slot). Its contents match NVM, hence delta zero.
		cycles += c.policy.OnModify(e, true, 0)
	}
	c.FaultEvent(EvEviction, addr)
	return cycles, nil
}

// VerifyNodeLine decodes a node line and checks its HMAC against the
// counter its parent holds. An all-zero line under a zero parent counter
// is the valid initial state of a never-flushed node: a node cannot reach
// NVM without its first flush advancing the parent counter past zero.
func (c *Controller) VerifyNodeLine(level int, index uint64, b counter.Block, parentCounter uint64) (*sit.Node, uint64, error) {
	split := c.cfg.SplitLeaf && level == 0
	node := sit.DecodeNode(level, index, split, b)
	if parentCounter == 0 && b == (counter.Block{}) {
		return node, 0, nil
	}
	addr := c.lay.Geo.NodeAddr(level, index)
	lat := c.ChargeHash(1)
	c.Attribute(metrics.PhaseVerify, lat)
	if sit.NodeMACInto(&c.macMsg, c.cfg.MAC, c.cfg.Key, addr, node.CounterBytes(), parentCounter) != node.HMAC() {
		return nil, lat, TamperAt("SIT node", level, index, "HMAC mismatch on fetch")
	}
	return node, lat, nil
}

// NodeMAC computes the HMAC a node would carry under the given parent
// counter.
func (c *Controller) NodeMAC(n *sit.Node, parentCounter uint64) uint64 {
	addr := c.lay.Geo.NodeAddr(n.Level, n.Index)
	return sit.NodeMACInto(&c.macMsg, c.cfg.MAC, c.cfg.Key, addr, n.CounterBytes(), parentCounter)
}

// StaleNode decodes a node's current NVM image without timing or stats;
// recovery paths use it with their own accounting.
func (c *Controller) StaleNode(level int, index uint64) *sit.Node {
	line := c.dev.Peek(c.lay.Geo.NodeAddr(level, index))
	return sit.DecodeNode(level, index, c.cfg.SplitLeaf && level == 0, counter.Block(line))
}

// --- modification and eviction -------------------------------------------------

// SetParentCounter applies a parent-side counter update for a flushed or
// modified child, marks the parent dirty, and routes the change through
// the policy. delta is the FValue increase.
func (c *Controller) SetParentCounter(pe *cache.Entry[*sit.Node], slot int, val uint64, delta uint64) uint64 {
	wasClean := !pe.Dirty
	pe.Payload.SetCounter(slot, val)
	pe.Dirty = true
	return c.policy.OnModify(pe, wasClean, delta)
}

// SealAndWriteNode computes the victim's HMAC under the given parent
// counter and persists it through the write queue.
func (c *Controller) SealAndWriteNode(n *sit.Node, parentCounter uint64) uint64 {
	lat := c.ChargeHash(1)
	n.SetHMAC(c.NodeMAC(n, parentCounter))
	addr := c.lay.Geo.NodeAddr(n.Level, n.Index)
	stall := c.dev.MustWrite(c.reqStart, addr, nvmem.Line(n.Encode()), nvmem.ClassMeta)
	n.WritesSinceFlush = 0
	c.Attribute(metrics.PhaseVerify, lat)
	c.Attribute(metrics.PhaseWriteDrain, stall)
	return lat + stall
}

// WriteThroughNode persists a dirty cached node through the scheme's
// normal write-back path but keeps the (already trusted) copy resident
// and clean. Unlike FlushNode it does not invalidate the entry, so later
// accesses are served from cache rather than re-fetched through a parent
// chain that may not have resealed yet — a quarantined branch stays
// readable through its re-admitted slots while the deferred parent
// updates drain.
func (c *Controller) WriteThroughNode(e *cache.Entry[*sit.Node]) (uint64, error) {
	if !e.Dirty {
		return 0, nil
	}
	e.Dirty = false
	cycles, err := c.EvictDirtyNode(e.Payload)
	if err != nil {
		e.Dirty = true
		return cycles, err
	}
	return cycles, nil
}

// ClassicEvict is the classic SIT write-back shared by WB, ASIT and STAR:
// fetch the parent (verification chain on the critical path), advance its
// counter for the victim, seal the victim's HMAC with the new counter, and
// persist the victim. In eager mode the parent is already current, so its
// counter is read but not advanced.
func (c *Controller) ClassicEvict(victim *sit.Node) (uint64, error) {
	var cycles uint64
	var newPC uint64
	if c.lay.Geo.IsTop(victim.Level) {
		newPC = c.root.Counter(victim.Index)
		if !c.cfg.EagerUpdate {
			newPC++
			c.root.SetCounter(victim.Index, newPC)
		}
	} else {
		pl, pi, slot := c.lay.Geo.Parent(victim.Level, victim.Index)
		pe, pcyc, err := c.FetchNode(pl, pi)
		cycles += pcyc
		if err != nil {
			return cycles, err
		}
		newPC = pe.Payload.Counter(slot)
		if !c.cfg.EagerUpdate {
			newPC++
			cycles += c.SetParentCounter(pe, slot, newPC, 1)
		}
	}
	return cycles + c.SealAndWriteNode(victim, newPC), nil
}

// FlushNode forces a specific node out of the metadata cache, writing it
// back through the active scheme if dirty. Tests and examples use it to
// build precise flush epochs; it returns the write-back cost in cycles.
func (c *Controller) FlushNode(level int, index uint64) (uint64, error) {
	addr := c.lay.Geo.NodeAddr(level, index)
	e, ok := c.meta.Probe(addr)
	if !ok {
		return 0, nil
	}
	node, dirty := e.Payload, e.Dirty
	c.meta.Invalidate(addr)
	if !dirty {
		return 0, nil
	}
	return c.EvictDirtyNode(node)
}

// ForceAllDirty marks every cached node dirty through the policy funnel;
// the recovery-time evaluation (§IV-D) assumes all cached metadata are
// dirty at the crash.
func (c *Controller) ForceAllDirty() {
	c.meta.ForEach(func(e *cache.Entry[*sit.Node]) {
		wasClean := !e.Dirty
		e.Dirty = true
		c.policy.OnModify(e, wasClean, 0)
	})
}

// --- crash and recovery ----------------------------------------------------------

// Crash models a power failure: the in-flight line write may tear at the
// media level (fault model), the policy flushes its ADR-domain lines, then
// all volatile controller state (the metadata cache) is lost. The NVM
// device, data tags (ECC bits), the on-chip root and the policy's on-chip
// non-volatile state survive.
func (c *Controller) Crash() {
	// Deferred tag MACs were computed and stored (in the simulated
	// machine) at write time; land the host-side values so the surviving
	// ECC bits are complete before recovery reads them.
	c.eng.FlushTags()
	c.dev.CrashTear()
	c.policy.OnCrash()
	c.meta.Clear()
	// In-flight eviction tracking is volatile controller state; a crash
	// aborting a recovery pass can leave entries behind.
	c.evicting = c.evicting[:0]
	// The quarantine fence, its arbitration records and the re-admission
	// masks are durable on-chip state (the same NV class as the escalation
	// log): a verdict must outlive the crash that follows it, or a
	// replay-shaped fence detected purely through the LInc shortfall —
	// which recovery rebases once the verdict is rendered — would vanish
	// and the condemned data would be served as authentic. The next
	// recovery pass still re-arbitrates whatever damage remains on the
	// media; re-derived verdicts simply land on the same fence.
	c.crashed = true
}

// Recover rebuilds and verifies the metadata lost in the last Crash using
// the active scheme. A repeated call after a completed recovery (with no
// intervening crash) is idempotent: it returns the cached report without
// re-running the scheme's side effects.
func (c *Controller) Recover() (RecoveryReport, error) {
	if c.recovered && !c.crashed {
		return c.lastRecovery, nil
	}
	rep, err := c.policy.Recover()
	if err == nil {
		c.lastRecovery = rep
		c.recovered = true
		c.crashed = false
	}
	return rep, err
}

// --- clocking -----------------------------------------------------------------

func (c *Controller) arrive(gap uint64) {
	c.arrival += gap
	// Closed loop: the core cannot run further ahead of the memory system
	// than its outstanding-miss window, so a backed-up controller slows
	// arrivals (stretching execution time) instead of queueing unboundedly.
	if c.busyUntil > c.cfg.RunAheadCycles && c.arrival < c.busyUntil-c.cfg.RunAheadCycles {
		c.arrival = c.busyUntil - c.cfg.RunAheadCycles
	}
	c.reqStart = max(c.arrival, c.busyUntil)
	c.bd = metrics.Breakdown{}
}

func (c *Controller) completeRead(cycles uint64)  { c.finishOp(false, cycles) }
func (c *Controller) completeWrite(cycles uint64) { c.finishOp(true, cycles) }

// finishOp retires the request in flight: it advances the makespan clock,
// normalizes the per-phase attribution against the actual service time, and
// folds both the latency and the phase split into the per-path stats.
//
// The makespan identity the attribution rests on: busyUntil advances by
// (idle + service) per request, where idle = reqStart - prevBusy, so the
// service buckets plus PhaseIdle partition MeasuredExecCycles exactly.
// PhaseQueueWait (reqStart - arrival) overlaps the service of preceding
// requests and is kept out of that partition; it is the per-request
// latency view.
func (c *Controller) finishOp(isWrite bool, cycles uint64) {
	prevBusy := c.busyUntil
	c.busyUntil = c.reqStart + cycles
	metrics.NormalizeService(&c.bd, cycles)
	c.bd[metrics.PhaseQueueWait] = c.reqStart - c.arrival
	c.bd[metrics.PhaseIdle] = c.reqStart - prevBusy
	lat := c.busyUntil - c.arrival
	phases := &c.stats.ReadPhases
	if isWrite {
		c.stats.DataWrites++
		c.stats.WriteLatSum += lat
		c.stats.WriteHist.Add(lat)
		phases = &c.stats.WritePhases
	} else {
		c.stats.DataReads++
		c.stats.ReadLatSum += lat
		c.stats.ReadHist.Add(lat)
	}
	for ph := range phases {
		phases[ph] += c.bd[ph]
	}
	if c.mx != nil && c.mx.Record(isWrite, &c.bd) {
		c.sample()
	}
	c.FaultEvent(EvOpRetired, 0)
}

// VerifyNVM walks every persisted tree node and checks its HMAC against
// the counter its parent currently holds (pending buffered counters first,
// then the cached parent, then the parent's NVM copy; the root for the top
// level). It is a test oracle: after any operation sequence the persisted
// tree must be self-consistent, or the next fetch of the offending node
// would fail. Cost is proportional to the tree, so only small
// configurations should call it.
func (c *Controller) VerifyNVM() error {
	geo := &c.lay.Geo
	for level := geo.Levels - 1; level >= 0; level-- {
		for idx := uint64(0); idx < geo.LevelNodes[level]; idx++ {
			addr := geo.NodeAddr(level, idx)
			line := counter.Block(c.dev.Peek(addr))
			var pc uint64
			if ov, ok := c.policy.ParentCounterOverride(level, idx); ok {
				pc = ov
			} else if geo.IsTop(level) {
				pc = c.root.Counter(idx)
			} else {
				pl, pi, slot := geo.Parent(level, idx)
				if pe, ok := c.meta.Probe(geo.NodeAddr(pl, pi)); ok {
					pc = pe.Payload.Counter(slot)
				} else {
					pc = c.StaleNode(pl, pi).Counter(slot)
				}
			}
			if pc == 0 && line == (counter.Block{}) {
				continue // initial state
			}
			node := sit.DecodeNode(level, idx, c.cfg.SplitLeaf && level == 0, line)
			if c.NodeMAC(node, pc) != node.HMAC() {
				return TamperAt("persisted SIT node", level, idx, "inconsistent with parent counter")
			}
		}
	}
	return nil
}
