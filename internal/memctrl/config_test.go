package memctrl_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/wb"
)

// TestValidateTable covers both construction paths: DefaultConfig output
// must pass unchanged, and hand-built configurations with degenerate
// windows are normalized while unbuildable cache/data sizes are rejected
// with a structured *ConfigError naming the field.
func TestValidateTable(t *testing.T) {
	base := func() memctrl.Config { return memctrl.DefaultConfig(1<<20, false) }
	cases := []struct {
		name      string
		mutate    func(*memctrl.Config)
		wantField string                           // "" means valid
		check     func(*testing.T, memctrl.Config) // post-normalization assertions
	}{
		{name: "default-gc", mutate: func(*memctrl.Config) {}},
		{name: "default-sc", mutate: func(c *memctrl.Config) { *c = memctrl.DefaultConfig(1<<20, true) }},
		{
			name:   "batch-window-zero-normalizes",
			mutate: func(c *memctrl.Config) { c.MACBatchWindow = 0 },
			check: func(t *testing.T, c memctrl.Config) {
				if c.MACBatchWindow != 1 {
					t.Fatalf("MACBatchWindow = %d, want normalized to 1", c.MACBatchWindow)
				}
			},
		},
		{
			name:   "batch-window-negative-normalizes",
			mutate: func(c *memctrl.Config) { c.MACBatchWindow = -7 },
			check: func(t *testing.T, c memctrl.Config) {
				if c.MACBatchWindow != 1 {
					t.Fatalf("MACBatchWindow = %d, want normalized to 1", c.MACBatchWindow)
				}
			},
		},
		{
			name:   "negative-nv-buffer-normalizes",
			mutate: func(c *memctrl.Config) { c.NVBufferBytes = -64 },
			check: func(t *testing.T, c memctrl.Config) {
				if c.NVBufferBytes != 0 {
					t.Fatalf("NVBufferBytes = %d, want normalized to 0", c.NVBufferBytes)
				}
			},
		},
		{
			name:   "negative-record-cache-normalizes",
			mutate: func(c *memctrl.Config) { c.RecordCacheLines = -1 },
			check: func(t *testing.T, c memctrl.Config) {
				if c.RecordCacheLines != 0 {
					t.Fatalf("RecordCacheLines = %d, want normalized to 0", c.RecordCacheLines)
				}
			},
		},
		{
			name:      "zero-data",
			mutate:    func(c *memctrl.Config) { c.DataBytes = 0 },
			wantField: "DataBytes",
		},
		{
			name:      "zero-cache",
			mutate:    func(c *memctrl.Config) { c.MetaCacheBytes = 0 },
			wantField: "MetaCacheBytes",
		},
		{
			name:      "negative-cache",
			mutate:    func(c *memctrl.Config) { c.MetaCacheBytes = -4096 },
			wantField: "MetaCacheBytes",
		},
		{
			name:      "cache-below-one-set",
			mutate:    func(c *memctrl.Config) { c.MetaCacheBytes = 256; c.MetaCacheWays = 8 },
			wantField: "MetaCacheBytes",
		},
		{
			name:      "one-way-cache",
			mutate:    func(c *memctrl.Config) { c.MetaCacheWays = 1 },
			wantField: "MetaCacheWays",
		},
		{
			name:      "zero-ways",
			mutate:    func(c *memctrl.Config) { c.MetaCacheWays = 0 },
			wantField: "MetaCacheWays",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base()
			tc.mutate(&cfg)
			got, err := cfg.Validate()
			if tc.wantField != "" {
				var ce *memctrl.ConfigError
				if !errors.As(err, &ce) {
					t.Fatalf("Validate() error = %v, want *ConfigError", err)
				}
				if ce.Field != tc.wantField {
					t.Fatalf("ConfigError.Field = %q, want %q (%v)", ce.Field, tc.wantField, ce)
				}
				return
			}
			if err != nil {
				t.Fatalf("Validate() = %v, want ok", err)
			}
			if tc.check != nil {
				tc.check(t, got)
			} else if got != cfg {
				t.Fatalf("Validate() changed an already-valid config:\nin  %+v\nout %+v", cfg, got)
			}
		})
	}
}

// TestNewNormalizesHandBuiltConfig pins the New path: a hand-built Config
// with a degenerate batch window must build a controller whose effective
// configuration matches the normalized form (no silent divergence from
// default behaviour), and an unbuildable one must surface the structured
// error, not an obscure downstream panic.
func TestNewNormalizesHandBuiltConfig(t *testing.T) {
	cfg := memctrl.DefaultConfig(1<<20, false)
	cfg.MACBatchWindow = -3
	c := memctrl.New(cfg, wb.Factory)
	if got := c.Config().MACBatchWindow; got != 1 {
		t.Fatalf("controller MACBatchWindow = %d, want normalized 1", got)
	}
	if got := c.Engine().BatchWindow; got != 1 {
		t.Fatalf("engine BatchWindow = %d, want normalized 1", got)
	}

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("New with a 0-byte cache did not panic")
		}
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		var ce *memctrl.ConfigError
		if !errors.As(err, &ce) || ce.Field != "MetaCacheBytes" {
			t.Fatalf("panic = %v, want *ConfigError on MetaCacheBytes", err)
		}
	}()
	bad := memctrl.DefaultConfig(1<<20, false)
	bad.MetaCacheBytes = 0
	memctrl.New(bad, wb.Factory)
}
