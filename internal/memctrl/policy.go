package memctrl

import (
	"steins/internal/cache"
	"steins/internal/sit"
)

// Policy is the crash-consistency scheme plugged into the controller. The
// controller funnels every metadata state change through these hooks so a
// scheme can persist recovery state (ASIT's shadow table, STAR's bitmap,
// Steins' record lines and LIncs) and charge its runtime cost; Recover
// rebuilds the tree after Crash.
//
// Hook methods return the extra cycles they add to the request critical
// path. Hooks may use the controller's fetch/evict machinery, which can
// re-enter the policy (evicting one dirty node can dirty its parent).
type Policy interface {
	// Name identifies the scheme in results ("WB-GC", "Steins-SC", ...).
	Name() string

	// CounterGen reports whether parent counters are generated from child
	// contents (Steins, §III-B) instead of self-incremented (classic SIT).
	CounterGen() bool

	// OnModify runs after a cached node's counters changed by delta (in
	// the node's FValue scalar) or, with delta 0, after the node was
	// force-marked dirty. wasClean reports a clean->dirty transition.
	OnModify(e *cache.Entry[*sit.Node], wasClean bool, delta uint64) uint64

	// EvictDirty writes a displaced dirty node back to NVM, performing
	// the scheme's parent update and HMAC generation.
	EvictDirty(victim *sit.Node) (uint64, error)

	// BeforeRead runs at the start of every data read (Steins drains its
	// non-volatile buffer here, §III-E).
	BeforeRead() (uint64, error)

	// ParentCounterOverride supplies a pending (buffered, not yet applied)
	// parent counter for verifying a fetched node, keyed by the fetched
	// node's coordinates. ok=false defers to the parent node or root.
	ParentCounterOverride(level int, index uint64) (uint64, bool)

	// OnCrash persists the scheme's ADR-domain state (cached record or
	// bitmap lines) into NVM; it runs as power fails, so it uses Poke
	// rather than timed writes. On-chip non-volatile state (LIncs, roots,
	// the NV buffer) survives inside the policy untouched.
	OnCrash()

	// Recover locates, restores and verifies the metadata lost in the
	// crash. It returns ErrTamper/ErrReplay (wrapped) when verification
	// fails, and ErrNoRecovery if the scheme cannot recover.
	Recover() (RecoveryReport, error)

	// Storage itemises the scheme's §IV-E storage overhead.
	Storage() StorageOverhead
}

// PolicyFactory builds a policy bound to a controller; passed to New so
// the policy can size its regions from the controller's layout.
type PolicyFactory func(*Controller) Policy
