package memctrl_test

import (
	"errors"
	"strings"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/wb"
)

var wbFactoryForViolation = wb.Factory

func TestViolationWrapsKinds(t *testing.T) {
	v := memctrl.TamperAt("SIT node", 2, 17, "HMAC mismatch")
	if !errors.Is(v, memctrl.ErrTamper) {
		t.Fatal("TamperAt does not match ErrTamper")
	}
	if errors.Is(v, memctrl.ErrReplay) {
		t.Fatal("TamperAt matches ErrReplay")
	}
	r := memctrl.ReplayAt("SIT level", 3, 0, "increment shortfall")
	if !errors.Is(r, memctrl.ErrReplay) {
		t.Fatal("ReplayAt does not match ErrReplay")
	}
}

func TestViolationCarriesLocation(t *testing.T) {
	// §III-H: top-down verification localises the attack; the error must
	// expose the level and node via errors.As.
	err := memctrl.TamperAt("stale SIT node", 2, 17, "during recovery")
	var v *memctrl.Violation
	if !errors.As(err, &v) {
		t.Fatal("not a *Violation")
	}
	if v.Level != 2 || v.Index != 17 {
		t.Fatalf("location = level %d index %d, want 2/17", v.Level, v.Index)
	}
	for _, want := range []string{"level 2", "index 17", "during recovery", "tampering"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("message %q missing %q", err.Error(), want)
		}
	}
}

func TestViolationDataAddress(t *testing.T) {
	err := memctrl.TamperData(0xbeef00, "HMAC mismatch on read")
	var v *memctrl.Violation
	if !errors.As(err, &v) {
		t.Fatal("not a *Violation")
	}
	if v.DataAddr != 0xbeef00 || v.Level != -1 {
		t.Fatalf("violation = %+v", v)
	}
	if !strings.Contains(err.Error(), "0xbeef00") {
		t.Fatalf("message %q missing address", err.Error())
	}
}

// TestAttackLocalizationEndToEnd corrupts a specific tree node and checks
// the surfaced violation names exactly that node (§III-H's localization
// claim, end to end).
func TestAttackLocalizationEndToEnd(t *testing.T) {
	c := newLocalizationSystem(t)
	lay := c.Layout()
	// Find a flushed, uncached leaf and corrupt it.
	for idx := uint64(0); idx < lay.Geo.LevelNodes[0]; idx++ {
		addr := lay.Geo.NodeAddr(0, idx)
		if c.Device().Peek(addr) == ([64]byte{}) {
			continue
		}
		if _, cached := c.Meta().Probe(addr); cached {
			continue
		}
		line := c.Device().Peek(addr)
		line[2] ^= 4
		c.Device().Poke(addr, line)
		_, err := c.ReadData(0, lay.Geo.DataAddr(idx, 0))
		var v *memctrl.Violation
		if !errors.As(err, &v) {
			t.Fatalf("read error %v is not a Violation", err)
		}
		if v.Level != 0 || v.Index != idx {
			t.Fatalf("violation localised to level %d index %d, want 0/%d", v.Level, v.Index, idx)
		}
		return
	}
	t.Skip("no flushed uncached leaf available")
}

// newLocalizationSystem builds a churned WB system for localization tests.
func newLocalizationSystem(t *testing.T) *memctrl.Controller {
	t.Helper()
	c := memctrl.New(testConfig(false), wbFactoryForViolation)
	for i := uint64(0); i < 3000; i++ {
		addr := (i * 64 * 8) % (1 << 20)
		if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	return c
}
