package memctrl_test

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
)

// testConfig returns a small system: 1 MB data, 4 KB metadata cache, so
// eviction churn is easy to provoke.
func testConfig(split bool) memctrl.Config {
	cfg := memctrl.DefaultConfig(1<<20, split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	return cfg
}

func pattern(addr uint64, v byte) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	for i := 8; i < 64; i++ {
		b[i] = v
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, split := range []bool{false, true} {
		c := memctrl.New(testConfig(split), wb.Factory)
		want := pattern(128, 7)
		if err := c.WriteData(10, 128, want); err != nil {
			t.Fatalf("split=%v write: %v", split, err)
		}
		got, err := c.ReadData(10, 128)
		if err != nil {
			t.Fatalf("split=%v read: %v", split, err)
		}
		if got != want {
			t.Fatalf("split=%v read mismatch", split)
		}
	}
}

func TestReadUnwrittenReturnsZero(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	got, err := c.ReadData(0, 512)
	if err != nil || got != ([64]byte{}) {
		t.Fatalf("unwritten read = %v, err %v", got[:4], err)
	}
}

func TestCiphertextInNVMIsNotPlaintext(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	want := pattern(0, 9)
	if err := c.WriteData(0, 0, want); err != nil {
		t.Fatal(err)
	}
	stored := c.Device().Peek(0)
	if [64]byte(stored) == want {
		t.Fatal("NVM holds plaintext")
	}
}

func TestOverwriteAdvancesCounterAndCiphertext(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	v1, v2 := pattern(64, 1), pattern(64, 1)
	if err := c.WriteData(0, 64, v1); err != nil {
		t.Fatal(err)
	}
	ct1 := c.Device().Peek(64)
	if err := c.WriteData(0, 64, v2); err != nil {
		t.Fatal(err)
	}
	ct2 := c.Device().Peek(64)
	if ct1 == ct2 {
		t.Fatal("same plaintext re-encrypted to same ciphertext (pad reuse)")
	}
	got, err := c.ReadData(0, 64)
	if err != nil || got != v2 {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestManyLinesRoundTripWithEvictionChurn(t *testing.T) {
	// Footprint far beyond the 4 KB metadata cache forces dirty leaf
	// evictions, parent updates and verification-chain refetches.
	for _, split := range []bool{false, true} {
		c := memctrl.New(testConfig(split), wb.Factory)
		const n = 4096
		for i := uint64(0); i < n; i++ {
			addr := (i * 64) % (1 << 20)
			if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
				t.Fatalf("split=%v write %d: %v", split, i, err)
			}
		}
		for i := uint64(0); i < n; i++ {
			addr := (i * 64) % (1 << 20)
			got, err := c.ReadData(5, addr)
			if err != nil {
				t.Fatalf("split=%v read %d: %v", split, i, err)
			}
			if got != pattern(addr, byte(i)) {
				t.Fatalf("split=%v read %d mismatch", split, i)
			}
		}
		if c.Meta().Stats().DirtyEvictions == 0 {
			t.Fatalf("split=%v: no dirty evictions; test did not exercise write-back", split)
		}
	}
}

func TestRepeatedWritesSameLine(t *testing.T) {
	c := memctrl.New(testConfig(true), wb.Factory)
	// 200 writes to one block crosses the 6-bit minor overflow (64) at
	// least twice, exercising re-encryption.
	for i := 0; i < 200; i++ {
		if err := c.WriteData(3, 192, pattern(192, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	got, err := c.ReadData(3, 192)
	if err != nil || got != pattern(192, 199) {
		t.Fatalf("read after 200 writes: %v", err)
	}
	if c.Stats().Overflows < 2 {
		t.Fatalf("overflows = %d, want >= 2", c.Stats().Overflows)
	}
}

func TestOverflowReencryptsNeighbours(t *testing.T) {
	c := memctrl.New(testConfig(true), wb.Factory)
	// Write two neighbour blocks under the same leaf, then hammer a third
	// until its minor overflows; neighbours must be re-encrypted and stay
	// readable.
	a, b, hot := uint64(0), uint64(64), uint64(128)
	va, vb := pattern(a, 1), pattern(b, 2)
	if err := c.WriteData(0, a, va); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteData(0, b, vb); err != nil {
		t.Fatal(err)
	}
	ctA := c.Device().Peek(a)
	for i := 0; i < 70; i++ {
		if err := c.WriteData(0, hot, pattern(hot, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Overflows == 0 {
		t.Fatal("no overflow triggered")
	}
	if c.Stats().Reencrypts == 0 {
		t.Fatal("no blocks re-encrypted")
	}
	if c.Device().Peek(a) == ctA {
		t.Fatal("neighbour ciphertext unchanged across overflow")
	}
	if got, err := c.ReadData(0, a); err != nil || got != va {
		t.Fatalf("neighbour a unreadable after overflow: %v", err)
	}
	if got, err := c.ReadData(0, b); err != nil || got != vb {
		t.Fatalf("neighbour b unreadable after overflow: %v", err)
	}
}

func TestTamperDataDetected(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(0, 256, pattern(256, 5)); err != nil {
		t.Fatal(err)
	}
	line := c.Device().Peek(256)
	line[0] ^= 0xff
	c.Device().Poke(256, line)
	if _, err := c.ReadData(0, 256); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("tampered data read error = %v, want ErrTamper", err)
	}
}

func TestReplayDataDetected(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(0, 256, pattern(256, 1)); err != nil {
		t.Fatal(err)
	}
	oldLine := c.Device().Peek(256)
	oldTag := c.Tag(256)
	if err := c.WriteData(0, 256, pattern(256, 2)); err != nil {
		t.Fatal(err)
	}
	// Attacker restores the old ciphertext AND old tag; the cached counter
	// has advanced, so verification fails.
	c.Device().Poke(256, oldLine)
	c.SetTag(256, oldTag)
	if _, err := c.ReadData(0, 256); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("replayed data read error = %v, want ErrTamper", err)
	}
}

func TestTamperNodeDetectedOnFetch(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	const n = 2048
	for i := uint64(0); i < n; i++ {
		if err := c.WriteData(5, i*64*8, pattern(i*64*8, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper a flushed leaf node in NVM, then evict it... find any
	// populated node line in the tree region and corrupt a counter.
	lay := c.Layout()
	var victim uint64
	found := false
	for idx := uint64(0); idx < lay.Geo.LevelNodes[0]; idx++ {
		addr := lay.Geo.NodeAddr(0, idx)
		if c.Device().Peek(addr) != (nvmem.Line{}) {
			// Only useful if not currently cached.
			if _, ok := c.Meta().Probe(addr); !ok {
				victim, found = idx, true
				break
			}
		}
	}
	if !found {
		t.Skip("no flushed uncached leaf to tamper")
	}
	addr := lay.Geo.NodeAddr(0, victim)
	line := c.Device().Peek(addr)
	line[3] ^= 1
	c.Device().Poke(addr, line)
	dataAddr := lay.Geo.DataAddr(victim, 0)
	if _, err := c.ReadData(0, dataAddr); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("tampered node fetch error = %v, want ErrTamper", err)
	}
}

func TestWriteLatencyAccounted(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(100, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.DataWrites != 1 || s.WriteLatSum == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if c.ExecCycles() == 0 {
		t.Fatal("exec cycles zero after a write")
	}
}

func TestReadLatencyHidesDecryption(t *testing.T) {
	// With the counter cached, read latency ~= NVM read + hash, not
	// NVM read + AES + hash: OTP generation overlaps the fetch (§II-B).
	cfg := testConfig(false)
	c := memctrl.New(cfg, wb.Factory)
	if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	before := c.Stats().ReadLatSum
	if _, err := c.ReadData(1_000_000, 0); err != nil {
		t.Fatal(err)
	}
	lat := c.Stats().ReadLatSum - before
	nvmRead := c.Config().NVM.ReadCycles()
	want := nvmRead + cfg.HashCycles
	if lat != want {
		t.Fatalf("cached-counter read latency = %d, want %d (AES hidden)", lat, want)
	}
}

func TestEagerUpdateDirtiesBranch(t *testing.T) {
	cfg := testConfig(false)
	cfg.EagerUpdate = true
	c := memctrl.New(cfg, wb.Factory)
	if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	// Every ancestor of leaf 0 must now be cached dirty.
	lay := c.Layout()
	level, idx := 0, uint64(0)
	for {
		e, ok := c.Meta().Probe(lay.Geo.NodeAddr(level, idx))
		if !ok || !e.Dirty {
			t.Fatalf("level %d node %d not cached dirty under eager update", level, idx)
		}
		if lay.Geo.IsTop(level) {
			break
		}
		level, idx, _ = lay.Geo.Parent(level, idx)
	}
	if c.Root().Counter(0) == 0 {
		t.Fatal("root counter not advanced under eager update")
	}
	// Round trip still works.
	if got, err := c.ReadData(0, 0); err != nil || got != pattern(0, 1) {
		t.Fatalf("eager read: %v", err)
	}
}

func TestEagerRoundTripWithChurn(t *testing.T) {
	cfg := testConfig(false)
	cfg.EagerUpdate = true
	c := memctrl.New(cfg, wb.Factory)
	for i := uint64(0); i < 2000; i++ {
		addr := (i * 64 * 3) % (1 << 20)
		if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	for i := uint64(0); i < 2000; i++ {
		addr := (i * 64 * 3) % (1 << 20)
		if _, err := c.ReadData(5, addr); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestWBRecoverUnsupported(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	c.Crash()
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrNoRecovery) {
		t.Fatalf("WB recover error = %v, want ErrNoRecovery", err)
	}
}

func TestRecoverIdempotent(t *testing.T) {
	// Calling Recover twice (the second time without an intervening crash)
	// must return the same report without re-running the recovery pass or
	// touching the device again.
	c := memctrl.New(testConfig(false), steins.Factory)
	for i := uint64(0); i < 2000; i++ {
		addr := (i * 64 * 3) % (1 << 20)
		if err := c.WriteData(5, addr, pattern(addr, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	c.Crash()
	rep1, err := c.Recover()
	if err != nil {
		t.Fatalf("first recover: %v", err)
	}
	devStats := c.Device().Stats()
	rep2, err := c.Recover()
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("repeated recover reports differ:\n%+v\n%+v", rep1, rep2)
	}
	if got := c.Device().Stats(); got != devStats {
		t.Fatal("second Recover touched the device (recovery re-ran)")
	}
	// A fresh crash invalidates the cache and recovery really runs again.
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover after second crash: %v", err)
	}
}

func TestWBCrashLosesDirtyMetadata(t *testing.T) {
	// The motivation (§II-D): without a recovery scheme, data whose leaf
	// counters were dirty at the crash fails verification afterwards.
	c := memctrl.New(testConfig(false), wb.Factory)
	if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	if _, err := c.ReadData(0, 0); err == nil {
		t.Fatal("read after crash succeeded though leaf counter was lost")
	}
}

func TestStorageOverheadWB(t *testing.T) {
	gc := memctrl.New(testConfig(false), wb.Factory)
	sc := memctrl.New(testConfig(true), wb.Factory)
	sg, ss := gc.Policy().Storage(), sc.Policy().Storage()
	if sg.TreeBytes <= ss.TreeBytes {
		t.Fatalf("GC tree (%d) not larger than SC tree (%d)", sg.TreeBytes, ss.TreeBytes)
	}
	// §IV-E: GC leaves are 1/8 of data.
	if lf := gc.Layout().Geo.LevelNodes[0] * 64; lf != (1<<20)/8 {
		t.Fatalf("GC leaf bytes = %d, want %d", lf, (1<<20)/8)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (uint64, nvmem.Stats) {
		c := memctrl.New(testConfig(true), wb.Factory)
		for i := uint64(0); i < 3000; i++ {
			addr := (i * 64 * 7) % (1 << 20)
			if i%3 == 0 {
				c.ReadData(4, addr)
			} else if err := c.WriteData(4, addr, pattern(addr, byte(i))); err != nil {
				t.Fatal(err)
			}
		}
		return c.ExecCycles(), c.Device().Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if e1 != e2 || s1 != s2 {
		t.Fatalf("simulation not deterministic: %d vs %d cycles", e1, e2)
	}
}

func TestCounterWrapSurfaced(t *testing.T) {
	c := memctrl.New(testConfig(false), wb.Factory)
	// Force the 56-bit wrap by planting a max counter in the cached leaf.
	if err := c.WriteData(0, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Meta().Probe(c.Layout().Geo.NodeAddr(0, 0))
	if !ok {
		t.Fatal("leaf not cached")
	}
	e.Payload.Gen.C[0] = counter.CounterMask
	if err := c.WriteData(0, 0, pattern(0, 2)); !errors.Is(err, memctrl.ErrUnrecoverable) {
		t.Fatalf("wrap error = %v, want ErrUnrecoverable", err)
	}
}

func TestUnwrittenNeighbourReadableAfterMajorBump(t *testing.T) {
	// Regression: after a neighbour's minor overflow advances the split
	// leaf's major counter, a never-written block under the same leaf has
	// a non-zero encryption counter (major<<6) but no tag. It must still
	// read back as zero, not as a tamper violation.
	c := memctrl.New(testConfig(true), wb.Factory)
	hot, virgin := uint64(0), uint64(64*5) // same leaf
	for i := 0; i < 70; i++ {              // cross the 6-bit minor overflow
		if err := c.WriteData(1, hot, pattern(hot, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if c.Stats().Overflows == 0 {
		t.Fatal("no overflow triggered")
	}
	got, err := c.ReadData(1, virgin)
	if err != nil {
		t.Fatalf("virgin neighbour read failed: %v", err)
	}
	if got != ([64]byte{}) {
		t.Fatal("virgin neighbour returned non-zero data")
	}
	// An erased tag on a WRITTEN block must still be caught.
	c.SetTag(hot, cme.Tag{})
	if _, err := c.ReadData(1, hot); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("erased tag read error = %v, want ErrTamper", err)
	}
}

func TestClosedLoopArrivalBoundsLatency(t *testing.T) {
	// With gaps far below service capacity the closed-loop core model must
	// stretch execution time rather than let queueing latency diverge.
	cfg := testConfig(false)
	c := memctrl.New(cfg, wb.Factory)
	for i := uint64(0); i < 3000; i++ {
		addr := (i * 64) % (1 << 20)
		if err := c.WriteData(1, addr, pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	avg := c.Stats().AvgWriteLatency()
	// Bounded by the run-ahead window plus a generous per-request path.
	if avg > float64(cfg.RunAheadCycles)+30000 {
		t.Fatalf("average write latency %v diverged", avg)
	}
	// Requests arrived back to back (gap 1); the makespan must reflect the
	// controller's occupancy, not the trace's nominal 3000 cycles.
	if c.ExecCycles() < 3000*50 {
		t.Fatalf("exec %d cycles implausibly low for 3000 back-to-back requests", c.ExecCycles())
	}
}

// TestControllerStateDoubleRenderByteIdentical renders the controller
// state twice after a scattered write burst and demands byte-identical
// gob encodings: the tag, quarantine and cache emitters must walk their
// backing stores in a deterministic order, and the deferred-MAC window
// must flush identically on both captures.
func TestControllerStateDoubleRenderByteIdentical(t *testing.T) {
	c := memctrl.New(testConfig(true), steins.Factory)
	for _, addr := range []uint64{4096, 64, 1 << 19, 128, 0, 640, 65536} {
		if err := c.WriteData(5, addr, pattern(addr, 3)); err != nil {
			t.Fatal(err)
		}
	}
	encode := func() []byte {
		st, err := c.State()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two renders of the same controller state differ byte-wise")
	}
}
