// Checkpoint support: a resumable single-controller engine mirroring the
// sharded one, plus the serializable state of both. A run checkpointed at
// any retired-op boundary and resumed in a fresh process produces
// byte-identical metrics to the uninterrupted run.

package sim

import (
	"fmt"

	"steins/internal/memctrl"
	"steins/internal/trace"
)

// SchemeByName resolves a scheme display name ("Steins-GC", "WB-SC", ...)
// case-sensitively against the canonical scheme set; snapshot resume uses
// it to rebuild the policy factory recorded in a run header.
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range []Scheme{WBGC, WBSC, ASIT, STAR, SteinsGC, SteinsSC, SCUEGC, SCUESC, PipeSITGC, PipeSITSC, TriadGC, TriadSC} {
		if s.Name == name {
			return s, true
		}
	}
	return Scheme{}, false
}

// Single is the resumable single-controller engine: the same replay loop
// Run uses, but driven in bounded increments with the global op ordinal and
// warm-up boundary tracked across calls so a checkpointed run numbers
// payloads exactly like a straight run.
type Single struct {
	prof       trace.Profile
	scheme     Scheme
	opt        Options
	c          *memctrl.Controller
	driven     uint64 // source ops driven, including warm-up
	warmupDone bool
}

// NewSingle builds the engine; drive it with DriveN.
func NewSingle(prof trace.Profile, s Scheme, opt Options) *Single {
	return &Single{prof: prof, scheme: s, opt: opt, c: build(prof, s, opt)}
}

// Controller returns the underlying controller.
func (e *Single) Controller() *memctrl.Controller { return e.c }

// Driven returns the number of source ops driven so far, warm-up included.
func (e *Single) Driven() uint64 { return e.driven }

// DriveN replays up to n further operations from src (n < 0 drives it to
// exhaustion), returning the number consumed. Op i (counted globally,
// across calls) writing addr stores Payload(addr, i); statistics reset
// exactly once, when the warm-up boundary is crossed.
func (e *Single) DriveN(src trace.Stream, n int) (int, error) {
	warm := uint64(e.opt.WarmupOps)
	done := 0
	for n < 0 || done < n {
		op, ok := src.Next()
		if !ok {
			return done, nil
		}
		i := int(e.driven)
		var err error
		if op.IsWrite {
			err = e.c.WriteData(op.Gap, op.Addr, Payload(op.Addr, i))
		} else {
			_, err = e.c.ReadData(op.Gap, op.Addr)
		}
		if err != nil {
			return done, fmt.Errorf("sim: %s op %d (%v %#x): %w", src.Name(), i, op.IsWrite, op.Addr, err)
		}
		e.driven++
		done++
		if !e.warmupDone && warm > 0 && e.driven >= warm {
			e.c.ResetStats()
			e.warmupDone = true
		}
	}
	return done, nil
}

// Result assembles the run result from everything driven so far; after the
// full trace it matches Run's result exactly.
func (e *Single) Result() Result { return collect(e.c, e.prof, e.scheme, e.opt.Ops) }

// SingleState is the serializable image of a Single engine (minus the
// trace position, which the snapshot carries separately).
type SingleState struct {
	Driven     uint64
	WarmupDone bool
	Ctrl       *memctrl.ControllerState
}

// State captures the engine at a retired-op boundary.
func (e *Single) State() (*SingleState, error) {
	cs, err := e.c.State()
	if err != nil {
		return nil, err
	}
	return &SingleState{Driven: e.driven, WarmupDone: e.warmupDone, Ctrl: cs}, nil
}

// Restore rebuilds the engine from a captured state; it must have been
// built by NewSingle from the same profile, scheme and options.
func (e *Single) Restore(st *SingleState) error {
	if st.Ctrl == nil {
		return fmt.Errorf("sim: single-engine state has no controller")
	}
	if err := e.c.Restore(st.Ctrl); err != nil {
		return err
	}
	e.driven = st.Driven
	e.warmupDone = st.WarmupDone
	return nil
}

// Driven returns the number of source ops driven so far, warm-up included.
func (e *Sharded) Driven() uint64 { return e.driven }

// ShardedState is the serializable image of a Sharded engine (minus the
// trace position, which the snapshot carries separately): the drive
// bookkeeping, the splitter's routing state, and every channel controller.
type ShardedState struct {
	Driven      uint64
	WarmupDone  bool
	HasSplitter bool
	Splitter    trace.SplitterState
	Ctrls       []*memctrl.ControllerState
}

// State captures the engine at an epoch barrier (every routed op retired).
func (e *Sharded) State() (*ShardedState, error) {
	st := &ShardedState{Driven: e.driven, WarmupDone: e.warmupDone}
	if e.sp != nil {
		st.HasSplitter = true
		st.Splitter = e.sp.State()
	}
	for k, c := range e.ctrls {
		cs, err := c.State()
		if err != nil {
			return nil, fmt.Errorf("sim: sharded channel %d: %w", k, err)
		}
		st.Ctrls = append(st.Ctrls, cs)
	}
	return st, nil
}

// Restore rebuilds the engine from a captured state; it must have been
// built by NewSharded from the same profile, scheme and options.
func (e *Sharded) Restore(st *ShardedState) error {
	if len(st.Ctrls) != len(e.ctrls) {
		return fmt.Errorf("sim: state has %d channels, engine has %d", len(st.Ctrls), len(e.ctrls))
	}
	if st.HasSplitter {
		e.lazySplitter()
		e.sp.Restore(st.Splitter)
	}
	for k, c := range e.ctrls {
		if st.Ctrls[k] == nil {
			return fmt.Errorf("sim: sharded channel %d: state has no controller", k)
		}
		if err := c.Restore(st.Ctrls[k]); err != nil {
			return fmt.Errorf("sim: sharded channel %d: %w", k, err)
		}
	}
	e.driven = st.Driven
	e.warmupDone = st.WarmupDone
	return nil
}
