// Package sim drives workload traces through secure memory controllers
// and collects the metrics the paper's figures report: execution time
// (controller makespan), read/write latency, NVM write traffic, energy,
// and — after injected crashes — recovery reports.
package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/pipesit"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/triad"
	"steins/internal/scheme/wb"
	"steins/internal/trace"
)

// Scheme pairs a display name with its policy factory and leaf kind.
type Scheme struct {
	Name    string
	Factory memctrl.PolicyFactory
	Split   bool
}

// The evaluated schemes (§IV). ASIT and STAR use general counter blocks
// only, as in the paper ("neither ASIT nor STAR considers the split
// counter block").
var (
	WBGC     = Scheme{Name: "WB-GC", Factory: wb.Factory, Split: false}
	WBSC     = Scheme{Name: "WB-SC", Factory: wb.Factory, Split: true}
	ASIT     = Scheme{Name: "ASIT", Factory: asit.Factory, Split: false}
	STAR     = Scheme{Name: "STAR", Factory: star.Factory, Split: false}
	SteinsGC = Scheme{Name: "Steins-GC", Factory: steins.Factory, Split: false}
	SteinsSC = Scheme{Name: "Steins-SC", Factory: steins.Factory, Split: true}
	SCUEGC   = Scheme{Name: "SCUE-GC", Factory: scue.Factory, Split: false}
	SCUESC   = Scheme{Name: "SCUE-SC", Factory: scue.Factory, Split: true}

	// Relaxed-persistence family (ROADMAP item 3): streamlined pipelined
	// tree updates with coalescing (Freij et al.) and Triad-NVM-style
	// selective persistence (Awad et al.).
	PipeSITGC = Scheme{Name: "PipeSIT-GC", Factory: pipesit.Factory, Split: false}
	PipeSITSC = Scheme{Name: "PipeSIT-SC", Factory: pipesit.Factory, Split: true}
	TriadGC   = Scheme{Name: "Triad-GC", Factory: triad.Factory, Split: false}
	TriadSC   = Scheme{Name: "Triad-SC", Factory: triad.Factory, Split: true}
)

// GCComparison is the Fig. 9-11/13/15 scheme set.
func GCComparison() []Scheme { return []Scheme{WBGC, ASIT, STAR, SteinsGC} }

// SCComparison is the Fig. 12/14/16 scheme set.
func SCComparison() []Scheme { return []Scheme{WBSC, SteinsGC, SteinsSC} }

// Options parameterise one run.
type Options struct {
	Ops            int
	WarmupOps      int // requests replayed before stats reset (§IV's warm-up)
	Seed           uint64
	DataBytes      uint64                // 0: twice the workload footprint
	MetaCacheBytes int                   // 0: Table I 256 KB
	Configure      func(*memctrl.Config) // optional extra knobs
	// Metrics, when non-nil, attaches a metrics collector (per-phase
	// histograms + occupancy time series) and fills Result.Snapshot.
	Metrics *metrics.Options
}

// Result carries the metrics of one (workload, scheme) run.
type Result struct {
	Workload    string
	Scheme      string
	Ops         int
	ExecCycles  uint64
	AvgReadLat  float64 // cycles
	AvgWriteLat float64 // cycles
	WriteBytes  uint64
	EnergyPJ    float64
	MetaHitRate float64
	NVM         nvmem.Stats
	Ctrl        memctrl.Stats
	// Snapshot is the exportable observability view; nil unless
	// Options.Metrics was set. A pointer keeps Result comparable.
	Snapshot *metrics.Snapshot
}

// build constructs the controller for a run.
func build(prof trace.Profile, s Scheme, opt Options) *memctrl.Controller {
	dataBytes := opt.DataBytes
	if dataBytes == 0 {
		dataBytes = prof.FootprintBytes * 2
	}
	if dataBytes < prof.FootprintBytes {
		panic(fmt.Sprintf("sim: data region %d smaller than %s footprint %d",
			dataBytes, prof.Name, prof.FootprintBytes))
	}
	cfg := memctrl.DefaultConfig(dataBytes, s.Split)
	if opt.MetaCacheBytes != 0 {
		cfg.MetaCacheBytes = opt.MetaCacheBytes
	}
	if opt.Configure != nil {
		opt.Configure(&cfg)
	}
	c := memctrl.New(cfg, s.Factory)
	if opt.Metrics != nil {
		c.SetMetrics(metrics.NewCollector(*opt.Metrics))
	}
	return c
}

// Payload derives the deterministic data block op i writes to addr. It is
// exported so the sharded engine (and differential tests) can reproduce the
// exact bytes an unsharded run stores, keyed by global address and global
// op ordinal.
func Payload(addr uint64, i int) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	binary.LittleEndian.PutUint64(b[8:16], uint64(i))
	return b
}

// drive replays the trace into the controller: WarmupOps requests to warm
// the caches (then stats reset, mirroring §IV's 10M-instruction warm-up),
// followed by the measured Ops.
func drive(c *memctrl.Controller, prof trace.Profile, opt Options) error {
	return driveStream(c, trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops), opt.WarmupOps)
}

// driveStream replays an arbitrary operation stream.
func driveStream(c *memctrl.Controller, s trace.Stream, warmupOps int) error {
	i := 0
	for {
		op, ok := s.Next()
		if !ok {
			return nil
		}
		var err error
		if op.IsWrite {
			err = c.WriteData(op.Gap, op.Addr, Payload(op.Addr, i))
		} else {
			_, err = c.ReadData(op.Gap, op.Addr)
		}
		if err != nil {
			return fmt.Errorf("sim: %s op %d (%v %#x): %w", s.Name(), i, op.IsWrite, op.Addr, err)
		}
		i++
		if i == warmupOps {
			c.ResetStats()
		}
	}
}

// collect snapshots the metrics.
func collect(c *memctrl.Controller, prof trace.Profile, s Scheme, ops int) Result {
	st := c.Stats()
	var snap *metrics.Snapshot
	if c.Metrics() != nil {
		snap = c.MetricsSnapshot(prof.Name)
		snap.Scheme = s.Name // display name, matching Result.Scheme
	}
	return Result{
		Snapshot:    snap,
		Workload:    prof.Name,
		Scheme:      s.Name,
		Ops:         ops,
		ExecCycles:  c.MeasuredExecCycles(),
		AvgReadLat:  st.AvgReadLatency(),
		AvgWriteLat: st.AvgWriteLatency(),
		WriteBytes:  c.Device().Stats().WriteBytes(),
		EnergyPJ:    c.EnergyPJ(),
		MetaHitRate: c.Meta().Stats().HitRate(),
		NVM:         c.Device().Stats(),
		Ctrl:        st,
	}
}

// Run replays one workload through one scheme.
func Run(prof trace.Profile, s Scheme, opt Options) (Result, error) {
	c := build(prof, s, opt)
	if err := drive(c, prof, opt); err != nil {
		return Result{}, err
	}
	return collect(c, prof, s, opt.Ops), nil
}

// RunStream replays an arbitrary operation stream — a recorded trace or a
// CPU-filtered raw stream — through one scheme. opt.DataBytes is required
// (streams carry no footprint information); opt.Ops/Seed are ignored.
func RunStream(stream trace.Stream, s Scheme, opt Options) (Result, error) {
	if opt.DataBytes == 0 {
		panic("sim: RunStream requires DataBytes")
	}
	prof := trace.Profile{Name: stream.Name(), FootprintBytes: opt.DataBytes}
	c := build(prof, s, opt)
	if err := driveStream(c, stream, opt.WarmupOps); err != nil {
		return Result{}, err
	}
	res := collect(c, prof, s, int(c.Stats().DataReads+c.Stats().DataWrites))
	return res, nil
}

// RunWithCrash replays the workload, optionally marks every cached node
// dirty (the §IV-D assumption), crashes, recovers, and verifies that a
// sample of the written data is readable afterwards.
func RunWithCrash(prof trace.Profile, s Scheme, opt Options, forceAllDirty bool) (Result, memctrl.RecoveryReport, error) {
	c := build(prof, s, opt)
	if err := drive(c, prof, opt); err != nil {
		return Result{}, memctrl.RecoveryReport{}, err
	}
	res := collect(c, prof, s, opt.Ops)
	if forceAllDirty {
		c.ForceAllDirty()
	}
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		return res, rep, err
	}
	// Post-recovery sanity: replay a short read-only probe.
	g := trace.New(prof, opt.Seed+1, 200)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if _, rerr := c.ReadData(op.Gap, op.Addr); rerr != nil {
			// A quarantine fence is degraded recovery's designed outcome
			// (fail-fast containment, accounted in the report), not a
			// probe failure.
			var qe *memctrl.QuarantineError
			if errors.As(rerr, &qe) {
				continue
			}
			return res, rep, fmt.Errorf("sim: post-recovery read failed: %w", rerr)
		}
	}
	return res, rep, nil
}

// RecoveryAtCacheSize measures recovery for a given metadata cache size
// under the Fig. 17 methodology: a uniform write stream sized to fill the
// cache with distinct nodes, all forced dirty at the crash.
func RecoveryAtCacheSize(s Scheme, cacheBytes int, seed uint64) (memctrl.RecoveryReport, error) {
	cacheLines := uint64(cacheBytes / 64)
	cover := uint64(8)
	if s.Split {
		cover = 64
	}
	// Footprint large enough that cacheLines distinct leaves are touched.
	footprint := cacheLines * cover * 64 * 4
	prof := trace.Profile{
		Name:           "fig17-fill",
		FootprintBytes: footprint,
		WriteFrac:      1.0,
		GapMean:        20,
		Pattern:        trace.Uniform,
	}
	opt := Options{
		Ops:            int(cacheLines) * 6,
		Seed:           seed,
		DataBytes:      footprint,
		MetaCacheBytes: cacheBytes,
	}
	c := build(prof, s, opt)
	if err := drive(c, prof, opt); err != nil {
		return memctrl.RecoveryReport{}, err
	}
	c.ForceAllDirty()
	c.Crash()
	return c.Recover()
}

// Job is one (workload, scheme, options) simulation for RunParallel.
type Job struct {
	Prof   trace.Profile
	Scheme Scheme
	Opt    Options
}

// RunParallel executes jobs across a worker pool (controllers are fully
// independent, so the sweeps behind the paper's figures parallelise
// perfectly). workers <= 0 selects GOMAXPROCS. Results are positional.
//
// On failure it still returns every result that completed (failed slots
// are zero) together with all failures joined into one error, each wrapped
// with its job identity; dispatch stops once a failure is observed, so a
// broken sweep aborts quickly instead of burning through remaining jobs.
func RunParallel(jobs []Job, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]Result, len(jobs))
	errs := make([]error, len(jobs))
	idx := make(chan int)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := Run(jobs[i].Prof, jobs[i].Scheme, jobs[i].Opt)
				if err != nil {
					errs[i] = fmt.Errorf("sim: job %d (%s/%s): %w",
						i, jobs[i].Prof.Name, jobs[i].Scheme.Name, err)
					failed.Store(true)
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range jobs {
		if failed.Load() {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, errors.Join(errs...)
}
