package sim

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/scheme/wb"
)

func metricsOpt() Options {
	opt := smallOpt()
	mo := metrics.DefaultOptions()
	opt.Metrics = &mo
	return opt
}

// TestPhasePartitionAllSchemes is the PR's headline invariant at the sim
// level: for every scheme, the exported phase buckets (minus queue_wait)
// partition the measured makespan exactly — not just within the 1%
// acceptance bound.
func TestPhasePartitionAllSchemes(t *testing.T) {
	for _, s := range []Scheme{WBGC, WBSC, ASIT, STAR, SteinsGC, SteinsSC, SCUEGC, SCUESC} {
		opt := metricsOpt()
		opt.WarmupOps = 500 // exercise the stats+collector reset path
		res, err := Run(smallProfile(), s, opt)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		snap := res.Snapshot
		if snap == nil {
			t.Fatalf("%s: Options.Metrics set but Result.Snapshot nil", s.Name)
		}
		if snap.Scheme != s.Name || snap.Workload != smallProfile().Name {
			t.Fatalf("%s: snapshot identity %q/%q", s.Name, snap.Scheme, snap.Workload)
		}
		if got := snap.Read.Ops + snap.Write.Ops; got != uint64(opt.Ops) {
			t.Fatalf("%s: snapshot ops %d, want %d", s.Name, got, opt.Ops)
		}
		if snap.ExecCycles != res.ExecCycles {
			t.Fatalf("%s: snapshot exec %d != result exec %d", s.Name, snap.ExecCycles, res.ExecCycles)
		}
		if got := snap.MakespanCycles(); got != snap.ExecCycles {
			diff := 100 * (float64(got) - float64(snap.ExecCycles)) / float64(snap.ExecCycles)
			t.Fatalf("%s: phase buckets sum to %d, makespan %d (%+.3f%%)",
				s.Name, got, snap.ExecCycles, diff)
		}
	}
}

// TestMetricsExportDeterministic: identical seeded runs must export
// byte-identical JSON, so figure pipelines diff cleanly.
func TestMetricsExportDeterministic(t *testing.T) {
	export := func() []byte {
		res, err := Run(smallProfile(), SteinsSC, metricsOpt())
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.Snapshot.EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs exported different JSON:\n%s\n---\n%s", a, b)
	}
}

// TestMetricsExportDeterministicWithFaults: the media-fault model draws
// from its own seeded stream, so a faulty run must be exactly as
// reproducible as a clean one — identical seeds, identical JSON bytes.
func TestMetricsExportDeterministicWithFaults(t *testing.T) {
	export := func() []byte {
		opt := metricsOpt()
		opt.Configure = func(cfg *memctrl.Config) {
			cfg.NVM.Faults = nvmem.FaultConfig{
				Seed:             7,
				TransientPerRead: 2e-3,
				DoubleBitFrac:    0.1,
				StuckPerWrite:    1e-4,
			}
		}
		res, err := Run(smallProfile(), SteinsGC, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Ctrl.MediaCorrected == 0 {
			t.Fatal("fault model never fired; determinism check is vacuous")
		}
		var b bytes.Buffer
		if err := res.Snapshot.EncodeJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical faulty runs exported different JSON:\n%s\n---\n%s", a, b)
	}
}

// --- RunParallel failure handling ---------------------------------------

var errInjected = errors.New("injected policy fault")

// failPolicy wraps a real policy and fails the failAt-th data read,
// exercising the sweep error paths without touching real scheme code.
type failPolicy struct {
	memctrl.Policy
	reads, failAt int
}

func (p *failPolicy) BeforeRead() (uint64, error) {
	if p.reads++; p.reads > p.failAt {
		return 0, errInjected
	}
	return p.Policy.BeforeRead()
}

func failScheme(name string, failAt int) Scheme {
	return Scheme{Name: name, Factory: func(c *memctrl.Controller) memctrl.Policy {
		return &failPolicy{Policy: wb.Factory(c), failAt: failAt}
	}}
}

func TestRunParallelPartialResults(t *testing.T) {
	// The failing job last: with one worker per job every job is dispatched
	// before the failure lands, so the completed results must survive.
	jobs := []Job{
		{Prof: smallProfile(), Scheme: WBGC, Opt: smallOpt()},
		{Prof: smallProfile(), Scheme: SteinsGC, Opt: smallOpt()},
		{Prof: smallProfile(), Scheme: failScheme("fail-wb", 0), Opt: smallOpt()},
	}
	results, err := RunParallel(jobs, 3)
	if err == nil {
		t.Fatal("sweep with a failing job returned nil error")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if !strings.Contains(err.Error(), "sim: job 2") ||
		!strings.Contains(err.Error(), "fail-wb") {
		t.Fatalf("error missing job identity: %v", err)
	}
	for i := 0; i < 2; i++ {
		ser, serr := Run(jobs[i].Prof, jobs[i].Scheme, jobs[i].Opt)
		if serr != nil {
			t.Fatal(serr)
		}
		if results[i] != ser {
			t.Fatalf("job %d: completed result lost on sweep failure", i)
		}
	}
	if results[2].ExecCycles != 0 {
		t.Fatal("failed job left a non-zero result")
	}
}

func TestRunParallelJoinsAllErrors(t *testing.T) {
	// Two failing jobs on two workers. The factories rendezvous, so
	// neither job can fail before both are dispatched — regardless of
	// GOMAXPROCS — and both failures must appear in the joined error
	// rather than the first masking the rest.
	var ready sync.WaitGroup
	ready.Add(2)
	rendezvousFail := func(name string) Scheme {
		return Scheme{Name: name, Factory: func(c *memctrl.Controller) memctrl.Policy {
			ready.Done()
			ready.Wait()
			return &failPolicy{Policy: wb.Factory(c)}
		}}
	}
	jobs := []Job{
		{Prof: smallProfile(), Scheme: rendezvousFail("fail-a"), Opt: smallOpt()},
		{Prof: smallProfile(), Scheme: rendezvousFail("fail-b"), Opt: smallOpt()},
	}
	_, err := RunParallel(jobs, 2)
	if err == nil {
		t.Fatal("nil error from all-failing sweep")
	}
	for _, want := range []string{"sim: job 0", "sim: job 1", "fail-a", "fail-b"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("joined error missing %q: %v", want, err)
		}
	}
}

func TestRunParallelStopsDispatchAfterFailure(t *testing.T) {
	// One worker, first job fails: the dispatcher observes the failure via
	// the send of job 1 (the store happens before that receive), so jobs
	// 2.. are never dispatched and their slots stay zero.
	jobs := []Job{{Prof: smallProfile(), Scheme: failScheme("fail-first", 0), Opt: smallOpt()}}
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{Prof: smallProfile(), Scheme: WBGC, Opt: smallOpt()})
	}
	results, err := RunParallel(jobs, 1)
	if err == nil {
		t.Fatal("nil error from failing sweep")
	}
	completed := 0
	for _, r := range results {
		if r.ExecCycles != 0 {
			completed++
		}
	}
	if completed > 1 {
		t.Fatalf("%d jobs completed after the first failed; dispatch did not stop", completed)
	}
}
