package sim

import (
	"testing"

	"steins/internal/trace"
)

// smallOpt keeps unit-test runs quick: modest traces, small cache so all
// mechanisms engage.
func smallOpt() Options {
	return Options{Ops: 4000, Seed: 1, DataBytes: 4 << 20, MetaCacheBytes: 8 << 10}
}

func smallProfile() trace.Profile {
	return trace.Profile{
		Name: "unit-uniform", FootprintBytes: 2 << 20, WriteFrac: 0.5,
		GapMean: 50, Pattern: trace.Uniform,
	}
}

func TestRunAllSchemes(t *testing.T) {
	for _, s := range []Scheme{WBGC, WBSC, ASIT, STAR, SteinsGC, SteinsSC, SCUEGC, SCUESC} {
		res, err := Run(smallProfile(), s, smallOpt())
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if res.ExecCycles == 0 || res.AvgWriteLat == 0 || res.AvgReadLat == 0 {
			t.Fatalf("%s: empty result %+v", s.Name, res)
		}
		if res.EnergyPJ <= 0 || res.WriteBytes == 0 {
			t.Fatalf("%s: missing energy/traffic", s.Name)
		}
	}
}

func TestRunAllWorkloadsOnSteins(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in short mode")
	}
	for _, prof := range trace.All() {
		opt := Options{Ops: 2000, Seed: 2, MetaCacheBytes: 8 << 10}
		if _, err := Run(prof, SteinsGC, opt); err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
	}
}

func TestSchemeOrderingsMatchPaper(t *testing.T) {
	// The qualitative results of §IV-A/B on a memory-intensive uniform
	// workload: ASIT slowest, STAR between, Steins-GC near WB-GC; ASIT
	// writes ~2x WB; Steins traffic below STAR's.
	// A SPEC-scale footprint so STAR's bitmap working set exceeds its
	// controller cache, as it does against 16 GB memory (see DESIGN.md).
	prof := trace.Profile{
		Name: "ordering-uniform", FootprintBytes: 64 << 20, WriteFrac: 0.5,
		GapMean: 300, Pattern: trace.Uniform,
	}
	opt := Options{Ops: 12000, Seed: 1, MetaCacheBytes: 32 << 10}
	res := map[string]Result{}
	for _, s := range GCComparison() {
		r, err := Run(prof, s, opt)
		if err != nil {
			t.Fatal(err)
		}
		res[s.Name] = r
	}
	wb, as, st, sg := res["WB-GC"], res["ASIT"], res["STAR"], res["Steins-GC"]
	if !(as.ExecCycles > st.ExecCycles && st.ExecCycles > sg.ExecCycles) {
		t.Fatalf("exec ordering wrong: ASIT %d, STAR %d, Steins %d",
			as.ExecCycles, st.ExecCycles, sg.ExecCycles)
	}
	if sg.ExecCycles < wb.ExecCycles {
		t.Fatalf("Steins-GC faster than WB-GC: %d < %d", sg.ExecCycles, wb.ExecCycles)
	}
	if ratio := float64(as.WriteBytes) / float64(wb.WriteBytes); ratio < 1.5 {
		t.Fatalf("ASIT/WB traffic %.2f, want >= 1.5", ratio)
	}
	if sg.WriteBytes >= st.WriteBytes {
		t.Fatalf("Steins traffic %d not below STAR %d", sg.WriteBytes, st.WriteBytes)
	}
	if !(as.AvgWriteLat > st.AvgWriteLat && st.AvgWriteLat > sg.AvgWriteLat) {
		t.Fatalf("write latency ordering wrong: %v %v %v",
			as.AvgWriteLat, st.AvgWriteLat, sg.AvgWriteLat)
	}
}

func TestSplitCounterWins(t *testing.T) {
	// Fig. 12: the split-counter leaf's higher cache coverage makes
	// Steins-SC faster than Steins-GC.
	prof := smallProfile()
	opt := smallOpt()
	opt.Ops = 12000
	gc, err := Run(prof, SteinsGC, opt)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(prof, SteinsSC, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sc.ExecCycles >= gc.ExecCycles {
		t.Fatalf("Steins-SC (%d) not faster than Steins-GC (%d)", sc.ExecCycles, gc.ExecCycles)
	}
	if sc.MetaHitRate <= gc.MetaHitRate {
		t.Fatalf("SC hit rate %.3f not above GC %.3f", sc.MetaHitRate, gc.MetaHitRate)
	}
}

func TestRunWithCrashAllRecoverableSchemes(t *testing.T) {
	for _, s := range []Scheme{ASIT, STAR, SteinsGC, SteinsSC, SCUEGC} {
		_, rep, err := RunWithCrash(smallProfile(), s, smallOpt(), true)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if rep.TimeNS <= 0 {
			t.Fatalf("%s: empty recovery report %+v", s.Name, rep)
		}
	}
}

func TestRecoveryAtCacheSizeOrdering(t *testing.T) {
	// Fig. 17 shape at one cache size: ASIT fastest, Steins-SC slowest.
	reps := map[string]float64{}
	for _, s := range []Scheme{ASIT, STAR, SteinsGC, SteinsSC} {
		rep, err := RecoveryAtCacheSize(s, 16<<10, 3)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		reps[s.Name] = rep.TimeNS
	}
	if !(reps["ASIT"] < reps["STAR"] && reps["ASIT"] < reps["Steins-GC"]) {
		t.Fatalf("ASIT not fastest: %v", reps)
	}
	if reps["Steins-SC"] <= reps["Steins-GC"] {
		t.Fatalf("Steins-SC (%v) not slower than Steins-GC (%v)",
			reps["Steins-SC"], reps["Steins-GC"])
	}
}

func TestRecoveryTimeScalesWithCacheSize(t *testing.T) {
	small, err := RecoveryAtCacheSize(SteinsGC, 8<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	large, err := RecoveryAtCacheSize(SteinsGC, 32<<10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if large.TimeNS < small.TimeNS*2 {
		t.Fatalf("recovery time does not scale with cache size: %v vs %v",
			small.TimeNS, large.TimeNS)
	}
}

func TestDeterministicResults(t *testing.T) {
	a, err := Run(smallProfile(), SteinsGC, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallProfile(), SteinsGC, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("results differ across identical runs:\n%+v\n%+v", a, b)
	}
}

func TestRunParallelMatchesSerial(t *testing.T) {
	jobs := []Job{
		{Prof: smallProfile(), Scheme: WBGC, Opt: smallOpt()},
		{Prof: smallProfile(), Scheme: SteinsGC, Opt: smallOpt()},
		{Prof: smallProfile(), Scheme: STAR, Opt: smallOpt()},
	}
	par, err := RunParallel(jobs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, job := range jobs {
		ser, err := Run(job.Prof, job.Scheme, job.Opt)
		if err != nil {
			t.Fatal(err)
		}
		if par[i] != ser {
			t.Fatalf("job %d: parallel result differs from serial", i)
		}
	}
}

func TestWarmupResetsStats(t *testing.T) {
	opt := smallOpt()
	opt.WarmupOps = 2000
	warm, err := Run(smallProfile(), SteinsGC, opt)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(smallProfile(), SteinsGC, smallOpt())
	if err != nil {
		t.Fatal(err)
	}
	if warm.Ctrl.DataReads+warm.Ctrl.DataWrites != 4000 {
		t.Fatalf("measured ops = %d, want 4000 after warm-up reset",
			warm.Ctrl.DataReads+warm.Ctrl.DataWrites)
	}
	// Warming cannot hurt much (uniform traffic gains little; it must not
	// lose more than noise).
	if warm.MetaHitRate < cold.MetaHitRate-0.05 {
		t.Fatalf("warm hit rate %.3f far below cold %.3f", warm.MetaHitRate, cold.MetaHitRate)
	}
}
