package sim

import (
	"bytes"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"

	"steins/internal/metrics"
	"steins/internal/trace"
)

func shardProfile() trace.Profile {
	return trace.Profile{
		Name:           "shard-uniform",
		FootprintBytes: 256 << 10,
		WriteFrac:      0.5,
		GapMean:        10,
		Pattern:        trace.Uniform,
	}
}

func shardOpt() Options {
	return Options{Ops: 4000, Seed: 7, MetaCacheBytes: 16 << 10}
}

// TestRunShardedOneChannelMatchesRun pins the reduction property: one
// channel, line interleave is the unsharded engine — identical Result,
// field for field.
func TestRunShardedOneChannelMatchesRun(t *testing.T) {
	prof, opt := shardProfile(), shardOpt()
	opt.WarmupOps = 500 // exercise the epoch-aligned warmup reset
	ref, err := Run(prof, SteinsSC, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSharded(prof, SteinsSC, opt, ShardOptions{Channels: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, res.Merged) {
		t.Fatalf("1-channel sharded result diverges from Run:\nrun    %+v\nshard  %+v", ref, res.Merged)
	}
	if len(res.Shards) != 1 {
		t.Fatalf("expected 1 shard result, got %d", len(res.Shards))
	}
}

// TestRunShardedDeterministicAcrossWorkers is the seeded-RNG determinism
// guard (run under -cpu 1,2,8 in make check): identical ShardedResults and
// byte-identical metrics JSON regardless of worker count or GOMAXPROCS.
func TestRunShardedDeterministicAcrossWorkers(t *testing.T) {
	prof, opt := shardProfile(), shardOpt()
	mo := metrics.DefaultOptions()
	opt.Metrics = &mo
	export := func(workers int) (ShardedResult, []byte) {
		res, err := RunSharded(prof, SteinsGC, opt,
			ShardOptions{Channels: 4, Interleave: trace.InterleaveLine, Workers: workers, EpochOps: 512})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.System.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}
	refRes, refJSON := export(1)
	for _, workers := range []int{2, 8} {
		res, js := export(workers)
		if !bytes.Equal(refJSON, js) {
			t.Fatalf("metrics JSON diverges between 1 and %d workers", workers)
		}
		if !reflect.DeepEqual(refRes.Merged, res.Merged) {
			t.Fatalf("merged result diverges between 1 and %d workers", workers)
		}
		for k := range refRes.Shards {
			if !reflect.DeepEqual(refRes.Shards[k], res.Shards[k]) {
				t.Fatalf("shard %d result diverges between 1 and %d workers", k, workers)
			}
		}
	}
}

// TestRunShardedDeterministicAcrossEpochSizes: the epoch budget is a
// batching knob, not a semantic one — any epoch size yields the same run.
func TestRunShardedDeterministicAcrossEpochSizes(t *testing.T) {
	prof, opt := shardProfile(), shardOpt()
	run := func(epoch int) ShardedResult {
		res, err := RunSharded(prof, SCUESC, opt,
			ShardOptions{Channels: 4, Interleave: trace.InterleavePage, EpochOps: epoch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(64)
	for _, epoch := range []int{1, 777, 100000} {
		if got := run(epoch); !reflect.DeepEqual(ref, got) {
			t.Fatalf("results diverge between epoch sizes 64 and %d", epoch)
		}
	}
}

// TestDriveStreamWarmupEpochBoundaryIdentity pins the pipelined epoch
// engine's warm-up reset against adversarial boundary placements (run
// under -cpu 1,2,8 in make check). The warm-up statistics reset must land
// at the same global-stream point no matter where epoch barriers fall —
// warm-up one op short of an epoch, exactly on one, one past one — and no
// matter how DriveStreamN calls slice the stream around it, including a
// call boundary straddling the reset inside a double-buffered split epoch.
// Results and metrics JSON must stay byte-identical to the straight run.
func TestDriveStreamWarmupEpochBoundaryIdentity(t *testing.T) {
	prof, opt := shardProfile(), shardOpt()
	opt.Ops = 2000
	mo := metrics.DefaultOptions()
	opt.Metrics = &mo

	drive := func(s Scheme, epoch int, chunks []int) (ShardedResult, []byte) {
		t.Helper()
		e := NewSharded(prof, s, opt,
			ShardOptions{Channels: 2, Interleave: trace.InterleaveLine, EpochOps: epoch})
		src := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
		for _, n := range chunks {
			if _, err := e.DriveStreamN(src, n); err != nil {
				t.Fatalf("%s epoch %d chunks %v: %v", s.Name, epoch, chunks, err)
			}
		}
		res := e.Result()
		if res.System == nil {
			t.Fatalf("%s: no system snapshot", s.Name)
		}
		var buf bytes.Buffer
		if err := res.System.EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes()
	}

	for _, s := range []Scheme{SteinsGC, PipeSITGC, TriadSC} {
		// Warm-up offsets adversarial to the 256-op reference epoch: one
		// short of the boundary, exactly on it, one past it.
		for _, warm := range []int{255, 256, 257} {
			opt.WarmupOps = warm
			ref, refJSON := drive(s, 256, []int{-1})
			for _, epoch := range []int{256, 64} {
				for _, chunks := range [][]int{
					{-1},              // one call
					{warm, -1},        // call boundary exactly at the reset
					{warm - 1, 9, -1}, // reset crossed mid-call, mid-epoch
				} {
					got, gotJSON := drive(s, epoch, chunks)
					if !reflect.DeepEqual(ref.Merged, got.Merged) ||
						!reflect.DeepEqual(ref.Shards, got.Shards) {
						t.Fatalf("%s warm %d epoch %d chunks %v: results diverge from straight run",
							s.Name, warm, epoch, chunks)
					}
					if !bytes.Equal(refJSON, gotJSON) {
						t.Fatalf("%s warm %d epoch %d chunks %v: metrics JSON diverges",
							s.Name, warm, epoch, chunks)
					}
				}
			}
		}
	}
}

// TestShardedMatchesMultiSystem cross-checks the splitter against the
// multi-DIMM reference: routing the same stream through multi.System at
// the same interleave must leave every controller with the same stats as
// the sharded engine's channels (the splitter replicates multi's clock and
// chunk arithmetic exactly). Verified at the stats level in
// internal/multi's tests; here we pin the address/gap agreement.
func TestShardedSplitterAgreesWithMultiRoute(t *testing.T) {
	sp := trace.NewSplitter(nil, 4, trace.InterleavePage)
	for _, addr := range []uint64{0, 63, 64, 4095, 4096, 4097, 5 * 4096, 16*4096 + 123} {
		shard, local := sp.Route(addr)
		chunk := addr / 4096
		wantShard := int(chunk % 4)
		wantLocal := (chunk/4)*4096 + addr%4096
		if shard != wantShard || local != wantLocal {
			t.Fatalf("Route(%#x) = (%d, %#x), want (%d, %#x)", addr, shard, local, wantShard, wantLocal)
		}
	}
}

// TestRunShardedHashOverflowSurfaces: when hash scatter lands more lines
// on a channel than its slice can hold, the run must fail loudly with the
// capacity diagnostic, not mis-route or panic.
func TestRunShardedHashOverflowSurfaces(t *testing.T) {
	const channels = 4
	prof := shardProfile()
	prof.FootprintBytes = 256 << 10
	opt := shardOpt()
	opt.DataBytes = prof.FootprintBytes // zero slack per shard

	// Oracle: scatter every line of the footprint the way the splitter
	// will; overflow is expected iff some channel draws more lines than
	// its exact 1/channels slice. (With thousands of lines hashed into a
	// handful of channels a perfectly balanced draw is essentially
	// impossible, but derive it rather than assume it.)
	lines := prof.FootprintBytes / 64
	perShard := trace.ShardBytes(prof.FootprintBytes, channels, trace.InterleaveHash) / 64
	counts := make(map[int]uint64)
	overflow := false
	probe := trace.NewSplitter(nil, channels, trace.InterleaveHash)
	for l := uint64(0); l < lines; l++ {
		shard, _ := probe.Route(l * 64)
		if counts[shard]++; counts[shard] > perShard {
			overflow = true
			break
		}
	}
	if !overflow {
		t.Skip("hash scatter happened to balance exactly; no overflow to provoke")
	}

	// Touch every line so the worst channel must exceed its slice.
	ops := make([]trace.Op, lines)
	for l := uint64(0); l < lines; l++ {
		ops[l] = trace.Op{Addr: l * 64, IsWrite: true, Gap: 1}
	}
	_, err := RunShardedStream(trace.NewReplay("hash-overflow", ops), SteinsGC, opt,
		ShardOptions{Channels: channels, Interleave: trace.InterleaveHash})
	if err == nil {
		t.Fatal("expected hash-scatter overflow error, got nil")
	}
	if !strings.Contains(err.Error(), "scatter imbalance") {
		t.Fatalf("overflow error missing diagnostic: %v", err)
	}
}

// TestRunShardedPropagatesShardErrors: a failure inside one channel's
// controller must surface wrapped with the channel identity.
func TestRunShardedPropagatesShardErrors(t *testing.T) {
	prof, opt := shardProfile(), shardOpt()
	opt.Ops = 200
	_, err := RunSharded(prof, failScheme("fail-shard", 10), opt,
		ShardOptions{Channels: 4, Interleave: trace.InterleaveLine})
	if err == nil {
		t.Fatal("expected injected fault to surface")
	}
	if !strings.Contains(err.Error(), "sharded channel") || !strings.Contains(err.Error(), "fail-shard") {
		t.Fatalf("error missing channel identity: %v", err)
	}
}

// TestRunShardedSpeedup measures the acceptance criterion — four channels
// at least 2x faster than the unsharded run — when the host actually has
// the parallelism; on smaller machines the ratio is meaningless, so skip.
func TestRunShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is slow")
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		t.Skipf("need >= 4 procs to demonstrate sharded speedup, have %d", p)
	}
	// -cpu can raise GOMAXPROCS past the hardware (e.g. -cpu 8 on a
	// 1-core CI box); wall-clock speedup needs real cores.
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >= 4 hardware cores to demonstrate sharded speedup, have %d", n)
	}
	prof, opt := shardProfile(), shardOpt()
	prof.FootprintBytes = 4 << 20
	opt.Ops = 400000

	start := time.Now()
	if _, err := Run(prof, SteinsSC, opt); err != nil {
		t.Fatal(err)
	}
	serial := time.Since(start)

	start = time.Now()
	if _, err := RunSharded(prof, SteinsSC, opt,
		ShardOptions{Channels: 4, Interleave: trace.InterleaveLine}); err != nil {
		t.Fatal(err)
	}
	sharded := time.Since(start)

	if sharded*2 > serial {
		t.Fatalf("4-channel run not >=2x faster: unsharded %v, sharded %v", serial, sharded)
	}
}
