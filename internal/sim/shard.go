package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"steins/internal/cache"
	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/multi"
	"steins/internal/nvmem"
	"steins/internal/trace"
)

// ShardOptions parameterise the sharded (channel-interleaved) engine.
type ShardOptions struct {
	// Channels is the number of independent controllers the address space
	// is interleaved across. 1 reproduces the unsharded run bit-for-bit.
	Channels int
	// Interleave selects the address-to-channel mapping.
	Interleave trace.Interleave
	// EpochOps is the number of source operations routed per epoch barrier
	// (0: 4096). Each epoch is split sequentially — fixing the virtual
	// clock — then the per-channel batches are driven in parallel and the
	// engine barriers before the next epoch, so memory stays bounded and
	// results are independent of GOMAXPROCS.
	EpochOps int
	// Workers bounds how many channels are driven concurrently per epoch
	// (0: GOMAXPROCS). Purely a throughput knob; results are identical for
	// any value because each channel's operation sequence is fixed by the
	// sequential split.
	Workers int
	// DivideCache, when false (the default), splits Options.MetaCacheBytes
	// evenly across channels so the total metadata-SRAM budget matches the
	// unsharded configuration. Set KeepCachePerChannel to give every
	// channel the full budget instead.
	KeepCachePerChannel bool
}

func (so *ShardOptions) setDefaults() {
	if so.Channels <= 0 {
		so.Channels = 1
	}
	if so.EpochOps <= 0 {
		so.EpochOps = 4096
	}
	if so.Workers <= 0 {
		so.Workers = runtime.GOMAXPROCS(0)
	}
}

// ShardedResult carries the merged system-level view of one sharded run
// plus the per-channel results it was folded from.
type ShardedResult struct {
	// Merged is the system view: retired ops and traffic summed through the
	// Stats/NVM Merge machinery, ExecCycles the parallel maximum across
	// channels (channels drain concurrently, so the slowest bounds the
	// makespan), latencies recomputed from the merged sums.
	Merged Result
	// Shards holds one Result per channel, in channel order.
	Shards []Result
	// System is the merged + per-channel metrics export; nil unless
	// Options.Metrics was set.
	System *metrics.SystemSnapshot
}

// Sharded is the channel-interleaved simulation engine: one trace
// partitioned across N independent controllers by an address-interleave
// function, driven in parallel under an epoch-barrier virtual clock.
//
// Determinism: the splitter is sequential and defines each channel's exact
// operation sequence (local addresses, local gaps, payload identities)
// before any parallel work happens; each channel is then driven by exactly
// one goroutine per epoch over private state. Results are therefore
// bit-identical for any GOMAXPROCS or Workers setting.
//
// Correctness of the split: a channel owns whole cache lines (every
// interleave chunk is a multiple of the 64 B line), so a write-back and
// all metadata derived from it — counter leaf, tree branch, records,
// shadow slots, tags — live on that channel's controller. Each channel is
// a complete secure-memory system with its own integrity tree and trust
// base, which is exactly the per-DIMM model of §IV-F.
type Sharded struct {
	prof       trace.Profile
	scheme     Scheme
	opt        Options
	so         ShardOptions
	sp         *trace.Splitter
	ctrls      []*memctrl.Controller
	shardBytes uint64
	driven     uint64 // source ops driven, including warm-up
	warmupDone bool

	// Double-buffered epoch batches: the splitter fills one set while the
	// workers drive the other, so the sequential split of epoch e+1
	// overlaps the parallel drive of epoch e.
	bufA, bufB [][]trace.ShardedOp
}

// NewSharded builds the engine: Channels controllers, each owning a
// 1/Channels slice of the (possibly rounded-up) data region, plus the
// splitter that will route streams across them. Drive it with DriveStream
// (or let RunSharded do everything).
func NewSharded(prof trace.Profile, s Scheme, opt Options, so ShardOptions) *Sharded {
	so.setDefaults()
	dataBytes := opt.DataBytes
	if dataBytes == 0 {
		dataBytes = prof.FootprintBytes * 2
	}
	if dataBytes < prof.FootprintBytes {
		panic(fmt.Sprintf("sim: data region %d smaller than %s footprint %d",
			dataBytes, prof.Name, prof.FootprintBytes))
	}
	shardBytes := trace.ShardBytes(dataBytes, so.Channels, so.Interleave)
	e := &Sharded{prof: prof, scheme: s, opt: opt, so: so, shardBytes: shardBytes}
	for k := 0; k < so.Channels; k++ {
		cfg := memctrl.DefaultConfig(shardBytes, s.Split)
		cacheBytes := cfg.MetaCacheBytes
		if opt.MetaCacheBytes != 0 {
			cacheBytes = opt.MetaCacheBytes
		}
		if !so.KeepCachePerChannel {
			// Divide the SRAM budget, rounding down to a whole number of
			// sets (the cache requires a multiple of ways*lineSize) with a
			// two-set floor so extreme channel counts stay functional.
			set := cfg.MetaCacheWays * 64
			cacheBytes = cacheBytes / so.Channels / set * set
			if cacheBytes < 2*set {
				cacheBytes = 2 * set
			}
		}
		cfg.MetaCacheBytes = cacheBytes
		if opt.Configure != nil {
			opt.Configure(&cfg)
		}
		c := memctrl.New(cfg, s.Factory)
		if opt.Metrics != nil {
			c.SetMetrics(metrics.NewCollector(*opt.Metrics))
		}
		e.ctrls = append(e.ctrls, c)
	}
	return e
}

// Controllers returns the per-channel controllers, in channel order.
func (e *Sharded) Controllers() []*memctrl.Controller { return e.ctrls }

// Route maps a global data address to its (channel, local address) home.
func (e *Sharded) Route(addr uint64) (int, uint64) {
	e.lazySplitter()
	return e.sp.Route(addr)
}

func (e *Sharded) lazySplitter() {
	if e.sp == nil {
		// DriveStream rebinds the source per call; routing state (virtual
		// clock, first-touch maps) persists so multi-phase drives stay
		// consistent.
		e.sp = trace.NewSplitter(nil, e.so.Channels, e.so.Interleave)
		e.sp.LimitLocalBytes = e.shardBytes
	}
}

// DriveStream routes a global operation stream across the channels and
// drives them in parallel, epoch by epoch. It may be called repeatedly;
// the virtual clock and (hash-mode) address assignments carry over, so a
// sequence of calls behaves like one concatenated stream. Payload identity
// follows the unsharded engine exactly: op i (counted globally, across
// calls) writing global address a stores Payload(a, i).
func (e *Sharded) DriveStream(src trace.Stream) error {
	_, err := e.DriveStreamN(src, -1)
	return err
}

// epochRun is one dispatched epoch in flight: the goroutines driving its
// per-channel batches, their error slots, and the source-op count to fold
// into the totals once it retires.
type epochRun struct {
	n    int
	errs []error
	wg   sync.WaitGroup
}

// DriveStreamN is DriveStream bounded to at most maxOps source operations
// (maxOps < 0 drives the stream to exhaustion). It returns the number of
// source ops consumed, stopping exactly at the bound on an epoch barrier —
// the engine is then at a retired-op boundary and can be snapshotted.
// Epoch placement never changes results (each channel's op sequence is
// fixed by the sequential split), so a run checkpointed at an arbitrary
// boundary stays bit-identical to the straight run.
//
// The loop is a depth-1 pipeline: while epoch e's batches drive on the
// worker goroutines, the sequential splitter routes epoch e+1 into the
// idle buffer set. Epoch e+1 is only dispatched after epoch e has fully
// retired (wait-before-dispatch), so each controller still sees its ops
// strictly in split order and the warm-up statistics reset still lands on
// an exact epoch boundary — results stay bit-identical to the serial
// loop; only the split latency is hidden.
func (e *Sharded) DriveStreamN(src trace.Stream, maxOps int) (int, error) {
	e.lazySplitter()
	e.sp.Rebind(src)
	if e.bufA == nil {
		e.bufA = make([][]trace.ShardedOp, e.so.Channels)
		e.bufB = make([][]trace.ShardedOp, e.so.Channels)
	}
	warm := uint64(e.opt.WarmupOps)
	sem := make(chan struct{}, e.so.Workers)
	total := 0
	var inflight *epochRun

	// finish retires the in-flight epoch: wait for its workers, surface
	// their errors, fold its op count, and apply the warm-up reset when the
	// boundary is crossed. No-op when the pipeline is empty.
	finish := func() error {
		if inflight == nil {
			return nil
		}
		r := inflight
		inflight = nil
		r.wg.Wait()
		for k, err := range r.errs {
			if err != nil {
				r.errs[k] = fmt.Errorf("sim: sharded channel %d (%s/%s): %w",
					k, e.prof.Name, e.scheme.Name, err)
			}
		}
		if err := errors.Join(r.errs...); err != nil {
			return err
		}
		e.driven += uint64(r.n)
		total += r.n
		if !e.warmupDone && warm > 0 && e.driven >= warm {
			for _, c := range e.ctrls {
				c.ResetStats()
			}
			e.warmupDone = true
		}
		return nil
	}

	// dispatch launches one goroutine per non-empty channel batch; the
	// worker semaphore is acquired inside the goroutine so dispatch never
	// blocks the splitting thread.
	dispatch := func(batches [][]trace.ShardedOp, n int) {
		r := &epochRun{n: n, errs: make([]error, len(e.ctrls))}
		for k := range e.ctrls {
			if len(batches[k]) == 0 {
				continue
			}
			r.wg.Add(1)
			go func(k int) {
				defer r.wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				r.errs[k] = driveShard(e.ctrls[k], batches[k])
			}(k)
		}
		inflight = r
	}

	cur, idle := e.bufA, e.bufB
	for {
		// Budget arithmetic counts the in-flight epoch as already consumed:
		// its ops are committed to the controllers even though finish has
		// not folded them yet.
		consumedCall, consumedLife := total, e.driven
		if inflight != nil {
			consumedCall += inflight.n
			consumedLife += uint64(inflight.n)
		}
		budget := e.so.EpochOps
		if maxOps >= 0 && budget > maxOps-consumedCall {
			budget = maxOps - consumedCall
		}
		if budget == 0 {
			err := finish()
			return total, err
		}
		// Force an epoch boundary exactly at the warm-up boundary so every
		// channel resets its statistics at the same global-stream point.
		if warm > consumedLife && uint64(budget) > warm-consumedLife {
			budget = int(warm - consumedLife)
		}
		batches, n, serr := e.sp.NextEpochInto(budget, cur)
		if serr != nil {
			// Mirror the serial loop: retire the previous epoch, drive the
			// partial one (its ops reached the controllers) without counting
			// it, then surface the split error.
			if err := finish(); err != nil {
				return total, err
			}
			if n > 0 {
				dispatch(batches, 0)
				if err := finish(); err != nil {
					return total, err
				}
			}
			return total, fmt.Errorf("sim: %w", serr)
		}
		if n == 0 {
			err := finish()
			return total, err
		}
		if err := finish(); err != nil {
			return total, err
		}
		dispatch(batches, n)
		cur, idle = idle, cur
	}
}

// driveShard replays one channel's epoch batch on its controller.
func driveShard(c *memctrl.Controller, batch []trace.ShardedOp) error {
	for i := range batch {
		op := &batch[i]
		var err error
		if op.IsWrite {
			err = c.WriteData(op.Gap, op.Addr, Payload(op.GlobalAddr, int(op.Index)))
		} else {
			_, err = c.ReadData(op.Gap, op.Addr)
		}
		if err != nil {
			return fmt.Errorf("op %d (%v global %#x local %#x): %w",
				op.Index, op.IsWrite, op.GlobalAddr, op.Addr, err)
		}
	}
	return nil
}

// ReadGlobal routes a read for a global address to its channel; tests and
// post-recovery probes use it.
func (e *Sharded) ReadGlobal(gap, addr uint64) ([64]byte, error) {
	k, local := e.Route(addr)
	return e.ctrls[k].ReadData(gap, local)
}

// DataCounter returns the current encryption-counter state of a global
// address's leaf slot on its owning channel.
func (e *Sharded) DataCounter(addr uint64) uint64 {
	k, local := e.Route(addr)
	return e.ctrls[k].DataCounter(local)
}

// ForceAllDirty dirties every cached node on every channel (§IV-D).
func (e *Sharded) ForceAllDirty() {
	for _, c := range e.ctrls {
		c.ForceAllDirty()
	}
}

// Crash fails the whole machine: every channel loses its volatile state.
func (e *Sharded) Crash() {
	for _, c := range e.ctrls {
		c.Crash()
	}
}

// Recover rebuilds every channel concurrently — each owns a disjoint tree,
// so recovery is shard-by-shard — and returns the per-channel reports plus
// the aggregate (work summed, time the parallel maximum).
func (e *Sharded) Recover() ([]memctrl.RecoveryReport, memctrl.RecoveryReport, error) {
	return multi.RecoverAll(e.ctrls)
}

// VerifyNVM runs the deep persisted-tree oracle on every channel.
func (e *Sharded) VerifyNVM() error {
	for k, c := range e.ctrls {
		if err := c.VerifyNVM(); err != nil {
			return fmt.Errorf("sim: sharded channel %d: %w", k, err)
		}
	}
	return nil
}

// Result assembles the merged and per-channel results of everything driven
// so far.
func (e *Sharded) Result() ShardedResult {
	res := ShardedResult{}
	var ctrl memctrl.Stats
	var nvm nvmem.Stats
	var cacheStats cache.Stats
	var snaps []metrics.Snapshot
	var energy float64
	var ops, exec uint64
	for k, c := range e.ctrls {
		shardProf := e.prof
		shardProf.Name = fmt.Sprintf("%s#%d", e.prof.Name, k)
		st := c.Stats()
		r := collect(c, shardProf, e.scheme, int(st.DataReads+st.DataWrites))
		res.Shards = append(res.Shards, r)
		ctrl.Merge(&st)
		dst := c.Device().Stats()
		nvm.Merge(&dst)
		cacheStats.Merge(c.Meta().Stats())
		energy += r.EnergyPJ
		ops += st.DataReads + st.DataWrites
		exec = max(exec, c.MeasuredExecCycles())
		if r.Snapshot != nil {
			snaps = append(snaps, *r.Snapshot)
		}
	}
	res.Merged = Result{
		Workload:    e.prof.Name,
		Scheme:      e.scheme.Name,
		Ops:         int(ops),
		ExecCycles:  exec,
		AvgReadLat:  ctrl.AvgReadLatency(),
		AvgWriteLat: ctrl.AvgWriteLatency(),
		WriteBytes:  nvm.WriteBytes(),
		EnergyPJ:    energy,
		MetaHitRate: cacheStats.HitRate(),
		NVM:         nvm,
		Ctrl:        ctrl,
	}
	if len(snaps) > 0 {
		res.System = metrics.MergeSnapshots(snaps)
		res.System.Merged.Workload = e.prof.Name
		res.Merged.Snapshot = &res.System.Merged
	}
	return res
}

// RunSharded replays one workload through one scheme across Channels
// interleaved controllers and returns the merged system result.
func RunSharded(prof trace.Profile, s Scheme, opt Options, so ShardOptions) (ShardedResult, error) {
	e := NewSharded(prof, s, opt, so)
	if err := e.DriveStream(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)); err != nil {
		return ShardedResult{}, err
	}
	return e.Result(), nil
}

// RunShardedStream replays an arbitrary operation stream across Channels
// interleaved controllers. opt.DataBytes is required (streams carry no
// footprint information); opt.Ops/Seed are ignored.
func RunShardedStream(stream trace.Stream, s Scheme, opt Options, so ShardOptions) (ShardedResult, error) {
	if opt.DataBytes == 0 {
		panic("sim: RunShardedStream requires DataBytes")
	}
	prof := trace.Profile{Name: stream.Name(), FootprintBytes: opt.DataBytes}
	e := NewSharded(prof, s, opt, so)
	if err := e.DriveStream(stream); err != nil {
		return ShardedResult{}, err
	}
	return e.Result(), nil
}

// RunShardedWithCrash mirrors RunWithCrash on the sharded engine: drive,
// optionally force every cached node dirty, crash the whole machine,
// recover every channel in parallel, and probe a read-only sample.
func RunShardedWithCrash(prof trace.Profile, s Scheme, opt Options, so ShardOptions, forceAllDirty bool) (ShardedResult, memctrl.RecoveryReport, error) {
	e := NewSharded(prof, s, opt, so)
	if err := e.DriveStream(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)); err != nil {
		return ShardedResult{}, memctrl.RecoveryReport{}, err
	}
	res := e.Result()
	if forceAllDirty {
		e.ForceAllDirty()
	}
	e.Crash()
	_, agg, err := e.Recover()
	if err != nil {
		return res, agg, err
	}
	g := trace.New(prof, opt.Seed+1, 200)
	for {
		op, ok := g.Next()
		if !ok {
			break
		}
		if _, rerr := e.ReadGlobal(op.Gap, op.Addr); rerr != nil {
			// Quarantine fences are accounted degraded loss, not probe
			// failures.
			var qe *memctrl.QuarantineError
			if errors.As(rerr, &qe) {
				continue
			}
			return res, agg, fmt.Errorf("sim: post-recovery read failed: %w", rerr)
		}
	}
	return res, agg, nil
}
