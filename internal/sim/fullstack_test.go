package sim

import (
	"testing"

	"steins/internal/cpu"
	"steins/internal/trace"
)

// fullStackStream builds a raw CPU access stream filtered through the
// Table I cache hierarchy.
func fullStackStream(n int, seed uint64) *cpu.Filtered {
	raw := trace.Profile{
		Name:           "raw-zipf",
		FootprintBytes: 64 << 20,
		WriteFrac:      0.4,
		GapMean:        6, // CPU accesses, not LLC misses: small gaps
		Pattern:        trace.Zipf,
		ZipfS:          0.9,
	}
	return cpu.NewFiltered(trace.New(raw, seed, n), cpu.New(cpu.DefaultConfig()))
}

func TestFullStackFiltersAccesses(t *testing.T) {
	stream := fullStackStream(120000, 1)
	res, err := RunStream(stream, SteinsSC, Options{DataBytes: 64 << 20, MetaCacheBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	hs := stream.Hierarchy().Stats()
	if hs.Accesses != 120000 {
		t.Fatalf("hierarchy saw %d accesses", hs.Accesses)
	}
	memOps := res.Ctrl.DataReads + res.Ctrl.DataWrites
	if memOps == 0 || memOps >= hs.Accesses {
		t.Fatalf("filtering ineffective: %d accesses -> %d memory ops", hs.Accesses, memOps)
	}
	if hs.MissRate() > 0.9 {
		t.Fatalf("implausible miss rate %.2f for a zipf stream", hs.MissRate())
	}
}

func TestFullStackSchemeOrderingAgrees(t *testing.T) {
	// The substitution claim of DESIGN.md: driving the controller with a
	// CPU-filtered stream preserves the scheme orderings the synthesised
	// miss streams produce.
	if testing.Short() {
		t.Skip("full-stack sweep in short mode")
	}
	res := map[string]Result{}
	for _, s := range []Scheme{WBGC, ASIT, STAR, SteinsGC} {
		r, err := RunStream(fullStackStream(150000, 2), s,
			Options{DataBytes: 64 << 20, MetaCacheBytes: 32 << 10})
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		res[s.Name] = r
	}
	wb, as, st, sg := res["WB-GC"], res["ASIT"], res["STAR"], res["Steins-GC"]
	if !(as.AvgWriteLat > st.AvgWriteLat && st.AvgWriteLat > sg.AvgWriteLat) {
		t.Fatalf("write-latency ordering lost under full stack: ASIT %.0f STAR %.0f Steins %.0f",
			as.AvgWriteLat, st.AvgWriteLat, sg.AvgWriteLat)
	}
	if ratio := float64(as.WriteBytes) / float64(wb.WriteBytes); ratio < 1.8 {
		t.Fatalf("ASIT traffic ratio %.2f under full stack", ratio)
	}
	if sg.ExecCycles > as.ExecCycles {
		t.Fatalf("Steins slower than ASIT under full stack")
	}
}
