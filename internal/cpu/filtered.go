package cpu

import "steins/internal/trace"

// Filtered adapts a raw CPU access stream into the LLC-miss stream the
// memory controller consumes, by running every access through the Table I
// cache hierarchy. This is the full-stack path of the original Gem5 setup;
// the evaluation figures use directly-synthesised miss streams instead
// (DESIGN.md), and the integration tests check both paths agree
// qualitatively.
type Filtered struct {
	src     trace.Stream
	h       *Hierarchy
	pending []MemOp
	flushed bool
}

// NewFiltered wraps src with a hierarchy. The wrapped stream's gaps are
// interpreted as compute time between CPU accesses; the emitted operations
// carry the accumulated inter-miss distance.
func NewFiltered(src trace.Stream, h *Hierarchy) *Filtered {
	return &Filtered{src: src, h: h}
}

// Name returns the underlying stream's name with a marker.
func (f *Filtered) Name() string { return f.src.Name() + "+caches" }

// Hierarchy exposes the filter's cache stack (for miss-rate inspection).
func (f *Filtered) Hierarchy() *Hierarchy { return f.h }

// Next returns the next memory-level operation.
func (f *Filtered) Next() (trace.Op, bool) {
	for {
		if len(f.pending) > 0 {
			op := f.pending[0]
			f.pending = f.pending[1:]
			return trace.Op{Addr: op.Addr, IsWrite: op.IsWrite, Gap: op.Gap}, true
		}
		raw, ok := f.src.Next()
		if !ok {
			if f.flushed {
				return trace.Op{}, false
			}
			f.flushed = true
			f.pending = f.h.Flush()
			continue
		}
		f.pending = f.h.Access(raw.Addr, raw.IsWrite, raw.Gap)
	}
}
