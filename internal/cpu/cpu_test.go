package cpu

import (
	"testing"

	"steins/internal/cache"
	"steins/internal/rng"
)

func small() Config {
	return Config{
		L1Bytes: 1 << 10, L1Ways: 2,
		L2Bytes: 4 << 10, L2Ways: 4,
		L3Bytes: 16 << 10, L3Ways: 4,
		L1HitCycles: 2, L2HitCycles: 12, L3HitCycles: 30,
	}
}

func TestHitAfterFill(t *testing.T) {
	h := New(small())
	ops := h.Access(0, false, 10)
	if len(ops) != 1 || ops[0].IsWrite {
		t.Fatalf("cold miss ops = %+v", ops)
	}
	if ops := h.Access(0, false, 10); len(ops) != 0 {
		t.Fatalf("second access missed: %+v", ops)
	}
	s := h.Stats()
	if s.L1Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestGapAccumulatesAcrossHits(t *testing.T) {
	h := New(small())
	h.Access(0, false, 100) // miss, consumes gap
	for i := 0; i < 5; i++ {
		h.Access(0, false, 100) // hits accumulate gap
	}
	ops := h.Access(1<<14, false, 100) // far line: miss
	if len(ops) != 1 {
		t.Fatalf("ops = %+v", ops)
	}
	if ops[0].Gap < 600 { // 6x100 + hit latencies
		t.Fatalf("gap %d did not accumulate across hits", ops[0].Gap)
	}
}

func TestDirtyVictimWritesBack(t *testing.T) {
	h := New(small())
	// Write one line, then stream enough lines through to evict it from
	// every level; its write-back must appear.
	h.Access(0, true, 1)
	sawWB := false
	for i := uint64(1); i < 4096 && !sawWB; i++ {
		for _, op := range h.Access(i*64, false, 1) {
			if op.IsWrite && op.Addr == 0 {
				sawWB = true
			}
		}
	}
	if !sawWB {
		t.Fatal("dirty line never written back through the hierarchy")
	}
	if h.Stats().WriteBacks == 0 {
		t.Fatal("write-back count zero")
	}
}

func TestCleanVictimsSilent(t *testing.T) {
	h := New(small())
	writes := 0
	for i := uint64(0); i < 4096; i++ {
		for _, op := range h.Access(i*64, false, 1) {
			if op.IsWrite {
				writes++
			}
		}
	}
	if writes != 0 {
		t.Fatalf("%d write-backs from a read-only stream", writes)
	}
}

func TestFlushDrainsDirtyLines(t *testing.T) {
	h := New(small())
	dirty := map[uint64]bool{}
	for i := uint64(0); i < 8; i++ {
		h.Access(i*64, true, 1)
		dirty[i*64] = true
	}
	for _, op := range h.Flush() {
		if !op.IsWrite {
			t.Fatalf("flush emitted a read: %+v", op)
		}
		delete(dirty, op.Addr)
	}
	if len(dirty) != 0 {
		t.Fatalf("flush missed dirty lines: %v", dirty)
	}
	// Hierarchy empty afterwards.
	if ops := h.Access(0, false, 1); len(ops) != 1 {
		t.Fatal("hierarchy not cold after flush")
	}
}

func TestInclusionMostlyMaintained(t *testing.T) {
	// The hierarchy is inclusive by fill policy; evictions above can
	// transiently break it (handled by the dirty-spill paths), but the
	// steady state keeps the overwhelming majority of upper-level lines
	// backed by L3.
	h := New(small())
	r := rng.New(3)
	for i := 0; i < 20000; i++ {
		h.Access(r.Uint64n(2048)*64, r.Bool(0.4), 1)
	}
	total, backed := 0, 0
	h.l1.ForEach(func(e *cache.Entry[struct{}]) {
		total++
		if _, ok := h.l3.Probe(e.Addr); ok {
			backed++
		}
	})
	h.l2.ForEach(func(e *cache.Entry[struct{}]) {
		total++
		if _, ok := h.l3.Probe(e.Addr); ok {
			backed++
		}
	})
	if total == 0 || float64(backed)/float64(total) < 0.9 {
		t.Fatalf("inclusion degraded: %d/%d upper lines L3-backed", backed, total)
	}
}

func TestMissRateOrdering(t *testing.T) {
	// A working set inside L3 must have a far lower miss rate than one
	// 16x beyond it.
	run := func(lines uint64) float64 {
		h := New(small())
		r := rng.New(9)
		for i := 0; i < 30000; i++ {
			h.Access(r.Uint64n(lines)*64, r.Bool(0.3), 1)
		}
		return h.Stats().MissRate()
	}
	smallSet := run(128)  // 8 KiB, fits L3
	largeSet := run(8192) // 512 KiB, far beyond
	if smallSet >= largeSet/4 {
		t.Fatalf("miss rates do not separate: fits=%.4f overflows=%.4f", smallSet, largeSet)
	}
}

func TestTableIDefaults(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1Bytes != 32<<10 || cfg.L1Ways != 2 {
		t.Fatalf("L1 %+v", cfg)
	}
	if cfg.L2Bytes != 512<<10 || cfg.L2Ways != 8 {
		t.Fatalf("L2 %+v", cfg)
	}
	if cfg.L3Bytes != 2<<20 || cfg.L3Ways != 8 {
		t.Fatalf("L3 %+v", cfg)
	}
}

func TestWriteBackStreamConservation(t *testing.T) {
	// Every dirtied line is either still cached at the end or was written
	// back exactly as many times as it was re-dirtied after eviction; at
	// minimum, after Flush, dirtied-set == union(write-backs).
	h := New(small())
	r := rng.New(17)
	dirtied := map[uint64]bool{}
	written := map[uint64]bool{}
	for i := 0; i < 30000; i++ {
		addr := r.Uint64n(4096) * 64
		w := r.Bool(0.5)
		if w {
			dirtied[addr] = true
		}
		for _, op := range h.Access(addr, w, 1) {
			if op.IsWrite {
				written[op.Addr] = true
			}
		}
	}
	for _, op := range h.Flush() {
		written[op.Addr] = true
	}
	for addr := range dirtied {
		if !written[addr] {
			t.Fatalf("dirtied line %#x never written back", addr)
		}
	}
	for addr := range written {
		if !dirtied[addr] {
			t.Fatalf("write-back of never-dirtied line %#x", addr)
		}
	}
}

func BenchmarkAccess(b *testing.B) {
	h := New(DefaultConfig())
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		h.Access(r.Uint64n(1<<16)*64, i&3 == 0, 4)
	}
}
