// Package cpu models the processor-side cache hierarchy of Table I —
// 32 KB 2-way private L1d, 512 KB 8-way shared L2, 2 MB 8-way shared L3,
// 64 B blocks, LRU, write-back — the part of the Gem5 configuration that
// turns a program's raw access stream into the LLC-miss stream the memory
// controller sees.
//
// The evaluation workloads (internal/trace) are synthesised directly at
// the LLC-miss level, which keeps the figures' calibration independent of
// this package (DESIGN.md, substitutions). The hierarchy exists to close
// the Table I inventory and to validate that substitution: filtering a raw
// stream through these caches produces a miss stream with the same
// qualitative behaviour the generators emit directly (see the tests).
package cpu

import (
	"steins/internal/cache"
	"steins/internal/nvmem"
)

// Config sizes the three levels; defaults are Table I.
type Config struct {
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int
	L3Bytes, L3Ways int
	// Latencies in cycles, used to accumulate the compute gap between
	// consecutive memory-level operations.
	L1HitCycles, L2HitCycles, L3HitCycles uint64
}

// DefaultConfig returns the Table I hierarchy.
func DefaultConfig() Config {
	return Config{
		L1Bytes: 32 << 10, L1Ways: 2,
		L2Bytes: 512 << 10, L2Ways: 8,
		L3Bytes: 2 << 20, L3Ways: 8,
		L1HitCycles: 2, L2HitCycles: 12, L3HitCycles: 30,
	}
}

// MemOp is one operation that escapes the hierarchy to main memory.
type MemOp struct {
	Addr    uint64
	IsWrite bool // write-back of a dirty LLC victim
	Gap     uint64
}

// Stats counts hierarchy activity.
type Stats struct {
	Accesses   uint64
	L1Hits     uint64
	L2Hits     uint64
	L3Hits     uint64
	Misses     uint64 // accesses that reached memory
	WriteBacks uint64 // dirty LLC victims written to memory
}

// MissRate returns the fraction of accesses that reached memory.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Hierarchy is the three-level write-back cache stack. It is inclusive:
// a line resides in every level from its highest point of presence down.
// Not safe for concurrent use.
type Hierarchy struct {
	cfg        Config
	l1, l2, l3 *cache.Cache[struct{}]
	stats      Stats
	pendingGap uint64
}

// New builds the hierarchy.
func New(cfg Config) *Hierarchy {
	return &Hierarchy{
		cfg: cfg,
		l1:  cache.New[struct{}](cfg.L1Bytes, cfg.L1Ways, nvmem.LineSize),
		l2:  cache.New[struct{}](cfg.L2Bytes, cfg.L2Ways, nvmem.LineSize),
		l3:  cache.New[struct{}](cfg.L3Bytes, cfg.L3Ways, nvmem.LineSize),
	}
}

// Stats returns a snapshot.
func (h *Hierarchy) Stats() Stats { return h.stats }

// Access runs one CPU load/store through the hierarchy, returning the
// memory-level operations it causes (zero on hits, a fill read and/or
// dirty write-backs on an LLC miss). gap is the compute time since the
// previous access; it accumulates across hits so the emitted MemOps carry
// the full inter-miss distance.
func (h *Hierarchy) Access(addr uint64, isWrite bool, gap uint64) []MemOp {
	addr &^= uint64(nvmem.LineSize - 1)
	h.stats.Accesses++
	h.pendingGap += gap

	if e, ok := h.l1.Lookup(addr); ok {
		h.stats.L1Hits++
		h.pendingGap += h.cfg.L1HitCycles
		e.Dirty = e.Dirty || isWrite
		return nil
	}
	var out []MemOp
	if _, ok := h.l2.Lookup(addr); ok {
		h.stats.L2Hits++
		h.pendingGap += h.cfg.L2HitCycles
	} else if _, ok := h.l3.Lookup(addr); ok {
		h.stats.L3Hits++
		h.pendingGap += h.cfg.L3HitCycles
		h.fillL2(addr, &out)
	} else {
		// LLC miss: fetch from memory, fill all levels.
		h.stats.Misses++
		out = append(out, MemOp{Addr: addr, IsWrite: false, Gap: h.take()})
		h.fillL3(addr, &out)
		h.fillL2(addr, &out)
	}
	h.fillL1(addr, isWrite, &out)
	return out
}

// take consumes the accumulated gap for the next emitted MemOp.
func (h *Hierarchy) take() uint64 {
	g := h.pendingGap
	h.pendingGap = 0
	if g == 0 {
		g = 1
	}
	return g
}

// fillL1 inserts into L1; a dirty victim spills into L2.
func (h *Hierarchy) fillL1(addr uint64, dirty bool, out *[]MemOp) {
	_, victim, evicted := h.l1.Insert(addr, struct{}{}, dirty)
	if evicted && victim.Dirty {
		if e, ok := h.l2.Probe(victim.Addr); ok {
			e.Dirty = true
		} else {
			// Inclusion was broken by an L2 eviction; spill to L3.
			h.spillL3(victim.Addr, out)
		}
	}
}

// fillL2 inserts into L2; a dirty victim spills into L3.
func (h *Hierarchy) fillL2(addr uint64, out *[]MemOp) {
	if _, ok := h.l2.Probe(addr); ok {
		return
	}
	_, victim, evicted := h.l2.Insert(addr, struct{}{}, false)
	if evicted {
		// Invalidate the inclusive copy below.
		if e, ok := h.l1.Probe(victim.Addr); ok {
			victim.Dirty = victim.Dirty || e.Dirty
			h.l1.Invalidate(victim.Addr)
		}
		if victim.Dirty {
			h.spillL3(victim.Addr, out)
		}
	}
}

// fillL3 inserts into L3; a dirty victim is written back to memory.
func (h *Hierarchy) fillL3(addr uint64, out *[]MemOp) {
	if _, ok := h.l3.Probe(addr); ok {
		return
	}
	_, victim, evicted := h.l3.Insert(addr, struct{}{}, false)
	if evicted {
		// Enforce inclusion: drop the line from the levels above,
		// absorbing their dirtiness.
		if e, ok := h.l1.Probe(victim.Addr); ok {
			victim.Dirty = victim.Dirty || e.Dirty
			h.l1.Invalidate(victim.Addr)
		}
		if e, ok := h.l2.Probe(victim.Addr); ok {
			victim.Dirty = victim.Dirty || e.Dirty
			h.l2.Invalidate(victim.Addr)
		}
		if victim.Dirty {
			h.stats.WriteBacks++
			*out = append(*out, MemOp{Addr: victim.Addr, IsWrite: true, Gap: h.take()})
		}
	}
}

// spillL3 marks addr dirty in L3, filling it if absent.
func (h *Hierarchy) spillL3(addr uint64, out *[]MemOp) {
	if e, ok := h.l3.Probe(addr); ok {
		e.Dirty = true
		return
	}
	h.fillL3(addr, out)
	if e, ok := h.l3.Probe(addr); ok {
		e.Dirty = true
	}
}

// Flush drains every dirty line to memory (end-of-run write-back).
func (h *Hierarchy) Flush() []MemOp {
	var out []MemOp
	seen := map[uint64]bool{}
	emit := func(addr uint64, dirty bool) {
		if dirty && !seen[addr] {
			seen[addr] = true
			h.stats.WriteBacks++
			out = append(out, MemOp{Addr: addr, IsWrite: true, Gap: h.take()})
		}
	}
	h.l1.ForEach(func(e *cache.Entry[struct{}]) { emit(e.Addr, e.Dirty) })
	h.l2.ForEach(func(e *cache.Entry[struct{}]) { emit(e.Addr, e.Dirty) })
	h.l3.ForEach(func(e *cache.Entry[struct{}]) { emit(e.Addr, e.Dirty) })
	h.l1.Clear()
	h.l2.Clear()
	h.l3.Clear()
	return out
}
