package cache

import (
	"testing"
	"testing/quick"
)

func newTest() *Cache[int] {
	// 4 sets x 2 ways x 64 B lines.
	return New[int](512, 2, 64)
}

func TestGeometry(t *testing.T) {
	c := New[int](256*1024, 8, 64)
	if c.Sets() != 512 || c.Ways() != 8 || c.Capacity() != 4096 {
		t.Fatalf("Table I metadata cache geometry wrong: %d sets, %d ways, %d lines",
			c.Sets(), c.Ways(), c.Capacity())
	}
}

func TestMissThenHit(t *testing.T) {
	c := newTest()
	if _, ok := c.Lookup(64); ok {
		t.Fatal("lookup in empty cache hit")
	}
	c.Insert(64, 7, false)
	e, ok := c.Lookup(64)
	if !ok || e.Payload != 7 {
		t.Fatalf("lookup after insert: ok=%v payload=%v", ok, e)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", s)
	}
}

func TestPayloadMutationThroughPointer(t *testing.T) {
	c := newTest()
	e, _, _ := c.Insert(0, 1, false)
	e.Payload = 42
	e.Dirty = true
	got, _ := c.Lookup(0)
	if got.Payload != 42 || !got.Dirty {
		t.Fatal("mutation through entry pointer not visible")
	}
}

func TestLRUEviction(t *testing.T) {
	c := newTest() // 2 ways
	// Three addresses in the same set (stride = sets*64 = 256).
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a, 1, false)
	c.Insert(b, 2, false)
	c.Lookup(a) // a is now most recent; b is LRU
	_, victim, evicted := c.Insert(d, 3, false)
	if !evicted || victim.Addr != b {
		t.Fatalf("victim = %+v (evicted=%v), want addr %d", victim, evicted, b)
	}
	if _, ok := c.Probe(a); !ok {
		t.Fatal("recently used line was evicted")
	}
}

func TestDirtyEvictionReturnsState(t *testing.T) {
	c := newTest()
	e, _, _ := c.Insert(0, 9, false)
	e.Dirty = true
	c.Insert(256, 1, false)
	_, victim, evicted := c.Insert(512, 2, false)
	if !evicted || victim.Addr != 0 || !victim.Dirty || victim.Payload != 9 {
		t.Fatalf("dirty victim state lost: %+v evicted=%v", victim, evicted)
	}
	s := c.Stats()
	if s.Evictions != 1 || s.DirtyEvictions != 1 {
		t.Fatalf("eviction stats %+v", s)
	}
}

func TestInsertResidentPanics(t *testing.T) {
	c := newTest()
	c.Insert(0, 1, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(0, 2, false)
}

func TestProbeDoesNotTouchLRUOrStats(t *testing.T) {
	c := newTest()
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Insert(a, 1, false)
	c.Insert(b, 2, false)
	before := c.Stats()
	c.Probe(a) // must NOT refresh a
	if c.Stats() != before {
		t.Fatal("probe changed stats")
	}
	_, victim, _ := c.Insert(d, 3, false)
	if victim.Addr != a {
		t.Fatalf("probe refreshed recency: victim %d, want %d", victim.Addr, a)
	}
}

func TestInvalidate(t *testing.T) {
	c := newTest()
	c.Insert(0, 1, false)
	if !c.Invalidate(0) {
		t.Fatal("invalidate of resident line returned false")
	}
	if c.Invalidate(0) {
		t.Fatal("invalidate of absent line returned true")
	}
	if _, ok := c.Probe(0); ok {
		t.Fatal("line survives invalidate")
	}
	// The freed way must be reused without evicting.
	_, _, evicted := c.Insert(256, 2, false)
	if evicted {
		t.Fatal("insert after invalidate evicted")
	}
}

func TestForEachOrderAndCount(t *testing.T) {
	c := newTest()
	addrs := []uint64{0, 64, 128, 192, 256}
	for i, a := range addrs {
		c.Insert(a, i, false)
	}
	var seen []uint64
	c.ForEach(func(e *Entry[int]) { seen = append(seen, e.Addr) })
	if len(seen) != len(addrs) {
		t.Fatalf("ForEach visited %d, want %d", len(seen), len(addrs))
	}
	if c.Len() != len(addrs) {
		t.Fatalf("Len = %d", c.Len())
	}
	// Determinism: two traversals identical.
	var again []uint64
	c.ForEach(func(e *Entry[int]) { again = append(again, e.Addr) })
	for i := range seen {
		if seen[i] != again[i] {
			t.Fatal("ForEach order not deterministic")
		}
	}
}

func TestEntriesInSet(t *testing.T) {
	c := newTest()
	c.Insert(0, 1, false)   // set 0
	c.Insert(256, 2, false) // set 0
	c.Insert(64, 3, false)  // set 1
	n := 0
	c.EntriesInSet(0, func(e *Entry[int]) {
		n++
		if e.Addr != 0 && e.Addr != 256 {
			t.Fatalf("wrong entry %d in set 0", e.Addr)
		}
	})
	if n != 2 {
		t.Fatalf("set 0 has %d entries, want 2", n)
	}
}

func TestClear(t *testing.T) {
	c := newTest()
	for i := uint64(0); i < 8; i++ {
		c.Insert(i*64, int(i), true)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
}

func TestSetMapping(t *testing.T) {
	c := New[int](512, 2, 64) // 4 sets
	for _, tc := range []struct {
		addr uint64
		set  int
	}{{0, 0}, {64, 1}, {128, 2}, {192, 3}, {256, 0}, {320, 1}} {
		if got := c.SetOf(tc.addr); got != tc.set {
			t.Errorf("SetOf(%d) = %d, want %d", tc.addr, got, tc.set)
		}
	}
}

func TestUnalignedPanics(t *testing.T) {
	c := newTest()
	defer func() {
		if recover() == nil {
			t.Fatal("unaligned address did not panic")
		}
	}()
	c.Lookup(3)
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New[int](0, 2, 64) },
		func() { New[int](100, 2, 64) }, // not multiple of ways*line
		func() { New[int](512, 0, 64) },
		func() { New[int](512, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad geometry did not panic")
				}
			}()
			f()
		}()
	}
}

func TestHitRate(t *testing.T) {
	var s Stats
	if s.HitRate() != 0 {
		t.Fatal("empty HitRate not 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.HitRate() != 0.75 {
		t.Fatalf("HitRate = %v", s.HitRate())
	}
}

// Property: the cache never holds more than Capacity lines, never holds the
// same address twice, and Lookup-after-Insert always hits until eviction.
func TestPropertyResidencyInvariants(t *testing.T) {
	c := New[uint64](1024, 4, 64) // 4 sets x 4 ways
	f := func(ops []uint16) bool {
		for _, op := range ops {
			addr := uint64(op%64) * 64
			if e, ok := c.Lookup(addr); ok {
				e.Payload = addr
				continue
			}
			c.Insert(addr, addr, false)
		}
		if c.Len() > c.Capacity() {
			return false
		}
		seen := map[uint64]bool{}
		dup := false
		c.ForEach(func(e *Entry[uint64]) {
			if seen[e.Addr] {
				dup = true
			}
			seen[e.Addr] = true
			if e.Payload != e.Addr {
				dup = true // payload corruption
			}
		})
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New[int](256*1024, 8, 64)
	for i := 0; i < c.Capacity(); i++ {
		c.Insert(uint64(i)*64, i, false)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%c.Capacity()) * 64)
	}
}

func BenchmarkInsertEvict(b *testing.B) {
	c := New[int](256*1024, 8, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 64 % (1 << 30)
		if _, ok := c.Lookup(addr); !ok {
			c.Insert(addr, i, true)
		}
	}
}

func TestSlotStableAndUnique(t *testing.T) {
	c := New[int](1024, 4, 64) // 4 sets x 4 ways
	seen := map[int]uint64{}
	for i := 0; i < c.Capacity(); i++ {
		addr := uint64(i) * 64
		e, _, _ := c.Insert(addr, i, false)
		if prev, dup := seen[e.Slot()]; dup {
			t.Fatalf("slot %d reused by %d and %d", e.Slot(), prev, addr)
		}
		if e.Slot() < 0 || e.Slot() >= c.Capacity() {
			t.Fatalf("slot %d out of range", e.Slot())
		}
		seen[e.Slot()] = addr
	}
	// Replacing an entry reuses the victim's slot.
	e, victim, evicted := c.Insert(uint64(c.Capacity())*64, 0, false)
	if !evicted {
		t.Fatal("full cache insert did not evict")
	}
	if seen[e.Slot()] != victim.Addr {
		t.Fatalf("new entry slot %d does not match victim's", e.Slot())
	}
}
