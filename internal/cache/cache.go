// Package cache implements a set-associative write-back cache with LRU
// replacement, the structure used for the metadata cache in the memory
// controller (Table I: 256 KB, 8-way, 64 B blocks) as well as for the
// smaller ADR-resident record-line and bitmap-line caches.
//
// The cache is generic over its payload so the metadata cache can hold
// decoded SIT nodes while the record cache holds raw lines. Replacement
// decisions and statistics live here; write-back policy (what to do with a
// dirty victim) belongs to the owner via the value returned from Insert.
package cache

import "fmt"

// Entry is one cache line. Owners mutate Payload and Dirty through the
// pointer returned by Lookup/Insert; Addr and bookkeeping are read-only.
type Entry[P any] struct {
	Addr    uint64
	Payload P
	Dirty   bool
	valid   bool
	stamp   uint64
	slot    int
}

// Slot returns the entry's stable position (set*ways + way). Recovery
// schemes key per-cache-line NVM state — Steins record entries, ASIT
// shadow-table slots — by this index.
func (e *Entry[P]) Slot() int { return e.slot }

// Stats counts cache activity.
type Stats struct {
	Hits           uint64
	Misses         uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// Merge folds another controller's cache counters into s; multi-channel
// runs sum per-channel metadata caches into one system-level hit rate.
func (s *Stats) Merge(o Stats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.DirtyEvictions += o.DirtyEvictions
}

// HitRate returns hits/(hits+misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache is a set-associative LRU cache. Addresses must be multiples of the
// configured line size. Not safe for concurrent use.
type Cache[P any] struct {
	lineSize uint64
	ways     int
	sets     [][]Entry[P]
	stamp    uint64
	stats    Stats
}

// New creates a cache of sizeBytes capacity with the given associativity
// and line size. sizeBytes must be a multiple of ways*lineSize.
func New[P any](sizeBytes, ways, lineSize int) *Cache[P] {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		panic("cache: size, ways and line size must be positive")
	}
	if sizeBytes%(ways*lineSize) != 0 {
		panic(fmt.Sprintf("cache: size %d not a multiple of ways*lineSize (%d)", sizeBytes, ways*lineSize))
	}
	numSets := sizeBytes / (ways * lineSize)
	sets := make([][]Entry[P], numSets)
	backing := make([]Entry[P], numSets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &Cache[P]{lineSize: uint64(lineSize), ways: ways, sets: sets}
}

// Sets returns the number of sets.
func (c *Cache[P]) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache[P]) Ways() int { return c.ways }

// Capacity returns the number of lines the cache can hold.
func (c *Cache[P]) Capacity() int { return len(c.sets) * c.ways }

// Stats returns a snapshot of the counters.
func (c *Cache[P]) Stats() Stats { return c.stats }

// ResetStats clears counters without evicting anything.
func (c *Cache[P]) ResetStats() { c.stats = Stats{} }

// SetOf returns the set index addr maps to.
func (c *Cache[P]) SetOf(addr uint64) int {
	c.checkAddr(addr)
	return int((addr / c.lineSize) % uint64(len(c.sets)))
}

func (c *Cache[P]) checkAddr(addr uint64) {
	if addr%c.lineSize != 0 {
		panic(fmt.Sprintf("cache: unaligned address %#x (line size %d)", addr, c.lineSize))
	}
}

// Lookup returns the entry holding addr, updating recency on a hit. The
// returned pointer stays valid until the entry is evicted.
func (c *Cache[P]) Lookup(addr uint64) (*Entry[P], bool) {
	set := c.sets[c.SetOf(addr)]
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			c.stamp++
			set[i].stamp = c.stamp
			c.stats.Hits++
			return &set[i], true
		}
	}
	c.stats.Misses++
	return nil, false
}

// Probe returns the entry holding addr without touching recency or
// hit/miss counters; schemes use it to inspect residency.
func (c *Cache[P]) Probe(addr uint64) (*Entry[P], bool) {
	set := c.sets[c.SetOf(addr)]
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			return &set[i], true
		}
	}
	return nil, false
}

// Insert places addr into the cache and returns a pointer to its entry.
// If a valid line had to be displaced, the victim's pre-eviction state is
// returned with evicted=true so the owner can write it back. Inserting an
// address that is already resident panics: owners must Lookup first.
func (c *Cache[P]) Insert(addr uint64, payload P, dirty bool) (entry *Entry[P], victim Entry[P], evicted bool) {
	if _, ok := c.Probe(addr); ok {
		panic(fmt.Sprintf("cache: insert of resident address %#x", addr))
	}
	setIdx := c.SetOf(addr)
	set := c.sets[setIdx]
	way := -1
	for i := range set {
		if !set[i].valid {
			way = i
			break
		}
	}
	if way == -1 {
		// Evict the least recently used way.
		way = 0
		for i := 1; i < len(set); i++ {
			if set[i].stamp < set[way].stamp {
				way = i
			}
		}
		victim = set[way]
		evicted = true
		c.stats.Evictions++
		if victim.Dirty {
			c.stats.DirtyEvictions++
		}
	}
	c.stamp++
	set[way] = Entry[P]{
		Addr: addr, Payload: payload, Dirty: dirty,
		valid: true, stamp: c.stamp, slot: setIdx*c.ways + way,
	}
	return &set[way], victim, evicted
}

// PlaceAt installs addr at the exact position slot (set*ways + way),
// bypassing LRU victim selection. Recovery uses it to rebuild a pre-crash
// cache layout from per-slot NVM tracking state, which by construction fits
// without evictions. The slot must lie in addr's set and must not hold a
// different valid line, and addr must not be resident elsewhere; violations
// panic, as they mean the caller's tracking state is inconsistent.
func (c *Cache[P]) PlaceAt(slot int, addr uint64, payload P, dirty bool) *Entry[P] {
	setIdx, way := slot/c.ways, slot%c.ways
	if setIdx != c.SetOf(addr) {
		panic(fmt.Sprintf("cache: PlaceAt slot %d not in set of address %#x", slot, addr))
	}
	if e, ok := c.Probe(addr); ok && e.slot != slot {
		panic(fmt.Sprintf("cache: PlaceAt of resident address %#x", addr))
	}
	set := c.sets[setIdx]
	if set[way].valid && set[way].Addr != addr {
		panic(fmt.Sprintf("cache: PlaceAt slot %d occupied by %#x", slot, set[way].Addr))
	}
	c.stamp++
	set[way] = Entry[P]{
		Addr: addr, Payload: payload, Dirty: dirty,
		valid: true, stamp: c.stamp, slot: slot,
	}
	return &set[way]
}

// Invalidate drops addr from the cache without write-back and reports
// whether it was resident.
func (c *Cache[P]) Invalidate(addr uint64) bool {
	set := c.sets[c.SetOf(addr)]
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			set[i] = Entry[P]{}
			return true
		}
	}
	return false
}

// ForEach visits every valid entry in deterministic (set, way) order. The
// callback may mutate the entry's Payload and Dirty fields.
func (c *Cache[P]) ForEach(fn func(*Entry[P])) {
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				fn(&c.sets[s][w])
			}
		}
	}
}

// EntriesInSet visits the valid entries of one set in way order; STAR's
// set-MAC computation iterates sets this way before sorting by address.
func (c *Cache[P]) EntriesInSet(set int, fn func(*Entry[P])) {
	for w := range c.sets[set] {
		if c.sets[set][w].valid {
			fn(&c.sets[set][w])
		}
	}
}

// Clear invalidates every line; crash modelling uses it to drop volatile
// controller state.
func (c *Cache[P]) Clear() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w] = Entry[P]{}
		}
	}
}

// Len returns the number of valid lines.
func (c *Cache[P]) Len() int {
	n := 0
	c.ForEach(func(*Entry[P]) { n++ })
	return n
}

// DirtyLen returns the number of valid dirty lines; the metrics sampler
// probes it for the cache's dirty fraction.
func (c *Cache[P]) DirtyLen() int {
	n := 0
	c.ForEach(func(e *Entry[P]) {
		if e.Dirty {
			n++
		}
	})
	return n
}
