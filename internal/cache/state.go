package cache

import "fmt"

// EntryState is the serializable image of one valid cache line, including
// the replacement bookkeeping (Stamp, Slot) that Lookup/Insert normally
// manage. Snapshots must carry it so a restored cache makes the same future
// LRU victim choices as the original.
type EntryState[P any] struct {
	Addr    uint64
	Slot    int
	Stamp   uint64
	Dirty   bool
	Payload P
}

// State is the full serializable image of a cache: every valid line plus
// the global recency stamp and the counters. Entries are listed in
// deterministic (set, way) order.
type State[P any] struct {
	Stamp   uint64
	Stats   Stats
	Entries []EntryState[P]
}

// State captures the cache contents, LRU stamps and statistics. The
// returned payloads alias the live entries; callers that need isolation
// (e.g. pointer payloads) must deep-copy them before mutating the cache.
func (c *Cache[P]) State() State[P] {
	st := State[P]{Stamp: c.stamp, Stats: c.stats}
	c.ForEach(func(e *Entry[P]) {
		st.Entries = append(st.Entries, EntryState[P]{
			Addr: e.Addr, Slot: e.slot, Stamp: e.stamp, Dirty: e.Dirty, Payload: e.Payload,
		})
	})
	return st
}

// SetState clears the cache and rebuilds it bit-exactly from a captured
// State: every line lands in its original slot with its original recency
// stamp, and the global stamp and counters are restored, so subsequent
// hits, misses and evictions replay identically. Geometry mismatches and
// slot conflicts panic: they mean the state belongs to a different cache.
func (c *Cache[P]) SetState(st State[P]) {
	c.Clear()
	for _, e := range st.Entries {
		setIdx, way := e.Slot/c.ways, e.Slot%c.ways
		if setIdx < 0 || setIdx >= len(c.sets) || way < 0 || way >= c.ways {
			panic(fmt.Sprintf("cache: SetState slot %d outside %d sets x %d ways", e.Slot, len(c.sets), c.ways))
		}
		if setIdx != c.SetOf(e.Addr) {
			panic(fmt.Sprintf("cache: SetState slot %d not in set of address %#x", e.Slot, e.Addr))
		}
		if c.sets[setIdx][way].valid {
			panic(fmt.Sprintf("cache: SetState slot %d restored twice", e.Slot))
		}
		c.sets[setIdx][way] = Entry[P]{
			Addr: e.Addr, Payload: e.Payload, Dirty: e.Dirty,
			valid: true, stamp: e.Stamp, slot: e.Slot,
		}
	}
	c.stamp = st.Stamp
	c.stats = st.Stats
}
