// Snapshot support: SCUE's only state beyond the shared controller
// structures is the on-chip NV Recovery_root register.

package scue

import (
	"encoding/binary"
	"fmt"
)

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], p.recoveryRoot)
	return b[:], nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	if len(data) != 8 {
		return fmt.Errorf("scue: state is %d bytes, want 8", len(data))
	}
	p.recoveryRoot = binary.LittleEndian.Uint64(data)
	return nil
}
