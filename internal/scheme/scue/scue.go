// Package scue implements the SCUE baseline (Huang & Hua, HPCA'23).
// SCUE keeps only a Recovery_root — the running sum of every leaf-counter
// increment — in an on-chip non-volatile register, so its runtime cost is
// near zero; but recovery must reconstruct the ENTIRE tree from all leaf
// nodes, which scales with memory capacity rather than metadata cache size
// ("hour-scale for TB memory", §II-D). The paper therefore excludes SCUE
// from its performance comparison; this package exists to reproduce that
// motivation quantitatively.
//
// Like Steins, SCUE derives parent counters by summation, which is what
// makes bottom-up reconstruction possible.
package scue

import (
	"fmt"

	"steins/internal/cache"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Policy is the SCUE scheme.
type Policy struct {
	c *memctrl.Controller
	// recoveryRoot is the on-chip NV register: total increments applied to
	// leaf counters, i.e. the expected sum of all leaf FValues.
	recoveryRoot uint64
}

// Factory builds a SCUE policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy { return &Policy{c: c} }

// Name implements memctrl.Policy.
func (p *Policy) Name() string {
	if p.c.Config().SplitLeaf {
		return "SCUE-SC"
	}
	return "SCUE-GC"
}

// CounterGen implements memctrl.Policy: SCUE generates parent counters by
// summation so the tree can be rebuilt from the leaves.
func (p *Policy) CounterGen() bool { return true }

// RecoveryRoot returns the register value (tests use it).
func (p *Policy) RecoveryRoot() uint64 { return p.recoveryRoot }

// OnModify implements memctrl.Policy: leaf increments fold into the
// Recovery_root; everything else is free — SCUE's high runtime performance.
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], _ bool, delta uint64) uint64 {
	if e.Payload.Level == 0 {
		p.recoveryRoot += delta
	}
	return 1
}

// EvictDirty implements memctrl.Policy: generated-counter write-back with
// the parent fetched on the critical path (SCUE has no deferral buffer).
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	c := p.c
	geo := &c.Layout().Geo
	newPC := victim.FValue()
	cycles := c.SealAndWriteNode(victim, newPC)
	if geo.IsTop(victim.Level) {
		c.Root().SetCounter(victim.Index, newPC)
		return cycles, nil
	}
	pl, pi, slot := geo.Parent(victim.Level, victim.Index)
	pe, pcyc, err := c.FetchNode(pl, pi)
	cycles += pcyc
	if err != nil {
		return cycles, err
	}
	delta := newPC - pe.Payload.Counter(slot)
	cycles += c.SetParentCounter(pe, slot, newPC, delta)
	return cycles, nil
}

// BeforeRead implements memctrl.Policy.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy.
func (p *Policy) ParentCounterOverride(int, uint64) (uint64, bool) { return 0, false }

// OnCrash implements memctrl.Policy: only the register survives.
func (p *Policy) OnCrash() {}

// Recover implements memctrl.Policy: rebuild the whole tree bottom-up.
// Every leaf is restored from its covered data blocks (there is no dirty
// tracking, so every leaf might be stale), the total leaf sum is compared
// with Recovery_root, and every interior node is recomputed by summation.
// Cost scales with the full tree, not the metadata cache.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	rep := memctrl.RecoveryReport{Scheme: p.Name()}
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	degraded := p.c.Config().DegradedRecovery

	prev := make([]*sit.Node, geo.LevelNodes[0])
	var total uint64
	for idx := uint64(0); idx < geo.LevelNodes[0]; idx++ {
		rep.NVMReads++ // stale leaf
		stale := p.c.StaleNode(0, idx)
		node := &sit.Node{Level: 0, Index: idx, IsSplit: geo.SplitLeaf}
		var lerr error
		if node.IsSplit {
			lerr = p.recoverSplitLeaf(&rep, node, stale)
		} else {
			for i := 0; i < int(geo.LeafCover); i++ {
				daddr := geo.DataAddr(idx, i)
				rep.NVMReads++
				ct := [64]byte(p.c.Device().Peek(daddr))
				ctr, macOps, ok := eng.RecoverCounterGC(&ct, daddr, p.c.Tag(daddr), stale.Counter(i))
				rep.MACOps += macOps
				if !ok {
					lerr = memctrl.TamperData(daddr, "during SCUE rebuild")
					break
				}
				node.SetCounter(i, ctr)
			}
		}
		if lerr != nil {
			if degraded {
				// The leaf's covered blocks cannot all be matched to a
				// counter: fence off its coverage and carry the stale
				// (authentic but possibly old) counters so the interior
				// summation stays well-defined.
				p.c.QuarantineSubtree(0, idx, &rep.Degradation)
				prev[idx] = stale
				total += stale.FValue()
				continue
			}
			return rep, lerr
		}
		total += node.FValue()
		prev[idx] = node
	}
	// With quarantined leaves in the sum, their true counters are unknown
	// and the Recovery_root equality cannot be checked exactly.
	if total != p.recoveryRoot && len(rep.Degradation.Quarantined) == 0 {
		return rep, memctrl.ReplayAt("leaf level", 0, 0,
			fmt.Sprintf("leaf sum %d != Recovery_root %d", total, p.recoveryRoot))
	}

	// Rebuild interior levels by summation and write everything back.
	levels := make([][]*sit.Node, geo.Levels)
	levels[0] = prev
	for k := 1; k < geo.Levels; k++ {
		levels[k] = make([]*sit.Node, geo.LevelNodes[k])
		for idx := range levels[k] {
			n := &sit.Node{Level: k, Index: uint64(idx)}
			for i := 0; i < counter.Arity; i++ {
				ci := uint64(idx)*counter.Arity + uint64(i)
				if ci < uint64(len(levels[k-1])) {
					n.SetCounter(i, levels[k-1][ci].FValue())
				}
			}
			levels[k][idx] = n
		}
	}
	for k := 0; k < geo.Levels; k++ {
		for idx, n := range levels[k] {
			n.SetHMAC(p.c.NodeMAC(n, n.FValue()))
			rep.MACOps++
			p.c.Device().Poke(geo.NodeAddr(k, uint64(idx)), nvmem.Line(n.Encode()))
			rep.NVMWrites++
			rep.NodesRecovered++
			if geo.IsTop(k) {
				p.c.Root().SetCounter(uint64(idx), n.FValue())
			}
			p.c.FaultEvent(memctrl.EvRecoveryStep, geo.NodeAddr(k, uint64(idx)))
		}
	}

	cfg := p.c.Config()
	rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
		float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
		float64(rep.MACOps)*cfg.RecoveryHashNS
	return rep, nil
}

func (p *Policy) recoverSplitLeaf(rep *memctrl.RecoveryReport, node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	major := stale.Split.Major
	have := false
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		rep.NVMReads++
		ct := [64]byte(p.c.Device().Peek(daddr))
		tag := p.c.Tag(daddr)
		if !tag.Written {
			continue
		}
		if !have {
			major, have = tag.Hint, true
		} else if tag.Hint != major {
			return memctrl.ReplayAt("split leaf", 0, node.Index, "inconsistent majors")
		}
		m, minor, macOps, ok := eng.RecoverCounterSC(&ct, daddr, tag, stale.Split.Minor[i])
		rep.MACOps += macOps
		if !ok || m != major {
			return memctrl.TamperData(daddr, "during SCUE rebuild")
		}
		node.Split.Minor[i] = minor
	}
	node.Split.Major = major
	return nil
}

// Storage implements memctrl.Policy: just the tree and an 8 B register.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		OnChipNVBytes:  8,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}
