// Package scue implements the SCUE baseline (Huang & Hua, HPCA'23).
// SCUE keeps only a Recovery_root — the running sum of every leaf-counter
// increment — in an on-chip non-volatile register, so its runtime cost is
// near zero; but recovery must reconstruct the ENTIRE tree from all leaf
// nodes, which scales with memory capacity rather than metadata cache size
// ("hour-scale for TB memory", §II-D). The paper therefore excludes SCUE
// from its performance comparison; this package exists to reproduce that
// motivation quantitatively.
//
// Like Steins, SCUE derives parent counters by summation, which is what
// makes bottom-up reconstruction possible.
package scue

import (
	"steins/internal/cache"
	"steins/internal/memctrl"
	"steins/internal/scheme/rebuild"
	"steins/internal/sit"
)

// Policy is the SCUE scheme.
type Policy struct {
	c *memctrl.Controller
	// recoveryRoot is the on-chip NV register: total increments applied to
	// leaf counters, i.e. the expected sum of all leaf FValues.
	recoveryRoot uint64
}

// Factory builds a SCUE policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy { return &Policy{c: c} }

// Name implements memctrl.Policy.
func (p *Policy) Name() string {
	if p.c.Config().SplitLeaf {
		return "SCUE-SC"
	}
	return "SCUE-GC"
}

// CounterGen implements memctrl.Policy: SCUE generates parent counters by
// summation so the tree can be rebuilt from the leaves.
func (p *Policy) CounterGen() bool { return true }

// RecoveryRoot returns the register value (tests use it).
func (p *Policy) RecoveryRoot() uint64 { return p.recoveryRoot }

// OnModify implements memctrl.Policy: leaf increments fold into the
// Recovery_root; everything else is free — SCUE's high runtime performance.
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], _ bool, delta uint64) uint64 {
	if e.Payload.Level == 0 {
		p.recoveryRoot += delta
	}
	return 1
}

// EvictDirty implements memctrl.Policy: generated-counter write-back with
// the parent fetched on the critical path (SCUE has no deferral buffer).
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	c := p.c
	geo := &c.Layout().Geo
	newPC := victim.FValue()
	cycles := c.SealAndWriteNode(victim, newPC)
	if geo.IsTop(victim.Level) {
		c.Root().SetCounter(victim.Index, newPC)
		return cycles, nil
	}
	pl, pi, slot := geo.Parent(victim.Level, victim.Index)
	pe, pcyc, err := c.FetchNode(pl, pi)
	cycles += pcyc
	if err != nil {
		return cycles, err
	}
	delta := newPC - pe.Payload.Counter(slot)
	cycles += c.SetParentCounter(pe, slot, newPC, delta)
	return cycles, nil
}

// BeforeRead implements memctrl.Policy.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy.
func (p *Policy) ParentCounterOverride(int, uint64) (uint64, bool) { return 0, false }

// OnCrash implements memctrl.Policy: only the register survives.
func (p *Policy) OnCrash() {}

// Recover implements memctrl.Policy: rebuild the whole tree bottom-up.
// Every leaf is restored from its covered data blocks (there is no dirty
// tracking, so every leaf might be stale), the total leaf sum is compared
// with Recovery_root, and every interior node is recomputed by summation.
// Cost scales with the full tree, not the metadata cache.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	rep := memctrl.RecoveryReport{Scheme: p.Name()}
	degraded := p.c.Config().DegradedRecovery
	rec, err := rebuild.LeavesFromData(p.c, &rep, degraded)
	if err != nil {
		return rep, err
	}
	// The rebuilt leaf total is exact (MAC-proven or hint-pinned), so the
	// Recovery_root equality is a conservation law: a residual no
	// unpinnable media loss explains condemns the whole tree rather than
	// being forgiven. The register follows the written-back total when
	// recovery proceeds past a mismatch.
	reg, err := rebuild.CheckRegister(p.c, &rep, rec, p.recoveryRoot, degraded)
	if err != nil {
		return rep, err
	}
	p.recoveryRoot = reg
	rebuild.WriteBack(p.c, &rep, rec.Leaves, true)
	rebuild.Cost(p.c, &rep)
	return rep, nil
}

// Storage implements memctrl.Policy: just the tree and an 8 B register.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		OnChipNVBytes:  8,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}
