package scue_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/scue"
)

func TestConformance(t *testing.T) {
	t.Run("RoundTripGC", func(t *testing.T) { schemetest.RunRoundTrip(t, scue.Factory, false) })
	t.Run("RoundTripSC", func(t *testing.T) { schemetest.RunRoundTrip(t, scue.Factory, true) })
	t.Run("CrashRecoverGC", func(t *testing.T) { schemetest.RunCrashRecover(t, scue.Factory, false) })
	t.Run("CrashRecoverSC", func(t *testing.T) { schemetest.RunCrashRecover(t, scue.Factory, true) })
	t.Run("ForceAllDirty", func(t *testing.T) { schemetest.RunForceAllDirtyRecover(t, scue.Factory, false) })
	t.Run("RuntimeTamper", func(t *testing.T) { schemetest.RunRuntimeTamperDetected(t, scue.Factory) })
	t.Run("DataReplay", func(t *testing.T) { schemetest.RunRecoveryDetectsDataReplay(t, scue.Factory) })
	t.Run("Determinism", func(t *testing.T) { schemetest.RunDeterminism(t, scue.Factory, false) })
	t.Run("SparseCache", func(t *testing.T) { schemetest.RunSparseCacheRecover(t, scue.Factory, false) })
}

func TestRecoveryRootTracksLeafIncrements(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), scue.Factory)
	p := c.Policy().(*scue.Policy)
	for i := 0; i < 10; i++ {
		if err := c.WriteData(1, uint64(i)*64, schemetest.Pattern(uint64(i)*64, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if p.RecoveryRoot() != 10 {
		t.Fatalf("Recovery_root = %d after 10 writes, want 10", p.RecoveryRoot())
	}
}

func TestRecoveryScalesWithMemoryNotCache(t *testing.T) {
	// §II-D: SCUE reconstructs the entire tree, so its recovery reads grow
	// with memory capacity even when the dirty set is tiny.
	reads := map[uint64]uint64{}
	for _, size := range []uint64{1 << 19, 1 << 20} {
		cfg := memctrl.DefaultConfig(size, false)
		cfg.MetaCacheBytes = 4 << 10
		cfg.MetaCacheWays = 4
		c := memctrl.New(cfg, scue.Factory)
		if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
			t.Fatal(err)
		}
		c.Crash()
		rep, err := c.Recover()
		if err != nil {
			t.Fatal(err)
		}
		reads[size] = rep.NVMReads
	}
	if reads[1<<20] < reads[1<<19]*3/2 {
		t.Fatalf("recovery reads %v do not scale with memory size", reads)
	}
}

func TestRecoveryDetectsRootMismatch(t *testing.T) {
	// Replaying any block lowers the reconstructed leaf sum below
	// Recovery_root.
	c := memctrl.New(schemetest.Config(false), scue.Factory)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	old := c.Device().Peek(0)
	oldTag := c.Tag(0)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 2)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(0, old)
	c.SetTag(0, oldTag)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover after replay = %v, want ErrReplay", err)
	}
}

func TestStorageOverheadSCUE(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), scue.Factory)
	s := c.Policy().Storage()
	if s.OnChipNVBytes != 8 || s.NVMExtraBytes != 0 || s.CacheTaxBytes != 0 {
		t.Fatalf("SCUE overhead %+v, want only the 8 B register", s)
	}
}
