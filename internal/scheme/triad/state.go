// Snapshot support: triad's state beyond the shared controller structures
// is the on-chip NV recovery register plus the pend overrides for strict
// nodes written through past their parents' persisted slots. pend is
// flattened sorted by (level, index) so captures are byte-identical.

package triad

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	keys := make([]nodeKey, 0, len(p.pend))
	for k := range p.pend {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].level != keys[j].level {
			return keys[i].level < keys[j].level
		}
		return keys[i].index < keys[j].index
	})
	b := make([]byte, 8+8+len(keys)*24)
	binary.LittleEndian.PutUint64(b[0:], p.recoveryRoot)
	binary.LittleEndian.PutUint64(b[8:], uint64(len(keys)))
	off := 16
	for _, k := range keys {
		binary.LittleEndian.PutUint64(b[off:], uint64(k.level))
		binary.LittleEndian.PutUint64(b[off+8:], k.index)
		binary.LittleEndian.PutUint64(b[off+16:], p.pend[k])
		off += 24
	}
	return b, nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("triad: state is %d bytes, want >= 16", len(data))
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)) != 16+n*24 {
		return fmt.Errorf("triad: state is %d bytes, want %d for %d overrides", len(data), 16+n*24, n)
	}
	p.recoveryRoot = binary.LittleEndian.Uint64(data)
	p.pend = make(map[nodeKey]uint64, n)
	off := 16
	for i := uint64(0); i < n; i++ {
		k := nodeKey{
			level: int(binary.LittleEndian.Uint64(data[off:])),
			index: binary.LittleEndian.Uint64(data[off+8:]),
		}
		p.pend[k] = binary.LittleEndian.Uint64(data[off+16:])
		off += 24
	}
	return nil
}
