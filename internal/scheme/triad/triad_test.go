package triad_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/triad"
)

func TestConformance(t *testing.T) {
	t.Run("RoundTripGC", func(t *testing.T) { schemetest.RunRoundTrip(t, triad.Factory, false) })
	t.Run("RoundTripSC", func(t *testing.T) { schemetest.RunRoundTrip(t, triad.Factory, true) })
	t.Run("CrashRecoverGC", func(t *testing.T) { schemetest.RunCrashRecover(t, triad.Factory, false) })
	t.Run("CrashRecoverSC", func(t *testing.T) { schemetest.RunCrashRecover(t, triad.Factory, true) })
	t.Run("ForceAllDirty", func(t *testing.T) { schemetest.RunForceAllDirtyRecover(t, triad.Factory, false) })
	t.Run("RuntimeTamper", func(t *testing.T) { schemetest.RunRuntimeTamperDetected(t, triad.Factory) })
	t.Run("DataReplay", func(t *testing.T) { schemetest.RunRecoveryDetectsDataReplay(t, triad.Factory) })
	t.Run("Determinism", func(t *testing.T) { schemetest.RunDeterminism(t, triad.Factory, false) })
	t.Run("SparseCache", func(t *testing.T) { schemetest.RunSparseCacheRecover(t, triad.Factory, false) })
}

func TestConformanceStrictLevelsSweep(t *testing.T) {
	// The conformance invariants must hold at every persistence split,
	// including all-strict (N = tree levels) and leaves-only (N = 1).
	for _, n := range []int{1, 3} {
		f := triad.FactoryWithOptions(triad.Options{StrictLevels: n})
		t.Run("RoundTrip", func(t *testing.T) { schemetest.RunRoundTrip(t, f, false) })
		t.Run("CrashRecover", func(t *testing.T) { schemetest.RunCrashRecover(t, f, false) })
	}
}

func TestStrictLevelsClamped(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), triad.FactoryWithOptions(triad.Options{StrictLevels: 99}))
	p := c.Policy().(*triad.Policy)
	if lv := c.Layout().Geo.Levels; p.StrictLevels() != lv {
		t.Fatalf("StrictLevels = %d, want clamped to tree levels %d", p.StrictLevels(), lv)
	}
	c = memctrl.New(schemetest.Config(false), triad.Factory)
	if p := c.Policy().(*triad.Policy); p.StrictLevels() != 2 {
		t.Fatalf("default StrictLevels = %d, want 2", p.StrictLevels())
	}
}

func TestWriteThroughKeepsLeafImageCurrent(t *testing.T) {
	// Every data write must leave the leaf's NVM image sealed under its own
	// generated counter WITHOUT an eviction — the strict-persistence
	// property recovery relies on.
	c := memctrl.New(schemetest.Config(false), triad.Factory)
	for i := uint64(1); i <= 3; i++ {
		if err := c.WriteData(1, 0, schemetest.Pattern(0, byte(i))); err != nil {
			t.Fatal(err)
		}
		n := c.StaleNode(0, 0)
		if got := n.Counter(0); got != i {
			t.Fatalf("persisted leaf counter %d after write %d; leaf was not written through", got, i)
		}
		if c.NodeMAC(n, n.FValue()) != n.HMAC() {
			t.Fatalf("persisted leaf image not self-sealed after write %d", i)
		}
	}
}

func TestRecoveryReadsScaleWithTreeNotData(t *testing.T) {
	// Triad recovery reads leaf IMAGES, not covered data blocks: with
	// arity-8 leaf cover its NVM reads must be far below SCUE-style
	// per-block search (which reads cover+1 lines per leaf).
	c := memctrl.New(schemetest.Config(false), triad.Factory)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	leaves := c.Layout().Geo.LevelNodes[0]
	if rep.NVMReads != leaves {
		t.Fatalf("recovery NVM reads = %d, want one per leaf (%d)", rep.NVMReads, leaves)
	}
}

func TestRecoveryDetectsLeafReplay(t *testing.T) {
	// Replaying an authentic old leaf image passes the self-seal but lowers
	// the leaf total below the recovery register.
	c := memctrl.New(schemetest.Config(false), triad.Factory)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	naddr := c.Layout().Geo.NodeAddr(0, 0)
	old := c.Device().Peek(naddr)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 2)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(naddr, old)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover after leaf replay = %v, want ErrReplay", err)
	}
}

func TestRecoveryDetectsLeafTamper(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), triad.Factory)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	naddr := c.Layout().Geo.NodeAddr(0, 0)
	line := c.Device().Peek(naddr)
	line[0] ^= 0x40
	c.Crash()
	c.Device().Poke(naddr, line)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after leaf tamper = %v, want ErrTamper", err)
	}
}

func TestStorageOverheadTriad(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), triad.Factory)
	s := c.Policy().Storage()
	if s.OnChipNVBytes != 8 || s.NVMExtraBytes != 0 || s.CacheTaxBytes != 0 {
		t.Fatalf("triad overhead %+v, want only the 8 B register", s)
	}
}
