package star_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/scheme/wb"
)

func TestConformance(t *testing.T) {
	t.Run("RoundTrip", func(t *testing.T) { schemetest.RunRoundTrip(t, star.Factory, false) })
	t.Run("CrashRecover", func(t *testing.T) { schemetest.RunCrashRecover(t, star.Factory, false) })
	t.Run("ForceAllDirty", func(t *testing.T) { schemetest.RunForceAllDirtyRecover(t, star.Factory, false) })
	t.Run("RuntimeTamper", func(t *testing.T) { schemetest.RunRuntimeTamperDetected(t, star.Factory) })
	t.Run("DataReplay", func(t *testing.T) { schemetest.RunRecoveryDetectsDataReplay(t, star.Factory) })
	t.Run("Determinism", func(t *testing.T) { schemetest.RunDeterminism(t, star.Factory, false) })
	t.Run("SparseCache", func(t *testing.T) { schemetest.RunSparseCacheRecover(t, star.Factory, false) })
}

func TestBitmapTrafficBetweenWBAndASIT(t *testing.T) {
	// §II-D/§IV-B shape: STAR writes more than WB (bitmap lines, both
	// transition directions) but far less than ASIT's shadow table.
	// A 2-line tracking cache forces bitmap line churn (at full scale the
	// bitmap spans far more lines than the controller can hold).
	tight := func() memctrl.Config {
		cfg := schemetest.Config(false)
		cfg.RecordCacheLines = 2
		cfg.AuxCacheWays = 2
		return cfg
	}
	run := func(f memctrl.PolicyFactory) uint64 {
		c := memctrl.New(tight(), f)
		schemetest.Workload(t, c, 4000, 9)
		return c.Device().Stats().TotalWrites()
	}
	wbW, starW := run(wb.Factory), run(star.Factory)
	if starW <= wbW {
		t.Fatalf("STAR writes (%d) not above WB (%d)", starW, wbW)
	}
	c := memctrl.New(tight(), star.Factory)
	schemetest.Workload(t, c, 4000, 9)
	if c.Device().Stats().Writes[nvmem.ClassBitmap] == 0 {
		t.Fatal("no bitmap write-backs recorded")
	}
}

func TestBitmapUpdatedBothDirections(t *testing.T) {
	// Steins updates records only on clean->dirty; STAR also pays for
	// dirty->clean. With identical workloads STAR's tracking traffic
	// (bitmap) should exceed Steins' (records).
	run := func(f memctrl.PolicyFactory, cls nvmem.Class) uint64 {
		cfg := schemetest.Config(false)
		cfg.RecordCacheLines = 2
		cfg.AuxCacheWays = 2
		c := memctrl.New(cfg, f)
		schemetest.Workload(t, c, 6000, 9)
		s := c.Device().Stats()
		return s.Reads[cls] + s.Writes[cls]
	}
	starOps := run(star.Factory, nvmem.ClassBitmap)
	steinsOps := run(steins.Factory, nvmem.ClassRecord)
	if starOps <= steinsOps {
		t.Fatalf("STAR bitmap ops (%d) not above Steins record ops (%d)", starOps, steinsOps)
	}
}

func TestLSBStoredOnEviction(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), star.Factory)
	schemetest.Workload(t, c, 3000, 3)
	p := c.Policy().(*star.Policy)
	found := false
	for idx := uint64(0); idx < c.Layout().Geo.LevelNodes[0] && !found; idx++ {
		_, found = p.LSB(0, idx)
	}
	if !found {
		t.Fatal("no parent-counter LSBs stored after eviction churn")
	}
}

func TestRecoveryDetectsErasedBitmap(t *testing.T) {
	// Zeroing the bitmap unmarks dirty nodes; the recomputed set-MACs no
	// longer match the surviving cache-tree root.
	c := memctrl.New(schemetest.Config(false), star.Factory)
	schemetest.Workload(t, c, 4000, 11)
	c.Crash()
	lay := c.Layout()
	for li := uint64(0); li < lay.BitmapLines(); li++ {
		c.Device().Poke(lay.BitmapBase+li*64, nvmem.Line{})
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover with erased bitmap = %v, want ErrReplay", err)
	}
}

func TestRecoveryDetectsSpuriousBitmapBits(t *testing.T) {
	// Setting extra bits adds nodes to the recovered set; the set-MACs
	// diverge from the root (STAR, unlike Steins, authenticates the exact
	// dirty membership).
	c := memctrl.New(schemetest.Config(false), star.Factory)
	schemetest.Workload(t, c, 4000, 13)
	c.Crash()
	lay := c.Layout()
	line := c.Device().Peek(lay.BitmapBase)
	line[0] |= 0x01 // mark node offset 0 dirty
	if got := c.Device().Peek(lay.BitmapBase); got == line {
		t.Skip("offset 0 already dirty")
	}
	c.Device().Poke(lay.BitmapBase, line)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover with spurious bitmap bits = %v, want ErrReplay", err)
	}
}

func TestStorageOverheadSTAR(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), star.Factory)
	s := c.Policy().Storage()
	// §IV-E: 8 B per 8-way set = 1/64 of the metadata cache.
	if s.CacheTaxBytes != uint64(c.Config().MetaCacheBytes)/64 {
		t.Fatalf("cache tax %d, want 1/64 of cache", s.CacheTaxBytes)
	}
	if s.NVMExtraBytes != c.Layout().BitmapBytes {
		t.Fatalf("bitmap bytes %d", s.NVMExtraBytes)
	}
}

func TestMultiLayerBitmapPrunesRecoveryScan(t *testing.T) {
	// §II-D's multi-layer bitmap: with a tiny dirty set in a big tree, the
	// recovery scan reads only L1 lines plus the few marked L0 lines — far
	// fewer than the full first layer.
	cfg := memctrl.DefaultConfig(64<<20, false) // big tree: many bitmap lines
	cfg.MetaCacheBytes = 8 << 10
	c := memctrl.New(cfg, star.Factory)
	for i := uint64(0); i < 16; i++ {
		if err := c.WriteData(5, i*64, schemetest.Pattern(i*64, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	fullL0 := c.Layout().L1BitmapOffset / 64
	if rep.NVMReads >= fullL0 {
		t.Fatalf("recovery scan read %d lines; unpruned L0 alone is %d", rep.NVMReads, fullL0)
	}
}
