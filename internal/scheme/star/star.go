// Package star implements the STAR baseline (Huang & Hua, HPCA'21; §IV of
// the Steins paper): parent-counter LSBs are stored in child lines for
// recovery, dirty nodes are tracked by a multi-layer bitmap whose lines are
// cached in the memory controller (updated on BOTH clean->dirty and
// dirty->clean transitions, the extra traffic of §II-D), and a cache-tree
// over per-set MACs of the dirty nodes — sorted by address within each set
// — anchors verification in an on-chip non-volatile root.
package star

import (
	"encoding/binary"
	"sort"

	"steins/internal/cache"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/rebuild"
	"steins/internal/sit"
)

// trackingIssueCycles is the critical-path cost of issuing an
// asynchronous tracking-structure access (bitmap/record line fill).
const trackingIssueCycles = 20

const (
	treeArity = 8
	// lsbBits is the width of the parent-counter copy a child line carries.
	lsbBits = 16
	lsbMask = 1<<lsbBits - 1
	// nodesPerBitmapLine is how many node dirty-bits one 64 B line holds.
	nodesPerBitmapLine = nvmem.LineSize * 8
)

type bitmapLine [nvmem.LineSize]byte

type nodeKey struct {
	level int
	index uint64
}

// Policy is the STAR scheme.
type Policy struct {
	c *memctrl.Controller
	// lsb models the parent-counter LSBs co-located with each child line
	// (reserved node bits in the real layout, so no extra traffic).
	lsb map[nodeKey]uint16
	// bitmap lines cached in the controller's ADR domain.
	bitmap *cache.Cache[*bitmapLine]
	// setMACs (volatile) and the cache-tree over them; root on-chip NV.
	setMACs []uint64
	tree    [][]uint64
	root    uint64
}

// Factory builds a STAR policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy {
	cfg := c.Config()
	p := &Policy{
		c:       c,
		lsb:     make(map[nodeKey]uint16),
		bitmap:  cache.New[*bitmapLine](cfg.RecordCacheLines*nvmem.LineSize, cfg.AuxCacheWays, nvmem.LineSize),
		setMACs: make([]uint64, c.Meta().Sets()),
	}
	n := len(p.setMACs)
	for {
		p.tree = append(p.tree, make([]uint64, n))
		if n <= treeArity {
			break
		}
		n = (n + treeArity - 1) / treeArity
	}
	// Set-MACs must cover empty sets too: recovery recomputes a MAC for
	// every set, dirty members or not.
	for s := range p.setMACs {
		p.setMACs[s] = p.macOverImages(uint64(s), nil)
	}
	p.root, _ = p.rebuildTree(p.setMACs)
	return p
}

// Name implements memctrl.Policy.
func (p *Policy) Name() string { return "STAR" }

// CounterGen implements memctrl.Policy: classic self-increment SIT.
func (p *Policy) CounterGen() bool { return false }

// --- cache-tree over set-MACs -------------------------------------------------

// nodeImg is the authenticated image of one dirty node in a set-MAC.
type nodeImg struct {
	addr uint64
	ctr  [56]byte
}

// setMAC authenticates the dirty nodes of one metadata cache set, sorted
// by address (the sorting cost §II-D attributes to STAR).
func (p *Policy) setMAC(set int) (uint64, uint64) {
	var nodes []nodeImg
	p.c.Meta().EntriesInSet(set, func(e *cache.Entry[*sit.Node]) {
		if e.Dirty {
			nodes = append(nodes, nodeImg{addr: e.Addr, ctr: e.Payload.CounterBytes()})
		}
	})
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].addr < nodes[j].addr })
	return p.macOverImages(uint64(set), nodes), uint64(len(nodes))
}

func (p *Policy) macOverImages(set uint64, nodes []nodeImg) uint64 {
	msg := make([]byte, 0, 8+len(nodes)*64)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], set)
	msg = append(msg, b[:]...)
	for _, n := range nodes {
		binary.LittleEndian.PutUint64(b[:], n.addr)
		msg = append(msg, b[:]...)
		msg = append(msg, n.ctr[:]...)
	}
	return p.c.Config().MAC.Sum64(p.c.Config().Key, msg)
}

func (p *Policy) interiorHash(level int, group uint64, children []uint64) uint64 {
	msg := make([]byte, 0, 8*(len(children)+1))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(level)<<32|group)
	msg = append(msg, b[:]...)
	for _, h := range children {
		binary.LittleEndian.PutUint64(b[:], h)
		msg = append(msg, b[:]...)
	}
	return p.c.Config().MAC.Sum64(p.c.Config().Key, msg)
}

// updateSet recomputes one set's MAC and the path to the root; returns the
// critical-path cycles (hashes plus the sort).
func (p *Policy) updateSet(set int) uint64 {
	mac, n := p.setMAC(set)
	p.setMACs[set] = mac
	hashes := uint64(1)
	idx := uint64(set)
	for l := 1; l < len(p.tree); l++ {
		idx /= treeArity
		lo := idx * treeArity
		hi := min(lo+treeArity, uint64(len(p.tree[l-1])))
		src := p.tree[l-1][lo:hi]
		if l == 1 {
			src = p.setMACs[lo:hi]
		}
		p.tree[l][idx] = p.interiorHash(l, idx, src)
		hashes++
	}
	p.root = p.interiorHash(len(p.tree), 0, p.tree[len(p.tree)-1])
	p.c.CountHash(hashes + 1)
	// The set-MAC is on the critical path (it must see the sorted dirty
	// set, hence the ~n-cycle comparator sort); the upper levels pipeline
	// behind it on the dedicated engine.
	return p.c.Config().HashCycles + n
}

// rebuildTree recomputes the full tree over the given set-MACs and returns
// the root (without touching the NV anchor) and the hash count.
func (p *Policy) rebuildTree(setMACs []uint64) (uint64, uint64) {
	var hashes uint64
	src := setMACs
	for l := 1; l < len(p.tree); l++ {
		for idx := range p.tree[l] {
			lo := idx * treeArity
			hi := min(lo+treeArity, len(src))
			p.tree[l][idx] = p.interiorHash(l, uint64(idx), src[lo:hi])
			hashes++
		}
		src = p.tree[l]
	}
	return p.interiorHash(len(p.tree), 0, p.tree[len(p.tree)-1]), hashes + 1
}

// --- bitmap -------------------------------------------------------------------

// setBit flips the dirty bit of a node offset, going through the cached
// bitmap lines (missing lines are fetched; dirty victims written back).
// The bitmap is multi-layered (the "multi-layer bitmap" of §II-D): a
// second level holds one bit per first-level line, letting recovery skip
// lines with no dirty nodes. A first-level line transitioning between
// all-zero and non-zero updates the second level too — the "multiple
// memory access" overhead the paper describes.
func (p *Policy) setBit(level int, index uint64, val bool) uint64 {
	lay := p.c.Layout()
	off := uint64(lay.Geo.Offset(level, index))
	lineIdx := off / nodesPerBitmapLine
	bit := off % nodesPerBitmapLine

	be, cycles := p.bitmapLine(lay.BitmapBase + lineIdx*nvmem.LineSize)
	wasEmpty := *be.Payload == bitmapLine{}
	byteIdx, bitIdx := bit/8, uint(bit%8)
	if val {
		be.Payload[byteIdx] |= 1 << bitIdx
	} else {
		be.Payload[byteIdx] &^= 1 << bitIdx
	}
	be.Dirty = true
	isEmpty := *be.Payload == bitmapLine{}
	if wasEmpty != isEmpty {
		cycles += p.setL1Bit(lineIdx, !isEmpty)
	}
	if val {
		p.c.FaultEvent(memctrl.EvRecordAppend, be.Addr)
	}
	return cycles + 1
}

// setL1Bit maintains the second bitmap layer: bit i covers first-level
// line i.
func (p *Policy) setL1Bit(l0Line uint64, val bool) uint64 {
	l1Index := l0Line / nodesPerBitmapLine
	bit := l0Line % nodesPerBitmapLine
	be, cycles := p.bitmapLine(p.l1Base() + l1Index*nvmem.LineSize)
	byteIdx, bitIdx := bit/8, uint(bit%8)
	if val {
		be.Payload[byteIdx] |= 1 << bitIdx
	} else {
		be.Payload[byteIdx] &^= 1 << bitIdx
	}
	be.Dirty = true
	return cycles + 1
}

// l1Base places the second layer after the first within the bitmap region
// (the region is sized with line-rounding slack; the layout reserves the
// whole region for STAR).
func (p *Policy) l1Base() uint64 {
	lay := p.c.Layout()
	return lay.BitmapBase + lay.L1BitmapOffset
}

// bitmapLine returns the cached entry for a bitmap line, filling on miss.
func (p *Policy) bitmapLine(addr uint64) (*cache.Entry[*bitmapLine], uint64) {
	var cycles uint64
	be, ok := p.bitmap.Lookup(addr)
	if !ok {
		// Bitmap maintenance is fire-and-forget: the miss read occupies
		// NVM bandwidth (traffic, energy) but the eviction does not block
		// on it; only the issue slot is on the critical path.
		line, _, err := p.c.ReadLineRetried(p.c.Now(), addr, nvmem.ClassBitmap)
		if err != nil {
			// Losing a bitmap line only loses dirty marks; recovery treats
			// a lost mark as data loss, runtime continues with a fresh line.
			line = nvmem.Line{}
		}
		cycles += trackingIssueCycles
		bl := bitmapLine(line)
		var victim cache.Entry[*bitmapLine]
		var evicted bool
		be, victim, evicted = p.bitmap.Insert(addr, &bl, false)
		if evicted && victim.Dirty {
			cycles += p.c.Device().MustWrite(p.c.Now()+cycles, victim.Addr,
				nvmem.Line(*victim.Payload), nvmem.ClassBitmap)
		}
	}
	return be, cycles
}

// --- policy hooks ---------------------------------------------------------------

// OnModify implements memctrl.Policy: recompute the set-MAC path (with its
// sort) and, on a clean->dirty transition, set the bitmap bit.
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], wasClean bool, _ uint64) uint64 {
	cycles := p.updateSet(p.c.Meta().SetOf(e.Addr))
	if wasClean {
		cycles += p.setBit(e.Payload.Level, e.Payload.Index, true)
	}
	return cycles
}

// EvictDirty implements memctrl.Policy: the classic write-back, plus
// storing the new parent-counter LSBs in the child line, clearing the
// bitmap bit (the dirty->clean update Steins avoids), and refreshing the
// vacated set's MAC.
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	geo := &p.c.Layout().Geo
	cycles, newPC, err := p.classicEvictCapture(victim)
	if err != nil {
		return cycles, err
	}
	p.lsb[nodeKey{victim.Level, victim.Index}] = uint16(newPC & lsbMask)
	cycles += p.setBit(victim.Level, victim.Index, false)
	// The vacated set's MAC refresh runs on the background engine: nothing
	// later in this eviction depends on it.
	p.updateSet(p.c.Meta().SetOf(geo.NodeAddr(victim.Level, victim.Index)))
	return cycles, nil
}

// classicEvictCapture mirrors Controller.ClassicEvict but reports the new
// parent counter so its LSBs can be stored in the child.
func (p *Policy) classicEvictCapture(victim *sit.Node) (uint64, uint64, error) {
	c := p.c
	geo := &c.Layout().Geo
	var cycles uint64
	var newPC uint64
	if geo.IsTop(victim.Level) {
		newPC = c.Root().Counter(victim.Index) + 1
		c.Root().SetCounter(victim.Index, newPC)
	} else {
		pl, pi, slot := geo.Parent(victim.Level, victim.Index)
		pe, pcyc, err := c.FetchNode(pl, pi)
		cycles += pcyc
		if err != nil {
			return cycles, 0, err
		}
		newPC = pe.Payload.Counter(slot) + 1
		cycles += c.SetParentCounter(pe, slot, newPC, 1)
	}
	return cycles + c.SealAndWriteNode(victim, newPC), newPC, nil
}

// BeforeRead implements memctrl.Policy.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy.
func (p *Policy) ParentCounterOverride(int, uint64) (uint64, bool) { return 0, false }

// OnCrash implements memctrl.Policy: ADR flushes the cached bitmap lines.
func (p *Policy) OnCrash() {
	p.bitmap.ForEach(func(e *cache.Entry[*bitmapLine]) {
		if e.Dirty {
			p.c.Device().Poke(e.Addr, nvmem.Line(*e.Payload))
		}
	})
	p.bitmap.Clear()
}

// Storage implements memctrl.Policy (§IV-E): the bitmap in NVM, an 8 B MAC
// per 8-way set (1/64 of the metadata cache), and a 64 B root register.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		NVMExtraBytes:  lay.BitmapBytes,
		CacheTaxBytes:  uint64(p.c.Config().MetaCacheBytes) / 64,
		OnChipNVBytes:  64,
		OnChipSRBytes:  uint64(p.c.Config().RecordCacheLines) * nvmem.LineSize,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}

// LSB returns the stored parent-counter LSBs for a node (tests use it).
func (p *Policy) LSB(level int, index uint64) (uint16, bool) {
	v, ok := p.lsb[nodeKey{level, index}]
	return v, ok
}

// Recover implements memctrl.Policy: scan the bitmap for dirty nodes,
// rebuild each from the parent-counter LSBs its children carry (data tag
// hints for leaves), verify the recomputed per-set MACs against the
// surviving cache-tree root, and reinstate the nodes into the metadata
// cache marked dirty.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	rep := memctrl.RecoveryReport{Scheme: p.Name()}
	lay := p.c.Layout()
	geo := &lay.Geo

	// 1. Bitmap scan. The second layer prunes it: only first-level lines
	//    whose L1 bit is set are read, so the constant term scales with
	//    the dirty footprint rather than the whole tree.
	var dirty []nodeKey
	l0Lines := lay.L1BitmapOffset / nvmem.LineSize
	l1Lines := (l0Lines + nodesPerBitmapLine - 1) / nodesPerBitmapLine
	for l1 := uint64(0); l1 < l1Lines; l1++ {
		rep.NVMReads++
		l1Line := p.c.Device().Peek(p.l1Base() + l1*nvmem.LineSize)
		for lb := uint64(0); lb < nodesPerBitmapLine; lb++ {
			if l1Line[lb/8]&(1<<(lb%8)) == 0 {
				continue
			}
			li := l1*nodesPerBitmapLine + lb
			if li >= l0Lines {
				break
			}
			rep.NVMReads++
			line := p.c.Device().Peek(lay.BitmapBase + li*nvmem.LineSize)
			for b := uint64(0); b < nodesPerBitmapLine; b++ {
				if line[b/8]&(1<<(b%8)) == 0 {
					continue
				}
				off := uint32(li*nodesPerBitmapLine + b)
				if level, index, ok := geo.NodeAtOffset(off); ok {
					dirty = append(dirty, nodeKey{level, index})
				}
			}
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		if dirty[i].level != dirty[j].level {
			return dirty[i].level > dirty[j].level
		}
		return dirty[i].index < dirty[j].index
	})

	// 2. Rebuild each dirty node from the LSBs its children carry. Leaves
	//    go through the shared exact reconstruction: every covered block's
	//    counter is MAC-proven (fast candidate, then base-less search) or
	//    hint-pinned where media evidence says the ciphertext is gone, so a
	//    damaged leaf still yields its exact crash-time counters and only
	//    its unreadable coverage is quarantined.
	degraded := p.c.Config().DegradedRecovery
	rec := &rebuild.LeafRecovery{}
	recovered := make(map[nodeKey]*sit.Node)
	for _, k := range dirty {
		node, err := p.recoverNode(&rep, rec, k, degraded)
		if err != nil {
			return rep, err
		}
		recovered[k] = node
		rep.NodesRecovered++
		p.c.FaultEvent(memctrl.EvRecoveryStep, p.c.Layout().Geo.NodeAddr(k.level, k.index))
	}

	// 3. Verify against the cache-tree root: recompute the per-set MACs
	//    from the recovered nodes (sorted by address within each set).
	//    Every recorded-dirty node participates — quarantines only fence
	//    data coverage, the node counters themselves are exact — so the
	//    surviving root arbitrates replay over the full dirty set. A
	//    mismatch fails closed (nothing recovered can be trusted, the
	//    whole tree is condemned) unless genuine double media destruction
	//    left a block's counter unknowable with no evidence-free damage
	//    beside it: only that unforgeable combination forgives the proof.
	if err := p.verifyRecovered(&rep, recovered); err != nil {
		if !degraded {
			return rep, err
		}
		if rec.Unpinnable == 0 || rec.AttackShaped > 0 {
			p.c.QuarantineAll(memctrl.CauseReplayShaped,
				"STAR cache-tree root mismatch over the recorded dirty set", &rep.Degradation)
			// Re-anchor the cache-tree on the post-crash (empty) cache:
			// the durable quarantine records now carry the verdict, and
			// a root left pointing at the lost dirty set would only
			// re-fence every later recovery — resetting re-admission
			// progress — without fencing anything new.
			for s := range p.setMACs {
				mac, _ := p.setMAC(s)
				p.setMACs[s] = mac
				rep.MACOps++
			}
			root, hashes := p.rebuildTree(p.setMACs)
			rep.MACOps += hashes
			p.root = root
			cfg := p.c.Config()
			rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
				float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
				float64(rep.MACOps)*cfg.RecoveryHashNS
			return rep, nil
		}
	}

	// 4. Reinstate the recovered nodes into the metadata cache marked
	//    dirty, top level first, as STAR's runtime expects; the bitmap
	//    already describes exactly this dirty set, so it stays. The
	//    set-MACs and cache-tree are then recomputed from the final cache
	//    state (evictions during reinstatement go through the normal
	//    write-back and keep the bookkeeping coherent).
	for level := geo.Levels - 1; level >= 0; level-- {
		for _, k := range dirty {
			if k.level != level {
				continue
			}
			node := recovered[k]
			addr := geo.NodeAddr(level, k.index)
			if e, ok := p.c.Meta().Probe(addr); ok {
				e.Payload = node
				e.Dirty = true
				continue
			}
			for {
				_, victim, evicted := p.c.Meta().Insert(addr, node, true)
				if !evicted || !victim.Dirty {
					break
				}
				if _, err := p.c.EvictDirtyNode(victim.Payload); err != nil {
					return rep, err
				}
				if _, ok := p.c.Meta().Probe(addr); ok {
					break
				}
			}
		}
	}
	for s := range p.setMACs {
		mac, _ := p.setMAC(s)
		p.setMACs[s] = mac
		rep.MACOps++
	}
	root, hashes2 := p.rebuildTree(p.setMACs)
	rep.MACOps += hashes2
	p.root = root

	cfg := p.c.Config()
	rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
		float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
		float64(rep.MACOps)*cfg.RecoveryHashNS
	return rep, nil
}

// recoverNode rebuilds one dirty node: counter i extends the stale value's
// high bits with the LSBs stored in child i (or, at the leaf level, with
// the counter recovered from the covered data blocks' tags through the
// shared exact reconstruction — the Osiris-style search STAR shares with
// the other recovery schemes, plus hint pinning for media-destroyed
// blocks).
func (p *Policy) recoverNode(rep *memctrl.RecoveryReport, rec *rebuild.LeafRecovery, k nodeKey, degraded bool) (*sit.Node, error) {
	geo := &p.c.Layout().Geo
	rep.NVMReads++ // stale base
	stale := p.c.StaleNode(k.level, k.index)
	if k.level == 0 {
		return rebuild.LeafFromData(p.c, rep, rec, k.index, stale, degraded)
	}
	node := &sit.Node{Level: k.level, Index: k.index}
	for i := 0; i < counter.Arity; i++ {
		childIdx := k.index*counter.Arity + uint64(i)
		if childIdx >= geo.LevelNodes[k.level-1] {
			continue
		}
		rep.NVMReads++ // child line carries the LSBs
		lsb, ok := p.lsb[nodeKey{k.level - 1, childIdx}]
		if !ok {
			// Child never flushed: parent counter slot is untouched.
			node.SetCounter(i, stale.Counter(i))
			continue
		}
		node.SetCounter(i, extendLSB(stale.Counter(i), lsb))
	}
	return node, nil
}

// extendLSB returns the smallest value >= stale whose low bits equal lsb.
func extendLSB(stale uint64, lsb uint16) uint64 {
	cand := stale&^uint64(lsbMask) | uint64(lsb)
	if cand < stale {
		cand += lsbMask + 1
	}
	return cand
}

// verifyRecovered recomputes every per-set MAC from the recovered dirty
// nodes and compares the rebuilt cache-tree with the surviving root.
func (p *Policy) verifyRecovered(rep *memctrl.RecoveryReport, recovered map[nodeKey]*sit.Node) error {
	geo := &p.c.Layout().Geo
	bySet := make(map[int][]nodeImg)
	for k, n := range recovered {
		addr := geo.NodeAddr(k.level, k.index)
		bySet[p.c.Meta().SetOf(addr)] = append(bySet[p.c.Meta().SetOf(addr)], nodeImg{addr, n.CounterBytes()})
	}
	macs := make([]uint64, len(p.setMACs))
	for set := range macs {
		nodes := bySet[set]
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].addr < nodes[j].addr })
		macs[set] = p.macOverImages(uint64(set), nodes)
		rep.MACOps++
	}
	root, hashes := p.rebuildTree(macs)
	rep.MACOps += hashes
	if root != p.root {
		return memctrl.ReplayAt("dirty set", -1, 0, "STAR cache-tree root mismatch")
	}
	return nil
}
