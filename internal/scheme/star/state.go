// Snapshot support: STAR's state beyond the shared controller structures —
// the parent-counter LSB table, the ADR-cached bitmap lines with their
// exact LRU bookkeeping, and the volatile cache-tree (set-MACs, interior,
// on-chip NV root). The cache-tree is serialized rather than recomputed:
// under an active media-fault seed, recomputing set-MACs from Peeked state
// could diverge from the incrementally maintained values.

package star

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"steins/internal/cache"
	"steins/internal/nvmem"
)

// lsbState is one child node's parent-counter LSB copy.
type lsbState struct {
	Level int
	Index uint64
	LSB   uint16
}

// bitmapEntryState is one cached bitmap line with its LRU bookkeeping.
type bitmapEntryState struct {
	Addr  uint64
	Slot  int
	Stamp uint64
	Dirty bool
	Line  [nvmem.LineSize]byte
}

// policyState is the gob image of the scheme state.
type policyState struct {
	LSBs        []lsbState // sorted by (level, index)
	BitmapStamp uint64
	BitmapStats cache.Stats
	Bitmap      []bitmapEntryState
	SetMACs     []uint64
	Tree        [][]uint64
	Root        uint64
}

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	st := policyState{
		SetMACs: append([]uint64(nil), p.setMACs...),
		Tree:    make([][]uint64, len(p.tree)),
		Root:    p.root,
	}
	for i, lvl := range p.tree {
		st.Tree[i] = append([]uint64(nil), lvl...)
	}
	for k, v := range p.lsb {
		st.LSBs = append(st.LSBs, lsbState{Level: k.level, Index: k.index, LSB: v})
	}
	sort.Slice(st.LSBs, func(i, j int) bool {
		if st.LSBs[i].Level != st.LSBs[j].Level {
			return st.LSBs[i].Level < st.LSBs[j].Level
		}
		return st.LSBs[i].Index < st.LSBs[j].Index
	})
	bs := p.bitmap.State()
	st.BitmapStamp = bs.Stamp
	st.BitmapStats = bs.Stats
	for _, e := range bs.Entries {
		st.Bitmap = append(st.Bitmap, bitmapEntryState{
			Addr: e.Addr, Slot: e.Slot, Stamp: e.Stamp, Dirty: e.Dirty, Line: *e.Payload,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("star: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	var st policyState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("star: decode state: %w", err)
	}
	if len(st.SetMACs) != len(p.setMACs) || len(st.Tree) != len(p.tree) {
		return fmt.Errorf("star: state geometry mismatch (%d set-MACs / %d levels, scheme has %d / %d)",
			len(st.SetMACs), len(st.Tree), len(p.setMACs), len(p.tree))
	}
	p.lsb = make(map[nodeKey]uint16, len(st.LSBs))
	for _, e := range st.LSBs {
		p.lsb[nodeKey{level: e.Level, index: e.Index}] = e.LSB
	}
	copy(p.setMACs, st.SetMACs)
	for i := range p.tree {
		if len(st.Tree[i]) != len(p.tree[i]) {
			return fmt.Errorf("star: state tree level %d has %d nodes, scheme has %d", i, len(st.Tree[i]), len(p.tree[i]))
		}
		copy(p.tree[i], st.Tree[i])
	}
	p.root = st.Root
	bs := cache.State[*bitmapLine]{Stamp: st.BitmapStamp, Stats: st.BitmapStats}
	for _, e := range st.Bitmap {
		line := bitmapLine(e.Line)
		bs.Entries = append(bs.Entries, cache.EntryState[*bitmapLine]{
			Addr: e.Addr, Slot: e.Slot, Stamp: e.Stamp, Dirty: e.Dirty, Payload: &line,
		})
	}
	p.bitmap.SetState(bs)
	return nil
}
