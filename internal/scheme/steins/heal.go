package steins

import (
	"fmt"

	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Degraded recovery (media-fault tolerance). Steins' sealing discipline
// gives every persisted node a self-verifying image: EvictDirty seals each
// victim under its OWN generated counter (FValue), so a node n persisted by
// any scheme path satisfies NodeMAC(n, n.FValue()) == n.HMAC(). A node
// whose image fails that check was corrupted on the media (or tampered
// with), and — uniquely under counter generation — its counters are pure
// functions of its children (Eq. 1/2), so an interior node with intact
// children can be rebuilt in place: regenerate every counter from the
// persisted child images, re-derive the HMAC under the node's own new
// FValue, and write the healed line back. The healed image is checked for
// chain consistency against the trusted parent-side counter when one is
// available; a mismatch means the children themselves are suspect and the
// whole subtree is quarantined instead.
//
// Corrupted leaves cannot be healed (their counters live nowhere else:
// data-block tag hints only bound a search window) and are quarantined.

// selfConsistent reports whether a persisted node image verifies under its
// own generated counter — the Steins sealing invariant. The all-zero image
// of a never-persisted node is trivially consistent.
func (p *Policy) selfConsistent(st *recoveryState, n *sit.Node) bool {
	if n.Encode() == (counter.Block{}) {
		return true
	}
	st.report.MACOps++
	return p.c.NodeMAC(n, n.FValue()) == n.HMAC()
}

// healNode attempts to rebuild a corrupted persisted node from its children
// and returns the healed image, or the original corrupt image after
// quarantining its subtree when healing is impossible. Child reads go
// through staleOf, so corrupted non-leaf children heal recursively first.
func (p *Policy) healNode(st *recoveryState, n *sit.Node) *sit.Node {
	key := nodeKey{n.Level, n.Index}
	if n.Level == 0 {
		// Leaf counters are not a function of other persisted NODES, but
		// they ARE recoverable from the covered data blocks when those are
		// intact: rebuildLeaf heals a media-damaged leaf line from its
		// authenticated data, keeping the LInc delta exactly accountable.
		// Only when that fails is the leaf's coverage quarantined.
		if rebuilt := p.rebuildLeaf(st, n); rebuilt != nil {
			return rebuilt
		}
		p.quarantineDamaged(st, n.Level, n.Index)
		return n
	}
	if len(st.rollback[key]) > 0 {
		// A buffered flush still targets this node: its persisted image
		// predates the child's flush, so regeneration from the current
		// children cannot reproduce the lost pre-flush slot values.
		p.quarantineDamaged(st, n.Level, n.Index)
		return n
	}
	geo := &p.c.Layout().Geo
	healed := &sit.Node{Level: n.Level, Index: n.Index}
	for i := 0; i < counter.Arity; i++ {
		childIdx := n.Index*counter.Arity + uint64(i)
		if childIdx >= geo.LevelNodes[n.Level-1] {
			continue
		}
		child := p.staleOf(st, n.Level-1, childIdx)
		if st.quarRoots[nodeKey{n.Level - 1, childIdx}] {
			// The child could not be healed either; the regenerated
			// counter would be garbage.
			p.quarantineDamaged(st, n.Level, n.Index)
			return n
		}
		healed.SetCounter(i, child.FValue())
	}
	if st.dirty[n.Level][n.Index] {
		// The node was dirty in the crash-time cache: children may have
		// been flushed after this image was persisted, so the regenerated
		// counters describe the cache image, not the lost stale snapshot.
		// When the parent side still names the lost image's exact FValue,
		// the LInc delta stays exactly accountable (healedBase) and the
		// equality needs no excuse. Otherwise arbitrate: a recorded media
		// fault on the node's line excuses this level's equality; a damaged
		// line NO media fault explains is attack-shaped, and the subtree
		// quarantines instead of laundering the unknowable delta through a
		// forgiven LInc.
		if base, ok := p.exactStaleBase(st, n.Level, n.Index); ok {
			st.healedBase[key] = base
		} else {
			ev := p.nodeEvidence(n.Level, n.Index)
			if !ev.Persistent() {
				p.quarantineSubtree(st, n.Level, n.Index, memctrl.CauseAmbiguous, ev.String())
				return n
			}
			st.excuseLInc(n.Level)
		}
	} else if pc, ok := p.trustedCounterNoHeal(st, n.Level, n.Index); ok && pc != 0 {
		// Chain consistency: an untracked clean node's parent slot holds
		// f(node at its last persist) = f(current persisted children).
		if pc != healed.FValue() {
			p.quarantineDamaged(st, n.Level, n.Index)
			return n
		}
	}
	st.report.MACOps++
	healed.SetHMAC(p.c.NodeMAC(healed, healed.FValue()))
	st.report.NVMWrites++
	p.c.Device().Poke(geo.NodeAddr(n.Level, n.Index), nvmem.Line(healed.Encode()))
	st.report.Degradation.Healed = append(st.report.Degradation.Healed,
		memctrl.NodeRef{Level: n.Level, Index: n.Index})
	st.healedSet[key] = true
	st.verified[key] = true
	return healed
}

// rebuildLeaf attempts the data-driven heal of a damaged leaf node line.
// Leaf counters are not derivable from other nodes, but every covered data
// block authenticates only under its exact write counter, so intact data
// pins the crash-time leaf image: each slot's counter is recovered by a
// hint-anchored search bounded by the level's total unflushed increment.
// The lost stale image's FValue survives on the trusted parent side
// (exactStaleBase), which keeps the leaf's LInc delta exactly accountable —
// the heal needs no equality excuse, so a concurrent data replay elsewhere
// on the level still surfaces as an unexcused shortfall. The rebuild itself
// arbitrates: authenticated data whose FValue regressed below the trusted
// stale base (or diverged from it on a clean leaf) is definitive replay
// evidence and quarantines replay-shaped. Returns nil when the heal is not
// possible (no media evidence, no exact base, damaged data) — the caller
// falls back to the quarantine path.
func (p *Policy) rebuildLeaf(st *recoveryState, n *sit.Node) *sit.Node {
	geo := &p.c.Layout().Geo
	ev := p.nodeEvidence(0, n.Index)
	if !ev.Persistent() {
		// Evidence-free damage earns no reconstruction: healing state an
		// attacker shaped would launder the tamper into a clean tree.
		return nil
	}
	base, ok := p.exactStaleBase(st, 0, n.Index)
	if !ok {
		return nil
	}
	rebuilt := &sit.Node{Level: 0, Index: n.Index, IsSplit: geo.SplitLeaf}
	if geo.SplitLeaf {
		if !p.rebuildSplitLeafCounters(st, rebuilt) {
			return nil
		}
	} else if !p.rebuildLeafCounters(st, rebuilt, base) {
		return nil
	}
	f := rebuilt.FValue()
	dirty := st.dirty[0][n.Index]
	if f < base || (!dirty && f != base) {
		// The data authenticates, yet its counters sit below the FValue the
		// parent side vouches the leaf reached at its last flush (or, for a
		// clean leaf, disagree with it): authentic-stale state was put back
		// after newer state existed. That is replay, not media loss.
		p.quarantineSubtree(st, 0, n.Index, memctrl.CauseReplayShaped,
			fmt.Sprintf("rebuilt leaf FValue %d vs trusted stale %d (line: %s)", f, base, ev.String()))
		return nil
	}
	key := nodeKey{0, n.Index}
	if dirty {
		st.healedBase[key] = base
	}
	st.report.MACOps++
	rebuilt.SetHMAC(p.c.NodeMAC(rebuilt, f))
	st.report.NVMWrites++
	p.c.Device().Poke(geo.NodeAddr(0, n.Index), nvmem.Line(rebuilt.Encode()))
	st.report.Degradation.Healed = append(st.report.Degradation.Healed,
		memctrl.NodeRef{Level: 0, Index: n.Index})
	st.healedSet[key] = true
	st.verified[key] = true
	return rebuilt
}

// rebuildLeafCounters recovers a general leaf's slot counters from its
// covered data blocks with no stale floor: candidates congruent to the tag
// hint are checked in increasing order up to base + LInc[0] (a slot counter
// never exceeds the leaf's crash FValue, itself at most the stale base plus
// the level's total unflushed increment).
func (p *Policy) rebuildLeafCounters(st *recoveryState, node *sit.Node, base uint64) bool {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	bound := base + p.linc[0] + cme.GCHintMask
	for i := 0; i < int(geo.LeafCover); i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		ct := [64]byte(p.c.Device().Peek(daddr))
		tag := p.c.Tag(daddr)
		if !tag.Written {
			continue // never written: the counter never advanced from zero
		}
		found := false
		for cand := tag.Hint; cand <= bound; cand += cme.GCHintMask + 1 {
			st.report.MACOps++
			if eng.Verify(&ct, daddr, cand, tag) {
				node.SetCounter(i, cand)
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// rebuildSplitLeafCounters recovers a split leaf's (major, minor) counters
// from its covered data blocks: all written blocks must agree on one major
// (carried in full by every tag hint), minors come from the per-block
// search. No stale floor is needed — the major is explicit and the minor
// space is exhaustively small.
func (p *Policy) rebuildSplitLeafCounters(st *recoveryState, node *sit.Node) bool {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	haveWritten := false
	var major uint64
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		ct := [64]byte(p.c.Device().Peek(daddr))
		tag := p.c.Tag(daddr)
		if !tag.Written {
			continue
		}
		if h := tag.Hint >> 6; !haveWritten {
			major, haveWritten = h, true
		} else if h != major {
			return false
		}
		m, minor, macOps, ok := eng.RecoverCounterSC(&ct, daddr, tag, 0)
		st.report.MACOps += macOps
		if !ok || m != major {
			return false
		}
		node.Split.Minor[i] = minor
	}
	node.Split.Major = major
	return true
}

// exactStaleBase returns the FValue the parent side vouches for (level,
// index)'s persisted stale image, but only from sources that name it
// EXACTLY: a pending NV-buffer flush entry (the buffered counter IS the
// FValue of the image that flush persisted), the on-chip root, or a CLEAN
// self-consistent parent's slot. A dirty parent's persisted slot may lag
// the child's last flush (the update lived only in the lost cache), and an
// under-estimated base would inflate the delta into a false replay verdict
// — so dirty parents yield no base and the caller falls back to the
// excuse-or-quarantine arbitration.
func (p *Policy) exactStaleBase(st *recoveryState, level int, index uint64) (uint64, bool) {
	geo := &p.c.Layout().Geo
	if ov, ok := p.ParentCounterOverride(level, index); ok {
		return ov, true
	}
	if geo.IsTop(level) {
		return p.c.Root().Counter(index), true
	}
	pl, pi, slot := geo.Parent(level, index)
	if st.dirty[pl][pi] {
		return 0, false
	}
	st.report.NVMReads++
	parent := p.c.StaleNode(pl, pi)
	if !p.selfConsistent(st, parent) {
		return 0, false
	}
	return parent.Counter(slot), true
}

// trustedCounterNoHeal fetches the parent-side counter for (level, index)
// from sources that need no upward healing: the NV buffer override, the
// on-chip root, an already-recovered parent, a memoised (and healed) stale
// parent, or a self-consistent parent peek. ok is false when the parent
// itself is corrupt and not yet healed — the caller defers the check.
func (p *Policy) trustedCounterNoHeal(st *recoveryState, level int, index uint64) (uint64, bool) {
	geo := &p.c.Layout().Geo
	if ov, ok := p.ParentCounterOverride(level, index); ok {
		return ov, true
	}
	if geo.IsTop(level) {
		return p.c.Root().Counter(index), true
	}
	pl, pi, slot := geo.Parent(level, index)
	if n, ok := st.recovered[pl][pi]; ok {
		return n.Counter(slot), true
	}
	if n, ok := st.stales[nodeKey{pl, pi}]; ok {
		if st.quarRoots[nodeKey{pl, pi}] {
			return 0, false
		}
		return n.Counter(slot), true
	}
	parent := p.c.StaleNode(pl, pi)
	if p.selfConsistent(st, parent) {
		return parent.Counter(slot), true
	}
	return 0, false
}

// quarantineSubtree gives up on the subtree rooted at (level, index): every
// covered data leaf is quarantined on the controller (accesses return a
// typed QuarantineError), and the report records the root, the arbitration
// verdict and the data-loss bound. The LInc treatment of the affected
// levels depends on the verdict: media-explained damage excuses the
// equality (the hidden increments are genuine loss), while replay-shaped or
// ambiguous damage merely marks the level arbitrated — the quarantine
// itself is the detection.
func (p *Policy) quarantineSubtree(st *recoveryState, level int, index uint64, cause memctrl.QuarantineCause, evidence string) {
	p.quarantineCore(st, level, index, cause, evidence)
	// The subtree's increments go unaccounted: its own delta is dropped and
	// its dirty descendants are skipped, so every level from the root's own
	// down to the leaves stops being exactly checkable.
	if cause.MediaExplained() {
		st.excuseThrough(level)
	} else {
		st.arbThrough(level)
	}
}

// quarantineAccounted fences a subtree whose DATA is lost to a recorded
// media fault but whose increment contribution was reconstructed exactly:
// the levels stay exactly checkable, so no equality is excused — which is
// precisely what keeps a concurrent replay elsewhere detectable.
func (p *Policy) quarantineAccounted(st *recoveryState, level int, index uint64, cause memctrl.QuarantineCause, evidence string) {
	p.quarantineCore(st, level, index, cause, evidence)
}

// quarantineCore applies the controller-side fence and records the verdict
// once per subtree root; the excuse/arbitration marks are the caller's.
func (p *Policy) quarantineCore(st *recoveryState, level int, index uint64, cause memctrl.QuarantineCause, evidence string) {
	key := nodeKey{level, index}
	if st.quarRoots[key] {
		return
	}
	st.quarRoots[key] = true
	p.c.QuarantineSubtree(level, index, cause, evidence, &st.report.Degradation)
}

// quarantineDamaged quarantines a node whose persisted image is damaged
// beyond healing, with the cause arbitrated from the node's own line
// evidence: a recorded persistent media fault explains the damage (degraded
// loss); a damaged line nothing explains is ambiguous and quarantines as
// attack-shaped.
func (p *Policy) quarantineDamaged(st *recoveryState, level int, index uint64) {
	ev := p.nodeEvidence(level, index)
	cause, ok := memctrl.MediaCause(ev)
	if !ok {
		cause = memctrl.CauseAmbiguous
	}
	p.quarantineSubtree(st, level, index, cause, ev.String())
}

// nodeEvidence gathers the recorded media evidence for a node's own line.
func (p *Policy) nodeEvidence(level int, index uint64) memctrl.EvidenceSummary {
	return p.c.EvidenceAt(p.c.Layout().Geo.NodeAddr(level, index))
}

// arbitrateFailure attributes a recovery failure at (level, index) against
// recorded media evidence via the controller's shared arbitration: the
// node's own line first, then the failing data line when the error names
// one; unexplained damage is replay-shaped or ambiguous.
func (p *Policy) arbitrateFailure(level int, index uint64, err error) (memctrl.QuarantineCause, string) {
	return p.c.ArbitrateFailure(level, index, err)
}

// quarantineReplayShaped handles a quiet LInc regression: every tracked
// node at the level recovered cleanly, yet the level increment disagrees
// with the crash-time LInc and no recorded media fault supports hidden
// damage. The regression is replay-shaped; the level's suspect dirty nodes
// (those not already fenced) are quarantined and dropped from
// reinstatement. Returns false when no suspect was left to pin it on.
func (p *Policy) quarantineReplayShaped(st *recoveryState, k int) bool {
	any := false
	for _, idx := range sortedKeys(st.dirty[k]) {
		if p.underQuarantine(st, k, idx) {
			continue
		}
		ev := p.nodeEvidence(k, idx)
		p.quarantineSubtree(st, k, idx, memctrl.CauseReplayShaped, ev.String())
		delete(st.recovered[k], idx)
		any = true
	}
	return any
}

// underQuarantine reports whether the node or any ancestor is a quarantined
// subtree root.
func (p *Policy) underQuarantine(st *recoveryState, level int, index uint64) bool {
	geo := &p.c.Layout().Geo
	for {
		if st.quarRoots[nodeKey{level, index}] {
			return true
		}
		if geo.IsTop(level) {
			return false
		}
		level, index, _ = geo.Parent(level, index)
	}
}

// scrub is the degraded-mode self-healing sweep: after the tracked nodes
// are reconstructed, every persisted interior node is checked against the
// sealing invariant and corrupted ones are healed (or their subtrees
// quarantined). Levels run top-down so a healed parent is in place before
// its children consult it; corrupted leaves need no sweep — a corrupt leaf
// fails verification on its first runtime fetch, which is detection, not
// silent corruption.
func (p *Policy) scrub(st *recoveryState) {
	geo := &p.c.Layout().Geo
	for k := geo.Levels - 1; k >= 1; k-- {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			if p.underQuarantine(st, k, idx) {
				continue
			}
			p.staleOf(st, k, idx)
		}
	}
}
