package steins

import (
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Degraded recovery (media-fault tolerance). Steins' sealing discipline
// gives every persisted node a self-verifying image: EvictDirty seals each
// victim under its OWN generated counter (FValue), so a node n persisted by
// any scheme path satisfies NodeMAC(n, n.FValue()) == n.HMAC(). A node
// whose image fails that check was corrupted on the media (or tampered
// with), and — uniquely under counter generation — its counters are pure
// functions of its children (Eq. 1/2), so an interior node with intact
// children can be rebuilt in place: regenerate every counter from the
// persisted child images, re-derive the HMAC under the node's own new
// FValue, and write the healed line back. The healed image is checked for
// chain consistency against the trusted parent-side counter when one is
// available; a mismatch means the children themselves are suspect and the
// whole subtree is quarantined instead.
//
// Corrupted leaves cannot be healed (their counters live nowhere else:
// data-block tag hints only bound a search window) and are quarantined.

// selfConsistent reports whether a persisted node image verifies under its
// own generated counter — the Steins sealing invariant. The all-zero image
// of a never-persisted node is trivially consistent.
func (p *Policy) selfConsistent(st *recoveryState, n *sit.Node) bool {
	if n.Encode() == (counter.Block{}) {
		return true
	}
	st.report.MACOps++
	return p.c.NodeMAC(n, n.FValue()) == n.HMAC()
}

// healNode attempts to rebuild a corrupted persisted node from its children
// and returns the healed image, or the original corrupt image after
// quarantining its subtree when healing is impossible. Child reads go
// through staleOf, so corrupted non-leaf children heal recursively first.
func (p *Policy) healNode(st *recoveryState, n *sit.Node) *sit.Node {
	key := nodeKey{n.Level, n.Index}
	if n.Level == 0 {
		// Leaf counters are not a function of other persisted state;
		// nothing to regenerate from.
		p.quarantineSubtree(st, n.Level, n.Index)
		return n
	}
	if len(st.rollback[key]) > 0 {
		// A buffered flush still targets this node: its persisted image
		// predates the child's flush, so regeneration from the current
		// children cannot reproduce the lost pre-flush slot values.
		p.quarantineSubtree(st, n.Level, n.Index)
		return n
	}
	geo := &p.c.Layout().Geo
	healed := &sit.Node{Level: n.Level, Index: n.Index}
	for i := 0; i < counter.Arity; i++ {
		childIdx := n.Index*counter.Arity + uint64(i)
		if childIdx >= geo.LevelNodes[n.Level-1] {
			continue
		}
		child := p.staleOf(st, n.Level-1, childIdx)
		if st.quarRoots[nodeKey{n.Level - 1, childIdx}] {
			// The child could not be healed either; the regenerated
			// counter would be garbage.
			p.quarantineSubtree(st, n.Level, n.Index)
			return n
		}
		healed.SetCounter(i, child.FValue())
	}
	if st.dirty[n.Level][n.Index] {
		// The node was dirty in the crash-time cache: children may have
		// been flushed after this image was persisted, so the regenerated
		// counters describe the cache image, not the lost stale snapshot.
		// The LInc delta for this level can no longer be validated exactly.
		st.relaxLInc(n.Level)
	} else if pc, ok := p.trustedCounterNoHeal(st, n.Level, n.Index); ok && pc != 0 {
		// Chain consistency: an untracked clean node's parent slot holds
		// f(node at its last persist) = f(current persisted children).
		if pc != healed.FValue() {
			p.quarantineSubtree(st, n.Level, n.Index)
			return n
		}
	}
	st.report.MACOps++
	healed.SetHMAC(p.c.NodeMAC(healed, healed.FValue()))
	st.report.NVMWrites++
	p.c.Device().Poke(geo.NodeAddr(n.Level, n.Index), nvmem.Line(healed.Encode()))
	st.report.Degradation.Healed = append(st.report.Degradation.Healed,
		memctrl.NodeRef{Level: n.Level, Index: n.Index})
	st.healedSet[key] = true
	st.verified[key] = true
	return healed
}

// trustedCounterNoHeal fetches the parent-side counter for (level, index)
// from sources that need no upward healing: the NV buffer override, the
// on-chip root, an already-recovered parent, a memoised (and healed) stale
// parent, or a self-consistent parent peek. ok is false when the parent
// itself is corrupt and not yet healed — the caller defers the check.
func (p *Policy) trustedCounterNoHeal(st *recoveryState, level int, index uint64) (uint64, bool) {
	geo := &p.c.Layout().Geo
	if ov, ok := p.ParentCounterOverride(level, index); ok {
		return ov, true
	}
	if geo.IsTop(level) {
		return p.c.Root().Counter(index), true
	}
	pl, pi, slot := geo.Parent(level, index)
	if n, ok := st.recovered[pl][pi]; ok {
		return n.Counter(slot), true
	}
	if n, ok := st.stales[nodeKey{pl, pi}]; ok {
		if st.quarRoots[nodeKey{pl, pi}] {
			return 0, false
		}
		return n.Counter(slot), true
	}
	parent := p.c.StaleNode(pl, pi)
	if p.selfConsistent(st, parent) {
		return parent.Counter(slot), true
	}
	return 0, false
}

// quarantineSubtree gives up on the subtree rooted at (level, index): every
// covered data leaf is quarantined on the controller (accesses return a
// MediaFault), the report records the root and the data-loss bound, and the
// LInc equality for the affected levels is relaxed (the skipped nodes'
// increments are unknowable).
func (p *Policy) quarantineSubtree(st *recoveryState, level int, index uint64) {
	key := nodeKey{level, index}
	if st.quarRoots[key] {
		return
	}
	st.quarRoots[key] = true
	p.c.QuarantineSubtree(level, index, &st.report.Degradation)
	st.relaxLInc(level)
}

// underQuarantine reports whether the node or any ancestor is a quarantined
// subtree root.
func (p *Policy) underQuarantine(st *recoveryState, level int, index uint64) bool {
	geo := &p.c.Layout().Geo
	for {
		if st.quarRoots[nodeKey{level, index}] {
			return true
		}
		if geo.IsTop(level) {
			return false
		}
		level, index, _ = geo.Parent(level, index)
	}
}

// scrub is the degraded-mode self-healing sweep: after the tracked nodes
// are reconstructed, every persisted interior node is checked against the
// sealing invariant and corrupted ones are healed (or their subtrees
// quarantined). Levels run top-down so a healed parent is in place before
// its children consult it; corrupted leaves need no sweep — a corrupt leaf
// fails verification on its first runtime fetch, which is detection, not
// silent corruption.
func (p *Policy) scrub(st *recoveryState) {
	geo := &p.c.Layout().Geo
	for k := geo.Levels - 1; k >= 1; k-- {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			if p.underQuarantine(st, k, idx) {
				continue
			}
			p.staleOf(st, k, idx)
		}
	}
}
