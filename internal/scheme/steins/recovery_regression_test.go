package steins_test

import (
	"testing"
)

// TestRecoverDuplicateBufferEntries pins the buffered-increment fold for
// a child flushed TWICE with its parent uncached, leaving two buffer
// entries for the same parent slot. The LInc delta of the second flush
// must be computed against the first buffered counter, not the stale NVM
// value — folding both entries against the stale base double-counts the
// first increment and recovery falsely reports replay.
func TestRecoverDuplicateBufferEntries(t *testing.T) {
	for _, split := range []bool{false, true} {
		name := "gc"
		if split {
			name = "sc"
		}
		t.Run(name, func(t *testing.T) {
			c, p := newSteins(t, split)
			expect := make(map[uint64][64]byte)
			write := func(addr uint64, v byte) {
				d := pattern(addr, v)
				if err := c.WriteData(2, addr, d); err != nil {
					t.Fatalf("write %#x: %v", addr, err)
				}
				expect[addr] = d
			}

			// Dirty leaf 0 and its ancestors, then flush the parent so the
			// leaf's next write-back finds it uncached and defers to the
			// NV buffer.
			write(0, 1)
			geo := &c.Layout().Geo
			pl, pi, _ := geo.Parent(0, 0)
			if _, err := c.FlushNode(pl, pi); err != nil {
				t.Fatalf("flush parent: %v", err)
			}
			if _, err := c.FlushNode(0, 0); err != nil {
				t.Fatalf("first leaf flush: %v", err)
			}
			if got := p.BufferedEntries(); got != 1 {
				t.Fatalf("after first flush: %d buffered entries, want 1", got)
			}

			// Re-dirty the same leaf (fetched under the buffered counter
			// override, so the parent stays uncached) and flush again: a
			// second entry for the same parent slot.
			write(0, 2)
			if _, err := c.FlushNode(0, 0); err != nil {
				t.Fatalf("second leaf flush: %v", err)
			}
			if got := p.BufferedEntries(); got != 2 {
				t.Fatalf("after second flush: %d buffered entries, want 2", got)
			}
			if err := p.InvariantError(); err != nil {
				t.Fatalf("pre-crash invariant: %v", err)
			}

			c.Crash()
			if _, err := c.Recover(); err != nil {
				t.Fatalf("recover with duplicate buffer entries: %v", err)
			}
			verifyAll(t, c, expect)
			if err := c.VerifyNVM(); err != nil {
				t.Fatalf("post-recovery NVM: %v", err)
			}
		})
	}
}
