package steins_test

import (
	"encoding/binary"
	"errors"
	"testing"

	"steins/internal/crypt"
	"steins/internal/memctrl"
	"steins/internal/rng"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/steins"
)

func testConfig(split bool) memctrl.Config {
	cfg := memctrl.DefaultConfig(1<<20, split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	return cfg
}

func newSteins(t *testing.T, split bool) (*memctrl.Controller, *steins.Policy) {
	t.Helper()
	c := memctrl.New(testConfig(split), steins.Factory)
	return c, c.Policy().(*steins.Policy)
}

func pattern(addr uint64, v byte) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	for i := 8; i < 64; i++ {
		b[i] = v
	}
	return b
}

// workload drives a deterministic mixed read/write sequence and returns
// the data each address should hold.
func workload(t *testing.T, c *memctrl.Controller, ops int, seed uint64) map[uint64][64]byte {
	t.Helper()
	r := rng.New(seed)
	expect := make(map[uint64][64]byte)
	lines := c.Config().DataBytes / 64
	for i := 0; i < ops; i++ {
		addr := r.Uint64n(lines) * 64
		if r.Bool(0.6) {
			v := pattern(addr, byte(r.Uint64()))
			if err := c.WriteData(5, addr, v); err != nil {
				t.Fatalf("op %d write %#x: %v", i, addr, err)
			}
			expect[addr] = v
		} else {
			got, err := c.ReadData(5, addr)
			if err != nil {
				t.Fatalf("op %d read %#x: %v", i, addr, err)
			}
			want, written := expect[addr]
			if written && got != want {
				t.Fatalf("op %d read %#x: wrong data", i, addr)
			}
		}
	}
	return expect
}

func verifyAll(t *testing.T, c *memctrl.Controller, expect map[uint64][64]byte) {
	t.Helper()
	for addr, want := range expect {
		got, err := c.ReadData(1, addr)
		if err != nil {
			t.Fatalf("verify read %#x: %v", addr, err)
		}
		if got != want {
			t.Fatalf("verify read %#x: wrong data", addr)
		}
	}
}

func TestRuntimeRoundTripGCAndSC(t *testing.T) {
	for _, split := range []bool{false, true} {
		c, p := newSteins(t, split)
		expect := workload(t, c, 4000, 42)
		verifyAll(t, c, expect)
		if err := p.InvariantError(); err != nil {
			t.Fatalf("split=%v: %v", split, err)
		}
	}
}

func TestLIncInvariantHoldsThroughChurn(t *testing.T) {
	// The conservation law of §III-E, checked repeatedly during heavy
	// eviction churn with buffered parent updates in flight.
	c, p := newSteins(t, false)
	r := rng.New(7)
	lines := c.Config().DataBytes / 64
	for i := 0; i < 6000; i++ {
		addr := r.Uint64n(lines) * 64
		if r.Bool(0.7) {
			if err := c.WriteData(3, addr, pattern(addr, byte(i))); err != nil {
				t.Fatal(err)
			}
		} else if _, err := c.ReadData(3, addr); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			if err := p.InvariantError(); err != nil {
				t.Fatalf("after op %d: %v", i, err)
			}
		}
	}
	if err := p.InvariantError(); err != nil {
		t.Fatal(err)
	}
}

func TestNVBufferExercised(t *testing.T) {
	c, p := newSteins(t, false)
	r := rng.New(9)
	lines := c.Config().DataBytes / 64
	sawBuffered := false
	for i := 0; i < 5000; i++ {
		addr := r.Uint64n(lines) * 64
		if err := c.WriteData(2, addr, pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
		if p.BufferedEntries() > 0 {
			sawBuffered = true
		}
	}
	if !sawBuffered {
		t.Fatal("non-volatile buffer never used; write path not exercising deferred parent updates")
	}
	// A read drains the buffer before its verification (§III-E step ④);
	// the read's own fetch may evict and re-buffer, so read the same
	// (now cached) address twice — the second read evicts nothing and
	// must leave the buffer fully drained.
	if _, err := c.ReadData(2, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadData(2, 0); err != nil {
		t.Fatal(err)
	}
	if p.BufferedEntries() != 0 {
		t.Fatalf("buffer not drained by read: %d entries", p.BufferedEntries())
	}
	if err := p.InvariantError(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverRoundTrip(t *testing.T) {
	for _, split := range []bool{false, true} {
		c, _ := newSteins(t, split)
		expect := workload(t, c, 4000, 1234)
		c.Crash()
		rep, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v recover: %v", split, err)
		}
		if rep.NodesRecovered == 0 {
			t.Fatalf("split=%v: nothing recovered after dirty workload", split)
		}
		if rep.NVMReads == 0 || rep.TimeNS <= 0 {
			t.Fatalf("split=%v: empty recovery report %+v", split, rep)
		}
		verifyAll(t, c, expect)
		// The system keeps operating: more writes, reads, another crash.
		expect2 := workload(t, c, 1000, 99)
		verifyAll(t, c, expect2)
	}
}

func TestRecoverWithPendingBuffer(t *testing.T) {
	// Crash with entries still parked in the non-volatile buffer: recovery
	// must fold them into the LIncs (§III-G step ⑤).
	c, p := newSteins(t, false)
	expect := workload(t, c, 3000, 5)
	if p.BufferedEntries() == 0 {
		// Force buffered state: keep writing until an eviction defers.
		r := rng.New(11)
		lines := c.Config().DataBytes / 64
		for i := 0; i < 10000 && p.BufferedEntries() == 0; i++ {
			addr := r.Uint64n(lines) * 64
			if err := c.WriteData(2, addr, pattern(addr, byte(i))); err != nil {
				t.Fatal(err)
			}
			expect[addr] = pattern(addr, byte(i))
		}
	}
	if p.BufferedEntries() == 0 {
		t.Skip("could not produce a pending buffer entry")
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover with pending buffer: %v", err)
	}
	verifyAll(t, c, expect)
}

func TestDoubleCrashRecover(t *testing.T) {
	c, _ := newSteins(t, false)
	expect := workload(t, c, 3000, 21)
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("first recover: %v", err)
	}
	// Immediately crash again: recovered nodes are dirty in cache, so the
	// second recovery must regenerate them identically.
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	verifyAll(t, c, expect)
}

func TestRecoverIdleSystem(t *testing.T) {
	// No dirty metadata: recovery compares every LInc with zero and
	// succeeds trivially (§III-G).
	c, _ := newSteins(t, false)
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("idle recover: %v", err)
	}
	if rep.NodesRecovered != 0 {
		t.Fatalf("idle recovery recovered %d nodes", rep.NodesRecovered)
	}
}

func TestRecoverAfterCleanShutdownEquivalent(t *testing.T) {
	// Write, read everything back (drains buffer), crash, recover: tracked
	// nodes may be stale-clean, which must recover as no-ops.
	c, _ := newSteins(t, false)
	expect := workload(t, c, 2000, 31)
	verifyAll(t, c, expect)
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	verifyAll(t, c, expect)
}

func TestForceAllDirtyRecover(t *testing.T) {
	// The §IV-D evaluation assumption: every cached node dirty at crash.
	for _, split := range []bool{false, true} {
		c, p := newSteins(t, split)
		expect := workload(t, c, 5000, 77)
		c.ForceAllDirty()
		if err := p.InvariantError(); err != nil {
			t.Fatalf("split=%v after ForceAllDirty: %v", split, err)
		}
		c.Crash()
		rep, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v recover: %v", split, err)
		}
		if rep.NodesRecovered < uint64(c.Meta().Capacity()/2) {
			t.Fatalf("split=%v: only %d nodes recovered with a force-dirtied cache",
				split, rep.NodesRecovered)
		}
		verifyAll(t, c, expect)
	}
}

func TestRecoveryTimeScalesWithLeafCover(t *testing.T) {
	// §IV-D: split leaves need 64 data reads per leaf vs 8, so Steins-SC
	// recovery is several times slower than Steins-GC at equal dirty sets.
	times := map[bool]float64{}
	for _, split := range []bool{false, true} {
		c, _ := newSteins(t, split)
		workload(t, c, 5000, 13)
		c.ForceAllDirty()
		c.Crash()
		rep, err := c.Recover()
		if err != nil {
			t.Fatal(err)
		}
		times[split] = rep.TimeNS / float64(rep.NodesRecovered)
	}
	if times[true] < times[false]*2 {
		t.Fatalf("per-node recovery: SC %.0f ns not >> GC %.0f ns", times[true], times[false])
	}
}

// --- attack detection during recovery ---------------------------------------

// setupCrashed returns a crashed system with a dirty working set.
func setupCrashed(t *testing.T, split bool) (*memctrl.Controller, map[uint64][64]byte) {
	t.Helper()
	c, _ := newSteins(t, split)
	expect := workload(t, c, 4000, 321)
	c.Crash()
	return c, expect
}

func TestRecoveryDetectsTamperedChildNode(t *testing.T) {
	c, _ := setupCrashed(t, false)
	// Corrupt a populated leaf node (a child used to regenerate level 1).
	lay := c.Layout()
	for idx := uint64(0); idx < lay.Geo.LevelNodes[0]; idx++ {
		addr := lay.Geo.NodeAddr(0, idx)
		line := c.Device().Peek(addr)
		if line == ([64]byte{}) {
			continue
		}
		line[10] ^= 0x40
		c.Device().Poke(addr, line)
		break
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrTamper) && !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover after node tamper = %v, want integrity error", err)
	}
}

func TestRecoveryDetectsTamperedData(t *testing.T) {
	c, expect := setupCrashed(t, false)
	var target uint64
	for addr := range expect {
		target = addr
		break
	}
	line := c.Device().Peek(target)
	line[0] ^= 1
	c.Device().Poke(target, line)
	_, err := c.Recover()
	if err == nil {
		// The tampered block's leaf may not be in the dirty set; then
		// recovery succeeds but the runtime read must catch it.
		if _, rerr := c.ReadData(0, target); !errors.Is(rerr, memctrl.ErrTamper) {
			t.Fatalf("tampered data escaped both recovery and runtime: %v", rerr)
		}
		return
	}
	if !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after data tamper = %v, want ErrTamper", err)
	}
}

func TestRecoveryDetectsReplayedData(t *testing.T) {
	// Replay: save a block's (ciphertext, tag), write newer data, crash,
	// restore the old pair. The recovered counter is smaller, so the
	// level-0 increment falls short of L0Inc (§III-H).
	c, p := newSteins(t, false)
	target := uint64(64 * 3)
	if err := c.WriteData(1, target, pattern(target, 1)); err != nil {
		t.Fatal(err)
	}
	oldLine := c.Device().Peek(target)
	oldTag := c.Tag(target)
	if err := c.WriteData(1, target, pattern(target, 2)); err != nil {
		t.Fatal(err)
	}
	if err := p.InvariantError(); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(target, oldLine)
	c.SetTag(target, oldTag)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover after data replay = %v, want ErrReplay", err)
	}
}

func TestRecoveryDetectsReplayedNode(t *testing.T) {
	// Replay a whole persisted leaf node with an authentic OLD flushed
	// version: its HMAC is self-consistent (made with its own generated
	// counter), but the parent holds the newer generated counter and the
	// recovered-vs-stale increments no longer match the LIncs (§III-D).
	c, _ := newSteins(t, false)
	lay := c.Layout()
	leafAddr := lay.Geo.NodeAddr(0, 0)

	// Epoch 1: write, flush leaf 0, drain the parent update via a read.
	if err := c.WriteData(1, 0, pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlushNode(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadData(1, 0); err != nil {
		t.Fatal(err)
	}
	epoch1 := c.Device().Peek(leafAddr)
	if epoch1 == ([64]byte{}) {
		t.Fatal("epoch-1 flush left no node image")
	}

	// Epoch 2: newer writes under the same leaf, flushed again.
	if err := c.WriteData(1, 64, pattern(64, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.FlushNode(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadData(1, 64); err != nil {
		t.Fatal(err)
	}

	// Epoch 3 pending: dirty the leaf again and crash.
	if err := c.WriteData(1, 128, pattern(128, 3)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(leafAddr, epoch1) // replay the stale base
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) && !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after node replay = %v, want integrity error", err)
	}
}

func TestRecoveryDetectsErasedRecords(t *testing.T) {
	// §III-H: marking dirty nodes as clean (zeroing records) leaves the
	// level increment short of the LInc.
	c, _ := setupCrashed(t, false)
	lay := c.Layout()
	for li := uint64(0); li < lay.RecordLines(); li++ {
		c.Device().Poke(lay.RecordBase+li*64, [64]byte{})
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover with erased records = %v, want ErrReplay", err)
	}
}

func TestRecoveryToleratesSpuriousRecords(t *testing.T) {
	// §III-H: marking CLEAN nodes as dirty must not break recovery — the
	// spurious nodes contribute zero increment.
	c, _ := newSteins(t, false)
	expect := workload(t, c, 3000, 55)
	c.Crash()
	lay := c.Layout()
	// Append records for clean nodes into empty record slots.
	line := c.Device().Peek(lay.RecordBase)
	spurious := 0
	for pos := 0; pos < memctrl.RecordEntriesPerLine && spurious < 3; pos++ {
		v := binary.LittleEndian.Uint32(line[pos*4:])
		if v == 0 {
			// Mark top-level node 0 (certainly not dirty-tracked there).
			off := lay.Geo.Offset(lay.Geo.Levels-1, 0) + 1
			binary.LittleEndian.PutUint32(line[pos*4:], off)
			spurious++
		}
	}
	if spurious == 0 {
		t.Skip("no empty record slot to poison")
	}
	c.Device().Poke(lay.RecordBase, line)
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover with spurious clean records: %v", err)
	}
	verifyAll(t, c, expect)
}

func TestRecoveryDetectsGarbageRecords(t *testing.T) {
	// Records holding out-of-range offsets are ignored; if they displaced
	// real entries the LInc check fires — either way no false acceptance.
	c, _ := setupCrashed(t, false)
	lay := c.Layout()
	var bad [64]byte
	for i := 0; i < 64; i += 4 {
		binary.LittleEndian.PutUint32(bad[i:], 0xFFFFFF00)
	}
	for li := uint64(0); li < lay.RecordLines(); li++ {
		c.Device().Poke(lay.RecordBase+li*64, bad)
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover with garbage records = %v, want ErrReplay", err)
	}
}

func TestStorageOverheadSteins(t *testing.T) {
	c, p := newSteins(t, false)
	s := p.Storage()
	lay := c.Layout()
	if s.TreeBytes != lay.Geo.MetaBytes {
		t.Fatalf("tree bytes %d", s.TreeBytes)
	}
	// §III-C: 16 KB record region per 256 KB cache => cache/16.
	if s.NVMExtraBytes != uint64(c.Config().MetaCacheBytes)/16 {
		t.Fatalf("record region %d, want cache/16 = %d", s.NVMExtraBytes, c.Config().MetaCacheBytes/16)
	}
	if s.OnChipNVBytes != 64+128 {
		t.Fatalf("on-chip NV %d, want 192 (LIncs + buffer)", s.OnChipNVBytes)
	}
	if s.CacheTaxBytes != 0 {
		t.Fatal("Steins must not tax the metadata cache")
	}
}

func TestSparseCacheRecover(t *testing.T) {
	schemetest.RunSparseCacheRecover(t, steins.Factory, false)
	schemetest.RunSparseCacheRecover(t, steins.Factory, true)
}

func TestRealCryptoPipeline(t *testing.T) {
	// The full stack under the paper's actual primitives — AES-CTR OTPs
	// and HMAC-SHA-256 — instead of the fast simulation crypto: round
	// trip, crash recovery, and tamper detection must behave identically.
	cfg := testConfig(true)
	cfg.MAC = crypt.HMACSHA256{}
	cfg.OTP = crypt.AESPad{}
	c := memctrl.New(cfg, steins.Factory)
	r := rng.New(4)
	lines := cfg.DataBytes / 64
	expect := map[uint64][64]byte{}
	for i := 0; i < 1500; i++ {
		addr := r.Uint64n(lines) * 64
		v := pattern(addr, byte(i))
		if err := c.WriteData(5, addr, v); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		expect[addr] = v
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	verifyAll(t, c, expect)
	var target uint64
	for a := range expect {
		target = a
		break
	}
	line := c.Device().Peek(target)
	line[9] ^= 2
	c.Device().Poke(target, line)
	if _, err := c.ReadData(0, target); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("tamper under real crypto = %v, want ErrTamper", err)
	}
}

func TestWriteThroughKeepsHotLineRecoverable(t *testing.T) {
	// §II-D: without the write-through guard, a block written more times
	// than the recovery hint window (2^16 for general leaves) between
	// flushes could not be recovered. Hammer one block past the window
	// with a tiny threshold and verify crash recovery still works.
	cfg := testConfig(false)
	cfg.WriteThroughEvery = 500
	c := memctrl.New(cfg, steins.Factory)
	p := c.Policy().(*steins.Policy)
	for i := 0; i < 2500; i++ {
		if err := c.WriteData(1, 0, pattern(0, byte(i))); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := p.InvariantError(); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, err := c.ReadData(1, 0)
	if err != nil || got != pattern(0, byte(2499%256)) {
		t.Fatalf("hot line after recovery: %v", err)
	}
}

func TestPaperConstantsPinned(t *testing.T) {
	// §III-D: "a 64B non-volatile register can store all eight LIncs,
	// which is enough for 16GB memory" — at the paper's scale the LInc
	// array must fit 8 slots of 8 bytes.
	for _, split := range []bool{false, true} {
		cfg := memctrl.DefaultConfig(16<<30, split)
		lay := memctrl.NewLayout(cfg)
		if lay.Geo.Levels > 8 {
			t.Fatalf("split=%v: %d NVM levels need more than a 64 B LInc register", split, lay.Geo.Levels)
		}
	}
	// §III-E: the 128 B buffer holds 8 entries of 16 B in this model.
	c, p := newSteins(t, false)
	if got := c.Config().NVBufferBytes / 16; got != 8 {
		t.Fatalf("buffer entries = %d, want 8", got)
	}
	_ = p
	// §III-C: a 64 B record line covers 16 nodes, and the record region is
	// cache-capacity entries of 4 bytes.
	if memctrl.RecordEntriesPerLine != 16 {
		t.Fatalf("record entries per line = %d", memctrl.RecordEntriesPerLine)
	}
	lay := c.Layout()
	if lay.RecordBytes != uint64(c.Meta().Capacity())*4 {
		t.Fatalf("record region %d bytes for %d cache lines", lay.RecordBytes, c.Meta().Capacity())
	}
}

func TestDrainReentrancyStress(t *testing.T) {
	// Regression for the drain/applyBuffered interleaving: with a 2-entry
	// buffer and a tiny 2-way cache, drains run constantly while evictions
	// re-adopt in-flight nodes, exercising the hazard where a nested
	// eviction applies (and removes) the entry the outer drain holds.
	cfg := testConfig(false)
	cfg.MetaCacheBytes = 1 << 10 // 16 lines
	cfg.MetaCacheWays = 2
	cfg.NVBufferBytes = 32 // 2 entries: constant drains
	c := memctrl.New(cfg, steins.Factory)
	p := c.Policy().(*steins.Policy)
	r := rng.New(23)
	lines := cfg.DataBytes / 64
	expect := map[uint64][64]byte{}
	for i := 0; i < 20000; i++ {
		addr := r.Uint64n(lines) * 64
		if r.Bool(0.75) {
			v := pattern(addr, byte(i))
			if err := c.WriteData(2, addr, v); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
			expect[addr] = v
		} else if _, err := c.ReadData(2, addr); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if i%2000 == 0 {
			if err := p.InvariantError(); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := c.VerifyNVM(); err != nil {
		t.Fatalf("persisted tree inconsistent: %v", err)
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	verifyAll(t, c, expect)
}
