// Snapshot support: Steins' state beyond the shared controller structures —
// the per-level LInc registers, the non-volatile parent-counter buffer, and
// the ADR-cached record lines with their exact LRU bookkeeping.

package steins

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"steins/internal/cache"
	"steins/internal/memctrl"
)

// bufState is the exported image of one non-volatile buffer slot.
type bufState struct {
	Level   int
	Index   uint64
	Counter uint64
}

// recordEntryState is one cached record line with its LRU bookkeeping.
type recordEntryState struct {
	Addr  uint64
	Slot  int
	Stamp uint64
	Dirty bool
	Line  [memctrl.RecordEntriesPerLine]uint32
}

// policyState is the gob image of the scheme state.
type policyState struct {
	LInc         []uint64
	Buf          []bufState
	RecordsStamp uint64
	RecordsStats cache.Stats
	Records      []recordEntryState
}

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	if p.draining {
		return nil, fmt.Errorf("steins: snapshot during a buffer drain (not a retired-op boundary)")
	}
	st := policyState{LInc: append([]uint64(nil), p.linc...)}
	for _, e := range p.buf {
		st.Buf = append(st.Buf, bufState{Level: e.level, Index: e.index, Counter: e.counter})
	}
	rs := p.records.State()
	st.RecordsStamp = rs.Stamp
	st.RecordsStats = rs.Stats
	for _, e := range rs.Entries {
		st.Records = append(st.Records, recordEntryState{
			Addr: e.Addr, Slot: e.Slot, Stamp: e.Stamp, Dirty: e.Dirty, Line: *e.Payload,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("steins: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	var st policyState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("steins: decode state: %w", err)
	}
	if len(st.LInc) != len(p.linc) {
		return fmt.Errorf("steins: state has %d LInc levels, scheme has %d", len(st.LInc), len(p.linc))
	}
	copy(p.linc, st.LInc)
	p.buf = p.buf[:0]
	for _, e := range st.Buf {
		p.buf = append(p.buf, bufEntry{level: e.Level, index: e.Index, counter: e.Counter})
	}
	rs := cache.State[*recordLine]{Stamp: st.RecordsStamp, Stats: st.RecordsStats}
	for _, e := range st.Records {
		line := recordLine(e.Line)
		rs.Entries = append(rs.Entries, cache.EntryState[*recordLine]{
			Addr: e.Addr, Slot: e.Slot, Stamp: e.Stamp, Dirty: e.Dirty, Payload: &line,
		})
	}
	p.records.SetState(rs)
	p.draining = false
	return nil
}
