package steins_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/steins"
)

func newDegradedSteins(t *testing.T, split bool) (*memctrl.Controller, *steins.Policy) {
	t.Helper()
	cfg := testConfig(split)
	cfg.DegradedRecovery = true
	c := memctrl.New(cfg, steins.Factory)
	return c, c.Policy().(*steins.Policy)
}

// corruptNode flips one bit of a node's persisted NVM image via Poke —
// the tamper model: the damage leaves no media evidence.
func corruptNode(c *memctrl.Controller, level int, index uint64) {
	addr := c.Layout().Geo.NodeAddr(level, index)
	line := c.Device().Peek(addr)
	line[3] ^= 0x10
	c.Device().Poke(addr, line)
}

// corruptNodeMedia flips one bit of a node's persisted image as MEDIA
// damage: the evidence ledger records the uncorrectable event, so degraded
// recovery's arbitration attributes the damage to the media.
func corruptNodeMedia(c *memctrl.Controller, level int, index uint64) {
	addr := c.Layout().Geo.NodeAddr(level, index)
	line := c.Device().Peek(addr)
	line[3] ^= 0x10
	c.Device().CorruptLine(addr, line)
}

// persistedInteriorNodes lists (level, index) of every nonzero persisted
// non-leaf node.
func persistedInteriorNodes(c *memctrl.Controller) []memctrl.NodeRef {
	geo := &c.Layout().Geo
	var out []memctrl.NodeRef
	for k := 1; k < geo.Levels; k++ {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			if c.Device().Peek(geo.NodeAddr(k, idx)) != (nvmem.Line{}) {
				out = append(out, memctrl.NodeRef{Level: k, Index: idx})
			}
		}
	}
	return out
}

// TestSteinsHealsCorruptedInteriorNodes is the paper's self-healing claim:
// with k >= 3 interior nodes corrupted on the media (evidence-backed
// damage) but their children intact, degraded recovery regenerates each
// one from its children (Eq. 1/2), re-seals it, and completes with nothing
// quarantined or lost.
func TestSteinsHealsCorruptedInteriorNodes(t *testing.T) {
	for _, split := range []bool{false, true} {
		c, _ := newDegradedSteins(t, split)
		expect := workload(t, c, 4000, 1234)
		c.Crash()

		candidates := persistedInteriorNodes(c)
		if len(candidates) < 3 {
			t.Fatalf("split=%v: only %d persisted interior nodes", split, len(candidates))
		}
		// Spread the corruption: first, middle and last persisted node, and
		// a fourth if available, hitting several levels.
		picks := []memctrl.NodeRef{candidates[0], candidates[len(candidates)/2], candidates[len(candidates)-1]}
		if len(candidates) > 3 {
			picks = append(picks, candidates[len(candidates)/4])
		}
		corrupted := make(map[memctrl.NodeRef]bool)
		for _, ref := range picks {
			if !corrupted[ref] {
				corrupted[ref] = true
				corruptNodeMedia(c, ref.Level, ref.Index)
			}
		}
		if len(corrupted) < 3 {
			t.Fatalf("split=%v: only corrupted %d distinct nodes", split, len(corrupted))
		}

		rep, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v: degraded recover: %v", split, err)
		}
		healed := make(map[memctrl.NodeRef]bool)
		for _, ref := range rep.Degradation.Healed {
			healed[ref] = true
		}
		for ref := range corrupted {
			if !healed[ref] {
				t.Errorf("split=%v: corrupted node %+v not healed", split, ref)
			}
		}
		if len(rep.Degradation.Unrecoverable) != 0 {
			t.Fatalf("split=%v: unrecoverable set not empty: %+v", split, rep.Degradation.Unrecoverable)
		}
		if len(rep.Degradation.Quarantined) != 0 {
			t.Fatalf("split=%v: children were intact, nothing should be quarantined: %+v",
				split, rep.Degradation.Quarantined)
		}
		if c.QuarantinedLeaves() != 0 {
			t.Fatalf("split=%v: %d leaves quarantined", split, c.QuarantinedLeaves())
		}

		// Healed in place: every image self-verifies again and the full data
		// set reads back.
		for ref := range corrupted {
			n := c.StaleNode(ref.Level, ref.Index)
			if c.NodeMAC(n, n.FValue()) != n.HMAC() {
				t.Errorf("split=%v: node %+v not self-consistent after heal", split, ref)
			}
		}
		verifyAll(t, c, expect)

		// And the system keeps running, including another clean crash cycle.
		expect2 := workload(t, c, 500, 77)
		c.Crash()
		rep2, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v: second recover: %v", split, err)
		}
		if rep2.Degradation.Degraded() {
			t.Fatalf("split=%v: second recovery still degraded: %+v", split, rep2.Degradation)
		}
		verifyAll(t, c, expect2)
	}
}

// TestDegradedRecoveryQuarantinesCorruptLeaf: a corrupted leaf node cannot
// be regenerated (its counters live nowhere else), so degraded recovery
// must fence off exactly its coverage and keep everything else available.
func TestDegradedRecoveryQuarantinesCorruptLeaf(t *testing.T) {
	c, _ := newDegradedSteins(t, false)
	expect := workload(t, c, 4000, 99)

	c.Crash()
	// Corrupt a level-1 interior node AND one of its persisted leaf
	// children: the degraded scrub visits every interior node, so the heal
	// is guaranteed to run, and the corrupt child makes it impossible —
	// exactly the quarantine case.
	geo := &c.Layout().Geo
	parent, leafChild := uint64(0), uint64(0)
	found := false
pick:
	for pi := uint64(0); pi < geo.LevelNodes[1]; pi++ {
		if c.Device().Peek(geo.NodeAddr(1, pi)) == (nvmem.Line{}) {
			continue
		}
		for i := uint64(0); i < 8; i++ {
			ci := pi*8 + i
			if ci < geo.LevelNodes[0] && c.Device().Peek(geo.NodeAddr(0, ci)) != (nvmem.Line{}) {
				parent, leafChild, found = pi, ci, true
				break pick
			}
		}
	}
	if !found {
		t.Fatal("no persisted level-1 node with a persisted leaf child")
	}
	corruptNode(c, 1, parent)
	corruptNode(c, 0, leafChild)

	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("degraded recover: %v", err)
	}
	if len(rep.Degradation.Quarantined) == 0 || rep.Degradation.DataLossBoundBytes == 0 {
		t.Fatalf("quarantine not reported: %+v", rep.Degradation)
	}
	if !c.LeafQuarantined(leafChild) {
		t.Fatalf("leaf %d under the failed heal not quarantined", leafChild)
	}
	if c.QuarantinedLeaves() == 0 {
		t.Fatal("no leaves quarantined on the controller")
	}
	// The damage was injected via Poke — no media evidence — so the
	// arbitration must NOT blame the media: evidence-free damage is
	// attack-shaped.
	if rec, ok := c.LeafQuarantineRecord(leafChild); !ok {
		t.Fatalf("leaf %d has no quarantine record", leafChild)
	} else if rec.Cause.MediaExplained() {
		t.Fatalf("evidence-free corruption arbitrated as media: %+v", rec)
	}
	if !rep.Degradation.ReplayShaped() {
		t.Fatalf("degradation report not flagged replay-shaped: %+v", rep.Degradation.Records)
	}

	// No silent corruption: every address either reads back correctly or
	// fails with a structured error, and failures stay inside the
	// quarantined coverage.
	for addr, want := range expect {
		got, rerr := c.ReadData(1, addr)
		if rerr != nil {
			l, _ := geo.LeafOfData(addr)
			if !c.LeafQuarantined(l) {
				t.Fatalf("read %#x failed outside quarantine: %v", addr, rerr)
			}
			if !errors.Is(rerr, memctrl.ErrMediaFault) {
				t.Fatalf("read %#x: unstructured failure %v", addr, rerr)
			}
			continue
		}
		if got != want {
			t.Fatalf("read %#x: silently wrong data", addr)
		}
	}

	// A fresh write into the quarantined coverage is the re-admission path:
	// it succeeds, the written slot reads back the fresh data, and the rest
	// of the leaf stays fenced with the typed quarantine error.
	waddr := geo.DataAddr(leafChild, 0)
	if werr := c.WriteData(1, waddr, pattern(waddr, 1)); werr != nil {
		t.Fatalf("re-admitting write = %v", werr)
	}
	if got, rerr := c.ReadData(1, waddr); rerr != nil {
		t.Fatalf("read of re-admitted slot: %v", rerr)
	} else if got != pattern(waddr, 1) {
		t.Fatal("re-admitted slot read back wrong data")
	}
	fenced := geo.DataAddr(leafChild, 1)
	var qe *memctrl.QuarantineError
	if _, rerr := c.ReadData(1, fenced); !errors.As(rerr, &qe) {
		t.Fatalf("read beside the re-admitted slot = %v, want *QuarantineError", rerr)
	} else if qe.Leaf != leafChild || qe.Cause.MediaExplained() {
		t.Fatalf("quarantine error carries wrong arbitration: %+v", qe)
	}
}

// pickDamagedPair finds a persisted level-1 node with a persisted leaf
// child and corrupts both via Poke (evidence-free damage): the guaranteed
// quarantine setup shared by the idempotency and re-admission tests.
func pickDamagedPair(t *testing.T, c *memctrl.Controller) (parent, leafChild uint64) {
	t.Helper()
	geo := &c.Layout().Geo
	for pi := uint64(0); pi < geo.LevelNodes[1]; pi++ {
		if c.Device().Peek(geo.NodeAddr(1, pi)) == (nvmem.Line{}) {
			continue
		}
		for i := uint64(0); i < 8; i++ {
			ci := pi*8 + i
			if ci < geo.LevelNodes[0] && c.Device().Peek(geo.NodeAddr(0, ci)) != (nvmem.Line{}) {
				corruptNode(c, 1, pi)
				corruptNode(c, 0, ci)
				return pi, ci
			}
		}
	}
	t.Fatal("no persisted level-1 node with a persisted leaf child")
	return 0, 0
}

// quarantineRecords snapshots every quarantined leaf's arbitration record,
// keyed by leaf index.
func quarantineRecords(c *memctrl.Controller) map[uint64]memctrl.QuarantineRecord {
	out := make(map[uint64]memctrl.QuarantineRecord)
	for leaf := uint64(0); leaf < c.Layout().Geo.LevelNodes[0]; leaf++ {
		if rec, ok := c.LeafQuarantineRecord(leaf); ok {
			out[leaf] = rec
		}
	}
	return out
}

// TestQuarantiningRecoveryIdempotent: a recovery that quarantines is a
// stable verdict, not a one-shot. Crashing again with no intervening
// writes re-runs the arbitration against the same damage and the same
// evidence ledgers, and must reproduce the identical quarantine set —
// roots, causes and evidence summaries included.
func TestQuarantiningRecoveryIdempotent(t *testing.T) {
	c, _ := newDegradedSteins(t, false)
	workload(t, c, 4000, 99)
	c.Crash()
	_, leafChild := pickDamagedPair(t, c)

	if _, err := c.Recover(); err != nil {
		t.Fatalf("first degraded recover: %v", err)
	}
	recs1 := quarantineRecords(c)
	if _, ok := recs1[leafChild]; !ok {
		t.Fatalf("leaf %d not quarantined by the first recovery", leafChild)
	}

	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("second degraded recover: %v", err)
	}
	recs2 := quarantineRecords(c)
	if !reflect.DeepEqual(recs1, recs2) {
		t.Fatalf("recovery verdicts not idempotent:\nfirst:  %+v\nsecond: %+v", recs1, recs2)
	}
}

// pickQuietLeaf finds a persisted leaf with no unflushed increments in the
// live cache (its crash-time delta is zero, so damaging it disturbs
// nothing the LInc equalities account) whose parent IS tracked dirty (so
// the next recovery deterministically visits the leaf and renders its
// verdict). Call it BEFORE Crash, while the cache is still live.
func pickQuietLeaf(t *testing.T, c *memctrl.Controller) uint64 {
	t.Helper()
	geo := &c.Layout().Geo
	for leaf := uint64(0); leaf < geo.LevelNodes[0]; leaf++ {
		if c.Device().Peek(geo.NodeAddr(0, leaf)) == (nvmem.Line{}) {
			continue
		}
		if e, ok := c.Meta().Probe(geo.NodeAddr(0, leaf)); ok && e.Dirty {
			continue
		}
		pl, pi, _ := geo.Parent(0, leaf)
		if pe, ok := c.Meta().Probe(geo.NodeAddr(pl, pi)); ok && pe.Dirty {
			return leaf
		}
	}
	t.Fatal("no quiet persisted leaf with a tracked parent")
	return 0
}

// TestReadmissionSurvivesCrashRecover: once a quarantined leaf is fully
// re-admitted by fresh writes AND the rewritten branch resealed (the
// condemned NVM image replaced by a freshly sealed one), a subsequent
// crash/recover cycle must not resurrect the quarantine — the adoption
// reconciled the parent side onto the re-admitted base, the reseal wrote
// honest increment deltas, and the rebased trust registers balance, so
// the next recovery has nothing left to arbitrate there.
func TestReadmissionSurvivesCrashRecover(t *testing.T) {
	c, _ := newDegradedSteins(t, false)
	expect := workload(t, c, 4000, 99)
	leafChild := pickQuietLeaf(t, c)
	c.Crash()
	corruptNode(c, 0, leafChild)
	if _, err := c.Recover(); err != nil {
		t.Fatalf("degraded recover: %v", err)
	}
	if !c.LeafQuarantined(leafChild) {
		t.Fatalf("leaf %d not quarantined", leafChild)
	}

	geo := &c.Layout().Geo
	for slot := 0; slot < int(geo.LeafCover); slot++ {
		addr := geo.DataAddr(leafChild, slot)
		expect[addr] = pattern(addr, 7)
		if err := c.WriteData(1, addr, expect[addr]); err != nil {
			t.Fatalf("re-admitting write slot %d: %v", slot, err)
		}
	}
	if c.LeafQuarantined(leafChild) {
		t.Fatal("full-coverage rewrite did not lift the quarantine")
	}
	// Re-admission completes on reseal: flush the rewritten leaf so the
	// condemned NVM image is replaced by a freshly sealed one before the
	// next crash. Until then the damaged image is still on media and the
	// next recovery would legitimately re-arbitrate it.
	if _, err := c.FlushNode(0, leafChild); err != nil {
		t.Fatalf("reseal flush: %v", err)
	}

	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recover after re-admission: %v", err)
	}
	if c.LeafQuarantined(leafChild) {
		t.Fatalf("quarantine resurrected after re-admission: %+v", rep.Degradation.Records)
	}
	for slot := 0; slot < int(geo.LeafCover); slot++ {
		addr := geo.DataAddr(leafChild, slot)
		got, rerr := c.ReadData(1, addr)
		if rerr != nil {
			t.Fatalf("read re-admitted slot %d after recover: %v", slot, rerr)
		}
		if got != expect[addr] {
			t.Fatalf("re-admitted slot %d read back wrong data after recover", slot)
		}
	}
}

// TestQuarantineStateRoundTrip: State/Restore must carry the quarantine
// verdicts byte-identically — bitset, arbitration records (root, cause,
// evidence) and partial re-admission masks — so a snapshotted machine
// resumes with exactly the fences and exactly the typed errors it had.
func TestQuarantineStateRoundTrip(t *testing.T) {
	c, _ := newDegradedSteins(t, false)
	workload(t, c, 4000, 99)
	c.Crash()
	_, leafChild := pickDamagedPair(t, c)
	if _, err := c.Recover(); err != nil {
		t.Fatalf("degraded recover: %v", err)
	}
	geo := &c.Layout().Geo
	// Partial re-admission so the mask is non-trivial in the snapshot.
	waddr := geo.DataAddr(leafChild, 0)
	if err := c.WriteData(1, waddr, pattern(waddr, 9)); err != nil {
		t.Fatalf("partial re-admission write: %v", err)
	}

	encode := func(ctrl *memctrl.Controller) []byte {
		st, err := ctrl.State()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := encode(c)
	st, err := c.State()
	if err != nil {
		t.Fatal(err)
	}
	c2, _ := newDegradedSteins(t, false)
	if err := c2.Restore(st); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if b := encode(c2); !bytes.Equal(a, b) {
		t.Fatal("restored controller state not byte-identical to the original")
	}

	rec1, ok1 := c.LeafQuarantineRecord(leafChild)
	rec2, ok2 := c2.LeafQuarantineRecord(leafChild)
	if !ok1 || !ok2 || !reflect.DeepEqual(rec1, rec2) {
		t.Fatalf("arbitration record did not survive the round trip: %+v vs %+v", rec1, rec2)
	}
	if c.ReadmittedSlots(leafChild) != c2.ReadmittedSlots(leafChild) {
		t.Fatal("re-admission mask did not survive the round trip")
	}
	if got, rerr := c2.ReadData(1, waddr); rerr != nil || got != pattern(waddr, 9) {
		t.Fatalf("re-admitted slot on the restored controller: got err %v", rerr)
	}
	var qe *memctrl.QuarantineError
	if _, rerr := c2.ReadData(1, geo.DataAddr(leafChild, 1)); !errors.As(rerr, &qe) {
		t.Fatalf("fenced slot on the restored controller = %v, want *QuarantineError", rerr)
	} else if qe.Cause != rec1.Cause || qe.Evidence != rec1.Evidence {
		t.Fatalf("typed error lost the arbitration: %+v vs record %+v", qe, rec1)
	}
}

// TestDegradedRecoveryOffFailsClosed pins the default behaviour: with
// DegradedRecovery off, media corruption aborts recovery with an integrity
// error instead of healing.
func TestDegradedRecoveryOffFailsClosed(t *testing.T) {
	c, _ := newSteins(t, false)
	workload(t, c, 4000, 1234)
	c.Crash()
	candidates := persistedInteriorNodes(c)
	if len(candidates) == 0 {
		t.Fatal("no persisted interior nodes")
	}
	// Corrupt every persisted interior node: at least one sits on the
	// recovery verification chain, and without degraded mode any one of
	// them must abort the pass.
	for _, ref := range candidates {
		corruptNode(c, ref.Level, ref.Index)
	}
	if _, err := c.Recover(); err == nil {
		t.Fatal("corrupt nodes recovered without error and without degraded mode")
	}
}
