package steins_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/steins"
)

func newDegradedSteins(t *testing.T, split bool) (*memctrl.Controller, *steins.Policy) {
	t.Helper()
	cfg := testConfig(split)
	cfg.DegradedRecovery = true
	c := memctrl.New(cfg, steins.Factory)
	return c, c.Policy().(*steins.Policy)
}

// corruptNode flips one bit of a node's persisted NVM image.
func corruptNode(c *memctrl.Controller, level int, index uint64) {
	addr := c.Layout().Geo.NodeAddr(level, index)
	line := c.Device().Peek(addr)
	line[3] ^= 0x10
	c.Device().Poke(addr, line)
}

// persistedInteriorNodes lists (level, index) of every nonzero persisted
// non-leaf node.
func persistedInteriorNodes(c *memctrl.Controller) []memctrl.NodeRef {
	geo := &c.Layout().Geo
	var out []memctrl.NodeRef
	for k := 1; k < geo.Levels; k++ {
		for idx := uint64(0); idx < geo.LevelNodes[k]; idx++ {
			if c.Device().Peek(geo.NodeAddr(k, idx)) != (nvmem.Line{}) {
				out = append(out, memctrl.NodeRef{Level: k, Index: idx})
			}
		}
	}
	return out
}

// TestSteinsHealsCorruptedInteriorNodes is the paper's self-healing claim:
// with k >= 3 interior nodes corrupted on the media but their children
// intact, degraded recovery regenerates each one from its children (Eq.
// 1/2), re-seals it, and completes with nothing quarantined or lost.
func TestSteinsHealsCorruptedInteriorNodes(t *testing.T) {
	for _, split := range []bool{false, true} {
		c, _ := newDegradedSteins(t, split)
		expect := workload(t, c, 4000, 1234)
		c.Crash()

		candidates := persistedInteriorNodes(c)
		if len(candidates) < 3 {
			t.Fatalf("split=%v: only %d persisted interior nodes", split, len(candidates))
		}
		// Spread the corruption: first, middle and last persisted node, and
		// a fourth if available, hitting several levels.
		picks := []memctrl.NodeRef{candidates[0], candidates[len(candidates)/2], candidates[len(candidates)-1]}
		if len(candidates) > 3 {
			picks = append(picks, candidates[len(candidates)/4])
		}
		corrupted := make(map[memctrl.NodeRef]bool)
		for _, ref := range picks {
			if !corrupted[ref] {
				corrupted[ref] = true
				corruptNode(c, ref.Level, ref.Index)
			}
		}
		if len(corrupted) < 3 {
			t.Fatalf("split=%v: only corrupted %d distinct nodes", split, len(corrupted))
		}

		rep, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v: degraded recover: %v", split, err)
		}
		healed := make(map[memctrl.NodeRef]bool)
		for _, ref := range rep.Degradation.Healed {
			healed[ref] = true
		}
		for ref := range corrupted {
			if !healed[ref] {
				t.Errorf("split=%v: corrupted node %+v not healed", split, ref)
			}
		}
		if len(rep.Degradation.Unrecoverable) != 0 {
			t.Fatalf("split=%v: unrecoverable set not empty: %+v", split, rep.Degradation.Unrecoverable)
		}
		if len(rep.Degradation.Quarantined) != 0 {
			t.Fatalf("split=%v: children were intact, nothing should be quarantined: %+v",
				split, rep.Degradation.Quarantined)
		}
		if c.QuarantinedLeaves() != 0 {
			t.Fatalf("split=%v: %d leaves quarantined", split, c.QuarantinedLeaves())
		}

		// Healed in place: every image self-verifies again and the full data
		// set reads back.
		for ref := range corrupted {
			n := c.StaleNode(ref.Level, ref.Index)
			if c.NodeMAC(n, n.FValue()) != n.HMAC() {
				t.Errorf("split=%v: node %+v not self-consistent after heal", split, ref)
			}
		}
		verifyAll(t, c, expect)

		// And the system keeps running, including another clean crash cycle.
		expect2 := workload(t, c, 500, 77)
		c.Crash()
		rep2, err := c.Recover()
		if err != nil {
			t.Fatalf("split=%v: second recover: %v", split, err)
		}
		if rep2.Degradation.Degraded() {
			t.Fatalf("split=%v: second recovery still degraded: %+v", split, rep2.Degradation)
		}
		verifyAll(t, c, expect2)
	}
}

// TestDegradedRecoveryQuarantinesCorruptLeaf: a corrupted leaf node cannot
// be regenerated (its counters live nowhere else), so degraded recovery
// must fence off exactly its coverage and keep everything else available.
func TestDegradedRecoveryQuarantinesCorruptLeaf(t *testing.T) {
	c, _ := newDegradedSteins(t, false)
	expect := workload(t, c, 4000, 99)

	c.Crash()
	// Corrupt a level-1 interior node AND one of its persisted leaf
	// children: the degraded scrub visits every interior node, so the heal
	// is guaranteed to run, and the corrupt child makes it impossible —
	// exactly the quarantine case.
	geo := &c.Layout().Geo
	parent, leafChild := uint64(0), uint64(0)
	found := false
pick:
	for pi := uint64(0); pi < geo.LevelNodes[1]; pi++ {
		if c.Device().Peek(geo.NodeAddr(1, pi)) == (nvmem.Line{}) {
			continue
		}
		for i := uint64(0); i < 8; i++ {
			ci := pi*8 + i
			if ci < geo.LevelNodes[0] && c.Device().Peek(geo.NodeAddr(0, ci)) != (nvmem.Line{}) {
				parent, leafChild, found = pi, ci, true
				break pick
			}
		}
	}
	if !found {
		t.Fatal("no persisted level-1 node with a persisted leaf child")
	}
	corruptNode(c, 1, parent)
	corruptNode(c, 0, leafChild)

	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("degraded recover: %v", err)
	}
	if len(rep.Degradation.Quarantined) == 0 || rep.Degradation.DataLossBoundBytes == 0 {
		t.Fatalf("quarantine not reported: %+v", rep.Degradation)
	}
	if !c.LeafQuarantined(leafChild) {
		t.Fatalf("leaf %d under the failed heal not quarantined", leafChild)
	}
	if c.QuarantinedLeaves() == 0 {
		t.Fatal("no leaves quarantined on the controller")
	}

	// No silent corruption: every address either reads back correctly or
	// fails with a structured error, and failures stay inside the
	// quarantined coverage.
	for addr, want := range expect {
		got, rerr := c.ReadData(1, addr)
		if rerr != nil {
			l, _ := geo.LeafOfData(addr)
			if !c.LeafQuarantined(l) {
				t.Fatalf("read %#x failed outside quarantine: %v", addr, rerr)
			}
			if !errors.Is(rerr, memctrl.ErrMediaFault) {
				t.Fatalf("read %#x: unstructured failure %v", addr, rerr)
			}
			continue
		}
		if got != want {
			t.Fatalf("read %#x: silently wrong data", addr)
		}
	}

	// Writes to quarantined coverage fail the same way.
	waddr := geo.DataAddr(leafChild, 0)
	if werr := c.WriteData(1, waddr, pattern(waddr, 1)); !errors.Is(werr, memctrl.ErrMediaFault) {
		t.Fatalf("write into quarantine = %v, want ErrMediaFault", werr)
	}
}

// TestDegradedRecoveryOffFailsClosed pins the default behaviour: with
// DegradedRecovery off, media corruption aborts recovery with an integrity
// error instead of healing.
func TestDegradedRecoveryOffFailsClosed(t *testing.T) {
	c, _ := newSteins(t, false)
	workload(t, c, 4000, 1234)
	c.Crash()
	candidates := persistedInteriorNodes(c)
	if len(candidates) == 0 {
		t.Fatal("no persisted interior nodes")
	}
	// Corrupt every persisted interior node: at least one sits on the
	// recovery verification chain, and without degraded mode any one of
	// them must abort the pass.
	for _, ref := range candidates {
		corruptNode(c, ref.Level, ref.Index)
	}
	if _, err := c.Recover(); err == nil {
		t.Fatal("corrupt nodes recovered without error and without degraded mode")
	}
}
