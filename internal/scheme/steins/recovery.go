package steins

import (
	"fmt"

	"steins/internal/cme"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// nodeKey identifies a tree node during recovery.
type nodeKey struct {
	level int
	index uint64
}

// recoveryState carries the bookkeeping of one Recover pass.
type recoveryState struct {
	report    memctrl.RecoveryReport
	dirty     []map[uint64]bool      // per level: nodes to regenerate
	recovered []map[uint64]*sit.Node // per level: regenerated nodes
	place     map[nodeKey]int        // record position (= cache slot) per node
	rollback  map[nodeKey][]int      // parent slots with pending buffered flushes
	stales    map[nodeKey]*sit.Node  // memoised stale reads
	verified  map[nodeKey]bool       // stale nodes already chain-verified
	incs      map[nodeKey]int64      // each recovered node's increment over its base
	bufInc    []int64                // per level: pending buffered-increment chain

	// Degraded-mode bookkeeping (heal.go); inert when degraded is false.
	degraded  bool
	healedSet map[nodeKey]bool // nodes rebuilt in place from their children
	quarRoots map[nodeKey]bool // quarantined subtree roots
	// healedBase carries the trusted stale FValue of a node healed in place:
	// the heal regenerates the node from children or data, losing the
	// persisted pre-damage image, but the parent side still names its exact
	// FValue, so the node's LInc delta stays exactly accountable.
	healedBase map[nodeKey]uint64
	// The LInc equality at a level can stop being exactly checkable for two
	// very different reasons, and the evidence arbitration keeps them apart.
	// excused marks levels where recorded MEDIA evidence (torn lines, stuck
	// cells, uncorrectable/escalated ECC) explains hidden increments — the
	// damage heals or quarantines as degraded loss. arbed marks levels where
	// a REPLAY-SHAPED or ambiguous quarantine was already applied — the
	// verdict stands and its fence is the detection. Both are per-level
	// EXACT sets, not high-water bands: a quarantined subtree disturbs its
	// own level and every level below (its dirty descendants are skipped),
	// but an in-place heal disturbs only the healed node's own level — a
	// band would let a level-2 heal launder a leaf-level data replay. A
	// shortfall at a level in neither set is a quiet regression no media
	// fault supports: replay-shaped, and the suspect dirty nodes of that
	// level are quarantined instead of forgiven.
	excused map[int]bool
	arbed   map[int]bool
}

// excuseLInc excuses exactly one level's LInc equality on recorded media
// evidence (an in-place heal whose pre-damage base is unknowable).
func (st *recoveryState) excuseLInc(level int) {
	st.excused[level] = true
}

// excuseThrough excuses every level from 0 through level: a media-explained
// quarantined subtree hides increments at its root's level and at every
// descendant level (its dirty descendants are skipped entirely).
func (st *recoveryState) excuseThrough(level int) {
	for k := 0; k <= level; k++ {
		st.excused[k] = true
	}
}

// arbThrough marks every level from 0 through level as already arbitrated:
// a replay-shaped/ambiguous quarantine verdict stands over the subtree.
func (st *recoveryState) arbThrough(level int) {
	for k := 0; k <= level; k++ {
		st.arbed[k] = true
	}
}

// Recover implements memctrl.Policy: the root-to-leaf recovery of §III-G.
// Precondition: Crash() ran (the metadata cache is empty; record lines are
// flushed; LIncs, NV buffer and root survived on chip).
//
// The pass reconstructs the exact crash-time cache state and is read-only
// on every surviving trust base — the LIncs, the NV buffer and the record
// region are consulted but never modified — so a power failure during
// recovery simply restarts it from the same inputs (the mid-recovery
// re-crash window crashfuzz exercises). Per level, from the top down: each
// tracked node's counters are regenerated from its persisted children
// (step ①/⑥) with child HMACs checked against the regenerated counter
// (tamper detection, Fig. 6); parent slots whose child flush still sits in
// the NV buffer are rolled back to the stale value the crash-time cache
// held (the buffered update had not been applied yet); the stale base is
// verified against its recovered parent or the root (step ②/⑦-⑧); and the
// level's total increment — regenerated deltas plus pending buffered
// increments, exactly the conservation law InvariantError states — is
// compared with its LInc (replay detection, steps ③-④/⑨-⑩). Recovered
// nodes then re-enter the metadata cache dirty at their recorded slots, so
// the record region already describes the reinstated layout and the
// runtime drain machinery picks the untouched buffer back up.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	geo := &p.c.Layout().Geo
	st := &recoveryState{
		report:     memctrl.RecoveryReport{Scheme: p.Name()},
		dirty:      make([]map[uint64]bool, geo.Levels),
		recovered:  make([]map[uint64]*sit.Node, geo.Levels),
		place:      make(map[nodeKey]int),
		rollback:   make(map[nodeKey][]int),
		stales:     make(map[nodeKey]*sit.Node),
		verified:   make(map[nodeKey]bool),
		incs:       make(map[nodeKey]int64),
		bufInc:     make([]int64, geo.Levels),
		degraded:   p.c.Config().DegradedRecovery,
		healedSet:  make(map[nodeKey]bool),
		quarRoots:  make(map[nodeKey]bool),
		healedBase: make(map[nodeKey]uint64),
		excused:    make(map[int]bool),
		arbed:      make(map[int]bool),
	}
	for k := range st.dirty {
		st.dirty[k] = make(map[uint64]bool)
		st.recovered[k] = make(map[uint64]*sit.Node)
	}

	p.scanRecords(st)

	// Group pending buffer entries by the level of the parent they target,
	// and note which parent slots must be rolled back to their stale values
	// (the crash-time cache had not applied those flushes yet).
	bufByParent := make(map[int][]bufEntry)
	for _, ent := range p.buf {
		pl, pi, slot := geo.Parent(ent.level, ent.index)
		bufByParent[pl] = append(bufByParent[pl], ent)
		key := nodeKey{pl, pi}
		if !containsInt(st.rollback[key], slot) {
			st.rollback[key] = append(st.rollback[key], slot)
		}
	}

	for k := geo.Levels - 1; k >= 0; k-- {
		var calc int64
		for _, idx := range sortedKeys(st.dirty[k]) {
			if st.degraded && p.underQuarantine(st, k, idx) {
				continue
			}
			node, inc, err := p.recoverNode(st, k, idx)
			if err != nil {
				if st.degraded {
					// The node (or a child it regenerates from) is beyond
					// repair; arbitrate the failure against recorded media
					// evidence, give up on its coverage and keep going.
					cause, evStr := p.arbitrateFailure(k, idx, err)
					p.quarantineSubtree(st, k, idx, cause, evStr)
					continue
				}
				return st.report, err
			}
			st.recovered[k][idx] = node
			st.incs[nodeKey{k, idx}] = inc
			calc += inc
			p.c.FaultEvent(memctrl.EvRecoveryStep, geo.NodeAddr(k, idx))
		}
		// A buffered entry keeps the child level's LInc inflated by the
		// flushed increment until the drain moves it to the parent;
		// successive flushes of one child each contribute their increment
		// over the previous entry (chained per parent slot, in buffer
		// order, from the stale base the crash-time cache agreed with).
		st.bufInc[k] = p.bufferedIncrements(st, k, bufByParent)
		calc += st.bufInc[k]
		// Steps ③-④/⑨-⑩: replay detection. With no dirty nodes and no
		// pending flushes the level increment must be exactly zero (§III-G).
		// In degraded mode a mismatch is arbitrated against the recorded
		// media evidence rather than blanket-forgiven: media-excused levels
		// heal as before, already-arbitrated levels keep their quarantine
		// verdict, and a quiet regression no evidence supports is
		// replay-shaped — the level's suspect dirty nodes are quarantined.
		if calc != int64(p.linc[k]) {
			if !st.degraded {
				return st.report, memctrl.ReplayAt("SIT level", k, 0,
					fmt.Sprintf("increment %d != LInc %d", calc, int64(p.linc[k])))
			}
			switch {
			case st.excused[k]:
				// Recorded media faults disturbing this level explain the
				// hidden increments; the shortfall is degraded loss.
			case st.arbed[k]:
				// A replay-shaped/ambiguous quarantine already fenced damage
				// disturbing this level, so the residual mismatch cannot be
				// attributed — but a standing verdict elsewhere does not
				// contain a possible regression in the nodes that recovered
				// "cleanly". Ambiguity quarantines: fence the level's
				// remaining suspects too rather than reinstate one that may
				// serve authentic-stale data.
				p.quarantineReplayShaped(st, k)
			default:
				if !p.quarantineReplayShaped(st, k) {
					// Nothing left to pin the regression on: fail the
					// recovery rather than forgive an unattributable replay.
					return st.report, memctrl.ReplayAt("SIT level", k, 0,
						fmt.Sprintf("increment %d != LInc %d (no media evidence)", calc, int64(p.linc[k])))
				}
			}
		}
	}

	if st.degraded {
		p.scrub(st)
		p.rebaseLInc(st)
	}
	p.reinstate(st)

	cfg := p.c.Config()
	st.report.TimeNS = float64(st.report.NVMReads)*cfg.RecoveryReadNS +
		float64(st.report.NVMWrites)*cfg.RecoveryWriteNS +
		float64(st.report.MACOps)*cfg.RecoveryHashNS
	return st.report, nil
}

// rebaseLInc re-anchors the on-chip LInc registers to the state a degraded
// pass actually reinstates: the increments of the nodes that recovered
// (quarantined subtrees' deltas are gone) plus the pending buffered chain.
// Without the rebase, every excused or arbitrated shortfall would sit in
// the register forever, so the NEXT crash would re-detect the same — by
// then fenced and arbitrated — damage as a fresh shortfall and fence
// innocent suspects with it. The fence itself is durable on-chip state
// that survives crashes, so rebasing sacrifices no detection: the verdict
// has been rendered and recorded; the register's job is to detect NEW
// regressions from the reinstated state onward. On a clean pass the
// rebase recomputes exactly the current register values (the equalities
// just held), so it is a no-op.
func (p *Policy) rebaseLInc(st *recoveryState) {
	for k := range p.linc {
		sum := st.bufInc[k]
		for idx := range st.recovered[k] {
			sum += st.incs[nodeKey{k, idx}]
		}
		p.linc[k] = uint64(sum)
	}
}

// bufferedIncrements sums, for child level k, each pending buffer entry's
// increment over the previous value of its parent slot — the same chaining
// InvariantError uses. The recovering cache is empty and pending entries
// are never applied while their parent is cached, so the chain base is
// always the parent's stale NVM slot value.
func (p *Policy) bufferedIncrements(st *recoveryState, k int, bufByParent map[int][]bufEntry) int64 {
	geo := &p.c.Layout().Geo
	var sum int64
	type slotKey struct {
		pi   uint64
		slot int
	}
	cur := make(map[slotKey]uint64)
	for pl, ents := range bufByParent {
		for _, ent := range ents {
			if ent.level != k {
				continue
			}
			_, pi, slot := geo.Parent(ent.level, ent.index)
			key := slotKey{pi, slot}
			base, seen := cur[key]
			if !seen {
				base = p.staleOf(st, pl, pi).Counter(slot)
			}
			sum += int64(ent.counter) - int64(base)
			cur[key] = ent.counter
		}
	}
	return sum
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// scanRecords reads the whole record region and resolves tracked offsets,
// remembering the record position — the metadata cache slot the node
// occupied — so reinstatement can rebuild the exact pre-crash layout. A
// node tracked at several positions (older entries go stale when a node
// changes slots) keeps its lowest position; the others stay harmlessly
// stale. Corrupted entries that resolve to no node, or whose position lies
// outside the node's cache set, are ignored: an attacker can only unmark a
// genuinely dirty node this way, which the LInc comparison catches as a
// shortfall (§III-H).
func (p *Policy) scanRecords(st *recoveryState) {
	lay := p.c.Layout()
	meta := p.c.Meta()
	for li := uint64(0); li < lay.RecordLines(); li++ {
		st.report.NVMReads++
		rl := decodeRecordLine(p.c.Device().Peek(lay.RecordBase + li*nvmem.LineSize))
		for pos, off := range rl {
			if off == 0 {
				continue
			}
			level, idx, ok := lay.Geo.NodeAtOffset(off - 1)
			if !ok {
				continue
			}
			slot := int(li)*memctrl.RecordEntriesPerLine + pos
			if slot/meta.Ways() != meta.SetOf(lay.Geo.NodeAddr(level, idx)) {
				continue
			}
			key := nodeKey{level, idx}
			if old, dup := st.place[key]; !dup || slot < old {
				st.place[key] = slot
			}
			st.dirty[level][idx] = true
		}
	}
}

// staleOf reads (and memoises) a node's stale NVM image.
func (p *Policy) staleOf(st *recoveryState, level int, index uint64) *sit.Node {
	key := nodeKey{level, index}
	if n, ok := st.stales[key]; ok {
		return n
	}
	st.report.NVMReads++
	n := p.c.StaleNode(level, index)
	if st.degraded && !p.selfConsistent(st, n) {
		n = p.healNode(st, n)
	}
	st.stales[key] = n
	return n
}

// trustedCounter returns the verified counter the parent side holds for
// (level, index): from the root, from an already-recovered parent, or by
// iteratively verifying the stale parent chain (the "iterative node reads"
// of §IV-D).
func (p *Policy) trustedCounter(st *recoveryState, level int, index uint64) (uint64, error) {
	geo := &p.c.Layout().Geo
	// A node with a flush still pending in the NV buffer was sealed under
	// its buffered generated counter; the buffer is trusted on-chip state,
	// so it overrides the parent side exactly as the runtime fetch path
	// does (the reinstated parent keeps the pre-flush slot value until the
	// drain applies the entry).
	if ov, ok := p.ParentCounterOverride(level, index); ok {
		return ov, nil
	}
	if geo.IsTop(level) {
		return p.c.Root().Counter(index), nil
	}
	pl, pi, slot := geo.Parent(level, index)
	if n, ok := st.recovered[pl][pi]; ok {
		return n.Counter(slot), nil
	}
	parent := p.staleOf(st, pl, pi)
	if err := p.verifyStale(st, parent); err != nil {
		return 0, err
	}
	return parent.Counter(slot), nil
}

// verifyStale checks a stale node's HMAC against its trusted parent
// counter, memoising success.
func (p *Policy) verifyStale(st *recoveryState, n *sit.Node) error {
	key := nodeKey{n.Level, n.Index}
	if st.verified[key] {
		return nil
	}
	pc, err := p.trustedCounter(st, n.Level, n.Index)
	if err != nil {
		return err
	}
	if !(pc == 0 && n.Encode() == (counter.Block{})) {
		st.report.MACOps++
		if p.c.NodeMAC(n, pc) != n.HMAC() {
			return memctrl.TamperAt("stale SIT node", n.Level, n.Index, "during recovery")
		}
	}
	st.verified[key] = true
	return nil
}

// recoverNode regenerates one tracked node's crash-time cache image from
// its persisted children and returns it with its increment over the stale
// base. Parent slots with flushes still pending in the NV buffer are
// rolled back to the stale value: the crash-time cache had not applied
// them (pending entries exist precisely because the parent was uncached
// at flush time, and a direct application would have consumed them).
func (p *Policy) recoverNode(st *recoveryState, level int, index uint64) (*sit.Node, int64, error) {
	geo := &p.c.Layout().Geo
	stale := p.staleOf(st, level, index)
	if err := p.verifyStale(st, stale); err != nil {
		return nil, 0, err
	}
	node := &sit.Node{Level: level, Index: index, IsSplit: geo.SplitLeaf && level == 0}
	var err error
	if level > 0 {
		err = p.regenerateFromNodes(st, node, stale)
	} else if node.IsSplit {
		err = p.regenerateSplitLeaf(st, node, stale)
	} else {
		err = p.regenerateGeneralLeaf(st, node, stale)
	}
	if err != nil {
		return nil, 0, err
	}
	for _, slot := range st.rollback[nodeKey{level, index}] {
		node.SetCounter(slot, stale.Counter(slot))
	}
	st.report.NodesRecovered++
	// A node healed in place lost its persisted pre-damage image; its stale
	// FValue survives on the trusted parent side (healedBase), keeping the
	// delta — and with it the level's LInc equality — exactly accountable.
	base := int64(stale.FValue())
	if hb, ok := st.healedBase[nodeKey{level, index}]; ok {
		base = int64(hb)
	}
	return node, int64(node.FValue()) - base, nil
}

// regenerateFromNodes rebuilds an intermediate node: counter i is the
// generation function of persisted child i (§III-B), and each child's HMAC
// is checked with the regenerated counter as input (Fig. 6). In degraded
// mode a child whose subtree was condemned does not poison the parent:
// the fence already contains whatever the child's image says, so the
// parent keeps the slot value the crash-time cache agreed with (its own
// stale slot — parent slots only move at child flushes, which the
// condemned child has not had since). The parent's delta stays exact and
// re-admission later reconciles the slot onto whatever base it adopts.
func (p *Policy) regenerateFromNodes(st *recoveryState, node *sit.Node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	for i := 0; i < counter.Arity; i++ {
		childIdx := node.Index*counter.Arity + uint64(i)
		if childIdx >= geo.LevelNodes[node.Level-1] {
			continue
		}
		child := p.staleOf(st, node.Level-1, childIdx)
		if st.degraded && p.underQuarantine(st, node.Level-1, childIdx) {
			node.SetCounter(i, stale.Counter(i))
			continue
		}
		cand := child.FValue()
		if !(cand == 0 && child.Encode() == (counter.Block{})) {
			st.report.MACOps++
			if p.c.NodeMAC(child, cand) != child.HMAC() {
				return memctrl.TamperAt("child node", node.Level-1, childIdx, "during recovery")
			}
		}
		node.SetCounter(i, cand)
	}
	return nil
}

// regenerateGeneralLeaf rebuilds a general leaf from the 8 persisted data
// blocks it covers, using the tag hints (Osiris-style candidate check).
func (p *Policy) regenerateGeneralLeaf(st *recoveryState, node *sit.Node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	for i := 0; i < int(geo.LeafCover); i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		ct := [64]byte(p.c.Device().Peek(daddr))
		ctr, macOps, ok := eng.RecoverCounterGC(&ct, daddr, p.c.Tag(daddr), stale.Counter(i))
		st.report.MACOps += macOps
		if !ok {
			if st.degraded {
				if c2, ok2 := p.reconstructTornSlot(st, node.Index, daddr, stale.Counter(i)); ok2 {
					node.SetCounter(i, c2)
					continue
				}
			}
			return memctrl.TamperData(daddr, "during leaf recovery")
		}
		node.SetCounter(i, ctr)
	}
	return nil
}

// reconstructTornSlot handles a data block destroyed by a recorded media
// fault (a torn crash write, stuck cells) under a recovering leaf. The data
// is genuine loss — its coverage quarantines — but the slot's crash-time
// counter is still exactly reconstructible for LInc accounting: the tag
// region survived the tear, and the tag hint pins the counter uniquely
// within the reachable window [stale, stale + LInc[0]] (counters only grow,
// and a slot cannot have absorbed more than the level's whole unflushed
// increment). Accounting the delta exactly means the quarantine needs NO
// level excuse, so a concurrent data replay elsewhere on the level still
// surfaces as an unexcused shortfall instead of laundering through the
// media loss. Reconstruction declines (and the caller falls back to the
// excuse path) when the damage has no media evidence, the hint names no
// unique in-window counter, or the tag was never written.
func (p *Policy) reconstructTornSlot(st *recoveryState, leaf uint64, daddr uint64, staleCtr uint64) (uint64, bool) {
	ev := p.c.EvidenceAt(daddr)
	cause, ok := memctrl.MediaCause(ev)
	if !ok {
		return 0, false
	}
	tag := p.c.Tag(daddr)
	if !tag.Written {
		return 0, false
	}
	cand := staleCtr&^uint64(cme.GCHintMask) | tag.Hint
	if cand < staleCtr {
		cand += cme.GCHintMask + 1
	}
	if cand > staleCtr+p.linc[0] {
		return 0, false // the hint names no reachable counter
	}
	if cand+cme.GCHintMask+1 <= staleCtr+p.linc[0] {
		return 0, false // window spans several congruent candidates: ambiguous
	}
	p.quarantineAccounted(st, 0, leaf, cause, ev.String())
	return cand, true
}

// regenerateSplitLeaf rebuilds a split leaf from its 64 persisted data
// blocks: the major comes from the tag copies (§II-D), the minors from the
// per-block search. All written blocks must agree on one major no older
// than the stale base; disagreement or regression means replayed blocks.
func (p *Policy) regenerateSplitLeaf(st *recoveryState, node *sit.Node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	major := stale.Split.Major
	haveWritten := false
	type blockState struct {
		addr uint64
		ct   [64]byte
	}
	written := make([]int, 0, counter.SplitArity)
	blocks := make([]blockState, counter.SplitArity)
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		blocks[i] = blockState{addr: daddr, ct: [64]byte(p.c.Device().Peek(daddr))}
		tag := p.c.Tag(daddr)
		if !tag.Written {
			continue // never written: minor stays zero
		}
		if h := tag.Hint >> 6; !haveWritten {
			major, haveWritten = h, true
		} else if h != major {
			return memctrl.ReplayAt("split leaf", 0, node.Index, "inconsistent major counters across data blocks")
		}
		written = append(written, i)
	}
	if haveWritten && major < stale.Split.Major {
		return memctrl.ReplayAt("split leaf", 0, node.Index,
			fmt.Sprintf("recovered major %d older than persisted %d", major, stale.Split.Major))
	}
	node.Split.Major = major
	for _, i := range written {
		b := blocks[i]
		m, minor, macOps, ok := eng.RecoverCounterSC(&b.ct, b.addr, p.c.Tag(b.addr), stale.Split.Minor[i])
		st.report.MACOps += macOps
		if !ok {
			return memctrl.TamperData(b.addr, "during split-leaf recovery")
		}
		if m != major {
			return memctrl.ReplayData(b.addr, "major mismatch")
		}
		node.Split.Minor[i] = minor
	}
	return nil
}

// reinstate re-installs every recovered node into the metadata cache
// marked dirty, at the exact slot its record entry names. Rebuilding the
// pre-crash layout this way needs no evictions (each slot held the node
// before the crash) and leaves the record region already describing the
// reinstated cache, so recovery completes without writing any NV state.
// The crash-time LIncs already describe exactly this dirty state, and the
// untouched NV buffer keeps serving parent-counter overrides until the
// normal runtime drain applies it.
func (p *Policy) reinstate(st *recoveryState) {
	geo := &p.c.Layout().Geo
	meta := p.c.Meta()
	for k := geo.Levels - 1; k >= 0; k-- {
		for _, idx := range sortedKeys(st.dirty[k]) {
			node := st.recovered[k][idx]
			if node == nil {
				// Quarantined in degraded mode: no crash-time image exists
				// to reinstate.
				continue
			}
			addr := geo.NodeAddr(k, idx)
			meta.PlaceAt(st.place[nodeKey{k, idx}], addr, node, true)
			p.c.FaultEvent(memctrl.EvRecoveryStep, addr)
		}
	}
}
