package steins

import (
	"fmt"

	"steins/internal/cache"
	"steins/internal/counter"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// nodeKey identifies a tree node during recovery.
type nodeKey struct {
	level int
	index uint64
}

// recoveryState carries the bookkeeping of one Recover pass.
type recoveryState struct {
	report    memctrl.RecoveryReport
	dirty     []map[uint64]bool      // per level: nodes to regenerate
	recovered []map[uint64]*sit.Node // per level: regenerated nodes
	stales    map[nodeKey]*sit.Node  // memoised stale reads
	verified  map[nodeKey]bool       // stale nodes already chain-verified
}

// Recover implements memctrl.Policy: the root-to-leaf recovery of §III-G.
// Precondition: Crash() ran (the metadata cache is empty; record lines are
// flushed; LIncs, NV buffer and root survived on chip).
//
// Per level, from the top down: pending buffered counters are folded into
// the adjacent LIncs (step ⑤); each tracked node's counters are
// regenerated from its persisted children (step ①/⑥), with child HMACs
// checked against the regenerated counter (tamper detection, Fig. 6); the
// stale base is verified against its recovered parent or the root
// (step ②/⑦-⑧); and the level's total increment is compared with its LInc
// (replay detection, steps ③-④/⑨-⑩). Recovered nodes re-enter the
// metadata cache marked dirty so their modifications keep propagating
// upward, and the record region is rebuilt to match the new cache layout.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	geo := &p.c.Layout().Geo
	st := &recoveryState{
		report:    memctrl.RecoveryReport{Scheme: p.Name()},
		dirty:     make([]map[uint64]bool, geo.Levels),
		recovered: make([]map[uint64]*sit.Node, geo.Levels),
		stales:    make(map[nodeKey]*sit.Node),
		verified:  make(map[nodeKey]bool),
	}
	for k := range st.dirty {
		st.dirty[k] = make(map[uint64]bool)
		st.recovered[k] = make(map[uint64]*sit.Node)
	}

	p.scanRecords(st)

	// Group pending buffer entries by the level of the parent they target.
	bufByParent := make(map[int][]bufEntry)
	for _, ent := range p.buf {
		bufByParent[ent.level+1] = append(bufByParent[ent.level+1], ent)
	}

	for k := geo.Levels - 1; k >= 0; k-- {
		// Step ⑤: fold buffered counters into the LIncs and make sure the
		// targeted parents are regenerated.
		for _, ent := range bufByParent[k] {
			_, pi, slot := geo.Parent(ent.level, ent.index)
			st.dirty[k][pi] = true
			stale := p.staleOf(st, k, pi)
			delta := ent.counter - stale.Counter(slot)
			p.linc[ent.level] -= delta
			p.linc[k] += delta
		}

		var calc int64
		for _, idx := range sortedKeys(st.dirty[k]) {
			node, inc, err := p.recoverNode(st, k, idx)
			if err != nil {
				return st.report, err
			}
			st.recovered[k][idx] = node
			calc += inc
		}
		// Steps ③-④/⑨-⑩: replay detection. With no dirty nodes the level
		// increment must be exactly zero (§III-G).
		if calc != int64(p.linc[k]) {
			return st.report, memctrl.ReplayAt("SIT level", k, 0,
				fmt.Sprintf("increment %d != LInc %d", calc, int64(p.linc[k])))
		}
	}

	p.buf = nil
	p.reinstate(st)
	p.rebuildRecords(st)

	cfg := p.c.Config()
	st.report.TimeNS = float64(st.report.NVMReads)*cfg.RecoveryReadNS +
		float64(st.report.NVMWrites)*cfg.RecoveryWriteNS +
		float64(st.report.MACOps)*cfg.RecoveryHashNS
	return st.report, nil
}

// scanRecords reads the whole record region and resolves tracked offsets.
// Corrupted entries that resolve to no node are ignored: an attacker can
// only unmark a genuinely dirty node this way, which the LInc comparison
// catches as a shortfall (§III-H).
func (p *Policy) scanRecords(st *recoveryState) {
	lay := p.c.Layout()
	for li := uint64(0); li < lay.RecordLines(); li++ {
		st.report.NVMReads++
		rl := decodeRecordLine(p.c.Device().Peek(lay.RecordBase + li*nvmem.LineSize))
		for _, off := range rl {
			if off == 0 {
				continue
			}
			if level, idx, ok := lay.Geo.NodeAtOffset(off - 1); ok {
				st.dirty[level][idx] = true
			}
		}
	}
}

// staleOf reads (and memoises) a node's stale NVM image.
func (p *Policy) staleOf(st *recoveryState, level int, index uint64) *sit.Node {
	key := nodeKey{level, index}
	if n, ok := st.stales[key]; ok {
		return n
	}
	st.report.NVMReads++
	n := p.c.StaleNode(level, index)
	st.stales[key] = n
	return n
}

// trustedCounter returns the verified counter the parent side holds for
// (level, index): from the root, from an already-recovered parent, or by
// iteratively verifying the stale parent chain (the "iterative node reads"
// of §IV-D).
func (p *Policy) trustedCounter(st *recoveryState, level int, index uint64) (uint64, error) {
	geo := &p.c.Layout().Geo
	if geo.IsTop(level) {
		return p.c.Root().Counter(index), nil
	}
	pl, pi, slot := geo.Parent(level, index)
	if n, ok := st.recovered[pl][pi]; ok {
		return n.Counter(slot), nil
	}
	parent := p.staleOf(st, pl, pi)
	if err := p.verifyStale(st, parent); err != nil {
		return 0, err
	}
	return parent.Counter(slot), nil
}

// verifyStale checks a stale node's HMAC against its trusted parent
// counter, memoising success.
func (p *Policy) verifyStale(st *recoveryState, n *sit.Node) error {
	key := nodeKey{n.Level, n.Index}
	if st.verified[key] {
		return nil
	}
	pc, err := p.trustedCounter(st, n.Level, n.Index)
	if err != nil {
		return err
	}
	if !(pc == 0 && n.Encode() == (counter.Block{})) {
		st.report.MACOps++
		if p.c.NodeMAC(n, pc) != n.HMAC() {
			return memctrl.TamperAt("stale SIT node", n.Level, n.Index, "during recovery")
		}
	}
	st.verified[key] = true
	return nil
}

// recoverNode regenerates one tracked node from its persisted children and
// returns the regenerated node and its increment over the stale base.
func (p *Policy) recoverNode(st *recoveryState, level int, index uint64) (*sit.Node, int64, error) {
	geo := &p.c.Layout().Geo
	stale := p.staleOf(st, level, index)
	if err := p.verifyStale(st, stale); err != nil {
		return nil, 0, err
	}
	node := &sit.Node{Level: level, Index: index, IsSplit: geo.SplitLeaf && level == 0}
	var err error
	if level > 0 {
		err = p.regenerateFromNodes(st, node)
	} else if node.IsSplit {
		err = p.regenerateSplitLeaf(st, node, stale)
	} else {
		err = p.regenerateGeneralLeaf(st, node, stale)
	}
	if err != nil {
		return nil, 0, err
	}
	st.report.NodesRecovered++
	return node, int64(node.FValue()) - int64(stale.FValue()), nil
}

// regenerateFromNodes rebuilds an intermediate node: counter i is the
// generation function of persisted child i (§III-B), and each child's HMAC
// is checked with the regenerated counter as input (Fig. 6).
func (p *Policy) regenerateFromNodes(st *recoveryState, node *sit.Node) error {
	geo := &p.c.Layout().Geo
	for i := 0; i < counter.Arity; i++ {
		childIdx := node.Index*counter.Arity + uint64(i)
		if childIdx >= geo.LevelNodes[node.Level-1] {
			continue
		}
		child := p.staleOf(st, node.Level-1, childIdx)
		cand := child.FValue()
		if !(cand == 0 && child.Encode() == (counter.Block{})) {
			st.report.MACOps++
			if p.c.NodeMAC(child, cand) != child.HMAC() {
				return memctrl.TamperAt("child node", node.Level-1, childIdx, "during recovery")
			}
		}
		node.SetCounter(i, cand)
	}
	return nil
}

// regenerateGeneralLeaf rebuilds a general leaf from the 8 persisted data
// blocks it covers, using the tag hints (Osiris-style candidate check).
func (p *Policy) regenerateGeneralLeaf(st *recoveryState, node *sit.Node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	for i := 0; i < int(geo.LeafCover); i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		ct := [64]byte(p.c.Device().Peek(daddr))
		ctr, macOps, ok := eng.RecoverCounterGC(&ct, daddr, p.c.Tag(daddr), stale.Counter(i))
		st.report.MACOps += macOps
		if !ok {
			return memctrl.TamperData(daddr, "during leaf recovery")
		}
		node.SetCounter(i, ctr)
	}
	return nil
}

// regenerateSplitLeaf rebuilds a split leaf from its 64 persisted data
// blocks: the major comes from the tag copies (§II-D), the minors from the
// per-block search. All written blocks must agree on one major no older
// than the stale base; disagreement or regression means replayed blocks.
func (p *Policy) regenerateSplitLeaf(st *recoveryState, node *sit.Node, stale *sit.Node) error {
	geo := &p.c.Layout().Geo
	eng := p.c.Engine()
	major := stale.Split.Major
	haveWritten := false
	type blockState struct {
		addr uint64
		ct   [64]byte
	}
	written := make([]int, 0, counter.SplitArity)
	blocks := make([]blockState, counter.SplitArity)
	for i := 0; i < counter.SplitArity; i++ {
		daddr := geo.DataAddr(node.Index, i)
		st.report.NVMReads++
		blocks[i] = blockState{addr: daddr, ct: [64]byte(p.c.Device().Peek(daddr))}
		tag := p.c.Tag(daddr)
		if !tag.Written {
			continue // never written: minor stays zero
		}
		if !haveWritten {
			major, haveWritten = tag.Hint, true
		} else if tag.Hint != major {
			return memctrl.ReplayAt("split leaf", 0, node.Index, "inconsistent major counters across data blocks")
		}
		written = append(written, i)
	}
	if haveWritten && major < stale.Split.Major {
		return memctrl.ReplayAt("split leaf", 0, node.Index,
			fmt.Sprintf("recovered major %d older than persisted %d", major, stale.Split.Major))
	}
	node.Split.Major = major
	for _, i := range written {
		b := blocks[i]
		m, minor, macOps, ok := eng.RecoverCounterSC(&b.ct, b.addr, p.c.Tag(b.addr), stale.Split.Minor[i])
		st.report.MACOps += macOps
		if !ok {
			return memctrl.TamperData(b.addr, "during split-leaf recovery")
		}
		if m != major {
			return memctrl.ReplayData(b.addr, "major mismatch")
		}
		node.Split.Minor[i] = minor
	}
	return nil
}

// reinstate re-inserts every recovered node into the metadata cache marked
// dirty, top level first so parents are resident when children follow. The
// crash-time LIncs already describe exactly this dirty state, so no LInc
// changes are needed; overflowing a set evicts through the normal Steins
// write-back, which keeps all bookkeeping coherent.
func (p *Policy) reinstate(st *recoveryState) {
	geo := &p.c.Layout().Geo
	for k := geo.Levels - 1; k >= 0; k-- {
		for _, idx := range sortedKeys(st.dirty[k]) {
			node := st.recovered[k][idx]
			addr := geo.NodeAddr(k, idx)
			if e, ok := p.c.Meta().Probe(addr); ok {
				// Displaced and refetched during an eviction cascade;
				// overwrite with the recovered image and mark dirty.
				e.Payload = node
				e.Dirty = true
				continue
			}
			for {
				_, victim, evicted := p.c.Meta().Insert(addr, node, true)
				if !evicted || !victim.Dirty {
					break
				}
				if _, err := p.c.EvictDirtyNode(victim.Payload); err != nil {
					// Eviction flushes a node we just rebuilt; it cannot
					// fail verification unless the device is being
					// attacked mid-recovery, which Crash/Recover callers
					// surface through the next runtime access.
					panic(fmt.Sprintf("steins: eviction during reinstate: %v", err))
				}
				if _, ok := p.c.Meta().Probe(addr); ok {
					break
				}
			}
		}
	}
}

// rebuildRecords rewrites the record region to describe the post-recovery
// cache layout, counting only lines whose contents changed.
func (p *Policy) rebuildRecords(st *recoveryState) {
	lay := p.c.Layout()
	lines := make([]recordLine, lay.RecordLines())
	p.c.Meta().ForEach(func(e *cache.Entry[*sit.Node]) {
		if !e.Dirty {
			return
		}
		slot := e.Slot()
		li := slot / memctrl.RecordEntriesPerLine
		pos := slot % memctrl.RecordEntriesPerLine
		lines[li][pos] = lay.Geo.Offset(e.Payload.Level, e.Payload.Index) + 1
	})
	for li := uint64(0); li < uint64(len(lines)); li++ {
		addr := lay.RecordBase + li*nvmem.LineSize
		img := encodeRecordLine(&lines[li])
		if nvmem.Line(p.c.Device().Peek(addr)) != img {
			p.c.Device().Poke(addr, img)
			st.report.NVMWrites++
		}
	}
}
