// Package steins implements the paper's contribution: a crash-consistency
// scheme for SGX-style integrity trees combining
//
//   - the counter-generation scheme of §III-B (parent counters derived
//     from child nodes via Eq. 1/Eq. 2, making stale nodes recoverable
//     from their persisted children),
//   - the offset-based tracking of §III-C (4-byte record entries, one per
//     metadata cache line, cached in an ADR region and flushed on crash),
//   - the LInc trust bases of §III-D (per-level totals of cached-counter
//     increase over NVM, held in a 64 B on-chip non-volatile register),
//   - the non-volatile parent-counter buffer of §III-E (removing parent
//     fetches from the write critical path), and
//   - the root-to-leaf recovery of §III-G with HMAC tamper checks and
//     LInc replay checks.
package steins

import (
	"encoding/binary"
	"fmt"
	"sort"

	"steins/internal/cache"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// bufEntry is one non-volatile buffer slot: a generated parent counter for
// a flushed child whose parent was not cached (§III-E step ③). Modelled at
// 16 bytes, so the 128 B buffer of Table I holds 8 entries.
type bufEntry struct {
	level   int    // level of the flushed child
	index   uint64 // index of the flushed child
	counter uint64 // generated parent counter, f(child)
}

const bufEntryBytes = 16

// recordLine is one 64 B offset record line: 16 entries of 4 bytes, each
// holding a node's metadata-region offset + 1 (zero means empty).
type recordLine [memctrl.RecordEntriesPerLine]uint32

// Policy is the Steins scheme.
type Policy struct {
	c        *memctrl.Controller
	linc     []uint64 // on-chip NV register: one LInc per NVM level
	buf      []bufEntry
	bufCap   int
	records  *cache.Cache[*recordLine] // ADR-cached record lines
	draining bool
	noBuf    bool // ablation: fetch parents synchronously at eviction
}

// Options tune Steins variants for the ablation benches.
type Options struct {
	// DisableNVBuffer forces parent fetches back onto the write critical
	// path (§III-E studies exactly this difference).
	DisableNVBuffer bool
}

// Factory builds a Steins policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy {
	return FactoryWithOptions(Options{})(c)
}

// FactoryWithOptions builds a Steins policy variant.
func FactoryWithOptions(opts Options) memctrl.PolicyFactory {
	return func(c *memctrl.Controller) memctrl.Policy {
		cfg := c.Config()
		bufCap := cfg.NVBufferBytes / bufEntryBytes
		if bufCap < 1 {
			bufCap = 1
		}
		return &Policy{
			c:       c,
			linc:    make([]uint64, c.Layout().Geo.Levels),
			bufCap:  bufCap,
			noBuf:   opts.DisableNVBuffer,
			records: cache.New[*recordLine](cfg.RecordCacheLines*nvmem.LineSize, cfg.AuxCacheWays, nvmem.LineSize),
		}
	}
}

// Name implements memctrl.Policy.
func (p *Policy) Name() string {
	if p.c.Config().SplitLeaf {
		return "Steins-SC"
	}
	return "Steins-GC"
}

// CounterGen implements memctrl.Policy: parent counters are generated.
func (p *Policy) CounterGen() bool { return true }

// LIncs returns a copy of the per-level trust bases; tests and the
// invariant checker read it.
func (p *Policy) LIncs() []uint64 { return append([]uint64(nil), p.linc...) }

// BufferedEntries returns the occupancy of the non-volatile buffer.
func (p *Policy) BufferedEntries() int { return len(p.buf) }

// MetricsProbe implements memctrl.MetricsProber: the record-line cache
// fill fraction and a copy of the per-level trust bases, for the
// time-series sampler.
func (p *Policy) MetricsProbe() (float64, []uint64) {
	var fill float64
	if capacity := p.records.Capacity(); capacity > 0 {
		fill = float64(p.records.Len()) / float64(capacity)
	}
	return fill, p.LIncs()
}

// OnModify implements memctrl.Policy: fold the counter delta into the
// node's level increment (a register add) and, on a clean->dirty
// transition, track the node's offset in the record lines (§III-C). Dirty
// nodes turning clean are deliberately not untracked (§III-H: treating
// clean nodes as dirty is harmless).
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], wasClean bool, delta uint64) uint64 {
	p.linc[e.Payload.Level] += delta
	cycles := uint64(1)
	if wasClean {
		cycles += p.trackDirty(e)
	}
	return cycles
}

// trackDirty records the node's metadata-region offset in the record entry
// for its cache slot. Record lines are cached in the controller's ADR
// region; misses fetch the line from NVM and may write back a dirty one.
func (p *Policy) trackDirty(e *cache.Entry[*sit.Node]) uint64 {
	lay := p.c.Layout()
	slot := e.Slot()
	lineIdx := uint64(slot) / memctrl.RecordEntriesPerLine
	pos := slot % memctrl.RecordEntriesPerLine
	recAddr := lay.RecordBase + lineIdx*nvmem.LineSize
	off := lay.Geo.Offset(e.Payload.Level, e.Payload.Index) + 1

	var cycles uint64
	re, ok := p.records.Lookup(recAddr)
	if !ok {
		// Record maintenance is fire-and-forget (§III-C): the line fill
		// occupies NVM bandwidth but the write does not block on it.
		const trackingIssueCycles = 20
		line, _, err := p.c.ReadLineRetried(p.c.Now(), recAddr, nvmem.ClassRecord)
		if err != nil {
			// A lost record line only widens the recovery search (clean
			// nodes treated as dirty are harmless, §III-H); start fresh.
			line = nvmem.Line{}
		}
		cycles += trackingIssueCycles
		rl := decodeRecordLine(nvmem.Line(line))
		var victim cache.Entry[*recordLine]
		var evicted bool
		re, victim, evicted = p.records.Insert(recAddr, rl, false)
		if evicted && victim.Dirty {
			cycles += p.c.Device().MustWrite(p.c.Now()+cycles, victim.Addr,
				encodeRecordLine(victim.Payload), nvmem.ClassRecord)
		}
	}
	re.Payload[pos] = off
	re.Dirty = true
	p.c.FaultEvent(memctrl.EvRecordAppend, recAddr)
	return cycles + 1
}

func decodeRecordLine(l nvmem.Line) *recordLine {
	rl := new(recordLine)
	for i := range rl {
		rl[i] = binary.LittleEndian.Uint32(l[i*4:])
	}
	return rl
}

func encodeRecordLine(rl *recordLine) nvmem.Line {
	var l nvmem.Line
	for i, v := range rl {
		binary.LittleEndian.PutUint32(l[i*4:], v)
	}
	return l
}

// EvictDirty implements memctrl.Policy (§III-E, Fig. 7): the victim's HMAC
// is computed from its own generated parent counter, so no parent fetch
// sits on the write critical path. If the parent is cached (or is the
// root) the counter and LIncs are updated in place; otherwise the
// generated counter parks in the non-volatile buffer.
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	newPC := victim.FValue()
	cycles := p.c.SealAndWriteNode(victim, newPC) + 2 // +2: generation adds
	k := victim.Level
	geo := &p.c.Layout().Geo
	if geo.IsTop(k) {
		delta := newPC - p.c.Root().Counter(victim.Index)
		p.linc[k] -= delta
		p.c.Root().SetCounter(victim.Index, newPC)
		return cycles, nil
	}
	pl, pi, slot := geo.Parent(k, victim.Index)
	if pe, ok := p.c.Meta().Probe(geo.NodeAddr(pl, pi)); ok {
		// Earlier flushes of this victim may still sit in the buffer from
		// when the parent was uncached; apply them first so the parent
		// counter never moves backwards.
		cycles += p.applyBuffered(k, victim.Index, pe, slot)
		delta := newPC - pe.Payload.Counter(slot)
		p.linc[k] -= delta
		cycles += p.c.SetParentCounter(pe, slot, newPC, delta)
		return cycles, nil
	}
	if p.noBuf {
		// Ablation variant: the parent fetch sits on the write critical
		// path, exactly the cost §III-E removes.
		pe, fc, err := p.c.FetchNodeAdoptingCondemned(pl, pi)
		cycles += fc
		if err != nil {
			return cycles, err
		}
		delta := newPC - pe.Payload.Counter(slot)
		p.linc[k] -= delta
		cycles += p.c.SetParentCounter(pe, slot, newPC, delta)
		return cycles, nil
	}
	p.buf = append(p.buf, bufEntry{level: k, index: victim.Index, counter: newPC})
	if len(p.buf) >= p.bufCap {
		dc, err := p.drain()
		cycles += dc
		if err != nil {
			return cycles, err
		}
	}
	return cycles, nil
}

// applyBuffered applies, in order, every buffered entry for one child
// against its now-cached parent entry and removes them from the buffer.
// SetParentCounter cannot re-enter the buffer (only evictions append), so
// in-place filtering is safe.
func (p *Policy) applyBuffered(level int, index uint64, pe *cache.Entry[*sit.Node], slot int) uint64 {
	var cycles uint64
	kept := p.buf[:0]
	for _, ent := range p.buf {
		if ent.level != level || ent.index != index {
			kept = append(kept, ent)
			continue
		}
		delta := ent.counter - pe.Payload.Counter(slot)
		p.linc[level] -= delta
		cycles += p.c.SetParentCounter(pe, slot, ent.counter, delta)
	}
	p.buf = kept
	return cycles
}

// drain applies every buffered parent-counter update: fetch the parent
// (off the write critical path), move the delta between the adjacent
// LIncs, and install the generated counter (§III-E steps ④-⑦).
func (p *Policy) drain() (uint64, error) {
	// Fetching a parent can evict another dirty node whose parent is also
	// uncached, appending to the buffer and asking for a drain again; the
	// outer drain loop picks those entries up, so the nested call is a
	// no-op rather than a double application.
	if p.draining {
		return 0, nil
	}
	p.draining = true
	defer func() { p.draining = false }()
	var cycles uint64
	geo := &p.c.Layout().Geo
	for len(p.buf) > 0 {
		ent := p.buf[0]
		pl, pi, slot := geo.Parent(ent.level, ent.index)
		// Re-admission flushes condemned leaves, handing the drain a
		// parent that may itself be the quarantined subtree's damaged
		// spine; the adopting fetch lets the update land and the spine
		// reseal instead of failing every read behind the re-admission.
		pe, fc, err := p.c.FetchNodeAdoptingCondemned(pl, pi)
		cycles += fc
		if err != nil {
			return cycles, err
		}
		// The parent fetch can evict the entry's child (re-adopted and
		// re-dirtied earlier), whose eviction applies this entry — and
		// possibly newer ones for the same child — via applyBuffered. If
		// the entry is gone, it has been applied; applying it again would
		// roll the parent counter backwards. Membership must be checked
		// by identity, and removal likewise: positions shift when nested
		// work compacts the buffer.
		idx := -1
		for i, e := range p.buf {
			if e == ent {
				idx = i
				break
			}
		}
		if idx == -1 {
			continue
		}
		delta := ent.counter - pe.Payload.Counter(slot)
		p.linc[ent.level] -= delta
		cycles += p.c.SetParentCounter(pe, slot, ent.counter, delta)
		p.buf = append(p.buf[:idx], p.buf[idx+1:]...)
	}
	return cycles, nil
}

// ReconcileAdopted implements memctrl.AdoptReconciler: re-admission just
// adopted a condemned, non-verifying leaf image as counter base. The
// parent side still vouches the lost pre-damage FValue, so the adopted
// base and the parent-side chain disagree by an amount no write will ever
// close — left alone, the next recovery's conservation law breaks by
// exactly that gap and mass-fences innocent leaves. Move the parent side
// onto the adopted FValue through the normal update machinery: a cached
// parent takes the counter directly (its own level absorbs the delta via
// OnModify); an uncached one gets a buffered entry, with the child level's
// LInc raised by the gap so the eventual drain's subtraction balances —
// the discipline EvictDirty skips only because a flushed delta is already
// in the register, which an adoption gap never was. The buffer is not
// drained here even at capacity: a drain fetches (and verifies) parents,
// and re-admission must stay error-free; the next read or eviction drains.
func (p *Policy) ReconcileAdopted(e *cache.Entry[*sit.Node]) uint64 {
	n := e.Payload
	f := n.FValue()
	k := n.Level
	geo := &p.c.Layout().Geo
	if geo.IsTop(k) {
		p.c.Root().SetCounter(n.Index, f)
		return 1
	}
	pl, pi, slot := geo.Parent(k, n.Index)
	if pe, ok := p.c.Meta().Probe(geo.NodeAddr(pl, pi)); ok {
		cycles := p.applyBuffered(k, n.Index, pe, slot)
		delta := f - pe.Payload.Counter(slot)
		if delta == 0 {
			return cycles
		}
		return cycles + p.c.SetParentCounter(pe, slot, f, delta)
	}
	vouched, ok := p.ParentCounterOverride(k, n.Index)
	if !ok {
		vouched = p.c.StaleNode(pl, pi).Counter(slot)
	}
	if vouched == f {
		return 0
	}
	p.buf = append(p.buf, bufEntry{level: k, index: n.Index, counter: f})
	p.linc[k] += f - vouched
	return 1
}

// BeforeRead implements memctrl.Policy: reads drain the buffer first, so
// read-path verification never consults it (§III-E step ④).
func (p *Policy) BeforeRead() (uint64, error) {
	if len(p.buf) == 0 {
		return 0, nil
	}
	return p.drain()
}

// ParentCounterOverride implements memctrl.Policy: a node with a pending
// buffered flush verifies against its buffered generated counter. The
// newest entry wins (a node can be flushed twice before a drain).
func (p *Policy) ParentCounterOverride(level int, index uint64) (uint64, bool) {
	for i := len(p.buf) - 1; i >= 0; i-- {
		if p.buf[i].level == level && p.buf[i].index == index {
			return p.buf[i].counter, true
		}
	}
	return 0, false
}

// OnCrash implements memctrl.Policy: ADR residual power flushes the cached
// record lines into the NVM record region. The LIncs, the NV buffer and
// the root live in on-chip non-volatile registers and simply survive.
func (p *Policy) OnCrash() {
	p.records.ForEach(func(e *cache.Entry[*recordLine]) {
		if e.Dirty {
			p.c.Device().Poke(e.Addr, encodeRecordLine(e.Payload))
		}
	})
	p.records.Clear()
}

// Storage implements memctrl.Policy (§IV-E): the tree, the 16 KB-per-256 KB
// record region, and on chip only a 64 B LInc register plus the 128 B
// buffer — no cache-tree, no metadata cache tax.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		NVMExtraBytes:  lay.RecordBytes,
		OnChipNVBytes:  64 + uint64(p.c.Config().NVBufferBytes),
		OnChipSRBytes:  uint64(p.c.Config().RecordCacheLines) * nvmem.LineSize,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}

// InvariantError checks the LInc conservation law after any operation
// sequence: for every level k,
//
//	linc[k] = Σ dirty cached nodes at k (f(cached) - f(NVM))
//	        + Σ buffered entries for children at k (pending decrement)
//	        - Σ buffered entries for parents at k (pending increment)
//
// It returns nil when the law holds; tests call it as a property check.
func (p *Policy) InvariantError() error {
	geo := &p.c.Layout().Geo
	want := make([]int64, geo.Levels)
	p.c.Meta().ForEach(func(e *cache.Entry[*sit.Node]) {
		if !e.Dirty {
			return
		}
		n := e.Payload
		stale := p.c.StaleNode(n.Level, n.Index)
		want[n.Level] += int64(n.FValue()) - int64(stale.FValue())
	})
	// A buffered entry keeps the child level's LInc inflated by the flushed
	// delta until the drain moves it to the parent (where the parent's
	// dirty-sum rises by the same amount at the same moment, so the parent
	// level needs no pre-adjustment). Successive flushes of one child each
	// contribute their increment over the previous entry.
	type slotKey struct {
		level int
		index uint64
		slot  int
	}
	cur := make(map[slotKey]uint64)
	for _, ent := range p.buf {
		pl, pi, slot := geo.Parent(ent.level, ent.index)
		key := slotKey{pl, pi, slot}
		base, seen := cur[key]
		if !seen {
			if pe, ok := p.c.Meta().Probe(geo.NodeAddr(pl, pi)); ok {
				base = pe.Payload.Counter(slot)
			} else {
				base = p.c.StaleNode(pl, pi).Counter(slot)
			}
		}
		want[ent.level] += int64(ent.counter) - int64(base)
		cur[key] = ent.counter
	}
	for k := range want {
		if int64(p.linc[k]) != want[k] {
			return fmt.Errorf("LInc invariant broken at level %d: register %d, state %d",
				k, int64(p.linc[k]), want[k])
		}
	}
	return nil
}

// sortedKeys returns the map's keys in ascending order for deterministic
// recovery iteration.
func sortedKeys(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
