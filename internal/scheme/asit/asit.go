// Package asit implements the Anubis-for-SGX-Integrity-Tree baseline
// (Zubair & Awad, ISCA'19; §IV of the Steins paper): every modification of
// a cached metadata node is persisted to a shadow table in NVM (doubling
// memory writes), and a Merkle cache-tree over the shadow slots — its root
// in an on-chip non-volatile register, its interior in volatile SRAM —
// authenticates them. Recovery reads the whole shadow table, checks it
// against the cache-tree root, and restores every recorded node, which is
// why ASIT recovers fastest (Fig. 17) while paying the highest runtime
// cost (Figs. 9-10).
package asit

import (
	"encoding/binary"
	"sort"

	"steins/internal/cache"
	"steins/internal/counter"
	"steins/internal/crypt"
	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/sit"
)

// Policy is the ASIT scheme.
type Policy struct {
	c *memctrl.Controller
	// tree holds the cache-tree levels over shadow slots: tree[0][s] is
	// the hash of slot s, upper levels shrink by the tree arity. Volatile
	// SRAM: recomputed from the shadow table at recovery.
	tree [][]uint64
	// root is the cache-tree root, an on-chip non-volatile register.
	root uint64
}

const treeArity = 8

// Factory builds an ASIT policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy {
	p := &Policy{c: c}
	n := c.Meta().Capacity()
	for {
		p.tree = append(p.tree, make([]uint64, n))
		if n <= treeArity {
			break
		}
		n = (n + treeArity - 1) / treeArity
	}
	// Leaf hashes must cover the empty shadow slots too: recovery hashes
	// whatever the slots hold, including ones never written.
	for s := 0; s < c.Meta().Capacity(); s++ {
		p.tree[0][s] = p.leafHash(s, nvmem.Line{})
	}
	p.root, _ = p.rebuildTree()
	return p
}

// Name implements memctrl.Policy.
func (p *Policy) Name() string { return "ASIT" }

// CounterGen implements memctrl.Policy: classic self-increment SIT.
func (p *Policy) CounterGen() bool { return false }

// slotAddr returns the NVM address of a shadow-table slot.
func (p *Policy) slotAddr(slot int) uint64 {
	return p.c.Layout().ShadowBase + uint64(slot)*nvmem.LineSize
}

// slotContent encodes a shadow entry: the node's 56-byte counter region
// plus its metadata-region offset + 1 (zero marks an empty slot). The HMAC
// is omitted — recovery recomputes HMACs from restored parent counters.
func (p *Policy) slotContent(n *sit.Node) nvmem.Line {
	var l nvmem.Line
	cb := n.CounterBytes()
	copy(l[:56], cb[:])
	binary.LittleEndian.PutUint32(l[56:60], p.c.Layout().Geo.Offset(n.Level, n.Index)+1)
	return l
}

// leafHash authenticates one shadow slot's content bound to its position.
func (p *Policy) leafHash(slot int, content nvmem.Line) uint64 {
	var msg [72]byte
	copy(msg[:64], content[:])
	binary.LittleEndian.PutUint64(msg[64:], uint64(slot))
	return p.c.Config().MAC.Sum64(p.keyFor(), msg[:])
}

func (p *Policy) keyFor() crypt.Key { return p.c.Config().Key }

// interiorHash combines a group of child hashes.
func (p *Policy) interiorHash(level int, group uint64, children []uint64) uint64 {
	msg := make([]byte, 0, 8*(len(children)+2))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(level)<<32|group)
	msg = append(msg, b[:]...)
	for _, h := range children {
		binary.LittleEndian.PutUint64(b[:], h)
		msg = append(msg, b[:]...)
	}
	return p.c.Config().MAC.Sum64(p.keyFor(), msg)
}

// updatePath recomputes the cache-tree from one leaf to the root and
// returns the number of hash computations (sequential on the critical
// path, the cost §II-D calls out).
func (p *Policy) updatePath(slot int, content nvmem.Line) uint64 {
	p.tree[0][slot] = p.leafHash(slot, content)
	hashes := uint64(1)
	idx := uint64(slot)
	for l := 1; l < len(p.tree); l++ {
		idx /= treeArity
		p.tree[l][idx] = p.groupHash(l, idx)
		hashes++
	}
	p.root = p.interiorHash(len(p.tree), 0, p.tree[len(p.tree)-1])
	return hashes + 1
}

func (p *Policy) groupHash(level int, idx uint64) uint64 {
	lo := idx * treeArity
	hi := min(lo+treeArity, uint64(len(p.tree[level-1])))
	return p.interiorHash(level, idx, p.tree[level-1][lo:hi])
}

// rebuildTree recomputes every interior hash from the current leaf level
// and returns the resulting root and the number of hashes. It does not
// touch p.root: that register is the non-volatile anchor recovery compares
// against.
func (p *Policy) rebuildTree() (root uint64, hashes uint64) {
	for l := 1; l < len(p.tree); l++ {
		for idx := range p.tree[l] {
			p.tree[l][idx] = p.groupHash(l, uint64(idx))
			hashes++
		}
	}
	return p.interiorHash(len(p.tree), 0, p.tree[len(p.tree)-1]), hashes + 1
}

// OnModify implements memctrl.Policy: persist the updated node to its
// shadow slot (the 2x write traffic of §II-D) and propagate the change
// through the cache-tree to the on-chip root.
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], _ bool, _ uint64) uint64 {
	content := p.slotContent(e.Payload)
	stall := p.c.Device().MustWrite(p.c.Now(), p.slotAddr(e.Slot()), content, nvmem.ClassShadow)
	hashes := p.updatePath(e.Slot(), content)
	p.c.CountHash(hashes)
	// The cache-tree engine pipelines the path; the request waits for the
	// leaf hash plus one lagging stage before the next dependent update.
	return stall + 2*p.c.Config().HashCycles
}

// EvictDirty implements memctrl.Policy with the classic write-back; the
// vacated shadow slot keeps its stale entry (harmless: restoring a clean
// node rewrites its already-persistent value).
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	return p.c.ClassicEvict(victim)
}

// BeforeRead implements memctrl.Policy.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy.
func (p *Policy) ParentCounterOverride(int, uint64) (uint64, bool) { return 0, false }

// OnCrash implements memctrl.Policy: shadow writes were synchronous and
// the root is non-volatile; the SRAM interior is simply lost.
func (p *Policy) OnCrash() {}

// Recover implements memctrl.Policy: read every shadow slot, verify the
// recomputed cache-tree against the surviving root, and restore each
// recorded node into NVM with an HMAC recomputed under its restored (or
// already-consistent) parent counter, top level first.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	rep := memctrl.RecoveryReport{Scheme: p.Name()}
	lay := p.c.Layout()
	geo := &lay.Geo
	slots := p.c.Meta().Capacity()
	degraded := p.c.Config().DegradedRecovery

	// A node that moved cache slots leaves a stale entry in its old shadow
	// slot; both images are authentic, so keep the one with the larger
	// (monotonic) counter value per node.
	byLevel := make([]map[uint64]*sit.Node, geo.Levels)
	for k := range byLevel {
		byLevel[k] = make(map[uint64]*sit.Node)
	}
	for s := 0; s < slots; s++ {
		rep.NVMReads++
		content := p.c.Device().Peek(p.slotAddr(s))
		p.tree[0][s] = p.leafHash(s, content)
		rep.MACOps++
		off := binary.LittleEndian.Uint32(content[56:60])
		if off == 0 {
			continue
		}
		level, index, ok := geo.NodeAtOffset(off - 1)
		if !ok {
			if degraded {
				// The slot content was corrupted on media: which node it
				// held is unknowable, so the node it shadowed cannot be
				// restored. Record the loss and keep going; the cache-tree
				// root check below decides whether the rest is trustworthy.
				rep.Degradation.Unrecoverable = append(rep.Degradation.Unrecoverable,
					memctrl.NodeRef{Level: -1, Index: uint64(s)})
				continue
			}
			return rep, memctrl.TamperAt("shadow slot", -1, uint64(s), "invalid offset field")
		}
		var blk counter.Block
		copy(blk[:56], content[:56])
		node := sit.DecodeNode(level, index, geo.SplitLeaf && level == 0, blk)
		if prev, dup := byLevel[level][index]; !dup || node.FValue() > prev.FValue() {
			byLevel[level][index] = node
		}
	}
	recomputed, hashes := p.rebuildTree()
	rep.MACOps += hashes
	if recomputed != p.root {
		if degraded {
			// The cache-tree proof is broken, so no shadow image can be
			// trusted for restoration: quarantine everything the table
			// recorded and restore nothing. The verdict is arbitrated
			// against the shadow table's own media evidence — a recorded
			// persistent fault on any slot line explains the mismatch as
			// degraded loss; a clean table whose proof broke is
			// replay-shaped. (This trades replay fail-stop for
			// availability — the report makes the degradation visible.)
			cause, ev := memctrl.CauseReplayShaped, memctrl.EvidenceSummary{}.String()
			for s := 0; s < slots; s++ {
				sev := p.c.EvidenceAt(p.slotAddr(s))
				if mc, ok := memctrl.MediaCause(sev); ok {
					cause, ev = mc, sev.String()
					break
				}
			}
			for level := range byLevel {
				for index := range byLevel[level] {
					p.c.QuarantineSubtree(level, index, cause, ev, &rep.Degradation)
				}
			}
			return rep, nil
		}
		return rep, memctrl.ReplayAt("shadow table", -1, 0, "cache-tree root mismatch")
	}

	restored := make(map[[2]uint64]*sit.Node)
	for level := geo.Levels - 1; level >= 0; level-- {
		indices := make([]uint64, 0, len(byLevel[level]))
		for idx := range byLevel[level] {
			indices = append(indices, idx)
		}
		sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })
		for _, index := range indices {
			node := byLevel[level][index]
			// A node that moved cache slots may survive only as an older
			// image (its newest slot was overwritten by another node after
			// it was flushed). The NVM copy is then ahead; restoring the
			// leftover would regress monotonic counters, so skip it.
			rep.NVMReads++
			if stale := p.c.StaleNode(level, index); node.FValue() < stale.FValue() {
				continue
			}
			var pc uint64
			if geo.IsTop(level) {
				pc = p.c.Root().Counter(index)
			} else {
				pl, pi, slot := geo.Parent(level, index)
				if pn, ok := restored[[2]uint64{uint64(pl), pi}]; ok {
					pc = pn.Counter(slot)
				} else {
					pc = p.c.StaleNode(pl, pi).Counter(slot)
				}
			}
			node.SetHMAC(p.c.NodeMAC(node, pc))
			rep.MACOps++
			p.c.Device().Poke(geo.NodeAddr(level, index), nvmem.Line(node.Encode()))
			rep.NVMWrites++
			rep.NodesRecovered++
			restored[[2]uint64{uint64(level), index}] = node
			p.c.FaultEvent(memctrl.EvRecoveryStep, geo.NodeAddr(level, index))
		}
	}

	cfg := p.c.Config()
	rep.TimeNS = float64(rep.NVMReads)*cfg.RecoveryReadNS +
		float64(rep.NVMWrites)*cfg.RecoveryWriteNS +
		float64(rep.MACOps)*cfg.RecoveryHashNS
	return rep, nil
}

// Storage implements memctrl.Policy (§IV-E): the shadow table in NVM, an
// extra 8 B HMAC per 64 B cache line (1/8 of the metadata cache), and a
// 64 B root register on chip.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		NVMExtraBytes:  lay.ShadowBytes,
		CacheTaxBytes:  uint64(p.c.Config().MetaCacheBytes) / 8,
		OnChipNVBytes:  64,
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}
