package asit_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/nvmem"
	"steins/internal/scheme/asit"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/wb"
)

func TestConformance(t *testing.T) {
	t.Run("RoundTrip", func(t *testing.T) { schemetest.RunRoundTrip(t, asit.Factory, false) })
	t.Run("CrashRecover", func(t *testing.T) { schemetest.RunCrashRecover(t, asit.Factory, false) })
	t.Run("ForceAllDirty", func(t *testing.T) { schemetest.RunForceAllDirtyRecover(t, asit.Factory, false) })
	t.Run("RuntimeTamper", func(t *testing.T) { schemetest.RunRuntimeTamperDetected(t, asit.Factory) })
	t.Run("DataReplay", func(t *testing.T) { schemetest.RunRecoveryDetectsDataReplay(t, asit.Factory) })
	t.Run("Determinism", func(t *testing.T) { schemetest.RunDeterminism(t, asit.Factory, false) })
	t.Run("SparseCache", func(t *testing.T) { schemetest.RunSparseCacheRecover(t, asit.Factory, false) })
}

func TestShadowTableDoubleWrites(t *testing.T) {
	// §II-D: ASIT incurs ~2x memory writes versus WB because every
	// metadata modification also writes a shadow slot.
	run := func(f memctrl.PolicyFactory) nvmem.Stats {
		c := memctrl.New(schemetest.Config(false), f)
		schemetest.Workload(t, c, 4000, 9)
		return c.Device().Stats()
	}
	sWB, sASIT := run(wb.Factory), run(asit.Factory)
	if sASIT.Writes[nvmem.ClassShadow] == 0 {
		t.Fatal("no shadow writes recorded")
	}
	ratio := float64(sASIT.TotalWrites()) / float64(sWB.TotalWrites())
	if ratio < 1.5 {
		t.Fatalf("ASIT/WB write ratio %.2f, want >= 1.5 (paper: ~2x)", ratio)
	}
}

func TestRecoveryDetectsTamperedShadowSlot(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), asit.Factory)
	schemetest.Workload(t, c, 3000, 11)
	c.Crash()
	lay := c.Layout()
	// Corrupt a populated shadow slot: cache-tree root mismatch.
	for s := uint64(0); s*64 < lay.ShadowBytes; s++ {
		addr := lay.ShadowBase + s*64
		line := c.Device().Peek(addr)
		if line == (nvmem.Line{}) {
			continue
		}
		line[5] ^= 1
		c.Device().Poke(addr, line)
		break
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) && !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after shadow tamper = %v, want integrity error", err)
	}
}

func TestRecoveryDetectsReplayedShadowTable(t *testing.T) {
	// Snapshot the whole shadow region early, let the system advance, then
	// restore the old region after the crash: root mismatch.
	c := memctrl.New(schemetest.Config(false), asit.Factory)
	schemetest.Workload(t, c, 1500, 13)
	lay := c.Layout()
	snapshot := make(map[uint64]nvmem.Line)
	for s := uint64(0); s*64 < lay.ShadowBytes; s++ {
		addr := lay.ShadowBase + s*64
		snapshot[addr] = c.Device().Peek(addr)
	}
	schemetest.Workload(t, c, 1500, 14)
	c.Crash()
	for addr, line := range snapshot {
		c.Device().Poke(addr, line)
	}
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) && !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after shadow replay = %v, want integrity error", err)
	}
}

func TestRecoveryFastButWriteHeavy(t *testing.T) {
	// Fig. 17's shape: ASIT recovery reads exactly one shadow slot per
	// cache line and restores with writes — reads bounded by cache size.
	c := memctrl.New(schemetest.Config(false), asit.Factory)
	schemetest.Workload(t, c, 4000, 15)
	c.ForceAllDirty()
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	slots := uint64(c.Meta().Capacity())
	if rep.NVMReads < slots || rep.NVMReads > slots*2 {
		t.Fatalf("ASIT recovery reads = %d, want ~%d (one per shadow slot)", rep.NVMReads, slots)
	}
	if rep.NVMWrites == 0 {
		t.Fatal("ASIT recovery restored nothing")
	}
}

func TestStorageOverheadASIT(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), asit.Factory)
	s := c.Policy().Storage()
	if s.NVMExtraBytes != uint64(c.Config().MetaCacheBytes) {
		t.Fatalf("shadow table %d bytes, want cache-sized %d", s.NVMExtraBytes, c.Config().MetaCacheBytes)
	}
	// §IV-E: 8 B HMAC per 64 B cache line = 1/8 cache tax.
	if s.CacheTaxBytes != uint64(c.Config().MetaCacheBytes)/8 {
		t.Fatalf("cache tax %d, want 1/8 of cache", s.CacheTaxBytes)
	}
}

func TestShadowSlotsConcentrateWear(t *testing.T) {
	// §I motivates NVM's limited write endurance; ASIT's per-cache-line
	// shadow slots absorb one write per modification, so the hottest
	// shadow line wears far faster than any data line under WB.
	run := func(f memctrl.PolicyFactory) (uint64, uint64) {
		c := memctrl.New(schemetest.Config(false), f)
		schemetest.Workload(t, c, 6000, 21)
		w := c.Device().WearStats()
		return w.MaxPerLine, w.TotalWrites
	}
	wbMax, wbTotal := run(wb.Factory)
	asitMax, asitTotal := run(asit.Factory)
	if asitTotal < wbTotal*3/2 {
		t.Fatalf("ASIT total wear %d not well above WB %d", asitTotal, wbTotal)
	}
	if asitMax <= wbMax {
		t.Fatalf("ASIT hottest line (%d writes) not hotter than WB's (%d)", asitMax, wbMax)
	}
}
