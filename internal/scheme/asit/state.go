// Snapshot support: ASIT's state beyond the shared controller structures is
// the volatile cache-tree over shadow slots plus its on-chip NV root. The
// tree is serialized rather than recomputed from the shadow table: under an
// active media-fault seed, Peeked shadow contents could diverge from the
// incrementally maintained hashes.

package asit

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// policyState is the gob image of the scheme state.
type policyState struct {
	Tree [][]uint64
	Root uint64
}

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	st := policyState{Tree: make([][]uint64, len(p.tree)), Root: p.root}
	for i, lvl := range p.tree {
		st.Tree[i] = append([]uint64(nil), lvl...)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&st); err != nil {
		return nil, fmt.Errorf("asit: encode state: %w", err)
	}
	return buf.Bytes(), nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	var st policyState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return fmt.Errorf("asit: decode state: %w", err)
	}
	if len(st.Tree) != len(p.tree) {
		return fmt.Errorf("asit: state has %d tree levels, scheme has %d", len(st.Tree), len(p.tree))
	}
	for i := range p.tree {
		if len(st.Tree[i]) != len(p.tree[i]) {
			return fmt.Errorf("asit: state tree level %d has %d nodes, scheme has %d", i, len(st.Tree[i]), len(p.tree[i]))
		}
		copy(p.tree[i], st.Tree[i])
	}
	p.root = st.Root
	return nil
}
