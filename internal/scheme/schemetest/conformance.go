package schemetest

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/sim"
	"steins/internal/trace"
)

// This file is the cross-scheme, cross-channel conformance harness: the
// same trace is replayed through every scheme on both the 1-channel
// reference engine and N-channel interleaved configurations, and the runs
// are compared differentially. The invariants are exact — retired-op
// counts, per-address final counter state, and per-shard statistic sums
// must match bit-for-bit, not approximately.

// Schemes returns every evaluated scheme, the sweep axis of the
// conformance tables.
func Schemes() []sim.Scheme {
	return []sim.Scheme{
		sim.WBGC, sim.WBSC, sim.ASIT, sim.STAR,
		sim.SteinsGC, sim.SteinsSC, sim.SCUEGC, sim.SCUESC,
		sim.PipeSITGC, sim.PipeSITSC, sim.TriadGC, sim.TriadSC,
	}
}

// ConformanceProfile is the conformance trace: uniform mixed traffic over
// a footprint small enough to churn a divided metadata cache yet large
// enough that per-line write counts stay far below counter.MinorMax — an
// SC minor overflow re-encrypts a whole leaf group and would break the
// exact counter-equals-write-count invariant (the harness asserts zero
// overflows so a violation is loud, not silent).
func ConformanceProfile() trace.Profile {
	return trace.Profile{
		Name:           "conformance",
		FootprintBytes: 256 << 10,
		WriteFrac:      0.6,
		GapMean:        12,
		Pattern:        trace.Uniform,
	}
}

// ConformanceOptions returns the run options the harness uses: a metadata
// cache small enough that every channel count still evicts.
func ConformanceOptions(ops int) sim.Options {
	return sim.Options{Ops: ops, Seed: 99, MetaCacheBytes: 16 << 10}
}

// TraceModel is the trace oracle: per-line write counts and the global
// ordinal of the last write to each line, derived from the generator alone
// (no simulation), so both engines are checked against an independent
// reference.
type TraceModel struct {
	Writes map[uint64]uint64
	Last   map[uint64]int
	Ops    int
}

// BuildModel replays the generated trace into a TraceModel.
func BuildModel(prof trace.Profile, opt sim.Options) *TraceModel {
	m := &TraceModel{Writes: make(map[uint64]uint64), Last: make(map[uint64]int)}
	g := trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)
	for {
		op, ok := g.Next()
		if !ok {
			return m
		}
		if op.IsWrite {
			m.Writes[op.Addr]++
			m.Last[op.Addr] = m.Ops
		}
		m.Ops++
	}
}

// driveSharded builds an engine and replays the conformance trace.
func driveSharded(t *testing.T, s sim.Scheme, prof trace.Profile, opt sim.Options, so sim.ShardOptions) (*sim.Sharded, sim.ShardedResult) {
	t.Helper()
	e := sim.NewSharded(prof, s, opt, so)
	if err := e.DriveStream(trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)); err != nil {
		t.Fatalf("drive (%d channels, %s): %v", so.Channels, so.Interleave, err)
	}
	return e, e.Result()
}

// CheckMergedSums verifies the merged result is exactly the fold of the
// per-shard results: additive statistics sum, the makespan is the parallel
// maximum, and every shard's phase buckets partition its own makespan.
func CheckMergedSums(t *testing.T, e *sim.Sharded, res *sim.ShardedResult) {
	t.Helper()
	var sum memctrl.Stats
	var ops int
	var exec, writeBytes uint64
	for i := range res.Shards {
		sh := &res.Shards[i]
		sum.Merge(&sh.Ctrl)
		ops += sh.Ops
		writeBytes += sh.WriteBytes
		if sh.ExecCycles > exec {
			exec = sh.ExecCycles
		}
	}
	m := &res.Merged
	if m.Ops != ops {
		t.Fatalf("merged ops %d != shard sum %d", m.Ops, ops)
	}
	if m.ExecCycles != exec {
		t.Fatalf("merged exec %d != shard max %d", m.ExecCycles, exec)
	}
	if m.WriteBytes != writeBytes {
		t.Fatalf("merged write bytes %d != shard sum %d", m.WriteBytes, writeBytes)
	}
	if m.Ctrl.DataReads != sum.DataReads || m.Ctrl.DataWrites != sum.DataWrites ||
		m.Ctrl.ReadLatSum != sum.ReadLatSum || m.Ctrl.WriteLatSum != sum.WriteLatSum ||
		m.Ctrl.HashOps != sum.HashOps || m.Ctrl.AESOps != sum.AESOps ||
		m.Ctrl.Overflows != sum.Overflows || m.Ctrl.Reencrypts != sum.Reencrypts {
		t.Fatalf("merged controller stats are not the exact shard sum:\nmerged %+v\nsum    %+v",
			statsHead(&m.Ctrl), statsHead(&sum))
	}
	for k, c := range e.Controllers() {
		st := c.Stats()
		if got, want := st.MakespanPhaseCycles(), c.MeasuredExecCycles(); got != want {
			t.Fatalf("channel %d: phase buckets %d do not partition makespan %d", k, got, want)
		}
	}
}

// statsHead projects the additive counters for failure messages.
func statsHead(s *memctrl.Stats) map[string]uint64 {
	return map[string]uint64{
		"DataReads": s.DataReads, "DataWrites": s.DataWrites,
		"ReadLatSum": s.ReadLatSum, "WriteLatSum": s.WriteLatSum,
		"HashOps": s.HashOps, "AESOps": s.AESOps,
		"Overflows": s.Overflows, "Reencrypts": s.Reencrypts,
	}
}

// checkFinalState reads every written line back through the engine and
// compares data and encryption-counter state against the trace oracle.
func checkFinalState(t *testing.T, label string, e *sim.Sharded, m *TraceModel) {
	t.Helper()
	for addr, writes := range m.Writes {
		if got := e.DataCounter(addr); got != writes {
			t.Fatalf("%s: line %#x counter %d, oracle says %d writes", label, addr, got, writes)
		}
		got, err := e.ReadGlobal(1, addr)
		if err != nil {
			t.Fatalf("%s: read %#x: %v", label, addr, err)
		}
		if want := sim.Payload(addr, m.Last[addr]); got != want {
			t.Fatalf("%s: line %#x holds wrong data (last writer op %d)", label, addr, m.Last[addr])
		}
	}
}

// DiffSharded is the tentpole differential check: the same trace through
// the same scheme on 1 channel and on N channels must retire the same
// operations, leave every line with identical data and identical counter
// state, and produce merged statistics that are the exact shard sums.
func DiffSharded(t *testing.T, s sim.Scheme, channels int, iv trace.Interleave) {
	t.Helper()
	prof := ConformanceProfile()
	opt := ConformanceOptions(5000)
	m := BuildModel(prof, opt)

	base, baseRes := driveSharded(t, s, prof, opt, sim.ShardOptions{Channels: 1})
	shard, shardRes := driveSharded(t, s, prof, opt, sim.ShardOptions{Channels: channels, Interleave: iv})

	if baseRes.Merged.Ops != m.Ops || shardRes.Merged.Ops != m.Ops {
		t.Fatalf("retired ops diverge: base %d, sharded %d, trace %d",
			baseRes.Merged.Ops, shardRes.Merged.Ops, m.Ops)
	}
	if baseRes.Merged.Ctrl.DataWrites != shardRes.Merged.Ctrl.DataWrites ||
		baseRes.Merged.Ctrl.DataReads != shardRes.Merged.Ctrl.DataReads {
		t.Fatalf("data op counts diverge: base %d/%d, sharded %d/%d",
			baseRes.Merged.Ctrl.DataReads, baseRes.Merged.Ctrl.DataWrites,
			shardRes.Merged.Ctrl.DataReads, shardRes.Merged.Ctrl.DataWrites)
	}
	if baseRes.Merged.Ctrl.Overflows != 0 || shardRes.Merged.Ctrl.Overflows != 0 {
		t.Fatalf("conformance trace overflowed a minor counter (base %d, sharded %d); shrink it",
			baseRes.Merged.Ctrl.Overflows, shardRes.Merged.Ctrl.Overflows)
	}
	CheckMergedSums(t, base, &baseRes)
	CheckMergedSums(t, shard, &shardRes)
	checkFinalState(t, "base", base, m)
	checkFinalState(t, "sharded", shard, m)
}

// DiffShardedCrash drives the sharded engine, forces every cached node
// dirty (§IV-D), crashes the whole machine, recovers channel by channel,
// and checks the recovery reports aggregate consistently (work summed,
// time the parallel maximum), the persisted trees audit clean, and the
// data and counters survive intact. Schemes without a recovery path (the
// write-back baselines) are skipped.
func DiffShardedCrash(t *testing.T, s sim.Scheme, channels int, iv trace.Interleave) {
	t.Helper()
	prof := ConformanceProfile()
	opt := ConformanceOptions(5000)
	m := BuildModel(prof, opt)

	e, _ := driveSharded(t, s, prof, opt, sim.ShardOptions{Channels: channels, Interleave: iv})
	e.ForceAllDirty()
	e.Crash()
	reports, agg, err := e.Recover()
	if errors.Is(err, memctrl.ErrNoRecovery) {
		t.Skipf("%s has no recovery path", s.Name)
	}
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	var nodes, reads, writes, macs uint64
	var maxNS float64
	for k, rep := range reports {
		if rep.TimeNS <= 0 || rep.NVMReads == 0 {
			t.Fatalf("channel %d: implausible recovery report %+v", k, rep)
		}
		nodes += rep.NodesRecovered
		reads += rep.NVMReads
		writes += rep.NVMWrites
		macs += rep.MACOps
		if rep.TimeNS > maxNS {
			maxNS = rep.TimeNS
		}
	}
	if agg.NodesRecovered != nodes || agg.NVMReads != reads ||
		agg.NVMWrites != writes || agg.MACOps != macs || agg.TimeNS != maxNS {
		t.Fatalf("aggregate report is not the shard fold: agg %+v, folded nodes=%d reads=%d writes=%d macs=%d max=%g",
			agg, nodes, reads, writes, macs, maxNS)
	}
	if err := e.VerifyNVM(); err != nil {
		t.Fatalf("persisted trees inconsistent after recovery: %v", err)
	}
	checkFinalState(t, "post-recovery", e, m)
}

// MonotoneCounters drives the conformance trace in two halves and checks
// that every touched line's encryption counter only ever grows, matching
// the cumulative write count at each checkpoint. Counter regression is the
// canonical replay-attack surface, so this is exact, per line.
func MonotoneCounters(t *testing.T, s sim.Scheme, channels int, iv trace.Interleave) {
	t.Helper()
	prof := ConformanceProfile()
	opt := ConformanceOptions(4000)
	ops := trace.Record(prof, opt.Seed, opt.Ops)
	half := len(ops) / 2

	e := sim.NewSharded(prof, s, opt, sim.ShardOptions{Channels: channels, Interleave: iv})
	if err := e.DriveStream(trace.NewReplay(prof.Name, ops[:half])); err != nil {
		t.Fatalf("first half: %v", err)
	}
	mid := make(map[uint64]uint64)
	for i := range ops[:half] {
		if ops[i].IsWrite {
			mid[ops[i].Addr]++
		}
	}
	for addr, writes := range mid {
		if got := e.DataCounter(addr); got != writes {
			t.Fatalf("mid-trace: line %#x counter %d, expected %d", addr, got, writes)
		}
	}
	if err := e.DriveStream(trace.NewReplay(prof.Name, ops[half:])); err != nil {
		t.Fatalf("second half: %v", err)
	}
	total := make(map[uint64]uint64, len(mid))
	for i := range ops {
		if ops[i].IsWrite {
			total[ops[i].Addr]++
		}
	}
	for addr, writes := range total {
		got := e.DataCounter(addr)
		if got != writes {
			t.Fatalf("final: line %#x counter %d, expected %d", addr, got, writes)
		}
		if got < mid[addr] {
			t.Fatalf("line %#x counter regressed: %d at half, %d at end", addr, mid[addr], got)
		}
	}
}
