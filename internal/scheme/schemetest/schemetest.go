// Package schemetest provides a conformance suite that every recovery
// scheme must pass: functional read/write round trips under eviction
// churn, crash-recovery round trips, continued operation after recovery,
// and detection of runtime tampering. Scheme-specific behaviours (what
// exactly each scheme's trust base catches) live in the schemes' own test
// files.
package schemetest

import (
	"encoding/binary"
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/rng"
)

// Config returns the small-system configuration the suite runs on: 1 MB of
// data behind a 4 KB metadata cache, so eviction churn is constant.
func Config(split bool) memctrl.Config {
	cfg := memctrl.DefaultConfig(1<<20, split)
	cfg.MetaCacheBytes = 4 << 10
	cfg.MetaCacheWays = 4
	return cfg
}

// Pattern builds a recognisable data block.
func Pattern(addr uint64, v byte) [64]byte {
	var b [64]byte
	binary.LittleEndian.PutUint64(b[:8], addr)
	for i := 8; i < 64; i++ {
		b[i] = v
	}
	return b
}

// Workload drives a deterministic mixed read/write sequence, checking
// every read, and returns the expected final contents.
func Workload(t *testing.T, c *memctrl.Controller, ops int, seed uint64) map[uint64][64]byte {
	t.Helper()
	r := rng.New(seed)
	expect := make(map[uint64][64]byte)
	lines := c.Config().DataBytes / 64
	for i := 0; i < ops; i++ {
		addr := r.Uint64n(lines) * 64
		if r.Bool(0.6) {
			v := Pattern(addr, byte(r.Uint64()))
			if err := c.WriteData(5, addr, v); err != nil {
				t.Fatalf("op %d write %#x: %v", i, addr, err)
			}
			expect[addr] = v
		} else {
			got, err := c.ReadData(5, addr)
			if err != nil {
				t.Fatalf("op %d read %#x: %v", i, addr, err)
			}
			if want, written := expect[addr]; written && got != want {
				t.Fatalf("op %d read %#x: wrong data", i, addr)
			}
		}
	}
	return expect
}

// VerifyAll reads back every expected block.
func VerifyAll(t *testing.T, c *memctrl.Controller, expect map[uint64][64]byte) {
	t.Helper()
	for addr, want := range expect {
		got, err := c.ReadData(1, addr)
		if err != nil {
			t.Fatalf("verify read %#x: %v", addr, err)
		}
		if got != want {
			t.Fatalf("verify read %#x: wrong data", addr)
		}
	}
}

// RunRoundTrip checks functional correctness under churn, ending with a
// whole-tree consistency audit of the persisted state.
func RunRoundTrip(t *testing.T, factory memctrl.PolicyFactory, split bool) {
	t.Helper()
	c := memctrl.New(Config(split), factory)
	expect := Workload(t, c, 4000, 42)
	VerifyAll(t, c, expect)
	if c.Meta().Stats().DirtyEvictions == 0 {
		t.Fatal("workload caused no dirty evictions; churn missing")
	}
	if err := c.VerifyNVM(); err != nil {
		t.Fatalf("persisted tree inconsistent after churn: %v", err)
	}
}

// RunCrashRecover checks the full crash-recovery round trip, including
// continued operation and a second crash afterwards.
func RunCrashRecover(t *testing.T, factory memctrl.PolicyFactory, split bool) {
	t.Helper()
	c := memctrl.New(Config(split), factory)
	expect := Workload(t, c, 4000, 1234)
	c.Crash()
	rep, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.TimeNS <= 0 || rep.NVMReads == 0 {
		t.Fatalf("implausible recovery report: %+v", rep)
	}
	VerifyAll(t, c, expect)
	expect2 := Workload(t, c, 1500, 77)
	VerifyAll(t, c, expect2)
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("second recover: %v", err)
	}
	VerifyAll(t, c, expect2)
	if err := c.VerifyNVM(); err != nil {
		t.Fatalf("persisted tree inconsistent after recovery: %v", err)
	}
}

// RunForceAllDirtyRecover checks recovery under the §IV-D assumption that
// every cached node is dirty at the crash.
func RunForceAllDirtyRecover(t *testing.T, factory memctrl.PolicyFactory, split bool) {
	t.Helper()
	c := memctrl.New(Config(split), factory)
	expect := Workload(t, c, 5000, 7)
	c.ForceAllDirty()
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("recover after ForceAllDirty: %v", err)
	}
	VerifyAll(t, c, expect)
}

// RunRuntimeTamperDetected checks that a runtime read of tampered data
// fails with ErrTamper regardless of scheme.
func RunRuntimeTamperDetected(t *testing.T, factory memctrl.PolicyFactory) {
	t.Helper()
	c := memctrl.New(Config(false), factory)
	if err := c.WriteData(0, 256, Pattern(256, 5)); err != nil {
		t.Fatal(err)
	}
	line := c.Device().Peek(256)
	line[0] ^= 0xff
	c.Device().Poke(256, line)
	if _, err := c.ReadData(0, 256); !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("tampered read error = %v, want ErrTamper", err)
	}
}

// RunRecoveryDetectsDataReplay writes twice, crashes, restores the first
// (ciphertext, tag) pair and expects recovery (or, failing that, the next
// read) to reject it.
func RunRecoveryDetectsDataReplay(t *testing.T, factory memctrl.PolicyFactory) {
	t.Helper()
	c := memctrl.New(Config(false), factory)
	target := uint64(192)
	if err := c.WriteData(1, target, Pattern(target, 1)); err != nil {
		t.Fatal(err)
	}
	oldLine := c.Device().Peek(target)
	oldTag := c.Tag(target)
	if err := c.WriteData(1, target, Pattern(target, 2)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(target, oldLine)
	c.SetTag(target, oldTag)
	_, err := c.Recover()
	if err == nil {
		if _, rerr := c.ReadData(0, target); rerr == nil {
			t.Fatal("replayed data accepted by recovery and runtime")
		}
		return
	}
	if !errors.Is(err, memctrl.ErrReplay) && !errors.Is(err, memctrl.ErrTamper) {
		t.Fatalf("recover after data replay = %v, want integrity error", err)
	}
}

// RunDeterminism checks bit-identical reruns.
func RunDeterminism(t *testing.T, factory memctrl.PolicyFactory, split bool) {
	t.Helper()
	run := func() (uint64, uint64) {
		c := memctrl.New(Config(split), factory)
		Workload(t, c, 3000, 5)
		return c.ExecCycles(), c.Device().Stats().TotalWrites()
	}
	e1, w1 := run()
	e2, w2 := run()
	if e1 != e2 || w1 != w2 {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d", e1, w1, e2, w2)
	}
}

// RunSparseCacheRecover crashes a system whose metadata cache is much
// larger than the touched working set, so most cache slots (and their
// per-slot recovery structures) were never used. Regression guard: the
// schemes' trust bases must cover untouched slots consistently.
func RunSparseCacheRecover(t *testing.T, factory memctrl.PolicyFactory, split bool) {
	t.Helper()
	cfg := memctrl.DefaultConfig(1<<20, split)
	cfg.MetaCacheBytes = 128 << 10 // far larger than the touched set
	c := memctrl.New(cfg, factory)
	expect := map[uint64][64]byte{}
	for i := uint64(0); i < 32; i++ {
		addr := i * 64
		v := Pattern(addr, byte(i))
		if err := c.WriteData(5, addr, v); err != nil {
			t.Fatal(err)
		}
		expect[addr] = v
	}
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("sparse-cache recover: %v", err)
	}
	VerifyAll(t, c, expect)
	// And again with everything force-dirtied.
	c.ForceAllDirty()
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatalf("sparse-cache recover (all dirty): %v", err)
	}
	VerifyAll(t, c, expect)
}

// RunTorture interleaves reads, writes, targeted node flushes, crashes and
// recoveries at random for many rounds, holding a full model of expected
// contents. It is the deepest correctness exercise: any lost update, stale
// restore or bookkeeping drift eventually surfaces as a wrong read or a
// false integrity violation.
func RunTorture(t *testing.T, factory memctrl.PolicyFactory, split bool, seed uint64, ops int) {
	t.Helper()
	cfg := Config(split)
	c := memctrl.New(cfg, factory)
	r := rng.New(seed)
	lines := cfg.DataBytes / 64
	expect := make(map[uint64][64]byte)
	for i := 0; i < ops; i++ {
		switch {
		case r.Bool(0.02): // crash + recover
			c.Crash()
			if _, err := c.Recover(); err != nil {
				t.Fatalf("op %d: recover: %v", i, err)
			}
		case r.Bool(0.02): // flush a random resident leaf
			leaf := r.Uint64n(c.Layout().Geo.LevelNodes[0])
			if _, err := c.FlushNode(0, leaf); err != nil {
				t.Fatalf("op %d: flush leaf %d: %v", i, leaf, err)
			}
		case r.Bool(0.55): // write
			addr := r.Uint64n(lines) * 64
			v := Pattern(addr, byte(r.Uint64()))
			if err := c.WriteData(3, addr, v); err != nil {
				t.Fatalf("op %d: write %#x: %v", i, addr, err)
			}
			expect[addr] = v
		default: // read
			addr := r.Uint64n(lines) * 64
			got, err := c.ReadData(3, addr)
			if err != nil {
				t.Fatalf("op %d: read %#x: %v", i, addr, err)
			}
			if want, ok := expect[addr]; ok && got != want {
				t.Fatalf("op %d: read %#x returned stale/wrong data", i, addr)
			}
		}
	}
	VerifyAll(t, c, expect)
}
