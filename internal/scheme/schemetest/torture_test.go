package schemetest_test

import (
	"testing"

	"steins/internal/scheme/asit"
	"steins/internal/scheme/schemetest"
	"steins/internal/scheme/scue"
	"steins/internal/scheme/star"
	"steins/internal/scheme/steins"
	"steins/internal/sim"
)

func TestTortureAllSchemes(t *testing.T) {
	schemes := []sim.Scheme{
		{Name: "ASIT", Factory: asit.Factory},
		{Name: "STAR", Factory: star.Factory},
		{Name: "Steins-GC", Factory: steins.Factory},
		{Name: "Steins-SC", Factory: steins.Factory, Split: true},
		{Name: "SCUE-GC", Factory: scue.Factory},
	}
	ops := 6000
	if testing.Short() {
		ops = 1500
	}
	for _, s := range schemes {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 3; seed++ {
				schemetest.RunTorture(t, s.Factory, s.Split, seed, ops)
			}
		})
	}
}
