package schemetest_test

import (
	"fmt"
	"testing"

	"steins/internal/scheme/schemetest"
	"steins/internal/sim"
	"steins/internal/trace"
)

// channelConfigs is the channel axis of the conformance tables: the
// 1-channel reference plus every interleave mode at multiple widths
// (including a width that does not divide the line count evenly).
var channelConfigs = []struct {
	Channels   int
	Interleave trace.Interleave
}{
	{1, trace.InterleaveLine},
	{4, trace.InterleaveLine},
	{4, trace.InterleavePage},
	{3, trace.InterleaveHash},
}

func configName(ch int, iv trace.Interleave) string {
	if ch == 1 {
		return "1ch"
	}
	return fmt.Sprintf("%dch-%s", ch, iv)
}

// TestShardedConformance is the tentpole differential suite: every scheme,
// every channel configuration, sharded vs. unsharded — identical retired
// ops, identical per-line data and counter state, statistics that are the
// exact shard sums, and phase buckets that partition each shard's makespan.
func TestShardedConformance(t *testing.T) {
	for _, s := range schemetest.Schemes() {
		for _, cc := range channelConfigs {
			if cc.Channels == 1 {
				continue // DiffSharded runs the 1-channel reference itself
			}
			t.Run(s.Name+"/"+configName(cc.Channels, cc.Interleave), func(t *testing.T) {
				schemetest.DiffSharded(t, s, cc.Channels, cc.Interleave)
			})
		}
	}
}

// TestShardedCrashRecoveryConformance checks the crash leg shard by shard:
// force-dirty, whole-machine crash, per-channel recovery, consistent
// aggregate reports, clean tree audits, intact data. Write-back baselines
// skip themselves (no recovery path).
func TestShardedCrashRecoveryConformance(t *testing.T) {
	for _, s := range schemetest.Schemes() {
		for _, cc := range channelConfigs {
			t.Run(s.Name+"/"+configName(cc.Channels, cc.Interleave), func(t *testing.T) {
				schemetest.DiffShardedCrash(t, s, cc.Channels, cc.Interleave)
			})
		}
	}
}

// TestMonotoneCountersConformance checks, at two checkpoints, that every
// line's encryption counter equals its cumulative write count and never
// regresses — per scheme, for 1-channel and N-channel configurations.
func TestMonotoneCountersConformance(t *testing.T) {
	for _, s := range schemetest.Schemes() {
		for _, cc := range channelConfigs {
			t.Run(s.Name+"/"+configName(cc.Channels, cc.Interleave), func(t *testing.T) {
				schemetest.MonotoneCounters(t, s, cc.Channels, cc.Interleave)
			})
		}
	}
}

// TestRunShardedWithCrashAllSchemes exercises the packaged crash wrapper
// across schemes and channel counts, mirroring sim.RunWithCrash coverage.
func TestRunShardedWithCrashAllSchemes(t *testing.T) {
	for _, s := range schemetest.Schemes() {
		if s.Name == "WB-GC" || s.Name == "WB-SC" {
			continue
		}
		t.Run(s.Name, func(t *testing.T) {
			prof := schemetest.ConformanceProfile()
			opt := schemetest.ConformanceOptions(2000)
			res, rep, err := sim.RunShardedWithCrash(prof, s, opt,
				sim.ShardOptions{Channels: 2, Interleave: trace.InterleaveLine}, true)
			if err != nil {
				t.Fatal(err)
			}
			if res.Merged.Ops != opt.Ops {
				t.Fatalf("retired %d ops, want %d", res.Merged.Ops, opt.Ops)
			}
			if rep.TimeNS <= 0 || rep.NVMReads == 0 {
				t.Fatalf("implausible aggregate recovery report: %+v", rep)
			}
		})
	}
}
