package schemetest

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/metrics"
	"steins/internal/nvmem"
	"steins/internal/sim"
	"steins/internal/snapshot"
	"steins/internal/trace"
)

// This file is the resume-equivalence differential harness: the same run
// is checkpointed every k retired ops, each checkpoint serialized through
// the snapshot wire format, reloaded into a fresh system, and driven over
// the trace remainder. The invariant is bit-exact: the resumed run's
// comparable result fields and its serialized metrics JSON must equal the
// straight run's byte for byte, and a crash after the run must produce an
// identical recovery report.

// resumeProfile is the dedicated trace: smaller than the conformance
// footprint so the repeated remainder-replays stay fast, registered by
// name so snapshot resume can rebuild it like a fresh process would.
func resumeProfile() trace.Profile {
	return trace.Profile{
		Name:           "resume-conformance",
		FootprintBytes: 128 << 10,
		WriteFrac:      0.6,
		GapMean:        12,
		Pattern:        trace.Zipf,
		ZipfS:          0.9,
	}
}

func init() {
	trace.Register(resumeProfile())
}

// resumeHeader describes one resume-equivalence run, including a metrics
// collector with a small ring so sample rotation crosses the checkpoint.
func resumeHeader(s sim.Scheme, channels, ops int, faults nvmem.FaultConfig) snapshot.RunHeader {
	return snapshot.RunHeader{
		Workload:       resumeProfile().Name,
		Scheme:         s.Name,
		TotalOps:       ops,
		WarmupOps:      ops / 8,
		Seed:           77,
		MetaCacheBytes: 16 << 10,
		Channels:       channels,
		EpochOps:       128,
		Faults:         faults,
		HasMetrics:     true,
		Metrics:        metrics.Options{SampleEvery: 32, RingCap: 32},
	}
}

// resumeRun couples either engine with its generator behind the handful
// of operations the harness sweeps.
type resumeRun struct {
	h      snapshot.RunHeader
	gen    *trace.Generator
	single *sim.Single
	shard  *sim.Sharded
}

func newResumeRun(t *testing.T, h snapshot.RunHeader) *resumeRun {
	t.Helper()
	prof, ok := trace.ByName(h.Workload)
	if !ok {
		t.Fatalf("workload %q not registered", h.Workload)
	}
	s, ok := sim.SchemeByName(h.Scheme)
	if !ok {
		t.Fatalf("unknown scheme %q", h.Scheme)
	}
	opt, so := h.Options()
	r := &resumeRun{h: h, gen: trace.New(prof, opt.Seed, opt.WarmupOps+opt.Ops)}
	if h.Channels > 1 {
		r.shard = sim.NewSharded(prof, s, opt, so)
	} else {
		r.single = sim.NewSingle(prof, s, opt)
	}
	return r
}

// drive advances up to n ops (n < 0: to exhaustion) and returns how many
// were consumed.
func (r *resumeRun) drive(t *testing.T, n int) int {
	t.Helper()
	var done int
	var err error
	if r.single != nil {
		done, err = r.single.DriveN(r.gen, n)
	} else {
		done, err = r.shard.DriveStreamN(r.gen, n)
	}
	if err != nil {
		t.Fatalf("drive: %v", err)
	}
	return done
}

// capture serializes the run through the wire format and reloads it into
// a completely fresh system.
func (r *resumeRun) capture(t *testing.T) *resumeRun {
	t.Helper()
	var st *snapshot.RunState
	var err error
	if r.single != nil {
		st, err = snapshot.CaptureSingle(r.h, r.gen, r.single)
	} else {
		st, err = snapshot.CaptureSharded(r.h, r.gen, r.shard)
	}
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, st); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := snapshot.Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	res, err := back.Resume()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return &resumeRun{h: r.h, gen: res.Gen, single: res.Single, shard: res.Sharded}
}

// fingerprint reduces a finished run to the comparison payload: the
// comparable result fields and the deterministic metrics JSON.
type fingerprint struct {
	merged sim.Result
	shards []sim.Result
	json   []byte
}

func (r *resumeRun) fingerprint(t *testing.T) fingerprint {
	t.Helper()
	var fp fingerprint
	var buf bytes.Buffer
	if r.single != nil {
		fp.merged = r.single.Result()
		if fp.merged.Snapshot == nil {
			t.Fatalf("no metrics snapshot collected")
		}
		if err := fp.merged.Snapshot.EncodeJSON(&buf); err != nil {
			t.Fatalf("encode metrics: %v", err)
		}
	} else {
		sres := r.shard.Result()
		fp.merged, fp.shards = sres.Merged, sres.Shards
		if sres.System == nil {
			t.Fatalf("no system snapshot collected")
		}
		if err := sres.System.EncodeJSON(&buf); err != nil {
			t.Fatalf("encode system metrics: %v", err)
		}
	}
	fp.json = buf.Bytes()
	fp.merged.Snapshot = nil
	for i := range fp.shards {
		fp.shards[i].Snapshot = nil
	}
	return fp
}

// recoveryReports crashes the run with every cached node forced dirty and
// returns the per-channel recovery reports; ok is false for schemes with
// no recovery path.
func (r *resumeRun) recoveryReports(t *testing.T) ([]memctrl.RecoveryReport, bool) {
	t.Helper()
	if r.single != nil {
		c := r.single.Controller()
		c.ForceAllDirty()
		c.Crash()
		rep, err := c.Recover()
		if errors.Is(err, memctrl.ErrNoRecovery) {
			return nil, false
		}
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		return []memctrl.RecoveryReport{rep}, true
	}
	r.shard.ForceAllDirty()
	r.shard.Crash()
	reports, _, err := r.shard.Recover()
	if errors.Is(err, memctrl.ErrNoRecovery) {
		return nil, false
	}
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return reports, true
}

// DiffResume is the suite body: checkpoint the run every k retired ops,
// reload each checkpoint into a fresh system, drive the remainder, and
// demand a bit-identical fingerprint — then crash both the straight and
// the last resumed run and demand identical recovery reports.
func DiffResume(t *testing.T, s sim.Scheme, channels int, faults nvmem.FaultConfig) {
	t.Helper()
	const ops, every = 1600, 500
	h := resumeHeader(s, channels, ops, faults)

	straight := newResumeRun(t, h)
	straight.drive(t, -1)
	want := straight.fingerprint(t)

	var lastResumed *resumeRun
	walker := newResumeRun(t, h)
	for bound := every; ; bound += every {
		if walker.drive(t, every) == 0 {
			break
		}
		resumed := walker.capture(t)
		remainder := resumed.capture(t) // double round trip: resume of a resume
		remainder.drive(t, -1)
		got := remainder.fingerprint(t)
		if !reflect.DeepEqual(want.merged, got.merged) || !reflect.DeepEqual(want.shards, got.shards) {
			t.Fatalf("checkpoint at op %d: resumed results diverge\nstraight %+v\nresumed  %+v",
				bound, want.merged, got.merged)
		}
		if !bytes.Equal(want.json, got.json) {
			t.Fatalf("checkpoint at op %d: metrics JSON diverges (%d vs %d bytes)",
				bound, len(want.json), len(got.json))
		}
		// Keep walking the original run from the resumed copy, so later
		// checkpoints sit on top of earlier restores.
		walker = resumed
		lastResumed = remainder
	}
	if lastResumed == nil {
		t.Fatalf("trace shorter than one checkpoint interval")
	}

	wantReps, ok := straight.recoveryReports(t)
	if !ok {
		return // write-back baseline: no recovery path to compare
	}
	gotReps, _ := lastResumed.recoveryReports(t)
	if !reflect.DeepEqual(wantReps, gotReps) {
		t.Fatalf("recovery reports diverge\nstraight %+v\nresumed  %+v", wantReps, gotReps)
	}
}

// ResumeCases enumerates the sweep: every scheme at 1, 2 and 4 channels.
func ResumeCases() []struct {
	Scheme   sim.Scheme
	Channels int
} {
	var cases []struct {
		Scheme   sim.Scheme
		Channels int
	}
	for _, s := range Schemes() {
		for _, ch := range []int{1, 2, 4} {
			cases = append(cases, struct {
				Scheme   sim.Scheme
				Channels int
			}{s, ch})
		}
	}
	return cases
}

// ResumeCaseName labels one sweep entry.
func ResumeCaseName(s sim.Scheme, channels int) string {
	return fmt.Sprintf("%s/%dch", s.Name, channels)
}
