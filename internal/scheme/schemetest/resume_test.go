package schemetest

import (
	"testing"

	"steins/internal/nvmem"
)

// TestResumeEquivalence sweeps every scheme at 1/2/4 channels: a run
// checkpointed and resumed at arbitrary retired-op boundaries must export
// byte-identical metrics JSON and identical recovery reports vs the
// straight run.
func TestResumeEquivalence(t *testing.T) {
	for _, tc := range ResumeCases() {
		tc := tc
		t.Run(ResumeCaseName(tc.Scheme, tc.Channels), func(t *testing.T) {
			t.Parallel()
			DiffResume(t, tc.Scheme, tc.Channels, nvmem.FaultConfig{})
		})
	}
}

// TestResumeEquivalenceFaultSeed repeats the sweep on a representative
// scheme subset with the seeded media-fault model active: the fault RNG
// stream and stuck-cell overlays must round-trip through the snapshot or
// the remainder replay diverges.
func TestResumeEquivalenceFaultSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	faults := nvmem.FaultConfig{
		Seed:             13,
		TransientPerRead: 2e-3,
		DoubleBitFrac:    0.25,
		StuckPerWrite:    1e-4,
	}
	for _, tc := range ResumeCases() {
		switch tc.Scheme.Name {
		case "Steins-GC", "Steins-SC", "STAR", "SCUE-SC":
		default:
			continue
		}
		tc := tc
		t.Run(ResumeCaseName(tc.Scheme, tc.Channels)+"/faults", func(t *testing.T) {
			t.Parallel()
			DiffResume(t, tc.Scheme, tc.Channels, faults)
		})
	}
}
