// Snapshot support: pipesit's state beyond the shared controller
// structures is the on-chip NV recovery register plus the coalescing
// update pipeline, serialized in FIFO order so a resumed run retires
// updates in the identical sequence.

package pipesit

import (
	"encoding/binary"
	"fmt"
)

// SaveState implements memctrl.PolicyState.
func (p *Policy) SaveState() ([]byte, error) {
	b := make([]byte, 8+8+len(p.pipe)*24)
	binary.LittleEndian.PutUint64(b[0:], p.recoveryRoot)
	binary.LittleEndian.PutUint64(b[8:], uint64(len(p.pipe)))
	off := 16
	for _, u := range p.pipe {
		binary.LittleEndian.PutUint64(b[off:], uint64(u.level))
		binary.LittleEndian.PutUint64(b[off+8:], u.index)
		binary.LittleEndian.PutUint64(b[off+16:], u.counter)
		off += 24
	}
	return b, nil
}

// LoadState implements memctrl.PolicyState.
func (p *Policy) LoadState(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("pipesit: state is %d bytes, want >= 16", len(data))
	}
	n := binary.LittleEndian.Uint64(data[8:])
	if uint64(len(data)) != 16+n*24 {
		return fmt.Errorf("pipesit: state is %d bytes, want %d for %d updates", len(data), 16+n*24, n)
	}
	p.recoveryRoot = binary.LittleEndian.Uint64(data)
	p.pipe = p.pipe[:0]
	off := 16
	for i := uint64(0); i < n; i++ {
		p.pipe = append(p.pipe, update{
			level:   int(binary.LittleEndian.Uint64(data[off:])),
			index:   binary.LittleEndian.Uint64(data[off+8:]),
			counter: binary.LittleEndian.Uint64(data[off+16:]),
		})
		off += 24
	}
	return nil
}
