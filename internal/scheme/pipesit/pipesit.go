// Package pipesit implements streamlined pipelined SIT updates with update
// coalescing, after Freij et al., "Streamlining Integrity Tree Updates for
// Secure Persistent Memory". Parent counters are generated from child
// contents (Eq. 1/Eq. 2), so a displaced dirty node seals and persists
// immediately under its own generated counter — no ancestor sits on the
// write critical path. The resulting parent-counter update enters a small
// on-chip non-volatile update pipeline instead of being applied
// synchronously, and in-flight updates to the SAME node coalesce: a second
// flush of a child before its pending update retires simply overwrites the
// pending counter, merging both updates into one parent write and one MAC
// recomputation. The pipeline advances (oldest update first) only when it
// is full, keeping a fixed depth of tree updates in flight.
//
// The trade-off the comparison matrix is after: pipesit streamlines the
// runtime update path even further than Steins (no offset records, no LInc
// maintenance, reads never drain), but without dirty tracking its recovery
// must reconstruct the ENTIRE tree from data blocks, SCUE-style — pipelined
// updates alone do not buy fast recovery.
package pipesit

import (
	"steins/internal/cache"
	"steins/internal/memctrl"
	"steins/internal/scheme/rebuild"
	"steins/internal/sit"
)

// update is one in-flight coalescing pipeline slot: the generated parent
// counter for a flushed child. Modelled at 16 bytes like the Steins buffer,
// so the Table I 128 B region holds 8 slots.
type update struct {
	level   int    // level of the flushed child
	index   uint64 // index of the flushed child
	counter uint64 // generated parent counter, f(child), newest flush wins
}

const updateBytes = 16

// Policy is the pipesit scheme.
type Policy struct {
	c *memctrl.Controller
	// pipe is the on-chip NV update pipeline, FIFO by first enqueue; at
	// most one slot per (level, index) — re-flushes coalesce in place.
	pipe []update
	cap  int
	// recoveryRoot is the on-chip NV register: total increments applied to
	// leaf counters (the SCUE register), anchoring full-tree recovery.
	recoveryRoot uint64
	draining     bool
}

// Factory builds a pipesit policy; pass to memctrl.New.
func Factory(c *memctrl.Controller) memctrl.Policy {
	depth := c.Config().NVBufferBytes / updateBytes
	if depth < 1 {
		depth = 1
	}
	return &Policy{c: c, cap: depth}
}

// Name implements memctrl.Policy.
func (p *Policy) Name() string {
	if p.c.Config().SplitLeaf {
		return "PipeSIT-SC"
	}
	return "PipeSIT-GC"
}

// CounterGen implements memctrl.Policy: parent counters are generated, the
// property that lets a flush seal without touching its parent.
func (p *Policy) CounterGen() bool { return true }

// RecoveryRoot returns the register value (tests use it).
func (p *Policy) RecoveryRoot() uint64 { return p.recoveryRoot }

// PipelineLen returns the number of in-flight coalesced updates.
func (p *Policy) PipelineLen() int { return len(p.pipe) }

// PendingUpdate returns the in-flight parent counter for a child, if any.
func (p *Policy) PendingUpdate(level int, index uint64) (uint64, bool) {
	for i := range p.pipe {
		if p.pipe[i].level == level && p.pipe[i].index == index {
			return p.pipe[i].counter, true
		}
	}
	return 0, false
}

// OnModify implements memctrl.Policy: leaf increments fold into the
// recovery register; everything else is a register add.
func (p *Policy) OnModify(e *cache.Entry[*sit.Node], _ bool, delta uint64) uint64 {
	if e.Payload.Level == 0 {
		p.recoveryRoot += delta
	}
	return 1
}

// EvictDirty implements memctrl.Policy: seal and persist under the victim's
// own generated counter, then hand the parent update to the coalescing
// pipeline. Top-level flushes land in the on-chip root directly. The parent
// update is ALWAYS pipelined — even a cached parent is updated off the
// critical path — which is exactly the streamlining the scheme is named
// for.
func (p *Policy) EvictDirty(victim *sit.Node) (uint64, error) {
	newPC := victim.FValue()
	cycles := p.c.SealAndWriteNode(victim, newPC) + 1 // +1: pipeline insert
	geo := &p.c.Layout().Geo
	if geo.IsTop(victim.Level) {
		p.c.Root().SetCounter(victim.Index, newPC)
		return cycles, nil
	}
	if i := p.slot(victim.Level, victim.Index); i >= 0 {
		// Coalesce: merge this flush into the in-flight update before its
		// parent MAC is recomputed. One parent write retires both.
		p.pipe[i].counter = newPC
		return cycles, nil
	}
	p.pipe = append(p.pipe, update{level: victim.Level, index: victim.Index, counter: newPC})
	for len(p.pipe) >= p.cap && !p.draining {
		dc, err := p.retireOldest()
		cycles += dc
		if err != nil {
			return cycles, err
		}
	}
	return cycles, nil
}

// slot finds the pipeline slot holding a child's in-flight update.
func (p *Policy) slot(level int, index uint64) int {
	for i := range p.pipe {
		if p.pipe[i].level == level && p.pipe[i].index == index {
			return i
		}
	}
	return -1
}

// retireOldest advances the pipeline by one update: fetch the parent (off
// the write critical path), apply the newest coalesced counter, and free
// the slot. Fetching the parent can evict other dirty nodes, which append
// to (or coalesce into) the pipeline; the nested drain guard keeps those
// re-entries from recursing, and the entry is re-read after the fetch so a
// coalesce that raced the parent fetch still wins.
func (p *Policy) retireOldest() (uint64, error) {
	if p.draining || len(p.pipe) == 0 {
		return 0, nil
	}
	p.draining = true
	defer func() { p.draining = false }()
	ent := p.pipe[0]
	geo := &p.c.Layout().Geo
	pl, pi, slot := geo.Parent(ent.level, ent.index)
	pe, cycles, err := p.c.FetchNode(pl, pi)
	if err != nil {
		return cycles, err
	}
	// Only retirement removes slots (nested drains are guarded), so the
	// entry is still at its position; its counter may have coalesced upward
	// while the parent was fetched.
	i := p.slot(ent.level, ent.index)
	cur := p.pipe[i].counter
	delta := cur - pe.Payload.Counter(slot)
	cycles += p.c.SetParentCounter(pe, slot, cur, delta)
	p.pipe = append(p.pipe[:i], p.pipe[i+1:]...)
	return cycles, nil
}

// BeforeRead implements memctrl.Policy: reads never drain the pipeline —
// verification of a child with an in-flight update uses the pending
// counter via ParentCounterOverride, so the pipeline stays full and deep.
func (p *Policy) BeforeRead() (uint64, error) { return 0, nil }

// ParentCounterOverride implements memctrl.Policy: a child with an
// in-flight update verifies against its coalesced pending counter (there
// is at most one slot per child, always the newest flush).
func (p *Policy) ParentCounterOverride(level int, index uint64) (uint64, bool) {
	if i := p.slot(level, index); i >= 0 {
		return p.pipe[i].counter, true
	}
	return 0, false
}

// OnCrash implements memctrl.Policy: the pipeline and the recovery register
// live in on-chip non-volatile registers and simply survive.
func (p *Policy) OnCrash() {}

// Recover implements memctrl.Policy: without dirty tracking every leaf
// might be stale, so the whole tree is reconstructed from data blocks
// exactly as SCUE does, checked against the recovery register. A pipelined
// update still in flight is subsumed: its child's persisted image carries
// the same counters the update would have installed in the parent, and the
// summation rebuild recomputes every parent from those images, so the
// pipeline is simply cleared once the rebuild lands.
func (p *Policy) Recover() (memctrl.RecoveryReport, error) {
	rep := memctrl.RecoveryReport{Scheme: p.Name()}
	degraded := p.c.Config().DegradedRecovery
	rec, err := rebuild.LeavesFromData(p.c, &rep, degraded)
	if err != nil {
		return rep, err
	}
	reg, err := rebuild.CheckRegister(p.c, &rep, rec, p.recoveryRoot, degraded)
	if err != nil {
		return rep, err
	}
	p.recoveryRoot = reg
	rebuild.WriteBack(p.c, &rep, rec.Leaves, true)
	rebuild.Cost(p.c, &rep)
	p.pipe = p.pipe[:0]
	return rep, nil
}

// Storage implements memctrl.Policy: the tree, the 8 B register and the
// 128 B update pipeline.
func (p *Policy) Storage() memctrl.StorageOverhead {
	lay := p.c.Layout()
	return memctrl.StorageOverhead{
		TreeBytes:      lay.Geo.MetaBytes,
		OnChipNVBytes:  8 + uint64(p.c.Config().NVBufferBytes),
		LeafCoverBytes: lay.Geo.LeafCover * 64,
	}
}
