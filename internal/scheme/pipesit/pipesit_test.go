package pipesit_test

import (
	"errors"
	"testing"

	"steins/internal/memctrl"
	"steins/internal/scheme/pipesit"
	"steins/internal/scheme/schemetest"
)

func TestConformance(t *testing.T) {
	t.Run("RoundTripGC", func(t *testing.T) { schemetest.RunRoundTrip(t, pipesit.Factory, false) })
	t.Run("RoundTripSC", func(t *testing.T) { schemetest.RunRoundTrip(t, pipesit.Factory, true) })
	t.Run("CrashRecoverGC", func(t *testing.T) { schemetest.RunCrashRecover(t, pipesit.Factory, false) })
	t.Run("CrashRecoverSC", func(t *testing.T) { schemetest.RunCrashRecover(t, pipesit.Factory, true) })
	t.Run("ForceAllDirty", func(t *testing.T) { schemetest.RunForceAllDirtyRecover(t, pipesit.Factory, false) })
	t.Run("RuntimeTamper", func(t *testing.T) { schemetest.RunRuntimeTamperDetected(t, pipesit.Factory) })
	t.Run("DataReplay", func(t *testing.T) { schemetest.RunRecoveryDetectsDataReplay(t, pipesit.Factory) })
	t.Run("Determinism", func(t *testing.T) { schemetest.RunDeterminism(t, pipesit.Factory, false) })
	t.Run("SparseCache", func(t *testing.T) { schemetest.RunSparseCacheRecover(t, pipesit.Factory, false) })
}

func TestPipelineCoalescesSameNode(t *testing.T) {
	// Two flushes of the same child before its update retires must occupy
	// ONE pipeline slot holding the newest counter — the coalescing that
	// merges both updates into one parent MAC recomputation.
	c := memctrl.New(schemetest.Config(false), pipesit.Factory)
	p := c.Policy().(*pipesit.Policy)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	e, ok := c.Meta().Probe(c.Layout().Geo.NodeAddr(0, 0))
	if !ok {
		t.Fatal("leaf 0 not cached after write")
	}
	first := e.Payload
	if _, err := c.Policy().EvictDirty(first); err != nil {
		t.Fatal(err)
	}
	want1 := first.FValue()
	got, ok := p.PendingUpdate(0, 0)
	if !ok || got != want1 {
		t.Fatalf("pending update after first flush = %d,%v, want %d,true", got, ok, want1)
	}
	depth := p.PipelineLen()
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Policy().EvictDirty(e.Payload); err != nil {
		t.Fatal(err)
	}
	want2 := e.Payload.FValue()
	if want2 == want1 {
		t.Fatal("second flush did not advance the counter; test is vacuous")
	}
	got, ok = p.PendingUpdate(0, 0)
	if !ok || got != want2 {
		t.Fatalf("pending update after re-flush = %d,%v, want coalesced %d,true", got, ok, want2)
	}
	if p.PipelineLen() != depth {
		t.Fatalf("re-flush grew the pipeline %d -> %d; must coalesce in place", depth, p.PipelineLen())
	}
}

func TestRecoveryRootTracksLeafIncrements(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), pipesit.Factory)
	p := c.Policy().(*pipesit.Policy)
	for i := 0; i < 10; i++ {
		if err := c.WriteData(1, uint64(i)*64, schemetest.Pattern(uint64(i)*64, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if p.RecoveryRoot() != 10 {
		t.Fatalf("recovery register = %d after 10 writes, want 10", p.RecoveryRoot())
	}
}

func TestRecoveryDetectsRootMismatch(t *testing.T) {
	// Data-block replay lowers the reconstructed leaf sum below the
	// register, exactly as in SCUE (pipesit shares the rebuild).
	c := memctrl.New(schemetest.Config(false), pipesit.Factory)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 1)); err != nil {
		t.Fatal(err)
	}
	old := c.Device().Peek(0)
	oldTag := c.Tag(0)
	if err := c.WriteData(1, 0, schemetest.Pattern(0, 2)); err != nil {
		t.Fatal(err)
	}
	c.Crash()
	c.Device().Poke(0, old)
	c.SetTag(0, oldTag)
	if _, err := c.Recover(); !errors.Is(err, memctrl.ErrReplay) {
		t.Fatalf("recover after replay = %v, want ErrReplay", err)
	}
}

func TestRecoveryClearsPipeline(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), pipesit.Factory)
	p := c.Policy().(*pipesit.Policy)
	for i := 0; i < 400; i++ {
		addr := (uint64(i) * 64) % (32 << 10)
		if err := c.WriteData(1, addr, schemetest.Pattern(addr, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	c.ForceAllDirty()
	c.Crash()
	if _, err := c.Recover(); err != nil {
		t.Fatal(err)
	}
	if p.PipelineLen() != 0 {
		t.Fatalf("pipeline holds %d updates after recovery, want 0", p.PipelineLen())
	}
	if err := c.VerifyNVM(); err != nil {
		t.Fatalf("tree inconsistent after recovery: %v", err)
	}
}

func TestStorageOverheadPipeSIT(t *testing.T) {
	c := memctrl.New(schemetest.Config(false), pipesit.Factory)
	s := c.Policy().Storage()
	want := uint64(8 + c.Config().NVBufferBytes)
	if s.OnChipNVBytes != want || s.NVMExtraBytes != 0 || s.CacheTaxBytes != 0 {
		t.Fatalf("pipesit overhead %+v, want OnChipNV %d (register + pipeline)", s, want)
	}
}
